# Tier-1 is the gate every change must keep green; tier-2 adds vet and
# the race detector over the concurrency-heavy packages (runtime, queue,
# fault injector — the soak shrinks itself under -race via build tags).

GO ?= go

.PHONY: tier1 lint audit tier2 soak tier3-soak tier3-iago tier3-obs tier3-cluster tier3-grayfail tier3-replication tier3-compile fuzz bench fmt

tier1: lint
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) audit

# Project vet-style checks (internal/lint): colorcmp + rawsend +
# docmetric (code <-> OBSERVABILITY.md metric catalogue agreement).
lint:
	$(GO) run ./cmd/privagic-lint .

# Strict translation validation: the static leak auditor must re-prove
# the boundary invariants on every example program's partition, in both
# modes, with zero violations (the golden tests assert the same, but this
# target exercises the -audit=strict driver path end to end).
audit:
	$(GO) run ./cmd/privagic-bench -exp audit -quick

tier2: tier1
	$(GO) vet ./...
	$(GO) test -race ./internal/prt ./internal/queue ./internal/faults ./internal/cluster ./internal/netfaults ./internal/memcached ./internal/passes/compile

# The full 1000+-schedule robustness sweep, race-free build for speed.
soak:
	$(GO) test -count=1 -run 'TestSoak' -v ./internal/faults

# Tier-3: the crash-recovery acceptance soak (1000+ seeded crash schedules,
# every run must recover to the exact answer) plus the recovery ablation.
# Nightly/manual in CI — too slow for the per-push gate.
tier3-soak:
	$(GO) test -count=1 -run 'TestSoakRecovery' -v -timeout 30m ./internal/faults
	$(GO) run ./cmd/privagic-bench -exp recovery

# Tier-3: the Iago boundary-defense acceptance soak (1000+ seeded
# U-memory mutator schedules: hardened mode must return the exact answer
# or a typed violation — never silent corruption — and the relaxed
# negative control must detect nothing) plus the boundary ablation.
tier3-iago:
	$(GO) test -count=1 -run 'TestSoakIago|TestIagoRelaxed' -v -timeout 30m ./internal/faults
	$(GO) run ./cmd/privagic-bench -exp iago

# Tier-3: the observability acceptance sweep (700 seeded fault schedules
# with metrics + tracer armed, trace export must parse and event totals
# must reconcile with the registry) plus the overhead ablation.
tier3-obs:
	$(GO) test -count=1 -run 'TestSoakTraceReconcile' -v -timeout 30m ./internal/faults
	$(GO) run ./cmd/privagic-bench -exp obs

# Tier-3: the sharded-cluster chaos soak (500+ seeded schedules of
# mid-run shard kills/hangs/respawns under R=2 with a one-fault budget:
# every acknowledged write must stay readable — zero loss, never stale
# or foreign, with zero deadlocks; the relaxed control — overload
# without faults — must show zero spurious failovers, handoffs, or
# read-repairs) plus the scaling/failover-blackout experiment.
tier3-cluster:
	$(GO) test -count=1 -run 'TestClusterChaosSoak|TestClusterRelaxedSoak' -v -timeout 30m ./internal/cluster
	$(GO) run ./cmd/privagic-bench -exp cluster

# Tier-3: the gray-failure chaos soak (500+ seeded schedules of latency
# spikes, asymmetric partitions, connection resets and wire corruption
# through fault-injecting proxies, under R=2 with a one-fault budget:
# every acknowledged write must stay readable — zero loss, only typed
# failures, zero deadlocks; the relaxed control — clean proxies — must
# show zero spurious breaker trips, demotions, handoffs, or
# read-repairs) plus the demotion-latency / hedged-read experiment.
tier3-grayfail:
	$(GO) test -count=1 -run 'TestClusterGrayFailSoak|TestClusterGrayControlSoak' -v -timeout 30m ./internal/cluster
	$(GO) run ./cmd/privagic-bench -exp grayfail

# Tier-3: the replication acceptance pass. The deterministic replication
# suite (write-through fan-out, fallback reads, read-repair, tombstone
# zombie-refusal, readmission ordering, handoff overflow) plus the
# replication experiment: R=2 vs R=1 tax within 35%, a zero-loss outage
# drill, and every defense counter nonzero. The randomized zero-loss
# soaks themselves run under tier3-cluster and tier3-grayfail.
tier3-replication:
	$(GO) test -count=1 -run 'TestRouter|TestHandoff|TestRing|TestStoreRangeDigest' -v -timeout 30m ./internal/cluster
	$(GO) run ./cmd/privagic-bench -exp replication

# Tier-3: the differential-oracle acceptance soak (500+ seeded schedules
# of the compiled tier under the interpreter oracle: the recovery soak's
# crash classes and the Iago soak's mutator classes, every run must end
# in the exact answer or a typed error with zero divergences) plus the
# compile experiment (>= 5x speedup on the interpreter-bound workload,
# differential equality).
tier3-compile:
	$(GO) test -count=1 -run 'TestSoakDifferential' -v -timeout 30m ./internal/faults
	$(GO) run ./cmd/privagic-bench -exp compile

# 60-second coverage-guided smoke of the memcached protocol fuzzer,
# starting from the checked-in corpus in
# internal/memcached/testdata/fuzz/FuzzProtocol.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzProtocol -fuzztime 60s ./internal/memcached

bench:
	$(GO) run ./cmd/privagic-bench -quick

fmt:
	gofmt -l -w $$(ls -d cmd examples internal *.go)
