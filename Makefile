# Tier-1 is the gate every change must keep green; tier-2 adds vet and
# the race detector over the concurrency-heavy packages (runtime, queue,
# fault injector — the soak shrinks itself under -race via build tags).

GO ?= go

.PHONY: tier1 tier2 soak bench fmt

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2: tier1
	$(GO) vet ./...
	$(GO) test -race ./internal/prt ./internal/queue ./internal/faults

# The full 1000+-schedule robustness sweep, race-free build for speed.
soak:
	$(GO) test -count=1 -run 'TestSoak' -v ./internal/faults

bench:
	$(GO) run ./cmd/privagic-bench -quick

fmt:
	gofmt -l -w $$(ls -d cmd examples internal *.go)
