package privagic_test

// This file maps every table and figure of the paper's evaluation (§9)
// onto a testing.B benchmark, so `go test -bench=. -benchmem` regenerates
// the whole evaluation. Reported custom metrics carry the paper's
// headline ratios; cmd/privagic-bench prints the full tables.

import (
	"strings"
	"testing"

	"privagic"
	"privagic/internal/bench"
	"privagic/internal/sources"
)

// BenchmarkFig9DataStructures regenerates Figure 9: the three data
// structures under YCSB with one color (Unprotected vs Privagic-1 vs
// Intel-sdk-1, machine A).
func BenchmarkFig9DataStructures(b *testing.B) {
	cfg := bench.DefaultFig9()
	cfg.Ops = 4000
	cfg.ListOps = 100
	var rep *bench.Fig9Report
	for i := 0; i < b.N; i++ {
		rep = bench.Fig9(cfg)
	}
	lo, hi := rep.Ratio("treemap", bench.Privagic1, bench.IntelSDK1)
	b.ReportMetric((lo+hi)/2, "treemap-privagic/intel")
	lo, hi = rep.Ratio("treemap", bench.Unprotected, bench.Privagic1)
	b.ReportMetric((lo+hi)/2, "treemap-unprot/privagic")
	lo, hi = rep.Ratio("hashmap", bench.Unprotected, bench.Privagic1)
	b.ReportMetric((lo+hi)/2, "hashmap-unprot/privagic")
	lo, hi = rep.Ratio("list", bench.Unprotected, bench.Privagic1)
	b.ReportMetric((lo+hi)/2, "list-unprot/privagic")
}

// BenchmarkFig10TwoColors regenerates Figure 10: the two-color hashmap
// (Privagic-2 vs Intel-sdk-2 latency, machine A, relaxed mode).
func BenchmarkFig10TwoColors(b *testing.B) {
	cfg := bench.DefaultFig10()
	cfg.Ops = 4000
	var rep *bench.Fig10Report
	for i := 0; i < b.N; i++ {
		rep = bench.Fig10(cfg)
	}
	b.ReportMetric(rep.LatencyRatio(bench.IntelSDK2, bench.Privagic2), "intel2/privagic2-latency")
	b.ReportMetric(rep.LatencyRatio(bench.Privagic2, bench.Unprotected), "privagic2/unprot-latency")
}

// BenchmarkFig8Memcached regenerates Figure 8: memcached with YCSB over
// dataset sizes 1 MiB – 32 GiB (Unprotected vs Privagic vs Scone,
// machine B).
func BenchmarkFig8Memcached(b *testing.B) {
	cfg := bench.DefaultFig8()
	cfg.Ops = 8000
	var rep *bench.Fig8Report
	for i := 0; i < b.N; i++ {
		rep = bench.Fig8(cfg)
	}
	small := cfg.Sizes[0]
	big := cfg.Sizes[len(cfg.Sizes)-1]
	b.ReportMetric(rep.Ratio(small, bench.PrivagicMemcached, bench.Scone), "privagic/scone-small")
	b.ReportMetric(rep.Ratio(big, bench.PrivagicMemcached, bench.Scone), "privagic/scone-32GiB")
	b.ReportMetric(rep.Ratio(small, bench.Unprotected, bench.PrivagicMemcached), "unprot/privagic-small")
}

// BenchmarkTable4TCB regenerates Table 4: the memcached TCB metrics
// (modified lines, enclave footprint, user code in the enclave).
func BenchmarkTable4TCB(b *testing.B) {
	var rep *bench.Table4Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.PrivagicModifiedLines), "modified-locs")
	b.ReportMetric(rep.TCBReduction, "tcb-reduction-x")
	b.ReportMetric(rep.UserCodeReduction, "user-code-reduction-x")
}

// BenchmarkEffort regenerates the engineering-effort counts of
// §9.2.1/§9.3.1 (modified lines per ported program).
func BenchmarkEffort(b *testing.B) {
	var rep *bench.EffortReport
	for i := 0; i < b.N; i++ {
		rep = bench.Effort()
	}
	for _, row := range rep.Rows {
		unit := strings.NewReplacer(" ", "-", "(", "", ")", "").Replace(row.Program) + "-locs"
		b.ReportMetric(float64(row.ModifiedLines), unit)
	}
}

// BenchmarkFig3Motivation regenerates the Figure 3 motivation experiment
// (data-flow analysis leak vs compile-time rejection).
func BenchmarkFig3Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilePipeline measures the compiler itself on the memcached
// core: frontend + SSA + secure typing + partitioning.
func BenchmarkCompilePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := privagic.Compile("memcached_core.c", sources.MemcachedCoreColored,
			privagic.Options{Mode: privagic.Hardened}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSpawnValidation measures the cost of the §8 spawn
// whitelist (our implementation of the paper's future-work defense): the
// partitioned memcached core runs with and without validation.
func BenchmarkAblationSpawnValidation(b *testing.B) {
	prog, err := privagic.Compile("memcached_core.c", sources.MemcachedCoreColored,
		privagic.Options{Mode: privagic.Hardened, Entries: []string{"run_ycsb"}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		inst := prog.Instantiate(privagic.MachineB())
		defer inst.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := inst.Call("run_ycsb"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		inst := prog.Instantiate(privagic.MachineB())
		defer inst.Close()
		inst.EnableSpawnValidation()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := inst.Call("run_ycsb"); err != nil {
				b.Fatal(err)
			}
		}
		if inst.RejectedSpawns() != 0 {
			b.Fatalf("validation rejected legitimate spawns: %d", inst.RejectedSpawns())
		}
	})
}

// BenchmarkPartitionedExecution measures end-to-end execution of the
// partitioned memcached core (600 YCSB driver ops) on the simulated SGX
// machine with real enclave workers and lock-free queues.
func BenchmarkPartitionedExecution(b *testing.B) {
	prog, err := privagic.Compile("memcached_core.c", sources.MemcachedCoreColored,
		privagic.Options{Mode: privagic.Hardened, Entries: []string{"run_ycsb"}})
	if err != nil {
		b.Fatal(err)
	}
	inst := prog.Instantiate(privagic.MachineB())
	defer inst.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Call("run_ycsb"); err != nil {
			b.Fatal(err)
		}
	}
}
