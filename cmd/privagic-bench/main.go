// Command privagic-bench regenerates the paper's evaluation (§9): every
// table and figure, at full scale.
//
// Usage:
//
//	privagic-bench [-exp all|fig3|fig8|fig9|fig10|table4|effort|supervision|recovery|iago|audit|obs|cluster|replication|grayfail|crossopt|compile] [-quick] [-json] [-trace-out trace.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"privagic/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment: all, fig3, fig8, fig9, fig10, table4, effort, supervision, recovery, iago, audit, obs, cluster, replication, grayfail, crossopt, compile")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	csv := flag.Bool("csv", false, "emit figure data as CSV instead of tables (fig8/fig9/fig10)")
	jsonOut := flag.Bool("json", false, "emit the report struct as indented JSON instead of a table (crossopt/cluster/replication/compile)")
	traceOut := flag.String("trace-out", "", "with -exp obs: write a Chrome trace_event JSON of one instrumented run (open in chrome://tracing or Perfetto)")
	flag.Parse()

	// emit prints rep as a table, or as indented JSON under -json.
	emit := func(rep interface{ String() string }) int {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		}
		fmt.Println(rep.String())
		return 0
	}

	runOne := func(name string) int {
		switch name {
		case "fig3":
			rep, err := bench.Fig3()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
		case "fig8":
			cfg := bench.DefaultFig8()
			if *quick {
				cfg.Ops = 8000
			}
			rep := bench.Fig8(cfg)
			if *csv {
				if err := rep.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				return 0
			}
			fmt.Println(rep.String())
		case "fig9":
			cfg := bench.DefaultFig9()
			if *quick {
				cfg.Ops = 4000
				cfg.ListOps = 100
			}
			rep := bench.Fig9(cfg)
			if *csv {
				if err := rep.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				return 0
			}
			fmt.Println(rep.String())
		case "fig10":
			cfg := bench.DefaultFig10()
			if *quick {
				cfg.Ops = 4000
			}
			rep := bench.Fig10(cfg)
			if *csv {
				if err := rep.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				return 0
			}
			fmt.Println(rep.String())
		case "table4":
			rep, err := bench.Table4()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
		case "effort":
			fmt.Println(bench.Effort().String())
		case "supervision":
			cfg := bench.DefaultSupervision()
			if *quick {
				cfg.Schedules = 3
			}
			rep, err := bench.Supervision(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
		case "recovery":
			cfg := bench.DefaultRecovery()
			if *quick {
				cfg.Schedules = 5
			}
			rep, err := bench.Recovery(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
		case "audit":
			cfg := bench.DefaultAudit()
			if *quick {
				cfg.Reps = 2
			}
			rep, err := bench.Audit(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
		case "iago":
			cfg := bench.DefaultIago()
			if *quick {
				cfg.Schedules = 5
			}
			rep, err := bench.Iago(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
		case "cluster":
			cfg := bench.DefaultCluster()
			if *quick {
				cfg.Ops = 6000
				cfg.Shards = []int{1, 2, 4}
				cfg.Kills = 3
			}
			rep, err := bench.Cluster(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return emit(rep)
		case "replication":
			cfg := bench.DefaultReplication()
			if *quick {
				cfg.Ops = 4000
				cfg.Reps = 5
				cfg.Outages = 2
				cfg.KeysPerOutage = 20
			}
			rep, err := bench.Replication(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return emit(rep)
		case "crossopt":
			cfg := bench.DefaultCrossOpt()
			if *quick {
				cfg.Iters = 200
			}
			rep, err := bench.CrossOpt(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return emit(rep)
		case "compile":
			cfg := bench.DefaultCompile()
			if *quick {
				cfg.Iters = 200_000
				cfg.Sweeps = 2
				cfg.DiffIters = 20_000
			}
			rep, err := bench.CompileBench(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return emit(rep)
		case "grayfail":
			cfg := bench.DefaultGrayFail()
			if *quick {
				cfg.Cycles = 3
				cfg.Ops = 800
			}
			rep, err := bench.GrayFail(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
		case "obs":
			cfg := bench.DefaultObs()
			if *quick {
				cfg.Schedules = 5
			}
			var traceFile *os.File
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				traceFile = f
				cfg.TraceOut = f
			}
			rep, err := bench.Obs(cfg)
			if traceFile != nil {
				traceFile.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(rep.String())
			if *traceOut != "" {
				fmt.Printf("trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
			}
		default:
			fmt.Fprintf(os.Stderr, "privagic-bench: unknown experiment %q\n", name)
			return 2
		}
		return 0
	}

	if *exp == "all" {
		for _, name := range []string{"fig3", "table4", "effort", "fig9", "fig10", "fig8", "supervision", "recovery", "iago", "audit", "obs", "cluster", "replication", "grayfail", "crossopt", "compile"} {
			if rc := runOne(name); rc != 0 {
				return rc
			}
		}
		return 0
	}
	return runOne(*exp)
}
