// Command privagic-explain shows what the secure type system deduced about
// a program: the colors of every specialized function's instructions, the
// color sets, the call plans, and any diagnostics — the view a developer
// uses to understand why a line was placed in (or rejected from) an
// enclave. Every load in the listing carries its boundary classification
// (trusted S-load vs U-load the runtime defense snapshots and sanitizes).
//
// Every diagnostic is rendered with its provenance leak trace: the
// backward def-use path from the sink to the source annotation that
// colored the offending value. When the program type-checks, the static
// leak auditor re-verifies the partitioned output and prints the
// whole-program boundary crossing table (every U<->S crossing with its
// justification). -audit additionally runs the entries under the full
// runtime boundary defense to report which crossings the defense covered
// dynamically.
//
// -metrics runs the entries with the observability registry armed and
// prints the metric snapshot (every name is catalogued in
// OBSERVABILITY.md) — the quickest way to see what the runtime actually
// did for a program: chunks executed, waits blocked, messages rejected.
//
// Usage:
//
//	privagic-explain [-mode hardened|relaxed] [-entries main] [-audit] [-metrics] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"privagic"
	"privagic/internal/audit"
	"privagic/internal/ir"
	"privagic/internal/obs"
	"privagic/internal/passes/crossing"
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "hardened", "compiler mode")
	entries := flag.String("entries", "", "comma-separated entry points")
	runtimeAudit := flag.Bool("audit", false, "run the entries under the full boundary defense and report per-load classification")
	metrics := flag.Bool("metrics", false, "run the entries with the metrics registry armed and print the snapshot (see OBSERVABILITY.md)")
	crossings := flag.Bool("crossings", false, "print the static crossing-cost report per entry (every spawn/cont/barrier edge weighted by loop depth and trip count); with -entries, also run each entry under the tracer and print the measured crossings/op next to the prediction")
	optimize := flag.Bool("optimize", false, "apply the crossing optimizer (fuse/coalesce/merge) before reporting; implies strict re-validation of the rewritten plan")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: privagic-explain [flags] file.c")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	opts := privagic.Options{Mode: privagic.Hardened}
	if *mode == "relaxed" {
		opts.Mode = privagic.Relaxed
	}
	if *entries != "" {
		opts.Entries = strings.Split(*entries, ",")
	}
	an, err := privagic.Check(flag.Arg(0), string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("mode: %s   enclave colors: %v   stabilizing passes: %d\n\n",
		an.Mode, an.Colors, an.Passes())

	keys := make([]string, 0, len(an.Specs))
	for k := range an.Specs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		spec := an.Specs[k]
		fmt.Printf("function %s   color set %v   returns %s\n", k, spec.ColorSet(), spec.RetColor)
		for _, b := range spec.Fn.Blocks {
			bc := ""
			if c, ok := spec.BlockColor[b]; ok && !c.IsFree() {
				bc = fmt.Sprintf("   ; block colored %s (Rule 4)", c)
			}
			fmt.Printf("  %s:%s\n", b.BName, bc)
			for _, in := range b.Instrs {
				c := spec.InstrColor[in]
				label := c.String()
				if c.IsFree() || c == ir.None {
					label = "F (replicated)"
				}
				fmt.Printf("    [%-14s] %s%s\n", label, in, loadClass(in))
			}
		}
		fmt.Println()
	}

	if err := an.Err(); err != nil {
		fmt.Println("diagnostics (with provenance leak traces):")
		for _, e := range an.Errors {
			fmt.Printf("  %s\n", e)
			if tr := audit.TraceTypeError(an.Mode, e); tr != nil {
				fmt.Println(indent(tr.String(), "  "))
			}
		}
		return 1
	}
	fmt.Println("no secure-typing violations")

	if rc := staticAudit(flag.Arg(0), string(src), opts); rc != 0 {
		return rc
	}

	if *runtimeAudit {
		if len(opts.Entries) == 0 {
			fmt.Fprintln(os.Stderr, "privagic-explain: -audit needs -entries to know what to run")
			return 2
		}
		if rc := runAudit(flag.Arg(0), string(src), opts); rc != 0 {
			return rc
		}
	}
	if *metrics {
		if len(opts.Entries) == 0 {
			fmt.Fprintln(os.Stderr, "privagic-explain: -metrics needs -entries to know what to run")
			return 2
		}
		if rc := runMetrics(flag.Arg(0), string(src), opts); rc != 0 {
			return rc
		}
	}
	if *crossings {
		if rc := runCrossings(flag.Arg(0), string(src), opts, *optimize); rc != 0 {
			return rc
		}
	}
	return 0
}

// runCrossings prints the interprocedural crossing-cost report: every
// boundary edge of every entry with its static predicted crossings/op,
// and — when entries are runnable — the tracer-measured figure beside it.
func runCrossings(file, src string, opts privagic.Options, optimize bool) int {
	opts.OptimizeCrossings = optimize
	prog, err := privagic.Compile(file, src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if optimize {
		fmt.Printf("\ncrossing optimizer: %s\n", prog.CrossingOpt.Summary())
	}
	reports := prog.CrossingReports(nil)
	names := make([]string, 0, len(reports))
	for n := range reports {
		names = append(names, n)
	}
	sort.Strings(names)
	runnable := map[string]bool{}
	for _, e := range opts.Entries {
		runnable[e] = true
	}
	for _, n := range names {
		rep := reports[n]
		var measured map[crossing.EdgeKey]float64
		if runnable[n] {
			inst := prog.Instantiate(nil)
			inst.EnableObservability(privagic.ObservabilityOptions{Trace: true, TraceBuffer: 1 << 14})
			_, callErr := inst.Call(n)
			if callErr == nil {
				var sends []crossing.TraceSend
				for _, ev := range inst.TraceEvents() {
					if ev.Kind == obs.EvSend {
						sends = append(sends, crossing.TraceSend{Chunk: int(ev.Chunk), Tag: int(ev.Tag), Dst: int(ev.Worker)})
					}
				}
				measured = crossing.MeasuredEdges(sends, rep.OpsPerCall)
			}
			inst.Close()
		}
		fmt.Printf("\ncrossing report — entry %s (%.0f ops/call modeled)\n", n, rep.OpsPerCall)
		fmt.Print(indent(rep.Table(measured), "  "))
		fmt.Println()
	}
	return 0
}

// runMetrics executes every entry with the metrics registry armed and
// prints the snapshot — each name's semantics are one lookup away in
// OBSERVABILITY.md's metric catalogue.
func runMetrics(file, src string, opts privagic.Options) int {
	prog, err := privagic.Compile(file, src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, entry := range opts.Entries {
		inst := prog.Instantiate(nil)
		inst.EnableObservability(privagic.ObservabilityOptions{Metrics: true})
		ret, err := inst.Call(entry)
		snap := inst.MetricsSnapshot()
		inst.Close()
		fmt.Printf("\nmetrics — entry %s", entry)
		if err != nil {
			fmt.Printf(" (failed: %v)\n", err)
		} else {
			fmt.Printf(" (ret %d)\n", ret)
		}
		fmt.Println(indent(obs.Render(snap), "  "))
	}
	return 0
}

// staticAudit partitions the program, re-proves the boundary invariants
// over the partitioner's output, and prints the whole-program crossing
// table. Violations (partitioner bugs) are rendered with their traces.
func staticAudit(file, src string, opts privagic.Options) int {
	opts.Audit = privagic.AuditWarn
	prog, err := privagic.Compile(file, src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res := prog.Audit
	fmt.Printf("\nstatic audit: %d chunks / %d instructions re-verified\n",
		res.Stats.Chunks, res.Stats.Instrs)
	if len(res.Errors) > 0 {
		fmt.Println("audit violations (with provenance leak traces):")
		for _, e := range res.Errors {
			fmt.Printf("  %s\n", e)
			fmt.Println(indent(e.Trace.String(), "  "))
		}
		return 1
	}
	fmt.Print(res.Report.Table())
	return 0
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}

// loadClass annotates a load instruction with its boundary classification:
// a load through an enclave-colored pointer is served from that enclave's
// private memory (trusted, no defense needed), while a load through a
// Free/U pointer is the crossing the runtime boundary defense snapshots
// and sanitizes when it executes inside an enclave chunk.
func loadClass(in ir.Instr) string {
	ld, ok := in.(*ir.Load)
	if !ok {
		return ""
	}
	pt, ok := ld.Ptr.Type().(ir.PointerType)
	if !ok {
		return ""
	}
	if pt.Color.IsFree() || pt.Color == ir.None {
		return "   ; U-load: snapshotted+sanitized at the boundary"
	}
	return fmt.Sprintf("   ; S-load: trusted (%s-private)", pt.Color)
}

// runAudit executes every entry under the full boundary defense and
// prints what the defense saw: how each load was classified and how many
// crossings each layer covered.
func runAudit(file, src string, opts privagic.Options) int {
	prog, err := privagic.Compile(file, src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, entry := range opts.Entries {
		inst := prog.Instantiate(nil)
		inst.EnableBoundaryDefense(privagic.FullBoundaryDefense())
		ret, err := inst.Call(entry)
		bs := inst.BoundaryStats()
		inst.Close()
		fmt.Printf("\nboundary audit — entry %s under the full defense", entry)
		if err != nil {
			fmt.Printf(" (failed: %v)\n", err)
		} else {
			fmt.Printf(" (ret %d)\n", ret)
		}
		fmt.Println("  per-load classification:")
		fmt.Printf("    %-20s %8d   %s\n", "trusted S-loads", bs.TrustedLoads, "enclave-private memory; no defense needed")
		fmt.Printf("    %-20s %8d   %s\n", "snapshot copy-ins", bs.SnapshotCopyIns, "U words copied into the enclave at first read")
		fmt.Printf("    %-20s %8d   %s\n", "snapshot-served", bs.SnapshotServed, "repeated U reads served from the private copy")
		fmt.Printf("    %-20s %8d   %s\n", "unsafe U loads", bs.UnsafeLoads, "U loads outside snapshot coverage")
		fmt.Printf("    %-20s %8d   %s\n", "pointer checks", bs.SanitizeChecks, "U-sourced addresses validated against the map")
		fmt.Printf("    %-20s %8d   %s\n", "rejected", bs.Violations, "typed ErrIagoViolation raised")
		fmt.Printf("  payload-tag rejections: %d\n", bs.PayloadTampered)
	}
	return 0
}
