// Command privagic-explain shows what the secure type system deduced about
// a program: the colors of every specialized function's instructions, the
// color sets, the call plans, and any diagnostics — the view a developer
// uses to understand why a line was placed in (or rejected from) an
// enclave.
//
// Usage:
//
//	privagic-explain [-mode hardened|relaxed] [-entries main] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"privagic"
	"privagic/internal/ir"
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "hardened", "compiler mode")
	entries := flag.String("entries", "", "comma-separated entry points")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: privagic-explain [flags] file.c")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	opts := privagic.Options{Mode: privagic.Hardened}
	if *mode == "relaxed" {
		opts.Mode = privagic.Relaxed
	}
	if *entries != "" {
		opts.Entries = strings.Split(*entries, ",")
	}
	an, err := privagic.Check(flag.Arg(0), string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("mode: %s   enclave colors: %v   stabilizing passes: %d\n\n",
		an.Mode, an.Colors, an.Passes())

	keys := make([]string, 0, len(an.Specs))
	for k := range an.Specs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		spec := an.Specs[k]
		fmt.Printf("function %s   color set %v   returns %s\n", k, spec.ColorSet(), spec.RetColor)
		for _, b := range spec.Fn.Blocks {
			bc := ""
			if c, ok := spec.BlockColor[b]; ok && !c.IsFree() {
				bc = fmt.Sprintf("   ; block colored %s (Rule 4)", c)
			}
			fmt.Printf("  %s:%s\n", b.BName, bc)
			for _, in := range b.Instrs {
				c := spec.InstrColor[in]
				label := c.String()
				if c.IsFree() || c == ir.None {
					label = "F (replicated)"
				}
				fmt.Printf("    [%-14s] %s\n", label, in)
			}
		}
		fmt.Println()
	}

	if err := an.Err(); err != nil {
		fmt.Println("diagnostics:")
		for _, e := range an.Errors {
			fmt.Printf("  %s\n", e)
		}
		return 1
	}
	fmt.Println("no secure-typing violations")
	return 0
}
