// Command privagic-lint runs the project's vet-style checks (see
// internal/lint): colorcmp (no direct ir.U / ir.S comparisons outside the
// type-system core), rawsend (no unstamped prt queue messages), and
// docmetric (OBSERVABILITY.md, obs.Catalog, and every metric registration
// site agree on every metric and trace-event name).
//
// Usage:
//
//	privagic-lint [dir]
//
// Exits 1 when any issue is found.
package main

import (
	"fmt"
	"os"

	"privagic/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	issues, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, i := range issues {
		fmt.Println(i)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "privagic-lint: %d issues\n", len(issues))
		os.Exit(1)
	}
	fmt.Println("privagic-lint: ok")
}
