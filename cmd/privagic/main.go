// Command privagic is the compiler driver: it compiles a MiniC source file
// with secure-type annotations, runs the secure type system, partitions the
// application, and optionally executes an entry point on the simulated SGX
// machine (the "zero to partitioned binary" path of paper Figure 5).
//
// Usage:
//
//	privagic [-mode hardened|relaxed] [-audit strict|warn|off] [-entries main,get] \
//	         [-emit] [-report] [-run entry [args...]] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"privagic"
	"privagic/internal/audit"
	"privagic/internal/partition"
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "hardened", "compiler mode: hardened or relaxed (paper §5)")
	auditLevel := flag.String("audit", "strict", "static leak auditor: strict (violations fail the build), warn, or off")
	entries := flag.String("entries", "", "comma-separated entry points (default: 'entry'-marked functions)")
	emit := flag.Bool("emit", false, "print the generated chunks")
	report := flag.Bool("report", false, "print the TCB report (Table 4 metrics)")
	runEntry := flag.String("run", "", "execute this entry point after compiling")
	machine := flag.String("machine", "B", "simulated machine preset: A (SGXv1) or B (SGXv2)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: privagic [flags] file.c [run-args...]")
		flag.PrintDefaults()
		return 2
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	opts := privagic.Options{}
	switch *mode {
	case "hardened":
		opts.Mode = privagic.Hardened
	case "relaxed":
		opts.Mode = privagic.Relaxed
	default:
		fmt.Fprintf(os.Stderr, "privagic: unknown mode %q\n", *mode)
		return 2
	}
	if *entries != "" {
		opts.Entries = strings.Split(*entries, ",")
	}
	opts.Audit, err = audit.ParseLevel(*auditLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "privagic: %v\n", err)
		return 2
	}

	var prog *privagic.Program
	if strings.HasSuffix(file, ".pir") {
		prog, err = privagic.CompileIR(file, string(src), opts)
	} else {
		prog, err = privagic.Compile(file, string(src), opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("compiled %s (%s mode): enclaves %v, %d stabilizing passes\n",
		file, *mode, prog.Colors(), prog.Analysis.Passes())
	if res := prog.Audit; res != nil {
		fmt.Printf("audit (%s): %d chunks / %d instructions re-verified, %d boundary crossings, %d violations\n",
			*auditLevel, res.Stats.Chunks, res.Stats.Instrs, res.Stats.Crossings, len(res.Errors))
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "%v\n%s\n", e, e.Trace)
		}
	}

	if *emit {
		for _, pf := range sortedParts(prog) {
			fmt.Printf("; %s  colorset=%v\n", pf.Spec.Key, pf.ColorSet)
			for _, ch := range sortedChunks(pf) {
				fmt.Print(ch.Fn.String2())
			}
		}
	}
	if *report {
		fmt.Print(prog.TCBReport().String())
	}
	if *runEntry != "" {
		m := privagic.MachineB()
		if *machine == "A" {
			m = privagic.MachineA()
		}
		inst := prog.Instantiate(m)
		defer inst.Close()
		var args []int64
		for _, a := range flag.Args()[1:] {
			v, err := strconv.ParseInt(a, 0, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "privagic: bad argument %q\n", a)
				return 2
			}
			args = append(args, v)
		}
		ret, err := inst.Call(*runEntry, args...)
		if out := inst.Output(); out != "" {
			fmt.Print(out)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("%s(%v) = %d\n", *runEntry, args, ret)
		tr, msg, sys, pf := inst.Meter().Counts()
		fmt.Printf("simulated: %d transitions, %d queue messages, %d syscalls, %d page faults\n", tr, msg, sys, pf)
	}
	return 0
}

func sortedParts(prog *privagic.Program) []*partition.PartFunc {
	var out []*partition.PartFunc
	for _, pf := range prog.Partitioned.Funcs {
		out = append(out, pf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Key < out[j].Spec.Key })
	return out
}

func sortedChunks(pf *partition.PartFunc) []*partition.Chunk {
	var out []*partition.Chunk
	for _, ch := range pf.Chunks {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Color.String() < out[j].Color.String() })
	return out
}
