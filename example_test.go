package privagic_test

import (
	"fmt"
	"log"

	"privagic"
)

// Example compiles a secure-typed MiniC program in hardened mode and runs
// it on the simulated SGX machine: the counter lives in the "vault"
// enclave, and only the ignore-annotated reveal declassifies it.
func Example() {
	src := `
ignore long reveal(long color(vault) v);
long color(vault) hits = 0;
entry void visit() { hits = hits + 1; }
entry long total() { return reveal(hits); }
`
	prog, err := privagic.Compile("counter.c", src, privagic.Options{Mode: privagic.Hardened})
	if err != nil {
		log.Fatal(err)
	}
	inst := prog.Instantiate(nil)
	defer inst.Close()
	for i := 0; i < 3; i++ {
		if _, err := inst.Call("visit"); err != nil {
			log.Fatal(err)
		}
	}
	n, err := inst.Call("total")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("enclaves:", prog.Colors())
	fmt.Println("total:", n)
	// Output:
	// enclaves: [vault]
	// total: 3
}
