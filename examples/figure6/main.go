// Figure 6/7 walkthrough: the paper's complete example, compiled, its
// chunks printed, and executed on the runtime so the spawn/cont messages
// of Figure 7 actually flow over the lock-free queues.
//
//	go run ./examples/figure6
package main

import (
	"fmt"
	"log"
	"sort"

	"privagic"
	"privagic/internal/sources"
)

func main() {
	prog, err := privagic.Compile("figure6.c", sources.Figure6, privagic.Options{
		Mode:    privagic.Relaxed,
		Entries: []string{"main"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== chunks (paper §7.3.1: one colored version of each function per color) ===")
	var keys []string
	byKey := map[string][]string{}
	for _, pf := range prog.Partitioned.Funcs {
		var cs []string
		for c := range pf.Chunks {
			cs = append(cs, c.String())
		}
		sort.Strings(cs)
		byKey[pf.Spec.Key] = cs
		keys = append(keys, pf.Spec.Key)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-12s -> chunks %v\n", k, byKey[k])
	}

	fmt.Println("\n=== execution (Figure 7) ===")
	inst := prog.Instantiate(nil)
	defer inst.Close()
	ret, err := inst.Call("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %q\n", inst.Output())
	fmt.Printf("main() = %d (f's Free result 42, delivered to main.U by a cont message — c5 in Figure 7)\n", ret)
	_, messages, _, _ := inst.Meter().Counts()
	fmt.Printf("queue messages exchanged: %d (spawns s1–s3, conts, completions)\n", messages)
}
