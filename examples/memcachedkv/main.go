// The macro-application substrate of §9.2: the miniature memcached served
// over real TCP with a YCSB load, as the paper's Figure 8 drives it —
// here exercised natively to show the substrate itself works end to end.
//
//	go run ./examples/memcachedkv
//
// -debug-addr starts the opt-in diagnostics endpoint (expvar at
// /debug/vars, pprof under /debug/pprof/, the metric snapshot at
// /debug/metrics) and keeps the process serving after the load finishes.
// -trace-out runs the privagic-compiled memcached core once on the
// simulated SGX machine with the structured tracer armed and writes the
// schedule as Chrome trace_event JSON (open in ui.perfetto.dev; see
// OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"privagic"
	"privagic/internal/memcached"
	"privagic/internal/obs"
	"privagic/internal/sources"
	"privagic/internal/ycsb"
)

func main() {
	debugAddr := flag.String("debug-addr", "", "serve expvar + pprof + /debug/metrics on this address (e.g. 127.0.0.1:8080) and stay up after the load")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of one privagic-compiled memcached-core run to this file")
	flag.Parse()

	store := memcached.NewStore(1<<14, 64<<20)
	srv, err := memcached.NewServer("127.0.0.1:0", store, 7) // the paper's 7 threads
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("mini-memcached listening on %s (7 worker threads, 64 MiB LRU)\n", srv.Addr())

	var debug *memcached.DebugServer
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		debug, err = memcached.StartDebug(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer debug.Close()
		fmt.Printf("diagnostics on http://%s/debug/{vars,pprof/,metrics}\n", debug.Addr())
	}

	const clients, opsPerClient, valueSize = 6, 2000, 1024
	value := make([]byte, valueSize)

	// Preload.
	c0, err := memcached.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := c0.Set(fmt.Sprintf("user%d", i), value, 0); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			cl, err := memcached.Dial(srv.Addr())
			if err != nil {
				log.Print(err)
				return
			}
			defer cl.Close()
			gen, err := ycsb.New(ycsb.Config{
				Records: 2000, Mix: ycsb.WorkloadB,
				Distribution: ycsb.Zipfian, RecordSize: valueSize,
				Seed: uint64(cid + 1),
			})
			if err != nil {
				log.Print(err)
				return
			}
			for i := 0; i < opsPerClient; i++ {
				op := gen.Next()
				key := fmt.Sprintf("user%d", op.Key)
				switch op.Kind {
				case ycsb.OpRead:
					if _, _, err := cl.Get(key); err != nil {
						log.Print(err)
						return
					}
				default:
					if err := cl.Set(key, value, 0); err != nil {
						log.Print(err)
						return
					}
				}
			}
		}(cid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats, err := c0.Stats()
	c0.Close()
	if err != nil {
		log.Fatal(err)
	}
	total := clients * opsPerClient
	fmt.Printf("YCSB-B: %d clients x %d ops in %v  (%.0f ops/s over loopback)\n",
		clients, opsPerClient, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("server stats: hits=%d misses=%d items=%d evictions=%d\n",
		stats["get_hits"], stats["get_misses"], stats["curr_items"], stats["evictions"])
	fmt.Println("\n(the Figure 8 experiment replays this store's access pattern on the")
	fmt.Println(" simulated SGX machine: go run ./cmd/privagic-bench -exp fig8)")

	if *traceOut != "" {
		if err := captureTrace(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chunk schedule trace written to %s (open in https://ui.perfetto.dev)\n", *traceOut)
	}
	if debug != nil {
		fmt.Printf("serving diagnostics on http://%s — interrupt to exit\n", debug.Addr())
		select {}
	}
}

// captureTrace runs the paper's memcached core once as a privagic-compiled
// partitioned program with the structured tracer armed, and exports the
// chunk schedule as Chrome trace_event JSON.
func captureTrace(path string) error {
	prog, err := privagic.Compile("memcached_core.c", sources.MemcachedCoreColored,
		privagic.Options{Mode: privagic.Relaxed, Entries: []string{"run_ycsb"}})
	if err != nil {
		return err
	}
	inst := prog.Instantiate(nil)
	defer inst.Close()
	// Untimed capture run: size the rings to keep the whole schedule
	// resident (the 1024-event default favors low cache footprint).
	inst.EnableObservability(privagic.ObservabilityOptions{Metrics: true, Trace: true, TraceBuffer: 1 << 14})
	if _, err := inst.Call("run_ycsb"); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inst.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
