// The macro-application substrate of §9.2: the miniature memcached served
// over real TCP with a YCSB load, as the paper's Figure 8 drives it —
// here exercised natively to show the substrate itself works end to end.
//
//	go run ./examples/memcachedkv
//
// -debug-addr starts the opt-in diagnostics endpoint (expvar at
// /debug/vars, pprof under /debug/pprof/, the metric snapshot at
// /debug/metrics) and keeps the process serving after the load finishes.
// -trace-out runs the privagic-compiled memcached core once on the
// simulated SGX machine with the structured tracer armed and writes the
// schedule as Chrome trace_event JSON (open in ui.perfetto.dev; see
// OBSERVABILITY.md).
// -shards N replaces the single server with an N-shard cluster behind
// the consistent-hashing router; with N >= 2 a shard is killed and
// respawned mid-run to demonstrate fencing, retry failover, and
// readmission (see DESIGN.md §14). -replicas R (default 2 when sharded)
// sets the replication factor: writes go through every in-ring member
// of a key's replica set before acknowledging, reads fall back across
// the set, and a kill mid-run loses no acknowledged write (DESIGN.md
// §16). -replicas 1 reverts to the unreplicated PR-6 router.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"privagic"
	"privagic/internal/cluster"
	"privagic/internal/memcached"
	"privagic/internal/obs"
	"privagic/internal/sources"
	"privagic/internal/ycsb"
)

func main() {
	debugAddr := flag.String("debug-addr", "", "serve expvar + pprof + /debug/metrics on this address (e.g. 127.0.0.1:8080) and stay up after the load")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of one privagic-compiled memcached-core run to this file")
	shards := flag.Int("shards", 0, "run an N-shard cluster behind the router instead of one server; N >= 2 also kills a shard mid-run to show failover")
	replicas := flag.Int("replicas", 2, "replication factor with -shards: each key's writes ack on R ring members (1 disables replication)")
	flag.Parse()

	if *shards > 0 {
		if err := runCluster(*shards, *replicas); err != nil {
			log.Fatal(err)
		}
		return
	}

	store := memcached.NewStore(1<<14, 64<<20)
	srv, err := memcached.NewServer("127.0.0.1:0", store, 7) // the paper's 7 threads
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("mini-memcached listening on %s (7 worker threads, 64 MiB LRU)\n", srv.Addr())

	var debug *memcached.DebugServer
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		debug, err = memcached.StartDebug(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer debug.Close()
		fmt.Printf("diagnostics on http://%s/debug/{vars,pprof/,metrics}\n", debug.Addr())
	}

	const clients, opsPerClient, valueSize = 6, 2000, 1024
	value := make([]byte, valueSize)

	// Preload.
	c0, err := memcached.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := c0.Set(fmt.Sprintf("user%d", i), value, 0); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			cl, err := memcached.Dial(srv.Addr())
			if err != nil {
				log.Print(err)
				return
			}
			defer cl.Close()
			gen, err := ycsb.New(ycsb.Config{
				Records: 2000, Mix: ycsb.WorkloadB,
				Distribution: ycsb.Zipfian, RecordSize: valueSize,
				Seed: uint64(cid + 1),
			})
			if err != nil {
				log.Print(err)
				return
			}
			for i := 0; i < opsPerClient; i++ {
				op := gen.Next()
				key := fmt.Sprintf("user%d", op.Key)
				switch op.Kind {
				case ycsb.OpRead:
					if _, _, err := cl.Get(key); err != nil {
						log.Print(err)
						return
					}
				default:
					if err := cl.Set(key, value, 0); err != nil {
						log.Print(err)
						return
					}
				}
			}
		}(cid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats, err := c0.Stats()
	c0.Close()
	if err != nil {
		log.Fatal(err)
	}
	total := clients * opsPerClient
	fmt.Printf("YCSB-B: %d clients x %d ops in %v  (%.0f ops/s over loopback)\n",
		clients, opsPerClient, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("server stats: hits=%d misses=%d items=%d evictions=%d\n",
		stats["get_hits"], stats["get_misses"], stats["curr_items"], stats["evictions"])
	fmt.Println("\n(the Figure 8 experiment replays this store's access pattern on the")
	fmt.Println(" simulated SGX machine: go run ./cmd/privagic-bench -exp fig8)")

	if *traceOut != "" {
		if err := captureTrace(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chunk schedule trace written to %s (open in https://ui.perfetto.dev)\n", *traceOut)
	}
	if debug != nil {
		fmt.Printf("serving diagnostics on http://%s — interrupt to exit\n", debug.Addr())
		select {}
	}
}

// runCluster drives the same YCSB load against an n-shard cluster through
// the consistent-hashing router at replication factor r. Each client gets
// a deterministic disjoint substream via Generator.Split. With n >= 2 a
// shard is killed mid-run and respawned shortly after: probes fence it,
// retries ride onto survivors, writes during the outage queue hinted
// handoffs, and the fresh incarnation is readmitted only after an
// anti-entropy sync — at r >= 2 no acknowledged write is lost across
// the cycle.
func runCluster(n, r int) error {
	cl, err := cluster.New(cluster.Config{Shards: n})
	if err != nil {
		return err
	}
	defer cl.Close()
	rt, err := cluster.NewRouter(cl, cluster.RouterConfig{
		ProbeInterval: 2 * time.Millisecond,
		ProbeFails:    2,
		Replication:   r,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	reg := obs.NewRegistry()
	rt.Instrument(reg, nil)
	fmt.Printf("%d-shard cluster behind the consistent-hash router (R=%d, 2ms probes, 2-strike fence)\n", n, r)

	const clients, opsPerClient, records, valueSize = 6, 2000, 2000, 1024
	value := make([]byte, valueSize)
	for i := 0; i < records; i++ {
		if err := rt.Set(fmt.Sprintf("user%d", i), value); err != nil {
			return err
		}
	}

	base, err := ycsb.New(ycsb.Config{
		Records: records, Mix: ycsb.WorkloadB,
		Distribution: ycsb.Zipfian, RecordSize: valueSize, Seed: 1,
	})
	if err != nil {
		return err
	}
	streams := base.Split(clients)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]int64, clients)
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			gen := streams[cid]
			for i := 0; i < opsPerClient; i++ {
				op := gen.Next()
				key := fmt.Sprintf("user%d", op.Key)
				var err error
				if op.Kind == ycsb.OpRead {
					_, _, err = rt.Get(key)
				} else {
					err = rt.Set(key, value)
				}
				if err != nil {
					errs[cid]++
				}
			}
		}(cid)
	}

	if n >= 2 {
		// Kill a shard while the load is in flight, then bring a cold
		// replacement back; the router should absorb both transitions.
		time.Sleep(20 * time.Millisecond)
		fmt.Println("killing shard 0 mid-run...")
		if err := cl.Kill(0); err != nil {
			return err
		}
		time.Sleep(30 * time.Millisecond)
		if err := cl.Respawn(0); err != nil {
			return err
		}
		fmt.Println("respawned shard 0 (cold store, new epoch)")
	}
	wg.Wait()
	elapsed := time.Since(start)

	if n >= 2 && r >= 2 {
		// At R >= 2 the respawned shard re-enters only after its
		// anti-entropy sync proves its store complete — a cold store
		// pulling every segment while the load runs can outlast the run
		// itself. The load is done now, so give the sync a moment to
		// land and the counters below tell the whole story.
		deadline := time.Now().Add(3 * time.Second)
		for !rt.InRing(0) && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}

	var failed int64
	for _, e := range errs {
		failed += e
	}
	cs := rt.Counters()
	total := clients * opsPerClient
	fmt.Printf("YCSB-B: %d clients x %d ops in %v  (%.0f ops/s over loopback, %d failed)\n",
		clients, opsPerClient, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), failed)
	fmt.Printf("router: routes=%d retries=%d failovers=%d readmits=%d stale_rejects=%d shards_up=%d/%d\n",
		cs["routes"], cs["retries"], cs["failovers"], cs["readmits"], cs["stale_rejects"], cs["shards_up"], n)
	if r >= 2 {
		fmt.Printf("replication: replica_writes=%d fallback_reads=%d hints_queued=%d hints_drained=%d syncs=%d read_repairs=%d\n",
			cs["repl.replica_writes"], cs["repl.fallback_reads"], cs["repl.hints_queued"],
			cs["repl.hints_drained"], cs["repl.syncs"], cs["repl.read_repairs"])
	}
	if n >= 2 && cs["failovers"] == 0 {
		fmt.Println("note: the kill landed between probe rounds without a client noticing — rerun to catch a failover")
	}
	return nil
}

// captureTrace runs the paper's memcached core once as a privagic-compiled
// partitioned program with the structured tracer armed, and exports the
// chunk schedule as Chrome trace_event JSON.
func captureTrace(path string) error {
	prog, err := privagic.Compile("memcached_core.c", sources.MemcachedCoreColored,
		privagic.Options{Mode: privagic.Relaxed, Entries: []string{"run_ycsb"}})
	if err != nil {
		return err
	}
	inst := prog.Instantiate(nil)
	defer inst.Close()
	// Untimed capture run: size the rings to keep the whole schedule
	// resident (the 1024-event default favors low cache footprint).
	inst.EnableObservability(privagic.ObservabilityOptions{Metrics: true, Trace: true, TraceBuffer: 1 << 14})
	if _, err := inst.Call("run_ycsb"); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inst.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
