// The paper's motivation (Figure 3): a sequential data-flow partitioner
// lets a secret escape through a concurrently retargeted pointer, while
// Privagic's explicit secure typing rejects the program at compile time.
//
//	go run ./examples/multithreaded
package main

import (
	"fmt"
	"log"

	"privagic"
	"privagic/internal/baseline/dataflow"
	"privagic/internal/minic"
	"privagic/internal/passes"
	"privagic/internal/sources"
)

func main() {
	fmt.Println("=== Figure 3.a: Glamdring-style data-flow analysis ===")
	mod, err := minic.Compile("fig3a.c", sources.Figure3a)
	if err != nil {
		log.Fatal(err)
	}
	passes.RunAll(mod)
	res := dataflow.AnalyzeWithParams(mod, nil, map[string]map[int]bool{"f": {0: true}})
	fmt.Printf("the analysis protects: %v  (b is left in unsafe memory)\n", res.SensitiveList())

	outcome, err := dataflow.SimulateRace(mod, res, "f", "g", []dataflow.Step{
		{Thread: 0, N: 1}, // f executes x = &a
		{Thread: 1, N: 8}, // g runs concurrently: x = &b
		{Thread: 0, N: 8}, // f resumes: *x = s
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the adversarial interleaving the secret sits in: %v\n", outcome.SecretIn)
	fmt.Printf("LEAKED into unprotected locations: %v\n\n", outcome.Leaked)

	fmt.Println("=== Figure 3.b: the same program with explicit secure typing ===")
	_, err = privagic.Compile("fig3b.c", sources.Figure3b, privagic.Options{Mode: privagic.Relaxed})
	if err != nil {
		fmt.Printf("privagic rejects it at compile time:\n%v\n", err)
		fmt.Println("\n(the fix is coloring b blue as well — then both assignments type-check)")
		return
	}
	log.Fatal("privagic unexpectedly accepted the racy program")
}
