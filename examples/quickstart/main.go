// Quickstart: compile a secure-typed program, run it on the simulated SGX
// machine, and observe that the secret physically lives inside an enclave.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privagic"
	"privagic/internal/sources"
)

// sources.Wallet is a minimal Privagic program: the balance is colored,
// so every instruction touching it is compiled into the "vault" enclave;
// deposits flow in through the annotated entry parameter, and reads come
// out only through the ignore-annotated declassification (paper §6.4).

func main() {
	prog, err := privagic.Compile("wallet.c", sources.Wallet, privagic.Options{Mode: privagic.Hardened})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclaves: %v\n", prog.Colors())

	inst := prog.Instantiate(privagic.MachineB())
	defer inst.Close()

	for _, cents := range []int64{500, 125, 75} {
		if _, err := inst.Call("deposit", cents); err != nil {
			log.Fatal(err)
		}
	}
	total, err := inst.Call("audit")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit() = %d cents\n", total)

	transitions, messages, _, _ := inst.Meter().Counts()
	fmt.Printf("simulated SGX: %d enclave transitions at startup, %d queue messages for %d calls\n",
		transitions, messages, 4)
	fmt.Println("the balance never left the vault enclave: only the ignore-annotated")
	fmt.Println("reveal() declassified the audited total (paper §6.4)")
}
