// Two-color partitioning (the Privagic-2 configuration of §9.3): keys live
// in the red enclave, values in the blue enclave, the struct body is split
// through unsafe memory (§7.2), and the red key-comparison result is
// declassified before it gates blue code.
//
//	go run ./examples/twocolor
package main

import (
	"fmt"
	"log"

	"privagic"
	"privagic/internal/sources"
)

func main() {
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode:    privagic.Relaxed,
		Entries: []string{"run_ycsb"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclaves: %v\n", prog.Colors())
	for name, sp := range prog.Partitioned.Splits {
		fmt.Printf("split structure %s (paper §7.2): colored fields become pointers\n", name)
		for idx, c := range sp.FieldColors {
			fmt.Printf("  field %-8s -> out-of-line allocation in enclave %s\n",
				sp.Struct.Fields[idx].Name, c)
		}
	}

	inst := prog.Instantiate(privagic.MachineA())
	defer inst.Close()
	hits, err := inst.Call("run_ycsb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun_ycsb() = %d hits under the embedded YCSB driver\n", hits)
	_, messages, _, _ := inst.Meter().Counts()
	fmt.Printf("queue messages: %d — two colors pay heavily in cross-enclave traffic,\n", messages)
	fmt.Println("which is exactly the Figure 10 story (Privagic-2 still beats Intel-sdk-2 by 6.4x-9.2x)")
}
