module privagic

go 1.22
