// Package audit is the static leak auditor: a verification layer that runs
// *after* the partitioner and re-proves, independently of how the chunks
// were constructed, that the partitioned program still satisfies the secure
// type system's guarantees at every boundary.
//
// The package contains two engines:
//
//   - A translation validator (validate.go), in the spirit of CONFLLVM's
//     untrusted-compiler verification pass: it takes a partition.Program
//     and re-checks, per chunk and across the cross-chunk call plan, that
//     the confidentiality rules, the integrity rule, and the Iago rule hold
//     on the *output* of the partitioner — every spawn/cont message field,
//     trampoline argument, interface version, split-struct slot, and
//     S-global placement is classified S/U/F and checked against the
//     mode's boundary invariants. A violation is a partitioner bug caught
//     at compile time, reported as a typed AuditError.
//
//   - A provenance engine (provenance.go), in the spirit of SecV's
//     first-class secure values: it augments typing and audit errors with
//     a backward def-use leak trace through the SSA graph (source
//     annotation -> phi/cast/call hops -> sink), and builds a whole-program
//     boundary report (report.go) enumerating every U<->S crossing with its
//     justification.
//
// The auditor proves per build what the fault-injection soaks only sample
// per schedule: the soaks exercise ~10^3 interleavings of one workload,
// the validator checks every instruction of every chunk against the
// boundary invariants.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/typing"
)

// Level selects how the compile pipeline treats audit findings.
type Level int

// Audit levels: Off skips the pass, Warn runs it and surfaces findings
// without failing the build, Strict turns any finding into a compile
// error.
const (
	Off Level = iota
	Warn
	Strict
)

// ParseLevel maps the -audit flag spelling to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off":
		return Off, nil
	case "warn":
		return Warn, nil
	case "strict":
		return Strict, nil
	}
	return Off, fmt.Errorf("audit: unknown level %q (want strict, warn, or off)", s)
}

// String returns the flag spelling.
func (l Level) String() string {
	switch l {
	case Warn:
		return "warn"
	case Strict:
		return "strict"
	}
	return "off"
}

// ErrKind classifies validator findings by the invariant they break.
type ErrKind int

// Audit error kinds. They mirror the type system's kinds where the broken
// invariant is the same property, plus the two partitioner-output-only
// classes: Plan (the spawn/cont protocol does not line up across chunks)
// and Structure (split-struct or global-placement metadata is malformed).
const (
	ErrConfidentiality ErrKind = iota + 1 // enclave data reaches unsafe memory or a foreign chunk
	ErrIntegrity                          // a chunk writes another enclave's memory
	ErrIago                               // an enclave chunk consumes untrusted data (hardened)
	ErrPlan                               // spawn/cont/join/barrier protocol mismatch
	ErrStructure                          // split-struct slots or global placement malformed
)

var errKindNames = map[ErrKind]string{
	ErrConfidentiality: "confidentiality",
	ErrIntegrity:       "integrity",
	ErrIago:            "iago",
	ErrPlan:            "plan",
	ErrStructure:       "structure",
}

// String names the kind.
func (k ErrKind) String() string { return errKindNames[k] }

// AuditError is one validator finding: a boundary invariant that no longer
// holds on the partitioned output.
type AuditError struct {
	Kind  ErrKind
	Pos   ir.Pos
	Fn    string // partitioned function key, or "<module>"
	Chunk string // chunk name ("f(U).blue"), empty for module-level findings
	Msg   string
	// Trace is the provenance of the offending value: the backward
	// def-use path from the sink to the source annotation that colored
	// it. Never nil for findings produced by Run.
	Trace *Trace
}

// Error implements the error interface.
func (e *AuditError) Error() string {
	where := e.Fn
	if e.Chunk != "" {
		where = e.Chunk
	}
	return fmt.Sprintf("%s: [audit/%s] in %s: %s", e.Pos, e.Kind, where, e.Msg)
}

// Stats counts what one Run covered, so the pass's cost and coverage can
// be tracked by privagic-bench.
type Stats struct {
	Chunks    int // chunk bodies re-verified
	Instrs    int // instructions classified
	Crossings int // U<->S crossings enumerated in the boundary report
}

// Result is the outcome of auditing one partitioned program.
type Result struct {
	Mode   typing.Mode
	Errors []*AuditError
	Report *BoundaryReport
	Stats  Stats
}

// Err returns all findings joined into one error, or nil.
func (r *Result) Err() error {
	if len(r.Errors) == 0 {
		return nil
	}
	msgs := make([]string, len(r.Errors))
	for i, e := range r.Errors {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("audit: %d violations:\n%s", len(r.Errors), strings.Join(msgs, "\n"))
}

// Run audits a partitioned program: the translation validator re-proves
// the boundary invariants over every chunk and the cross-chunk plan, and
// the provenance engine builds the whole-program boundary report. The
// input program is not mutated.
func Run(prog *partition.Program) *Result {
	v := newValidator(prog)
	v.validate()
	res := &Result{
		Mode:   prog.Mode,
		Errors: v.errors,
		Report: buildReport(prog),
		Stats:  v.stats,
	}
	res.Stats.Crossings = len(res.Report.Crossings)
	sortErrors(res.Errors)
	return res
}

// sortErrors orders findings by function, chunk, position, kind, then
// message, so multi-finding output is deterministic.
func sortErrors(errs []*AuditError) {
	sort.SliceStable(errs, func(i, j int) bool {
		x, y := errs[i], errs[j]
		if x.Fn != y.Fn {
			return x.Fn < y.Fn
		}
		if x.Chunk != y.Chunk {
			return x.Chunk < y.Chunk
		}
		if x.Pos.Line != y.Pos.Line {
			return x.Pos.Line < y.Pos.Line
		}
		if x.Pos.Col != y.Pos.Col {
			return x.Pos.Col < y.Pos.Col
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Msg < y.Msg
	})
}
