package audit_test

// Golden-file tests for the diagnostic surface: every examples/ program is
// rendered in both modes exactly as privagic-explain presents it — typing
// diagnostics with their provenance leak traces when the program is
// rejected, and the strict-audit statistics plus the whole-program
// boundary crossing table when it compiles. Run with -update to rewrite
// the expectations after an intentional diagnostic change.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privagic"
	"privagic/internal/audit"
	"privagic/internal/sources"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenPrograms are the five examples/ programs (examples/figure6,
// examples/quickstart, examples/multithreaded, examples/twocolor,
// examples/memcachedkv's compiled core), via the shared source registry.
var goldenPrograms = []struct {
	name    string
	src     string
	entries []string
}{
	{"figure6", sources.Figure6, []string{"main"}},
	{"wallet", sources.Wallet, nil},
	{"figure3b", sources.Figure3b, nil},
	{"hashmap2", sources.HashmapColored2, []string{"run_ycsb"}},
	{"memcached", sources.MemcachedCoreColored, []string{"run_ycsb"}},
}

func TestGoldenDiagnostics(t *testing.T) {
	for _, p := range goldenPrograms {
		for _, mode := range []privagic.Mode{privagic.Hardened, privagic.Relaxed} {
			name := fmt.Sprintf("%s_%s", p.name, mode)
			t.Run(name, func(t *testing.T) {
				got := render(p.name, p.src, p.entries, mode)
				path := filepath.Join("testdata", name+".golden")
				if *update {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run go test ./internal/audit -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("diagnostics changed; diff against %s:\n%s", path, diff(string(want), got))
				}
			})
		}
	}
}

// render produces the deterministic diagnostic view of one (program,
// mode) combination: the same content privagic-explain prints.
func render(name, src string, entries []string, mode privagic.Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s — %s mode\n", name, mode)
	opts := privagic.Options{Mode: mode, Entries: entries}

	an, err := privagic.Check(name+".c", src, opts)
	if err != nil {
		fmt.Fprintf(&b, "front-end error: %v\n", err)
		return b.String()
	}
	if an.Err() != nil {
		b.WriteString("diagnostics (with provenance leak traces):\n")
		for _, e := range an.Errors {
			fmt.Fprintf(&b, "  %s\n", e)
			if tr := audit.TraceTypeError(an.Mode, e); tr != nil {
				b.WriteString(indent(tr.String(), "  "))
				b.WriteString("\n")
			}
		}
		return b.String()
	}
	b.WriteString("no secure-typing violations\n")

	opts.Audit = privagic.AuditWarn
	prog, err := privagic.Compile(name+".c", src, opts)
	if err != nil {
		fmt.Fprintf(&b, "partition error: %v\n", err)
		return b.String()
	}
	res := prog.Audit
	fmt.Fprintf(&b, "static audit: %d chunks / %d instructions re-verified, %d violations\n",
		res.Stats.Chunks, res.Stats.Instrs, len(res.Errors))
	for _, e := range res.Errors {
		fmt.Fprintf(&b, "  %s\n", e)
		b.WriteString(indent(e.Trace.String(), "  "))
		b.WriteString("\n")
	}
	b.WriteString(res.Report.Table())
	return b.String()
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}

// diff renders a small line diff (enough to read in test output).
func diff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
		}
	}
	return b.String()
}

// TestGoldenStrictOnCompilingCombos is the acceptance gate: strict audit
// passes with zero violations on every example/mode combination that
// partitions successfully.
func TestGoldenStrictOnCompilingCombos(t *testing.T) {
	for _, p := range goldenPrograms {
		for _, mode := range []privagic.Mode{privagic.Hardened, privagic.Relaxed} {
			opts := privagic.Options{Mode: mode, Entries: p.entries}
			if _, err := privagic.Compile(p.name+".c", p.src, opts); err != nil {
				continue // rejected: nothing to audit
			}
			opts.Audit = privagic.AuditStrict
			if _, err := privagic.Compile(p.name+".c", p.src, opts); err != nil {
				t.Errorf("%s (%s): strict audit rejected the partitioner's own output:\n%v",
					p.name, mode, err)
			}
		}
	}
}
