package audit_test

// Negative corpus: deliberately corrupt the partitioner's output and
// assert the auditor catches each corruption with the right error kind
// and a provenance trace that names the true source annotation. These are
// the "partitioner bug" scenarios the translation validator exists for.

import (
	"strings"
	"testing"

	"privagic"
	"privagic/internal/audit"
	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/sources"
)

func compilePartition(t *testing.T, name, src string, entries []string) *partition.Program {
	t.Helper()
	prog, err := privagic.Compile(name+".c", src, privagic.Options{
		Mode: privagic.Relaxed, Entries: entries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog.Partitioned
}

// findErr returns the audit errors of the given kind.
func findErr(res *audit.Result, kind audit.ErrKind) []*audit.AuditError {
	var out []*audit.AuditError
	for _, e := range res.Errors {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// requireTrace asserts the error carries a non-empty provenance trace
// whose rendered text mentions every needle (the source annotation).
func requireTrace(t *testing.T, e *audit.AuditError, needles ...string) {
	t.Helper()
	if e.Trace == nil || len(e.Trace.Steps) == 0 {
		t.Fatalf("error has no provenance trace: %v", e)
	}
	text := e.Trace.String()
	for _, n := range needles {
		if !strings.Contains(text, n) {
			t.Errorf("trace does not name %q:\n%v\n%s", n, e, text)
		}
	}
}

// TestCorruptGlobalPlacement moves an enclave-colored global into the
// shared unsafe block — the exact §7.1 leak the first confidentiality
// rule forbids — and expects a confidentiality violation whose trace ends
// at the global's color annotation.
func TestCorruptGlobalPlacement(t *testing.T) {
	part := compilePartition(t, "figure6", sources.Figure6, []string{"main"})
	moved := false
	for c, gs := range part.EnclaveGlobals {
		if c == ir.Named("blue") {
			part.SharedGlobals = append(part.SharedGlobals, gs...)
			delete(part.EnclaveGlobals, c)
			moved = true
		}
	}
	if !moved {
		t.Fatal("figure6 has no blue enclave globals to corrupt")
	}
	res := audit.Run(part)
	errs := findErr(res, audit.ErrConfidentiality)
	if len(errs) == 0 {
		t.Fatalf("auditor missed the leaked enclave global; got %v", res.Errors)
	}
	requireTrace(t, errs[0], "@blue", "color(blue)", "source annotation")
	if res.Err() == nil {
		t.Fatal("Result.Err() == nil despite violations")
	}
}

// TestCorruptDroppedTransportSend deletes the __pv_send that ships a
// transported enclave value to its consumer chunk. The waiting chunk
// would deadlock (and the value be lost); the auditor's send/wait
// set-matching must flag it as a plan violation, with the trace walking
// the transported value back to its source annotation.
func TestCorruptDroppedTransportSend(t *testing.T) {
	part := compilePartition(t, "hashmap2", sources.HashmapColored2, []string{"run_ycsb"})

	// Collect the tags that carry transported values (not barriers).
	transportTags := map[int64]bool{}
	for _, pf := range part.Funcs {
		for _, tr := range part.Transports(pf) {
			transportTags[int64(tr.Tag)] = true
		}
	}
	if len(transportTags) == 0 {
		t.Fatal("hashmap2 relaxed has no transports to corrupt")
	}

	dropped := false
	for _, ch := range part.ChunkByID {
		for _, b := range ch.Fn.Blocks {
			for i, in := range b.Instrs {
				call, ok := in.(*ir.Call)
				if !ok || dropped {
					continue
				}
				fn, isFn := call.Callee.(*ir.Function)
				if !isFn || fn.FName != partition.IntrSend || len(call.Args) < 2 {
					continue
				}
				tag, isConst := call.Args[1].(*ir.ConstInt)
				if isConst && transportTags[tag.V] {
					b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
					dropped = true
					break
				}
			}
		}
	}
	if !dropped {
		t.Fatal("no transport __pv_send found to drop")
	}

	res := audit.Run(part)
	errs := findErr(res, audit.ErrPlan)
	if len(errs) == 0 {
		t.Fatalf("auditor missed the dropped transport send; got %v", res.Errors)
	}
	requireTrace(t, errs[0], "source annotation")
}

// TestCorruptSplitSlotColor flips a split-struct indirection slot into
// the wrong enclave — the §7.2 layout bug that would materialize one
// enclave's field inside another — and expects a confidentiality
// violation whose trace names the field's declared color.
func TestCorruptSplitSlotColor(t *testing.T) {
	part := compilePartition(t, "hashmap2", sources.HashmapColored2, []string{"run_ycsb"})
	if len(part.Splits) == 0 {
		t.Fatal("hashmap2 relaxed produced no split structs")
	}
	corrupted := false
	for _, sp := range part.Splits {
		for i, c := range sp.FieldColors {
			if corrupted {
				break
			}
			// Reassign the slot to any other enclave color.
			for other := range part.EnclaveGlobals {
				if other != c {
					sp.FieldColors[i] = other
					corrupted = true
					break
				}
			}
			if !corrupted { // single-enclave program: invent a color
				sp.FieldColors[i] = ir.Named("bogus")
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Fatal("no split slot to corrupt")
	}
	res := audit.Run(part)
	errs := findErr(res, audit.ErrConfidentiality)
	if len(errs) == 0 {
		t.Fatalf("auditor missed the mis-colored split slot; got %v", res.Errors)
	}
	requireTrace(t, errs[0], "declared color(", "source annotation")
}
