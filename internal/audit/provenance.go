package audit

import (
	"fmt"
	"strings"

	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/typing"
)

// TraceStep is one hop of a leak trace: a program point and what happened
// to the colored value there.
type TraceStep struct {
	Pos  ir.Pos
	Note string
}

// Trace is the provenance of a colored value: the backward def-use path
// from the sink (step 0) to the source annotation that colored it (the
// last step). Because the IR is SSA — an instruction and its output
// register are equivalent — each hop is one defining instruction.
type Trace struct {
	Color ir.Color
	Steps []TraceStep
}

// String renders the trace, one numbered hop per line, sink first.
func (t *Trace) String() string {
	if t == nil || len(t.Steps) == 0 {
		return ""
	}
	lines := make([]string, len(t.Steps))
	for i, s := range t.Steps {
		lines[i] = fmt.Sprintf("  #%d %s: %s", i+1, s.Pos, s.Note)
	}
	return strings.Join(lines, "\n")
}

// Source returns the final step of the trace — the annotation (or
// declassification point) the leak originates from.
func (t *Trace) Source() TraceStep {
	if t == nil || len(t.Steps) == 0 {
		return TraceStep{}
	}
	return t.Steps[len(t.Steps)-1]
}

// maxTraceDepth caps the backward walk; deep chains end with a truncation
// step rather than recursing without bound through mutual recursion.
const maxTraceDepth = 8

// tracer walks the def-use graph backward chasing one blamed color.
type tracer struct {
	mode  typing.Mode
	color ir.Color // the color being traced to its source
	// oracle returns the color of a register in the body being traced.
	oracle func(ir.Value) ir.Color
	// callTarget resolves a direct local call to the specialized callee,
	// letting the walk descend into its return value (nil to stop at
	// call boundaries, as in chunk bodies where calls target chunks).
	callTarget func(*ir.Call) *typing.FuncSpec
	// fn is the body being traced, used for the Rule 4 fallback scan.
	fn *ir.Function

	steps []TraceStep
	seen  map[ir.Value]bool
	depth int
}

// TraceTypeError reconstructs the leak trace of a typing diagnostic: from
// the offending value recorded by the analysis back to the source
// annotation. Diagnostics without a recorded value (structure errors and
// other module-level findings) get a single-step trace at the error site.
func TraceTypeError(mode typing.Mode, e *typing.TypeError) *Trace {
	if e.Spec == nil || e.Val == nil {
		return &Trace{Steps: []TraceStep{{Pos: e.Pos, Note: "sink: " + e.Msg}}}
	}
	spec := e.Spec
	blamed := blamedColor(spec.ValueColor(e.Val), e.Val)
	t := &tracer{
		mode:   mode,
		color:  blamed,
		oracle: spec.ValueColor,
		callTarget: func(c *ir.Call) *typing.FuncSpec {
			return spec.CallTarget[c]
		},
		fn:   spec.Fn,
		seen: map[ir.Value]bool{},
	}
	t.step(e.Pos, "sink: "+e.Msg)
	t.walk(e.Val)
	return &Trace{Color: blamed, Steps: t.steps}
}

// blamedColor picks the color to chase: the value's own enclave color, or
// the pointee color when the value is a pointer into colored memory.
func blamedColor(c ir.Color, v ir.Value) ir.Color {
	if c.IsEnclave() {
		return c
	}
	if v != nil {
		if pt, ok := v.Type().(ir.PointerType); ok && pt.Color.IsEnclave() {
			return pt.Color
		}
	}
	return c
}

// traceGlobal is the one-hop trace of a misplaced global: its declaration
// is itself the source annotation.
func traceGlobal(g *ir.Global, note string) *Trace {
	return &Trace{Color: g.Color, Steps: []TraceStep{
		{Pos: g.Pos, Note: note},
		{Pos: g.Pos, Note: fmt.Sprintf("global %s declared color(%s) — source annotation", g.Name(), g.Color)},
	}}
}

func (t *tracer) step(pos ir.Pos, format string, args ...any) {
	t.steps = append(t.steps, TraceStep{Pos: pos, Note: fmt.Sprintf(format, args...)})
}

// walk appends the hops explaining why v carries t.color, ending at a
// terminal step (a source annotation, a declassification, or an inference
// fallback). It always appends at least one step.
func (t *tracer) walk(v ir.Value) {
	if v == nil {
		t.step(ir.Pos{}, "value colored %s by inference", t.color)
		return
	}
	if t.seen[v] || t.depth >= maxTraceDepth {
		t.step(valuePos(v), "… trace truncated (cycle or depth limit)")
		return
	}
	t.seen[v] = true
	t.depth++
	defer func() { t.depth-- }()

	switch x := v.(type) {
	case *ir.Global:
		t.walkGlobal(x)
	case *ir.Param:
		t.walkParam(x)
	case *ir.ConstInt, *ir.ConstFloat, *ir.Null:
		t.step(ir.Pos{}, "constant %s (free)", v.Name())
	case *ir.Alloca:
		t.walkAlloc(x.InstrPos(), "local", x.Name(), x.Color)
	case *ir.Malloc:
		t.walkAlloc(x.InstrPos(), "heap allocation", x.Name(), x.Color)
	case *ir.Load:
		pc := t.pointeeColor(x.Ptr)
		t.step(x.InstrPos(), "%s = load from %s memory", x.Name(), pc)
		t.walk(x.Ptr)
	case *ir.FieldAddr:
		t.walkFieldAddr(x)
	case *ir.IndexAddr:
		t.step(x.InstrPos(), "%s = element address into %s", x.Name(), x.X.Name())
		t.walk(x.X)
	case *ir.Cast:
		t.step(x.InstrPos(), "%s = cast of %s (casts cannot change a color)", x.Name(), x.Val.Name())
		t.walk(x.Val)
	case *ir.BinOp:
		t.walkOperands(x, x.InstrPos(), fmt.Sprintf("%s = %s", x.Name(), x.Op), x.X, x.Y)
	case *ir.Cmp:
		t.walkOperands(x, x.InstrPos(), fmt.Sprintf("%s = cmp %s", x.Name(), x.Pred), x.X, x.Y)
	case *ir.Phi:
		t.walkPhi(x)
	case *ir.Call:
		t.walkCall(x)
	default:
		t.step(valuePos(v), "value %s colored %s by inference", v.Name(), t.color)
	}
}

func (t *tracer) walkGlobal(g *ir.Global) {
	switch {
	case g.Color.IsEnclave():
		t.step(g.Pos, "global %s declared color(%s) — source annotation", g.Name(), g.Color)
	case g.Color.IsNone():
		t.step(g.Pos, "global %s is unannotated: unsafe memory (Table 2)", g.Name())
	default:
		t.step(g.Pos, "global %s declared color(%s)", g.Name(), g.Color)
	}
}

func (t *tracer) walkParam(p *ir.Param) {
	if p.Color.IsEnclave() {
		t.step(p.Pos, "parameter %s declared color(%s) — source annotation", p.Name(), p.Color)
		return
	}
	c := t.oracle(p)
	switch {
	case c.IsEnclave():
		t.step(p.Pos, "parameter %s specialized as %s by its call sites (§6.2)", p.Name(), c)
	case c.IsUntrusted():
		t.step(p.Pos, "parameter %s is untrusted input (entry-point argument, §6.2)", p.Name())
	default:
		t.step(p.Pos, "parameter %s (free)", p.Name())
	}
}

func (t *tracer) walkAlloc(pos ir.Pos, what, name string, c ir.Color) {
	switch {
	case c.IsEnclave():
		t.step(pos, "%s %s allocated with color(%s) — source annotation", what, name, c)
	case c.IsNone():
		t.step(pos, "%s %s is unannotated: unsafe memory (Table 2)", what, name)
	default:
		t.step(pos, "%s %s allocated with color(%s)", what, name, c)
	}
}

func (t *tracer) walkFieldAddr(f *ir.FieldAddr) {
	st := f.Struct()
	field := st.Fields[f.Index]
	if field.Color.IsEnclave() {
		t.step(f.InstrPos(), "field %s.%s declared color(%s) — source annotation", st.Name, field.Name, field.Color)
		return
	}
	t.step(f.InstrPos(), "%s = address of field %s.%s", f.Name(), st.Name, field.Name)
	t.walk(f.X)
}

// walkOperands descends into the operand that carries the blamed color;
// when neither does, the color came from Rule 4 control dependence.
func (t *tracer) walkOperands(self ir.Value, pos ir.Pos, desc string, ops ...ir.Value) {
	for _, op := range ops {
		if t.carries(op) {
			t.step(pos, "%s combines %s-colored operand %s", desc, t.color, op.Name())
			t.walk(op)
			return
		}
	}
	t.rule4Fallback(self, pos, desc)
}

func (t *tracer) walkPhi(p *ir.Phi) {
	for _, e := range p.Edges {
		if t.carries(e.Val) {
			t.step(p.InstrPos(), "%s = phi merges %s-colored %s from block %%%s", p.Name(), t.color, e.Val.Name(), e.Pred.BName)
			t.walk(e.Val)
			return
		}
	}
	t.rule4Fallback(p, p.InstrPos(), p.Name()+" = phi")
}

func (t *tracer) walkCall(c *ir.Call) {
	pos := c.InstrPos()
	callee, direct := c.Callee.(*ir.Function)
	if !direct {
		t.step(pos, "%s = result of indirect call (untrusted, §6.3)", c.Name())
		return
	}
	switch {
	case callee.FName == partition.IntrWait || callee.FName == partition.IntrJoin:
		t.step(pos, "%s = payload of a cont message from the untrusted queue (%s)", c.Name(), callee.FName)
	case callee.Ignore:
		t.step(pos, "%s = declassified by ignore function @%s (§6.4)", c.Name(), callee.FName)
		// The declassification is a sanctioned boundary, but the trace
		// continues to the annotation that colored the revealed value:
		// the reader should see which secret was declassified.
		for _, a := range c.Args {
			if t.carries(a) {
				t.walk(a)
				return
			}
		}
		// The argument colors are erased in this body (the ignore call
		// sits in a chunk that never saw the secret); fall back to any
		// enclave-annotated argument root.
		for _, a := range c.Args {
			if g, ok := a.(*ir.Global); ok && g.Color.IsEnclave() {
				t.walk(a)
				return
			}
		}
	case callee.Within:
		t.step(pos, "%s = computed by within function @%s executing in %s", c.Name(), callee.FName, t.color)
	case callee.External:
		t.step(pos, "%s = result of external call @%s (untrusted, §6.3)", c.Name(), callee.FName)
	default:
		t.walkLocalCall(c, callee, pos)
	}
}

// walkLocalCall descends into the specialized callee's return value.
func (t *tracer) walkLocalCall(c *ir.Call, callee *ir.Function, pos ir.Pos) {
	var target *typing.FuncSpec
	if t.callTarget != nil {
		target = t.callTarget(c)
	}
	if target == nil {
		t.step(pos, "%s = returned by call to @%s", c.Name(), callee.FName)
		return
	}
	t.step(pos, "%s = returned by @%s (specialization %s, return color %s)", c.Name(), callee.FName, target.Key, target.RetColor)
	// Find a returned value carrying the blamed color inside the callee.
	var retVal ir.Value
	target.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		if r, ok := in.(*ir.Ret); ok && r.Val != nil && retVal == nil {
			if target.ValueColor(r.Val) == t.color || blamedColor(target.ValueColor(r.Val), r.Val) == t.color {
				retVal = r.Val
			}
		}
	})
	if retVal == nil {
		return
	}
	sub := &tracer{
		mode:   t.mode,
		color:  t.color,
		oracle: target.ValueColor,
		callTarget: func(cc *ir.Call) *typing.FuncSpec {
			return target.CallTarget[cc]
		},
		fn:    target.Fn,
		seen:  map[ir.Value]bool{},
		depth: t.depth,
	}
	sub.walk(retVal)
	t.steps = append(t.steps, sub.steps...)
}

// rule4Fallback explains a color that arrived through control dependence
// (Rule 4): no operand carries it, so a CondBr on a colored condition
// colored the region. The scan finds the branch whose condition carries
// the blamed color and continues the trace through the condition.
func (t *tracer) rule4Fallback(self ir.Value, pos ir.Pos, desc string) {
	if t.fn != nil {
		var cond ir.Value
		var bpos ir.Pos
		t.fn.Instrs(func(_ *ir.Block, in ir.Instr) {
			if cond != nil {
				return
			}
			if br, ok := in.(*ir.CondBr); ok && t.carries(br.Cond) {
				cond = br.Cond
				bpos = br.InstrPos()
			}
		})
		if cond != nil {
			t.step(pos, "%s colored %s by Rule 4: it executes in a region controlled by a %s condition", desc, t.color, t.color)
			t.step(bpos, "branch condition %s carries %s (implicit indirect leak)", cond.Name(), t.color)
			t.walk(cond)
			return
		}
	}
	t.step(pos, "%s colored %s by inference", desc, t.color)
}

// carries reports whether the value carries the blamed color, directly or
// through its pointee type (fourth confidentiality rule).
func (t *tracer) carries(v ir.Value) bool {
	if v == nil {
		return false
	}
	if t.oracle(v) == t.color {
		return true
	}
	if pt, ok := v.Type().(ir.PointerType); ok && pt.Color == t.color {
		return true
	}
	return false
}

// pointeeColor resolves the memory color behind a pointer per Table 2.
func (t *tracer) pointeeColor(ptr ir.Value) ir.Color {
	pt, ok := ptr.Type().(ir.PointerType)
	if !ok {
		return ir.F
	}
	if pt.Color.IsNone() {
		if t.mode == typing.Hardened {
			return ir.U
		}
		return ir.S
	}
	return pt.Color
}

func valuePos(v ir.Value) ir.Pos {
	switch x := v.(type) {
	case ir.Instr:
		return x.InstrPos()
	case *ir.Global:
		return x.Pos
	case *ir.Param:
		return x.Pos
	}
	return ir.Pos{}
}
