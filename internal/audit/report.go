package audit

import (
	"fmt"
	"sort"
	"strings"

	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/typing"
)

// Crossing is one point where data or control passes between the trusted
// and untrusted worlds (or between enclaves) in the partitioned program,
// together with the mechanism that justifies it.
type Crossing struct {
	Pos   ir.Pos
	Fn    string // partitioned function key, or "<module>"
	Chunk string // chunk the crossing happens in, empty for metadata-level
	Kind  string // spawn, cont-send, cont-wait, join, declassify, ...
	// Detail says what crosses.
	Detail string
	// Justification names the sanctioned mechanism: entry point,
	// declassify whitelist, call-plan trampoline, barrier, S access.
	Justification string
}

// BoundaryReport is the whole-program enumeration of every U<->S crossing
// the partitioned program performs.
type BoundaryReport struct {
	Mode      typing.Mode
	Crossings []Crossing
}

// Table renders the report as an aligned text table, one crossing per
// line, deterministically ordered.
func (r *BoundaryReport) Table() string {
	if len(r.Crossings) == 0 {
		return "no boundary crossings: the program never leaves its chunks\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "boundary crossings (%d, mode %s):\n", len(r.Crossings), r.Mode)
	wKind, wWhere := len("kind"), len("where")
	for _, c := range r.Crossings {
		if len(c.Kind) > wKind {
			wKind = len(c.Kind)
		}
		if w := len(c.where()); w > wWhere {
			wWhere = w
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-*s  %s\n", wKind, "kind", wWhere, "where", "what / justification")
	for _, c := range r.Crossings {
		fmt.Fprintf(&b, "  %-*s  %-*s  %s — %s\n", wKind, c.Kind, wWhere, c.where(), c.Detail, c.Justification)
	}
	return b.String()
}

func (c *Crossing) where() string {
	if c.Chunk != "" {
		return c.Chunk
	}
	return c.Fn
}

// buildReport enumerates every boundary crossing of a partitioned program:
// interface spawns, runtime intrinsic messages, declassifications,
// external calls, relaxed-mode shared-memory accesses, and split-struct
// indirections.
func buildReport(prog *partition.Program) *BoundaryReport {
	r := &reporter{prog: prog}
	r.run()
	sort.SliceStable(r.crossings, func(i, j int) bool {
		x, y := r.crossings[i], r.crossings[j]
		if x.Fn != y.Fn {
			return x.Fn < y.Fn
		}
		if x.Chunk != y.Chunk {
			return x.Chunk < y.Chunk
		}
		if x.Pos.Line != y.Pos.Line {
			return x.Pos.Line < y.Pos.Line
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Detail < y.Detail
	})
	return &BoundaryReport{Mode: prog.Mode, Crossings: r.crossings}
}

type reporter struct {
	prog      *partition.Program
	crossings []Crossing
}

func (r *reporter) add(c Crossing) { r.crossings = append(r.crossings, c) }

func (r *reporter) run() {
	prog := r.prog
	for _, pf := range sortedParts(prog) {
		key := pf.Spec.Key
		if pf.Interface != nil {
			for _, c := range pf.Interface.Spawns {
				r.add(Crossing{
					Fn:            key,
					Kind:          "spawn",
					Detail:        fmt.Sprintf("interface %s starts enclave chunk %s", pf.Interface.Name, c),
					Justification: "entry point interface version (§7.3.4)",
				})
			}
		}
		for _, c := range chunkColors(pf) {
			ch := pf.Chunks[c]
			if ch == nil || len(ch.Fn.Blocks) == 0 {
				continue
			}
			r.scanChunk(pf, ch)
		}
	}
	for _, name := range splitKeys(prog.Splits) {
		split := prog.Splits[name]
		for _, i := range sortedFieldIdx(split.FieldColors) {
			f := split.Struct.Fields[i]
			r.add(Crossing{
				Fn:            "<module>",
				Kind:          "split-field",
				Detail:        fmt.Sprintf("field %s.%s lives out-of-line in enclave %s behind a shared pointer", name, f.Name, split.FieldColors[i]),
				Justification: "split-struct indirection (§7.2)",
			})
		}
	}
}

func sortedFieldIdx(m map[int]ir.Color) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// scanChunk records the crossings inside one chunk body.
func (r *reporter) scanChunk(pf *partition.PartFunc, ch *partition.Chunk) {
	prog := r.prog
	key := pf.Spec.Key
	name := ch.Name()
	barrierTag := map[int]bool{}
	for _, tag := range prog.BarrierTags(pf) {
		barrierTag[tag] = true
	}
	ch.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		pos := in.InstrPos()
		switch x := in.(type) {
		case *ir.Call:
			r.scanCall(pf, ch, x, pos, key, name, barrierTag)
		case *ir.Load:
			if !ch.Color.IsEnclave() {
				return
			}
			if pt, ok := x.Ptr.Type().(ir.PointerType); ok && (pt.Color.IsNone() || pt.Color.IsUntrusted() || pt.Color.IsShared()) {
				r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: "shared-read",
					Detail:        fmt.Sprintf("enclave %s reads unsafe memory through %s", ch.Color, x.Ptr.Name()),
					Justification: sharedJustification(prog.Mode)})
			}
		case *ir.Store:
			if !ch.Color.IsEnclave() {
				return
			}
			if pt, ok := x.Ptr.Type().(ir.PointerType); ok && (pt.Color.IsNone() || pt.Color.IsUntrusted() || pt.Color.IsShared()) {
				r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: "shared-write",
					Detail:        fmt.Sprintf("enclave %s writes unsafe memory through %s", ch.Color, x.Ptr.Name()),
					Justification: sharedJustification(prog.Mode)})
			}
		}
	})
}

func sharedJustification(m typing.Mode) string {
	if m == typing.Hardened {
		return "explicit U access from enclave code (§5, hardened)"
	}
	return "relaxed-mode S access; loads degrade to F (§5)"
}

func (r *reporter) scanCall(pf *partition.PartFunc, ch *partition.Chunk, call *ir.Call, pos ir.Pos, key, name string, barrierTag map[int]bool) {
	callee, direct := call.Callee.(*ir.Function)
	if !direct {
		r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: "external-call",
			Detail:        "indirect call leaves the partitioned program",
			Justification: "call into the untrusted part (§6.3)"})
		return
	}
	switch callee.FName {
	case partition.IntrSpawn:
		detail := "spawn message"
		if id, ok := constArg(call, 0); ok && int(id) < len(r.prog.ChunkByID) && id >= 0 {
			detail = fmt.Sprintf("spawn message starts chunk %s with %d trampoline args",
				r.prog.ChunkByID[id].Name(), len(call.Args)-2)
		}
		r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: "spawn",
			Detail: detail, Justification: "call-plan trampoline (§7.3.2)"})
	case partition.IntrSend:
		tag, _ := constArg(call, 1)
		dst, _ := constArg(call, 0)
		kind, just := "cont-send", "cont message of the call plan (§7.3.2)"
		if barrierTag[int(tag)] {
			kind, just = "barrier-send", "visible-effect synchronization barrier (§7.3.3)"
		}
		r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: kind,
			Detail:        fmt.Sprintf("tag %d to chunk of color %s through the untrusted queue", tag, r.prog.ColorAt(int(dst))),
			Justification: just})
	case partition.IntrWait:
		tag, _ := constArg(call, 0)
		kind, just := "cont-wait", "cont message of the call plan (§7.3.2)"
		if barrierTag[int(tag)] {
			kind, just = "barrier-wait", "visible-effect synchronization barrier (§7.3.3)"
		}
		r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: kind,
			Detail:        fmt.Sprintf("tag %d from the untrusted queue", tag),
			Justification: just})
	case partition.IntrJoin:
		n, _ := constArg(call, 0)
		r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: "join",
			Detail:        fmt.Sprintf("waits for %d spawn completions from the untrusted queue", n),
			Justification: "call-plan completion protocol (§7.3.2)"})
	default:
		switch {
		case callee.Ignore:
			r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: "declassify",
				Detail:        fmt.Sprintf("@%s ignores the colors of its arguments", callee.FName),
				Justification: "ignore-function whitelist (§6.4)"})
		case callee.External && !callee.Within:
			r.add(Crossing{Pos: pos, Fn: key, Chunk: name, Kind: "external-call",
				Detail:        fmt.Sprintf("@%s runs outside the partitioned program", callee.FName),
				Justification: "call into the untrusted part (§6.3)"})
		}
	}
}
