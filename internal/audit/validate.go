package audit

import (
	"fmt"
	"sort"

	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/typing"
)

// validator re-proves the boundary invariants over the partitioner's
// output. It trusts nothing about how the chunks were built: every chunk
// body is re-classified from scratch (its own fixpoint over registers) and
// every intrinsic call site is checked against the cross-chunk plan.
type validator struct {
	prog   *partition.Program
	errors []*AuditError
	stats  Stats

	// chunkOf resolves a function back to the chunk it implements, so
	// direct chunk-to-chunk calls can be typed by the callee's spec.
	chunkOf map[*ir.Function]*partition.Chunk
	maxTag  int
	// whitelist is the per-color spawn whitelist (§8): the same table the
	// runtime enforces dynamically, re-checked here against every static
	// spawn site.
	whitelist map[int][]int
}

func newValidator(prog *partition.Program) *validator {
	v := &validator{
		prog:    prog,
		chunkOf: map[*ir.Function]*partition.Chunk{},
	}
	for _, ch := range prog.ChunkByID {
		v.chunkOf[ch.Fn] = ch
	}
	// Force lazy tag allocation on every function so MaxTag is a real
	// upper bound before any range check runs.
	for _, pf := range sortedParts(prog) {
		prog.Transports(pf)
	}
	v.maxTag = prog.MaxTag()
	v.whitelist = prog.SpawnWhitelist()
	return v
}

func sortedParts(prog *partition.Program) []*partition.PartFunc {
	out := make([]*partition.PartFunc, 0, len(prog.Funcs))
	for _, pf := range prog.Funcs {
		out = append(out, pf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Key < out[j].Spec.Key })
	return out
}

func (v *validator) errorf(kind ErrKind, pos ir.Pos, fn, chunk string, trace *Trace, format string, args ...any) {
	if trace == nil {
		trace = &Trace{Steps: []TraceStep{{Pos: pos, Note: "sink: " + fmt.Sprintf(format, args...)}}}
	}
	v.errors = append(v.errors, &AuditError{
		Kind:  kind,
		Pos:   pos,
		Fn:    fn,
		Chunk: chunk,
		Msg:   fmt.Sprintf(format, args...),
		Trace: trace,
	})
}

// validate runs every check: global placement, split-struct metadata,
// per-chunk instruction invariants, and the cross-chunk message plan.
func (v *validator) validate() {
	v.checkGlobals()
	v.checkSplits()
	for _, pf := range sortedParts(v.prog) {
		v.checkInterface(pf)
		for _, c := range chunkColors(pf) {
			ch := pf.Chunks[c]
			if ch == nil || len(ch.Fn.Blocks) == 0 {
				continue
			}
			v.stats.Chunks++
			v.checkChunk(ch)
		}
		v.checkMessagePlan(pf)
	}
}

func chunkColors(pf *partition.PartFunc) []ir.Color {
	out := make([]ir.Color, 0, len(pf.Chunks))
	for c := range pf.Chunks {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// checkGlobals re-proves the §7.1 memory map: every global sits in exactly
// one region, and an enclave-colored global never lands in the shared
// unsafe block — that placement alone is a leak of the whole variable.
func (v *validator) checkGlobals() {
	placed := map[*ir.Global]int{}
	for _, g := range v.prog.SharedGlobals {
		placed[g]++
		if g.Color.IsEnclave() {
			v.errorf(ErrConfidentiality, g.Pos, "<module>", "", traceGlobal(g,
				fmt.Sprintf("sink: global %s placed in the shared unsafe block", g.Name())),
				"global %s carries enclave color %s but is placed in shared unsafe memory (§7.1)",
				g.Name(), g.Color)
		}
	}
	for _, c := range enclaveKeys(v.prog.EnclaveGlobals) {
		for _, g := range v.prog.EnclaveGlobals[c] {
			placed[g]++
			if g.Color != c {
				v.errorf(ErrStructure, g.Pos, "<module>", "", traceGlobal(g,
					fmt.Sprintf("sink: global %s placed inside enclave %s", g.Name(), c)),
					"global %s declared color(%s) is placed inside enclave %s (§7.1)",
					g.Name(), g.Color, c)
			}
		}
	}
	for _, g := range v.prog.Mod.Globals {
		switch placed[g] {
		case 0:
			v.errorf(ErrStructure, g.Pos, "<module>", "", nil,
				"global %s is assigned to no memory region (§7.1)", g.Name())
		case 1:
		default:
			v.errorf(ErrStructure, g.Pos, "<module>", "", nil,
				"global %s is assigned to %d memory regions (§7.1)", g.Name(), placed[g])
		}
	}
}

func enclaveKeys(m map[ir.Color][]*ir.Global) []ir.Color {
	out := make([]ir.Color, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// checkSplits re-proves the §7.2 split-struct metadata: splitting is a
// relaxed-mode-only rewriting, and the recorded field->enclave map must
// mirror the declared field colors exactly — a mis-colored slot would make
// the runtime allocate a secret field in the wrong enclave.
func (v *validator) checkSplits() {
	for _, name := range splitKeys(v.prog.Splits) {
		split := v.prog.Splits[name]
		st := split.Struct
		if v.prog.Mode != typing.Relaxed {
			v.errorf(ErrStructure, ir.Pos{}, "<module>", "", nil,
				"struct %s is split across enclaves in hardened mode (§7.2 requires relaxed)", st.Name)
		}
		for i, f := range st.Fields {
			want := ir.Color{}
			if f.Color.IsEnclave() {
				want = f.Color
			}
			got, have := split.FieldColors[i]
			switch {
			case want.IsEnclave() && !have:
				v.errorf(ErrStructure, ir.Pos{}, "<module>", "", fieldTrace(st, i,
					fmt.Sprintf("sink: split of struct %s has no slot for colored field %s", st.Name, f.Name)),
					"split struct %s: field %s declared color(%s) has no indirection slot (§7.2)",
					st.Name, f.Name, f.Color)
			case want.IsEnclave() && got != want:
				v.errorf(ErrConfidentiality, ir.Pos{}, "<module>", "", fieldTrace(st, i,
					fmt.Sprintf("sink: split slot of %s.%s allocates in enclave %s", st.Name, f.Name, got)),
					"split struct %s: field %s declared color(%s) but its out-of-line allocation is placed in %s (§7.2)",
					st.Name, f.Name, f.Color, got)
			case !want.IsEnclave() && have:
				v.errorf(ErrStructure, ir.Pos{}, "<module>", "", nil,
					"split struct %s: uncolored field %s has an enclave slot (%s) it must not have (§7.2)",
					st.Name, f.Name, got)
			}
		}
	}
}

func splitKeys(m map[string]*partition.SplitStruct) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fieldTrace(st *ir.StructType, i int, sink string) *Trace {
	f := st.Fields[i]
	return &Trace{Color: f.Color, Steps: []TraceStep{
		{Note: sink},
		{Note: fmt.Sprintf("field %s.%s declared color(%s) — source annotation", st.Name, f.Name, f.Color)},
	}}
}

// checkInterface re-proves the §7.3.4 entry protocol: the interface
// version must spawn exactly the enclave chunks of the function's color
// set and run a U chunk.
func (v *validator) checkInterface(pf *partition.PartFunc) {
	iface := pf.Interface
	if iface == nil {
		return
	}
	key := pf.Spec.Key
	want := map[ir.Color]bool{}
	for _, c := range pf.ColorSet {
		if !c.IsUntrusted() {
			want[c] = true
		}
	}
	got := map[ir.Color]bool{}
	for _, c := range iface.Spawns {
		if c.IsUntrusted() {
			v.errorf(ErrPlan, ir.Pos{}, key, "", nil,
				"interface %s spawns the U chunk; the U chunk runs in normal mode, it is never spawned (§7.3.4)", iface.Name)
			continue
		}
		if got[c] {
			v.errorf(ErrPlan, ir.Pos{}, key, "", nil,
				"interface %s spawns chunk %s twice (§7.3.4)", iface.Name, c)
		}
		got[c] = true
		if !want[c] {
			v.errorf(ErrPlan, ir.Pos{}, key, "", nil,
				"interface %s spawns %s, which is not in the function's color set (§7.3.4)", iface.Name, c)
		}
	}
	for c := range want {
		if !got[c] {
			v.errorf(ErrPlan, ir.Pos{}, key, "", nil,
				"interface %s never spawns enclave chunk %s; its code would never run (§7.3.4)", iface.Name, c)
		}
	}
	if pf.Chunks[ir.U] == nil {
		v.errorf(ErrPlan, ir.Pos{}, key, "", nil,
			"interface %s has no U chunk to run in normal mode (§7.3.4)", iface.Name)
	}
}

// chunkState is the per-chunk re-classification: an independent fixpoint
// assigning every register an S/U/F/enclave color, computed without
// consulting the partitioner's own metadata.
type chunkState struct {
	v      *validator
	ch     *partition.Chunk
	colors map[ir.Value]ir.Color
}

// checkChunk re-proves the five confidentiality rules, the integrity rule,
// and the Iago rule over one chunk body.
func (v *validator) checkChunk(ch *partition.Chunk) {
	st := &chunkState{v: v, ch: ch, colors: map[ir.Value]ir.Color{}}
	st.classify()
	st.check()
}

// colorOf returns the re-derived color of a value inside the chunk.
func (st *chunkState) colorOf(x ir.Value) ir.Color {
	if c, ok := st.colors[x]; ok {
		return c
	}
	return ir.F
}

// resolveLoc resolves a location color per Table 2 for the program's mode.
func (st *chunkState) resolveLoc(c ir.Color) ir.Color {
	if c.IsNone() {
		if st.v.prog.Mode == typing.Hardened {
			return ir.U
		}
		return ir.S
	}
	return c
}

// pointeeOf resolves the memory color behind a pointer-typed value.
func (st *chunkState) pointeeOf(ptr ir.Value) (ir.Color, bool) {
	pt, ok := ptr.Type().(ir.PointerType)
	if !ok {
		return ir.F, false
	}
	return st.resolveLoc(pt.Color), true
}

// classify runs the register-coloring fixpoint (phis need iteration).
func (st *chunkState) classify() {
	spec := st.ch.Part.Spec
	for i, p := range st.ch.Fn.Params {
		if p.Color.IsEnclave() {
			st.colors[p] = p.Color
		} else if i < len(spec.ArgColors) {
			st.colors[p] = spec.ArgColors[i]
		}
	}
	for changed := true; changed; {
		changed = false
		st.ch.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
			val, isVal := in.(ir.Value)
			if !isVal {
				return
			}
			if _, isVoid := val.Type().(ir.VoidType); isVoid {
				return
			}
			c := st.resultColor(in, val)
			if st.colors[val] != c {
				st.colors[val] = c
				changed = true
			}
		})
	}
}

// resultColor derives the color of one instruction's result from its
// operands — the validator's own copy of the Table 3 propagation rules,
// restricted to what can appear inside a chunk body.
func (st *chunkState) resultColor(in ir.Instr, val ir.Value) ir.Color {
	switch x := in.(type) {
	case *ir.Load:
		pc, ok := st.pointeeOf(x.Ptr)
		if !ok {
			return ir.F
		}
		switch {
		case pc.IsEnclave():
			return pc
		case pc.IsShared():
			return ir.F // relaxed: loading from S produces F
		case pc.IsUntrusted():
			return ir.U
		}
		return ir.F
	case *ir.Alloca, *ir.Malloc, *ir.FieldAddr, *ir.IndexAddr:
		// Addresses are free; the pointee color travels in the type
		// (fourth confidentiality rule) and is checked at load/store.
		return ir.F
	case *ir.Call:
		return st.callResultColor(x)
	case *ir.BinOp:
		return st.join(x.X, x.Y)
	case *ir.Cmp:
		return st.join(x.X, x.Y)
	case *ir.Cast:
		return st.colorOf(x.Val)
	case *ir.Phi:
		var c ir.Color = ir.F
		for _, e := range x.Edges {
			c = joinColors(c, st.colorOf(e.Val))
		}
		return c
	}
	_ = val
	return ir.F
}

func (st *chunkState) callResultColor(c *ir.Call) ir.Color {
	callee, direct := c.Callee.(*ir.Function)
	hardened := st.v.prog.Mode == typing.Hardened
	untrusted := func() ir.Color {
		if hardened {
			return ir.U
		}
		return ir.F
	}
	if !direct {
		return untrusted()
	}
	switch callee.FName {
	case partition.IntrWait, partition.IntrJoin, partition.IntrWaitV, partition.IntrElem:
		// Queue payloads are runtime-authenticated (integrity stamps);
		// statically they are sanctioned crossings recorded in the
		// boundary report, and their content is treated as Free.
		return ir.F
	case partition.IntrSpawn, partition.IntrSend, partition.IntrSendV:
		return ir.F // void
	}
	if tch := st.v.chunkOf[callee]; tch != nil {
		rc := tch.Part.Spec.RetColor
		switch {
		case rc.IsEnclave() && rc == st.ch.Color:
			return rc
		case rc.IsUntrusted():
			return untrusted()
		default:
			// Foreign-colored results come back as the dummy zero of
			// the callee chunk; shared loads degrade to F.
			return ir.F
		}
	}
	if callee.Ignore {
		return ir.F // declassified (§6.4)
	}
	if callee.Within {
		// Executes in the single enclave color among its arguments.
		if c := st.withinColor(c); c.IsEnclave() {
			return c
		}
		return untrusted()
	}
	if callee.External {
		return untrusted()
	}
	return ir.F
}

// withinColor finds the enclave a within call executes in: the single
// named color among argument values and argument pointees.
func (st *chunkState) withinColor(c *ir.Call) ir.Color {
	var named ir.Color
	for _, arg := range c.Args {
		ac := st.colorOf(arg)
		if ac.IsEnclave() {
			named = ac
		}
		if pt, ok := arg.Type().(ir.PointerType); ok {
			if pc := st.resolveLoc(pt.Color); pc.IsEnclave() {
				named = pc
			}
		}
	}
	return named
}

func (st *chunkState) join(x, y ir.Value) ir.Color {
	return joinColors(st.colorOf(x), st.colorOf(y))
}

// joinColors merges operand colors: F is the identity, named colors win
// over unsafe ones (the mix checks flag illegal meetings separately).
func joinColors(a, b ir.Color) ir.Color {
	switch {
	case a == b:
		return a
	case a.IsFree() || a.IsNone():
		return b
	case b.IsFree() || b.IsNone():
		return a
	case a.IsEnclave():
		return a
	case b.IsEnclave():
		return b
	case a.IsUntrusted():
		return a
	}
	return b
}

// check walks the chunk body and re-proves every boundary invariant.
func (st *chunkState) check() {
	v := st.v
	c := st.ch.Color
	key := st.ch.Part.Spec.Key
	name := st.ch.Name()
	st.ch.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		v.stats.Instrs++
		pos := in.InstrPos()
		switch x := in.(type) {
		case *ir.Load:
			pc, ok := st.pointeeOf(x.Ptr)
			if ok && pc.IsEnclave() && pc != c {
				v.errorf(ErrConfidentiality, pos, key, name, st.trace(x, pc,
					fmt.Sprintf("sink: chunk %s loads %s memory", name, pc)),
					"chunk of color %s loads %s memory through %s (confidentiality rule 1)", c, pc, x.Ptr.Name())
			}
		case *ir.Store:
			st.checkStore(x, pos, key, name)
		case *ir.Call:
			st.checkCall(x, pos, key, name)
		case *ir.Ret:
			if x.Val != nil {
				if rc := st.colorOf(x.Val); rc.IsEnclave() && rc != c {
					v.errorf(ErrConfidentiality, pos, key, name, st.trace(x.Val, rc,
						fmt.Sprintf("sink: chunk %s returns a %s-colored value", name, rc)),
						"chunk of color %s returns %s-colored value %s to its caller", c, rc, x.Val.Name())
				}
			}
		}
		st.checkMix(in, pos, key, name)
	})
}

// checkStore re-proves the integrity rule and the store side of the
// confidentiality rules.
func (st *chunkState) checkStore(s *ir.Store, pos ir.Pos, key, name string) {
	v := st.v
	c := st.ch.Color
	pc, ok := st.pointeeOf(s.Ptr)
	if !ok {
		return
	}
	if pc.IsEnclave() && pc != c {
		v.errorf(ErrIntegrity, pos, key, name, st.trace(s.Ptr, pc,
			fmt.Sprintf("sink: chunk %s writes %s memory", name, pc)),
			"chunk of color %s writes %s memory through %s (integrity rule)", c, pc, s.Ptr.Name())
		return
	}
	if vc := st.colorOf(s.Val); vc.IsEnclave() && pc != vc {
		v.errorf(ErrConfidentiality, pos, key, name, st.trace(s.Val, vc,
			fmt.Sprintf("sink: %s-colored value stored into %s memory", vc, pc)),
			"store leaks %s-colored value %s into %s memory (confidentiality rule 2)", vc, s.Val.Name(), pc)
	}
}

// checkCall re-proves the message-construction invariants at the runtime
// intrinsic sites and the declassification discipline at external calls.
func (st *chunkState) checkCall(call *ir.Call, pos ir.Pos, key, name string) {
	v := st.v
	c := st.ch.Color
	callee, direct := call.Callee.(*ir.Function)
	if !direct {
		st.checkOutboundArgs(call, "<indirect>", pos, key, name)
		return
	}
	switch callee.FName {
	case partition.IntrSend:
		st.checkSend(call, pos, key, name)
	case partition.IntrSpawn:
		st.checkSpawn(call, pos, key, name)
	case partition.IntrSendV:
		st.checkSendV(call, pos, key, name)
	case partition.IntrWait, partition.IntrWaitV:
		if tag, ok := constArg(call, 0); !ok {
			v.errorf(ErrPlan, pos, key, name, nil, "%s with a non-constant tag", callee.FName)
		} else if tag < 1 || int(tag) > v.maxTag {
			v.errorf(ErrPlan, pos, key, name, nil,
				"%s tag %d outside the allocated range [1, %d]", callee.FName, tag, v.maxTag)
		}
	case partition.IntrElem:
		if tag, ok := constArg(call, 0); !ok {
			v.errorf(ErrPlan, pos, key, name, nil, "__pv_elem with a non-constant tag")
		} else if tag < 1 || int(tag) > v.maxTag {
			v.errorf(ErrPlan, pos, key, name, nil,
				"__pv_elem tag %d outside the allocated range [1, %d]", tag, v.maxTag)
		}
		if idx, ok := constArg(call, 1); !ok || idx < 0 {
			v.errorf(ErrPlan, pos, key, name, nil, "__pv_elem index must be a non-negative constant")
		}
	case partition.IntrJoin:
		if n, ok := constArg(call, 0); !ok || n < 1 {
			v.errorf(ErrPlan, pos, key, name, nil, "__pv_join must wait for a positive constant completion count")
		}
	default:
		if tch := v.chunkOf[callee]; tch != nil {
			if tch.Color != c && !tch.Part.Replicated {
				if reason := v.fusedCallBlocker(tch); reason != "" {
					v.errorf(ErrPlan, pos, key, name, nil,
						"chunk of color %s direct-calls chunk %s of color %s; direct calls stay within a color unless the callee is a fused message-free unsafe chunk (%s) (§7.3.2)",
						c, tch.Name(), tch.Color, reason)
				}
			}
			return
		}
		if callee.Within && !callee.Ignore {
			if wc := st.withinColor(call); wc.IsEnclave() && wc != c {
				v.errorf(ErrConfidentiality, pos, key, name, nil,
					"within call @%s executes in enclave %s but was placed in the %s chunk (§6.3)",
					callee.FName, wc, c)
			}
			return
		}
		if callee.External && !callee.Ignore {
			st.checkOutboundArgs(call, callee.FName, pos, key, name)
		}
	}
}

// checkSend re-proves one cont-message construction: constant destination
// and tag inside their allocated ranges, and a payload free of enclave
// colors (cont messages travel through untrusted queues).
func (st *chunkState) checkSend(call *ir.Call, pos ir.Pos, key, name string) {
	v := st.v
	if v.prog.Mode == typing.Hardened {
		v.errorf(ErrPlan, pos, key, name, nil,
			"hardened chunk emits a cont message; cont messages cannot carry Free values in hardened mode (§7.3.2)")
	}
	dst, ok := constArg(call, 0)
	if !ok {
		v.errorf(ErrPlan, pos, key, name, nil, "__pv_send with a non-constant destination")
	} else if dst < 0 || int(dst) > len(v.prog.Colors) {
		v.errorf(ErrPlan, pos, key, name, nil,
			"__pv_send destination %d outside the color range [0, %d]", dst, len(v.prog.Colors))
	}
	if tag, tok := constArg(call, 1); !tok {
		v.errorf(ErrPlan, pos, key, name, nil, "__pv_send with a non-constant tag")
	} else if tag < 1 || int(tag) > v.maxTag {
		v.errorf(ErrPlan, pos, key, name, nil,
			"__pv_send tag %d outside the allocated range [1, %d]", tag, v.maxTag)
	}
	if len(call.Args) > 2 {
		if pc := st.colorOf(call.Args[2]); pc.IsEnclave() {
			v.errorf(ErrConfidentiality, pos, key, name, st.trace(call.Args[2], pc,
				fmt.Sprintf("sink: %s-colored payload placed in a cont message", pc)),
				"cont message payload %s carries enclave color %s; messages travel through untrusted queues (§7.3.2)",
				call.Args[2].Name(), pc)
		}
	}
}

// checkSendV re-proves one vectored cont-message construction: the same
// rules as __pv_send, applied to every element of the vector payload.
func (st *chunkState) checkSendV(call *ir.Call, pos ir.Pos, key, name string) {
	v := st.v
	if v.prog.Mode == typing.Hardened {
		v.errorf(ErrPlan, pos, key, name, nil,
			"hardened chunk emits a vectored cont message; cont messages cannot carry Free values in hardened mode (§7.3.2)")
	}
	dst, ok := constArg(call, 0)
	if !ok {
		v.errorf(ErrPlan, pos, key, name, nil, "__pv_sendv with a non-constant destination")
	} else if dst < 0 || int(dst) > len(v.prog.Colors) {
		v.errorf(ErrPlan, pos, key, name, nil,
			"__pv_sendv destination %d outside the color range [0, %d]", dst, len(v.prog.Colors))
	}
	if tag, tok := constArg(call, 1); !tok {
		v.errorf(ErrPlan, pos, key, name, nil, "__pv_sendv with a non-constant tag")
	} else if tag < 1 || int(tag) > v.maxTag {
		v.errorf(ErrPlan, pos, key, name, nil,
			"__pv_sendv tag %d outside the allocated range [1, %d]", tag, v.maxTag)
	}
	if len(call.Args) < 3 {
		v.errorf(ErrPlan, pos, key, name, nil, "__pv_sendv carries an empty vector; a plain __pv_send would do")
	}
	for i, arg := range call.Args[2:] {
		if pc := st.colorOf(arg); pc.IsEnclave() {
			v.errorf(ErrConfidentiality, pos, key, name, st.trace(arg, pc,
				fmt.Sprintf("sink: %s-colored payload placed in a vectored cont message", pc)),
				"vectored cont message element %d (%s) carries enclave color %s; messages travel through untrusted queues (§7.3.2)",
				i, arg.Name(), pc)
		}
	}
}

// fusedCallBlocker independently re-proves the fused-call exception to
// the stay-within-a-color rule: a cross-color direct call is legal only
// in relaxed mode, only onto an unsafe chunk, and only when that chunk's
// body provably exchanges no messages of its own — no intrinsics, no
// calls into other chunks, no sanctioned boundary copies, no split
// allocations. The optimizer derives the same fact before fusing; this
// is the translation validator's own derivation, not a shared one.
func (v *validator) fusedCallBlocker(tch *partition.Chunk) string {
	if v.prog.Mode == typing.Hardened {
		return "fused calls are illegal in hardened mode"
	}
	if !tch.Color.IsUntrusted() {
		return fmt.Sprintf("callee runs in enclave %s", tch.Color)
	}
	blocked := ""
	tch.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		if blocked != "" {
			return
		}
		switch x := in.(type) {
		case *ir.Call:
			fn, direct := x.Callee.(*ir.Function)
			if !direct {
				blocked = "callee body contains an indirect call"
				return
			}
			switch fn.FName {
			case partition.IntrSpawn, partition.IntrSend, partition.IntrSendV,
				partition.IntrWait, partition.IntrWaitV, partition.IntrJoin, partition.IntrElem:
				blocked = fmt.Sprintf("callee body exchanges messages (%s)", fn.FName)
			case "classify", "declassify", "classify_key":
				blocked = fmt.Sprintf("callee body contains a sanctioned boundary copy (@%s)", fn.FName)
			default:
				if v.chunkOf[fn] != nil {
					blocked = fmt.Sprintf("callee body calls another chunk (%s)", fn.FName)
				}
			}
		case *ir.Malloc:
			if s, ok := x.Elem.(*ir.StructType); ok && v.prog.Splits[s.Name] != nil {
				blocked = fmt.Sprintf("callee body allocates split struct %%%s", s.Name)
			}
		}
	})
	return blocked
}

// checkSpawn re-proves one spawn-message construction: a valid target
// chunk, a boolean reply flag, and trampoline arguments free of enclave
// colors.
func (st *chunkState) checkSpawn(call *ir.Call, pos ir.Pos, key, name string) {
	v := st.v
	id, ok := constArg(call, 0)
	if !ok {
		v.errorf(ErrPlan, pos, key, name, nil, "__pv_spawn with a non-constant chunk id")
	} else if id < 0 || int(id) >= len(v.prog.ChunkByID) {
		v.errorf(ErrPlan, pos, key, name, nil,
			"__pv_spawn targets chunk id %d outside the chunk table [0, %d)", id, len(v.prog.ChunkByID))
	} else if tch := v.prog.ChunkByID[id]; tch.Color == st.ch.Color && !tch.Part.Replicated {
		v.errorf(ErrPlan, pos, key, name, nil,
			"chunk of color %s spawns chunk %s of its own color; same-color chunks are reached by direct call (§7.3.2)",
			st.ch.Color, tch.Name())
	} else if !whitelisted(v.whitelist[v.prog.ColorIndex(tch.Color)], tch.ID) {
		v.errorf(ErrPlan, pos, key, name, nil,
			"spawn of chunk %s is not in the §8 spawn whitelist for color %s; the runtime worker would refuse it",
			tch.Name(), tch.Color)
	}
	if reply, rok := constArg(call, 1); !rok || (reply != 0 && reply != 1) {
		v.errorf(ErrPlan, pos, key, name, nil, "__pv_spawn reply flag must be the constant 0 or 1")
	}
	for i, arg := range call.Args[2:] {
		if ac := st.colorOf(arg); ac.IsEnclave() {
			v.errorf(ErrConfidentiality, pos, key, name, st.trace(arg, ac,
				fmt.Sprintf("sink: %s-colored trampoline argument placed in a spawn message", ac)),
				"spawn message trampoline argument %d (%s) carries enclave color %s (§7.3.2)",
				i, arg.Name(), ac)
		}
	}
}

// checkOutboundArgs re-proves the external-call rule: no enclave-colored
// value may be handed to the untrusted part (§6.3).
func (st *chunkState) checkOutboundArgs(call *ir.Call, callee string, pos ir.Pos, key, name string) {
	for i, arg := range call.Args {
		if ac := st.colorOf(arg); ac.IsEnclave() {
			st.v.errorf(ErrConfidentiality, pos, key, name, st.trace(arg, ac,
				fmt.Sprintf("sink: %s-colored value passed to untrusted %s", ac, callee)),
				"argument %d of external call %s carries enclave color %s (§6.3)", i, callee, ac)
		}
	}
}

// checkMix re-proves the Iago rule and the two-concrete-colors rule over
// one instruction's operands: an enclave chunk must not combine its data
// with untrusted values (hardened), and no instruction may mix two
// enclave colors.
func (st *chunkState) checkMix(in ir.Instr, pos ir.Pos, key, name string) {
	switch in.(type) {
	case *ir.BinOp, *ir.Cmp, *ir.Phi, *ir.CondBr:
	default:
		return
	}
	v := st.v
	var named []ir.Color
	var namedVal, uVal ir.Value
	for _, op := range in.Ops() {
		oc := st.colorOf(*op)
		if oc.IsEnclave() {
			dup := false
			for _, x := range named {
				if x == oc {
					dup = true
				}
			}
			if !dup {
				named = append(named, oc)
				namedVal = *op
			}
		}
		if oc.IsUntrusted() && uVal == nil {
			uVal = *op
		}
	}
	if len(named) > 1 {
		v.errorf(ErrConfidentiality, pos, key, name, st.trace(namedVal, named[1],
			fmt.Sprintf("sink: instruction mixes enclave colors %s and %s", named[0], named[1])),
			"instruction mixes enclave colors %s and %s", named[0], named[1])
	}
	if len(named) == 1 && uVal != nil && v.prog.Mode == typing.Hardened {
		v.errorf(ErrIago, pos, key, name, st.trace(uVal, ir.U,
			fmt.Sprintf("sink: untrusted value feeds a %s computation", named[0])),
			"%s computation consumes untrusted value %s (Iago rule, hardened mode)", named[0], uVal.Name())
	}
}

// trace builds the provenance of a chunk value using the chunk's own
// re-derived colors as the oracle.
func (st *chunkState) trace(val ir.Value, blamed ir.Color, sink string) *Trace {
	t := &tracer{
		mode:   st.v.prog.Mode,
		color:  blamed,
		oracle: st.colorOf,
		fn:     st.ch.Fn,
		seen:   map[ir.Value]bool{},
	}
	t.step(ir.Pos{}, "%s", sink)
	t.walk(val)
	return &Trace{Color: blamed, Steps: t.steps}
}

func whitelisted(ids []int, id int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// constArg extracts a constant integer argument of an intrinsic call.
func constArg(call *ir.Call, i int) (int64, bool) {
	if i >= len(call.Args) {
		return 0, false
	}
	c, ok := call.Args[i].(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	return c.V, true
}

// sendRec is one observed cont send: destination color index and tag.
type sendRec struct {
	dst int
	tag int
}

// checkMessagePlan re-proves the cross-chunk cont protocol of one
// partitioned function by set-matching sends against waits: every wait in
// chunk d must have a sender addressing (d, tag) in some sibling chunk,
// and every send must have a matching wait — otherwise a chunk deadlocks
// or a message is silently dropped, and with it the value it carried.
func (v *validator) checkMessagePlan(pf *partition.PartFunc) {
	if v.prog.Mode == typing.Hardened {
		return // hardened chunks exchange no cont messages (§7.3.2)
	}
	key := pf.Spec.Key
	sends := map[sendRec][]ir.Pos{}
	waits := map[sendRec][]ir.Pos{}
	for _, c := range chunkColors(pf) {
		ch := pf.Chunks[c]
		if ch == nil || len(ch.Fn.Blocks) == 0 {
			continue
		}
		myIdx := v.prog.ColorIndex(c)
		ch.Fn.Instrs(func(_ *ir.Block, in ir.Instr) {
			call, ok := in.(*ir.Call)
			if !ok {
				return
			}
			callee, direct := call.Callee.(*ir.Function)
			if !direct {
				return
			}
			switch callee.FName {
			case partition.IntrSend, partition.IntrSendV:
				dst, dok := constArg(call, 0)
				tag, tok := constArg(call, 1)
				if dok && tok {
					sends[sendRec{int(dst), int(tag)}] = append(sends[sendRec{int(dst), int(tag)}], call.InstrPos())
				}
			case partition.IntrWait, partition.IntrWaitV:
				if tag, tok := constArg(call, 0); tok {
					waits[sendRec{myIdx, int(tag)}] = append(waits[sendRec{myIdx, int(tag)}], call.InstrPos())
				}
			}
		})
	}
	for _, r := range sortedRecs(waits) {
		if len(sends[r]) == 0 {
			pos := waits[r][0]
			v.errorf(ErrPlan, pos, key, "", v.tagTrace(pf, r.tag, fmt.Sprintf(
				"sink: chunk %s waits for tag %d but no sibling chunk sends it", v.prog.ColorAt(r.dst), r.tag)),
				"chunk of color %s waits for cont tag %d that no sibling chunk sends: the value it carried is lost and the chunk deadlocks (§7.3.2)",
				v.prog.ColorAt(r.dst), r.tag)
		}
	}
	for _, r := range sortedRecs(sends) {
		if len(waits[r]) == 0 {
			pos := sends[r][0]
			v.errorf(ErrPlan, pos, key, "", v.tagTrace(pf, r.tag, fmt.Sprintf(
				"sink: a cont message (dst %s, tag %d) is sent but never awaited", v.prog.ColorAt(r.dst), r.tag)),
				"cont message to chunk of color %s with tag %d is never awaited by that chunk (§7.3.2)",
				v.prog.ColorAt(r.dst), r.tag)
		}
	}
}

func sortedRecs(m map[sendRec][]ir.Pos) []sendRec {
	out := make([]sendRec, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].tag != out[j].tag {
			return out[i].tag < out[j].tag
		}
		return out[i].dst < out[j].dst
	})
	return out
}

// tagTrace reconstructs the provenance of a cont tag: the original
// instruction the tag ships (a transport producer, a barrier effect, or a
// planned call's result), traced back through the spec body to the source
// annotation that colored the producing computation.
func (v *validator) tagTrace(pf *partition.PartFunc, tag int, sink string) *Trace {
	spec := pf.Spec
	for oi, tr := range v.prog.Transports(pf) {
		if tr.Tag != tag {
			continue
		}
		return v.specTrace(spec, oi, spec.InstrColor[oi], sink,
			fmt.Sprintf("value produced here in enclave %s travels to chunks %v with tag %d",
				spec.InstrColor[oi], tr.Consumers, tag))
	}
	for oi, btag := range v.prog.BarrierTags(pf) {
		if btag != tag {
			continue
		}
		return &Trace{Steps: []TraceStep{
			{Note: sink},
			{Pos: oi.InstrPos(), Note: fmt.Sprintf("synchronization barrier (tag %d) around this visible effect (§7.3.3)", tag)},
		}}
	}
	for call, plan := range v.prog.Plans {
		if plan.Tag != tag || plan.Tag == 0 {
			continue
		}
		return v.specTrace(spec, call, plan.ResultColor, sink,
			fmt.Sprintf("result of this call is distributed to waiting chunks %v with tag %d", plan.Waiters, tag))
	}
	return &Trace{Steps: []TraceStep{{Note: sink}}}
}

// specTrace traces an original-body instruction back through the spec.
func (v *validator) specTrace(spec *typing.FuncSpec, oi ir.Instr, blamed ir.Color, sink, hop string) *Trace {
	t := &tracer{
		mode:   v.prog.Mode,
		color:  blamed,
		oracle: spec.ValueColor,
		callTarget: func(c *ir.Call) *typing.FuncSpec {
			return spec.CallTarget[c]
		},
		fn:   spec.Fn,
		seen: map[ir.Value]bool{},
	}
	t.step(ir.Pos{}, "%s", sink)
	t.step(oi.InstrPos(), "%s", hop)
	if val, ok := oi.(ir.Value); ok {
		t.walk(val)
	}
	return &Trace{Color: blamed, Steps: t.steps}
}
