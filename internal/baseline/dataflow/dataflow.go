// Package dataflow implements a Glamdring-style automatic partitioning
// analysis (paper Table 1): the developer annotates sensitive roots, and a
// flow-sensitive data-flow analysis with points-to tracking computes which
// memory locations the sensitive values flow into. The partition then
// protects exactly those locations.
//
// The analysis is deliberately sequential — it interprets each function's
// body in program order with strong updates on pointer variables, exactly
// like the abstract-interpretation engines the paper cites (Frama-C's Eva
// for Glamdring [10, 23]). That is its documented soundness hole with
// threads (paper §3, Figure 3): a pointer retargeted concurrently by
// another thread is invisible to a sequential analysis, so a sensitive
// store through the pointer can land in an unprotected location. The
// tests and the fig3 experiment demonstrate precisely this failure, which
// motivates Privagic's explicit secure typing.
package dataflow

import (
	"sort"

	"privagic/internal/ir"
)

// Result is the outcome of the analysis.
type Result struct {
	// Sensitive is the set of global variables classified as holding
	// sensitive data; the partition places exactly these in the
	// enclave.
	Sensitive map[string]bool
	// SensitiveParams records (function name -> parameter indices)
	// carrying sensitive values.
	SensitiveParams map[string]map[int]bool
}

// IsSensitive reports whether the analysis protects the named global.
func (r *Result) IsSensitive(global string) bool { return r.Sensitive[global] }

// SensitiveList returns the sorted protected-global names.
func (r *Result) SensitiveList() []string {
	out := make([]string, 0, len(r.Sensitive))
	for g := range r.Sensitive {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// absVal is the abstract value of a register: a taint bit plus a points-to
// set over globals.
type absVal struct {
	tainted bool
	ptsTo   map[string]bool
}

func (v absVal) clone() absVal {
	out := absVal{tainted: v.tainted}
	if v.ptsTo != nil {
		out.ptsTo = make(map[string]bool, len(v.ptsTo))
		for k := range v.ptsTo {
			out.ptsTo[k] = true
		}
	}
	return out
}

func taintJoin(a, b absVal) absVal {
	out := absVal{tainted: a.tainted || b.tainted}
	if a.ptsTo != nil || b.ptsTo != nil {
		out.ptsTo = map[string]bool{}
		for g := range a.ptsTo {
			out.ptsTo[g] = true
		}
		for g := range b.ptsTo {
			out.ptsTo[g] = true
		}
	}
	return out
}

// analyzer carries the whole-program state of one run.
type analyzer struct {
	res *Result
	// globalPts is the sequential abstraction of pointer-typed globals:
	// "the last store wins" — true in a single thread, false under
	// concurrency. This field is the soundness hole.
	globalPts map[string]absVal
}

// Analyze runs the sequential data-flow analysis over the module, starting
// from the named sensitive global roots (the "developer annotates some
// sensitive values" workflow of §1).
func Analyze(mod *ir.Module, roots []string) *Result {
	return AnalyzeWithParams(mod, roots, nil)
}

// AnalyzeWithParams additionally seeds sensitive function parameters
// (function name -> parameter indices), the annotation style of Glamdring
// ("Starting point: function arguments", Table 1).
func AnalyzeWithParams(mod *ir.Module, roots []string, params map[string]map[int]bool) *Result {
	a := &analyzer{
		res: &Result{
			Sensitive:       map[string]bool{},
			SensitiveParams: map[string]map[int]bool{},
		},
		globalPts: map[string]absVal{},
	}
	for _, r := range roots {
		a.res.Sensitive[r] = true
	}
	for fn, idxs := range params {
		a.res.SensitiveParams[fn] = map[int]bool{}
		for i := range idxs {
			a.res.SensitiveParams[fn][i] = true
		}
	}
	// Whole-program fixpoint: re-analyze every function until the
	// sensitive set stops growing. Each function body is interpreted
	// sequentially — the fatal assumption with threads.
	for changed := true; changed; {
		changed = false
		for _, fn := range mod.SortedFuncs() {
			if fn.External {
				continue
			}
			if a.analyzeFunc(fn) {
				changed = true
			}
		}
	}
	return a.res
}

// analyzeFunc interprets one function in program order with strong updates,
// returning true when it enlarged the sensitive set.
func (a *analyzer) analyzeFunc(fn *ir.Function) bool {
	grew := false
	vals := map[ir.Value]absVal{}
	if tp := a.res.SensitiveParams[fn.FName]; tp != nil {
		for i, p := range fn.Params {
			if tp[i] {
				vals[p] = absVal{tainted: true}
			}
		}
	}
	markSensitive := func(g string) {
		if !a.res.Sensitive[g] {
			a.res.Sensitive[g] = true
			grew = true
		}
	}
	eval := func(v ir.Value) absVal {
		if g, ok := v.(*ir.Global); ok {
			return absVal{ptsTo: map[string]bool{g.GName: true}}
		}
		return vals[v]
	}

	fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		switch t := in.(type) {
		case *ir.Load:
			p := eval(t.Ptr)
			out := absVal{tainted: p.tainted}
			for g := range p.ptsTo {
				if a.res.Sensitive[g] {
					out.tainted = true
				}
			}
			// A load of a pointer-typed global sees the last
			// points-to set stored there — sequentially.
			if g, isG := t.Ptr.(*ir.Global); isG {
				if pv, ok := a.globalPts[g.GName]; ok {
					out.ptsTo = pv.clone().ptsTo
				}
			}
			vals[t] = out
		case *ir.Store:
			val := eval(t.Val)
			ptr := eval(t.Ptr)
			if val.tainted {
				for g := range ptr.ptsTo {
					markSensitive(g)
				}
			}
			if g, ok := t.Ptr.(*ir.Global); ok && val.ptsTo != nil {
				// Strong update on the pointer variable.
				a.globalPts[g.GName] = val.clone()
			}
		case *ir.BinOp:
			vals[t] = taintJoin(eval(t.X), eval(t.Y))
		case *ir.Cmp:
			vals[t] = taintJoin(eval(t.X), eval(t.Y))
		case *ir.Cast:
			vals[t] = eval(t.Val).clone()
		case *ir.FieldAddr:
			vals[t] = eval(t.X).clone()
		case *ir.IndexAddr:
			vals[t] = taintJoin(eval(t.X), eval(t.Index))
		case *ir.Phi:
			out := absVal{}
			for _, e := range t.Edges {
				out = taintJoin(out, eval(e.Val))
			}
			vals[t] = out
		case *ir.Call:
			callee, ok := t.Callee.(*ir.Function)
			if !ok || callee.External {
				return
			}
			for i, arg := range t.Args {
				if !eval(arg).tainted {
					continue
				}
				if a.res.SensitiveParams[callee.FName] == nil {
					a.res.SensitiveParams[callee.FName] = map[int]bool{}
				}
				if !a.res.SensitiveParams[callee.FName][i] {
					a.res.SensitiveParams[callee.FName][i] = true
					grew = true
				}
			}
		}
	})
	return grew
}
