package dataflow

import (
	"testing"

	"privagic/internal/minic"
	"privagic/internal/passes"
	"privagic/internal/typing"
)

// figure3a is the motivating program of paper Figure 3.a: s is sensitive,
// f stores it through x (which points at a), and g — running in parallel —
// retargets x to b.
const figure3a = `
int a;
int b;
int* x;

void f(int s) {
	x = &a;
	*x = s;
}
void g() {
	x = &b;
}
`

func TestFigure3RaceLeaks(t *testing.T) {
	mod, err := minic.Compile("fig3a.c", figure3a)
	if err != nil {
		t.Fatal(err)
	}
	passes.RunAll(mod)
	res := AnalyzeWithParams(mod, nil, map[string]map[int]bool{"f": {0: true}})

	if !res.IsSensitive("a") || res.IsSensitive("b") {
		t.Fatalf("analysis found %v; want exactly [a]", res.SensitiveList())
	}

	// Adversarial interleaving: f runs its first store (x = &a), then g
	// fully retargets x to b, then f finishes (*x = s).
	outcome, err := SimulateRace(mod, res, "f", "g", []Step{
		{Thread: 0, N: 1}, // x = &a
		{Thread: 1, N: 8}, // x = &b (g to completion)
		{Thread: 0, N: 8}, // load x; *x = s
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Leaked) == 0 {
		t.Fatalf("no leak observed; secret in %v — the Figure 3 failure should reproduce", outcome.SecretIn)
	}
	if outcome.Leaked[0] != "b" {
		t.Errorf("leaked into %v, want b", outcome.Leaked)
	}

	// The sequential schedule, by contrast, leaks nothing: the analysis
	// is correct for single-threaded runs.
	seq, err := SimulateRace(mod, res, "f", "g", []Step{
		{Thread: 0, N: 100},
		{Thread: 1, N: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Leaked) != 0 {
		t.Errorf("sequential run leaked into %v; analysis should be sound sequentially", seq.Leaked)
	}
}

// TestPrivagicCatchesFigure3 is the other half of the paper's argument:
// with explicit secure typing, the same racy program is rejected at
// compile time (Figure 3.b).
func TestPrivagicCatchesFigure3(t *testing.T) {
	src := `
int color(blue) a;
int b;
int color(blue)* x;

void f(int color(blue) s) {
	x = &a;
	*x = s;
}
void g() {
	x = &b;
}
`
	mod, err := minic.Compile("fig3b.c", src)
	if err != nil {
		t.Fatal(err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: typing.Relaxed})
	if an.Err() == nil {
		t.Fatal("secure typing accepted the Figure 3.b program; it must reject x = &b")
	}
}

func TestTaintThroughCalls(t *testing.T) {
	src := `
int sink;
void store_it(int v) { sink = v; }
void f(int s) { store_it(s); }
`
	mod, err := minic.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	passes.RunAll(mod)
	res := AnalyzeWithParams(mod, nil, map[string]map[int]bool{"f": {0: true}})
	if !res.IsSensitive("sink") {
		t.Errorf("interprocedural taint missed sink; got %v", res.SensitiveList())
	}
}

func TestGlobalRootPropagates(t *testing.T) {
	src := `
int key;
int derived;
void f() { derived = key + 1; }
`
	mod, err := minic.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	passes.RunAll(mod)
	res := Analyze(mod, []string{"key"})
	if !res.IsSensitive("derived") {
		t.Errorf("taint through arithmetic missed derived; got %v", res.SensitiveList())
	}
}
