package dataflow

import (
	"fmt"

	"privagic/internal/ir"
)

// This file provides a concrete two-thread executor used to demonstrate
// the Figure 3 failure: the data-flow partition protects the locations the
// sequential analysis found, then an adversarial interleaving runs and we
// check whether the secret escaped into an unprotected location.

// concrete is a concrete value in the race simulation: possibly the secret,
// possibly a pointer to a global.
type concrete struct {
	secret bool
	ptr    string // global name when this value is an address
	i      int64
}

// Step is one scheduling quantum: run n instructions of thread tid.
type Step struct {
	Thread int
	N      int
}

// RaceOutcome reports where the secret ended up.
type RaceOutcome struct {
	// SecretIn lists the globals holding the secret after execution.
	SecretIn []string
	// Leaked lists globals holding the secret that the analysis left
	// unprotected — a confidentiality violation.
	Leaked []string
}

// SimulateRace executes two straight-line functions under the given
// interleaving, with the named parameter of thread 0's function bound to
// the secret. It then compares the secret's resting places against the
// analysis result. Control flow must be straight-line (the Figure 3
// functions are).
func SimulateRace(mod *ir.Module, res *Result, fn0, fn1 string, schedule []Step) (*RaceOutcome, error) {
	f0 := mod.Func(fn0)
	f1 := mod.Func(fn1)
	if f0 == nil || f1 == nil {
		return nil, fmt.Errorf("dataflow: functions %s/%s not found", fn0, fn1)
	}
	threads := []*raceThread{newRaceThread(f0, true), newRaceThread(f1, false)}
	globals := map[string]concrete{}

	for _, st := range schedule {
		if st.Thread < 0 || st.Thread >= len(threads) {
			return nil, fmt.Errorf("dataflow: bad thread %d", st.Thread)
		}
		t := threads[st.Thread]
		for i := 0; i < st.N && !t.done(); i++ {
			if err := t.step(globals); err != nil {
				return nil, err
			}
		}
	}
	// Run both to completion.
	for _, t := range threads {
		for !t.done() {
			if err := t.step(globals); err != nil {
				return nil, err
			}
		}
	}

	out := &RaceOutcome{}
	for g, v := range globals {
		if v.secret {
			out.SecretIn = append(out.SecretIn, g)
			if !res.IsSensitive(g) {
				out.Leaked = append(out.Leaked, g)
			}
		}
	}
	return out, nil
}

type raceThread struct {
	instrs []ir.Instr
	pc     int
	regs   map[ir.Value]concrete
}

func newRaceThread(fn *ir.Function, secretParam bool) *raceThread {
	t := &raceThread{regs: map[ir.Value]concrete{}}
	fn.Instrs(func(_ *ir.Block, in ir.Instr) {
		t.instrs = append(t.instrs, in)
	})
	if secretParam && len(fn.Params) > 0 {
		t.regs[fn.Params[0]] = concrete{secret: true}
	}
	return t
}

func (t *raceThread) done() bool { return t.pc >= len(t.instrs) }

func (t *raceThread) eval(globals map[string]concrete, v ir.Value) concrete {
	switch x := v.(type) {
	case *ir.Global:
		return concrete{ptr: x.GName}
	case *ir.ConstInt:
		return concrete{i: x.V}
	}
	return t.regs[v]
}

// step executes one instruction (loads/stores on globals; everything else
// propagates taint).
func (t *raceThread) step(globals map[string]concrete) error {
	in := t.instrs[t.pc]
	t.pc++
	switch x := in.(type) {
	case *ir.Load:
		p := t.eval(globals, x.Ptr)
		if p.ptr == "" {
			return fmt.Errorf("dataflow: race sim: load through non-global pointer")
		}
		t.regs[x] = globals[p.ptr]
	case *ir.Store:
		p := t.eval(globals, x.Ptr)
		if p.ptr == "" {
			return fmt.Errorf("dataflow: race sim: store through non-global pointer")
		}
		globals[p.ptr] = t.eval(globals, x.Val)
	case *ir.Ret, *ir.Br, *ir.CondBr:
		t.pc = len(t.instrs) // straight-line only
	default:
		if v, ok := in.(ir.Value); ok {
			var merged concrete
			for _, op := range in.Ops() {
				o := t.eval(globals, *op)
				if o.secret {
					merged.secret = true
				}
				if o.ptr != "" {
					merged.ptr = o.ptr
				}
			}
			t.regs[v] = merged
		}
	}
	return nil
}
