package bench

import (
	"fmt"
	"strings"
	"time"

	"privagic"
	"privagic/internal/audit"
	"privagic/internal/sources"
)

// AuditConfig parameterizes the static-audit cost experiment.
type AuditConfig struct {
	// Reps is the min-of-N repetition count for both timings.
	Reps int
}

// DefaultAudit returns the default repetition count.
func DefaultAudit() AuditConfig { return AuditConfig{Reps: 5} }

// AuditRow is one (program, mode) measurement: what the translation
// validator re-verified and what it cost relative to the compile itself.
type AuditRow struct {
	Program   string
	Mode      string
	Chunks    int
	Instrs    int
	Crossings int
	CompileUS float64 // full pipeline without the auditor, min of N, µs
	AuditUS   float64 // audit.Run over the partitioned output, min of N, µs
}

// AuditReport holds the whole experiment.
type AuditReport struct {
	Config AuditConfig
	Rows   []AuditRow
}

// Audit measures the static leak auditor on every evaluation program that
// partitions successfully: the wall-time of audit.Run (independent
// re-proof of the confidentiality/integrity/Iago rules over the
// partitioner's output plus the boundary report) against the wall-time of
// the compile it validates. Programs the secure type system rejects are
// skipped — there is no partition to validate.
func Audit(cfg AuditConfig) (*AuditReport, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	rep := &AuditReport{Config: cfg}
	progs := []struct {
		name, src string
		entries   []string
	}{
		{"figure6", sources.Figure6, []string{"main"}},
		{"wallet", sources.Wallet, nil},
		{"hashmap-2c", sources.HashmapColored2, []string{"run_ycsb"}},
		{"memcached", sources.MemcachedCoreColored, []string{"run_ycsb"}},
	}
	for _, p := range progs {
		for _, mode := range []privagic.Mode{privagic.Hardened, privagic.Relaxed} {
			opts := privagic.Options{Mode: mode, Entries: p.entries}
			prog, err := privagic.Compile(p.name+".c", p.src, opts)
			if err != nil {
				continue // rejected by typing/partitioning: nothing to audit
			}
			row := AuditRow{Program: p.name, Mode: mode.String()}
			var res *audit.Result
			for i := 0; i < cfg.Reps; i++ {
				start := time.Now()
				if _, err := privagic.Compile(p.name+".c", p.src, opts); err != nil {
					return nil, err
				}
				compile := float64(time.Since(start)) / float64(time.Microsecond)
				if i == 0 || compile < row.CompileUS {
					row.CompileUS = compile
				}
				start = time.Now()
				res = audit.Run(prog.Partitioned)
				aud := float64(time.Since(start)) / float64(time.Microsecond)
				if i == 0 || aud < row.AuditUS {
					row.AuditUS = aud
				}
			}
			if err := res.Err(); err != nil {
				return nil, fmt.Errorf("audit violations in %s (%s): %w", p.name, mode, err)
			}
			row.Chunks = res.Stats.Chunks
			row.Instrs = res.Stats.Instrs
			row.Crossings = res.Stats.Crossings
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// String renders the table.
func (r *AuditReport) String() string {
	var b strings.Builder
	b.WriteString("Static leak auditor — translation-validation cost (min of ")
	fmt.Fprintf(&b, "%d)\n", r.Config.Reps)
	fmt.Fprintf(&b, "%-12s %-9s %7s %7s %10s %12s %10s %9s\n",
		"program", "mode", "chunks", "instrs", "crossings", "compile(us)", "audit(us)", "overhead")
	for _, row := range r.Rows {
		over := "-"
		if row.CompileUS > 0 {
			over = fmt.Sprintf("%.1f%%", 100*row.AuditUS/row.CompileUS)
		}
		fmt.Fprintf(&b, "%-12s %-9s %7d %7d %10d %12.0f %10.0f %9s\n",
			row.Program, row.Mode, row.Chunks, row.Instrs, row.Crossings,
			row.CompileUS, row.AuditUS, over)
	}
	b.WriteString("every crossing above is re-proved legal; violations would fail the build under -audit=strict\n")
	return b.String()
}
