package bench

import (
	"strings"
	"testing"
)

// Quick configurations keep the test suite fast; the cmd/privagic-bench
// tool runs the full-size sweeps.
func quickFig9() Fig9Config {
	cfg := DefaultFig9()
	cfg.Ops = 4000
	cfg.ListOps = 100
	return cfg
}

func inBand(t *testing.T, what string, lo, hi, wantLo, wantHi, slack float64) {
	t.Helper()
	if hi < wantLo*(1-slack) || lo > wantHi*(1+slack) {
		t.Errorf("%s = [%.2f, %.2f], paper band [%.1f, %.1f]", what, lo, hi, wantLo, wantHi)
	}
}

// TestFig9Bands checks the six throughput-ratio bands of Figure 9 (§9.3.2).
func TestFig9Bands(t *testing.T) {
	r := Fig9(quickFig9())
	t.Log("\n" + r.String())
	for _, c := range []struct {
		structure  string
		piLo, piHi float64 // privagic vs intel-sdk
		upLo, upHi float64 // unprotected vs privagic
	}{
		{"treemap", 2.2, 2.7, 19.5, 26.7},
		{"hashmap", 1.6, 2.7, 3.6, 6.1},
		{"list", 1.1, 1.2, 1.2, 1.7},
	} {
		ilo, ihi := r.Ratio(c.structure, IntelSDK1, Privagic1)
		// Ratio(a,b) = throughput(a)/throughput(b); the paper states
		// Privagic "multiplies the throughput" => privagic/intel.
		plo, phi := r.Ratio(c.structure, Privagic1, IntelSDK1)
		_ = ilo
		_ = ihi
		inBand(t, c.structure+" privagic/intel", plo, phi, c.piLo, c.piHi, 0.15)
		ulo, uhi := r.Ratio(c.structure, Unprotected, Privagic1)
		inBand(t, c.structure+" unprotected/privagic", ulo, uhi, c.upLo, c.upHi, 0.15)
	}
	// Ordering: treemap degrades most, list least (§9.3.2).
	tLo, _ := r.Ratio("treemap", Unprotected, Privagic1)
	hLo, _ := r.Ratio("hashmap", Unprotected, Privagic1)
	lLo, _ := r.Ratio("list", Unprotected, Privagic1)
	if !(tLo > hLo && hLo > lLo) {
		t.Errorf("degradation ordering violated: treemap %.1f, hashmap %.1f, list %.1f", tLo, hLo, lLo)
	}
}

// TestFig10Band checks the 6.4x–9.2x latency ratio of Figure 10.
func TestFig10Band(t *testing.T) {
	cfg := DefaultFig10()
	cfg.Ops = 4000
	r := Fig10(cfg)
	t.Log("\n" + r.String())
	ratio := r.LatencyRatio(IntelSDK2, Privagic2)
	if ratio < 6.4*0.85 || ratio > 9.2*1.15 {
		t.Errorf("intel-sdk-2/privagic-2 latency = %.1fx, paper band [6.4, 9.2]", ratio)
	}
	if deg := r.LatencyRatio(Privagic2, Unprotected); deg < 3 {
		t.Errorf("privagic-2 degradation vs unprotected = %.1fx; the paper reports a significant degradation", deg)
	}
}

// TestFig8Shape checks the Figure 8 claims: Privagic 8.5–10x over Scone on
// small datasets, at least ~2.3x at 32 GiB, and within 5–20%% of
// Unprotected on small datasets; the LLC miss ratio grows with the
// dataset (§9.2.3).
func TestFig8Shape(t *testing.T) {
	cfg := DefaultFig8()
	cfg.Ops = 8000
	r := Fig8(cfg)
	t.Log("\n" + r.String())
	small := cfg.Sizes[0]
	big := cfg.Sizes[len(cfg.Sizes)-1]

	ps := r.Ratio(small, PrivagicMemcached, Scone)
	if ps < 8.5*0.9 || ps > 10*1.15 {
		t.Errorf("privagic/scone at %s = %.1fx, paper band [8.5, 10]", humanBytes(small), ps)
	}
	pb := r.Ratio(big, PrivagicMemcached, Scone)
	if pb < 2.3*0.85 {
		t.Errorf("privagic/scone at 32GiB = %.1fx, paper says at least 2.3x", pb)
	}
	if ps <= pb {
		t.Errorf("the privagic advantage must shrink with the dataset (%.1fx -> %.1fx)", ps, pb)
	}
	up := r.Ratio(small, Unprotected, PrivagicMemcached)
	if up < 1.05 || up > 1.25 {
		t.Errorf("unprotected/privagic at small dataset = %.2fx, paper band [1.05, 1.20]", up)
	}
	// LLC misses grow with dataset size (6.5% -> 17.6% in §9.2.3 for
	// 236MiB -> 32GiB; our simulated cache is smaller, the shape counts).
	var missSmall, missBig float64
	for _, row := range r.Rows {
		if row.System == Unprotected && row.SizeBytes == 236<<20 {
			missSmall = row.LLCMissRatio
		}
		if row.System == Unprotected && row.SizeBytes == big {
			missBig = row.LLCMissRatio
		}
	}
	if missBig <= missSmall {
		t.Errorf("LLC miss ratio must grow with the dataset: %.1f%% -> %.1f%%", missSmall*100, missBig*100)
	}
}

// TestTable4 checks the TCB metrics: a small per-enclave footprint and a
// large reduction versus full embedding.
func TestTable4(t *testing.T) {
	rep, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if rep.PrivagicModifiedLines == 0 || rep.PrivagicModifiedLines > 20 {
		t.Errorf("modified lines = %d, want a small nonzero count (paper: 9)", rep.PrivagicModifiedLines)
	}
	if rep.TCBReduction < 50 {
		t.Errorf("TCB reduction = %.0fx, paper reports ~200x", rep.TCBReduction)
	}
	if rep.PrivagicUserInstrs >= rep.TotalUserInstrs {
		t.Errorf("enclave user code (%d) not smaller than the application (%d)",
			rep.PrivagicUserInstrs, rep.TotalUserInstrs)
	}
}

// TestEffort checks the engineering-effort metric stays in the paper's
// order of magnitude: single digits per port.
func TestEffort(t *testing.T) {
	rep := Effort()
	t.Log("\n" + rep.String())
	for _, row := range rep.Rows {
		if row.ModifiedLines == 0 {
			t.Errorf("%s: no modified lines counted", row.Program)
		}
		// Single data structures stay single-digit like the paper; the
		// memcached core carries the classify/declassify scaffolding of
		// its protocol path too (the paper's port counted 9 lines on a
		// 24 841-line application; ours is ~150 lines, so the relative
		// effort is what must stay small).
		limit := 10
		if strings.Contains(row.Program, "memcached") {
			limit = 25
		}
		if row.ModifiedLines > limit {
			t.Errorf("%s: %d modified lines exceeds %d — not the paper's 'modest effort'",
				row.Program, row.ModifiedLines, limit)
		}
	}
}

// TestFig3 checks the motivation experiment end to end.
func TestFig3(t *testing.T) {
	rep, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if len(rep.DataflowProtected) != 1 || rep.DataflowProtected[0] != "a" {
		t.Errorf("dataflow protected %v, want exactly [a]", rep.DataflowProtected)
	}
	if len(rep.SequentialLeak) != 0 {
		t.Errorf("sequential run leaked: %v", rep.SequentialLeak)
	}
	if len(rep.LeakedInto) != 1 || rep.LeakedInto[0] != "b" {
		t.Errorf("racy run leaked into %v, want [b]", rep.LeakedInto)
	}
	if rep.PrivagicError == "" {
		t.Error("privagic did not reject the Figure 3.b program")
	}
	if !strings.Contains(rep.PrivagicError, "blue") {
		t.Errorf("privagic error does not mention the color: %s", rep.PrivagicError)
	}
}

// TestCrossOptGate runs the crossing-optimizer experiment at reduced
// scale: CrossOpt itself enforces the differential match and the ≥25%
// measured-reduction gate, so a nil error is the acceptance criterion.
func TestCrossOptGate(t *testing.T) {
	rep, err := CrossOpt(CrossOptConfig{Iters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fused < 1 || rep.Coalesced < 1 || rep.Merged < 1 {
		t.Errorf("expected all three rewrites to fire, got fused=%d coalesced=%d merged=%d",
			rep.Fused, rep.Coalesced, rep.Merged)
	}
}
