package bench

import (
	"testing"

	"privagic/internal/datastructs"
	"privagic/internal/ycsb"
)

// TestCalibrationSweep grid-searches the two free parameters against the
// paper's Figure 9 bands (a development aid, skipped in -short runs).
func TestCalibrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	cfg := DefaultFig9()
	cfg.Ops = 4000
	cfg.ListOps = 100
	type meas struct {
		tr measured
	}
	structs := map[string]meas{}
	mk := map[string]func(datastructs.Tracer) datastructs.Map{
		"treemap": func(tr datastructs.Tracer) datastructs.Map { return datastructs.NewRBTree(tr) },
		"hashmap": func(tr datastructs.Tracer) datastructs.Map { return datastructs.NewHashMap(cfg.Records/4, tr) },
		"list":    func(tr datastructs.Tracer) datastructs.Map { return datastructs.NewList(tr) },
	}
	dist := map[string]ycsb.Distribution{"treemap": ycsb.Uniform, "hashmap": ycsb.Zipfian, "list": ycsb.Zipfian}
	ops := map[string]int{"treemap": 4000, "hashmap": 4000, "list": 100}
	for name, f := range mk {
		c := cfg
		c.Distribution = dist[name]
		structs[name] = meas{tr: measureStructure(c, f, ops[name], ycsb.WorkloadC)}
		t.Logf("%s trace %+v foot %d MiB", name, structs[name].tr.avg, structs[name].tr.footprint>>20)
	}
	type band struct{ lo, hi float64 }
	paperUP := map[string]band{"treemap": {19.5, 26.7}, "hashmap": {3.6, 6.1}, "list": {1.2, 1.7}}
	paperPI := map[string]band{"treemap": {2.2, 2.7}, "hashmap": {1.6, 2.7}, "list": {1.1, 1.2}}
	best := 1e18
	var bestF, bestT, bestM int64
	for _, fault := range []int64{40000, 60000, 90000, 130000, 180000, 240000} {
		for _, tlb := range []int64{4000, 6000, 8000, 12000, 16000} {
			for _, msg := range []int64{800, 1000, 1200} {
				m := *cfg.Machine
				m.Cost.EPCPageFault = fault
				m.Cost.TLBRefill = tlb
				m.Cost.QueueMessage = msg
				score := 0.0
				for name, ms := range structs {
					u := DataStructureRequest(&m, Unprotected, ms.tr.avg, ms.tr.footprint)
					p := DataStructureRequest(&m, Privagic1, ms.tr.avg, ms.tr.footprint)
					i := DataStructureRequest(&m, IntelSDK1, ms.tr.avg, ms.tr.footprint)
					up := float64(p) / float64(u)
					pi := float64(i) / float64(p)
					score += bandErr(up, paperUP[name]) + bandErr(pi, paperPI[name])
				}
				if score < best {
					best, bestF, bestT, bestM = score, fault, tlb, msg
				}
			}
		}
	}
	t.Logf("best score %.3f fault=%d tlb=%d msg=%d", best, bestF, bestT, bestM)
	m := *cfg.Machine
	m.Cost.EPCPageFault = bestF
	m.Cost.TLBRefill = bestT
	m.Cost.QueueMessage = bestM
	for name, ms := range structs {
		u := DataStructureRequest(&m, Unprotected, ms.tr.avg, ms.tr.footprint)
		p := DataStructureRequest(&m, Privagic1, ms.tr.avg, ms.tr.footprint)
		i := DataStructureRequest(&m, IntelSDK1, ms.tr.avg, ms.tr.footprint)
		t.Logf("%-8s u/p=%.1f (want %v)  p/i... i/p=%.1f (want %v)  [u=%d p=%d i=%d]",
			name, float64(p)/float64(u), paperUP[name], float64(i)/float64(p), paperPI[name], u, p, i)
	}
}

func bandErr(x float64, b struct{ lo, hi float64 }) float64 {
	mid := (b.lo + b.hi) / 2
	switch {
	case x >= b.lo && x <= b.hi:
		return 0
	case x < b.lo:
		return (b.lo - x) / mid
	default:
		return (x - b.hi) / mid
	}
}
