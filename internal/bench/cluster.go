package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"privagic/internal/cluster"
	"privagic/internal/memcached"
	"privagic/internal/obs"
	"privagic/internal/retry"
	"privagic/internal/ycsb"
)

// The cluster experiment measures what the sharded deployment buys and
// costs, in three parts:
//
//   - Router tax: YCSB-A throughput against a direct single server (every
//     client its own raw connection) vs through the router at one shard
//     with an equally wide pool. The delta is pure router overhead: hash,
//     pool, generation stamping and one ring lookup per op, plus — since
//     the gray-failure hardening — an FNV integrity seal/verify on every
//     value, an RTT sample on every op, breaker accounting, and a hedge
//     timer arm/disarm on every Get. The acceptance bar is a regression
//     within 10% (it was 5% for the pre-hardening router, which measured
//     ~-3%; the defenses are priced in deliberately — see EXPERIMENTS.md
//     for the per-hook CPU breakdown).
//   - Scaling curve: 1..8 shards with FIXED per-shard capacity (2 data
//     connections each — a connection pins a server worker, so conns are
//     the shard's parallelism). Clients outnumber any one shard's
//     capacity; throughput should grow with the shard count.
//   - Failover blackout: how long a killed shard's keys stay unservable
//     before probes fence it and retries land on survivors.

// ClusterConfig parameterizes the experiment.
type ClusterConfig struct {
	// Ops is the total operation count per throughput row.
	Ops int
	// Clients is the concurrent client count (each runs its own YCSB
	// substream via Generator.Split).
	Clients int
	// Shards lists the cluster sizes of the scaling curve.
	Shards []int
	// Kills is how many kill/respawn cycles the blackout measurement runs.
	Kills int
	// Reps runs each throughput row this many times and keeps the
	// fastest, damping scheduler noise on small hosts.
	Reps int
}

// DefaultCluster returns the full-scale setup.
func DefaultCluster() ClusterConfig {
	return ClusterConfig{Ops: 40000, Clients: 6, Shards: []int{1, 2, 4, 8}, Kills: 10, Reps: 3}
}

// ClusterRow is one throughput measurement.
type ClusterRow struct {
	Scenario  string
	Shards    int
	Ops       int
	Errors    int64
	WallMs    float64
	OpsPerSec float64
	Retries   int64
	Sheds     int64
}

// ClusterReport holds the scaling curve and the failover blackout.
type ClusterReport struct {
	Config ClusterConfig
	Rows   []ClusterRow

	// TaxPct is the router tax at one shard as the median of per-rep
	// paired ratios (routed/direct within the same rep), in percent.
	// The pairing cancels host drift that a best-of-each comparison
	// splits unfairly across the two scenarios.
	TaxPct float64

	// Blackout: per kill, the time from Kill to the first successful Get
	// of a key the victim owned.
	BlackoutMs    []float64
	DetectAvgUs   float64
	DetectMaxUs   int64
	FailoversSeen int64
}

const benchValueSize = 128

// scaleClients is the fixed offered load of the scaling curve: enough
// concurrent clients that even the largest cluster's total capacity
// (shards x 2 connections) is saturated, so throughput reflects shard
// capacity rather than client count.
const scaleClients = 16

// benchRouterConfig is the throughput-row config: probes gentle enough
// (25ms) that their dial/close churn does not tax the measured path.
func benchRouterConfig() cluster.RouterConfig {
	return cluster.RouterConfig{
		PoolConns:     8,
		OpTimeout:     25 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  5 * time.Millisecond,
		ProbeFails:    2,
		// Pinned to R=1: this experiment prices the ROUTER (hash, pool,
		// stamps, seal, health hooks) against a raw connection, and its
		// scaling curve assumes each op costs one server op. The write
		// amplification of R=2 is priced separately by -exp replication.
		Replication: 1,
		Retry: retry.Policy{
			MaxAttempts: 6,
			Backoff:     200 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	}
}

// fastProbeConfig is the blackout-row config: 1ms probes and a 2-strike
// fence, so detection latency — the quantity under measurement — is
// bounded by the probe loop, not by it being lazy.
func fastProbeConfig() cluster.RouterConfig {
	cfg := benchRouterConfig()
	cfg.ProbeInterval = time.Millisecond
	return cfg
}

// Cluster runs the experiment.
func Cluster(cfg ClusterConfig) (*ClusterReport, error) {
	if cfg.Ops < 1 {
		cfg.Ops = 1
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4, 8}
	}
	if cfg.Kills < 1 {
		cfg.Kills = 1
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	rep := &ClusterReport{Config: cfg}

	// The tax pair runs interleaved — direct, routed, direct, routed —
	// rather than as two sequential best-of blocks, so slow-host drift
	// (GC pressure, CPU frequency, background load) lands on both
	// scenarios instead of flattering whichever ran during the quiet
	// stretch. The tax itself is the median of the per-rep paired
	// ratios: within one rep the host state is as equal as it gets, so
	// the ratio cancels drift, and the median rejects the occasional
	// rep where the scheduler starved one side. The pair also gets
	// extra reps beyond the scale rows — a small difference of two
	// noisy numbers needs more samples than an absolute row does.
	taxReps := cfg.Reps
	if taxReps < 7 {
		taxReps = 7
	}
	var direct, tax ClusterRow
	ratios := make([]float64, 0, taxReps)
	for i := 0; i < taxReps; i++ {
		d, err := clusterDirectRow(cfg)
		if err != nil {
			return nil, err
		}
		t, err := clusterRouterRow(cfg, 1, true)
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, t.OpsPerSec/d.OpsPerSec)
		if i == 0 || d.OpsPerSec > direct.OpsPerSec {
			direct = d
		}
		if i == 0 || t.OpsPerSec > tax.OpsPerSec {
			tax = t
		}
	}
	sort.Float64s(ratios)
	rep.TaxPct = 100 * (ratios[len(ratios)/2] - 1)
	rep.Rows = append(rep.Rows, direct, tax)
	for _, shards := range cfg.Shards {
		shards := shards
		row, err := bestOf(cfg.Reps, func() (ClusterRow, error) { return clusterRouterRow(cfg, shards, false) })
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	if err := clusterBlackout(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// bestOf runs a throughput row reps times and keeps the fastest, damping
// scheduler noise on small hosts.
func bestOf(reps int, run func() (ClusterRow, error)) (ClusterRow, error) {
	var best ClusterRow
	for i := 0; i < reps; i++ {
		row, err := run()
		if err != nil {
			return row, err
		}
		if i == 0 || row.OpsPerSec > best.OpsPerSec {
			best = row
		}
	}
	return best, nil
}

// benchStreams builds the per-client deterministic substreams.
func benchStreams(cfg ClusterConfig) ([]*ycsb.Generator, error) {
	base, err := ycsb.New(ycsb.Config{
		Records:      4096,
		Mix:          ycsb.WorkloadA,
		Distribution: ycsb.Zipfian,
		Seed:         42,
	})
	if err != nil {
		return nil, err
	}
	return base.Split(cfg.Clients), nil
}

// clusterDirectRow is the no-router baseline: every client owns a raw
// connection to one server.
func clusterDirectRow(cfg ClusterConfig) (ClusterRow, error) {
	row := ClusterRow{Scenario: "direct", Shards: 1, Ops: cfg.Ops}
	store := memcached.NewStore(1<<12, 0)
	srv, err := memcached.NewServer("127.0.0.1:0", store, cfg.Clients*2)
	if err != nil {
		return row, err
	}
	defer srv.Close()
	streams, err := benchStreams(cfg)
	if err != nil {
		return row, err
	}
	value := make([]byte, benchValueSize)
	perClient := cfg.Ops / cfg.Clients
	var wg sync.WaitGroup
	errs := make([]int64, cfg.Clients)
	clients := make([]*memcached.Client, cfg.Clients)
	for i := range clients {
		c, err := memcached.DialTimeout(srv.Addr(), 25*time.Millisecond)
		if err != nil {
			return row, err
		}
		clients[i] = c
		defer c.Close()
	}
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, gen := clients[id], streams[id]
			for n := 0; n < perClient; n++ {
				op := gen.Next()
				key := fmt.Sprintf("k%d", op.Key)
				var err error
				if op.Kind == ycsb.OpRead {
					_, _, err = c.Get(key)
				} else {
					err = c.Set(key, value, 0)
				}
				if err != nil {
					errs[id]++
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, e := range errs {
		row.Errors += e
	}
	row.WallMs = float64(wall.Microseconds()) / 1e3
	row.OpsPerSec = float64(perClient*cfg.Clients) / wall.Seconds()
	return row, nil
}

// clusterRouterRow measures the routed path at a given shard count. With
// wide set, the per-shard pool matches the client count (the router-tax
// comparison against the direct row); otherwise each shard gets the fixed
// 2-connection capacity of the scaling curve.
func clusterRouterRow(cfg ClusterConfig, shards int, wide bool) (ClusterRow, error) {
	scenario := fmt.Sprintf("scale x%d", shards)
	workers, poolConns := 4, 2
	if wide {
		scenario = "router x1"
		workers, poolConns = cfg.Clients*2, cfg.Clients+2
	} else {
		cfg.Clients = scaleClients
	}
	row := ClusterRow{Scenario: scenario, Shards: shards, Ops: cfg.Ops}
	cl, err := cluster.New(cluster.Config{Shards: shards, Workers: workers})
	if err != nil {
		return row, err
	}
	defer cl.Close()
	rcfg := benchRouterConfig()
	rcfg.PoolConns = poolConns
	rt, err := cluster.NewRouter(cl, rcfg)
	if err != nil {
		return row, err
	}
	defer rt.Close()
	streams, err := benchStreams(cfg)
	if err != nil {
		return row, err
	}
	value := make([]byte, benchValueSize)
	perClient := cfg.Ops / cfg.Clients
	var wg sync.WaitGroup
	errs := make([]int64, cfg.Clients)
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen := streams[id]
			for n := 0; n < perClient; n++ {
				op := gen.Next()
				key := fmt.Sprintf("k%d", op.Key)
				var err error
				if op.Kind == ycsb.OpRead {
					_, _, err = rt.Get(key)
				} else {
					err = rt.Set(key, value)
				}
				if err != nil {
					errs[id]++
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, e := range errs {
		row.Errors += e
	}
	cs := rt.Counters()
	row.Retries, row.Sheds = cs["retries"], cs["sheds"]
	row.WallMs = float64(wall.Microseconds()) / 1e3
	row.OpsPerSec = float64(perClient*cfg.Clients) / wall.Seconds()
	return row, nil
}

// clusterBlackout measures the user-visible window around a shard kill:
// the time from Kill to the first successful Get of a key the victim
// owned (retries riding through the fence onto a survivor).
func clusterBlackout(cfg ClusterConfig, rep *ClusterReport) error {
	cl, err := cluster.New(cluster.Config{Shards: 2})
	if err != nil {
		return err
	}
	defer cl.Close()
	rt, err := cluster.NewRouter(cl, fastProbeConfig())
	if err != nil {
		return err
	}
	defer rt.Close()
	reg := obs.NewRegistry()
	rt.Instrument(reg, nil)

	for k := 0; k < cfg.Kills; k++ {
		// A key currently owned by shard 0 (re-resolved per cycle: the
		// ring is whole again after each readmit).
		var key string
		for i := 0; ; i++ {
			key = fmt.Sprintf("bl%d-%d", k, i)
			if rt.Owner(key) == 0 {
				break
			}
		}
		if err := rt.Set(key, []byte("v")); err != nil {
			return fmt.Errorf("bench: blackout set: %w", err)
		}
		start := time.Now()
		if err := cl.Kill(0); err != nil {
			return err
		}
		for {
			if _, _, err := rt.Get(key); err == nil {
				break
			}
		}
		rep.BlackoutMs = append(rep.BlackoutMs, float64(time.Since(start).Microseconds())/1e3)
		if err := cl.Respawn(0); err != nil {
			return err
		}
		deadline := time.Now().Add(2 * time.Second)
		for rt.Counters()["shards_up"] != 2 {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: respawned shard was not readmitted")
			}
			time.Sleep(time.Millisecond)
		}
	}
	count, sum, max := reg.Histogram("cluster.failover_detect_us").Stats()
	if count > 0 {
		rep.DetectAvgUs = float64(sum) / float64(count)
	}
	rep.DetectMaxUs = max
	rep.FailoversSeen = rt.Counters()["failovers"]
	return nil
}

// String renders the report.
func (r *ClusterReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded cluster — YCSB-A, %d ops, %d clients (shared router, split substreams)\n",
		r.Config.Ops, r.Config.Clients)
	fmt.Fprintf(&b, "scale rows: %d clients against a fixed 2-connection capacity per shard\n", scaleClients)
	fmt.Fprintf(&b, "%-12s %7s %10s %12s %9s %9s %8s\n",
		"scenario", "shards", "wall-ms", "ops/sec", "errors", "retries", "sheds")
	var directOps, oneShardOps float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %7d %10.1f %12.0f %9d %9d %8d\n",
			row.Scenario, row.Shards, row.WallMs, row.OpsPerSec, row.Errors, row.Retries, row.Sheds)
		if row.Scenario == "direct" {
			directOps = row.OpsPerSec
		}
		if row.Scenario == "router x1" {
			oneShardOps = row.OpsPerSec
		}
	}
	if directOps > 0 && oneShardOps > 0 {
		fmt.Fprintf(&b, "router tax at one shard: %+.1f%% median-of-pairs (acceptance: within 10%%, hardened router)\n",
			r.TaxPct)
	}
	if len(r.BlackoutMs) > 0 {
		min, max, sum := r.BlackoutMs[0], r.BlackoutMs[0], 0.0
		for _, v := range r.BlackoutMs {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Fprintf(&b, "failover blackout over %d kills: min %.1fms avg %.1fms max %.1fms (probe interval 1ms, 2-strike fence)\n",
			len(r.BlackoutMs), min, sum/float64(len(r.BlackoutMs)), max)
		fmt.Fprintf(&b, "fence detection: avg %.0fus max %dus across %d failovers\n",
			r.DetectAvgUs, r.DetectMaxUs, r.FailoversSeen)
	}
	return b.String()
}
