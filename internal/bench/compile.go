package bench

import (
	"fmt"
	"strings"
	"time"

	"privagic"
)

// The compile experiment measures what the closure-compiled execution
// tier buys on an interpreter-bound workload: a pure-compute integer
// loop whose locals mem2reg promotes to SSA registers, so the reference
// interpreter spends its time in the per-instruction dispatch loop and
// the value map — exactly the overhead the compiled tier removes by
// fusing each instruction into a pre-resolved step closure. The same
// workload then runs once under the differential oracle, which
// re-executes every chunk on both engines in lockstep and hard-errors on
// any divergence — the run that makes the speedup trustworthy.

// compileSrc is the workload; the trip count arrives as the entry
// argument so every engine executes the identical program.
const compileSrc = `
entry long hot(long n) {
	long a = 1;
	long b = 2;
	long s = 0;
	for (long i = 0; i < n; i++) {
		a = a * 31 + i;
		b = b ^ (a >> 3);
		s = s + (a & 1023) - (b % 7);
		if (s > 1000000) {
			s = s - 1000000;
		}
	}
	return s;
}
`

// CompileConfig parameterizes the experiment.
type CompileConfig struct {
	// Iters is the workload loop trip count per call.
	Iters int64
	// Sweeps is the min-of-K repetition count per engine.
	Sweeps int
	// DiffIters is the loop trip count of the differential-oracle run
	// (the oracle interprets and shadow-executes, so it costs more than
	// either engine alone).
	DiffIters int64
}

// DefaultCompile returns the full-scale setup.
func DefaultCompile() CompileConfig {
	return CompileConfig{Iters: 2_000_000, Sweeps: 5, DiffIters: 200_000}
}

// CompileReport holds the measured evidence.
type CompileReport struct {
	Config CompileConfig

	// Ret is the workload result every engine must return.
	Ret int64
	// InterpNS/CompiledNS are the min-of-K wall times of one call, in
	// nanoseconds.
	InterpNS   int64
	CompiledNS int64
	// Speedup is InterpNS / CompiledNS.
	Speedup float64
	// CompileUS is the one-time unit lowering cost, in microseconds.
	CompileUS int64
	// CompiledDispatches counts bodies the compiled tier executed across
	// the compiled-engine sweeps.
	CompiledDispatches int64
	// DiffRet is the differential run's result (must equal an
	// interpreter run at the same trip count); Divergences must be zero.
	DiffRet     int64
	Divergences int64
}

// CompileBench runs the experiment. It returns an error if any engine
// disagrees on the result, if the differential oracle reports a
// divergence, or if the speedup misses the 5x acceptance gate.
func CompileBench(cfg CompileConfig) (*CompileReport, error) {
	if cfg.Iters < 1 {
		cfg.Iters = 1
	}
	if cfg.Sweeps < 1 {
		cfg.Sweeps = 1
	}
	if cfg.DiffIters < 1 {
		cfg.DiffIters = cfg.Iters / 10
		if cfg.DiffIters < 1 {
			cfg.DiffIters = 1
		}
	}
	rep := &CompileReport{Config: cfg}

	type result struct {
		ret  int64
		best time.Duration
		cus  int64
		disp int64
		divs int64
	}
	runEngine := func(engine privagic.Engine, iters int64, sweeps int) (*result, error) {
		prog, err := privagic.Compile("compile.c", compileSrc, privagic.Options{
			Mode:    privagic.Relaxed,
			Entries: []string{"hot"},
			Engine:  engine,
		})
		if err != nil {
			return nil, fmt.Errorf("compile bench: %s compile: %w", engine, err)
		}
		inst := prog.Instantiate(nil)
		defer inst.Close()
		// Warm-up call: first-touch allocation and queue setup stay out
		// of the measured window.
		ret, err := inst.Call("hot", iters)
		if err != nil {
			return nil, fmt.Errorf("compile bench: %s run: %w", engine, err)
		}
		best := time.Duration(1<<63 - 1)
		for k := 0; k < sweeps; k++ {
			start := time.Now()
			r, err := inst.Call("hot", iters)
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("compile bench: %s sweep %d: %w", engine, k, err)
			}
			if r != ret {
				return nil, fmt.Errorf("compile bench: %s sweep %d returned %d, first call returned %d", engine, k, r, ret)
			}
			if d < best {
				best = d
			}
		}
		st := inst.ExecStats()
		return &result{
			ret:  ret,
			best: best,
			cus:  st.CompileTime.Microseconds(),
			disp: st.CompiledDispatches,
			divs: st.OracleDivergences,
		}, nil
	}

	interp, err := runEngine(privagic.EngineInterp, cfg.Iters, cfg.Sweeps)
	if err != nil {
		return nil, err
	}
	compiled, err := runEngine(privagic.EngineCompiled, cfg.Iters, cfg.Sweeps)
	if err != nil {
		return nil, err
	}
	if compiled.ret != interp.ret {
		return nil, fmt.Errorf("compile bench: engines disagree: interp %d, compiled %d", interp.ret, compiled.ret)
	}
	if compiled.disp == 0 {
		return nil, fmt.Errorf("compile bench: compiled engine never dispatched a compiled body")
	}

	// The differential run: both engines lockstep per chunk, hard-error
	// on any divergence. Reduced trip count (the oracle runs everything
	// twice), same program semantics.
	diff, err := runEngine(privagic.EngineDifferential, cfg.DiffIters, 1)
	if err != nil {
		return nil, err
	}
	if diff.divs != 0 {
		return nil, fmt.Errorf("compile bench: differential oracle reported %d divergence(s)", diff.divs)
	}
	diffRef, err := runEngine(privagic.EngineInterp, cfg.DiffIters, 1)
	if err != nil {
		return nil, err
	}
	if diff.ret != diffRef.ret {
		return nil, fmt.Errorf("compile bench: differential run returned %d, interpreter reference %d", diff.ret, diffRef.ret)
	}

	rep.Ret = interp.ret
	rep.InterpNS = interp.best.Nanoseconds()
	rep.CompiledNS = compiled.best.Nanoseconds()
	if rep.CompiledNS > 0 {
		rep.Speedup = float64(rep.InterpNS) / float64(rep.CompiledNS)
	}
	rep.CompileUS = compiled.cus
	rep.CompiledDispatches = compiled.disp
	rep.DiffRet = diff.ret
	rep.Divergences = diff.divs

	// The acceptance gate: a compiled tier that cannot clear 5x on the
	// workload built to be interpreter-bound has regressed.
	if rep.Speedup < 5 {
		return nil, fmt.Errorf("compile bench: speedup %.2fx below the 5x gate (interp %v, compiled %v)",
			rep.Speedup, interp.best, compiled.best)
	}
	return rep, nil
}

// String renders the report.
func (r *CompileReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "closure-compiled execution — pure-compute workload (%d iterations/call, min of %d)\n",
		r.Config.Iters, r.Config.Sweeps)
	fmt.Fprintf(&b, "  %-28s %14s\n", "", "wall/call")
	fmt.Fprintf(&b, "  %-28s %14s\n", "interpreter", time.Duration(r.InterpNS))
	fmt.Fprintf(&b, "  %-28s %14s\n", "compiled", time.Duration(r.CompiledNS))
	fmt.Fprintf(&b, "  speedup: %.2fx   (unit lowering %dus, %d compiled dispatches)\n",
		r.Speedup, r.CompileUS, r.CompiledDispatches)
	fmt.Fprintf(&b, "  differential oracle: %d iterations, %d divergences, result %d matches the interpreter\n",
		r.Config.DiffIters, r.Divergences, r.DiffRet)
	return b.String()
}
