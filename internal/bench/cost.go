package bench

import (
	"privagic/internal/sgx"
)

// System identifies one evaluated configuration of §9.
type System int

// Systems.
const (
	Unprotected       System = iota + 1
	Privagic1                // whole structure in one enclave, hardened (§9.3)
	IntelSDK1                // EDL interface, one enclave
	Privagic2                // keys and values in two enclaves, relaxed
	IntelSDK2                // EDL, two enclaves
	Scone                    // whole application in one enclave (§9.2)
	PrivagicMemcached        // partitioned memcached (central map colored)
)

var systemNames = map[System]string{
	Unprotected:       "unprotected",
	Privagic1:         "privagic-1",
	IntelSDK1:         "intel-sdk-1",
	Privagic2:         "privagic-2",
	IntelSDK2:         "intel-sdk-2",
	Scone:             "scone",
	PrivagicMemcached: "privagic",
}

// String names the system.
func (s System) String() string { return systemNames[s] }

// workCycles prices the memory behaviour of one request.
func workCycles(m *sgx.Machine, tr RequestTrace, inEnclave bool, footprint, epc int64) int64 {
	c := &m.Cost
	var cycles int64
	if inEnclave {
		cycles += int64(float64(tr.Hits*c.LLCHit) * c.HitEnclaveFactor)
		cycles += tr.RandMisses * c.EnclaveMiss()
		cycles += int64(float64(tr.SeqMisses*c.StreamMiss) * c.StreamEnclaveFactor)
		// EPC paging: when the enclave's data outgrows the EPC, the
		// cold fraction of the touched pages faults (SGXv1's EWB
		// path dominates the paper's machine-A treemap numbers).
		if epc > 0 && footprint > epc {
			resident := float64(epc) / float64(footprint)
			// Fault probability follows the workload's coldness:
			// the EPC out-set is the reuse-free tail, which skewed
			// workloads barely touch (missRatio² weighting).
			faults := tr.ColdPagesRand * (1 - resident) * tr.MissRatio * tr.MissRatio
			cycles += int64(faults * float64(c.EPCPageFault))
		}
	} else {
		cycles += tr.Hits * c.LLCHit
		cycles += tr.RandMisses*c.LLCMiss + tr.SeqMisses*c.StreamMiss
	}
	return cycles
}

// DataStructureRequest prices one map operation (Figure 9 and 10
// configurations) given its access trace.
func DataStructureRequest(m *sgx.Machine, sys System, tr RequestTrace, footprint int64) int64 {
	c := &m.Cost
	switch sys {
	case Unprotected:
		return workCycles(m, tr, false, 0, 0)
	case Privagic1:
		// One message to the enclave-resident worker, one back over
		// the lock-free queues; no transition, no TLB flush.
		return 2*c.QueueMessage + workCycles(m, tr, true, footprint, m.EPCBytes)
	case IntelSDK1:
		// A lock-based switchless ecall/oreturn pair, plus the TLB
		// refills the flushed enclave TLB forces: a cheap cached-PTE
		// walk for every touched page, a deep walk for the cold ones.
		return 2*c.SwitchlessCall + tlbCost(c, tr) +
			workCycles(m, tr, true, footprint, m.EPCBytes)
	case Privagic2:
		// Two enclaves: U -> red (key lookup) -> declassify -> blue
		// (value fetch) -> U: six queue hops (Figure 7 style spawn /
		// cont / completion traffic), plus one indirection load per
		// split field (§7.2).
		return 6*c.QueueMessage + 2*c.LLCMiss +
			workCycles(m, tr, true, footprint/2, m.EPCBytes)
	case IntelSDK2:
		// Two EDL enclaves: the key lookup, the cross-enclave copy
		// through unsafe memory, and the value fetch cost four
		// switchless round trips, each paying lock contention as the
		// two enclaves ping-pong the switchless workers (§9.3.2: "two
		// colors exacerbate the advantage ... because of more enclave
		// transitions").
		return 4*(2*c.SwitchlessCall+c.SwitchlessContention) +
			2*tlbCost(c, tr) + 4*c.LLCMiss +
			workCycles(m, tr, true, footprint/2, m.EPCBytes)
	}
	return workCycles(m, tr, false, 0, 0)
}

// tlbCost prices the post-ECALL TLB refills: every touched page pays a
// cached-PTE walk; the reuse-free pages (cold, weighted by the workload's
// coldness) pay a full walk with EPC metadata checks.
func tlbCost(c *sgx.CostModel, tr RequestTrace) int64 {
	const cachedWalk = 40
	return tr.Pages*cachedWalk + int64(tr.ColdPagesRand*tr.MissRatio*float64(c.TLBRefill))
}

// memcachedProtocol approximates the request parsing/formatting work.
const memcachedProtocolCycles = 2000

// MemcachedRequest prices one memcached request (Figure 8 configurations):
// YCSB over loopback costs the server a network read and write, plus a
// lock acquire/release pair around the central map.
func MemcachedRequest(m *sgx.Machine, sys System, tr RequestTrace, footprint int64) int64 {
	c := &m.Cost
	const netSyscalls = 2 // read + write on the connection
	switch sys {
	case Unprotected:
		return netSyscalls*c.Syscall + memcachedProtocolCycles +
			200 + // uncontended futex pair
			workCycles(m, tr, false, 0, 0)
	case PrivagicMemcached:
		// Network and parsing stay in normal mode; only the central
		// map access enters the enclave, over the queues. The enclave
		// code "only calls the operating system twice: to acquire a
		// lock and to release it" (§9.2.3) — uncontended, so no exit.
		return netSyscalls*c.Syscall + memcachedProtocolCycles +
			2*c.QueueMessage + 600 +
			workCycles(m, tr, true, footprint, m.EPCBytes)
	case Scone:
		// Everything runs in the enclave: network reads/writes and
		// both futex operations become switchless system calls from
		// inside (§9.2.3: "Scone has to perform many system calls
		// from the enclave"), and parsing pays enclave-mode misses.
		const sconeSyscalls = netSyscalls + 1 + 2 + 2 // net + epoll + futex pair + timer
		return sconeSyscalls*c.SyscallFromEnclave +
			2*memcachedProtocolCycles +
			workCycles(m, tr, true, footprint, m.EPCBytes)
	}
	return workCycles(m, tr, false, 0, 0)
}

// ThroughputOpsPerSec converts a per-request cycle cost into the closed-loop
// throughput of the paper's load (6 YCSB clients saturating the server's
// worker threads).
func ThroughputOpsPerSec(m *sgx.Machine, cyclesPerOp int64, parallelism int) float64 {
	if cyclesPerOp <= 0 {
		return 0
	}
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > m.Cores {
		parallelism = m.Cores
	}
	return float64(parallelism) * m.FreqGHz * 1e9 / float64(cyclesPerOp)
}

// LatencyMicros converts cycles to microseconds.
func LatencyMicros(m *sgx.Machine, cycles int64) float64 {
	return m.SecondsFor(cycles) * 1e6
}
