package bench

import (
	"testing"

	"privagic/internal/sgx"
)

func TestWorkCyclesModes(t *testing.T) {
	m := sgx.MachineA()
	tr := RequestTrace{Hits: 10, RandMisses: 5, SeqMisses: 20, Pages: 6, ColdPagesRand: 2, MissRatio: 0.5}
	normal := workCycles(m, tr, false, 0, 0)
	enclave := workCycles(m, tr, true, 0, 0) // no EPC pressure
	if enclave <= normal {
		t.Errorf("enclave work (%d) not dearer than normal (%d)", enclave, normal)
	}
	// The dominant delta is the random-miss factor.
	wantMin := tr.RandMisses * (m.Cost.EnclaveMiss() - m.Cost.LLCMiss)
	if enclave-normal < wantMin {
		t.Errorf("enclave delta %d below the miss-factor floor %d", enclave-normal, wantMin)
	}
}

func TestEPCPressureOnlyBeyondCapacity(t *testing.T) {
	m := sgx.MachineA()
	tr := RequestTrace{RandMisses: 2, Pages: 8, ColdPagesRand: 4, MissRatio: 1}
	fits := workCycles(m, tr, true, m.EPCBytes/2, m.EPCBytes)
	over := workCycles(m, tr, true, m.EPCBytes*2, m.EPCBytes)
	if fits >= over {
		t.Errorf("EPC paging missing: fits=%d over=%d", fits, over)
	}
	if over-fits < m.Cost.EPCPageFault {
		t.Errorf("paging delta %d below one fault", over-fits)
	}
}

func TestMissRatioGatesPaging(t *testing.T) {
	m := sgx.MachineA()
	hot := RequestTrace{RandMisses: 1, Pages: 8, ColdPagesRand: 4, MissRatio: 0.05}
	cold := RequestTrace{RandMisses: 1, Pages: 8, ColdPagesRand: 4, MissRatio: 0.9}
	h := workCycles(m, hot, true, m.EPCBytes*2, m.EPCBytes)
	c := workCycles(m, cold, true, m.EPCBytes*2, m.EPCBytes)
	if h >= c {
		t.Errorf("zipfian-hot request (%d) should page less than uniform-cold (%d)", h, c)
	}
}

func TestSystemOrderings(t *testing.T) {
	m := sgx.MachineA()
	tr := RequestTrace{Hits: 10, RandMisses: 3, SeqMisses: 16, Pages: 4, ColdPagesRand: 1, MissRatio: 0.4}
	foot := int64(1 << 20) // fits the EPC
	u := DataStructureRequest(m, Unprotected, tr, foot)
	p1 := DataStructureRequest(m, Privagic1, tr, foot)
	i1 := DataStructureRequest(m, IntelSDK1, tr, foot)
	p2 := DataStructureRequest(m, Privagic2, tr, foot)
	i2 := DataStructureRequest(m, IntelSDK2, tr, foot)
	if !(u < p1 && p1 < i1) {
		t.Errorf("ordering u < privagic-1 < intel-1 violated: %d %d %d", u, p1, i1)
	}
	if !(p1 < p2 && p2 < i2) {
		t.Errorf("two colors must cost more: p1=%d p2=%d i2=%d", p1, p2, i2)
	}
}

func TestMemcachedOrderings(t *testing.T) {
	m := sgx.MachineB()
	tr := RequestTrace{Hits: 20, RandMisses: 2, SeqMisses: 16, Pages: 3, ColdPagesRand: 1, MissRatio: 0.3}
	u := MemcachedRequest(m, Unprotected, tr, 1<<20)
	p := MemcachedRequest(m, PrivagicMemcached, tr, 1<<20)
	s := MemcachedRequest(m, Scone, tr, 1<<20)
	if !(u < p && p < s) {
		t.Errorf("ordering unprotected < privagic < scone violated: %d %d %d", u, p, s)
	}
	// Scone's penalty is dominated by in-enclave syscalls.
	if s-p < 5*m.Cost.SyscallFromEnclave {
		t.Errorf("scone delta %d too small", s-p)
	}
}

func TestThroughputCaps(t *testing.T) {
	m := sgx.MachineB()
	one := ThroughputOpsPerSec(m, 1000, 1)
	many := ThroughputOpsPerSec(m, 1000, 6)
	tooMany := ThroughputOpsPerSec(m, 1000, 1000)
	if many <= one {
		t.Error("parallel clients add no throughput")
	}
	if tooMany != ThroughputOpsPerSec(m, 1000, m.Cores) {
		t.Error("parallelism not capped at core count")
	}
	if ThroughputOpsPerSec(m, 0, 1) != 0 {
		t.Error("zero-cost op should yield zero, not infinity")
	}
}

func TestCollectorColdPages(t *testing.T) {
	col := NewCollector(sgx.MachineA(), 1)
	// Touch the same line repeatedly: all hits after the first, so the
	// request is hot and ColdPages ~ 0.
	for i := 0; i < 100; i++ {
		col.Touch(0x5000, 8)
	}
	tr := col.EndRequest()
	if tr.MissRatio > 0.05 {
		t.Errorf("hot request miss ratio = %.2f", tr.MissRatio)
	}
	if tr.Pages != 1 {
		t.Errorf("pages = %d, want 1", tr.Pages)
	}
	// A cold scatter: every touch a distinct page.
	for i := 0; i < 64; i++ {
		col.Touch(uint64(0x100000+i*8192), 8)
	}
	tr = col.EndRequest()
	if tr.MissRatio < 0.9 {
		t.Errorf("cold request miss ratio = %.2f", tr.MissRatio)
	}
	if tr.Pages != 64 || tr.ColdPagesRand < 50 {
		t.Errorf("cold pages: pages=%d coldRand=%.0f", tr.Pages, tr.ColdPagesRand)
	}
}

func TestCollectorStrideDetection(t *testing.T) {
	col := NewCollector(sgx.MachineA(), 1)
	// Descending constant stride (the linked-list walk).
	base := uint64(64 << 20)
	for i := 0; i < 10000; i++ {
		col.Touch(base-uint64(i)*1088, 24)
	}
	tr := col.EndRequest()
	if tr.RandMisses > tr.SeqMisses/10+2 {
		t.Errorf("descending stride classified random: rand=%d seq=%d", tr.RandMisses, tr.SeqMisses)
	}
}

func TestDiffLines(t *testing.T) {
	plain := "a\nb\nc\n"
	colored := "a\nB\nc\nd\n"
	if got := DiffLines(plain, colored); got != 2 {
		t.Errorf("DiffLines = %d, want 2 (changed b, added d)", got)
	}
	if got := DiffLines(plain, plain); got != 0 {
		t.Errorf("identical diff = %d", got)
	}
}
