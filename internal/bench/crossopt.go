package bench

import (
	"fmt"
	"strings"

	"privagic"
)

// The crossing-optimizer experiment compiles one loop-heavy workload
// twice — reference pipeline vs. OptimizeCrossings — runs both on the
// simulated SGX machine, and reports the measured crossings/op beside
// the analyzer's static prediction. The workload is built so each of
// the optimizer's three rewrites has exactly one firing opportunity per
// iteration:
//
//   - step's red chunk feeds three straight-line cont transports to its
//     U sibling (coalesced into one vectored message),
//   - step writes two U globals from the enclave, producing two
//     adjacent visible-effect barriers (merged into one),
//   - enc_update spawns the message-free U chunk note every iteration
//     (fused into a direct call, killing the spawn/done pair).
//
// The two runs must agree exactly — any divergence is a correctness bug
// in the optimizer and fails the experiment rather than skewing it.

// crossOptSrc is the workload; %d is the loop trip count.
const crossOptSrc = `
ignore long reveal(long color(red) v);

long color(red) s1;
long color(red) s2;
long color(red) s3;
long color(red) audit_key;

long acc[8];
long acc2[8];
long audit_count;

void note(long v) { audit_count = audit_count + v; }

void enc_update(long i) {
    audit_key = audit_key + i;
    note(i);
}

void step(long i) {
    long a = reveal(s1 + i);
    long b = reveal(s2 + i);
    long c = reveal(s3 + i);
    long t = a + b + c;
    acc[i & 7] = t;
    acc2[i & 7] = t + 1;
}

entry long run_loop() {
    long sum = 0;
    for (long i = 0; i < %d; i++) {
        step(i);
        enc_update(i);
        sum = sum + 1;
    }
    return sum + audit_count;
}
`

// CrossOptConfig parameterizes the experiment.
type CrossOptConfig struct {
	// Iters is the workload loop trip count (= operations per run).
	Iters int
}

// DefaultCrossOpt returns the full-scale setup.
func DefaultCrossOpt() CrossOptConfig { return CrossOptConfig{Iters: 600} }

// CrossOptReport holds both runs' evidence.
type CrossOptReport struct {
	Config CrossOptConfig

	// What the optimizer did to the plan.
	Fused     int
	Coalesced int
	Merged    int
	Rejected  int

	// Static predictions (crossings/op) from the analyzer over each plan.
	StaticRefPerOp float64
	StaticOptPerOp float64

	// Measured message totals from the cost-model meter.
	RefMessages int64
	OptMessages int64
	RefPerOp    float64
	OptPerOp    float64
	// ReductionPct is the measured crossings/op saved by the optimizer,
	// in percent of the reference figure.
	ReductionPct float64

	// Differential check: both runs returned this value and produced
	// byte-identical output.
	Ret int64
}

// CrossOpt runs the experiment. It returns an error if the optimized run
// diverges from the reference in return value or output, or if the
// strict re-audit of the optimized plan fails (Compile reports that).
func CrossOpt(cfg CrossOptConfig) (*CrossOptReport, error) {
	if cfg.Iters < 1 {
		cfg.Iters = 1
	}
	src := fmt.Sprintf(crossOptSrc, cfg.Iters)
	base := privagic.Options{
		Mode:    privagic.Relaxed,
		Entries: []string{"run_loop"},
		Audit:   privagic.AuditStrict,
	}

	ref, err := privagic.Compile("crossopt.c", src, base)
	if err != nil {
		return nil, fmt.Errorf("crossopt: reference compile: %w", err)
	}
	optOpts := base
	optOpts.OptimizeCrossings = true
	opt, err := privagic.Compile("crossopt.c", src, optOpts)
	if err != nil {
		return nil, fmt.Errorf("crossopt: optimized compile: %w", err)
	}

	rep := &CrossOptReport{Config: cfg}
	if o := opt.CrossingOpt; o != nil {
		rep.Fused = len(o.Fused)
		rep.Coalesced = len(o.Coalesced)
		rep.Merged = len(o.Merged)
		rep.Rejected = len(o.Rejected)
	}
	if r := ref.CrossingReports(nil)["run_loop"]; r != nil {
		rep.StaticRefPerOp = r.TotalPerOp
	}
	if r := opt.CrossingReports(nil)["run_loop"]; r != nil {
		rep.StaticOptPerOp = r.TotalPerOp
	}

	run := func(p *privagic.Program) (int64, string, int64, error) {
		inst := p.Instantiate(nil)
		defer inst.Close()
		ret, err := inst.Call("run_loop")
		if err != nil {
			return 0, "", 0, err
		}
		_, msgs, _, _ := inst.Meter().Counts()
		return ret, inst.Output(), msgs, nil
	}
	rret, rout, rmsgs, err := run(ref)
	if err != nil {
		return nil, fmt.Errorf("crossopt: reference run: %w", err)
	}
	oret, oout, omsgs, err := run(opt)
	if err != nil {
		return nil, fmt.Errorf("crossopt: optimized run: %w", err)
	}
	if rret != oret || rout != oout {
		return nil, fmt.Errorf("crossopt: optimized run diverged: ret %d vs %d, output %q vs %q",
			rret, oret, rout, oout)
	}

	ops := float64(cfg.Iters)
	rep.RefMessages, rep.OptMessages = rmsgs, omsgs
	rep.RefPerOp = float64(rmsgs) / ops
	rep.OptPerOp = float64(omsgs) / ops
	if rmsgs > 0 {
		rep.ReductionPct = 100 * float64(rmsgs-omsgs) / float64(rmsgs)
	}
	rep.Ret = rret
	// The acceptance gate: a crossing optimizer that cannot clear 25%
	// on its own showcase workload has regressed.
	if rep.ReductionPct < 25 {
		return nil, fmt.Errorf("crossopt: measured crossings/op reduction %.1f%% below the 25%% gate (messages %d -> %d)",
			rep.ReductionPct, rmsgs, omsgs)
	}
	return rep, nil
}

// String renders the report.
func (r *CrossOptReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crossing optimizer — loop-heavy workload (%d iterations)\n", r.Config.Iters)
	fmt.Fprintf(&b, "  rewrites: %d spawn sites fused, %d transport groups coalesced, %d barriers merged (%d candidates rejected)\n",
		r.Fused, r.Coalesced, r.Merged, r.Rejected)
	fmt.Fprintf(&b, "  %-28s %12s %12s\n", "", "reference", "optimized")
	fmt.Fprintf(&b, "  %-28s %12.3f %12.3f\n", "static crossings/op", r.StaticRefPerOp, r.StaticOptPerOp)
	fmt.Fprintf(&b, "  %-28s %12.3f %12.3f\n", "measured crossings/op", r.RefPerOp, r.OptPerOp)
	fmt.Fprintf(&b, "  %-28s %12d %12d\n", "messages total", r.RefMessages, r.OptMessages)
	fmt.Fprintf(&b, "  measured reduction: %.1f%%   (differential: both runs returned %d, outputs identical)\n",
		r.ReductionPct, r.Ret)
	return b.String()
}
