package bench

import (
	"fmt"
	"io"
)

// WriteCSV emitters let the figures be re-plotted outside Go (gnuplot,
// matplotlib); cmd/privagic-bench -csv uses them.

// WriteCSV renders Figure 8 as dataset_bytes,system,cycles_per_op,
// throughput_ops,latency_us,llc_miss_ratio rows.
func (r *Fig8Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "dataset_bytes,system,cycles_per_op,throughput_ops,latency_us,llc_miss_ratio"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%.1f,%.3f,%.4f\n",
			row.SizeBytes, row.System, row.CyclesPerOp,
			row.ThroughputOps, row.LatencyMicros, row.LLCMissRatio); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders Figure 9 as structure,workload,system,cycles_per_op,
// throughput_ops rows.
func (r *Fig9Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "structure,workload,system,cycles_per_op,throughput_ops"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%.1f\n",
			row.Structure, row.Workload, row.System,
			row.CyclesPerOp, row.ThroughputOps); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders Figure 10 as system,cycles_per_op,latency_us rows.
func (r *Fig10Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "system,cycles_per_op,latency_us"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f\n",
			row.System, row.CyclesPerOp, row.LatencyMicros); err != nil {
			return err
		}
	}
	return nil
}
