package bench

import (
	"fmt"
	"strings"

	"privagic/internal/sources"
)

// EffortRow is one ported program's engineering-effort measurement
// (§9.2.1, §9.3.1: "modified lines of code").
type EffortRow struct {
	Program       string
	ModifiedLines int
	PaperLines    string // the count the paper reports
}

// EffortReport collects the engineering-effort comparison.
type EffortReport struct {
	Rows []EffortRow
}

// Effort measures the modified-lines metric on the MiniC corpus: the diff
// between each unprotected program and its colored port.
func Effort() *EffortReport {
	rep := &EffortReport{}
	cases := []struct {
		name         string
		plain, color string
		paper        string
	}{
		{"linked-list (1 color)", sources.ListPlain, sources.ListColored, "<=5"},
		{"treemap (1 color)", sources.TreemapPlain, sources.TreemapColored, "<=5"},
		{"hashmap (1 color)", sources.HashmapPlain, sources.HashmapColored1, "5"},
		{"hashmap (2 colors)", sources.HashmapPlain, sources.HashmapColored2, "6"},
		{"memcached core", sources.MemcachedCorePlain, sources.MemcachedCoreColored, "9"},
	}
	for _, c := range cases {
		rep.Rows = append(rep.Rows, EffortRow{
			Program:       c.name,
			ModifiedLines: DiffLines(c.plain, c.color),
			PaperLines:    c.paper,
		})
	}
	return rep
}

// DiffLines counts the lines of the colored version that do not appear in
// the unprotected version (modifications and additions), the paper's
// "modified lines of code" metric.
func DiffLines(plain, colored string) int {
	have := map[string]int{}
	for _, l := range strings.Split(plain, "\n") {
		have[strings.TrimSpace(l)]++
	}
	n := 0
	for _, l := range strings.Split(colored, "\n") {
		t := strings.TrimSpace(l)
		if t == "" {
			continue
		}
		if have[t] > 0 {
			have[t]--
		} else {
			n++
		}
	}
	return n
}

// String renders the table.
func (r *EffortReport) String() string {
	var b strings.Builder
	b.WriteString("Engineering effort — modified lines of code (§9.2.1, §9.3.1)\n")
	fmt.Fprintf(&b, "%-24s %10s %10s\n", "program", "measured", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %10d %10s\n", row.Program, row.ModifiedLines, row.PaperLines)
	}
	return b.String()
}
