package bench

import (
	"fmt"
	"strings"

	"privagic/internal/datastructs"
	"privagic/internal/sgx"
	"privagic/internal/ycsb"
)

// Fig10Config parameterizes the two-color hashmap experiment of §9.3 and
// Figure 10: keys in one enclave, values in another, relaxed mode, 20 000
// keys ("for the experiments with two colors, we pre-initialize the map
// with only 20 000 keys because the runs are much longer").
type Fig10Config struct {
	Records   int
	Ops       int
	ValueSize int
	Machine   *sgx.Machine
}

// DefaultFig10 returns the paper's setup on machine A.
func DefaultFig10() Fig10Config {
	return Fig10Config{Records: 20_000, Ops: 20_000, ValueSize: 1024, Machine: sgx.MachineA()}
}

// Fig10Row is one (system) latency point.
type Fig10Row struct {
	System        System
	CyclesPerOp   int64
	LatencyMicros float64
}

// Fig10Report holds the figure.
type Fig10Report struct {
	Config Fig10Config
	Rows   []Fig10Row
}

// Fig10 reproduces Figure 10: the hashmap with keys and values in two
// different enclaves, comparing Privagic-2 (relaxed mode, split structure)
// against Intel-sdk-2 (two EDL enclaves exchanging data through unsafe
// memory) and Unprotected.
func Fig10(cfg Fig10Config) *Fig10Report {
	rep := &Fig10Report{Config: cfg}
	f9 := Fig9Config{
		Records: cfg.Records, Ops: cfg.Ops, ValueSize: cfg.ValueSize,
		Distribution: ycsb.Zipfian, Machine: cfg.Machine,
	}
	tr := measureStructure(f9, func(t datastructs.Tracer) datastructs.Map {
		return datastructs.NewHashMap(cfg.Records/4, t)
	}, cfg.Ops, ycsb.WorkloadB)
	for _, sys := range []System{Unprotected, Privagic2, IntelSDK2} {
		cycles := DataStructureRequest(cfg.Machine, sys, tr.avg, tr.footprint)
		rep.Rows = append(rep.Rows, Fig10Row{
			System:        sys,
			CyclesPerOp:   cycles,
			LatencyMicros: LatencyMicros(cfg.Machine, cycles),
		})
	}
	return rep
}

// LatencyRatio returns latency(a)/latency(b).
func (r *Fig10Report) LatencyRatio(a, b System) float64 {
	var la, lb float64
	for _, row := range r.Rows {
		if row.System == a {
			la = row.LatencyMicros
		}
		if row.System == b {
			lb = row.LatencyMicros
		}
	}
	if lb == 0 {
		return 0
	}
	return la / lb
}

// String renders the figure.
func (r *Fig10Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — hashmap with YCSB (2 colors), %s\n", r.Config.Machine.Name)
	fmt.Fprintf(&b, "%-12s %12s %10s\n", "system", "cycles/op", "lat(us)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12d %10.2f\n", row.System, row.CyclesPerOp, row.LatencyMicros)
	}
	fmt.Fprintf(&b, "intel-sdk-2/privagic-2 latency: %.1fx (paper: 6.4x-9.2x)\n",
		r.LatencyRatio(IntelSDK2, Privagic2))
	fmt.Fprintf(&b, "privagic-2/unprotected latency: %.1fx (paper: significant degradation)\n",
		r.LatencyRatio(Privagic2, Unprotected))
	return b.String()
}
