package bench

import (
	"fmt"
	"strings"

	"privagic/internal/baseline/dataflow"
	"privagic/internal/minic"
	"privagic/internal/passes"
	"privagic/internal/sources"
	"privagic/internal/typing"
)

// Fig3Report records the motivation experiment: the data-flow baseline's
// protected set, the racy leak, and Privagic's compile-time rejection.
type Fig3Report struct {
	DataflowProtected []string
	LeakedInto        []string
	SequentialLeak    []string
	PrivagicError     string
}

// Fig3 reproduces the Figure 3 motivation: a Glamdring-style sequential
// data-flow analysis protects exactly {a}, an adversarial two-thread
// interleaving then writes the secret into the unprotected b, and
// Privagic's secure typing rejects the same program at compile time.
func Fig3() (*Fig3Report, error) {
	mod, err := minic.Compile("fig3a.c", sources.Figure3a)
	if err != nil {
		return nil, err
	}
	passes.RunAll(mod)
	res := dataflow.AnalyzeWithParams(mod, nil, map[string]map[int]bool{"f": {0: true}})

	racy, err := dataflow.SimulateRace(mod, res, "f", "g", []dataflow.Step{
		{Thread: 0, N: 1}, // f: x = &a
		{Thread: 1, N: 8}, // g: x = &b (complete)
		{Thread: 0, N: 8}, // f: *x = s
	})
	if err != nil {
		return nil, err
	}
	seq, err := dataflow.SimulateRace(mod, res, "f", "g", []dataflow.Step{
		{Thread: 0, N: 100}, {Thread: 1, N: 100},
	})
	if err != nil {
		return nil, err
	}

	rep := &Fig3Report{
		DataflowProtected: res.SensitiveList(),
		LeakedInto:        racy.Leaked,
		SequentialLeak:    seq.Leaked,
	}

	mod3b, err := minic.Compile("fig3b.c", sources.Figure3b)
	if err != nil {
		return nil, err
	}
	passes.RunAll(mod3b)
	an := typing.Analyze(mod3b, typing.Options{Mode: typing.Relaxed})
	if terr := an.Err(); terr != nil {
		rep.PrivagicError = terr.Error()
	}
	return rep, nil
}

// String renders the experiment.
func (r *Fig3Report) String() string {
	var b strings.Builder
	b.WriteString("Figure 3 — hidden pointer modification (f and g run in parallel)\n")
	fmt.Fprintf(&b, "data-flow analysis protects: %v\n", r.DataflowProtected)
	fmt.Fprintf(&b, "sequential schedule leaks into: %v (analysis sound sequentially)\n", r.SequentialLeak)
	fmt.Fprintf(&b, "racy schedule leaks into: %v  <-- the paper's motivating failure\n", r.LeakedInto)
	if r.PrivagicError != "" {
		first := r.PrivagicError
		if i := strings.IndexByte(first, '\n'); i > 0 {
			first = first[:i]
		}
		fmt.Fprintf(&b, "privagic (secure typing) rejects at compile time:\n  %s\n", first)
	} else {
		b.WriteString("privagic accepted the program — REPRODUCTION BUG\n")
	}
	return b.String()
}
