package bench

import (
	"fmt"
	"strings"

	"privagic/internal/sgx"
	"privagic/internal/ycsb"
)

// Fig8Config parameterizes the §9.2 memcached experiment on machine B.
type Fig8Config struct {
	Machine *sgx.Machine
	// Sizes are the dataset sizes in bytes (1 MiB – 32 GiB in Figure 8).
	Sizes []int64
	// RecordSize is 1024 B in the paper (§9.2: "a record size of 1024 B").
	RecordSize int
	Ops        int
	// SimRecordCap bounds the simulated record count; larger datasets
	// are scaled down with the LLC and EPC (working-set self-similarity).
	SimRecordCap int
	// Clients models the 6 YCSB clients saturating the worker threads.
	Clients int
}

// DefaultFig8 returns the paper's Figure 8 setup.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Machine:    sgx.MachineB(),
		RecordSize: 1024,
		Sizes: []int64{
			1 << 20, 8 << 20, 64 << 20, 236 << 20,
			1 << 30, 4 << 30, 16 << 30, 32 << 30,
		},
		Ops:          30_000,
		SimRecordCap: 250_000,
		Clients:      6,
	}
}

// Fig8Row is one (dataset size, system) point of the figure.
type Fig8Row struct {
	SizeBytes     int64
	System        System
	CyclesPerOp   int64
	ThroughputOps float64
	LatencyMicros float64
	LLCMissRatio  float64
}

// Fig8Report holds the whole figure.
type Fig8Report struct {
	Config Fig8Config
	Rows   []Fig8Row
}

// Fig8 reproduces Figure 8: memcached under YCSB over loopback, comparing
// Unprotected, Scone (full embedding) and Privagic (colored central map),
// as the dataset grows from 1 MiB to 32 GiB. The central map's access
// trace comes from a ghost store (the real chained-hash layout with
// synthetic addresses) replayed through the scaled LLC simulator.
func Fig8(cfg Fig8Config) *Fig8Report {
	rep := &Fig8Report{Config: cfg}
	for _, size := range cfg.Sizes {
		records := int(size / int64(cfg.RecordSize+48))
		if records < 64 {
			records = 64
		}
		shrink := int64(1)
		simRecords := records
		if records > cfg.SimRecordCap {
			shrink = int64((records + cfg.SimRecordCap - 1) / cfg.SimRecordCap)
			simRecords = records / int(shrink)
		}
		col := NewCollector(cfg.Machine, shrink)
		gs := newGhostStore(simRecords/4, col)
		for i := 0; i < simRecords; i++ {
			gs.set(uint64(i), int64(cfg.RecordSize))
			col.EndRequest()
		}
		gen, err := ycsb.New(ycsb.Config{
			Records: simRecords, Mix: ycsb.WorkloadB,
			Distribution: ycsb.Zipfian, RecordSize: cfg.RecordSize, Seed: 8,
		})
		if err != nil {
			panic(err)
		}
		for i := 0; i < cfg.Ops/4; i++ {
			gs.run(gen.Next(), int64(cfg.RecordSize))
			col.EndRequest()
		}
		col.ResetStats()
		var sum RequestTrace
		for i := 0; i < cfg.Ops; i++ {
			gs.run(gen.Next(), int64(cfg.RecordSize))
			sum.Add(col.EndRequest())
		}
		avg := sum.Scale(int64(cfg.Ops))

		scaled := *cfg.Machine
		scaled.EPCBytes = cfg.Machine.EPCBytes / shrink
		foot := gs.footprint()
		for _, sys := range []System{Unprotected, PrivagicMemcached, Scone} {
			cycles := MemcachedRequest(&scaled, sys, avg, foot)
			rep.Rows = append(rep.Rows, Fig8Row{
				SizeBytes:     size,
				System:        sys,
				CyclesPerOp:   cycles,
				ThroughputOps: ThroughputOpsPerSec(cfg.Machine, cycles, cfg.Clients),
				LatencyMicros: LatencyMicros(cfg.Machine, cycles),
				LLCMissRatio:  col.MissRatio(),
			})
		}
	}
	return rep
}

// ghostStore is the memcached central map with synthetic addresses and no
// value payloads — the same chained-hash layout the TCP server uses, sized
// for datasets too large to materialize.
type ghostStore struct {
	buckets   []int32 // index into nodes, -1 = empty
	nodeKey   []uint64
	nodeNext  []int32
	nodeAddr  []uint64
	bucketsAt uint64
	next      uint64
	col       *Collector
	bytes     int64
}

func newGhostStore(buckets int, col *Collector) *ghostStore {
	n := 1
	for n < buckets {
		n <<= 1
	}
	g := &ghostStore{
		buckets:   make([]int32, n),
		col:       col,
		bucketsAt: 1 << 20,
		next:      1<<20 + uint64(n)*8,
	}
	for i := range g.buckets {
		g.buckets[i] = -1
	}
	g.bytes = int64(n) * 8
	return g
}

func (g *ghostStore) hash(k uint64) int {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (k >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return int(h & uint64(len(g.buckets)-1))
}

func (g *ghostStore) alloc(size int64) uint64 {
	addr := (g.next + 63) &^ 63
	g.next = addr + uint64(size)
	g.bytes += size
	return addr
}

func (g *ghostStore) footprint() int64 { return g.bytes }

// set inserts or updates a key, touching the same memory a real store
// would: bucket slot, chain headers, value bytes.
func (g *ghostStore) set(k uint64, valSize int64) {
	b := g.hash(k)
	g.col.Touch(g.bucketsAt+uint64(b)*8, 8)
	for idx := g.buckets[b]; idx >= 0; idx = g.nodeNext[idx] {
		g.col.Touch(g.nodeAddr[idx], 24)
		if g.nodeKey[idx] == k {
			g.col.Touch(g.nodeAddr[idx]+24, valSize)
			return
		}
	}
	addr := g.alloc(24 + valSize)
	g.nodeKey = append(g.nodeKey, k)
	g.nodeNext = append(g.nodeNext, g.buckets[b])
	g.nodeAddr = append(g.nodeAddr, addr)
	g.buckets[b] = int32(len(g.nodeKey) - 1)
	g.col.Touch(addr, 24+valSize)
}

// get probes for a key.
func (g *ghostStore) get(k uint64, valSize int64) bool {
	b := g.hash(k)
	g.col.Touch(g.bucketsAt+uint64(b)*8, 8)
	for idx := g.buckets[b]; idx >= 0; idx = g.nodeNext[idx] {
		g.col.Touch(g.nodeAddr[idx], 24)
		if g.nodeKey[idx] == k {
			g.col.Touch(g.nodeAddr[idx]+24, valSize)
			return true
		}
	}
	return false
}

func (g *ghostStore) run(op ycsb.Op, valSize int64) {
	switch op.Kind {
	case ycsb.OpRead:
		g.get(op.Key, valSize)
	default:
		g.set(op.Key, valSize)
	}
}

// Ratio returns throughput(a)/throughput(b) at the given dataset size.
func (r *Fig8Report) Ratio(size int64, a, b System) float64 {
	var ta, tb float64
	for _, row := range r.Rows {
		if row.SizeBytes != size {
			continue
		}
		if row.System == a {
			ta = row.ThroughputOps
		}
		if row.System == b {
			tb = row.ThroughputOps
		}
	}
	if tb == 0 {
		return 0
	}
	return ta / tb
}

// String renders the figure.
func (r *Fig8Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — memcached with YCSB, %s\n", r.Config.Machine.Name)
	fmt.Fprintf(&b, "%10s %-12s %12s %14s %10s %9s\n", "dataset", "system", "cycles/op", "kops/s", "lat(us)", "LLCmiss")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10s %-12s %12d %14.1f %10.2f %8.1f%%\n",
			humanBytes(row.SizeBytes), row.System, row.CyclesPerOp,
			row.ThroughputOps/1000, row.LatencyMicros, row.LLCMissRatio*100)
	}
	small := r.Config.Sizes[0]
	big := r.Config.Sizes[len(r.Config.Sizes)-1]
	fmt.Fprintf(&b, "privagic/scone: %.1fx at %s, %.1fx at %s\n",
		r.Ratio(small, PrivagicMemcached, Scone), humanBytes(small),
		r.Ratio(big, PrivagicMemcached, Scone), humanBytes(big))
	fmt.Fprintf(&b, "unprotected/privagic: %.2fx at %s, %.2fx at %s\n",
		r.Ratio(small, Unprotected, PrivagicMemcached), humanBytes(small),
		r.Ratio(big, Unprotected, PrivagicMemcached), humanBytes(big))
	return b.String()
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	default:
		return fmt.Sprintf("%dMiB", n>>20)
	}
}
