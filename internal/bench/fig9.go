package bench

import (
	"fmt"
	"strings"

	"privagic/internal/datastructs"
	"privagic/internal/sgx"
	"privagic/internal/ycsb"
)

// Fig9Config parameterizes the §9.3 data-structure experiment.
type Fig9Config struct {
	Records   int // 100 000 in the paper
	Ops       int
	ValueSize int // 1024 B in the paper
	// Distribution is the key distribution; the paper's analysis
	// describes a uniform pattern over the treemap (§9.3.2).
	Distribution ycsb.Distribution
	Machine      *sgx.Machine
	// ListOps caps the linked-list run (each op walks ~Records/2 nodes).
	ListOps int
}

// DefaultFig9 returns the paper's §9.3 single-color setup on machine A.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Records:      100_000,
		Ops:          20_000,
		ValueSize:    1024,
		Distribution: ycsb.Zipfian,
		Machine:      sgx.MachineA(),
		ListOps:      300,
	}
}

// Fig9Row is one (structure, workload, system) measurement.
type Fig9Row struct {
	Structure     string
	Workload      string
	System        System
	CyclesPerOp   int64
	ThroughputOps float64
}

// Fig9Report holds the whole figure.
type Fig9Report struct {
	Config Fig9Config
	Rows   []Fig9Row
}

// Fig9 reproduces Figure 9: the three data structures under YCSB with one
// color, comparing Unprotected, Privagic-1 and Intel-sdk-1. Each
// structure's real implementation is driven with the real workload; its
// address trace runs through the LLC simulator; the per-system costs come
// from the calibrated model.
func Fig9(cfg Fig9Config) *Fig9Report {
	rep := &Fig9Report{Config: cfg}
	type mkMap struct {
		name string
		make func(tr datastructs.Tracer) datastructs.Map
		ops  int
		dist ycsb.Distribution
	}
	// Distributions follow the paper's own description of the access
	// patterns (§9.3.2): uniform over the treemap, zipfian over the
	// hashmap and the list.
	structures := []mkMap{
		{"treemap", func(tr datastructs.Tracer) datastructs.Map { return datastructs.NewRBTree(tr) }, cfg.Ops, ycsb.Uniform},
		{"hashmap", func(tr datastructs.Tracer) datastructs.Map { return datastructs.NewHashMap(cfg.Records/4, tr) }, cfg.Ops, ycsb.Zipfian},
		{"list", func(tr datastructs.Tracer) datastructs.Map { return datastructs.NewList(tr) }, cfg.ListOps, ycsb.Zipfian},
	}
	workloads := []struct {
		name string
		mix  ycsb.Mix
	}{
		{"A", ycsb.WorkloadA},
		{"B", ycsb.WorkloadB},
		{"C", ycsb.WorkloadC},
	}
	for _, st := range structures {
		for _, wl := range workloads {
			c := cfg
			c.Distribution = st.dist
			tr := measureStructure(c, st.make, st.ops, wl.mix)
			foot := tr.footprint
			for _, sys := range []System{Unprotected, Privagic1, IntelSDK1} {
				cycles := DataStructureRequest(cfg.Machine, sys, tr.avg, foot)
				rep.Rows = append(rep.Rows, Fig9Row{
					Structure: st.name, Workload: wl.name, System: sys,
					CyclesPerOp:   cycles,
					ThroughputOps: ThroughputOpsPerSec(cfg.Machine, cycles, 1),
				})
			}
		}
	}
	return rep
}

type measured struct {
	avg       RequestTrace
	footprint int64
}

// measureStructure preloads the structure, warms the cache, and replays the
// workload, returning the average per-request trace.
func measureStructure(cfg Fig9Config, mk func(datastructs.Tracer) datastructs.Map, ops int, mix ycsb.Mix) measured {
	col := NewCollector(cfg.Machine, 1)
	m := mk(col.Touch)
	val := make([]byte, cfg.ValueSize)
	if l, isList := m.(*datastructs.List); isList {
		for i := 0; i < cfg.Records; i++ {
			l.PushFront(uint64(i), val)
		}
	} else {
		for i := 0; i < cfg.Records; i++ {
			m.Put(uint64(i), val)
			col.EndRequest()
		}
	}
	gen, err := ycsb.New(ycsb.Config{
		Records: cfg.Records, Mix: mix, Distribution: cfg.Distribution,
		RecordSize: cfg.ValueSize, Seed: 1,
	})
	if err != nil {
		panic(err) // static configs are valid by construction
	}
	// Warmup pass so the LLC reaches steady state.
	warm := ops / 4
	if warm > 2000 {
		warm = 2000
	}
	for i := 0; i < warm; i++ {
		runOp(m, gen.Next(), val)
		col.EndRequest()
	}
	col.ResetStats()
	var sum RequestTrace
	for i := 0; i < ops; i++ {
		runOp(m, gen.Next(), val)
		sum.Add(col.EndRequest())
	}
	return measured{avg: sum.Scale(int64(ops)), footprint: m.Footprint()}
}

func runOp(m datastructs.Map, op ycsb.Op, val []byte) {
	switch op.Kind {
	case ycsb.OpRead:
		m.Get(op.Key)
	case ycsb.OpUpdate, ycsb.OpInsert:
		m.Put(op.Key, val)
	case ycsb.OpReadModifyWrite:
		m.Get(op.Key)
		m.Put(op.Key, val)
	case ycsb.OpScan:
		for k := op.Key; k < op.Key+uint64(op.ScanLen); k++ {
			m.Get(k)
		}
	}
}

// Ratio returns throughput(a)/throughput(b) for a structure, aggregated
// over workloads as a [min,max] band — the form the paper reports ("by 2.2
// to 2.7 for the treemap").
func (r *Fig9Report) Ratio(structure string, a, b System) (lo, hi float64) {
	lo, hi = 1e18, 0
	by := map[string]map[System]float64{}
	for _, row := range r.Rows {
		if row.Structure != structure {
			continue
		}
		if by[row.Workload] == nil {
			by[row.Workload] = map[System]float64{}
		}
		by[row.Workload][row.System] = row.ThroughputOps
	}
	for _, m := range by {
		if m[b] == 0 {
			continue
		}
		ratio := m[a] / m[b]
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
	}
	return lo, hi
}

// String renders the figure as a table.
func (r *Fig9Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — data structures with YCSB (1 color), %s\n", r.Config.Machine.Name)
	fmt.Fprintf(&b, "%-8s %-3s %-12s %14s %14s\n", "struct", "wl", "system", "cycles/op", "ops/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-3s %-12s %14d %14.0f\n",
			row.Structure, row.Workload, row.System, row.CyclesPerOp, row.ThroughputOps)
	}
	for _, st := range []string{"treemap", "hashmap", "list"} {
		plo, phi := r.Ratio(st, Privagic1, IntelSDK1)
		ulo, uhi := r.Ratio(st, Unprotected, Privagic1)
		fmt.Fprintf(&b, "%-8s privagic/intel-sdk: %.1fx-%.1fx   unprotected/privagic: %.1fx-%.1fx\n",
			st, plo, phi, ulo, uhi)
	}
	return b.String()
}
