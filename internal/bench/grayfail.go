package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"privagic/internal/cluster"
	"privagic/internal/netfaults"
	"privagic/internal/obs"
)

// The grayfail experiment measures the two latency-health mechanisms PR 7
// added to the router, each against its acceptance bar:
//
//   - Demotion latency: a shard whose data path turns slow — while its
//     version probes stay instant, so epoch fencing never fires — must be
//     demoted out of the ring within 5× the probe interval, measured from
//     the first slow sample the health loop observed (the
//     cluster.demote_detect_us histogram). The cycle is run repeatedly,
//     with a heal + promotion between cycles, so the number reported is a
//     max over independent detections, not one lucky run.
//   - Hedged-read tail: under a link with base jitter plus brief latency
//     spikes (a chunk caught by a spike is held 15ms — the transient
//     stall hedging exists for; a hedge launched moments later rides a
//     fresh path that the spike has already released), the same Get loop
//     runs with hedging disabled and enabled and reports p50/p99; the
//     acceptance bar is a p99 win.

// GrayFailConfig parameterizes the experiment.
type GrayFailConfig struct {
	// Cycles is how many demote/heal/promote rounds the detection
	// measurement runs.
	Cycles int
	// Ops is the Get count per hedge scenario row.
	Ops int
}

// DefaultGrayFail returns the full-scale setup.
func DefaultGrayFail() GrayFailConfig {
	return GrayFailConfig{Cycles: 8, Ops: 4000}
}

// grayProbeInterval is the demotion row's probe cadence; the acceptance
// budget is five of these. It is chosen so the budget is honest: with a
// 10ms injected one-way latency a canary round trip costs ~20ms, and
// three demote strikes at that cadence land well inside 5×20ms = 100ms.
const grayProbeInterval = 20 * time.Millisecond

// HedgeRow is one tail-latency measurement.
type HedgeRow struct {
	Scenario string
	Ops      int
	Errors   int64
	P50Ms    float64
	P99Ms    float64
	Hedges   int64
	Wins     int64
}

// GrayFailReport holds both measurements.
type GrayFailReport struct {
	Config GrayFailConfig

	// Demotion detection latency across Config.Cycles independent cycles.
	ProbeIntervalMs float64
	BudgetMs        float64
	DemoteAvgMs     float64
	DemoteMaxMs     float64
	Demotions       int64
	Promotions      int64

	Rows []HedgeRow
}

// grayProxyDir fronts each shard with a fault-injecting netfaults.Link:
// the router dials the stable proxy addresses while epoch and liveness
// come from the real directory (the bench twin of the cluster package's
// test proxyDirectory).
type grayProxyDir struct {
	c     *cluster.Cluster
	links []*netfaults.Link
	group *netfaults.Group
}

func newGrayProxyDir(c *cluster.Cluster, seed int64) (*grayProxyDir, error) {
	n := c.NumShards()
	pd := &grayProxyDir{c: c, links: make([]*netfaults.Link, n)}
	for i := 0; i < n; i++ {
		i := i
		l, err := netfaults.NewLink(netfaults.Config{
			Target: func() (string, bool) {
				addr, _, running := c.Addr(i)
				return addr, running
			},
			Seed: seed + int64(i),
		})
		if err != nil {
			for _, prev := range pd.links {
				if prev != nil {
					prev.Close()
				}
			}
			return nil, err
		}
		pd.links[i] = l
	}
	pd.group = netfaults.NewGroup(pd.links...)
	return pd, nil
}

func (pd *grayProxyDir) NumShards() int { return pd.c.NumShards() }

func (pd *grayProxyDir) Addr(i int) (string, uint64, bool) {
	_, epoch, running := pd.c.Addr(i)
	return pd.links[i].Addr(), epoch, running
}

// GrayFail runs the experiment.
func GrayFail(cfg GrayFailConfig) (*GrayFailReport, error) {
	if cfg.Cycles < 1 {
		cfg.Cycles = 1
	}
	if cfg.Ops < 100 {
		cfg.Ops = 100
	}
	rep := &GrayFailReport{Config: cfg}
	if err := grayDemotion(cfg, rep); err != nil {
		return nil, err
	}
	for _, hedged := range []bool{false, true} {
		row, err := grayHedgeRow(cfg, hedged)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// grayWait polls cond at 1ms until it holds or the deadline passes.
func grayWait(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: grayfail: timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// grayDemotion measures slow-shard detection: inject a 10ms one-way data
// latency on one shard of three (probe path untouched), wait for the
// health loop to demote it, heal, wait for the promotion, repeat. The
// canary alone drives the measurement — no client traffic — so the
// number is the health loop's own reaction time.
func grayDemotion(cfg GrayFailConfig, rep *GrayFailReport) error {
	cl, err := cluster.New(cluster.Config{Shards: 3})
	if err != nil {
		return err
	}
	defer cl.Close()
	pd, err := newGrayProxyDir(cl, 1)
	if err != nil {
		return err
	}
	defer pd.group.Close()
	rcfg := cluster.RouterConfig{
		OpTimeout:     50 * time.Millisecond,
		ProbeInterval: grayProbeInterval,
		ProbeTimeout:  5 * time.Millisecond,
		SlowRTT:       8 * time.Millisecond,
		FastRTT:       2 * time.Millisecond,
	}
	rt, err := cluster.NewRouter(pd, rcfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	reg := obs.NewRegistry()
	rt.Instrument(reg, nil)

	for k := 0; k < cfg.Cycles; k++ {
		want := int64(k + 1)
		pd.links[0].SetFaults(netfaults.Data, netfaults.Faults{Latency: 10 * time.Millisecond})
		if err := grayWait(10*time.Second, "demotion", func() bool {
			return rt.Counters()["demotions"] >= want
		}); err != nil {
			return err
		}
		pd.links[0].Heal()
		// Promotion needs the EWMA to decay below FastRTT and then two
		// clean strikes — slower than detection by design (hysteresis).
		if err := grayWait(10*time.Second, "promotion", func() bool {
			m := rt.Counters()
			return m["promotions"] >= want && m["shards_up"] == 3
		}); err != nil {
			return err
		}
	}
	count, sum, max := reg.Histogram("cluster.demote_detect_us").Stats()
	if count > 0 {
		rep.DemoteAvgMs = float64(sum) / float64(count) / 1e3
	}
	rep.DemoteMaxMs = float64(max) / 1e3
	rep.ProbeIntervalMs = float64(grayProbeInterval.Microseconds()) / 1e3
	rep.BudgetMs = 5 * rep.ProbeIntervalMs
	m := rt.Counters()
	rep.Demotions, rep.Promotions = m["demotions"], m["promotions"]
	return nil
}

// graySpikes flips a 15ms latency fault on for 1ms out of every 16ms
// until stop closes. A chunk forwarded inside the window is held the
// full 15ms even though the link heals underneath it — exactly the
// transient stall where a hedge's fresh request, forwarded after the
// heal, answers immediately while the primary's bytes are still asleep.
func graySpikes(l *netfaults.Link, base netfaults.Faults, stop chan struct{}) {
	spike := base
	spike.Latency = 15 * time.Millisecond
	for {
		l.SetFaults(netfaults.Data, spike)
		select {
		case <-stop:
			l.SetFaults(netfaults.Data, base)
			return
		case <-time.After(time.Millisecond):
		}
		l.SetFaults(netfaults.Data, base)
		select {
		case <-stop:
			return
		case <-time.After(15 * time.Millisecond):
		}
	}
}

// grayHedgeRow runs the Get loop over one shard behind a spiky link
// (2ms base jitter, periodic 15ms stalls) with hedging disabled or
// enabled, and reports the latency percentiles.
func grayHedgeRow(cfg GrayFailConfig, hedged bool) (HedgeRow, error) {
	row := HedgeRow{Scenario: "hedge off", Ops: cfg.Ops}
	hedgeDelay := -time.Millisecond // negative disables
	if hedged {
		row.Scenario = "hedge 3ms"
		hedgeDelay = 3 * time.Millisecond
	}
	cl, err := cluster.New(cluster.Config{Shards: 1})
	if err != nil {
		return row, err
	}
	defer cl.Close()
	pd, err := newGrayProxyDir(cl, 7)
	if err != nil {
		return row, err
	}
	defer pd.group.Close()
	rcfg := cluster.RouterConfig{
		OpTimeout:     100 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		// Keep latency health out of the row: the spiky wire is what is
		// under test, not a shard to demote (and a lone shard is never
		// demoted anyway).
		SlowRTT:    80 * time.Millisecond,
		HedgeDelay: hedgeDelay,
	}
	rt, err := cluster.NewRouter(pd, rcfg)
	if err != nil {
		return row, err
	}
	defer rt.Close()

	const keys = 64
	value := make([]byte, benchValueSize)
	for i := 0; i < keys; i++ {
		if err := rt.Set(fmt.Sprintf("g%d", i), value); err != nil {
			return row, fmt.Errorf("bench: grayfail load: %w", err)
		}
	}
	base := netfaults.Faults{Jitter: 2 * time.Millisecond}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		graySpikes(pd.links[0], base, stop)
	}()
	defer func() {
		close(stop)
		<-done
	}()

	lat := make([]float64, 0, cfg.Ops)
	for n := 0; n < cfg.Ops; n++ {
		key := fmt.Sprintf("g%d", n%keys)
		start := time.Now()
		_, _, err := rt.Get(key)
		lat = append(lat, float64(time.Since(start).Microseconds())/1e3)
		if err != nil {
			row.Errors++
		}
	}
	sort.Float64s(lat)
	row.P50Ms = lat[len(lat)/2]
	row.P99Ms = lat[len(lat)*99/100]
	m := rt.Counters()
	row.Hedges, row.Wins = m["hedges"], m["hedge_wins"]
	return row, nil
}

// String renders the report.
func (r *GrayFailReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gray-failure hardening — demotion latency and hedged-read tail\n")
	fmt.Fprintf(&b, "slow-shard demotion over %d cycles (10ms one-way data latency, probes clean, %dms probe interval):\n",
		r.Config.Cycles, int(r.ProbeIntervalMs))
	fmt.Fprintf(&b, "  detect avg %.1fms max %.1fms — budget 5x probe interval = %.0fms: %s\n",
		r.DemoteAvgMs, r.DemoteMaxMs, r.BudgetMs, passFail(r.DemoteMaxMs <= r.BudgetMs))
	fmt.Fprintf(&b, "  demotions %d, promotions %d (every cycle healed and promoted back)\n",
		r.Demotions, r.Promotions)
	fmt.Fprintf(&b, "hedged Gets under a spiky link (2ms jitter + 15ms stalls 1ms-in-16), %d ops each:\n", r.Config.Ops)
	fmt.Fprintf(&b, "  %-10s %9s %9s %9s %9s %8s\n", "scenario", "p50-ms", "p99-ms", "hedges", "wins", "errors")
	var off, on float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %9.1f %9.1f %9d %9d %8d\n",
			row.Scenario, row.P50Ms, row.P99Ms, row.Hedges, row.Wins, row.Errors)
		if row.Scenario == "hedge off" {
			off = row.P99Ms
		} else {
			on = row.P99Ms
		}
	}
	if off > 0 && on > 0 {
		fmt.Fprintf(&b, "hedged p99 win: %.1f%% (acceptance: hedged p99 below unhedged)\n", 100*(1-on/off))
	}
	return b.String()
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
