package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"privagic"
	"privagic/internal/sources"
)

// The Iago ablation measures what the runtime boundary defense (copy-in
// snapshots, pointer sanitization, payload integrity tags — the §4 Iago
// attacker's countermeasures) costs when nothing attacks and what it buys
// when the U-memory mutator does: every hardened run must end in the
// exact answer or a typed error, while the relaxed control row shows the
// same adversary corrupting an undefended instance without tripping a
// single detector. Two workloads bracket the attack surface: the figure-6
// walkthrough (no enclave pointers resident in U) and the memcached core
// (split-struct chains parked in U memory — the pointer smasher's target).

// iagoFigure6Src is the paper's Figure 6 walkthrough: entry main returns
// 42 after the cross-enclave g(21) protocol.
const iagoFigure6Src = `
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

void g(int n) {
	blue = n;
	red = n;
	printf("Hello\n");
}
int f(int y) {
	g(21);
	return 42;
}
entry int main() {
	unsafe = 1;
	int x = f(blue);
	return x;
}
`

// IagoConfig parameterizes the ablation.
type IagoConfig struct {
	// Schedules is the number of runs per row (seeded mutator schedules
	// for the attacked rows, repeated timings for the fault-free rows).
	Schedules int
	// WaitTimeout is the supervision inactivity window for attacked rows
	// (a rejected payload starves its wait; the timeout types the loss).
	WaitTimeout time.Duration
}

// DefaultIago returns the standard ablation setup.
func DefaultIago() IagoConfig {
	return IagoConfig{Schedules: 20, WaitTimeout: 15 * time.Millisecond}
}

// IagoRow is one (workload, scenario) aggregate outcome.
type IagoRow struct {
	Workload string
	Scenario string
	Runs     int
	Correct  int // exact fault-free answer
	Detected int // typed ErrIagoViolation failures
	Timeouts int // typed ErrWaitTimeout failures (rejected message starved a wait)
	Aborts   int // typed ErrEnclaveAbort / ErrStopped failures
	Wrong    int // silent corruption or untyped failure: must stay 0 when hardened

	Mutations       int64 // corruptions the adversary injected
	PointerRejected int64 // U-sourced addresses refused by the sanitizer
	PayloadRejected int64 // tampered messages refused at the admit gate
	SnapshotCopyIns int64 // U words copied into enclave-private snapshots
	AvgWallMicros   float64
	// OverheadPct is the fault-free defense cost relative to the
	// workload's baseline row (only set on the hardened fault-free row).
	OverheadPct float64
}

// IagoReport holds the ablation table.
type IagoReport struct {
	Config IagoConfig
	Rows   []IagoRow
}

// iagoMutator derives a jittered everything-at-once mutator schedule from
// the seed (the same class the soak's seed%4==3 arm runs).
func iagoMutator(seed int64) privagic.MutatorOptions {
	r := rand.New(rand.NewSource(seed * 6151))
	return privagic.MutatorOptions{
		Seed:          seed,
		FlipAfterRead: 0.03 + 0.12*r.Float64(),
		SmashPointers: 0.01 + 0.06*r.Float64(),
		MutatePayload: 0.01 + 0.06*r.Float64(),
	}
}

// minMicros returns the fastest sampled wall time in microseconds. The
// minimum, not the mean or median, is what the overhead ratio wants:
// scheduler preemption and GC pauses only ever add time, so the fastest
// run of a sweep is the closest observable to the workload's true cost.
func minMicros(walls []time.Duration) float64 {
	if len(walls) == 0 {
		return 0
	}
	min := walls[0]
	for _, d := range walls[1:] {
		if d < min {
			min = d
		}
	}
	return float64(min.Nanoseconds()) / 1e3
}

// iagoScenario describes one table row's defense/attack regime.
type iagoScenario struct {
	name     string
	defense  bool
	attacked bool
}

// iagoWorkload is one program under test.
type iagoWorkload struct {
	name  string
	file  string
	src   string
	entry string
}

// Iago runs the ablation.
func Iago(cfg IagoConfig) (*IagoReport, error) {
	if cfg.Schedules < 1 {
		cfg.Schedules = 1
	}
	rep := &IagoReport{Config: cfg}
	workloads := []iagoWorkload{
		{name: "figure6", file: "figure6.c", src: iagoFigure6Src, entry: "main"},
		{name: "memcached", file: "memcached_core.c", src: sources.MemcachedCoreColored, entry: "run_ycsb"},
	}
	scenarios := []iagoScenario{
		{name: "baseline (no defense)"},
		{name: "hardened, fault-free", defense: true},
		{name: "hardened + mutator", defense: true, attacked: true},
		{name: "relaxed + mutator", attacked: true},
	}
	for _, wl := range workloads {
		prog, err := privagic.Compile(wl.file, wl.src, privagic.Options{
			Mode: privagic.Relaxed, Entries: []string{wl.entry},
		})
		if err != nil {
			return nil, fmt.Errorf("bench: compile %s: %w", wl.name, err)
		}
		// Ground truth: one clean, undefended run.
		clean := prog.Instantiate(nil)
		want, err := clean.Call(wl.entry)
		clean.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: clean %s baseline failed: %w", wl.name, err)
		}
		var baseWall float64
		for _, sc := range scenarios {
			row := IagoRow{Workload: wl.name, Scenario: sc.name, Runs: cfg.Schedules}
			if !sc.attacked {
				// The fault-free rows feed the overhead figure, so give
				// them a couple of untimed warmup runs: the first calls
				// after a compile pay one-time costs (allocator growth,
				// cold caches) that would otherwise land entirely on
				// whichever row happens to run first.
				for i := 0; i < 2; i++ {
					inst := prog.Instantiate(nil)
					if sc.defense {
						inst.EnableBoundaryDefense(privagic.FullBoundaryDefense())
					}
					inst.Call(wl.entry)
					inst.Close()
				}
			}
			var wall time.Duration
			walls := make([]time.Duration, 0, cfg.Schedules)
			for seed := int64(1); seed <= int64(cfg.Schedules); seed++ {
				inst := prog.Instantiate(nil)
				inst.EnableSpawnValidation()
				if sc.defense {
					inst.EnableBoundaryDefense(privagic.FullBoundaryDefense())
				}
				if sc.attacked {
					inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: cfg.WaitTimeout})
					inst.EnableMutator(iagoMutator(seed))
				}
				start := time.Now()
				ret, err := inst.Call(wl.entry)
				d := time.Since(start)
				wall += d
				walls = append(walls, d)
				switch {
				case err == nil && ret == want:
					row.Correct++
				case errors.Is(err, privagic.ErrIagoViolation):
					row.Detected++
				case errors.Is(err, privagic.ErrWaitTimeout):
					row.Timeouts++
				case errors.Is(err, privagic.ErrEnclaveAbort), errors.Is(err, privagic.ErrStopped):
					row.Aborts++
				default:
					row.Wrong++
				}
				bs := inst.BoundaryStats()
				row.PointerRejected += bs.Violations
				row.PayloadRejected += bs.PayloadTampered
				row.SnapshotCopyIns += bs.SnapshotCopyIns
				row.Mutations += inst.MutatorStats().Total()
				inst.Close()
			}
			row.AvgWallMicros = float64(wall.Microseconds()) / float64(cfg.Schedules)
			best := minMicros(walls)
			switch {
			case !sc.defense && !sc.attacked:
				baseWall = best
			case sc.defense && !sc.attacked && baseWall > 0:
				row.OverheadPct = 100 * (best - baseWall) / baseWall
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// String renders the ablation table.
func (r *IagoReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Iago boundary-defense ablation — %d runs/row, window %v\n",
		r.Config.Schedules, r.Config.WaitTimeout)
	fmt.Fprintf(&b, "%-10s %-24s %8s %9s %9s %7s %6s %6s %8s %8s %8s %11s %9s\n",
		"workload", "scenario", "correct", "detected", "timeouts", "aborts", "wrong",
		"muts", "ptr-rej", "pay-rej", "copy-in", "avg-us/run", "overhead")
	for _, row := range r.Rows {
		over := ""
		if row.OverheadPct != 0 {
			over = fmt.Sprintf("%+.1f%%", row.OverheadPct)
		}
		fmt.Fprintf(&b, "%-10s %-24s %8d %9d %9d %7d %6d %6d %8d %8d %8d %11.0f %9s\n",
			row.Workload, row.Scenario, row.Correct, row.Detected, row.Timeouts,
			row.Aborts, row.Wrong, row.Mutations, row.PointerRejected,
			row.PayloadRejected, row.SnapshotCopyIns, row.AvgWallMicros, over)
	}
	b.WriteString("hardened rows must keep wrong at 0; the relaxed control must keep detections at 0\n")
	return b.String()
}
