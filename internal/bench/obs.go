package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"privagic"
	"privagic/internal/sources"
)

// The obs ablation measures what the observability layer costs: the same
// workload swept with observability off, with the metrics registry armed,
// and with registry + tracer armed. The acceptance bar is <3% wall
// overhead for the fully armed configuration — metrics are gauge closures
// over existing counters (snapshot-time cost only) and the tracer is one
// uncontended mutexed ring write per runtime event with batched
// timestamping, so the budget holds on both the figure-9 hashmap and the
// figure-8 memcached-core workloads.
//
// Methodology: the scenarios are interleaved round-robin within the
// sweep (off, metrics, tracer, off, metrics, tracer, ...) rather than
// swept back to back, so clock drift, allocator growth and frequency
// scaling land on every scenario equally, and the heap is collected
// before every timed run so one run's garbage is never another run's GC
// pause. The overhead figure is a 25%-trimmed mean over rounds of the
// per-round ratio against the same round's baseline run: pairing within
// a round cancels drift (the runs are adjacent in time) and trimming
// discards scheduler-outlier rounds while averaging the rest. A
// min-of-sweep (the idiom the latency benches use) is reported too, but
// the min order statistic does not converge on short workloads whose
// run-to-run spread exceeds the effect being measured.

// ObsConfig parameterizes the ablation.
type ObsConfig struct {
	// Schedules is the number of timed runs per row (min-of-sweep feeds
	// the overhead figure).
	Schedules int
	// TraceOut, when set, receives the Chrome trace_event JSON of one
	// fully instrumented run of the last workload (the -trace-out flag).
	TraceOut io.Writer
}

// DefaultObs returns the standard ablation setup.
func DefaultObs() ObsConfig { return ObsConfig{Schedules: 60} }

// ObsRow is one (workload, scenario) aggregate outcome.
type ObsRow struct {
	Workload string
	Scenario string
	Runs     int
	Correct  int

	MinMicros     float64 // fastest run of the sweep
	AvgWallMicros float64
	// OverheadPct is relative to the workload's observability-off row:
	// a 25%-trimmed mean over sweep rounds of this scenario's wall time
	// divided by the same round's baseline wall time (zero on the
	// baseline row).
	OverheadPct float64

	// TraceEvents/Metrics sample the instrumentation's own output: events
	// recorded in the last run of the row, metric names in its snapshot.
	TraceEvents int64
	Metrics     int
}

// ObsReport holds the ablation table.
type ObsReport struct {
	Config ObsConfig
	Rows   []ObsRow
}

// Obs runs the ablation.
func Obs(cfg ObsConfig) (*ObsReport, error) {
	if cfg.Schedules < 1 {
		cfg.Schedules = 1
	}
	rep := &ObsReport{Config: cfg}
	workloads := []iagoWorkload{
		{name: "hashmap", file: "hashmap2.c", src: sources.HashmapColored2, entry: "run_ycsb"},
		{name: "memcached", file: "memcached_core.c", src: sources.MemcachedCoreColored, entry: "run_ycsb"},
	}
	scenarios := []struct {
		name    string
		opts    privagic.ObservabilityOptions
		enabled bool
	}{
		{name: "observability off"},
		{name: "metrics registry", opts: privagic.ObservabilityOptions{Metrics: true}, enabled: true},
		{name: "metrics + tracer", opts: privagic.ObservabilityOptions{Metrics: true, Trace: true}, enabled: true},
	}
	for _, wl := range workloads {
		prog, err := privagic.Compile(wl.file, wl.src, privagic.Options{
			Mode: privagic.Relaxed, Entries: []string{wl.entry},
		})
		if err != nil {
			return nil, fmt.Errorf("bench: compile %s: %w", wl.name, err)
		}
		clean := prog.Instantiate(nil)
		want, err := clean.Call(wl.entry)
		clean.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: clean %s baseline failed: %w", wl.name, err)
		}
		rows := make([]ObsRow, len(scenarios))
		walls := make([][]time.Duration, len(scenarios))
		for si, sc := range scenarios {
			rows[si] = ObsRow{Workload: wl.name, Scenario: sc.name, Runs: cfg.Schedules}
			walls[si] = make([]time.Duration, 0, cfg.Schedules)
		}
		// Warmup: one-time costs (allocator growth, cold caches) must not
		// land on whichever scenario runs first.
		for i := 0; i < 2; i++ {
			for _, sc := range scenarios {
				inst := prog.Instantiate(nil)
				if sc.enabled {
					inst.EnableObservability(sc.opts)
				}
				inst.Call(wl.entry)
				inst.Close()
			}
		}
		for run := 0; run < cfg.Schedules; run++ {
			for si, sc := range scenarios {
				inst := prog.Instantiate(nil)
				if sc.enabled {
					inst.EnableObservability(sc.opts)
				}
				runtime.GC()
				start := time.Now()
				ret, err := inst.Call(wl.entry)
				walls[si] = append(walls[si], time.Since(start))
				if err == nil && ret == want {
					rows[si].Correct++
				}
				if run == cfg.Schedules-1 && sc.enabled {
					snap := inst.MetricsSnapshot()
					rows[si].Metrics = len(snap)
					rows[si].TraceEvents = snap["obs.trace_events"]
				}
				inst.Close()
			}
		}
		for si, sc := range scenarios {
			var wall time.Duration
			for _, d := range walls[si] {
				wall += d
			}
			rows[si].AvgWallMicros = float64(wall.Microseconds()) / float64(cfg.Schedules)
			rows[si].MinMicros = minMicros(walls[si])
			if sc.enabled {
				rows[si].OverheadPct = trimmedRatioPct(walls[si], walls[0])
			}
			rep.Rows = append(rep.Rows, rows[si])
		}
		if cfg.TraceOut != nil {
			// One extra fully instrumented run to capture the trace the
			// -trace-out flag asked for (the timed sweep stays untouched).
			// The capture run is untimed, so it can afford rings big
			// enough to keep the whole run resident.
			inst := prog.Instantiate(nil)
			inst.EnableObservability(privagic.ObservabilityOptions{Metrics: true, Trace: true, TraceBuffer: 1 << 14})
			if _, err := inst.Call(wl.entry); err != nil {
				inst.Close()
				return nil, fmt.Errorf("bench: traced %s run failed: %w", wl.name, err)
			}
			if err := inst.WriteChromeTrace(cfg.TraceOut); err != nil {
				inst.Close()
				return nil, fmt.Errorf("bench: trace export: %w", err)
			}
			inst.Close()
			cfg.TraceOut = nil // first workload's trace only
		}
	}
	return rep, nil
}

// trimmedRatioPct is the paired overhead estimator: a 25%-trimmed mean
// over sweep rounds of scenario[r]/base[r], as a percentage delta. The
// trim discards the quarter of rounds most disturbed by the scheduler or
// allocator (in either direction); the mean over the remaining half is
// statistically tighter than a bare median.
func trimmedRatioPct(scenario, base []time.Duration) float64 {
	n := len(scenario)
	if len(base) < n {
		n = len(base)
	}
	ratios := make([]float64, 0, n)
	for r := 0; r < n; r++ {
		if base[r] > 0 {
			ratios = append(ratios, float64(scenario[r])/float64(base[r]))
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	sort.Float64s(ratios)
	lo := len(ratios) / 4
	hi := len(ratios) - lo
	var sum float64
	for _, v := range ratios[lo:hi] {
		sum += v
	}
	return 100 * (sum/float64(hi-lo) - 1)
}

// String renders the ablation table.
func (r *ObsReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead ablation — %d runs/row, min-of-sweep overhead\n", r.Config.Schedules)
	fmt.Fprintf(&b, "%-10s %-20s %8s %10s %11s %9s %8s %8s\n",
		"workload", "scenario", "correct", "min-us", "avg-us/run", "overhead", "events", "metrics")
	for _, row := range r.Rows {
		over := ""
		if row.OverheadPct != 0 {
			over = fmt.Sprintf("%+.1f%%", row.OverheadPct)
		}
		fmt.Fprintf(&b, "%-10s %-20s %8d %10.0f %11.0f %9s %8d %8d\n",
			row.Workload, row.Scenario, row.Correct, row.MinMicros,
			row.AvgWallMicros, over, row.TraceEvents, row.Metrics)
	}
	b.WriteString("acceptance: the metrics + tracer rows stay within 3% of observability off\n")
	return b.String()
}
