package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"privagic"
	"privagic/internal/sources"
)

// The recovery experiment is the ablation for the restart/replay layer:
// the two-color hashmap runs (a) bare, (b) with recovery armed but no
// faults — the cost of effect buffering and the journal's load/cont
// caches on the fault-free path — and (c) under seeded crash schedules
// with the crash cap at the replay budget, where every run must recover
// to the exact fault-free answer. The two headline numbers are the
// fault-free overhead and the recovery rate.

// RecoveryConfig parameterizes the ablation.
type RecoveryConfig struct {
	// Schedules is the number of seeded crash schedules in the faulted
	// scenario, and the repeat count of the unfaulted scenarios (wall
	// times are averaged over it).
	Schedules int
	// Budget is the per-spawn replay budget and the per-run crash cap.
	Budget int
	// WaitTimeout is the supervision inactivity window.
	WaitTimeout time.Duration
}

// DefaultRecovery returns the standard ablation setup.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{Schedules: 30, Budget: 3, WaitTimeout: 15 * time.Millisecond}
}

// RecoveryRow is one scenario's aggregate outcome.
type RecoveryRow struct {
	Scenario  string
	Runs      int
	Recovered int // exact fault-free answer
	Errors    int // user-visible typed errors (must stay 0)
	Wrong     int // silent corruption (must stay 0)

	Crashes  int64 // crashes injected across the scenario
	Replays  int64 // replays performed
	Restarts int64 // workers torn down and re-created

	AvgWallMicros float64
}

// RecoveryReport holds the ablation table.
type RecoveryReport struct {
	Config RecoveryConfig
	Want   int64 // the fault-free answer every run is held to
	Rows   []RecoveryRow
	// OverheadPct is the fault-free cost of arming recovery, relative to
	// the bare run (row 1 vs row 0).
	OverheadPct float64
}

// Recovery runs the ablation.
func Recovery(cfg RecoveryConfig) (*RecoveryReport, error) {
	if cfg.Schedules < 1 {
		cfg.Schedules = 1
	}
	if cfg.Budget < 1 {
		cfg.Budget = 1
	}
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
	})
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{Config: cfg}

	clean := prog.Instantiate(nil)
	rep.Want, err = clean.Call("run_ycsb")
	clean.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: clean recovery baseline failed: %w", err)
	}

	type scenario struct {
		name     string
		recover  bool
		faulted  bool
		faultsOf func(seed int64) privagic.FaultOptions
	}
	scenarios := []scenario{
		{name: "baseline (no recovery)"},
		{name: "recovery armed, fault-free", recover: true},
		{name: fmt.Sprintf("crash schedules (cap %d)", cfg.Budget), recover: true, faulted: true,
			faultsOf: func(seed int64) privagic.FaultOptions {
				r := rand.New(rand.NewSource(seed * 104729))
				return privagic.FaultOptions{
					Seed:       seed,
					MaxCrashes: cfg.Budget,
					Crash:      0.02 + 0.06*r.Float64(),
					CrashMid:   0.01 + 0.03*r.Float64(),
				}
			}},
	}
	for _, sc := range scenarios {
		row := RecoveryRow{Scenario: sc.name, Runs: cfg.Schedules}
		var wall time.Duration
		for seed := int64(1); seed <= int64(cfg.Schedules); seed++ {
			inst := prog.Instantiate(nil)
			inst.EnableSpawnValidation()
			if sc.recover {
				inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: cfg.WaitTimeout})
				inst.EnableRecovery(privagic.RecoveryOptions{MaxAttempts: cfg.Budget})
			}
			if sc.faulted {
				inst.EnableFaultInjection(sc.faultsOf(seed))
			}
			start := time.Now()
			ret, err := inst.Call("run_ycsb")
			wall += time.Since(start)
			switch {
			case err == nil && ret == rep.Want:
				row.Recovered++
			case err != nil:
				row.Errors++
			default:
				row.Wrong++
			}
			if sc.faulted {
				row.Crashes += inst.FaultStats().Crashes
			}
			rs := inst.RecoveryStats()
			row.Replays += rs.Replays
			row.Restarts += rs.Restarts
			inst.Close()
		}
		row.AvgWallMicros = float64(wall.Microseconds()) / float64(cfg.Schedules)
		rep.Rows = append(rep.Rows, row)
	}
	if base := rep.Rows[0].AvgWallMicros; base > 0 {
		rep.OverheadPct = (rep.Rows[1].AvgWallMicros - base) / base * 100
	}
	return rep, nil
}

// String renders the ablation table.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery ablation — two-color hashmap, %d hits fault-free, budget %d, window %v\n",
		r.Want, r.Config.Budget, r.Config.WaitTimeout)
	fmt.Fprintf(&b, "%-28s %5s %10s %7s %6s %8s %8s %9s %11s\n",
		"scenario", "runs", "recovered", "errors", "wrong", "crashes", "replays", "restarts", "avg-us/run")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %5d %10d %7d %6d %8d %8d %9d %11.0f\n",
			row.Scenario, row.Runs, row.Recovered, row.Errors, row.Wrong,
			row.Crashes, row.Replays, row.Restarts, row.AvgWallMicros)
	}
	fmt.Fprintf(&b, "fault-free overhead of arming recovery: %+.1f%%\n", r.OverheadPct)
	b.WriteString("every crashed run must land in recovered; errors and wrong must be 0\n")
	return b.String()
}
