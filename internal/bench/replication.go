package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"privagic/internal/cluster"
	"privagic/internal/obs"
	"privagic/internal/ycsb"
)

// The replication experiment (DESIGN.md §16) prices and proves the
// replicated router, in two parts:
//
//   - Replication tax: YCSB-A throughput through the router at R=2 vs
//     R=1 on the same 3-shard cluster. R=2 doubles write fan-out (every
//     Set acks two members) and leaves reads on the primary, so the mix
//     pays roughly half its ops twice. The acceptance bar is a tax
//     within 35% of R=1, measured as the median of per-rep paired
//     ratios (same damping as the cluster experiment's router tax).
//   - Outage drill: a deterministic kill → write-through-outage →
//     respawn → readmit cycle, repeated. Every acknowledged write must
//     read back (zero loss: reads during the outage fall back, reads
//     after readmission may land on the returned shard), hints must
//     queue and drain, the readmission sync and drain windows come from
//     the repl.* histograms, and one staged divergence must heal
//     through CAS-guarded read-repair. Every defense the soaks rely on
//     is asserted nonzero here, on a clean deterministic schedule.

// ReplicationConfig parameterizes the experiment.
type ReplicationConfig struct {
	// Ops is the total operation count per throughput row.
	Ops int
	// Clients is the concurrent client count.
	Clients int
	// Reps runs each R=1/R=2 pair this many times (median of paired
	// ratios; minimum 5 enforced).
	Reps int
	// Outages is how many kill/respawn cycles the drill runs.
	Outages int
	// KeysPerOutage is how many keys are written before and during each
	// outage (each checked for zero loss).
	KeysPerOutage int
}

// DefaultReplication returns the full-scale setup.
func DefaultReplication() ReplicationConfig {
	return ReplicationConfig{Ops: 24000, Clients: 6, Reps: 7, Outages: 5, KeysPerOutage: 50}
}

// ReplicationReport holds the tax pair and the outage drill's evidence.
type ReplicationReport struct {
	Config ReplicationConfig
	Rows   []ClusterRow // scenario "R=1" / "R=2", best rep of each

	// TaxPct is the throughput cost of R=2 vs R=1 as the median of
	// per-rep paired ratios, in percent (positive = R=2 slower).
	TaxPct float64

	// Outage drill evidence.
	LostReads     int   // acked writes that ever read back as a miss (must be 0)
	CheckedReads  int   // zero-loss reads performed
	Outages       int   // completed kill/respawn cycles
	ReplicaWrites int64 // fan-out writes beyond the primary
	Fallbacks     int64 // reads answered by a non-primary member
	HintsQueued   int64
	HintsDrained  int64
	Syncs         int64 // anti-entropy readmissions completed
	ReadRepairs   int64 // staged divergences healed at read time

	// Readmission windows from the repl.* histograms, microseconds.
	SyncAvgUs, SyncMaxUs   float64
	DrainAvgUs, DrainMaxUs float64
}

// Replication runs the experiment.
func Replication(cfg ReplicationConfig) (*ReplicationReport, error) {
	if cfg.Ops < 1 {
		cfg.Ops = 1
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Reps < 5 {
		cfg.Reps = 5
	}
	if cfg.Outages < 1 {
		cfg.Outages = 1
	}
	if cfg.KeysPerOutage < 1 {
		cfg.KeysPerOutage = 1
	}
	rep := &ReplicationReport{Config: cfg}

	// Interleaved pairs, median of ratios — same drift damping as the
	// cluster experiment's router tax.
	ratios := make([]float64, 0, cfg.Reps)
	var r1, r2 ClusterRow
	for i := 0; i < cfg.Reps; i++ {
		a, err := replicationRow(cfg, 1)
		if err != nil {
			return nil, err
		}
		b, err := replicationRow(cfg, 2)
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, b.OpsPerSec/a.OpsPerSec)
		if i == 0 || a.OpsPerSec > r1.OpsPerSec {
			r1 = a
		}
		if i == 0 || b.OpsPerSec > r2.OpsPerSec {
			r2 = b
		}
	}
	rep.TaxPct = 100 * (1 - medianOfSorted(ratios))
	rep.Rows = append(rep.Rows, r1, r2)

	if err := replicationDrill(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// medianOfSorted sorts in place and returns the median.
func medianOfSorted(v []float64) float64 {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v[len(v)/2]
}

// replicationRow measures YCSB-A throughput at the given replication
// factor on a 3-shard cluster with client-wide pools (capacity is not
// the bottleneck; the fan-out is what differs between rows).
func replicationRow(cfg ReplicationConfig, replication int) (ClusterRow, error) {
	row := ClusterRow{Scenario: fmt.Sprintf("R=%d", replication), Shards: 3, Ops: cfg.Ops}
	cl, err := cluster.New(cluster.Config{Shards: 3, Workers: cfg.Clients * 2})
	if err != nil {
		return row, err
	}
	defer cl.Close()
	rcfg := benchRouterConfig()
	rcfg.PoolConns = cfg.Clients + 2
	rcfg.Replication = replication
	rt, err := cluster.NewRouter(cl, rcfg)
	if err != nil {
		return row, err
	}
	defer rt.Close()

	base, err := ycsb.New(ycsb.Config{
		Records:      4096,
		Mix:          ycsb.WorkloadA,
		Distribution: ycsb.Zipfian,
		Seed:         42,
	})
	if err != nil {
		return row, err
	}
	streams := base.Split(cfg.Clients)
	value := make([]byte, benchValueSize)
	perClient := cfg.Ops / cfg.Clients
	errs := make([]int64, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen := streams[id]
			for n := 0; n < perClient; n++ {
				op := gen.Next()
				key := fmt.Sprintf("k%d", op.Key)
				var err error
				if op.Kind == ycsb.OpRead {
					_, _, err = rt.Get(key)
				} else {
					err = rt.Set(key, value)
				}
				if err != nil {
					errs[id]++
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, e := range errs {
		row.Errors += e
	}
	cs := rt.Counters()
	row.Retries, row.Sheds = cs["retries"], cs["sheds"]
	row.WallMs = float64(wall.Microseconds()) / 1e3
	row.OpsPerSec = float64(perClient*cfg.Clients) / wall.Seconds()
	return row, nil
}

// replicationDrill is the deterministic outage cycle: write, kill,
// verify zero loss through fallback, write through the outage (hints),
// respawn, wait for the anti-entropy readmission, verify zero loss
// again, and finally stage one divergence and watch read-repair heal
// it. Counters and histograms come from one instrumented router across
// all cycles.
func replicationDrill(cfg ReplicationConfig, rep *ReplicationReport) error {
	cl, err := cluster.New(cluster.Config{Shards: 3})
	if err != nil {
		return err
	}
	defer cl.Close()
	rcfg := fastProbeConfig()
	rcfg.Replication = 2
	rt, err := cluster.NewRouter(cl, rcfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	reg := obs.NewRegistry()
	rt.Instrument(reg, nil)

	checkAll := func(prefix string, n int) error {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s%d", prefix, i)
			var lastErr error
			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) {
				v, ok, err := rt.Get(key)
				if err != nil {
					lastErr = err
					time.Sleep(time.Millisecond) // transient (mid-fence); retry
					continue
				}
				rep.CheckedReads++
				if !ok || string(v) != "v" {
					rep.LostReads++
				}
				lastErr = nil
				break
			}
			if lastErr != nil {
				return fmt.Errorf("bench: replication drill: get %s: %w", key, lastErr)
			}
		}
		return nil
	}

	victim := 0
	for cycle := 0; cycle < cfg.Outages; cycle++ {
		pre := fmt.Sprintf("rd%d-", cycle)
		for i := 0; i < cfg.KeysPerOutage; i++ {
			if err := rt.Set(fmt.Sprintf("%s%d", pre, i), []byte("v")); err != nil {
				return fmt.Errorf("bench: replication drill: set: %w", err)
			}
		}
		if err := cl.Kill(victim); err != nil {
			return err
		}
		// Zero loss through the outage: every acked key must read back
		// while the victim is dead (fallback) and fencing is racing.
		if err := checkAll(pre, cfg.KeysPerOutage); err != nil {
			return err
		}
		// Writes during the outage queue hints for the victim.
		during := fmt.Sprintf("rw%d-", cycle)
		for i := 0; i < cfg.KeysPerOutage; i++ {
			if err := rt.Set(fmt.Sprintf("%s%d", during, i), []byte("v")); err != nil {
				return fmt.Errorf("bench: replication drill: outage set: %w", err)
			}
		}
		if err := cl.Respawn(victim); err != nil {
			return err
		}
		deadline := time.Now().Add(2 * time.Second)
		for !rt.InRing(victim) {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: replication drill: shard %d was not readmitted", victim)
			}
			time.Sleep(time.Millisecond)
		}
		// Zero loss after readmission: reads may now land on the
		// returned shard, which must have synced and drained.
		if err := checkAll(pre, cfg.KeysPerOutage); err != nil {
			return err
		}
		if err := checkAll(during, cfg.KeysPerOutage); err != nil {
			return err
		}
		rep.Outages++
	}

	// Staged divergence: a member loses its copy; one read must heal it.
	if err := rt.Set("repair-me", []byte("v")); err != nil {
		return err
	}
	cl.Store(rt.Owner("repair-me")).Delete("repair-me")
	if _, ok, err := rt.Get("repair-me"); err != nil || !ok {
		return fmt.Errorf("bench: replication drill: read of damaged key: ok=%v err=%v", ok, err)
	}

	cs := rt.Counters()
	rep.ReplicaWrites = cs["repl.replica_writes"]
	rep.Fallbacks = cs["repl.fallback_reads"]
	rep.HintsQueued = cs["repl.hints_queued"]
	rep.HintsDrained = cs["repl.hints_drained"]
	rep.Syncs = cs["repl.syncs"]
	rep.ReadRepairs = cs["repl.read_repairs"]
	if count, sum, max := reg.Histogram("repl.sync_us").Stats(); count > 0 {
		rep.SyncAvgUs, rep.SyncMaxUs = float64(sum)/float64(count), float64(max)
	}
	if count, sum, max := reg.Histogram("repl.handoff_drain_us").Stats(); count > 0 {
		rep.DrainAvgUs, rep.DrainMaxUs = float64(sum)/float64(count), float64(max)
	}
	return nil
}

// String renders the report.
func (r *ReplicationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replication — YCSB-A, %d ops, %d clients, 3 shards, R=2 vs R=1\n",
		r.Config.Ops, r.Config.Clients)
	fmt.Fprintf(&b, "%-12s %7s %10s %12s %9s %9s %8s\n",
		"scenario", "shards", "wall-ms", "ops/sec", "errors", "retries", "sheds")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %7d %10.1f %12.0f %9d %9d %8d\n",
			row.Scenario, row.Shards, row.WallMs, row.OpsPerSec, row.Errors, row.Retries, row.Sheds)
	}
	fmt.Fprintf(&b, "replication tax (R=2 vs R=1): %.1f%% median-of-pairs (acceptance: within 35%%)\n", r.TaxPct)
	fmt.Fprintf(&b, "outage drill: %d cycles, %d zero-loss reads, %d lost (acceptance: 0 lost)\n",
		r.Outages, r.CheckedReads, r.LostReads)
	fmt.Fprintf(&b, "defenses: replica_writes=%d fallbacks=%d hints_queued=%d hints_drained=%d syncs=%d read_repairs=%d (acceptance: all nonzero)\n",
		r.ReplicaWrites, r.Fallbacks, r.HintsQueued, r.HintsDrained, r.Syncs, r.ReadRepairs)
	fmt.Fprintf(&b, "readmission windows: sync avg %.0fus max %.0fus | hint drain avg %.0fus max %.0fus\n",
		r.SyncAvgUs, r.SyncMaxUs, r.DrainAvgUs, r.DrainMaxUs)
	return b.String()
}
