package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"privagic"
	"privagic/internal/sources"
)

// The supervision experiment is the robustness ablation that the paper's
// evaluation does not have: the two-color hashmap (the §9.3 workload with
// the longest cross-enclave protocol) runs under the runtime's
// fault-tolerance layer, with and without injected faults, and the table
// reports what supervision costs when nothing goes wrong and what it
// buys when things do — every faulted run either recovers to the exact
// fault-free answer or fails with a typed error, never hangs, never
// returns a silently wrong result.

// SupervisionConfig parameterizes the ablation.
type SupervisionConfig struct {
	// Schedules is the number of seeded fault schedules per faulted
	// scenario.
	Schedules int
	// WaitTimeout is the supervision inactivity window.
	WaitTimeout time.Duration
}

// DefaultSupervision returns the standard ablation setup.
func DefaultSupervision() SupervisionConfig {
	return SupervisionConfig{Schedules: 10, WaitTimeout: 15 * time.Millisecond}
}

// SupervisionRow is one scenario's aggregate outcome.
type SupervisionRow struct {
	Scenario string
	Runs     int
	Correct  int // exact fault-free answer
	Timeouts int // typed ErrWaitTimeout failures
	Aborts   int // typed ErrEnclaveAbort failures (simulated AEX)
	Wrong    int // silent corruption: must stay 0

	Retransmits     int64 // cost-model retransmissions charged
	HostileRejected int64 // forged messages refused at the admit gate
	DupsDropped     int64 // replayed messages suppressed
	AvgWallMicros   float64
}

// SupervisionReport holds the ablation table.
type SupervisionReport struct {
	Config SupervisionConfig
	Want   int64 // the fault-free answer every run is held to
	Rows   []SupervisionRow
}

// supScenario describes one table row's fault regime.
type supScenario struct {
	name      string
	supervise bool
	faulted   bool
	faults    func(seed int64) privagic.FaultOptions
}

// Supervision runs the ablation.
func Supervision(cfg SupervisionConfig) (*SupervisionReport, error) {
	if cfg.Schedules < 1 {
		cfg.Schedules = 1
	}
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
	})
	if err != nil {
		return nil, err
	}
	rep := &SupervisionReport{Config: cfg}

	// Ground truth: one clean, unsupervised run.
	clean := prog.Instantiate(nil)
	rep.Want, err = clean.Call("run_ycsb")
	clean.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: clean supervision baseline failed: %w", err)
	}

	scenarios := []supScenario{
		{name: "baseline (no supervision)"},
		{name: "supervised, fault-free", supervise: true},
		{name: "drop 1% + retransmit", supervise: true, faulted: true,
			faults: func(seed int64) privagic.FaultOptions {
				return privagic.FaultOptions{Seed: seed, Drop: 0.01,
					Retransmit: true, RetransmitAfter: time.Millisecond}
			}},
		{name: "crash 0.5% of chunks", supervise: true, faulted: true,
			faults: func(seed int64) privagic.FaultOptions {
				return privagic.FaultOptions{Seed: seed, Crash: 0.005}
			}},
		{name: "dup/delay/reorder/forge 2%", supervise: true, faulted: true,
			faults: func(seed int64) privagic.FaultOptions {
				return privagic.FaultOptions{Seed: seed, Duplicate: 0.02,
					Delay: 0.02, Reorder: 0.02, Forge: 0.02}
			}},
	}
	for _, sc := range scenarios {
		runs := 1
		if sc.faulted {
			runs = cfg.Schedules
		}
		row := SupervisionRow{Scenario: sc.name, Runs: runs}
		var wall time.Duration
		for seed := int64(1); seed <= int64(runs); seed++ {
			inst := prog.Instantiate(nil)
			inst.EnableSpawnValidation()
			if sc.supervise {
				inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: cfg.WaitTimeout})
			}
			if sc.faulted {
				inst.EnableFaultInjection(sc.faults(seed))
			}
			start := time.Now()
			ret, err := inst.Call("run_ycsb")
			wall += time.Since(start)
			switch {
			case err == nil && ret == rep.Want:
				row.Correct++
			case errors.Is(err, privagic.ErrWaitTimeout):
				row.Timeouts++
			case errors.Is(err, privagic.ErrEnclaveAbort):
				row.Aborts++
			default:
				row.Wrong++
			}
			sup := inst.SupervisionStats()
			row.HostileRejected += sup.HostileTotal()
			row.DupsDropped += sup.DroppedDuplicates
			row.Retransmits += inst.Meter().Retransmits()
			inst.Close()
		}
		row.AvgWallMicros = float64(wall.Microseconds()) / float64(runs)
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// String renders the ablation table.
func (r *SupervisionReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Supervision ablation — two-color hashmap, %d hits fault-free, window %v\n",
		r.Want, r.Config.WaitTimeout)
	fmt.Fprintf(&b, "%-28s %5s %8s %9s %7s %6s %8s %8s %6s %11s\n",
		"scenario", "runs", "correct", "timeouts", "aborts", "wrong",
		"hostile", "dups", "retx", "avg-us/run")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %5d %8d %9d %7d %6d %8d %8d %6d %11.0f\n",
			row.Scenario, row.Runs, row.Correct, row.Timeouts, row.Aborts, row.Wrong,
			row.HostileRejected, row.DupsDropped, row.Retransmits, row.AvgWallMicros)
	}
	b.WriteString("every run completes correctly or fails with a typed error; wrong must be 0\n")
	return b.String()
}
