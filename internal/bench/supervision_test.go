package bench

import (
	"testing"
	"time"
)

// TestSupervisionAblation runs a shrunken ablation and holds it to the
// experiment's own invariant: zero silently wrong runs, a correct
// baseline, recovery under retransmission, and typed failures under
// crashes.
func TestSupervisionAblation(t *testing.T) {
	rep, err := Supervision(SupervisionConfig{Schedules: 2, WaitTimeout: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.String())
	if rep.Want <= 0 {
		t.Fatalf("degenerate fault-free answer %d", rep.Want)
	}
	for _, row := range rep.Rows {
		if row.Wrong != 0 {
			t.Errorf("%s: %d silently wrong runs", row.Scenario, row.Wrong)
		}
		if row.Correct+row.Timeouts+row.Aborts != row.Runs {
			t.Errorf("%s: outcomes do not account for all %d runs", row.Scenario, row.Runs)
		}
	}
	if rep.Rows[0].Correct != 1 {
		t.Error("unsupervised baseline did not complete correctly")
	}
	if rep.Rows[1].Correct != 1 {
		t.Error("supervised fault-free run did not complete correctly")
	}
	if drop := rep.Rows[2]; drop.Correct != drop.Runs || drop.Retransmits == 0 {
		t.Errorf("drop+retransmit: %d/%d correct with %d retransmits; retransmission should recover every run",
			drop.Correct, drop.Runs, drop.Retransmits)
	}
	if crash := rep.Rows[3]; crash.Aborts+crash.Timeouts+crash.Correct != crash.Runs {
		t.Errorf("crash scenario: unexpected outcome mix %+v", crash)
	}
}
