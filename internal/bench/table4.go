package bench

import (
	"fmt"
	"strings"

	"privagic/internal/minic"
	"privagic/internal/partition"
	"privagic/internal/passes"
	"privagic/internal/sources"
	"privagic/internal/typing"
)

// Table4Report is the memcached-metrics table of §9.2 (Table 4): modified
// lines, TCB size, and user code loaded in the enclave, for the full
// embedding (Scone) versus the Privagic partition.
type Table4Report struct {
	PrivagicModifiedLines int
	SconeModifiedLines    int

	PrivagicTCBKiB int
	SconeTCBKiB    int

	PrivagicUserInstrs int
	TotalUserInstrs    int

	TCBReduction      float64
	UserCodeReduction float64
}

// Table4 compiles the colored memcached core in hardened mode (as the
// paper did) and measures the partition.
func Table4() (*Table4Report, error) {
	mod, err := minic.Compile("memcached_core.c", sources.MemcachedCoreColored)
	if err != nil {
		return nil, fmt.Errorf("table4: %w", err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: typing.Hardened})
	if err := an.Err(); err != nil {
		return nil, fmt.Errorf("table4: typing: %w", err)
	}
	prog, err := partition.Partition(an)
	if err != nil {
		return nil, fmt.Errorf("table4: partition: %w", err)
	}
	tcb := prog.Report()
	rep := &Table4Report{
		PrivagicModifiedLines: DiffLines(sources.MemcachedCorePlain, sources.MemcachedCoreColored),
		SconeModifiedLines:    0, // full embedding needs no source change
		SconeTCBKiB:           tcb.FullEmbedKiB,
		TotalUserInstrs:       tcb.TotalUserInstrs,
		TCBReduction:          tcb.ReductionFactor(),
	}
	for c, n := range tcb.UserInstrsPerEnclave {
		rep.PrivagicTCBKiB = tcb.EnclaveKiB(c)
		rep.PrivagicUserInstrs = n
	}
	if rep.PrivagicUserInstrs > 0 {
		rep.UserCodeReduction = float64(rep.TotalUserInstrs) / float64(rep.PrivagicUserInstrs)
	}
	return rep, nil
}

// String renders the table.
func (r *Table4Report) String() string {
	var b strings.Builder
	b.WriteString("Table 4 — memcached metrics\n")
	fmt.Fprintf(&b, "%-10s %16s %12s %20s\n", "", "Modified (locs)", "TCB (KiB)", "User code (IR ins)")
	fmt.Fprintf(&b, "%-10s %16d %12d %20s\n", "Scone", r.SconeModifiedLines, r.SconeTCBKiB,
		fmt.Sprintf("%d + libraries", r.TotalUserInstrs))
	fmt.Fprintf(&b, "%-10s %16d %12d %20d\n", "Privagic", r.PrivagicModifiedLines, r.PrivagicTCBKiB, r.PrivagicUserInstrs)
	fmt.Fprintf(&b, "TCB reduction: %.0fx (paper: ~200x); in-enclave user code reduction: %.0fx (paper: 63x vs memcached alone)\n",
		r.TCBReduction, r.UserCodeReduction)
	return b.String()
}
