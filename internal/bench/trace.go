// Package bench regenerates every table and figure of the paper's
// evaluation (§9): Table 4 (memcached TCB metrics), Figure 8 (memcached +
// YCSB vs dataset size), Figure 9 (data structures, one color), Figure 10
// (hashmap, two colors), the engineering-effort counts of §9.2.1/§9.3.1,
// and the Figure 3 motivation experiment.
//
// Methodology (see DESIGN.md §5): each configuration's per-request cycle
// cost is composed from (a) the real access trace of the real data
// structure, replayed through the set-associative LLC simulator, and (b)
// the calibrated SGX cost model — boundary crossings, the enclave-mode
// LLC-miss penalty of Eleos [30], EPC paging, and the TLB-flush cost of
// ordinary ECALLs. Absolute numbers are simulated; the claims checked in
// EXPERIMENTS.md are the paper's *ratios* and orderings.
package bench

import (
	"privagic/internal/cachesim"
	"privagic/internal/sgx"
)

// RequestTrace summarizes one request's memory behaviour.
type RequestTrace struct {
	Hits       int64
	SeqMisses  int64 // misses on a sequential (prefetchable) pattern
	RandMisses int64 // latency-bound misses
	Pages      int64 // distinct 4 KiB pages touched
	// ColdPages weighs Pages by the request's LLC-miss ratio (random
	// and streamed): hot pages are also TLB-resident, so deep
	// post-ECALL TLB walks only hit this cold fraction.
	ColdPages float64
	// ColdPagesRand weighs Pages by the random-miss ratio alone: EPC
	// eviction victims are the pages with no reuse, which streamed
	// value reads revisit too rarely to matter beyond their first
	// (random) touch.
	ColdPagesRand float64
	// MissRatio is the request's overall LLC miss ratio, the coldness
	// proxy that scales EPC-paging and deep-TLB-walk probabilities: a
	// skewed (zipfian) workload misses rarely and its cold pages are
	// still EPC/TLB-resident, a uniform workload is cold everywhere.
	MissRatio float64
}

// Add accumulates another trace.
func (t *RequestTrace) Add(o RequestTrace) {
	t.Hits += o.Hits
	t.SeqMisses += o.SeqMisses
	t.RandMisses += o.RandMisses
	t.Pages += o.Pages
	t.ColdPages += o.ColdPages
	t.ColdPagesRand += o.ColdPagesRand
	t.MissRatio += o.MissRatio
}

// Scale divides all counters by n requests, returning the average trace.
func (t RequestTrace) Scale(n int64) RequestTrace {
	if n == 0 {
		return t
	}
	return RequestTrace{
		Hits:          t.Hits / n,
		SeqMisses:     t.SeqMisses / n,
		RandMisses:    t.RandMisses / n,
		Pages:         t.Pages / n,
		ColdPages:     t.ColdPages / float64(n),
		ColdPagesRand: t.ColdPagesRand / float64(n),
		MissRatio:     t.MissRatio / float64(n),
	}
}

// Collector turns a data structure's address trace into per-request cache
// statistics. It implements datastructs.Tracer via Touch.
type Collector struct {
	cache     *cachesim.Cache
	lastStart uint64
	lastDelta int64

	cur   RequestTrace
	pages map[uint64]struct{}
}

// NewCollector builds a collector over an LLC with the machine's geometry,
// optionally scaled down by shrink (working-set self-similarity: simulating
// records/shrink records against LLC/shrink is the standard trick for
// datasets too large to instantiate).
func NewCollector(m *sgx.Machine, shrink int64) *Collector {
	if shrink < 1 {
		shrink = 1
	}
	// The benchmark process does not own the LLC: the YCSB driver, the
	// other worker threads and the OS pollute it, so the structure
	// under test effectively sees about half the capacity.
	size := m.LLCBytes / 2 / shrink
	if size < 64*int64(m.LLCWays) {
		size = 64 * int64(m.LLCWays)
	}
	return &Collector{
		cache: cachesim.New(size, m.LLCWays, m.LLCLineBytes),
		pages: map[uint64]struct{}{},
	}
}

// Touch records one access (the datastructs.Tracer contract).
func (c *Collector) Touch(addr uint64, size int64) {
	misses := int64(c.cache.Access(addr, size))
	lines := (int64(addr%64) + size + 63) / 64
	c.cur.Hits += lines - misses
	// Sequential when the access repeats the previous stride (within a
	// page): hardware stride prefetchers cover ascending and descending
	// constant strides, which is what makes the paper's linked-list
	// walk cheap even in enclave mode (Figure 9). Within one large
	// access (a 1024-byte value copy) only the first line can be a
	// latency-bound miss; the tail is inherently streamed.
	delta := int64(addr) - int64(c.lastStart)
	sequential := delta == c.lastDelta && delta > -4096 && delta < 4096
	switch {
	case sequential:
		c.cur.SeqMisses += misses
	case lines > 1 && misses > 0:
		c.cur.RandMisses++
		c.cur.SeqMisses += misses - 1
	default:
		c.cur.RandMisses += misses
	}
	c.lastDelta = delta
	c.lastStart = addr
	for p := addr >> 12; p <= (addr+uint64(size)-1)>>12; p++ {
		c.pages[p] = struct{}{}
	}
}

// EndRequest returns the finished request's trace and resets for the next.
func (c *Collector) EndRequest() RequestTrace {
	c.cur.Pages = int64(len(c.pages))
	total := c.cur.Hits + c.cur.RandMisses + c.cur.SeqMisses
	if total > 0 {
		miss := float64(c.cur.RandMisses+c.cur.SeqMisses) / float64(total)
		c.cur.ColdPages = float64(c.cur.Pages) * miss
		c.cur.ColdPagesRand = float64(c.cur.Pages) * float64(c.cur.RandMisses) / float64(total)
		c.cur.MissRatio = miss
	}
	out := c.cur
	c.cur = RequestTrace{}
	for p := range c.pages {
		delete(c.pages, p)
	}
	return out
}

// MissRatio exposes the underlying LLC miss ratio (the §9.2.3 metric:
// 6.5% -> 17.6% as the memcached dataset grows).
func (c *Collector) MissRatio() float64 { return c.cache.MissRatio() }

// ResetStats clears cache counters after warmup.
func (c *Collector) ResetStats() { c.cache.ResetStats() }
