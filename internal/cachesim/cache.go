// Package cachesim simulates a set-associative last-level cache with LRU
// replacement. It supplies the miss counts behind the paper's performance
// story: Figure 8's degradation as the memcached dataset outgrows the LLC,
// and Figure 9's treemap ≫ hashmap ≫ linked-list ordering, amplified in
// enclave mode by the 5.6–9.5x miss penalty of Eleos [30].
package cachesim

// Cache is a set-associative LLC model. It is not safe for concurrent use;
// each benchmark thread simulates its own requests (the paper's YCSB
// clients are closed-loop, so this matches per-request accounting).
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	// tags[set*ways+way]; age for LRU.
	tags  []uint64
	valid []bool
	age   []uint64
	clock uint64

	accesses uint64
	misses   uint64
}

// New builds a cache of the given total size, associativity, and line size
// (all in bytes; sizeBytes/ways/lineBytes must yield a power-of-two set
// count — standard geometries do).
func New(sizeBytes int64, ways, lineBytes int) *Cache {
	lines := int(sizeBytes) / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		age:       make([]uint64, sets*ways),
	}
}

// Access touches every line covered by [addr, addr+size) and returns the
// number of misses.
func (c *Cache) Access(addr uint64, size int64) int {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	misses := 0
	for line := first; line <= last; line++ {
		if !c.touch(line) {
			misses++
		}
	}
	return misses
}

// touch looks up one line, returning true on hit and installing on miss.
func (c *Cache) touch(line uint64) bool {
	c.clock++
	c.accesses++
	set := int(line) % c.sets
	base := set * c.ways
	// Hit?
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.age[base+w] = c.clock
			return true
		}
	}
	c.misses++
	// Install in the LRU way.
	victim := base
	for w := 1; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.age[base+w] < c.age[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.age[victim] = c.clock
	return false
}

// Stats returns total accesses and misses.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRatio returns misses/accesses (0 when idle).
func (c *Cache) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// ResetStats zeroes the counters but keeps the cache contents (for
// measuring steady state after warmup).
func (c *Cache) ResetStats() {
	c.accesses = 0
	c.misses = 0
}
