package cachesim

import "testing"

func TestHitAfterMiss(t *testing.T) {
	c := New(1<<20, 8, 64)
	if m := c.Access(0x1000, 8); m != 1 {
		t.Fatalf("first access misses = %d, want 1", m)
	}
	if m := c.Access(0x1000, 8); m != 0 {
		t.Fatalf("second access misses = %d, want 0", m)
	}
	// Same line, different offset.
	if m := c.Access(0x1020, 8); m != 0 {
		t.Fatalf("same-line access misses = %d, want 0", m)
	}
	// Next line.
	if m := c.Access(0x1040, 8); m != 1 {
		t.Fatalf("next-line access misses = %d, want 1", m)
	}
}

func TestSpanningAccess(t *testing.T) {
	c := New(1<<20, 8, 64)
	// 1024-byte value spans 16 lines (the paper's record size).
	if m := c.Access(0x10000, 1024); m != 16 {
		t.Fatalf("1024B access misses = %d, want 16", m)
	}
	if m := c.Access(0x10000, 1024); m != 0 {
		t.Fatalf("repeat misses = %d, want 0", m)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2-set cache: 4 lines of 64B = 256B total.
	c := New(256, 2, 64)
	// Three distinct lines mapping to the same set (stride = 128 = 2
	// sets * 64).
	c.Access(0, 1)   // set 0, miss
	c.Access(128, 1) // set 0, miss
	c.Access(0, 1)   // hit, refreshes line 0
	c.Access(256, 1) // set 0, miss, evicts line 128 (LRU)
	if m := c.Access(0, 1); m != 0 {
		t.Error("recently used line evicted")
	}
	if m := c.Access(128, 1); m != 1 {
		t.Error("LRU line not evicted")
	}
}

func TestWorkingSetBehaviour(t *testing.T) {
	// The Figure 8 mechanism: a working set within the LLC barely
	// misses; one 4x the LLC misses on most accesses.
	llc := int64(1 << 20)
	small := New(llc, 16, 64)
	big := New(llc, 16, 64)
	// Warm both.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < uint64(llc/2); a += 64 {
			small.Access(a, 8)
		}
		for a := uint64(0); a < uint64(llc*4); a += 64 {
			big.Access(a, 8)
		}
	}
	small.ResetStats()
	big.ResetStats()
	for a := uint64(0); a < uint64(llc/2); a += 64 {
		small.Access(a, 8)
	}
	for a := uint64(0); a < uint64(llc*4); a += 64 {
		big.Access(a, 8)
	}
	if r := small.MissRatio(); r > 0.01 {
		t.Errorf("in-LLC working set miss ratio = %.3f, want ~0", r)
	}
	if r := big.MissRatio(); r < 0.9 {
		t.Errorf("4x-LLC streaming miss ratio = %.3f, want ~1", r)
	}
}

func TestStats(t *testing.T) {
	c := New(1<<16, 4, 64)
	c.Access(0, 64)
	c.Access(0, 64)
	acc, miss := c.Stats()
	if acc != 2 || miss != 1 {
		t.Errorf("Stats = (%d,%d), want (2,1)", acc, miss)
	}
}
