package cluster

import (
	"time"

	"privagic/internal/obs"
)

// Anti-entropy readmission (DESIGN.md §16). A shard coming back — a
// respawn after a fence, a latency-health promotion, a hot-swapped
// incarnation adopted mid-flight — has a store that is cold or has
// missed writes. Under replication it must NOT re-enter the ring until
// its store provably holds everything the live members hold for every
// segment it is about to serve: admitted early, its trusted misses
// would contradict acknowledged writes. The prober therefore runs this
// sync loop first: compare per-segment digests against every live
// in-ring member, pull divergent segments key by key through the LWW
// register (original stamps preserved, so ordering survives), replay
// the shard's hinted-handoff queue, and only then — atomically with a
// final drained-queue check under the router mutex — enter the ring
// with full trust (ring.enter).

// syncPending states (shardState.syncPending, guarded by Router.mu).
const (
	syncNone    = iota
	syncReadmit // respawned after a fence: cold store
	syncPromote // latency-health recovery: store missed writes while demoted
	syncAdopt   // incarnation replaced without a fence: cold store
)

// maxSyncRounds bounds one antiEntropy call; if the ring keeps moving
// or hints keep racing in past this, the prober's next round resumes.
const maxSyncRounds = 16

// antiEntropy runs shard's sync-then-enter flow on the shard's prober
// goroutine (never under the router mutex during network I/O). On any
// member error it returns without entering; syncPending stays set, so
// the next prober round retries. Readmission ordering is the invariant:
// ring.enter happens only under the mutex, only after the segment scan
// matched the generation it planned against and the hint queue is
// empty.
func (r *Router) antiEntropy(shard int) {
	st := r.shards[shard]
	start := time.Now()
	r.mu.Lock()
	kind := st.syncPending
	r.mu.Unlock()
	if kind == syncNone {
		return
	}
	r.tracer.Record(obs.EvReplSyncStart, shard, 0, 0, 0, int64(kind))
	for round := 0; round < maxSyncRounds; round++ {
		r.mu.Lock()
		if st.fenced || st.syncPending == syncNone || r.ring.up[shard] {
			st.syncPending = syncNone
			r.mu.Unlock()
			return
		}
		if st.demoted {
			// Demoted mid-sync (the canary tripped the breaker): entering
			// now would put a degraded wire in the ring. Health promotion
			// re-arms the sync when the shard recovers.
			st.syncPending = syncNone
			r.mu.Unlock()
			return
		}
		gen := r.ring.gen
		plan := r.syncPlanLocked(shard)
		full := r.hints.needsFullSync(shard)
		ovf := r.hints.overflowEpoch(shard)
		pool := st.pool
		r.mu.Unlock()

		if !r.reconcileSegments(shard, pool, plan, full) {
			return // a member came apart mid-sync; retry next prober round
		}
		if !r.drainHints(shard, pool) {
			return
		}

		if hook := r.cfg.SyncHook; hook != nil && round == 0 {
			hook(shard)
		}
		r.mu.Lock()
		if st.fenced || st.demoted || st.syncPending == syncNone {
			st.syncPending = syncNone
			r.mu.Unlock()
			return
		}
		if r.ring.gen != gen {
			// Membership moved while syncing: the plan may be stale
			// (segments gained or lost) — replan and re-verify.
			r.syncRetries.Add(1)
			r.mu.Unlock()
			continue
		}
		if r.hints.overflowEpoch(shard) != ovf {
			// The hint queue overflowed during the unlocked sync window:
			// enqueue discarded the whole queue, so the pending==0 check
			// below would read a wiped queue as a clean drain and enter
			// the ring while the discarded writes are missing. The epoch
			// exposes the wipe; another round re-reads needsFullSync and
			// re-pulls every segment with the digest shortcut forbidden.
			r.syncRetries.Add(1)
			r.mu.Unlock()
			continue
		}
		if r.hints.pending(shard) > 0 {
			// Writes raced in after the drain; take another pass. The
			// queue-empty check and ring entry share the mutex with hint
			// enqueueing, so nothing can slip in between.
			r.mu.Unlock()
			continue
		}
		if full {
			r.hints.clearFullSync(shard)
			r.fullSyncs.Add(1)
		}
		kind = st.syncPending
		st.syncPending = syncNone
		newGen := r.ring.enter(shard)
		r.syncs.Add(1)
		if kind == syncPromote {
			r.promotions.Add(1)
			r.tracer.Record(obs.EvPromote, shard, 0, 0, st.epoch, int64(newGen))
		} else {
			r.readmits.Add(1)
			r.tracer.Record(obs.EvReadmit, shard, 0, 0, st.epoch, int64(newGen))
		}
		elapsed := time.Since(start).Microseconds()
		r.tracer.Record(obs.EvReplSyncDone, shard, 0, 0, newGen, elapsed)
		r.mu.Unlock()
		r.syncHist.Observe(elapsed)
		return
	}
}

// syncSource is one live member to reconcile a segment arc against.
// joined is the source's tenure floor for that segment: values below it
// are residue the source itself would refuse to serve, and the pull
// must refuse to copy them (see pullSegment).
type syncSource struct {
	arc    segRange
	pool   *connPool
	joined uint64
}

// syncPlanLocked lists, for every segment shard would serve, each live
// in-ring set member to compare against. Pulling from EVERY member —
// not just the primary — matters: after a reshuffle no single member is
// guaranteed to hold a segment's complete history, but under the
// MaxDown=1 budget their union is. Caller holds r.mu.
func (r *Router) syncPlanLocked(shard int) []syncSource {
	var out []syncSource
	for _, arc := range r.ring.wouldServe(shard) {
		seg := r.ring.segs[arc.seg]
		for k := 0; k < seg.n; k++ {
			if seg.shard[k] != shard {
				out = append(out, syncSource{
					arc:    arc,
					pool:   r.shards[seg.shard[k]].pool,
					joined: seg.joined[k],
				})
			}
		}
	}
	return out
}

// reconcileSegments reconciles the entering shard against each planned
// source: digests first (the cheap agreement check), a key-by-key pull
// through setx on mismatch. With full set the digest shortcut is
// forbidden — a hint-queue overflow means the queues no longer bound
// what the shard missed, so everything is pulled. Reports false on the
// first transport error.
func (r *Router) reconcileSegments(shard int, pool *connPool, plan []syncSource, full bool) bool {
	lastSeg := -1
	for _, src := range plan {
		if src.arc.seg != lastSeg {
			lastSeg = src.arc.seg
			r.syncSegments.Add(1)
		}
		if !full {
			dLocal, nLocal, ok := r.digestOn(pool, src.arc)
			if !ok {
				return false
			}
			dSrc, nSrc, ok := r.digestOn(src.pool, src.arc)
			if !ok {
				return false
			}
			if dLocal == dSrc && nLocal == nSrc {
				continue
			}
		}
		r.syncDivergent.Add(1)
		if !r.pullSegment(shard, pool, src) {
			return false
		}
	}
	return true
}

// digestOn runs one digest round trip on a pooled connection.
func (r *Router) digestOn(pool *connPool, arc segRange) (digest uint64, n int, ok bool) {
	c, err := pool.get()
	if err != nil {
		return 0, 0, false
	}
	d, cnt, err := c.Digest(arc.lo, arc.hi)
	if err != nil {
		pool.discard(c)
		return 0, 0, false
	}
	pool.put(c)
	return d, cnt, true
}

// pullSegment copies one source member's arc into the entering shard:
// list the keys, fetch each sealed value verbatim, store through setx.
// LWW makes the copy safe in any order and against any concurrent
// writer — a key the source holds stale simply loses the comparison.
//
// Values below the source's joined floor are skipped: the source itself
// would reject them as pre-tenure residue, and copying them into a
// shard that enters with full trust (joined=1) would launder exactly
// the staleness the trust floor exists to stop. When faults exceed the
// MaxDown=1 budget this filter turns what would be a stale hit into a
// miss — degraded, never wrong.
func (r *Router) pullSegment(shard int, pool *connPool, src syncSource) bool {
	sc, err := src.pool.get()
	if err != nil {
		return false
	}
	keys, err := sc.RangeKeys(src.arc.lo, src.arc.hi)
	if err != nil {
		src.pool.discard(sc)
		return false
	}
	dc, err := pool.get()
	if err != nil {
		src.pool.put(sc)
		return false
	}
	ok := true
	for _, ki := range keys {
		raw, flags, present, gerr := sc.GetFlags(ki.Key)
		if gerr != nil {
			ok = false
			break
		}
		if !present {
			continue // deleted under us; a tombstone pull or LWW covers it
		}
		if stampGen(flags) < src.joined {
			continue // pre-tenure residue: untrusted on the source itself
		}
		if _, okSeal := openValue(ki.Key, flags, raw); !okSeal {
			// The copy failed its integrity tag — damaged on this pull's
			// wire hop or at rest on the source. Either way it must not
			// be cloned into the entering shard: reads would only reject
			// it again, and replicating a corrupt copy can overwrite the
			// lineage read-repair needs. Skipped, not fatal: the entering
			// shard simply misses this key and read-repair refills it
			// from a member whose copy verifies.
			r.corruptRejects.Add(1)
			r.tracer.Record(obs.EvCorruptReject, shard, 0, 0, uint64(flags), int64(len(raw)))
			continue
		}
		// Forced store: a pull may legitimately carry a stamp below the
		// destination's tombstone floor (an old key never rewritten since
		// the last purge). The floor exists to refuse zombies — values no
		// live member holds — and this value was just read off a live
		// member, so the floor must not turn the copy into a permanent
		// trusted miss on the entering shard.
		if _, serr := dc.SetXForce(ki.Key, raw, flags); serr != nil {
			ok = false
			break
		}
		r.syncKeys.Add(1)
	}
	if ok {
		src.pool.put(sc)
		pool.put(dc)
	} else {
		src.pool.discard(sc)
		pool.discard(dc)
	}
	return ok
}

// drainHints replays the shard's queued hinted handoffs through setx.
// Hints are taken in batches under the mutex and re-queued on failure,
// so a drain interrupted by a transport error loses nothing. Reports
// false on error.
func (r *Router) drainHints(shard int, pool *connPool) bool {
	for {
		r.mu.Lock()
		batch := r.hints.take(shard, 64)
		r.mu.Unlock()
		if len(batch) == 0 {
			return true
		}
		start := time.Now()
		c, err := pool.get()
		if err != nil {
			r.requeueHints(shard, batch)
			return false
		}
		for i, hn := range batch {
			if _, serr := c.SetX(hn.key, hn.sealed, hn.flags); serr != nil {
				pool.discard(c)
				r.requeueHints(shard, batch[i:])
				return false
			}
			r.hintsDrained.Add(1)
		}
		pool.put(c)
		r.drainHist.Observe(time.Since(start).Microseconds())
		r.tracer.Record(obs.EvReplDrain, shard, 0, 0, 0, int64(len(batch)))
	}
}

// requeueHints puts an undelivered batch back (overflow rules apply:
// a full queue flips to forced-full-sync rather than dropping silently).
func (r *Router) requeueHints(shard int, batch []hint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, hn := range batch {
		if discarded, err := r.hints.enqueue(shard, hn); err != nil {
			r.hintOverflows.Add(1)
			r.hintsDiscarded.Add(int64(discarded))
			return
		}
	}
}
