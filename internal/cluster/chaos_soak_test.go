package cluster_test

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privagic/internal/cluster"
	"privagic/internal/faults"
	"privagic/internal/obs"
	"privagic/internal/retry"
	"privagic/internal/ycsb"
)

// The cluster soak is the acceptance test of the failover work: a YCSB
// workload runs against a 3-shard cluster while a chaos monkey kills,
// hangs and respawns shards mid-run, across hundreds of seeded schedules.
// With replication (R=2) the oracle is zero-loss, not just
// fresh-or-miss: under MaxDown=1 — enforced by the monkey's settle gate,
// which holds a victim's budget until the router readmits it — every Get
// of a key with an acknowledged write must return a value at least as
// new as the acked floor at read start. A miss on an acked key is a lost
// write; a stale hit is a silent wrong answer; either fails the suite. A
// schedule that exceeds its deadline is a deadlock and fails the suite.
// The relaxed control sweep runs pure overload (admission sheds, no
// faults) and must see zero failovers, zero read-repairs, and zero
// hinted handoffs: backpressure must never read as death, and the
// replication defenses must never fire without a fault to defend
// against.

const (
	soakShards   = 3
	soakClients  = 3
	soakRecords  = 60 // divisible by soakClients: the writer remap stays in range
	soakMinOps   = 40 // per client, before it may stop
	soakMaxOps   = 4000
	soakDeadline = 30 * time.Second // per schedule; hit = deadlock
)

// soakCount mirrors the faults package's tier-1 shrink: -short runs a
// tenth of the schedules (min 8) so the full sweeps stay nightly-only.
func soakCount(n int, short bool) int {
	if short {
		n /= 10
		if n < 8 {
			n = 8
		}
	}
	return n
}

func soakRouterConfig() cluster.RouterConfig {
	return cluster.RouterConfig{
		OpTimeout:     15 * time.Millisecond,
		ProbeInterval: time.Millisecond,
		// 8ms, not 5: the probe is a trivial version round trip, but on a
		// loaded single-core host the whole process can stall past 5ms,
		// and two such hiccups in a row would fence a healthy shard. 8ms
		// is unreachable for a live shard yet instant against a killed
		// one (connection refused) and still bounds hang detection at
		// ~2×(interval+timeout) ≈ 18ms.
		ProbeTimeout: 8 * time.Millisecond,
		ProbeFails:   2,
		// Latency-health headroom, same rationale as the gray soak: the
		// default SlowRTT (OpTimeout/2 = 7.5ms) is reachable by honest
		// queue-wait under pure overload on a loaded host, and three
		// strikes would demote a healthy-but-busy shard. 12ms is
		// unreachable for traffic that is merely queued, yet below the
		// 15ms timeout-penalty sample, so dead and truly slow links
		// still demote exactly as before.
		SlowRTT: 12 * time.Millisecond,
		Retry: retry.Policy{
			MaxAttempts: 6,
			Backoff:     200 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	}
}

// checker is the per-schedule oracle. Keys are partitioned by writer
// (client i owns keys with k%soakClients == i), so attempted sequence
// numbers are single-writer and strictly ordered; acked is the CAS-max of
// sequences whose Set was acknowledged. Values encode "key|seq".
type checker struct {
	attempted [soakRecords]atomic.Int64
	acked     [soakRecords]atomic.Int64

	// zeroLoss upgrades the read oracle from fresh-or-miss to zero-loss:
	// a miss on a key with an acked write becomes a violation. Valid only
	// when the schedule keeps the failure model inside what R replicas
	// tolerate (MaxDown/MaxDegraded ≤ R-1 with settle-gated budgets).
	zeroLoss bool

	// diag, when set, is called on a zero-loss miss violation and its
	// return appended to the violation message. A lost-write report
	// without the per-replica store state is undebuggable after the
	// fact on CI, so soaks wire this to dump each shard's copy of the
	// key and the router's counters at the moment of the miss.
	diag func(k int) string

	mu         sync.Mutex
	violations []string

	okOps  atomic.Int64
	errOps atomic.Int64
	misses atomic.Int64
	hits   atomic.Int64
}

func (c *checker) violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) < 10 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

func soakKey(k int) string { return fmt.Sprintf("k%04d", k) }

// write issues one checked Set of key k.
func (c *checker) write(rt *cluster.Router, k int) { _ = c.writeErr(rt, k) }

// writeErr is write returning the Set's error, so callers with an
// error-typing oracle (the gray soak) can classify it.
func (c *checker) writeErr(rt *cluster.Router, k int) error {
	seq := c.attempted[k].Add(1)
	err := rt.Set(soakKey(k), []byte(fmt.Sprintf("%d|%d", k, seq)))
	if err != nil {
		c.errOps.Add(1)
		return err
	}
	c.okOps.Add(1)
	for {
		cur := c.acked[k].Load()
		if seq <= cur || c.acked[k].CompareAndSwap(cur, seq) {
			return nil
		}
	}
}

// read issues one checked Get of key k and applies the fresh-or-miss
// oracle.
func (c *checker) read(rt *cluster.Router, k int) { _ = c.readErr(rt, k) }

// readErr is read returning the Get's error for error-typing oracles.
func (c *checker) readErr(rt *cluster.Router, k int) error {
	floor := c.acked[k].Load()
	v, ok, err := rt.Get(soakKey(k))
	if err != nil {
		c.errOps.Add(1)
		return err
	}
	c.okOps.Add(1)
	if !ok {
		if c.zeroLoss && floor > 0 {
			// Zero-loss: the write at seq=floor was acknowledged, and the
			// schedule never exceeded the failure budget — some replica
			// must still hold it. A miss means it was lost.
			extra := ""
			if c.diag != nil {
				extra = c.diag(k)
			}
			c.violate("key %d: lost acked write: miss with acked floor %d%s", k, floor, extra)
			return nil
		}
		c.misses.Add(1) // below the acked floor a cache may always miss
		return nil
	}
	c.hits.Add(1)
	kk, seq, perr := parseSoakValue(v)
	if perr != nil {
		c.violate("key %d: unparseable value %q", k, v)
		return nil
	}
	if kk != k {
		c.violate("key %d: served key %d's value %q (cross-key corruption)", k, kk, v)
		return nil
	}
	if seq > c.attempted[k].Load() {
		c.violate("key %d: served seq %d, never attempted", k, seq)
		return nil
	}
	if seq < floor {
		c.violate("key %d: served stale seq %d, acked floor was %d at read start", k, seq, floor)
	}
	return nil
}

func parseSoakValue(v []byte) (key int, seq int64, err error) {
	a, b, found := strings.Cut(string(v), "|")
	if !found {
		return 0, 0, fmt.Errorf("no separator")
	}
	key, err = strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	seq, err = strconv.ParseInt(b, 10, 64)
	return key, seq, err
}

// scheduleResult is everything a schedule reports back for assertion on
// the test goroutine.
type scheduleResult struct {
	violations []string
	okOps      int64
	errOps     int64
	hits       int64
	router     map[string]int64
	chaos      map[string]int64
}

// runClusterSchedule executes one seeded schedule: boot a cluster and
// router, run soakClients YCSB substreams against it, and (with chaosOn)
// unleash the shard monkey mid-run. reg/tracer accumulate across
// schedules.
func runClusterSchedule(seed int64, chaosOn bool, reg *obs.Registry, tracer *obs.Tracer) (*scheduleResult, error) {
	cfg := cluster.Config{Shards: soakShards}
	if !chaosOn {
		// The relaxed sweep is pure overload: every fifth command finds
		// the backend saturated and is shed with SERVER_ERROR busy. The
		// shed rate is high enough that a fence-on-busy bug cannot hide.
		cfg.MaxInflight = 1
		cfg.Saturated = func(int) func() bool {
			var n atomic.Int64
			return func() bool { return n.Add(1)%5 == 0 }
		}
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	rt, err := cluster.NewRouter(cl, soakRouterConfig())
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rt.Instrument(reg, tracer)

	var monkey *faults.Chaos
	if chaosOn {
		monkey = faults.NewChaos(cl, faults.ChaosConfig{
			Seed:         seed,
			Actions:      2,
			MinDelay:     time.Millisecond,
			MaxDelay:     4 * time.Millisecond,
			HangFraction: 0.3,
			HangFor:      25 * time.Millisecond,
			RespawnAfter: 8 * time.Millisecond,
			// The zero-loss failure model: at most R-1=1 shard outside
			// the ring at any instant. The settle gate keeps a respawned
			// victim's budget held until the router has actually
			// readmitted it (anti-entropy complete), so a second fault
			// can never overlap the sync window.
			MaxDown:    1,
			SettleFunc: rt.InRing,
		})
	}

	base, err := ycsb.New(ycsb.Config{
		Records:      soakRecords,
		Mix:          ycsb.WorkloadA,
		Distribution: ycsb.Zipfian,
		Seed:         uint64(seed),
	})
	if err != nil {
		return nil, err
	}
	streams := base.Split(soakClients)

	// Zero-loss holds in both modes: with chaos on, MaxDown=1 keeps the
	// faults inside what R=2 tolerates; without it nothing ever dies, so
	// no acked write may go missing either way.
	chk := &checker{zeroLoss: true}
	chk.diag = func(k int) string {
		var sb strings.Builder
		key := soakKey(k)
		for s := 0; s < soakShards; s++ {
			v, fl, okv := cl.Store(s).Get(key)
			fmt.Fprintf(&sb, " | shard%d inring=%v hit=%v flags=%x gen=%d len=%d",
				s, rt.InRing(s), okv, fl, (fl>>16)&0x7fff, len(v))
		}
		c := rt.Counters()
		fmt.Fprintf(&sb, " | ringgen=%d up=%d stale=%d corrupt=%d repairs=%d",
			c["ring_generation"], c["shards_up"], c["stale_rejects"], c["corrupt_rejects"], c["repl.read_repairs"])
		return sb.String()
	}
	settled := &atomic.Bool{} // chaos injected and cluster whole again
	if monkey == nil {
		settled.Store(true)
	}

	var wg sync.WaitGroup
	for i := 0; i < soakClients; i++ {
		wg.Add(1)
		go func(id int, gen *ycsb.Generator) {
			defer wg.Done()
			for ops := 0; ops < soakMaxOps; ops++ {
				if ops >= soakMinOps && settled.Load() {
					return
				}
				op := gen.Next()
				k := int(op.Key % soakRecords)
				if op.Kind == ycsb.OpRead {
					chk.read(rt, k)
				} else {
					// Remap onto this client's write partition: single
					// writer per key keeps the oracle's sequences ordered.
					chk.write(rt, (k/soakClients)*soakClients+id)
				}
			}
		}(i, streams[i])
	}
	if monkey != nil {
		monkey.Start()
		monkey.Wait()
		settled.Store(true)
	}
	wg.Wait()

	res := &scheduleResult{
		violations: chk.violations,
		okOps:      chk.okOps.Load(),
		errOps:     chk.errOps.Load(),
		hits:       chk.hits.Load(),
		router:     rt.Counters(),
	}
	if monkey != nil {
		res.chaos = monkey.Counters()
	}
	return res, nil
}

// runSweep drives n schedules under the per-schedule deadlock watchdog
// and returns aggregate tallies.
func runSweep(t *testing.T, n int, chaosOn bool, reg *obs.Registry, tracer *obs.Tracer) (agg struct {
	okOps, errOps, hits, failovers, readmits, stale, retries, kills, hangs int64
	demotions, repairs, hints, fallbacks, drained                          int64
}) {
	t.Helper()
	for seed := int64(1); seed <= int64(n); seed++ {
		var res *scheduleResult
		var err error
		done := make(chan struct{})
		go func() {
			defer close(done)
			res, err = runClusterSchedule(seed, chaosOn, reg, tracer)
		}()
		select {
		case <-done:
		case <-time.After(soakDeadline):
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("seed %d: deadlock: schedule exceeded %v\n%s", seed, soakDeadline, buf[:m])
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.violations {
			t.Errorf("seed %d: wrong answer: %s", seed, v)
		}
		if res.okOps == 0 {
			t.Errorf("seed %d: no operation ever succeeded", seed)
		}
		if chaosOn && res.chaos["kills"] >= 1 && res.router["failovers"] < 1 {
			t.Errorf("seed %d: %d kills but no failover (counters %v)", seed, res.chaos["kills"], res.router)
		}
		if t.Failed() {
			t.FailNow() // one schedule's diagnosis is enough; stop the sweep
		}
		agg.okOps += res.okOps
		agg.errOps += res.errOps
		agg.hits += res.hits
		agg.failovers += res.router["failovers"]
		agg.readmits += res.router["readmits"]
		agg.stale += res.router["stale_rejects"]
		agg.retries += res.router["retries"]
		agg.demotions += res.router["demotions"]
		agg.repairs += res.router["repl.read_repairs"]
		agg.hints += res.router["repl.hints_queued"]
		agg.fallbacks += res.router["repl.fallback_reads"]
		agg.drained += res.router["repl.hints_drained"]
		agg.kills += res.chaos["kills"]
		agg.hangs += res.chaos["hangs"]
	}
	return agg
}

// TestClusterChaosSoak: kill-a-shard schedules under the zero-loss
// oracle. Zero lost acked writes, zero stale reads, zero deadlocks,
// failovers actually exercised and detected within budget, and the
// replication defenses (hinted handoff, drain) visibly doing the work
// that makes zero-loss true.
func TestClusterChaosSoak(t *testing.T) {
	n := soakCount(faults.Schedules().ClusterChaos, testing.Short())
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	agg := runSweep(t, n, true, reg, tracer)

	if agg.kills == 0 {
		t.Error("chaos sweep never killed a shard; the soak tested nothing")
	}
	if agg.failovers == 0 {
		t.Error("no failover across the whole sweep")
	}
	if agg.readmits == 0 {
		t.Error("no respawned shard was ever readmitted")
	}
	if agg.hints == 0 {
		t.Error("no write ever queued a hinted handoff; the down-replica path went untested")
	}
	if agg.drained == 0 {
		t.Error("no hinted handoff was ever drained into a readmitted shard")
	}
	if agg.fallbacks == 0 {
		t.Error("no read ever fell back to a non-primary replica")
	}
	// Detection budget: time from first failed probe to fence. With a 1ms
	// probe interval, 5ms probe timeout and 2-strike fencing the expected
	// detection is single-digit milliseconds; 250ms catches a stalled
	// prober with a wide margin for loaded CI.
	if count, _, max := reg.Histogram("cluster.failover_detect_us").Stats(); count > 0 && max > 250_000 {
		t.Errorf("slowest failover detection took %dus, over the 250ms budget", max)
	}
	// Reconciliation: the trace event stream agrees with the counters.
	if ev := tracer.Counts()["failover"]; ev != agg.failovers {
		t.Errorf("tracer saw %d failover events, counters saw %d", ev, agg.failovers)
	}
	t.Logf("%d schedules: ops ok=%d err=%d hits=%d | kills=%d hangs=%d failovers=%d readmits=%d stale_rejects=%d retries=%d | hints=%d drained=%d fallbacks=%d repairs=%d",
		n, agg.okOps, agg.errOps, agg.hits, agg.kills, agg.hangs, agg.failovers, agg.readmits, agg.stale, agg.retries,
		agg.hints, agg.drained, agg.fallbacks, agg.repairs)
}

// TestClusterRelaxedSoak is the control: pure admission-control overload,
// no faults. Busy must surface as retries and sheds — never as a
// failover, a readmission, a demotion, a stale rejection, a read-repair,
// or a hinted handoff. With the ring never flipping there is no
// membership change for a value to be stale against and no divergence
// for the replication defenses to heal, so any of them firing means
// overload was misread as failure.
func TestClusterRelaxedSoak(t *testing.T) {
	n := soakCount(faults.Schedules().ClusterRelaxed, testing.Short())
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	agg := runSweep(t, n, false, reg, tracer)

	if agg.failovers != 0 {
		t.Errorf("%d spurious failovers under pure overload", agg.failovers)
	}
	if agg.readmits != 0 {
		t.Errorf("%d spurious readmits under pure overload", agg.readmits)
	}
	if agg.demotions != 0 {
		t.Errorf("%d spurious demotions under pure overload", agg.demotions)
	}
	if agg.stale != 0 {
		t.Errorf("%d stale rejections with no membership change to be stale against", agg.stale)
	}
	if agg.repairs != 0 {
		t.Errorf("%d spurious read-repairs under pure overload", agg.repairs)
	}
	if agg.hints != 0 {
		t.Errorf("%d spurious hinted handoffs under pure overload", agg.hints)
	}
	if agg.hits == 0 {
		t.Error("the control sweep never hit; the workload tested nothing")
	}
	if agg.retries == 0 {
		t.Error("the control sweep never shed an operation; the overload tested nothing")
	}
	t.Logf("%d schedules: ops ok=%d err=%d hits=%d retries=%d stale=%d repairs=%d hints=%d",
		n, agg.okOps, agg.errOps, agg.hits, agg.retries, agg.stale, agg.repairs, agg.hints)
}
