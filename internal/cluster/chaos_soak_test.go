package cluster_test

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privagic/internal/cluster"
	"privagic/internal/faults"
	"privagic/internal/obs"
	"privagic/internal/retry"
	"privagic/internal/ycsb"
)

// The cluster soak is the acceptance test of the failover work: a YCSB
// workload runs against a 3-shard cluster while a chaos monkey kills,
// hangs and respawns shards mid-run, across hundreds of seeded schedules.
// The oracle is fresh-or-miss: every Get must return either a value at
// least as new as what was acked when the Get started, or a miss — a
// stale hit is a silent wrong answer and fails the suite. A schedule that
// exceeds its deadline is a deadlock and fails the suite. The relaxed
// control sweep runs pure overload (admission sheds, no faults) and must
// see zero failovers: backpressure must never read as death.

const (
	soakShards   = 3
	soakClients  = 3
	soakRecords  = 60 // divisible by soakClients: the writer remap stays in range
	soakMinOps   = 40 // per client, before it may stop
	soakMaxOps   = 4000
	soakDeadline = 30 * time.Second // per schedule; hit = deadlock
)

// soakCount mirrors the faults package's tier-1 shrink: -short runs a
// tenth of the schedules (min 8) so the full sweeps stay nightly-only.
func soakCount(n int, short bool) int {
	if short {
		n /= 10
		if n < 8 {
			n = 8
		}
	}
	return n
}

func soakRouterConfig() cluster.RouterConfig {
	return cluster.RouterConfig{
		OpTimeout:     15 * time.Millisecond,
		ProbeInterval: time.Millisecond,
		// 8ms, not 5: the probe is a trivial version round trip, but on a
		// loaded single-core host the whole process can stall past 5ms,
		// and two such hiccups in a row would fence a healthy shard. 8ms
		// is unreachable for a live shard yet instant against a killed
		// one (connection refused) and still bounds hang detection at
		// ~2×(interval+timeout) ≈ 18ms.
		ProbeTimeout: 8 * time.Millisecond,
		ProbeFails:   2,
		// Latency-health headroom, same rationale as the gray soak: the
		// default SlowRTT (OpTimeout/2 = 7.5ms) is reachable by honest
		// queue-wait under pure overload on a loaded host, and three
		// strikes would demote a healthy-but-busy shard. 12ms is
		// unreachable for traffic that is merely queued, yet below the
		// 15ms timeout-penalty sample, so dead and truly slow links
		// still demote exactly as before.
		SlowRTT: 12 * time.Millisecond,
		Retry: retry.Policy{
			MaxAttempts: 6,
			Backoff:     200 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	}
}

// checker is the per-schedule oracle. Keys are partitioned by writer
// (client i owns keys with k%soakClients == i), so attempted sequence
// numbers are single-writer and strictly ordered; acked is the CAS-max of
// sequences whose Set was acknowledged. Values encode "key|seq".
type checker struct {
	attempted [soakRecords]atomic.Int64
	acked     [soakRecords]atomic.Int64

	mu         sync.Mutex
	violations []string

	okOps  atomic.Int64
	errOps atomic.Int64
	misses atomic.Int64
	hits   atomic.Int64
}

func (c *checker) violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) < 10 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

func soakKey(k int) string { return fmt.Sprintf("k%04d", k) }

// write issues one checked Set of key k.
func (c *checker) write(rt *cluster.Router, k int) { _ = c.writeErr(rt, k) }

// writeErr is write returning the Set's error, so callers with an
// error-typing oracle (the gray soak) can classify it.
func (c *checker) writeErr(rt *cluster.Router, k int) error {
	seq := c.attempted[k].Add(1)
	err := rt.Set(soakKey(k), []byte(fmt.Sprintf("%d|%d", k, seq)))
	if err != nil {
		c.errOps.Add(1)
		return err
	}
	c.okOps.Add(1)
	for {
		cur := c.acked[k].Load()
		if seq <= cur || c.acked[k].CompareAndSwap(cur, seq) {
			return nil
		}
	}
}

// read issues one checked Get of key k and applies the fresh-or-miss
// oracle.
func (c *checker) read(rt *cluster.Router, k int) { _ = c.readErr(rt, k) }

// readErr is read returning the Get's error for error-typing oracles.
func (c *checker) readErr(rt *cluster.Router, k int) error {
	floor := c.acked[k].Load()
	v, ok, err := rt.Get(soakKey(k))
	if err != nil {
		c.errOps.Add(1)
		return err
	}
	c.okOps.Add(1)
	if !ok {
		c.misses.Add(1) // a cache may always miss
		return nil
	}
	c.hits.Add(1)
	kk, seq, perr := parseSoakValue(v)
	if perr != nil {
		c.violate("key %d: unparseable value %q", k, v)
		return nil
	}
	if kk != k {
		c.violate("key %d: served key %d's value %q (cross-key corruption)", k, kk, v)
		return nil
	}
	if seq > c.attempted[k].Load() {
		c.violate("key %d: served seq %d, never attempted", k, seq)
		return nil
	}
	if seq < floor {
		c.violate("key %d: served stale seq %d, acked floor was %d at read start", k, seq, floor)
	}
	return nil
}

func parseSoakValue(v []byte) (key int, seq int64, err error) {
	a, b, found := strings.Cut(string(v), "|")
	if !found {
		return 0, 0, fmt.Errorf("no separator")
	}
	key, err = strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	seq, err = strconv.ParseInt(b, 10, 64)
	return key, seq, err
}

// scheduleResult is everything a schedule reports back for assertion on
// the test goroutine.
type scheduleResult struct {
	violations []string
	okOps      int64
	errOps     int64
	hits       int64
	router     map[string]int64
	chaos      map[string]int64
}

// runClusterSchedule executes one seeded schedule: boot a cluster and
// router, run soakClients YCSB substreams against it, and (with chaosOn)
// unleash the shard monkey mid-run. reg/tracer accumulate across
// schedules.
func runClusterSchedule(seed int64, chaosOn bool, reg *obs.Registry, tracer *obs.Tracer) (*scheduleResult, error) {
	cfg := cluster.Config{Shards: soakShards}
	if !chaosOn {
		// The relaxed sweep is pure overload: every fifth command finds
		// the backend saturated and is shed with SERVER_ERROR busy. The
		// shed rate is high enough that a fence-on-busy bug cannot hide.
		cfg.MaxInflight = 1
		cfg.Saturated = func(int) func() bool {
			var n atomic.Int64
			return func() bool { return n.Add(1)%5 == 0 }
		}
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	rt, err := cluster.NewRouter(cl, soakRouterConfig())
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rt.Instrument(reg, tracer)

	var monkey *faults.Chaos
	if chaosOn {
		monkey = faults.NewChaos(cl, faults.ChaosConfig{
			Seed:         seed,
			Actions:      2,
			MinDelay:     time.Millisecond,
			MaxDelay:     4 * time.Millisecond,
			HangFraction: 0.3,
			HangFor:      25 * time.Millisecond,
			RespawnAfter: 8 * time.Millisecond,
		})
	}

	base, err := ycsb.New(ycsb.Config{
		Records:      soakRecords,
		Mix:          ycsb.WorkloadA,
		Distribution: ycsb.Zipfian,
		Seed:         uint64(seed),
	})
	if err != nil {
		return nil, err
	}
	streams := base.Split(soakClients)

	chk := &checker{}
	settled := &atomic.Bool{} // chaos injected and cluster whole again
	if monkey == nil {
		settled.Store(true)
	}

	var wg sync.WaitGroup
	for i := 0; i < soakClients; i++ {
		wg.Add(1)
		go func(id int, gen *ycsb.Generator) {
			defer wg.Done()
			for ops := 0; ops < soakMaxOps; ops++ {
				if ops >= soakMinOps && settled.Load() {
					return
				}
				op := gen.Next()
				k := int(op.Key % soakRecords)
				if op.Kind == ycsb.OpRead {
					chk.read(rt, k)
				} else {
					// Remap onto this client's write partition: single
					// writer per key keeps the oracle's sequences ordered.
					chk.write(rt, (k/soakClients)*soakClients+id)
				}
			}
		}(i, streams[i])
	}
	if monkey != nil {
		monkey.Start()
		monkey.Wait()
		settled.Store(true)
	}
	wg.Wait()

	res := &scheduleResult{
		violations: chk.violations,
		okOps:      chk.okOps.Load(),
		errOps:     chk.errOps.Load(),
		hits:       chk.hits.Load(),
		router:     rt.Counters(),
	}
	if monkey != nil {
		res.chaos = monkey.Counters()
	}
	return res, nil
}

// runSweep drives n schedules under the per-schedule deadlock watchdog
// and returns aggregate tallies.
func runSweep(t *testing.T, n int, chaosOn bool, reg *obs.Registry, tracer *obs.Tracer) (agg struct {
	okOps, errOps, hits, failovers, readmits, stale, retries, kills, hangs int64
	demotions, fences                                                      int64
}) {
	t.Helper()
	for seed := int64(1); seed <= int64(n); seed++ {
		var res *scheduleResult
		var err error
		done := make(chan struct{})
		go func() {
			defer close(done)
			res, err = runClusterSchedule(seed, chaosOn, reg, tracer)
		}()
		select {
		case <-done:
		case <-time.After(soakDeadline):
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("seed %d: deadlock: schedule exceeded %v\n%s", seed, soakDeadline, buf[:m])
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.violations {
			t.Errorf("seed %d: wrong answer: %s", seed, v)
		}
		if res.okOps == 0 {
			t.Errorf("seed %d: no operation ever succeeded", seed)
		}
		if chaosOn && res.chaos["kills"] >= 1 && res.router["failovers"] < 1 {
			t.Errorf("seed %d: %d kills but no failover (counters %v)", seed, res.chaos["kills"], res.router)
		}
		if t.Failed() {
			t.FailNow() // one schedule's diagnosis is enough; stop the sweep
		}
		agg.okOps += res.okOps
		agg.errOps += res.errOps
		agg.hits += res.hits
		agg.failovers += res.router["failovers"]
		agg.readmits += res.router["readmits"]
		agg.stale += res.router["stale_rejects"]
		agg.retries += res.router["retries"]
		agg.demotions += res.router["demotions"]
		agg.fences += res.router["write_fences"]
		agg.kills += res.chaos["kills"]
		agg.hangs += res.chaos["hangs"]
	}
	return agg
}

// TestClusterChaosSoak: kill-a-shard schedules. Zero wrong answers, zero
// deadlocks, failovers actually exercised and detected within budget.
func TestClusterChaosSoak(t *testing.T) {
	n := soakCount(faults.Schedules().ClusterChaos, testing.Short())
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	agg := runSweep(t, n, true, reg, tracer)

	if agg.kills == 0 {
		t.Error("chaos sweep never killed a shard; the soak tested nothing")
	}
	if agg.failovers == 0 {
		t.Error("no failover across the whole sweep")
	}
	if agg.readmits == 0 {
		t.Error("no respawned shard was ever readmitted")
	}
	// Detection budget: time from first failed probe to fence. With a 1ms
	// probe interval, 5ms probe timeout and 2-strike fencing the expected
	// detection is single-digit milliseconds; 250ms catches a stalled
	// prober with a wide margin for loaded CI.
	if count, _, max := reg.Histogram("cluster.failover_detect_us").Stats(); count > 0 && max > 250_000 {
		t.Errorf("slowest failover detection took %dus, over the 250ms budget", max)
	}
	// Reconciliation: the trace event stream agrees with the counters.
	if ev := tracer.Counts()["failover"]; ev != agg.failovers {
		t.Errorf("tracer saw %d failover events, counters saw %d", ev, agg.failovers)
	}
	t.Logf("%d schedules: ops ok=%d err=%d hits=%d | kills=%d hangs=%d failovers=%d readmits=%d stale_rejects=%d retries=%d",
		n, agg.okOps, agg.errOps, agg.hits, agg.kills, agg.hangs, agg.failovers, agg.readmits, agg.stale, agg.retries)
}

// TestClusterRelaxedSoak is the control: pure admission-control overload,
// no faults. Busy must surface as retries and sheds — never as a
// failover, a readmission, a demotion, or a stale rejection (with one
// principled exception: stale rejects explained by zombie-write fences,
// which fire when a Set genuinely times out and are correctness, not
// misdiagnosis).
func TestClusterRelaxedSoak(t *testing.T) {
	n := soakCount(faults.Schedules().ClusterRelaxed, testing.Short())
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	agg := runSweep(t, n, false, reg, tracer)

	if agg.failovers != 0 {
		t.Errorf("%d spurious failovers under pure overload", agg.failovers)
	}
	if agg.readmits != 0 {
		t.Errorf("%d spurious readmits under pure overload", agg.readmits)
	}
	if agg.demotions != 0 {
		t.Errorf("%d spurious demotions under pure overload", agg.demotions)
	}
	// Stale rejects are spurious only when nothing fenced: a Set that
	// times out under extreme queue wait is abandoned on a poisoned
	// connection, and the zombie-write fence (DESIGN.md §15) bumps its
	// segment's generation by design — the value it may still land is
	// then correctly rejected as stale. That is the fence doing its job,
	// not overload reading as death.
	if agg.stale != 0 && agg.fences == 0 {
		t.Errorf("%d stale rejections without any failover or write fence", agg.stale)
	}
	if agg.hits == 0 {
		t.Error("the control sweep never hit; the workload tested nothing")
	}
	if agg.retries == 0 {
		t.Error("the control sweep never shed an operation; the overload tested nothing")
	}
	t.Logf("%d schedules: ops ok=%d err=%d hits=%d retries=%d fences=%d stale=%d",
		n, agg.okOps, agg.errOps, agg.hits, agg.retries, agg.fences, agg.stale)
}
