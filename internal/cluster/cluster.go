// Package cluster is the partitioned, multi-instance memcached of
// ROADMAP item 2: N independent shard instances — each with its own
// store, worker pool and PR-2 admission control — behind a
// consistent-hashing client router with health probes, per-operation
// deadlines, bounded retry-with-backoff (the shared internal/retry
// policy), and shard failover. A shard can be killed, hung or respawned
// mid-run; the router fences the dead incarnation's epoch, re-routes its
// key ranges to survivors, and readmits only a respawned replacement —
// with ownership-generation stamping guaranteeing that no client ever
// reads a survivor's stale copy as a live value (DESIGN.md §14).
//
// The split into router + shards mirrors the decompose-into-components
// design space of Atamli-Reineh & Martin (PAPERS.md): each shard is one
// failure domain, the router is the untrusted interconnect, and the
// headline property is that a domain can die without a silent wrong
// answer escaping.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/memcached"
	"privagic/internal/obs"
)

// Config sizes a cluster. The zero value of every field gets a sane
// default except Shards, which is required.
type Config struct {
	// Shards is the number of independent memcached instances.
	Shards int
	// Workers is each shard's connection-serving pool (default 8). One
	// worker serves one connection at a time, so it bounds per-shard
	// concurrency the same way the paper's worker threads do.
	Workers int
	// StoreBuckets is each shard's hash-table bucket count (default 4096).
	StoreBuckets int
	// StoreBytes bounds each shard's LRU (0 = unbounded).
	StoreBytes int64
	// MaxInflight is each shard's admission cap (PR-2 backpressure):
	// commands beyond it shed with SERVER_ERROR busy. 0 disables.
	MaxInflight int32
	// Saturated, when set, is each shard's backend-pressure probe (wired
	// into memcached.Admission; e.g. a privagic Instance's Saturated).
	Saturated func(shard int) func() bool
}

// shardSlot is one shard's lifecycle cell.
type shardSlot struct {
	mu      sync.Mutex
	store   *memcached.Store
	srv     *memcached.Server
	addr    string
	epoch   uint64
	running bool
}

// Cluster manages N shard instances and implements the router's
// Directory (control plane) and the chaos monkey's kill/hang/respawn
// surface (data-plane faults).
type Cluster struct {
	cfg    Config
	shards []*shardSlot

	kills    atomic.Int64
	hangs    atomic.Int64
	respawns atomic.Int64

	counterList []obs.NamedCounter

	tracer *obs.Tracer

	closed atomic.Bool
}

// New starts a cluster of cfg.Shards live shard instances.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: need at least one shard")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.StoreBuckets <= 0 {
		cfg.StoreBuckets = 1 << 12
	}
	c := &Cluster{cfg: cfg, shards: make([]*shardSlot, cfg.Shards)}
	c.counterList = []obs.NamedCounter{
		{Name: "kills", Load: c.kills.Load},
		{Name: "hangs", Load: c.hangs.Load},
		{Name: "respawns", Load: c.respawns.Load},
	}
	for i := range c.shards {
		c.shards[i] = &shardSlot{}
		if err := c.start(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// start boots shard i's backend: a cold store, a fresh server on a fresh
// port, and the next epoch. Caller holds no locks.
func (c *Cluster) start(i int) error {
	sl := c.shards[i]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	store := memcached.NewStore(c.cfg.StoreBuckets, c.cfg.StoreBytes)
	srv, err := memcached.NewServer("127.0.0.1:0", store, c.cfg.Workers)
	if err != nil {
		return fmt.Errorf("cluster: shard %d: %w", i, err)
	}
	if c.cfg.MaxInflight > 0 || c.cfg.Saturated != nil {
		adm := memcached.Admission{MaxInflight: c.cfg.MaxInflight}
		if c.cfg.Saturated != nil {
			adm.Saturated = c.cfg.Saturated(i)
		}
		srv.SetAdmission(adm)
	}
	sl.store, sl.srv, sl.addr = store, srv, srv.Addr()
	sl.epoch++
	sl.running = true
	return nil
}

// Close kills every shard.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for i := range c.shards {
		_ = c.Kill(i)
	}
}

// Instrument arms shard-lifecycle trace events (shard.kill,
// shard.respawn) on tracer. Router instrumentation is separate — a
// router is a client and may outlive or be outnumbered by clusters.
func (c *Cluster) Instrument(tracer *obs.Tracer) { c.tracer = tracer }

// NumShards reports the shard count (fixed for the cluster's lifetime).
func (c *Cluster) NumShards() int { return len(c.shards) }

// Addr is the Directory control plane: shard i's current address and
// epoch, with running=false while it is dead.
func (c *Cluster) Addr(i int) (addr string, epoch uint64, running bool) {
	sl := c.shards[i]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.addr, sl.epoch, sl.running
}

// Epoch returns shard i's incarnation number.
func (c *Cluster) Epoch(i int) uint64 {
	sl := c.shards[i]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.epoch
}

// Running reports whether shard i currently serves.
func (c *Cluster) Running(i int) bool {
	sl := c.shards[i]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.running
}

// Store exposes shard i's store for tests and benchmarks (nil while the
// shard is dead).
func (c *Cluster) Store(i int) *memcached.Store {
	sl := c.shards[i]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if !sl.running {
		return nil
	}
	return sl.store
}

// Kill crashes shard i: every live connection is severed mid-operation
// and the listener closes. The store is discarded — a dead cache shard
// loses its contents, which is exactly why readmission must be cold.
func (c *Cluster) Kill(i int) error {
	sl := c.shards[i]
	sl.mu.Lock()
	if !sl.running {
		sl.mu.Unlock()
		return fmt.Errorf("cluster: shard %d already dead", i)
	}
	srv, epoch := sl.srv, sl.epoch
	sl.running = false
	sl.srv, sl.store = nil, nil
	sl.mu.Unlock()
	srv.Kill()
	c.kills.Add(1)
	c.tracer.Record(obs.EvShardKill, i, 0, 0, epoch, 0)
	return nil
}

// Hang stalls shard i for d: connections stay open and commands are
// read, but nothing is answered until d passes — the wedged-not-dead
// failure mode. The router's deadlines and probes must convert it into a
// fence; the shard itself recovers on its own, but once fenced only a
// respawn (fresh epoch, cold store) is readmitted.
func (c *Cluster) Hang(i int, d time.Duration) error {
	sl := c.shards[i]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if !sl.running {
		return fmt.Errorf("cluster: shard %d is dead", i)
	}
	sl.srv.Pause(d)
	c.hangs.Add(1)
	return nil
}

// Respawn replaces shard i with a fresh incarnation: cold store, new
// listener, epoch+1. A still-running shard is killed first, so Respawn
// is also the recovery path for a fenced-but-alive (hung) shard.
func (c *Cluster) Respawn(i int) error {
	if c.closed.Load() {
		return fmt.Errorf("cluster: closed")
	}
	sl := c.shards[i]
	sl.mu.Lock()
	running := sl.running
	sl.mu.Unlock()
	if running {
		_ = c.Kill(i)
	}
	if err := c.start(i); err != nil {
		return err
	}
	c.respawns.Add(1)
	c.tracer.Record(obs.EvShardRespawn, i, 0, 0, c.Epoch(i), 0)
	return nil
}

// RespawnAfter schedules a respawn of shard i once delay passes, but
// only if the shard is still at epoch (a newer incarnation means someone
// else already recovered it). This is the supervision hook the router's
// OnFence callback wires to — the recovery layer's bounded-restart idea
// applied to whole shards.
func (c *Cluster) RespawnAfter(i int, epoch uint64, delay time.Duration) {
	time.AfterFunc(delay, func() {
		if c.closed.Load() || c.Epoch(i) != epoch {
			return
		}
		_ = c.Respawn(i)
	})
}

// ShedOps sums SERVER_ERROR busy refusals across live shards.
func (c *Cluster) ShedOps() int64 {
	var total int64
	for _, sl := range c.shards {
		sl.mu.Lock()
		if sl.running {
			total += sl.srv.ShedOps()
		}
		sl.mu.Unlock()
	}
	return total
}

// Counters is the chaos-visible lifecycle tally (CounterSource shape;
// obs.SnapshotCounters over the static list built in New).
func (c *Cluster) Counters() map[string]int64 {
	return obs.SnapshotCounters(c.counterList)
}
