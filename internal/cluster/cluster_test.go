package cluster

import (
	"fmt"
	"testing"
	"time"
)

// fastProbes is the aggressive probe config the lifecycle tests use so a
// failover lands in single-digit milliseconds.
func fastProbes() RouterConfig {
	return RouterConfig{
		OpTimeout:     25 * time.Millisecond,
		ProbeInterval: time.Millisecond,
		ProbeTimeout:  5 * time.Millisecond,
		ProbeFails:    2,
	}
}

func newTestCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func newTestRouter(t *testing.T, dir Directory, cfg RouterConfig) *Router {
	t.Helper()
	r, err := NewRouter(dir, cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

// waitFor polls cond up to d.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterBasicOps: set/get/delete round-trip through the router across
// several shards.
func TestRouterBasicOps(t *testing.T) {
	c := newTestCluster(t, 3)
	r := newTestRouter(t, c, fastProbes())
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i))
		if err := r.Set(k, v); err != nil {
			t.Fatalf("Set %s: %v", k, err)
		}
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key%d", i)
		v, ok, err := r.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Get %s = %q ok=%v err=%v", k, v, ok, err)
		}
	}
	if found, err := r.Delete("key0"); err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	if _, ok, err := r.Get("key0"); err != nil || ok {
		t.Fatalf("Get after delete: ok=%v err=%v", ok, err)
	}
	// Confirm the data actually spread: at least two shards hold items.
	populated := 0
	for i := 0; i < c.NumShards(); i++ {
		if c.Store(i).Len() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d shards hold data; router is not sharding", populated)
	}
}

// TestRouterFailover: killing a shard fences it within the probe budget
// and every key remains servable via the survivors.
func TestRouterFailover(t *testing.T) {
	c := newTestCluster(t, 3)
	r := newTestRouter(t, c, fastProbes())
	for i := 0; i < 100; i++ {
		if err := r.Set(fmt.Sprintf("key%d", i), []byte("v")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := c.Kill(1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, time.Second, "fence of shard 1", func() bool {
		return r.Counters()["failovers"] >= 1
	})
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key%d", i)
		if _, _, err := r.Get(k); err != nil {
			t.Fatalf("Get %s after failover: %v", k, err)
		}
		if r.Owner(k) == 1 {
			t.Fatalf("key %s still routed to the fenced shard", k)
		}
	}
	if up := r.Counters()["shards_up"]; up != 2 {
		t.Fatalf("shards_up = %d after one kill of three, want 2", up)
	}
}

// TestRouterReadmitAfterRespawn: a respawned shard (fresh epoch) rejoins
// the ring and serves again.
func TestRouterReadmitAfterRespawn(t *testing.T) {
	c := newTestCluster(t, 2)
	r := newTestRouter(t, c, fastProbes())
	if err := c.Kill(0); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, time.Second, "fence", func() bool { return r.Counters()["failovers"] >= 1 })
	if err := c.Respawn(0); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	waitFor(t, time.Second, "readmit", func() bool { return r.Counters()["readmits"] >= 1 })
	if up := r.Counters()["shards_up"]; up != 2 {
		t.Fatalf("shards_up = %d after readmit, want 2", up)
	}
	if err := r.Set("k", []byte("v")); err != nil {
		t.Fatalf("Set after readmit: %v", err)
	}
}

// TestRouterHungShardFencedNotReadmitted: a hang trips the fence, and the
// same incarnation waking up again is NOT readmitted (its store predates
// the fence); only a respawn is.
func TestRouterHungShardFencedNotReadmitted(t *testing.T) {
	c := newTestCluster(t, 2)
	r := newTestRouter(t, c, fastProbes())
	if err := c.Hang(0, 100*time.Millisecond); err != nil {
		t.Fatalf("Hang: %v", err)
	}
	waitFor(t, time.Second, "fence of the hung shard", func() bool {
		return r.Counters()["failovers"] >= 1
	})
	// Let the hang pass and give the prober ample time to see the shard
	// answering again at the same epoch.
	time.Sleep(150 * time.Millisecond)
	cs := r.Counters()
	if cs["readmits"] != 0 {
		t.Fatalf("hung shard was readmitted at its old epoch (readmits=%d)", cs["readmits"])
	}
	if cs["shards_up"] != 1 {
		t.Fatalf("shards_up = %d, want the hung shard still fenced", cs["shards_up"])
	}
	if err := c.Respawn(0); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	waitFor(t, time.Second, "readmit of the respawned shard", func() bool {
		return r.Counters()["readmits"] >= 1
	})
}

// TestRouterStaleReject is the headline safety property of the
// unreplicated router: after kill -> survivor writes -> respawn/failback
// -> re-kill, the survivor's old copy must surface as a miss, never as
// the value. Pinned to R=1 — with replication the same window is closed
// by write-through instead (see the replication tests), and on a 2-shard
// ring both shards would be in every replica set, so the kill/failback
// choreography below would not exercise the fence at all.
func TestRouterStaleReject(t *testing.T) {
	c := newTestCluster(t, 2)
	cfg := fastProbes()
	cfg.Replication = 1
	r := newTestRouter(t, c, cfg)

	// A key owned by shard 0 under the full ring.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("stale%d", i)
		if r.Owner(k) == 0 {
			key = k
			break
		}
	}
	if err := r.Set(key, []byte("old")); err != nil {
		t.Fatalf("Set old: %v", err)
	}

	// Kill 0: the key fails over to shard 1; write the window value there.
	if err := c.Kill(0); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, time.Second, "fence", func() bool { return r.Owner(key) == 1 })
	if err := r.Set(key, []byte("window")); err != nil {
		t.Fatalf("Set window: %v", err)
	}

	// Respawn 0: the key fails back (cold store: a miss is fine).
	if err := c.Respawn(0); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	waitFor(t, time.Second, "failback", func() bool { return r.Owner(key) == 0 })
	if v, ok, err := r.Get(key); err != nil {
		t.Fatalf("Get after failback: %v", err)
	} else if ok {
		t.Fatalf("respawned shard served %q from a cold store", v)
	}

	// Kill 0 again: shard 1 still holds "window" from the first failover,
	// but its tenure is new — the old copy must be rejected as stale.
	if err := c.Kill(0); err != nil {
		t.Fatalf("Kill again: %v", err)
	}
	waitFor(t, time.Second, "second fence", func() bool { return r.Owner(key) == 1 })
	v, ok, err := r.Get(key)
	if err != nil {
		t.Fatalf("Get after re-kill: %v", err)
	}
	if ok {
		t.Fatalf("survivor served stale %q across tenures", v)
	}
	if n := r.Counters()["stale_rejects"]; n < 1 {
		t.Fatalf("stale_rejects = %d, want >= 1", n)
	}
}

// TestRouterBusyRetriesNotFailover: admission-control sheds are transient
// — the router retries them and never fences a merely-busy shard.
func TestRouterBusyRetriesNotFailover(t *testing.T) {
	c, err := New(Config{Shards: 1, MaxInflight: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	r := newTestRouter(t, c, fastProbes())
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var firstErr error
			for i := 0; i < 50; i++ {
				if err := r.Set(fmt.Sprintf("g%dk%d", g, i), []byte("v")); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			done <- firstErr
		}(g)
	}
	busyFinal := 0
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			// The retry budget can be exhausted under contention; that
			// surfaces as an explicit busy error, which is the documented
			// degraded mode — but never as a failover.
			busyFinal++
		}
	}
	cs := r.Counters()
	if cs["failovers"] != 0 {
		t.Fatalf("a busy shard was fenced (failovers=%d)", cs["failovers"])
	}
	if cs["routes"] == 0 {
		t.Fatal("no operation ever succeeded under contention")
	}
	t.Logf("routes=%d retries=%d sheds=%d clients-saw-busy=%d", cs["routes"], cs["retries"], cs["sheds"], busyFinal)
}

// TestClusterEpochsAdvance: each respawn is a fresh incarnation.
func TestClusterEpochsAdvance(t *testing.T) {
	c := newTestCluster(t, 1)
	e1 := c.Epoch(0)
	if err := c.Respawn(0); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	if e2 := c.Epoch(0); e2 <= e1 {
		t.Fatalf("epoch did not advance: %d -> %d", e1, e2)
	}
	if !c.Running(0) {
		t.Fatal("respawned shard not running")
	}
}
