package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"privagic/internal/netfaults"
)

// proxyDirectory interposes one fault-injecting netfaults.Link per shard
// between the router and the cluster: the router dials the stable proxy
// addresses while epoch and liveness still come from the real directory.
// Each link resolves its backing shard per connection, so respawns (new
// port, same proxy) are transparent.
type proxyDirectory struct {
	c     *Cluster
	links []*netfaults.Link
	group *netfaults.Group
}

func newProxyDirectory(t testing.TB, c *Cluster, seed int64) *proxyDirectory {
	t.Helper()
	n := c.NumShards()
	pd := &proxyDirectory{c: c, links: make([]*netfaults.Link, n)}
	for i := 0; i < n; i++ {
		i := i
		l, err := netfaults.NewLink(netfaults.Config{
			Target: func() (string, bool) {
				addr, _, running := c.Addr(i)
				return addr, running
			},
			Seed: seed + int64(i),
		})
		if err != nil {
			t.Fatalf("netfaults.NewLink: %v", err)
		}
		pd.links[i] = l
	}
	pd.group = netfaults.NewGroup(pd.links...)
	t.Cleanup(pd.group.Close)
	return pd
}

func (pd *proxyDirectory) NumShards() int { return pd.c.NumShards() }

func (pd *proxyDirectory) Addr(i int) (string, uint64, bool) {
	_, epoch, running := pd.c.Addr(i)
	return pd.links[i].Addr(), epoch, running
}

// grayRouterConfig: fast probes plus tight latency-health thresholds so
// the unit tests resolve demote/promote decisions in tens of
// milliseconds.
func grayRouterConfig() RouterConfig {
	cfg := fastProbes()
	cfg.SlowRTT = 4 * time.Millisecond
	cfg.FastRTT = 1 * time.Millisecond
	return cfg
}

// TestRouterDemotesSlowShard: a shard whose data path turns slow — while
// its version probes stay instant — is demoted out of the ring within a
// few probe rounds, and traffic for its keys moves to the survivors.
func TestRouterDemotesSlowShard(t *testing.T) {
	c := newTestCluster(t, 3)
	pd := newProxyDirectory(t, c, 1)
	r := newTestRouter(t, pd, grayRouterConfig())

	if err := r.Set("k", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	victim := r.Owner("k")
	// Slow only the data class: probes must keep succeeding so fencing
	// stays out of the picture — this is the pure gray failure.
	pd.links[victim].SetFaults(netfaults.Data, netfaults.Faults{Latency: 10 * time.Millisecond})

	waitFor(t, 2*time.Second, "slow shard demoted", func() bool {
		return r.Counters()["demotions"] >= 1 && r.Owner("k") != victim
	})
	if got := r.Counters()["failovers"]; got != 0 {
		t.Fatalf("slow shard was fenced (failovers=%d), want demotion only", got)
	}

	// Keys now route to a survivor and still answer (fresh-or-miss).
	if err := r.Set("k", []byte("v2")); err != nil {
		t.Fatalf("Set after demotion: %v", err)
	}
	v, ok, err := r.Get("k")
	if err != nil || !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("Get after demotion = %q,%v,%v", v, ok, err)
	}
}

// TestRouterPromotesRecoveredShard: healing the slow link promotes the
// demoted shard back into the ring without an epoch bump.
func TestRouterPromotesRecoveredShard(t *testing.T) {
	c := newTestCluster(t, 2)
	pd := newProxyDirectory(t, c, 2)
	r := newTestRouter(t, pd, grayRouterConfig())

	pd.links[0].SetFaults(netfaults.Data, netfaults.Faults{Latency: 10 * time.Millisecond})
	waitFor(t, 2*time.Second, "shard 0 demoted", func() bool {
		return r.Counters()["demotions"] >= 1
	})
	pd.links[0].Heal()
	waitFor(t, 2*time.Second, "shard 0 promoted", func() bool {
		m := r.Counters()
		return m["promotions"] >= 1 && m["shards_up"] == 2
	})
	if got := r.Counters()["readmits"]; got != 0 {
		t.Fatalf("promotion consumed a readmit (%d): promotion must not need an epoch bump", got)
	}
}

// TestRouterBreakerTripsOnDataBlackhole: an asymmetric partition —
// answers blackholed on the data path, probe path untouched — trips the
// shard's breaker and demotes it, even though fencing never fires.
func TestRouterBreakerTripsOnDataBlackhole(t *testing.T) {
	c := newTestCluster(t, 2)
	pd := newProxyDirectory(t, c, 3)
	cfg := grayRouterConfig()
	cfg.Breaker.Failures = 3
	r := newTestRouter(t, pd, cfg)

	pd.links[0].SetFaults(netfaults.Data, netfaults.Faults{DropS2C: true})
	waitFor(t, 5*time.Second, "breaker tripped and shard demoted", func() bool {
		m := r.Counters()
		return m["breaker_trips"] >= 1 && m["demotions"] >= 1
	})
	if got := r.Counters()["failovers"]; got != 0 {
		t.Fatalf("asymmetric partition fenced the shard (failovers=%d)", got)
	}
	// Operations still work against the survivor.
	if err := r.Set("x", []byte("y")); err != nil {
		t.Fatalf("Set during partition: %v", err)
	}
}

// TestRouterCorruptValueServedAsMiss: a value damaged at rest (or, in
// production, on the wire past the protocol framing) fails the integrity
// tag and is served as a miss, never as the damaged bytes.
func TestRouterCorruptValueServedAsMiss(t *testing.T) {
	c := newTestCluster(t, 1)
	r := newTestRouter(t, c, fastProbes())

	if err := r.Set("k", []byte("payload")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	// Damage the sealed value directly in the shard's store, keeping its
	// stamp so the reject is the integrity check, not the staleness fence.
	stored, flags, ok := c.Store(0).Get("k")
	if !ok {
		t.Fatal("stored value missing")
	}
	bad := append([]byte(nil), stored...)
	bad[len(bad)-1] ^= 0xFF
	c.Store(0).Set("k", bad, flags)

	v, ok, err := r.Get("k")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ok {
		t.Fatalf("corrupt value served as a hit: %q", v)
	}
	if got := r.Counters()["corrupt_rejects"]; got < 1 {
		t.Fatalf("corrupt_rejects = %d, want >= 1", got)
	}
	// The reject never deletes: the stored copy may be the genuine newest
	// value with only its transit bytes flipped, and erasing it would let
	// an older zombie write win the LWW register. It stays, is re-rejected
	// on every read, and only a write (or repair) overwrites it.
	if _, _, ok := c.Store(0).Get("k"); !ok {
		t.Fatal("corrupt value was deleted; rejects must leave the LWW register intact")
	}
	if _, ok, _ := r.Get("k"); ok {
		t.Fatal("corrupt value served on second read")
	}
	// A fresh write mints a higher stamp and reclaims the key.
	if err := r.Set("k", []byte("anew")); err != nil {
		t.Fatalf("Set after reject: %v", err)
	}
	v, ok, err = r.Get("k")
	if err != nil || !ok || string(v) != "anew" {
		t.Fatalf("Get after rewrite = %q, %v, %v; want fresh hit", v, ok, err)
	}
}

// TestRouterHedgedGetWins: with the primary's response path stalled well
// past the hedge delay, the hedge (on a fresh connection, which the
// fault schedule lets through faster) must win and the Get still answer
// fresh-or-miss within the attempt budget.
func TestRouterHedgedGetWins(t *testing.T) {
	c := newTestCluster(t, 1)
	r := newTestRouter(t, c, RouterConfig{
		OpTimeout:     200 * time.Millisecond,
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		HedgeDelay:    5 * time.Millisecond,
	})
	if err := r.Set("k", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	// Seed the pool with a connection, then hang the shard briefly: the
	// pooled (primary) connection stalls, the hedge dials fresh — both
	// stall actually, so this exercises the first-wins plumbing rather
	// than a guaranteed winner; the assertion is on hedges firing and the
	// answer staying correct.
	if err := c.Hang(0, 30*time.Millisecond); err != nil {
		t.Fatalf("Hang: %v", err)
	}
	var sawHedge bool
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		v, ok, err := r.Get("k")
		if err == nil && ok && !bytes.Equal(v, []byte("v")) {
			t.Fatalf("hedged Get returned wrong value %q", v)
		}
		if r.Counters()["hedges"] >= 1 {
			sawHedge = true
			break
		}
	}
	if !sawHedge {
		t.Fatal("no hedge fired against a hung shard")
	}
}

// TestRouterBreakerFastFailLastShard: with every shard's breaker open
// (single shard, data blackhole) the router fails fast with the typed
// ErrBreakerOpen instead of burning full timeouts per attempt.
func TestRouterBreakerFastFailLastShard(t *testing.T) {
	c := newTestCluster(t, 1)
	pd := newProxyDirectory(t, c, 4)
	cfg := grayRouterConfig()
	cfg.Breaker.Failures = 2
	cfg.Breaker.Cooldown = time.Second
	r := newTestRouter(t, pd, cfg)

	pd.links[0].SetFaults(netfaults.Data, netfaults.Faults{DropS2C: true})
	waitFor(t, 5*time.Second, "breaker tripped", func() bool {
		return r.Counters()["breaker_trips"] >= 1
	})
	var lastErr error
	fastFailed := func() bool {
		_, _, err := r.Get("k")
		lastErr = err
		return errors.Is(err, ErrBreakerOpen)
	}
	waitFor(t, 5*time.Second, "typed breaker fast-fail", fastFailed)
	if !errors.Is(lastErr, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", lastErr)
	}
	if r.Counters()["breaker_fastfails"] < 1 {
		t.Fatal("no breaker fast-fails counted")
	}
}

// TestRouterPoolNeverReusesPoisonedConn: operations that time out leave
// their response in flight; the router must discard those connections,
// never pool them. If one leaked back, the post-heal Gets below would
// read a queued stale response — surfacing as ErrProtocol (key echo) or,
// worse, a wrong answer. Correct values for every key afterwards prove
// the discard discipline held.
func TestRouterPoolNeverReusesPoisonedConn(t *testing.T) {
	c := newTestCluster(t, 1)
	pd := newProxyDirectory(t, c, 6)
	cfg := fastProbes()
	cfg.OpTimeout = 20 * time.Millisecond
	cfg.Breaker.Failures = 1 << 30 // keep the breaker out of this test
	r := newTestRouter(t, pd, cfg)

	const keys = 10
	for i := 0; i < keys; i++ {
		if err := r.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	// Stretch the data path past OpTimeout: every Get times out while its
	// response is still queued behind the proxy's delay.
	pd.links[0].SetFaults(netfaults.Data, netfaults.Faults{Latency: 60 * time.Millisecond})
	for i := 0; i < 5; i++ {
		if _, _, err := r.Get(fmt.Sprintf("k%d", i)); err == nil {
			t.Fatal("Get succeeded through a 60ms link under a 20ms deadline")
		}
	}
	pd.links[0].Heal()
	time.Sleep(100 * time.Millisecond) // let any in-flight stale responses land

	for i := 0; i < keys; i++ {
		k, want := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		var v []byte
		var ok bool
		waitFor(t, 5*time.Second, "post-heal get "+k, func() bool {
			var err error
			v, ok, err = r.Get(k)
			return err == nil
		})
		if !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q,%v after heal, want %q (poisoned conn reused?)", k, v, ok, want)
		}
	}
	if got := r.Counters()["corrupt_rejects"]; got != 0 {
		t.Fatalf("corrupt_rejects = %d after clean heal, want 0", got)
	}
}

// TestRouterNoSpuriousGrayTripsOnHealthyNetwork: the relaxed control in
// miniature — steady traffic through clean proxies must never trip a
// breaker, demote a shard, or reject a value.
func TestRouterNoSpuriousGrayTripsOnHealthyNetwork(t *testing.T) {
	c := newTestCluster(t, 3)
	pd := newProxyDirectory(t, c, 5)
	r := newTestRouter(t, pd, grayRouterConfig())

	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i%50)
		if err := r.Set(k, []byte("v")); err != nil {
			t.Fatalf("Set: %v", err)
		}
		if _, _, err := r.Get(k); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	m := r.Counters()
	for _, k := range []string{"breaker_trips", "demotions", "corrupt_rejects", "stale_rejects", "route_errors"} {
		if m[k] != 0 {
			t.Fatalf("%s = %d on a healthy network, want 0 (counters: %v)", k, m[k], m)
		}
	}
}
