package cluster_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privagic/internal/cluster"
	"privagic/internal/faults"
	"privagic/internal/memcached"
	"privagic/internal/netfaults"
	"privagic/internal/obs"
	"privagic/internal/retry"
	"privagic/internal/ycsb"
)

// The gray-failure soak is the acceptance test of the gray-hardening
// work: the same single-writer sequence oracle as the chaos soak, but
// the adversary never kills a process — it degrades wires. Every shard
// stays alive behind a fault-injecting proxy while seeded schedules mix
// latency spikes, bandwidth throttles, asymmetric partitions (probe path
// up / data path down and vice versa), mid-message resets and byte
// corruption. Under replication (R=2, one degraded link at a time) the
// oracle is zero-loss, every schedule:
//
//  1. zero loss — every acknowledged write stays readable and fresh: a
//     corrupted or delayed wire may cost latency or a typed error, never
//     a wrong answer and never a miss on an acked key;
//  2. zero deadlocks — every schedule finishes inside its deadline;
//  3. zero untyped failures — every error reaching the application is
//     one of the typed vocabulary (busy, timeout, protocol violation,
//     breaker open, CAS conflict, no shards, transport), never an
//     anonymous surprise.
//
// The control sweep runs identical traffic through clean proxies and
// must see zero breaker trips and zero demotions: gray defenses must not
// misfire on a healthy network.

// grayLinks builds one fault-injecting proxy per shard and a Directory
// routing the router through them; epoch and liveness still come from
// the real cluster, so fencing and respawn work unchanged.
type grayLinks struct {
	cl    *cluster.Cluster
	links []*netfaults.Link
}

func newGrayLinks(cl *cluster.Cluster, seed int64) (*grayLinks, error) {
	g := &grayLinks{cl: cl, links: make([]*netfaults.Link, cl.NumShards())}
	for i := range g.links {
		i := i
		l, err := netfaults.NewLink(netfaults.Config{
			Target: func() (string, bool) {
				addr, _, running := cl.Addr(i)
				return addr, running
			},
			Seed: seed*31 + int64(i),
		})
		if err != nil {
			g.close()
			return nil, err
		}
		g.links[i] = l
	}
	return g, nil
}

func (g *grayLinks) close() {
	for _, l := range g.links {
		if l != nil {
			l.Close()
		}
	}
}

func (g *grayLinks) NumShards() int { return g.cl.NumShards() }

func (g *grayLinks) Addr(i int) (string, uint64, bool) {
	_, epoch, running := g.cl.Addr(i)
	return g.links[i].Addr(), epoch, running
}

// typedErr reports whether err belongs to the typed failure vocabulary.
// Anything else is an untyped failure and fails the soak.
func typedErr(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, memcached.ErrBusy),
		errors.Is(err, memcached.ErrProtocol),
		errors.Is(err, memcached.ErrCasConflict),
		errors.Is(err, cluster.ErrNoShards),
		errors.Is(err, cluster.ErrBreakerOpen),
		memcached.IsTimeout(err),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF):
		return true
	}
	var ne net.Error // transport errors: refused, reset, severed proxy
	return errors.As(err, &ne)
}

// runGraySchedule executes one seeded gray schedule: a cluster behind
// fault-injecting proxies, soakClients YCSB substreams, and (with
// grayOn) the gray monkey degrading links mid-run.
func runGraySchedule(seed int64, grayOn bool, reg *obs.Registry, tracer *obs.Tracer) (*scheduleResult, int64, error) {
	retry.SeedJitter(seed) // deterministic backoff jitter per schedule
	cl, err := cluster.New(cluster.Config{Shards: soakShards})
	if err != nil {
		return nil, 0, err
	}
	defer cl.Close()
	gl, err := newGrayLinks(cl, seed)
	if err != nil {
		return nil, 0, err
	}
	defer gl.close()

	rcfg := soakRouterConfig()
	// A probe-path partition fences its shard (indistinguishable from a
	// hang); the supervision hook must resurrect it, exactly as in
	// production.
	rcfg.OnFence = func(shard int, epoch uint64) {
		cl.RespawnAfter(shard, epoch, 8*time.Millisecond)
	}
	// 5 consecutive failures trip: at the soak's 1ms probe interval the
	// canary alone clears that well inside a fault's dwell, so blackholed
	// data paths reliably exercise the breaker across the sweep.
	rcfg.Breaker = retry.BreakerConfig{Failures: 5}
	// Latency-health headroom: the default SlowRTT (OpTimeout/2 = 7.5ms)
	// sits close enough to what a race-detector build on a loaded
	// single-core host sustains on a clean network that the control sweep
	// can strike out spuriously. 12ms is unreachable for healthy traffic
	// even under the detector, yet still below the 15ms timeout-penalty
	// sample, so blackholed and 20ms-spiked links demote exactly as
	// before.
	rcfg.SlowRTT = 12 * time.Millisecond
	rt, err := cluster.NewRouter(gl, rcfg)
	if err != nil {
		return nil, 0, err
	}
	rtClosed := false
	defer func() {
		if !rtClosed {
			rt.Close()
		}
	}()
	rt.Instrument(reg, tracer)

	var monkey *faults.GrayChaos
	if grayOn {
		monkey = faults.NewGrayChaos(gl.links, faults.GrayChaosConfig{
			Seed:      seed,
			Actions:   3,
			MinDelay:  time.Millisecond,
			MaxDelay:  4 * time.Millisecond,
			HealAfter: 50 * time.Millisecond, // dwell ≫ strike budget: demotions must fire
			Latency:   20 * time.Millisecond, // > OpTimeout: spikes must hurt
			Jitter:    10 * time.Millisecond,
			// Zero-loss discipline: the oracle below assumes at most R-1=1
			// replica is unavailable at a time, so the monkey degrades one
			// link at a time and holds the next fault until every shard is
			// back in the ring — a probe-path partition fences its shard,
			// and a second fault during its readmission sync would exceed
			// the single-failure budget.
			MaxDegraded: 1,
			SettleFunc: func() bool {
				for s := 0; s < soakShards; s++ {
					if !rt.InRing(s) {
						return false
					}
				}
				return true
			},
		})
	}

	base, err := ycsb.New(ycsb.Config{
		Records:      soakRecords,
		Mix:          ycsb.WorkloadA,
		Distribution: ycsb.Zipfian,
		Seed:         uint64(seed),
	})
	if err != nil {
		return nil, 0, err
	}
	streams := base.Split(soakClients)

	chk := &checker{zeroLoss: true}
	// On a lost-write violation, capture every replica's copy of the key
	// and the router counters — the only evidence that distinguishes "a
	// member served a miss it should not have trusted" from "no member
	// holds the value at all".
	chk.diag = func(k int) string {
		var sb strings.Builder
		key := soakKey(k)
		for s := 0; s < soakShards; s++ {
			v, fl, okv := cl.Store(s).Get(key)
			fmt.Fprintf(&sb, " | shard%d inring=%v hit=%v flags=%x gen=%d len=%d", s, rt.InRing(s), okv, fl, (fl>>16)&0x7fff, len(v))
		}
		c := rt.Counters()
		fmt.Fprintf(&sb, " | ringgen=%d up=%d stale=%d corrupt=%d repairs=%d", c["ring_generation"], c["shards_up"], c["stale_rejects"], c["corrupt_rejects"], c["repl.read_repairs"])
		return sb.String()
	}
	var untyped atomic.Int64
	settled := &atomic.Bool{}
	if monkey == nil {
		settled.Store(true)
	}

	var wg sync.WaitGroup
	for i := 0; i < soakClients; i++ {
		wg.Add(1)
		go func(id int, gen *ycsb.Generator) {
			defer wg.Done()
			for ops := 0; ops < soakMaxOps; ops++ {
				if ops >= soakMinOps && settled.Load() {
					return
				}
				op := gen.Next()
				k := int(op.Key % soakRecords)
				var err error
				if op.Kind == ycsb.OpRead {
					err = chk.readErr(rt, k)
				} else {
					err = chk.writeErr(rt, (k/soakClients)*soakClients+id)
				}
				if err != nil && !typedErr(err) {
					if untyped.Add(1) == 1 {
						chk.violate("untyped failure: %v", err)
					}
				}
			}
		}(i, streams[i])
	}
	if monkey != nil {
		monkey.Start()
		monkey.Wait()
		settled.Store(true)
	}
	wg.Wait()

	// Stop the probers before snapshotting: a late canary round could
	// otherwise record a demote/promote trace event after the counter
	// read, and the sweep reconciles the two exactly.
	rt.Close()
	rtClosed = true

	res := &scheduleResult{
		violations: chk.violations,
		okOps:      chk.okOps.Load(),
		errOps:     chk.errOps.Load(),
		hits:       chk.hits.Load(),
		router:     rt.Counters(),
	}
	if monkey != nil {
		res.chaos = monkey.Counters()
	}
	return res, untyped.Load(), nil
}

// grayAgg is the sweep-wide tally for the gray assertions.
type grayAgg struct {
	okOps, errOps, hits, untyped             int64
	demotions, promotions, trips, fastfails  int64
	hedges, hedgeWins, corrupt, stale        int64
	failovers, readmits                      int64
	repairs, hints, drained, fallbacks       int64
	spikes, throttles, partitions, resetsArm int64
	corruptArm, heals                        int64
}

// runGraySweep drives n gray schedules under the deadlock watchdog.
func runGraySweep(t *testing.T, n int, grayOn bool, reg *obs.Registry, tracer *obs.Tracer) (agg grayAgg) {
	t.Helper()
	for seed := int64(1); seed <= int64(n); seed++ {
		var res *scheduleResult
		var untyped int64
		var err error
		done := make(chan struct{})
		go func() {
			defer close(done)
			res, untyped, err = runGraySchedule(seed, grayOn, reg, tracer)
		}()
		select {
		case <-done:
		case <-time.After(soakDeadline):
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("seed %d: deadlock: schedule exceeded %v\n%s", seed, soakDeadline, buf[:m])
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		if untyped > 0 {
			t.Errorf("seed %d: %d untyped failures", seed, untyped)
		}
		if res.okOps == 0 {
			t.Errorf("seed %d: no operation ever succeeded", seed)
		}
		if t.Failed() {
			t.FailNow()
		}
		agg.okOps += res.okOps
		agg.errOps += res.errOps
		agg.hits += res.hits
		agg.untyped += untyped
		agg.demotions += res.router["demotions"]
		agg.promotions += res.router["promotions"]
		agg.trips += res.router["breaker_trips"]
		agg.fastfails += res.router["breaker_fastfails"]
		agg.hedges += res.router["hedges"]
		agg.hedgeWins += res.router["hedge_wins"]
		agg.corrupt += res.router["corrupt_rejects"]
		agg.stale += res.router["stale_rejects"]
		agg.failovers += res.router["failovers"]
		agg.readmits += res.router["readmits"]
		agg.repairs += res.router["repl.read_repairs"]
		agg.hints += res.router["repl.hints_queued"]
		agg.drained += res.router["repl.hints_drained"]
		agg.fallbacks += res.router["repl.fallback_reads"]
		agg.spikes += res.chaos["latency_spikes"]
		agg.throttles += res.chaos["throttles"]
		agg.partitions += res.chaos["partitions"]
		agg.resetsArm += res.chaos["resets_armed"]
		agg.corruptArm += res.chaos["corruptions_armed"]
		agg.heals += res.chaos["heals"]
	}
	return agg
}

// TestClusterGrayFailSoak: gray-degradation schedules. Zero wrong
// answers, zero deadlocks, zero untyped failures — and the defenses
// actually exercised: demotions, breaker trips and heals all observed
// across the sweep.
func TestClusterGrayFailSoak(t *testing.T) {
	n := soakCount(faults.Schedules().GrayChaos, testing.Short())
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	agg := runGraySweep(t, n, true, reg, tracer)

	if agg.untyped != 0 {
		t.Errorf("%d untyped failures across the sweep", agg.untyped)
	}
	if agg.spikes+agg.throttles+agg.partitions+agg.resetsArm+agg.corruptArm == 0 {
		t.Error("gray sweep never armed a fault; the soak tested nothing")
	}
	if agg.heals == 0 {
		t.Error("no degraded link was ever healed")
	}
	if agg.demotions == 0 {
		t.Error("no slow shard was ever demoted across the whole sweep")
	}
	if agg.trips == 0 {
		t.Error("no breaker ever tripped across the whole sweep")
	}
	// Demote-detection budget: first over-threshold evidence to ring
	// exit. Strike hysteresis needs DemoteStrikes probe rounds (3ms at
	// the soak's 1ms interval); 250ms catches a stalled health loop with
	// wide margin for loaded CI (the bench measures the honest figure).
	if count, _, max := reg.Histogram("cluster.demote_detect_us").Stats(); count > 0 && max > 250_000 {
		t.Errorf("slowest demote detection took %dus, over the 250ms budget", max)
	}
	// Reconciliation: trace events agree with counters.
	if ev := tracer.Counts()["health.demote"]; ev != agg.demotions {
		t.Errorf("tracer saw %d demote events, counters saw %d", ev, agg.demotions)
	}
	if ev := tracer.Counts()["health.promote"]; ev != agg.promotions {
		t.Errorf("tracer saw %d promote events, counters saw %d", ev, agg.promotions)
	}
	t.Logf("%d schedules: ops ok=%d err=%d hits=%d | faults: spikes=%d throttles=%d partitions=%d resets=%d corruptions=%d heals=%d | defenses: demotions=%d promotions=%d trips=%d fastfails=%d hedges=%d hedge_wins=%d corrupt_rejects=%d stale_rejects=%d failovers=%d readmits=%d repairs=%d hints=%d drained=%d fallbacks=%d",
		n, agg.okOps, agg.errOps, agg.hits,
		agg.spikes, agg.throttles, agg.partitions, agg.resetsArm, agg.corruptArm, agg.heals,
		agg.demotions, agg.promotions, agg.trips, agg.fastfails, agg.hedges, agg.hedgeWins, agg.corrupt, agg.stale, agg.failovers, agg.readmits,
		agg.repairs, agg.hints, agg.drained, agg.fallbacks)
}

// TestClusterGrayControlSoak is the relaxed control: identical traffic
// through clean proxies. Gray defenses must stay silent — zero breaker
// trips, zero demotions, zero corruption rejects.
func TestClusterGrayControlSoak(t *testing.T) {
	n := soakCount(faults.Schedules().GrayControl, testing.Short())
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	agg := runGraySweep(t, n, false, reg, tracer)

	if agg.trips != 0 {
		t.Errorf("%d spurious breaker trips on a healthy network", agg.trips)
	}
	if agg.demotions != 0 {
		t.Errorf("%d spurious demotions on a healthy network", agg.demotions)
	}
	if agg.corrupt != 0 {
		t.Errorf("%d corruption rejects on a clean wire", agg.corrupt)
	}
	if agg.failovers != 0 {
		t.Errorf("%d spurious failovers on a healthy network", agg.failovers)
	}
	if agg.repairs != 0 {
		t.Errorf("%d spurious read-repairs on a healthy network", agg.repairs)
	}
	if agg.hints != 0 {
		t.Errorf("%d spurious hinted handoffs on a healthy network", agg.hints)
	}
	if agg.stale != 0 {
		t.Errorf("%d stale rejects on a healthy network", agg.stale)
	}
	if agg.untyped != 0 {
		t.Errorf("%d untyped failures on a healthy network", agg.untyped)
	}
	if agg.hits == 0 {
		t.Error("the control sweep never hit; the workload tested nothing")
	}
	t.Logf("%d schedules: ops ok=%d err=%d hits=%d hedges=%d", n, agg.okOps, agg.errOps, agg.hits, agg.hedges)
}
