package cluster

import "errors"

// Hinted handoff (DESIGN.md §16). While a replica is down, writes that
// would have landed on it are queued as hints — the sealed value plus
// its stamp — so readmission can replay exactly what the shard missed
// instead of digesting every segment. The queues are bounded with
// explicit backpressure: an overflow drops the shard's whole queue,
// records the loss in counters, and flags the shard for a forced full
// segment sync, so a long outage degrades into a wider (but still
// complete) readmission, never into an unbounded queue or a silent gap.

// ErrHandoffOverflow is the typed signal that a shard's hint queue hit
// its bound: the queue was discarded and the shard now requires a full
// anti-entropy sync (no digest shortcut) before re-entering the ring.
var ErrHandoffOverflow = errors.New("cluster: hinted-handoff queue overflow")

// hint is one queued write for a down replica: the sealed value exactly
// as live members stored it, under its stamped flags word.
type hint struct {
	key    string
	sealed []byte
	flags  uint32
}

// handoff holds the per-shard hint queues. Not goroutine-safe: the
// Router's mutex guards it, and enqueue is called under that mutex at
// write-routing time — which is what makes the readmission check
// ("queue drained?") atomic with ring entry.
type handoff struct {
	limit    int
	queues   []map[string]hint // by shard; per-key dedup, newest stamp wins
	fullSync []bool            // overflow happened; digest shortcut forbidden
	// overflows counts overflow events per shard, monotonically. The
	// anti-entropy loop snapshots it at round start and re-reads it under
	// the pre-entry mutex: an overflow during the unlocked sync window
	// empties the queue, so "pending == 0" alone cannot distinguish a
	// clean drain from a discarded one — the epoch can.
	overflows []uint64
}

func newHandoff(shards, limit int) *handoff {
	return &handoff{
		limit:     limit,
		queues:    make([]map[string]hint, shards),
		fullSync:  make([]bool, shards),
		overflows: make([]uint64, shards),
	}
}

// enqueue queues one write for a down shard. A hint for a key already
// queued replaces it (per-key stamps are monotonic, so the newcomer is
// newer and replay order stops mattering). At the bound the queue
// overflows: every queued hint is discarded — counted, never silent —
// and the shard is flagged for a forced full sync. Returns the number
// of hints discarded (0 normally) and ErrHandoffOverflow on overflow.
func (h *handoff) enqueue(shard int, hn hint) (discarded int, err error) {
	q := h.queues[shard]
	if q == nil {
		q = make(map[string]hint)
		h.queues[shard] = q
	}
	if _, dup := q[hn.key]; !dup && len(q) >= h.limit {
		n := len(q)
		h.queues[shard] = nil
		h.fullSync[shard] = true
		h.overflows[shard]++
		return n, ErrHandoffOverflow
	}
	q[hn.key] = hn
	return 0, nil
}

// take removes and returns up to max queued hints for shard (all of
// them when max <= 0). The anti-entropy loop drains in batches so the
// router mutex is never held across the network replay.
func (h *handoff) take(shard, max int) []hint {
	q := h.queues[shard]
	if len(q) == 0 {
		return nil
	}
	if max <= 0 || max > len(q) {
		max = len(q)
	}
	out := make([]hint, 0, max)
	for k, hn := range q {
		out = append(out, hn)
		delete(q, k)
		if len(out) == max {
			break
		}
	}
	return out
}

// pending reports how many hints are queued for shard.
func (h *handoff) pending(shard int) int { return len(h.queues[shard]) }

// needsFullSync reports whether shard overflowed since the last sync;
// clearFullSync resets the flag once a full sync has completed.
func (h *handoff) needsFullSync(shard int) bool { return h.fullSync[shard] }
func (h *handoff) clearFullSync(shard int)      { h.fullSync[shard] = false }

// overflowEpoch returns the shard's monotonic overflow count.
func (h *handoff) overflowEpoch(shard int) uint64 { return h.overflows[shard] }
