package cluster

import (
	"errors"
	"math"
	"time"

	"privagic/internal/memcached"
	"privagic/internal/obs"
	"privagic/internal/retry"
)

// Latency-aware health (DESIGN.md §15). Fencing catches dead and hung
// shards; this file catches the gray ones — alive enough to answer a
// version probe, too slow to serve data. Every data-path operation
// (client traffic and the prober's canary get) feeds a per-shard EWMA of
// round-trip time; failed operations contribute a penalty sample equal
// to the operation timeout, which is the latency the caller actually
// paid. Once per probe round the EWMA is compared against the
// demote/promote thresholds with consecutive-strike hysteresis, so
// membership flips at probe cadence on sustained evidence, never on one
// noisy sample.

// ewmaKeep is the EWMA retention factor: new = keep·old + (1-keep)·sample.
// 0.7 makes ~3 consecutive bad samples dominate the estimate — fast
// detection — while a single outlier moves it less than a third of the
// way to the threshold.
const ewmaKeep = 0.7

// canaryKey is the reserved key of the prober's data-path canary get. It
// is never Set, so the canary is always a miss — the point is the
// round trip, not the value. Routed directly at the probed shard,
// bypassing the ring (ownership is irrelevant to an RTT measure).
const canaryKey = "__privagic_canary__"

// sample records the outcome of one data-path operation against shard:
// the RTT estimate, the RTT histogram (successes only — a penalty sample
// is a modeling device, not a measurement), the failure-streak anchor,
// and the circuit breaker. Breaker transitions surface here: a trip
// demotes the shard out of the ring immediately — consecutive hard
// failures are stronger evidence than a slow EWMA, and the asymmetric
// partition that kills only the data path never trips the fence at all.
func (r *Router) sample(shard int, st *shardState, rtt time.Duration, ok bool) {
	us := rtt.Microseconds()
	if us < 1 {
		us = 1
	}
	old := math.Float64frombits(st.rtt.Load())
	next := float64(us)
	if old > 0 {
		next = ewmaKeep*old + (1-ewmaKeep)*float64(us)
	}
	st.rtt.Store(math.Float64bits(next))

	if ok {
		st.dataDown.Store(0)
		r.rttHist.Observe(us)
		if st.breaker.Success() {
			r.tracer.Record(obs.EvBreakerClose, shard, 0, 0, 0, 0)
		}
		return
	}
	st.dataDown.CompareAndSwap(0, time.Now().UnixNano())
	if st.breaker.Failure() {
		r.breakerTrips.Add(1)
		r.tracer.Record(obs.EvBreakerOpen, shard, 0, 0, 0, 0)
		since := time.Time{}
		if ns := st.dataDown.Load(); ns > 0 {
			since = time.Unix(0, ns)
		}
		r.demote(shard, since)
	}
}

// demote takes shard out of the ring for latency/breaker reasons while
// keeping its incarnation trusted (contrast fence: a demoted shard's
// store is intact and generation stamps age out nothing it owns, so
// promotion back at the same epoch is safe). The last up shard is never
// demoted — a degraded answer path beats ErrNoShards.
func (r *Router) demote(shard int, since time.Time) {
	st := r.shards[shard]
	r.mu.Lock()
	if st.fenced || st.demoted || r.ring.nUp <= 1 {
		r.mu.Unlock()
		return
	}
	st.demoted = true
	st.slowStrikes, st.fastStrikes = 0, 0
	gen := r.ring.setUp(shard, false)
	r.demotions.Add(1)
	if !since.IsZero() {
		r.demoteHist.Observe(time.Since(since).Microseconds())
	}
	r.tracer.Record(obs.EvDemote, shard, 0, 0, st.epoch, int64(gen))
	r.mu.Unlock()
}

// evaluateHealth runs shard i's per-probe-round latency verdict:
// DemoteStrikes consecutive rounds with the EWMA above SlowRTT demote;
// PromoteStrikes consecutive rounds below FastRTT (with the breaker
// closed) promote a demoted shard back.
func (r *Router) evaluateHealth(i int) {
	st := r.shards[i]
	ewma := math.Float64frombits(st.rtt.Load())
	slow := float64(r.cfg.SlowRTT.Microseconds())
	fast := float64(r.cfg.FastRTT.Microseconds())

	r.mu.Lock()
	if st.fenced {
		st.slowStrikes, st.fastStrikes = 0, 0
		r.mu.Unlock()
		return
	}
	if !st.demoted {
		if ewma > slow {
			if st.slowStrikes == 0 {
				st.slowSince = time.Now()
			}
			st.slowStrikes++
			if st.slowStrikes >= r.cfg.DemoteStrikes && r.ring.nUp > 1 {
				st.demoted = true
				st.slowStrikes, st.fastStrikes = 0, 0
				gen := r.ring.setUp(i, false)
				r.demotions.Add(1)
				r.demoteHist.Observe(time.Since(st.slowSince).Microseconds())
				r.tracer.Record(obs.EvDemote, i, 0, 0, st.epoch, int64(gen))
			}
		} else {
			st.slowStrikes = 0
		}
		r.mu.Unlock()
		return
	}
	// Demoted: look for sustained recovery. The breaker must be closed —
	// a half-open wire is not a recovered wire.
	if ewma > 0 && ewma < fast && st.breaker.State() == retry.BreakerClosed {
		st.fastStrikes++
		if st.fastStrikes >= r.cfg.PromoteStrikes {
			st.demoted = false
			st.slowStrikes, st.fastStrikes = 0, 0
			if r.cfg.Replication > 1 {
				// The store missed every write acked while the shard was
				// demoted; under replication it must sync before serving
				// (promotions ticks at ring entry, see antientropy.go).
				st.syncPending = syncPromote
			} else {
				gen := r.ring.setUp(i, true)
				r.promotions.Add(1)
				r.tracer.Record(obs.EvPromote, i, 0, 0, st.epoch, int64(gen))
			}
		}
	} else {
		st.fastStrikes = 0
	}
	r.mu.Unlock()
}

// canaryOnce sends shard i's data-path canary get and runs the health
// verdict. The canary is what keeps latency health live without client
// traffic: a demoted shard sees no data ops, so only the canary can
// observe its recovery — and only the canary exercises the breaker's
// half-open trial when traffic has been routed away. It respects
// breaker admission, so an open breaker is probed exactly at its
// cooldown-governed pace, never stampeded.
func (r *Router) canaryOnce(i int, dconn **memcached.Client, dconnAddr *string) {
	st := r.shards[i]
	addr, _, running := r.dir.Addr(i)
	r.mu.Lock()
	fenced := st.fenced
	r.mu.Unlock()
	if !running || fenced {
		if *dconn != nil {
			(*dconn).Close()
			*dconn = nil
		}
		return
	}
	if !st.breaker.Allow() {
		return // open breaker, cooldown running: no sample this round
	}
	if *dconn != nil && *dconnAddr != addr {
		(*dconn).Close()
		*dconn = nil
	}
	// A failed canary is charged OpTimeout, not ProbeTimeout: the sample
	// models what a data operation would have paid on this wire, and it
	// must be able to clear SlowRTT (which defaults to OpTimeout/2) or
	// the canary could never demote an unreachable data path on its own.
	if *dconn == nil {
		c, err := memcached.DialTimeout(addr, r.cfg.ProbeTimeout)
		if err != nil {
			r.sample(i, st, r.cfg.OpTimeout, false)
			r.evaluateHealth(i)
			return
		}
		c.SetTimeout(r.cfg.ProbeTimeout)
		*dconn, *dconnAddr = c, addr
	}
	start := time.Now()
	_, _, err := (*dconn).Get(canaryKey)
	if err != nil && !errors.Is(err, memcached.ErrBusy) {
		(*dconn).Close()
		*dconn = nil
		r.sample(i, st, r.cfg.OpTimeout, false)
	} else {
		// A miss (the normal case) and a busy shed both prove the data
		// path answers; their RTT is the measurement.
		r.sample(i, st, time.Since(start), true)
	}
	r.evaluateHealth(i)
}
