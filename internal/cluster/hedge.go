package cluster

import (
	"errors"
	"math"
	"sync"
	"time"

	"privagic/internal/memcached"
	"privagic/internal/obs"
)

// Hedged reads (DESIGN.md §15). A Get whose primary attempt stalls past
// an adaptive delay launches one duplicate on a spare pooled connection
// to the same shard; the first answer wins and the loser is aborted.
// Hedging trims the tail that latency health is too slow to catch — the
// single stalled round trip on an otherwise healthy shard — and is safe
// precisely because Gets are idempotent. The canceled loser never feeds
// the breaker or the latency EWMA: its failure is an artifact of the
// abort, and counting it would trip breakers on perfectly healthy
// networks.

// errHedgeCanceled marks the loser of a hedged pair. It never escapes
// getAttempt — only the winner's result is returned.
var errHedgeCanceled = errors.New("cluster: hedged attempt canceled")

// getRes is one Get attempt's outcome.
type getRes struct {
	v      []byte
	hit    bool
	tomb   bool   // a trusted tombstone: the key was deleted — authoritative miss
	stamp  uint32 // the served value's generation stamp (for read-repair)
	err    error
	hedged bool // true for the hedge (second) request of a pair
}

// hedgeTarget names the replica a stalled read hedges against. With
// replication the hedge goes to the NEXT set member (different shard,
// pool, and trust floor) instead of a second connection to the same
// shard — a stalled primary is exactly when the backup should answer.
type hedgeTarget struct {
	shard    int
	st       *shardState
	pool     *connPool
	acquired uint64
	// cross is true when the target is a different shard than the
	// primary. A cross-replica hedge may win only with a hit or a
	// trusted tombstone: its miss is not the primary's miss (the
	// replica may have joined the set later), so adopting it could
	// turn a primary hit into a served miss — a zero-loss violation.
	cross bool
}

// hedgeCtl lets getAttempt abort whichever half of a hedged pair loses.
// arm publishes the in-flight connection; finish marks the attempt
// settled and reports whether it was canceled first; cancel aborts the
// connection unless the attempt already finished. Abort (not Close) is
// the cancellation primitive: it only severs the socket, so it is safe
// against a concurrent blocked read.
type hedgeCtl struct {
	mu       sync.Mutex
	conn     *memcached.Client
	finished bool
	canceled bool
}

func (h *hedgeCtl) arm(c *memcached.Client) {
	h.mu.Lock()
	h.conn = c
	canceled := h.canceled
	h.mu.Unlock()
	if canceled {
		c.Abort()
	}
}

func (h *hedgeCtl) finish() (canceled bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.finished = true
	return h.canceled
}

func (h *hedgeCtl) cancel() {
	h.mu.Lock()
	conn, finished := h.conn, h.finished
	h.canceled = true
	h.mu.Unlock()
	if !finished && conn != nil {
		conn.Abort()
	}
}

// hedgeDelay picks how long the primary may stall before hedging:
// negative disables, positive is fixed, zero adapts to the shard —
// 8× its EWMA RTT, floored at OpTimeout/4 and capped at OpTimeout, so
// hedges fire on genuine stalls rather than routine fluctuation.
func (r *Router) hedgeDelay(st *shardState) time.Duration {
	if r.cfg.HedgeDelay != 0 {
		return r.cfg.HedgeDelay
	}
	ewma := math.Float64frombits(st.rtt.Load())
	if ewma <= 0 {
		return r.cfg.OpTimeout / 2
	}
	d := time.Duration(ewma*8) * time.Microsecond
	if min := r.cfg.OpTimeout / 4; d < min {
		d = min
	}
	if d > r.cfg.OpTimeout {
		d = r.cfg.OpTimeout
	}
	return d
}

// hedgePair is the per-Get hedge machinery: the two abort handles, the
// result channel, and the armed timer. Pairs are pooled and the timer is
// reused across Gets (Reset/Stop, never recreated), so the fast path —
// primary answers before the delay elapses — allocates nothing. The
// per-call fields are written before Reset and read by fire; the timer's
// internal lock orders the two, so fire always sees the current call's
// values.
type hedgePair struct {
	primary, hedge hedgeCtl
	ch             chan getRes
	timer          *time.Timer

	// Armed per call, before timer.Reset.
	r      *Router
	target hedgeTarget // where the hedge fires (the next replica, or the primary's own shard)
	key    string
	delay  time.Duration
}

var hedgePairPool = sync.Pool{New: func() any { return newHedgePair() }}

func newHedgePair() *hedgePair {
	p := &hedgePair{ch: make(chan getRes, 1)}
	p.timer = time.AfterFunc(time.Hour, p.fire)
	p.timer.Stop()
	return p
}

// fire runs in the timer goroutine when the primary has stalled past the
// hedge delay. It hedges only on a spare connection — tryGet never
// waits, so hedging can't cannibalize the pool under load — and on a
// genuine answer aborts the primary to unblock the caller. The channel
// send strictly precedes the cancel, so a caller that sees its primary
// canceled can always receive the hedge's result without blocking
// forever.
func (p *hedgePair) fire() {
	r := p.r
	t := p.target
	hc, ok := t.pool.tryGet()
	if !ok {
		p.ch <- getRes{err: errHedgeCanceled, hedged: true}
		return
	}
	r.hedges.Add(1)
	r.tracer.Record(obs.EvHedge, t.shard, 0, 0, 0, p.delay.Microseconds())
	res := r.getOnConn(t.shard, t.st, t.pool, t.acquired, p.key, hc, &p.hedge, true)
	p.ch <- res
	// A cross-replica hedge may only preempt the primary with a hit or a
	// trusted tombstone (see hedgeTarget.cross); a same-shard hedge keeps
	// the original any-success-wins semantics.
	if res.err == nil && (!t.cross || res.hit || res.tomb) {
		p.primary.cancel()
	}
}

// release resets a pair and returns it to the pool. Only legal on the
// fast path, after timer.Stop() reported the timer never fired: fire is
// then guaranteed neither running nor pending, so nothing else can touch
// the pair's fields or channel.
func (p *hedgePair) release() {
	p.primary.conn, p.primary.finished, p.primary.canceled = nil, false, false
	p.hedge.conn, p.hedge.finished, p.hedge.canceled = nil, false, false
	p.r, p.target, p.key = nil, hedgeTarget{}, ""
	hedgePairPool.Put(p)
}

// getAttempt runs one (possibly hedged) Get attempt against shard.
//
// The primary runs inline on the calling goroutine; the hedge machinery
// is a pooled pair with a reused armed timer, so a Get that answers
// promptly — the overwhelmingly common case — pays a timer Reset/Stop
// and nothing else: no goroutine spawn, no channel round trip, no
// allocation (the router-tax acceptance bar in EXPERIMENTS.md is what
// forced this shape). When the timer does fire, the hedge runs in the
// timer's goroutine; the primary's canceled read surfaces as
// errHedgeCanceled and the caller adopts the hedge's result from the
// buffered channel. A pair whose timer fired is never re-pooled — fire
// may still be settling it — and is left to the collector; those Gets
// already cost a multi-millisecond stall, so the garbage is noise.
func (r *Router) getAttempt(shard int, st *shardState, pool *connPool, acquired uint64, key string, alt *hedgeTarget) getRes {
	delay := r.hedgeDelay(st)
	if delay < 0 || delay >= r.cfg.OpTimeout {
		// Disabled, or the primary would time out before the hedge ever
		// launched — either way the hedge could never win.
		return r.getOnce(shard, st, pool, acquired, key, nil, false)
	}
	p := hedgePairPool.Get().(*hedgePair)
	p.r, p.key, p.delay = r, key, delay
	if alt != nil {
		p.target = *alt
	} else {
		p.target = hedgeTarget{shard: shard, st: st, pool: pool, acquired: acquired}
	}
	p.timer.Reset(delay)
	res := r.getOnce(shard, st, pool, acquired, key, &p.primary, false)
	if p.timer.Stop() {
		p.release()
		return res // fast path: the hedge never launched
	}
	adopt := func(hres getRes) bool {
		// A failed primary adopts any hedge answer from its own shard,
		// but from another replica only a hit or tombstone (its miss
		// proves nothing about the primary's keyspace history).
		return hres.err == nil && (!p.target.cross || hres.hit || hres.tomb)
	}
	if !errors.Is(res.err, errHedgeCanceled) {
		// The primary settled on its own. If the hedge raced it to a
		// real answer while the primary failed, prefer the answer.
		if res.err != nil {
			select {
			case hres := <-p.ch:
				if adopt(hres) {
					r.hedgeWins.Add(1)
					r.tracer.Record(obs.EvHedgeWin, p.target.shard, 0, 0, 0, delay.Microseconds())
					return hres
				}
			default:
			}
		}
		p.hedge.cancel()
		return res
	}
	// The primary was aborted by a winning hedge, whose result is
	// already in the channel.
	hres := <-p.ch
	if hres.err == nil {
		r.hedgeWins.Add(1)
		r.tracer.Record(obs.EvHedgeWin, p.target.shard, 0, 0, 0, delay.Microseconds())
	}
	return hres
}

// getOnce acquires a connection and runs one Get round trip on it.
func (r *Router) getOnce(shard int, st *shardState, pool *connPool, acquired uint64, key string, ctl *hedgeCtl, hedged bool) getRes {
	c, err := pool.get()
	if err != nil {
		r.sample(shard, st, r.cfg.OpTimeout, false)
		r.nudge(shard)
		return getRes{err: err, hedged: hedged}
	}
	return r.getOnConn(shard, st, pool, acquired, key, c, ctl, hedged)
}

// getOnConn runs one Get round trip on c, applying the staleness fence
// and the integrity check, and settles the connection back into (or out
// of) the pool. Every settled outcome feeds sample() exactly once —
// required to complete half-open breaker trials — except a canceled
// hedge loser, which feeds nothing.
func (r *Router) getOnConn(shard int, st *shardState, pool *connPool, acquired uint64, key string, c *memcached.Client, ctl *hedgeCtl, hedged bool) getRes {
	if ctl != nil {
		ctl.arm(c)
	}
	start := time.Now()
	stored, flags, hit, err := c.GetFlags(key)
	rtt := time.Since(start)
	if ctl != nil && ctl.finish() {
		pool.discard(c) // aborted mid-flight; the socket is gone
		return getRes{err: errHedgeCanceled, hedged: hedged}
	}
	switch {
	case err == nil:
	case errors.Is(err, memcached.ErrBusy):
		pool.put(c) // shed responses leave the stream framed
		r.sample(shard, st, rtt, true)
		return getRes{err: err, hedged: hedged}
	default:
		pool.discard(c) // timeout, transport error or protocol violation
		r.sample(shard, st, r.cfg.OpTimeout, false)
		r.nudge(shard)
		return getRes{err: err, hedged: hedged}
	}
	res := getRes{hedged: hedged}
	if hit {
		if stampGen(flags) < acquired {
			// A survivor's copy from before the serving member (re)joined
			// the replica set: failover-window staleness, served as a
			// miss. The tombstone bit is excluded — the stamp alone
			// orders the value against the member's tenure.
			r.staleRejects.Add(1)
		} else if payload, okv := openValue(key, flags, stored); !okv {
			// The integrity tag does not verify: the bytes were damaged
			// somewhere between the original Set and this read — possibly
			// only on the wire, with the stored copy intact. Served as a
			// miss, never deleted: a reject may name the GENUINE newest
			// value whose transit copy got flipped, and deleting it would
			// erase the LWW register's memory — a delayed zombie write or
			// a racing repair could then resurrect an older value.
			// Rejected values are instead overwritten in place by
			// read-repair (equal or older stamps lose to the served copy)
			// or by the next write's higher stamp.
			r.corruptRejects.Add(1)
			r.tracer.Record(obs.EvCorruptReject, shard, 0, 0, uint64(flags), int64(len(stored)))
		} else if flags&tombBit != 0 {
			// A trusted tombstone: the key was deleted, and the stamp
			// proves no newer write exists here — an authoritative miss
			// that stops the replica fallback. The tombstone is what keeps
			// a zombie of the deleted write out.
			res.tomb, res.stamp = true, flags
		} else {
			res.v, res.hit, res.stamp = payload, true, flags
		}
	}
	pool.put(c)
	r.sample(shard, st, rtt, true)
	return res
}
