package cluster

import (
	"encoding/binary"
	"hash/fnv"
)

// End-to-end value integrity (DESIGN.md §15). The memcached text
// protocol frames messages but does not checksum them, so a bit flip on
// the wire that survives parsing — a damaged payload byte, a mutated
// flags digit, a VALUE header echoing a different (existing) key — would
// otherwise come back as a plausible wrong answer. The router therefore
// seals every stored value with an 8-byte tag binding the payload to the
// key and the generation-bearing flags word, and verifies the tag on
// every read. A mismatch is reported as a typed corruption rejection and
// served as a miss: fresh-or-miss, never wrong.

// tagLen is the size of the integrity tag prefixed to stored values.
const tagLen = 8

// valueTag computes the FNV-1a-64 tag over (key, NUL, flags
// little-endian, payload). Including the key catches cross-key serving
// that defeats the header echo check (a corrupted key that happens to
// name another live key); including flags catches a generation stamp
// damaged in flight, which would otherwise let a stale value masquerade
// as fresh.
func valueTag(key string, flags uint32, payload []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0, byte(flags), byte(flags >> 8), byte(flags >> 16), byte(flags >> 24)})
	_, _ = h.Write(payload)
	return h.Sum64()
}

// sealValue prefixes payload with its integrity tag for storage.
func sealValue(key string, flags uint32, payload []byte) []byte {
	out := make([]byte, tagLen+len(payload))
	binary.BigEndian.PutUint64(out, valueTag(key, flags, payload))
	copy(out[tagLen:], payload)
	return out
}

// openValue verifies and strips the tag from a stored value. ok is false
// when the value is too short to carry a tag or the tag does not match —
// both mean the bytes cannot be trusted as an answer for key.
func openValue(key string, flags uint32, stored []byte) (payload []byte, ok bool) {
	if len(stored) < tagLen {
		return nil, false
	}
	tag := binary.BigEndian.Uint64(stored)
	payload = stored[tagLen:]
	if tag != valueTag(key, flags, payload) {
		return nil, false
	}
	return payload, true
}
