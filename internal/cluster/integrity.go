package cluster

import "privagic/internal/memcached"

// End-to-end value integrity (DESIGN.md §15, §16). The seal primitive
// lives in internal/memcached (seal.go) because both ends of the
// replica trust boundary verify it: the router seals on write and
// verifies on every read, and the server's replicated-write verb (setx)
// verifies at the store boundary so a payload corrupted in transit is
// refused instead of acknowledged. The router-side aliases below keep
// the call sites readable.

func sealValue(key string, flags uint32, payload []byte) []byte {
	return memcached.SealValue(key, flags, payload)
}

func openValue(key string, flags uint32, stored []byte) (payload []byte, ok bool) {
	return memcached.OpenValue(key, flags, stored)
}
