package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"privagic/internal/memcached"
	"privagic/internal/obs"
)

// Replicated writes and reads (DESIGN.md §16). Every ring segment is
// served by a replica set (primary plus successors, see ring.go); a
// write goes through to every in-ring set member and acknowledges only
// when all of them hold it, so the failure of any single member never
// loses an acknowledged write — reads fall back across the set and some
// live member always answers. Writes are ordered per key by a strictly
// increasing stamp and stored through the LWW register verb (setx), so
// a zombie write — a timed-out attempt the network delivers late —
// loses the comparison instead of overwriting newer progress. Deletes
// are tombstones: a write of the same shape whose flags carry tombBit,
// replicated and stamped like any other, so "deleted" wins over the
// write it supersedes on every member.

// tombBit marks a flags word as a tombstone; the remaining 31 bits
// (stampMask) are the generation stamp. The bit is excluded from LWW
// and staleness comparisons so a delete at stamp s beats the stamp-s
// write it supersedes, and is checked on reads to turn a trusted
// tombstone into an authoritative miss.
//
// The stamp itself is generation-major: the high 15 bits are the ring
// generation at write time, the low 16 a per-key sequence within that
// generation (carrying into the generation bits on overflow). The two
// layers answer different questions and must not be conflated. LWW
// compares the whole stamp — per-key writes are totally ordered, so a
// zombie write always loses. The staleness trust check compares ONLY
// the generation part against the serving member's joined floor: a
// reshuffle-joiner must reject values written before its tenure, and a
// hot key's sequence numbers would otherwise outrun the ring generation
// and smuggle pre-tenure residue past the floor. The 15 generation bits
// bound a router's lifetime at 32k membership changes — far beyond any
// soak; widen the split before shipping a router that churns more.
const (
	tombBit      = uint32(1) << 31
	stampMask    = tombBit - 1
	stampSeqBits = 16
	stampGenMax  = stampMask >> stampSeqBits
)

// stampGen extracts a stamp's write-time ring generation (the staleness
// trust coordinate).
func stampGen(flags uint32) uint64 {
	return uint64((flags & stampMask) >> stampSeqBits)
}

// genFloor is the smallest stamp a write minted at ring generation g can
// carry (the generation saturates at stampGenMax; see the lifetime note
// on stampSeqBits). Both the stamp oracle and the generation-floor GC
// derive their floors from it, so "prunable" and "re-mintable above"
// agree by construction.
func genFloor(g uint64) uint32 {
	if g > uint64(stampGenMax) {
		g = uint64(stampGenMax)
	}
	return uint32(g) << stampSeqBits
}

// writePlan is one write attempt's routing snapshot: the replica set,
// its pools, the stamped flags word, and the sealed bytes — resolved
// atomically under the router mutex (prepareWrite) so the stamp, the
// set, and any hinted handoffs belong to the same ring instant.
type writePlan struct {
	seg    segment
	pools  [maxReplication]*connPool
	flags  uint32
	sealed []byte
	gen    uint64
}

// prepareWrite resolves a write under the router mutex: picks the
// replica set, mints the key's next stamp, seals the value, and queues
// hinted handoffs for any down shard that belongs to the key's
// converged (all-up) set. Queueing under the same mutex as routing is
// what makes readmission race-free: ring entry checks the queue is
// drained under this mutex, so no write can slip between "queue empty"
// and "in the ring".
func (r *Router) prepareWrite(key string, value []byte, tomb bool) (writePlan, bool) {
	h := keyHash(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	seg, ok := r.ring.lookupSet(h)
	if !ok {
		return writePlan{}, false
	}
	// Per-key strictly increasing: at least the current generation's
	// floor (so a member's tenure orders against it) and always above
	// the key's previous stamp (so setx totally orders this key's
	// writes). A sequence overflow carries into the generation bits,
	// which only ever makes a value look newer — safe for LWW, and
	// 65k same-generation writes to one key away from mattering.
	prev := r.stamps[key]
	stamp := genFloor(r.ring.gen)
	if s := prev + 1; s > stamp {
		stamp = s
	}
	if stamp > stampMask {
		stamp = stampMask
	}
	if stamp <= prev {
		// The stamp space is exhausted for this key (prev already sat at
		// stampMask): strict per-key ordering has stopped and the LWW
		// register's >= comparison now lets the last arrival win — the
		// zombie-write guarantee is gone for this key. Degrade loudly,
		// never silently: a long-lived router approaching the 32k
		// membership-change bound shows up in this counter long before
		// it misorders a write.
		r.stampClamps.Add(1)
		r.tracer.Record(obs.EvReplStampClamp, seg.shard[0], 0, 0, r.ring.gen, int64(stamp))
	}
	r.stamps[key] = stamp
	flags := stamp
	if tomb {
		flags |= tombBit
	}
	plan := writePlan{seg: seg, flags: flags, sealed: sealValue(key, flags, value), gen: r.ring.gen}
	for k := 0; k < seg.n; k++ {
		plan.pools[k] = r.shards[seg.shard[k]].pool
	}
	var buf [maxReplication]int
	for _, s := range r.ring.hintFor(h, buf[:0]) {
		discarded, err := r.hints.enqueue(s, hint{key: key, sealed: plan.sealed, flags: flags})
		if err != nil {
			r.hintOverflows.Add(1)
			r.hintsDiscarded.Add(int64(discarded))
			r.tracer.Record(obs.EvReplOverflow, s, 0, 0, plan.gen, int64(discarded))
		} else {
			r.hintsQueued.Add(1)
			r.tracer.Record(obs.EvReplHint, s, 0, 0, plan.gen, int64(stamp))
		}
	}
	return plan, true
}

// Set stores key=value on every in-ring member of its replica set,
// acknowledging only when all of them hold it (all-or-retry; see the
// package comment on why that plus read fallback is zero-loss). The
// value is sealed with an end-to-end integrity tag over (key, flags,
// value) — wire corruption anywhere in the store/fetch path is detected
// at Get time instead of becoming a wrong answer.
func (r *Router) Set(key string, value []byte) error {
	return r.write(key, value, false)
}

// Delete removes key by replicating a tombstone: an empty sealed value
// whose flags carry tombBit over the key's next stamp. The tombstone
// beats the write it supersedes on every member (LWW) and turns reads
// into authoritative misses, so neither a zombie of the deleted write
// nor a lagging replica can resurrect the value. found reports whether
// a replicated read observed the key just before the tombstone landed.
func (r *Router) Delete(key string) (found bool, err error) {
	_, found, err = r.Get(key)
	if err != nil {
		return false, err
	}
	if werr := r.write(key, nil, true); werr != nil {
		return found, werr
	}
	return found, nil
}

// beginWrite/endWrite bracket a key's write loop so read-repair can
// tell mid-fan-out lag from genuine divergence (see Router.writing).
func (r *Router) beginWrite(key string) {
	r.mu.Lock()
	r.writing[key]++
	r.mu.Unlock()
}

func (r *Router) endWrite(key string) {
	r.mu.Lock()
	if r.writing[key]--; r.writing[key] <= 0 {
		delete(r.writing, key)
	}
	r.mu.Unlock()
}

func (r *Router) writeInFlight(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writing[key] > 0
}

// write is the shared replicated write loop: route + stamp, breaker
// admission over the whole set, fan-out, retry on any member failure.
func (r *Router) write(key string, value []byte, tomb bool) error {
	r.beginWrite(key)
	defer r.endWrite(key)
	var lastErr error
	for attempt := 0; attempt < r.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			if serr := r.cfg.Retry.Sleep(r.ctx, attempt); serr != nil {
				// Router closed mid-backoff: surface what we know.
				if lastErr == nil {
					lastErr = serr
				}
				break
			}
		}
		plan, ok := r.prepareWrite(key, value, tomb)
		if !ok {
			lastErr = ErrNoShards
			continue // a probe may readmit a shard within the budget
		}
		if attempt > 0 {
			r.tracer.Record(obs.EvRouteRetry, plan.seg.shard[0], 0, 0, plan.gen, int64(attempt))
		}
		// Ack-all means one open breaker fails the whole attempt: fail
		// it instantly instead of burning a timeout on a known-bad wire.
		blocked := -1
		for k := 0; k < plan.seg.n; k++ {
			if !r.shards[plan.seg.shard[k]].breaker.Allow() {
				blocked = plan.seg.shard[k]
				break
			}
		}
		if blocked >= 0 {
			r.breakerFastfail.Add(1)
			lastErr = fmt.Errorf("cluster: shard %d: %w", blocked, ErrBreakerOpen)
			continue
		}
		if err := r.fanOut(key, plan); err != nil {
			lastErr = err
			continue
		}
		r.routes.Add(1)
		if tomb {
			r.tombstones.Add(1)
			r.tracer.Record(obs.EvReplTombstone, plan.seg.shard[0], 0, 0, plan.gen, int64(plan.flags&stampMask))
		}
		return nil
	}
	return r.finishAttempts(lastErr)
}

// fanOut writes the plan to every set member: inline when the set is a
// single shard (the R=1 fast path pays no goroutine), pipelined
// otherwise — every member's setx request is sent before any reply is
// awaited, so all round trips overlap on the wire while the whole
// fan-out stays on the caller's goroutine (no spawn, park, or wake per
// write; on a loaded box the scheduler churn of a goroutine-per-replica
// fan-out was the bulk of the replication tax over the R·work floor).
// Success requires every member to have stored or LWW-refused (a
// refusal means a newer value is already there — this write is
// subsumed, which satisfies its guarantee). Each connection's deadline
// is armed at send time, so a member that hangs between Send and Recv
// still fails within the op timeout.
func (r *Router) fanOut(key string, plan writePlan) error {
	n := plan.seg.n
	if n == 1 {
		return r.setOne(plan.seg.shard[0], plan.pools[0], key, plan)
	}
	var conns [maxReplication]*memcached.Client
	var starts [maxReplication]time.Time
	var errs [maxReplication]error
	for k := 0; k < n; k++ {
		shard := plan.seg.shard[k]
		st := r.shards[shard]
		c, err := plan.pools[k].get()
		if err != nil {
			r.sample(shard, st, r.cfg.OpTimeout, false)
			r.nudge(shard)
			errs[k] = err
			continue
		}
		starts[k] = time.Now()
		if err := c.SetXSend(key, plan.sealed, plan.flags); err != nil {
			plan.pools[k].discard(c)
			r.sample(shard, st, r.cfg.OpTimeout, false)
			r.nudge(shard)
			errs[k] = err
			continue
		}
		conns[k] = c
	}
	for k := 0; k < n; k++ {
		if conns[k] == nil {
			continue
		}
		shard := plan.seg.shard[k]
		st := r.shards[shard]
		stored, err := conns[k].SetXRecv(key, plan.flags)
		rtt := time.Since(starts[k])
		errs[k] = err
		switch {
		case err == nil:
			plan.pools[k].put(conns[k])
			r.sample(shard, st, rtt, true)
			if !stored {
				r.lwwRefused.Add(1) // a newer write already landed; subsumed
			}
		case errors.Is(err, memcached.ErrBusy):
			plan.pools[k].put(conns[k]) // shed responses leave the stream framed
			r.sample(shard, st, rtt, true)
		default:
			plan.pools[k].discard(conns[k]) // timeout or torn stream: redial
			r.sample(shard, st, r.cfg.OpTimeout, false)
			r.nudge(shard)
		}
	}
	for k := 1; k < n; k++ {
		if errs[k] == nil {
			r.replicaWrites.Add(1)
		} else {
			r.replicaWriteErrors.Add(1)
		}
	}
	for k := 0; k < n; k++ {
		if errs[k] != nil {
			return errs[k]
		}
	}
	return nil
}

// setOne runs one member's setx round trip, with the standard
// connection settlement and health sampling.
func (r *Router) setOne(shard int, pool *connPool, key string, plan writePlan) error {
	st := r.shards[shard]
	c, err := pool.get()
	if err != nil {
		r.sample(shard, st, r.cfg.OpTimeout, false)
		r.nudge(shard)
		return err
	}
	start := time.Now()
	stored, err := c.SetX(key, plan.sealed, plan.flags)
	rtt := time.Since(start)
	switch {
	case err == nil:
		pool.put(c)
		r.sample(shard, st, rtt, true)
		if !stored {
			r.lwwRefused.Add(1) // a newer write already landed; subsumed
		}
		return nil
	case errors.Is(err, memcached.ErrBusy):
		pool.put(c) // shed responses leave the stream framed
		r.sample(shard, st, rtt, true)
		return err
	default:
		pool.discard(c) // timeout or torn stream: redial next attempt
		r.sample(shard, st, r.cfg.OpTimeout, false)
		r.nudge(shard)
		return err
	}
}

// Get fetches key, falling back across the replica set: breaker-open,
// erroring, and trusted-missing members are passed over until some
// member answers with a trusted hit or tombstone. A stalled member
// hedges against the NEXT replica (see hedge.go). A miss is served only
// when every in-ring member answered a trusted miss — under the
// MaxDown=1 failure budget at least one set member has seen the key's
// full history, so an all-member miss proves the key was never
// acknowledged (or was deleted).
func (r *Router) Get(key string) (value []byte, ok bool, err error) {
	var lastErr error
	for attempt := 0; attempt < r.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			if serr := r.cfg.Retry.Sleep(r.ctx, attempt); serr != nil {
				if lastErr == nil {
					lastErr = serr
				}
				break
			}
		}
		seg, pools, rok := r.routeSet(key)
		if !rok {
			lastErr = ErrNoShards
			continue
		}
		if attempt > 0 {
			r.tracer.Record(obs.EvRouteRetry, seg.shard[0], 0, 0, 0, int64(attempt))
		}
		res, done := r.getReplicated(key, seg, pools)
		if done {
			r.routes.Add(1)
			return res.v, res.hit, nil
		}
		lastErr = res.err
	}
	return nil, false, r.finishAttempts(lastErr)
}

// getReplicated runs one fallback sweep over the replica set. done is
// false when no member produced a servable answer and at least one
// failed — the outer loop retries rather than inventing a miss, because
// a miss concluded while a member is unreachable could contradict an
// acknowledged write that only that member saw applied.
func (r *Router) getReplicated(key string, seg segment, pools [maxReplication]*connPool) (getRes, bool) {
	var missed [maxReplication]int
	nMissed := 0
	var lastErr error
	for idx := 0; idx < seg.n; idx++ {
		shard := seg.shard[idx]
		st := r.shards[shard]
		if !st.breaker.Allow() {
			r.breakerFastfail.Add(1)
			lastErr = fmt.Errorf("cluster: shard %d: %w", shard, ErrBreakerOpen)
			continue
		}
		var alt *hedgeTarget
		if next := idx + 1; next < seg.n {
			alt = &hedgeTarget{
				shard:    seg.shard[next],
				st:       r.shards[seg.shard[next]],
				pool:     pools[next],
				acquired: seg.joined[next],
				cross:    true,
			}
		}
		res := r.getAttempt(shard, st, pools[idx], seg.joined[idx], key, alt)
		switch {
		case res.err != nil:
			lastErr = res.err
		case res.tomb:
			// Trusted tombstone: the key was deleted — authoritative.
			if idx > 0 {
				r.fallbackReads.Add(1)
				r.tracer.Record(obs.EvReplFallback, shard, 0, 0, 0, int64(idx))
			}
			return getRes{}, true
		case res.hit:
			if idx > 0 {
				r.fallbackReads.Add(1)
				r.tracer.Record(obs.EvReplFallback, shard, 0, 0, 0, int64(idx))
			}
			// Members passed over with a trusted miss are missing this
			// value: repair them now, CAS-guarded, so divergence heals at
			// read time instead of waiting for the next sync.
			for j := 0; j < nMissed; j++ {
				r.readRepair(key, seg.shard[missed[j]], pools[missed[j]], res)
			}
			return res, true
		default:
			missed[nMissed] = idx
			nMissed++
		}
	}
	if lastErr == nil {
		return getRes{}, true // every in-ring member trusted-missed
	}
	return getRes{err: lastErr}, false
}

// readRepair copies a served value onto a set member that answered a
// trusted miss. The store is CAS-guarded: the repairer reads the
// member's current token and swaps only against it, so a newer write
// racing in between is never clobbered — the repairer observes the
// conflict and stands down. The value is re-sealed under its original
// stamp, byte-identical to what the serving member holds.
func (r *Router) readRepair(key string, shard int, pool *connPool, served getRes) {
	if r.writeInFlight(key) {
		// The key's writer is still fanning out (or retrying): the member
		// that looked behind is about to be written by the ack-all loop
		// itself. Repairing now would just race it.
		return
	}
	c, err := pool.get()
	if err != nil {
		return // best-effort: the next read or sync will retry
	}
	sealed := sealValue(key, served.stamp, served.v)
	cur, flags, casid, present, err := c.Gets(key)
	if err != nil {
		if errors.Is(err, memcached.ErrBusy) {
			pool.put(c)
		} else {
			pool.discard(c)
		}
		return
	}
	switch {
	case !present:
		ok, aerr := c.Add(key, sealed, served.stamp)
		switch {
		case aerr == nil && ok:
			r.readRepairs.Add(1)
			r.tracer.Record(obs.EvReplRepair, shard, 0, 0, 0, int64(served.stamp&stampMask))
		case aerr == nil:
			r.repairConflicts.Add(1) // a write landed first; it is newer
		case errors.Is(aerr, memcached.ErrBusy):
			pool.put(c)
			return
		default:
			pool.discard(c)
			return
		}
	case flags&stampMask > served.stamp&stampMask:
		// The member moved ahead on its own: a newer write landed.
	case flags&stampMask == served.stamp&stampMask && bytes.Equal(cur, sealed):
		// The member caught up with byte-identical content — the usual
		// race of a read overlapping the write's own fan-out. Nothing to
		// heal; counting it as a repair would make the clean-control
		// soak's zero-spurious-repairs assertion unprovable.
	default:
		// An older stamp, or an EQUAL stamp with different bytes — the
		// latter is a divergent copy of the same write (damaged at rest
		// or mid-wire on the store path; rejects never delete, so the
		// residue stays until overwritten). CAS in the served, verified
		// bytes.
		switch cerr := c.Cas(key, sealed, served.stamp, casid); {
		case cerr == nil:
			r.readRepairs.Add(1)
			r.tracer.Record(obs.EvReplRepair, shard, 0, 0, 0, int64(served.stamp&stampMask))
		case errors.Is(cerr, memcached.ErrCasConflict) || errors.Is(cerr, memcached.ErrNotFound):
			r.repairConflicts.Add(1) // a newer write won; stand down
		case errors.Is(cerr, memcached.ErrBusy):
			pool.put(c)
			return
		default:
			pool.discard(c)
			return
		}
	}
	pool.put(c)
}
