package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"privagic/internal/memcached"
)

// Replication lifecycle tests (DESIGN.md §16): write-through fan-out,
// read fallback, read-repair, tombstones, readmission ordering, and
// hinted-handoff overflow. The seeded soaks cover these paths under
// adversarial schedules; the tests here pin each mechanism in
// isolation so a regression names the broken part instead of a seed.

// replicaSetOf resolves key's current replica set from the router's
// ring (primary first).
func replicaSetOf(r *Router, key string) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	seg, ok := r.ring.lookupSet(keyHash(key))
	if !ok {
		return nil
	}
	out := make([]int, seg.n)
	for k := 0; k < seg.n; k++ {
		out[k] = seg.shard[k]
	}
	return out
}

// TestRouterWriteThroughAllReplicas: a Set lands the sealed value on
// every member of the key's replica set, not just the primary — the
// ack-all contract zero-loss rests on.
func TestRouterWriteThroughAllReplicas(t *testing.T) {
	c := newTestCluster(t, 3)
	r := newTestRouter(t, c, fastProbes())
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("wt%d", i)
		if err := r.Set(key, []byte("v")); err != nil {
			t.Fatalf("Set %s: %v", key, err)
		}
		set := replicaSetOf(r, key)
		if len(set) != 2 {
			t.Fatalf("key %s: replica set %v, want 2 members", key, set)
		}
		for _, s := range set {
			if _, _, ok := c.Store(s).Get(key); !ok {
				t.Fatalf("key %s: member shard %d does not hold the value after ack", key, s)
			}
		}
	}
	if n := r.Counters()["repl.replica_writes"]; n == 0 {
		t.Fatal("no replica write was ever counted")
	}
}

// TestRouterFallbackRead: with the primary dead but not yet fenced,
// a Get answers from the successor replica — no fence required, no
// miss invented.
func TestRouterFallbackRead(t *testing.T) {
	c := newTestCluster(t, 3)
	cfg := fastProbes()
	cfg.DisableProbes = true // keep the primary in the ring while dead
	r := newTestRouter(t, c, cfg)
	if err := r.Set("fb", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	set := replicaSetOf(r, "fb")
	if err := c.Kill(set[0]); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	v, ok, err := r.Get("fb")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get with dead primary = %q ok=%v err=%v, want hit", v, ok, err)
	}
	if n := r.Counters()["repl.fallback_reads"]; n == 0 {
		t.Fatal("hit served without a fallback read being counted")
	}
}

// TestRouterReadRepair: a member that lost its copy (simulated local
// damage) is refilled at read time from the member that still answers,
// CAS-guarded, byte-identical.
func TestRouterReadRepair(t *testing.T) {
	c := newTestCluster(t, 3)
	cfg := fastProbes()
	cfg.HedgeDelay = -1 // keep the read path deterministic: primary, then fallback
	r := newTestRouter(t, c, cfg)
	if err := r.Set("rr", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	set := replicaSetOf(r, "rr")
	if !c.Store(set[0]).Delete("rr") {
		t.Fatal("primary copy missing before the test even started")
	}
	v, ok, err := r.Get("rr")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q ok=%v err=%v, want hit via the successor", v, ok, err)
	}
	waitFor(t, time.Second, "read-repair of the primary", func() bool {
		_, _, ok := c.Store(set[0]).Get("rr")
		return ok
	})
	if n := r.Counters()["repl.read_repairs"]; n != 1 {
		t.Fatalf("repl.read_repairs = %d, want exactly 1", n)
	}
	// The repaired copy must verify end to end: a second read served by
	// the primary again returns the value, not a corrupt reject.
	if v, ok, err := r.Get("rr"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after repair = %q ok=%v err=%v", v, ok, err)
	}
}

// TestRouterTombstoneReplicated: Delete replicates a tombstone to every
// set member, reads turn into authoritative misses, and a zombie of the
// deleted write (a late-delivered older stamp) loses the LWW comparison
// on every member instead of resurrecting the value.
func TestRouterTombstoneReplicated(t *testing.T) {
	c := newTestCluster(t, 3)
	r := newTestRouter(t, c, fastProbes())
	if err := r.Set("tz", []byte("doomed")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	// Capture the live value's stamped flags — the zombie replays these.
	set := replicaSetOf(r, "tz")
	sealed, oldFlags, ok := c.Store(set[0]).Get("tz")
	if !ok {
		t.Fatal("value missing after ack")
	}
	if found, err := r.Delete("tz"); err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	for _, s := range set {
		_, flags, ok := c.Store(s).Get("tz")
		if !ok {
			t.Fatalf("shard %d: tombstone missing (a plain delete would let zombies resurrect)", s)
		}
		if flags&tombBit == 0 {
			t.Fatalf("shard %d: post-delete record has no tombstone bit (flags %x)", s, flags)
		}
	}
	if _, ok, err := r.Get("tz"); err != nil || ok {
		t.Fatalf("Get after delete: ok=%v err=%v, want authoritative miss", ok, err)
	}
	// The zombie: deliver the old write again, directly through the LWW
	// register, on every member. Each must refuse it.
	for _, s := range set {
		if c.Store(s).SetLWW("tz", sealed, oldFlags) {
			t.Fatalf("shard %d: zombie write with stamp %x beat the tombstone", s, oldFlags)
		}
	}
	if _, ok, _ := r.Get("tz"); ok {
		t.Fatal("zombie write resurrected a deleted key")
	}
	if n := r.Counters()["repl.tombstones"]; n != 1 {
		t.Fatalf("repl.tombstones = %d, want 1", n)
	}
}

// TestRouterReadmissionOrdering is the readmission-ordering invariant
// (satellite of DESIGN.md §16): a respawned shard stays OUT of the ring
// until its anti-entropy sync completes and its hint queue drains —
// traffic during the window routes around it, and writes that race the
// window are visible after entry, never dropped in the gap between
// "sync finished" and "in the ring".
func TestRouterReadmissionOrdering(t *testing.T) {
	c := newTestCluster(t, 3)
	cfg := fastProbes()
	hold := make(chan struct{})
	entered := make(chan int, 1)
	cfg.SyncHook = func(shard int) {
		entered <- shard
		<-hold
	}
	r := newTestRouter(t, c, cfg)
	for i := 0; i < 30; i++ {
		if err := r.Set(fmt.Sprintf("ro%d", i), []byte("pre")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	if err := c.Kill(1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, time.Second, "fence", func() bool { return r.Counters()["failovers"] >= 1 })
	// Writes during the outage: acked off the live members, hinted for 1.
	for i := 0; i < 30; i++ {
		if err := r.Set(fmt.Sprintf("ro%d", i), []byte("during")); err != nil {
			t.Fatalf("Set during outage: %v", err)
		}
	}
	if err := c.Respawn(1); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	// The sync runs and blocks in the hook — after reconcile and drain,
	// before ring entry. The shard must still be invisible to routing.
	<-entered
	if r.InRing(1) {
		t.Fatal("shard entered the ring while its sync window was still open")
	}
	if n := r.Counters()["readmits"]; n != 0 {
		t.Fatalf("readmits = %d with the sync window held open", n)
	}
	// Traffic during the held window routes around the syncing shard and
	// keeps queueing hints for it.
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("ro%d", i)
		if err := r.Set(key, []byte("window")); err != nil {
			t.Fatalf("Set during sync window: %v", err)
		}
		if v, ok, err := r.Get(key); err != nil || !ok || string(v) != "window" {
			t.Fatalf("Get during sync window = %q ok=%v err=%v", v, ok, err)
		}
	}
	close(hold)
	waitFor(t, time.Second, "readmission", func() bool { return r.InRing(1) })
	if n := r.Counters()["repl.hints_drained"]; n == 0 {
		t.Fatal("no hint was drained into the readmitted shard")
	}
	// Everything written while the shard was out — including during the
	// held window — is on its store before it serves a single read.
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("ro%d", i)
		sealed, flags, ok := c.Store(1).Get(key)
		if !ok {
			t.Fatalf("readmitted shard missing %s", key)
		}
		if v, okv := memcached.OpenValue(key, flags, sealed); !okv || string(v) != "window" {
			t.Fatalf("readmitted shard holds %q for %s, want the window write", v, key)
		}
		if v, ok, err := r.Get(key); err != nil || !ok || string(v) != "window" {
			t.Fatalf("Get after readmit = %q ok=%v err=%v", v, ok, err)
		}
	}
}

// TestHandoffOverflowTypedError pins the hint queue's backpressure
// contract: the bound trips into the typed ErrHandoffOverflow, the
// queue is discarded with the loss counted, and the shard is flagged
// for a forced full sync. Per-key dedup means only distinct keys count
// against the bound.
func TestHandoffOverflowTypedError(t *testing.T) {
	h := newHandoff(2, 3)
	for i := 0; i < 3; i++ {
		if d, err := h.enqueue(1, hint{key: fmt.Sprintf("k%d", i)}); err != nil || d != 0 {
			t.Fatalf("enqueue %d: discarded=%d err=%v", i, d, err)
		}
	}
	// Same-key updates replace in place — no growth, no overflow.
	if d, err := h.enqueue(1, hint{key: "k0", flags: 7}); err != nil || d != 0 {
		t.Fatalf("dedup enqueue: discarded=%d err=%v", d, err)
	}
	if n := h.pending(1); n != 3 {
		t.Fatalf("pending = %d after dedup, want 3", n)
	}
	d, err := h.enqueue(1, hint{key: "k3"})
	if !errors.Is(err, ErrHandoffOverflow) {
		t.Fatalf("overflow enqueue err = %v, want ErrHandoffOverflow", err)
	}
	if d != 3 {
		t.Fatalf("overflow discarded %d hints, want the whole queue of 3", d)
	}
	if h.pending(1) != 0 {
		t.Fatal("queue not flushed on overflow")
	}
	if !h.needsFullSync(1) {
		t.Fatal("overflow did not flag the shard for a forced full sync")
	}
	if h.needsFullSync(0) {
		t.Fatal("overflow leaked onto an unrelated shard")
	}
	h.clearFullSync(1)
	if h.needsFullSync(1) {
		t.Fatal("clearFullSync did not reset the flag")
	}
}

// TestRouterHandoffOverflowForcesFullSync: a long outage overflows the
// hint queue; readmission must then take the full-segment pull (no
// digest shortcut) and still end zero-loss — every key written during
// the outage is on the readmitted shard.
func TestRouterHandoffOverflowForcesFullSync(t *testing.T) {
	c := newTestCluster(t, 3)
	cfg := fastProbes()
	cfg.HandoffLimit = 4
	r := newTestRouter(t, c, cfg)
	if err := c.Kill(1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, time.Second, "fence", func() bool { return r.Counters()["failovers"] >= 1 })
	const n = 60
	for i := 0; i < n; i++ {
		if err := r.Set(fmt.Sprintf("of%d", i), []byte("v")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	cs := r.Counters()
	if cs["repl.hint_overflows"] == 0 {
		t.Fatalf("no overflow after %d writes against a %d-hint bound (counters %v)", n, cfg.HandoffLimit, cs)
	}
	if cs["repl.hints_discarded"] == 0 {
		t.Fatal("overflow discarded nothing — the loss went uncounted")
	}
	if err := c.Respawn(1); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	waitFor(t, time.Second, "readmission", func() bool { return r.InRing(1) })
	if got := r.Counters()["repl.full_syncs"]; got == 0 {
		t.Fatal("overflowed shard readmitted without a forced full sync")
	}
	// Zero-loss despite the discarded hints: the full pull recovered
	// every key the queue could no longer bound.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("of%d", i)
		if v, ok, err := r.Get(key); err != nil || !ok || string(v) != "v" {
			t.Fatalf("Get %s after full-sync readmission = %q ok=%v err=%v", key, v, ok, err)
		}
	}
}

// TestRouterOverflowDuringSyncWindow: the hint queue overflows INSIDE a
// readmission's unlocked sync window (after reconcile and drain, before
// the pre-entry checks). The wipe leaves pending==0, so without the
// overflow-epoch re-check the shard would pass the queue-empty gate and
// enter the ring missing every acked write the queue discarded. The
// epoch re-check must force another round, which re-reads the full-sync
// flag and re-pulls — zero-loss holds.
func TestRouterOverflowDuringSyncWindow(t *testing.T) {
	c := newTestCluster(t, 3)
	cfg := fastProbes()
	cfg.HandoffLimit = 4
	const n = 40
	var r *Router // assigned before Kill, so before any sync can run
	cfg.SyncHook = func(shard int) {
		// Runs on shard 1's prober goroutine with the queue just drained:
		// acked writes from here overflow the 4-hint bound mid-window.
		for i := 0; i < n; i++ {
			if err := r.Set(fmt.Sprintf("sw%d", i), []byte("w")); err != nil {
				t.Errorf("Set during sync window: %v", err)
			}
		}
	}
	r = newTestRouter(t, c, cfg)
	if err := c.Kill(1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, time.Second, "fence", func() bool { return r.Counters()["failovers"] >= 1 })
	if err := c.Respawn(1); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	waitFor(t, 2*time.Second, "readmission", func() bool { return r.InRing(1) })
	cs := r.Counters()
	if cs["repl.hint_overflows"] == 0 {
		t.Fatalf("the sync-window writes never overflowed the %d-hint bound (counters %v)", cfg.HandoffLimit, cs)
	}
	if cs["repl.sync_retries"] == 0 {
		t.Fatal("mid-window overflow did not force another sync round — the wiped queue read as a clean drain")
	}
	if cs["repl.full_syncs"] == 0 {
		t.Fatal("shard entered the ring without the forced full sync the overflow demands")
	}
	// Zero-loss: every write acked during the window is on the
	// readmitted shard's store wherever the ring makes it a member.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("sw%d", i)
		if v, ok, err := r.Get(key); err != nil || !ok || string(v) != "w" {
			t.Fatalf("Get %s after readmission = %q ok=%v err=%v", key, v, ok, err)
		}
		for _, s := range replicaSetOf(r, key) {
			if s == 1 {
				if _, _, ok := c.Store(1).Get(key); !ok {
					t.Fatalf("readmitted shard is a member for %s but does not hold it", key)
				}
			}
		}
	}
}

// TestRouterGenerationGC: a ring-generation advance lets the router's
// maintain sweep reclaim both unbounded stores — per-key stamps-map
// entries below the new generation floor and tombstones on every shard
// — while the stamp-floor rule keeps a zombie of a purged delete from
// re-inserting, and legitimate data survives untouched.
func TestRouterGenerationGC(t *testing.T) {
	c := newTestCluster(t, 3)
	r := newTestRouter(t, c, fastProbes())
	const total, deleted = 20, 10
	for i := 0; i < total; i++ {
		if err := r.Set(fmt.Sprintf("gc%d", i), []byte("v")); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	// Capture one victim's stored bytes pre-delete: the zombie is this
	// exact write arriving late, after its tombstone has been purged.
	set := replicaSetOf(r, "gc0")
	sealed, oldFlags, ok := c.Store(set[0]).Get("gc0")
	if !ok {
		t.Fatal("acked write missing from its primary")
	}
	for i := 0; i < deleted; i++ {
		if _, err := r.Delete(fmt.Sprintf("gc%d", i)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	// Tombstones are physically present until a generation advance.
	if _, flags, ok := c.Store(set[0]).Get("gc0"); !ok || flags&tombBit == 0 {
		t.Fatalf("no tombstone on the primary before GC: ok=%v flags=%x", ok, flags)
	}
	// Bounce a shard: fence + readmit advances the generation past the
	// floor every pre-bounce stamp was minted under.
	if err := c.Kill(1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	waitFor(t, time.Second, "fence", func() bool { return r.Counters()["failovers"] >= 1 })
	if err := c.Respawn(1); err != nil {
		t.Fatalf("Respawn: %v", err)
	}
	waitFor(t, 2*time.Second, "readmission", func() bool { return r.InRing(1) })
	waitFor(t, 2*time.Second, "generation-floor sweep", func() bool {
		return r.Counters()["repl.tombs_purged"] > 0
	})
	if n := r.Counters()["repl.stamps_pruned"]; n != total {
		t.Fatalf("repl.stamps_pruned = %d, want %d (every pre-bounce key)", n, total)
	}
	r.mu.Lock()
	left := len(r.stamps)
	r.mu.Unlock()
	if left != 0 {
		t.Fatalf("stamps map still holds %d entries after the sweep", left)
	}
	// Tombstones are gone from every store...
	for s := 0; s < c.NumShards(); s++ {
		if _, flags, ok := c.Store(s).Get("gc0"); ok {
			t.Fatalf("shard %d still holds gc0 (flags %x) after the purge", s, flags)
		}
	}
	// ...yet the zombie still cannot re-insert: the purge recorded the
	// floor on each store, and the late write's stamp sits below it.
	for s := 0; s < c.NumShards(); s++ {
		if c.Store(s).SetLWW("gc0", sealed, oldFlags) {
			t.Fatalf("shard %d: zombie write with stamp %x re-inserted after its tombstone was purged", s, oldFlags)
		}
	}
	if _, ok, _ := r.Get("gc0"); ok {
		t.Fatal("zombie resurrected a deleted key after tombstone GC")
	}
	// Legitimate state survives the sweep: kept keys read back, deleted
	// keys stay authoritative misses, and new writes land normally.
	for i := deleted; i < total; i++ {
		key := fmt.Sprintf("gc%d", i)
		if v, ok, err := r.Get(key); err != nil || !ok || string(v) != "v" {
			t.Fatalf("Get %s after GC = %q ok=%v err=%v", key, v, ok, err)
		}
	}
	for i := 0; i < deleted; i++ {
		if _, ok, _ := r.Get(fmt.Sprintf("gc%d", i)); ok {
			t.Fatalf("deleted key gc%d visible after GC", i)
		}
	}
	if err := r.Set("gc0", []byte("v2")); err != nil {
		t.Fatalf("Set after GC: %v", err)
	}
	if v, ok, err := r.Get("gc0"); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("rewrite after GC = %q ok=%v err=%v", v, ok, err)
	}
}
