package cluster

import "sort"

// ring is the consistent-hash routing table with replica sets and
// per-member tenure generations — the data structure behind failover
// fencing and, since DESIGN.md §16, behind replication.
//
// Every shard contributes a fixed set of virtual nodes whose positions
// depend only on (shard, replica), so the full point set never changes:
// a dead shard's points stay on the circle, marked down, and a respawned
// shard reclaims exactly the ranges it had. The gaps between consecutive
// points are the atomic ownership segments; each segment is served by
// the first rf distinct up shards at or after it (clockwise) — the
// primary plus its successor replicas.
//
// Each segment remembers, per member, the ring generation at which that
// member's current continuous tenure in the set began ("joined"). The
// generation is the staleness fence: the router stamps every stored
// value, and a hit whose stamp predates the serving member's tenure is
// a copy from before that member (re)joined the set — it may have
// missed writes, so it is never trusted as an answer. A member admitted
// through anti-entropy sync (enter) is fully trusted instead: the sync
// proved its store equals the live members' contents, so its joined
// stamp is 1 and even old stamps are honored.
//
// The ring itself is not goroutine-safe; the Router serializes access.
type ring struct {
	replicas int // virtual nodes per shard
	rf       int // replication factor: members per segment (≥1)
	points   []ringPoint
	up       []bool // by shard
	nUp      int
	gen      uint64
	segs     []segment // by segment (segment i ends at points[i])
}

// maxReplication bounds rf so per-segment member sets are fixed arrays
// and route lookups stay allocation-free.
const maxReplication = 4

// segment is one arc's replica set: n up members, primary first, and
// the generation each member's current tenure began.
type segment struct {
	n      int
	shard  [maxReplication]int
	joined [maxReplication]uint64
}

type ringPoint struct {
	pos   uint64
	shard int
}

// newRing builds the table with every shard up, at generation 1.
func newRing(shards, replicas, rf int) *ring {
	if replicas <= 0 {
		replicas = 32
	}
	if rf <= 0 {
		rf = 1
	}
	if rf > maxReplication {
		rf = maxReplication
	}
	if rf > shards {
		rf = shards
	}
	r := &ring{
		replicas: replicas,
		rf:       rf,
		points:   make([]ringPoint, 0, shards*replicas),
		up:       make([]bool, shards),
		nUp:      shards,
		gen:      1,
	}
	for s := 0; s < shards; s++ {
		r.up[s] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{pos: pointHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
	r.segs = make([]segment, len(r.points))
	for i := range r.segs {
		r.segs[i] = r.membersAt(i, -1)
		for k := 0; k < r.segs[i].n; k++ {
			r.segs[i].joined[k] = 1
		}
	}
	return r
}

// pointHash places virtual node v of shard s; splitmix over the pair so
// the positions are deterministic and well spread.
func pointHash(s, v int) uint64 {
	x := uint64(s)*0x9e3779b97f4a7c15 + uint64(v)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// membersAt resolves segment i's replica set under the current up set:
// the first rf distinct up shards at or after i, clockwise. extra, if
// ≥ 0, is treated as up even when it is not (the hypothetical lookup
// wouldServe uses to plan an anti-entropy sync). joined stamps are left
// zero; callers fill them.
func (r *ring) membersAt(i, extra int) segment {
	var seg segment
	for k := 0; k < len(r.points) && seg.n < r.rf; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !r.up[p.shard] && p.shard != extra {
			continue
		}
		dup := false
		for j := 0; j < seg.n; j++ {
			if seg.shard[j] == p.shard {
				dup = true
				break
			}
		}
		if !dup {
			seg.shard[seg.n] = p.shard
			seg.n++
		}
	}
	return seg
}

// recompute rebuilds every segment's replica set after a membership
// flip. A member continuing in its segment's set keeps its joined
// stamp (uninterrupted tenure: it saw every acked write, so its older
// values stay valid); a member newly (re)joining is stamped with the
// fresh generation, so any value it held from before this tenure is
// rejected until read-repair or a later write refreshes it. trusted,
// if ≥ 0, names a shard whose store was just proven complete by
// anti-entropy: it joins with stamp 1 (full trust) instead.
func (r *ring) recompute(trusted int) {
	for i := range r.segs {
		next := r.membersAt(i, -1)
		old := &r.segs[i]
		for k := 0; k < next.n; k++ {
			next.joined[k] = r.gen
			if next.shard[k] == trusted {
				next.joined[k] = 1
				continue
			}
			for j := 0; j < old.n; j++ {
				if old.shard[j] == next.shard[k] {
					next.joined[k] = old.joined[j]
					break
				}
			}
		}
		r.segs[i] = next
	}
}

// setUp flips a shard's membership and recomputes the replica sets.
// Returns the new generation. A no-op flip still returns the current
// generation.
func (r *ring) setUp(shard int, up bool) uint64 {
	if r.up[shard] == up {
		return r.gen
	}
	r.up[shard] = up
	if up {
		r.nUp++
	} else {
		r.nUp--
	}
	r.gen++
	r.recompute(-1)
	return r.gen
}

// enter admits shard with full trust: anti-entropy sync has proven its
// store holds everything the live members hold for every segment it is
// about to serve, so its values — whatever their stamps — are honored.
// Only the sync path may call this; a cold or stale shard admitted via
// setUp instead is distrusted until the fresh generation.
func (r *ring) enter(shard int) uint64 {
	if r.up[shard] {
		return r.gen
	}
	r.up[shard] = true
	r.nUp++
	r.gen++
	r.recompute(shard)
	return r.gen
}

// segIndex locates the segment owning a key hash.
func (r *ring) segIndex(keyHash uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= keyHash })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// lookup routes a key hash to its primary: the first member of the
// owning segment's replica set and that member's tenure generation
// (the staleness floor for values it serves). ok is false when no
// shard is up.
func (r *ring) lookup(keyHash uint64) (shard int, acquired uint64, ok bool) {
	if r.nUp == 0 {
		return -1, 0, false
	}
	seg := &r.segs[r.segIndex(keyHash)]
	if seg.n == 0 {
		return -1, 0, false
	}
	return seg.shard[0], seg.joined[0], true
}

// lookupSet copies the full replica set for a key hash (primary first).
func (r *ring) lookupSet(keyHash uint64) (seg segment, ok bool) {
	if r.nUp == 0 {
		return segment{}, false
	}
	seg = r.segs[r.segIndex(keyHash)]
	return seg, seg.n > 0
}

// segRange is one segment's key-hash arc, inclusive on both ends; lo >
// hi means the arc wraps the top of the hash space. The bounds feed
// memcached.Store.RangeDigest / RangeKeys directly (same hash).
type segRange struct {
	seg    int
	lo, hi uint64
}

// rangeOf returns segment i's key-hash arc. Segment i holds the hashes
// located by segIndex to points[i]: (points[i-1].pos, points[i].pos],
// wrapping for i == 0.
func (r *ring) rangeOf(i int) segRange {
	prev := (i + len(r.points) - 1) % len(r.points)
	return segRange{seg: i, lo: r.points[prev].pos + 1, hi: r.points[i].pos}
}

// hintFor lists the down (or not-yet-entered) shards that would be in
// the replica set for keyHash if every shard were up — the
// hinted-handoff targets for a write routed now.
func (r *ring) hintFor(keyHash uint64, out []int) []int {
	full := r.hypothetical(r.segIndex(keyHash))
	for k := 0; k < full.n; k++ {
		if s := full.shard[k]; !r.up[s] {
			out = append(out, s)
		}
	}
	return out
}

// hypothetical resolves segment i's replica set as if every shard were
// up — the set the segment converges to once current failures heal.
func (r *ring) hypothetical(i int) segment {
	var seg segment
	for k := 0; k < len(r.points) && seg.n < r.rf; k++ {
		p := r.points[(i+k)%len(r.points)]
		dup := false
		for j := 0; j < seg.n; j++ {
			if seg.shard[j] == p.shard {
				dup = true
				break
			}
		}
		if !dup {
			seg.shard[seg.n] = p.shard
			seg.n++
		}
	}
	return seg
}

// wouldServe lists the segments shard would be a set member of once
// admitted — the anti-entropy sync plan. Adjacent segments are not
// merged; the store digests each arc independently.
func (r *ring) wouldServe(shard int) []segRange {
	var out []segRange
	for i := range r.segs {
		seg := r.membersAt(i, shard)
		for k := 0; k < seg.n; k++ {
			if seg.shard[k] == shard {
				out = append(out, r.rangeOf(i))
				break
			}
		}
	}
	return out
}

// keyHash positions a key on the circle (FNV-1a, the repo's standard —
// identical to memcached.KeyHash, so ring arcs align with store hash
// ranges).
func keyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}
