package cluster

import "sort"

// ring is the consistent-hash routing table with ownership generations —
// the data structure behind the router's failover fencing.
//
// Every shard contributes a fixed set of virtual nodes whose positions
// depend only on (shard, replica), so the full point set never changes:
// a dead shard's points stay on the circle, marked down, and a respawned
// shard reclaims exactly the ranges it had. The gaps between consecutive
// points are the atomic ownership segments; each segment is owned by the
// first up shard at or after it (clockwise), and remembers the ring
// generation at which that owner took over.
//
// The generation is the staleness fence. The router stamps every stored
// value with the generation current at write time; a get whose stored
// stamp is older than the current owner's acquisition generation proves
// the value was written under a previous owner's tenure — a survivor's
// copy from a failover window — and is served as a miss instead of a
// silently wrong answer. That check is what makes kill → reroute →
// respawn → re-kill sequences safe without any cross-shard invalidation
// traffic (see DESIGN.md §14).
//
// The ring itself is not goroutine-safe; the Router serializes access.
type ring struct {
	replicas int
	points   []ringPoint // sorted by position, fixed for the ring's lifetime
	up       []bool      // by shard
	nUp      int
	gen      uint64
	owner    []int    // by segment (segment i ends at points[i])
	acquired []uint64 // by segment: generation its owner took over
}

type ringPoint struct {
	pos   uint64
	shard int
}

// newRing builds the table with every shard up, at generation 1.
func newRing(shards, replicas int) *ring {
	if replicas <= 0 {
		replicas = 32
	}
	r := &ring{
		replicas: replicas,
		points:   make([]ringPoint, 0, shards*replicas),
		up:       make([]bool, shards),
		nUp:      shards,
		gen:      1,
	}
	for s := 0; s < shards; s++ {
		r.up[s] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{pos: pointHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
	r.owner = make([]int, len(r.points))
	r.acquired = make([]uint64, len(r.points))
	for i := range r.points {
		r.owner[i] = r.ownerAt(i)
		r.acquired[i] = 1
	}
	return r
}

// pointHash places virtual node v of shard s; splitmix over the pair so
// the positions are deterministic and well spread.
func pointHash(s, v int) uint64 {
	x := uint64(s)*0x9e3779b97f4a7c15 + uint64(v)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ownerAt resolves segment i's owner under the current up set: the first
// up point at or after i, clockwise. Returns -1 with no shard up.
func (r *ring) ownerAt(i int) int {
	for k := 0; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if r.up[p.shard] {
			return p.shard
		}
	}
	return -1
}

// setUp flips a shard's membership and recomputes segment ownership.
// Segments whose owner changed acquire the new generation; unchanged
// segments keep their acquisition stamp (their owner's tenure is
// uninterrupted, so older values there stay valid). Returns the new
// generation. A no-op flip still returns the current generation.
func (r *ring) setUp(shard int, up bool) uint64 {
	if r.up[shard] == up {
		return r.gen
	}
	r.up[shard] = up
	if up {
		r.nUp++
	} else {
		r.nUp--
	}
	r.gen++
	for i := range r.points {
		o := r.ownerAt(i)
		if o != r.owner[i] {
			r.owner[i] = o
			r.acquired[i] = r.gen
		}
	}
	return r.gen
}

// fenceKey bumps the generation and re-stamps the acquisition of the
// single segment owning keyHash, without any membership change — the
// zombie-write fence. A Set that times out (or tears its stream) may
// still be delivered by the network arbitrarily later; its stamp is the
// generation current when it was sent, so raising the segment's acquired
// above that guarantees the late write can only ever be read as a
// rejected-stale miss, never as a resurrected old value. Collateral:
// other keys of the same segment also age out — a bounded miss cost,
// which fresh-or-miss permits.
func (r *ring) fenceKey(keyHash uint64) uint64 {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= keyHash })
	if i == len(r.points) {
		i = 0
	}
	r.gen++
	r.acquired[i] = r.gen
	return r.gen
}

// lookup routes a key hash: the owning shard and the generation at which
// it acquired the key's segment. ok is false when no shard is up.
func (r *ring) lookup(keyHash uint64) (shard int, acquired uint64, ok bool) {
	if r.nUp == 0 {
		return -1, 0, false
	}
	// First point at or after the hash, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= keyHash })
	if i == len(r.points) {
		i = 0
	}
	return r.owner[i], r.acquired[i], r.owner[i] >= 0
}

// keyHash positions a key on the circle (FNV-1a, the repo's standard).
func keyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}
