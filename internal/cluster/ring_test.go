package cluster

import (
	"fmt"
	"testing"
)

// TestRingBalance checks that consistent hashing spreads keys reasonably
// across shards: with 32 vnodes each, no shard should own less than a
// third of its fair share.
func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20000
	r := newRing(shards, 0, 1)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		s, _, ok := r.lookup(keyHash(fmt.Sprintf("user%d", i)))
		if !ok {
			t.Fatal("lookup failed with all shards up")
		}
		counts[s]++
	}
	fair := keys / shards
	for s, n := range counts {
		if n < fair/3 {
			t.Errorf("shard %d owns %d of %d keys, under a third of fair share %d", s, n, keys, fair)
		}
	}
}

// TestRingFixedPoints: two rings with the same shape place every virtual
// node identically — the point set is a pure function of (shard, replica),
// so routers built at different times agree.
func TestRingFixedPoints(t *testing.T) {
	a, b := newRing(5, 16, 1), newRing(5, 16, 1)
	if len(a.points) != len(b.points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i] != b.points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.points[i], b.points[i])
		}
	}
}

// TestRingMinimalMovement: fencing one shard must not move any key that a
// surviving shard already owned.
func TestRingMinimalMovement(t *testing.T) {
	const shards, keys = 4, 5000
	r := newRing(shards, 0, 1)
	before := make([]int, keys)
	for i := range before {
		before[i], _, _ = r.lookup(keyHash(fmt.Sprintf("k%d", i)))
	}
	r.setUp(1, false)
	for i := range before {
		after, _, ok := r.lookup(keyHash(fmt.Sprintf("k%d", i)))
		if !ok {
			t.Fatal("lookup failed with three shards up")
		}
		if before[i] != 1 && after != before[i] {
			t.Fatalf("key k%d moved %d -> %d though its owner survived", i, before[i], after)
		}
		if before[i] == 1 && after == 1 {
			t.Fatalf("key k%d still routed to the fenced shard", i)
		}
	}
}

// findKeyOwnedBy returns a key the ring currently routes to shard.
func findKeyOwnedBy(t *testing.T, r *ring, shard int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("probe%d", i)
		if s, _, _ := r.lookup(keyHash(k)); s == shard {
			return k
		}
	}
	t.Fatalf("no key routed to shard %d", shard)
	return ""
}

// TestRingAcquiredGenerations walks the kill -> failback -> re-kill
// sequence and checks the staleness arithmetic at each step: a value
// stamped during a previous owner's tenure must compare below the current
// acquisition generation exactly when it could be a stale survivor copy.
func TestRingAcquiredGenerations(t *testing.T) {
	r := newRing(2, 0, 1)
	key := findKeyOwnedBy(t, r, 0)
	h := keyHash(key)

	_, acq, _ := r.lookup(h)
	if acq != 1 {
		t.Fatalf("initial acquisition generation = %d, want 1", acq)
	}
	stampA := r.gen // value written to shard 0 now

	if g := r.setUp(0, false); g != 2 {
		t.Fatalf("first fence -> generation %d, want 2", g)
	}
	s, acq, _ := r.lookup(h)
	if s != 0 && acq != 2 {
		t.Fatalf("failover segment: owner %d acquired %d, want acquired 2", s, acq)
	}
	if stampA >= acq {
		t.Fatalf("shard 0's copy (stamp %d) must look stale to the survivor's tenure (acquired %d)", stampA, acq)
	}
	stampB := r.gen // value written to the survivor during the window

	if g := r.setUp(0, true); g != 3 {
		t.Fatalf("readmit -> generation %d, want 3", g)
	}
	s, acq, _ = r.lookup(h)
	if s != 0 || acq != 3 {
		t.Fatalf("after readmit owner=%d acquired=%d, want shard 0 acquired 3", s, acq)
	}

	if g := r.setUp(0, false); g != 4 {
		t.Fatalf("re-kill -> generation %d, want 4", g)
	}
	_, acq, _ = r.lookup(h)
	if stampB >= acq {
		t.Fatalf("survivor's window copy (stamp %d) must be fenced by re-acquisition (acquired %d)", stampB, acq)
	}
}

// TestRingUnchangedSegmentsKeepStamps: a membership change elsewhere must
// not invalidate values on segments whose owner did not change.
func TestRingUnchangedSegmentsKeepStamps(t *testing.T) {
	r := newRing(4, 0, 1)
	key := findKeyOwnedBy(t, r, 3)
	h := keyHash(key)
	stamp := r.gen
	r.setUp(1, false) // unrelated shard dies
	s, acq, _ := r.lookup(h)
	if s == 3 && stamp < acq {
		t.Fatalf("shard 3 kept the segment but its old values (stamp %d) would be rejected (acquired %d)", stamp, acq)
	}
}

// TestRingReplicaSets: with rf=2 every segment's set is two distinct up
// shards, primary first, and fencing a member replaces only it — the
// survivor keeps both its slot and its tenure stamp.
func TestRingReplicaSets(t *testing.T) {
	r := newRing(3, 0, 2)
	for i := range r.segs {
		seg := r.segs[i]
		if seg.n != 2 {
			t.Fatalf("segment %d has %d members, want 2", i, seg.n)
		}
		if seg.shard[0] == seg.shard[1] {
			t.Fatalf("segment %d lists shard %d twice", i, seg.shard[0])
		}
		if seg.joined[0] != 1 || seg.joined[1] != 1 {
			t.Fatalf("segment %d initial tenures %v, want full trust", i, seg.joined[:2])
		}
	}
	r.setUp(1, false)
	for i := range r.segs {
		seg := r.segs[i]
		if seg.n != 2 {
			t.Fatalf("segment %d has %d members after one fence of three, want 2", i, seg.n)
		}
		for k := 0; k < seg.n; k++ {
			if seg.shard[k] == 1 {
				t.Fatalf("segment %d still lists the fenced shard", i)
			}
			// A member that was already in this set keeps joined=1; a
			// reshuffle-joiner carries the fresh generation (distrusted
			// for values stamped before it).
			if seg.joined[k] != 1 && seg.joined[k] != r.gen {
				t.Fatalf("segment %d member %d joined=%d, want 1 (tenure kept) or %d (fresh)", i, seg.shard[k], seg.joined[k], r.gen)
			}
		}
	}
}

// TestRingEnterFullTrust: a shard admitted through enter (anti-entropy
// proven) joins every set with stamp 1, so its pre-outage values are
// honored; the same shard admitted through setUp is distrusted at the
// fresh generation.
func TestRingEnterFullTrust(t *testing.T) {
	a, b := newRing(3, 0, 2), newRing(3, 0, 2)
	a.setUp(0, false)
	b.setUp(0, false)
	a.enter(0)
	b.setUp(0, true)
	for i := range a.segs {
		for k := 0; k < a.segs[i].n; k++ {
			if a.segs[i].shard[k] == 0 && a.segs[i].joined[k] != 1 {
				t.Fatalf("entered shard joined segment %d at %d, want full trust 1", i, a.segs[i].joined[k])
			}
		}
	}
	distrusted := false
	for i := range b.segs {
		for k := 0; k < b.segs[i].n; k++ {
			if b.segs[i].shard[k] == 0 && b.segs[i].joined[k] == b.gen {
				distrusted = true
			}
		}
	}
	if !distrusted {
		t.Fatal("setUp-admitted shard was never stamped with the fresh generation")
	}
}

// TestRingHintTargets: hintFor names exactly the down members of a
// key's converged (all-up) replica set — the shards a write routed now
// must queue hints for.
func TestRingHintTargets(t *testing.T) {
	r := newRing(3, 0, 2)
	r.setUp(1, false)
	var buf [maxReplication]int
	sawHint := false
	for i := 0; i < 2000; i++ {
		h := keyHash(fmt.Sprintf("hint%d", i))
		full := r.hypothetical(r.segIndex(h))
		inFull := false
		for k := 0; k < full.n; k++ {
			if full.shard[k] == 1 {
				inFull = true
			}
		}
		hints := r.hintFor(h, buf[:0])
		if inFull {
			if len(hints) != 1 || hints[0] != 1 {
				t.Fatalf("key in shard 1's converged set got hints %v, want [1]", hints)
			}
			sawHint = true
		} else if len(hints) != 0 {
			t.Fatalf("key outside shard 1's converged set got hints %v", hints)
		}
	}
	if !sawHint {
		t.Fatal("no key's converged set ever included the down shard")
	}
}

// TestRingWouldServe: the sync plan covers exactly the segments the
// entering shard will serve, and every planned arc routes to that
// segment (the store-digest bounds line up with segIndex).
func TestRingWouldServe(t *testing.T) {
	r := newRing(3, 0, 2)
	r.setUp(2, false)
	plan := r.wouldServe(2)
	if len(plan) == 0 {
		t.Fatal("empty sync plan for a returning shard")
	}
	for _, arc := range plan {
		seg := r.membersAt(arc.seg, 2)
		found := false
		for k := 0; k < seg.n; k++ {
			if seg.shard[k] == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("planned segment %d would not include the entering shard", arc.seg)
		}
		if got := r.segIndex(arc.hi); got != arc.seg {
			t.Fatalf("arc hi bound %d routes to segment %d, want %d", arc.hi, got, arc.seg)
		}
	}
}

// TestRingAllDown: lookup reports no owner rather than inventing one.
func TestRingAllDown(t *testing.T) {
	r := newRing(2, 0, 1)
	r.setUp(0, false)
	r.setUp(1, false)
	if _, _, ok := r.lookup(keyHash("k")); ok {
		t.Fatal("lookup succeeded with every shard fenced")
	}
	r.setUp(0, true)
	if _, _, ok := r.lookup(keyHash("k")); !ok {
		t.Fatal("lookup failed after a shard returned")
	}
}
