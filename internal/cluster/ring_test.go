package cluster

import (
	"fmt"
	"testing"
)

// TestRingBalance checks that consistent hashing spreads keys reasonably
// across shards: with 32 vnodes each, no shard should own less than a
// third of its fair share.
func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20000
	r := newRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		s, _, ok := r.lookup(keyHash(fmt.Sprintf("user%d", i)))
		if !ok {
			t.Fatal("lookup failed with all shards up")
		}
		counts[s]++
	}
	fair := keys / shards
	for s, n := range counts {
		if n < fair/3 {
			t.Errorf("shard %d owns %d of %d keys, under a third of fair share %d", s, n, keys, fair)
		}
	}
}

// TestRingFixedPoints: two rings with the same shape place every virtual
// node identically — the point set is a pure function of (shard, replica),
// so routers built at different times agree.
func TestRingFixedPoints(t *testing.T) {
	a, b := newRing(5, 16), newRing(5, 16)
	if len(a.points) != len(b.points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i] != b.points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.points[i], b.points[i])
		}
	}
}

// TestRingMinimalMovement: fencing one shard must not move any key that a
// surviving shard already owned.
func TestRingMinimalMovement(t *testing.T) {
	const shards, keys = 4, 5000
	r := newRing(shards, 0)
	before := make([]int, keys)
	for i := range before {
		before[i], _, _ = r.lookup(keyHash(fmt.Sprintf("k%d", i)))
	}
	r.setUp(1, false)
	for i := range before {
		after, _, ok := r.lookup(keyHash(fmt.Sprintf("k%d", i)))
		if !ok {
			t.Fatal("lookup failed with three shards up")
		}
		if before[i] != 1 && after != before[i] {
			t.Fatalf("key k%d moved %d -> %d though its owner survived", i, before[i], after)
		}
		if before[i] == 1 && after == 1 {
			t.Fatalf("key k%d still routed to the fenced shard", i)
		}
	}
}

// findKeyOwnedBy returns a key the ring currently routes to shard.
func findKeyOwnedBy(t *testing.T, r *ring, shard int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("probe%d", i)
		if s, _, _ := r.lookup(keyHash(k)); s == shard {
			return k
		}
	}
	t.Fatalf("no key routed to shard %d", shard)
	return ""
}

// TestRingAcquiredGenerations walks the kill -> failback -> re-kill
// sequence and checks the staleness arithmetic at each step: a value
// stamped during a previous owner's tenure must compare below the current
// acquisition generation exactly when it could be a stale survivor copy.
func TestRingAcquiredGenerations(t *testing.T) {
	r := newRing(2, 0)
	key := findKeyOwnedBy(t, r, 0)
	h := keyHash(key)

	_, acq, _ := r.lookup(h)
	if acq != 1 {
		t.Fatalf("initial acquisition generation = %d, want 1", acq)
	}
	stampA := r.gen // value written to shard 0 now

	if g := r.setUp(0, false); g != 2 {
		t.Fatalf("first fence -> generation %d, want 2", g)
	}
	s, acq, _ := r.lookup(h)
	if s != 0 && acq != 2 {
		t.Fatalf("failover segment: owner %d acquired %d, want acquired 2", s, acq)
	}
	if stampA >= acq {
		t.Fatalf("shard 0's copy (stamp %d) must look stale to the survivor's tenure (acquired %d)", stampA, acq)
	}
	stampB := r.gen // value written to the survivor during the window

	if g := r.setUp(0, true); g != 3 {
		t.Fatalf("readmit -> generation %d, want 3", g)
	}
	s, acq, _ = r.lookup(h)
	if s != 0 || acq != 3 {
		t.Fatalf("after readmit owner=%d acquired=%d, want shard 0 acquired 3", s, acq)
	}

	if g := r.setUp(0, false); g != 4 {
		t.Fatalf("re-kill -> generation %d, want 4", g)
	}
	_, acq, _ = r.lookup(h)
	if stampB >= acq {
		t.Fatalf("survivor's window copy (stamp %d) must be fenced by re-acquisition (acquired %d)", stampB, acq)
	}
}

// TestRingUnchangedSegmentsKeepStamps: a membership change elsewhere must
// not invalidate values on segments whose owner did not change.
func TestRingUnchangedSegmentsKeepStamps(t *testing.T) {
	r := newRing(4, 0)
	key := findKeyOwnedBy(t, r, 3)
	h := keyHash(key)
	stamp := r.gen
	r.setUp(1, false) // unrelated shard dies
	s, acq, _ := r.lookup(h)
	if s == 3 && stamp < acq {
		t.Fatalf("shard 3 kept the segment but its old values (stamp %d) would be rejected (acquired %d)", stamp, acq)
	}
}

// TestRingAllDown: lookup reports no owner rather than inventing one.
func TestRingAllDown(t *testing.T) {
	r := newRing(2, 0)
	r.setUp(0, false)
	r.setUp(1, false)
	if _, _, ok := r.lookup(keyHash("k")); ok {
		t.Fatal("lookup succeeded with every shard fenced")
	}
	r.setUp(0, true)
	if _, _, ok := r.lookup(keyHash("k")); !ok {
		t.Fatal("lookup failed after a shard returned")
	}
}
