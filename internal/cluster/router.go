package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/memcached"
	"privagic/internal/obs"
	"privagic/internal/retry"
)

// Directory is the router's control plane: who the shards are, where the
// current incarnation of each one listens, and whether it is supposed to
// be alive. Cluster implements it in-process; the data plane stays real
// TCP. Addr must be safe for concurrent use.
type Directory interface {
	NumShards() int
	Addr(shard int) (addr string, epoch uint64, running bool)
}

// ErrNoShards is returned when every shard is fenced: the router degrades
// into fast explicit failure rather than stalling callers.
var ErrNoShards = errors.New("cluster: no shards available")

// RouterConfig tunes the client router. Zero values take the documented
// defaults.
type RouterConfig struct {
	// Replicas is the virtual nodes per shard on the hash ring (default 32).
	Replicas int
	// PoolConns caps data connections per shard (default 4). Each open
	// connection pins one shard worker, so PoolConns plus the probe
	// connection must stay at or below Config.Workers.
	PoolConns int
	// OpTimeout bounds one attempt of one operation (default 50ms). A
	// fired deadline poisons the connection; the router redials.
	OpTimeout time.Duration
	// Retry is the per-operation retry budget with exponential backoff and
	// jitter (the shared internal/retry policy, also used by prt recovery).
	// A zero policy defaults to 4 attempts with the policy's standard
	// 100µs-doubling-to-2ms backoff; set MaxAttempts to 1 to disable
	// retries.
	Retry retry.Policy
	// ProbeInterval is the per-shard health-probe period (default 25ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default OpTimeout).
	ProbeTimeout time.Duration
	// ProbeFails is how many consecutive probe failures fence a shard
	// (default 3). Data-path errors never fence directly — they only
	// schedule an immediate probe — so op timeouts under load cannot
	// trigger spurious failovers.
	ProbeFails int
	// OnFence, when set, is called (outside router locks) after a shard is
	// fenced — the supervision hook: wire it to Cluster.RespawnAfter to
	// get automatic replacement shards.
	OnFence func(shard int, epoch uint64)
	// DisableProbes turns health probing off (unit tests that drive
	// fencing by hand).
	DisableProbes bool
}

// shardState is the router's view of one shard. Fields are guarded by
// Router.mu except kick, which is immutable.
type shardState struct {
	addr        string
	epoch       uint64
	pool        *connPool
	fenced      bool
	fencedEpoch uint64
	fails       int       // consecutive probe failures
	downSince   time.Time // first failure of the current streak
	wasDown     bool      // a probe.down was recorded without a probe.up yet
	kick        chan struct{}
}

// Router is the consistent-hashing client router: it owns the ring, a
// bounded connection pool per shard, and one prober goroutine per shard.
// Operations carry per-attempt deadlines and a bounded retry budget;
// failover is probe-driven (fence on ProbeFails consecutive failures) and
// readmission requires a fresh incarnation (directory epoch beyond the
// fenced one), so a hung shard that wakes up with stale state is never
// silently re-trusted. All methods are safe for concurrent use.
//
// Every Set stamps the value's flags word with the current ring
// generation; every Get rejects a hit whose stamp predates the owning
// segment's acquisition generation (see ring). One shared Router per
// generation space: clients that must agree on staleness must share the
// instance.
type Router struct {
	cfg RouterConfig
	dir Directory

	mu     sync.Mutex
	ring   *ring
	shards []*shardState

	stop chan struct{}
	wg   sync.WaitGroup

	routes        atomic.Int64
	retries       atomic.Int64
	sheds         atomic.Int64
	routeErrors   atomic.Int64
	staleRejects  atomic.Int64
	failovers     atomic.Int64
	readmits      atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64

	tracer     *obs.Tracer
	detectHist *obs.Histogram
}

// NewRouter builds a router over dir and starts its probers.
func NewRouter(dir Directory, cfg RouterConfig) (*Router, error) {
	n := dir.NumShards()
	if n <= 0 {
		return nil, fmt.Errorf("cluster: directory has no shards")
	}
	if cfg.PoolConns <= 0 {
		cfg.PoolConns = 4
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 50 * time.Millisecond
	}
	if !cfg.Retry.Enabled() {
		cfg.Retry.MaxAttempts = 4
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.OpTimeout
	}
	if cfg.ProbeFails <= 0 {
		cfg.ProbeFails = 3
	}
	r := &Router{
		cfg:    cfg,
		dir:    dir,
		ring:   newRing(n, cfg.Replicas),
		shards: make([]*shardState, n),
		stop:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		addr, epoch, running := dir.Addr(i)
		st := &shardState{addr: addr, epoch: epoch, kick: make(chan struct{}, 1)}
		st.pool = newConnPool(addr, cfg.PoolConns, cfg.OpTimeout)
		if !running {
			st.fenced = true
			st.fencedEpoch = epoch
			r.ring.setUp(i, false)
		}
		r.shards[i] = st
	}
	if !cfg.DisableProbes {
		for i := 0; i < n; i++ {
			r.wg.Add(1)
			go r.prober(i)
		}
	}
	return r, nil
}

// Close stops the probers and closes pooled connections.
func (r *Router) Close() {
	close(r.stop)
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.shards {
		st.pool.close()
	}
}

// Instrument registers the router's metrics on reg (the cluster.* block
// of the catalogue: gauges over the router's own atomics plus the
// failover-detection histogram) and arms trace events on tracer.
func (r *Router) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	r.tracer = tracer
	r.detectHist = reg.Histogram("cluster.failover_detect_us")
	reg.Gauge("cluster.routes", r.routes.Load)
	reg.Gauge("cluster.retries", r.retries.Load)
	reg.Gauge("cluster.sheds", r.sheds.Load)
	reg.Gauge("cluster.route_errors", r.routeErrors.Load)
	reg.Gauge("cluster.stale_rejects", r.staleRejects.Load)
	reg.Gauge("cluster.failovers", r.failovers.Load)
	reg.Gauge("cluster.readmits", r.readmits.Load)
	reg.Gauge("cluster.probes", r.probes.Load)
	reg.Gauge("cluster.probe_failures", r.probeFailures.Load)
	reg.Gauge("cluster.shards_up", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.ring.nUp)
	})
	reg.Gauge("cluster.ring_generation", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.ring.gen)
	})
}

// Counters exposes the router's tallies for tests and reports.
func (r *Router) Counters() map[string]int64 {
	r.mu.Lock()
	up, gen := r.ring.nUp, r.ring.gen
	r.mu.Unlock()
	return map[string]int64{
		"routes":          r.routes.Load(),
		"retries":         r.retries.Load(),
		"sheds":           r.sheds.Load(),
		"route_errors":    r.routeErrors.Load(),
		"stale_rejects":   r.staleRejects.Load(),
		"failovers":       r.failovers.Load(),
		"readmits":        r.readmits.Load(),
		"probes":          r.probes.Load(),
		"probe_failures":  r.probeFailures.Load(),
		"shards_up":       int64(up),
		"ring_generation": int64(gen),
	}
}

// Set stores key=value on its owning shard, stamped with the current ring
// generation (the staleness fence; generations are tiny relative to the
// 32-bit flags field).
func (r *Router) Set(key string, value []byte) error {
	return r.do(key, func(c *memcached.Client, gen, _ uint64) error {
		return c.Set(key, value, uint32(gen))
	})
}

// Get fetches key from its owning shard. A hit whose generation stamp
// predates the owner's tenure over the key is a survivor's copy from a
// failover window: it is purged and served as a miss, never as a value.
func (r *Router) Get(key string) (value []byte, ok bool, err error) {
	err = r.do(key, func(c *memcached.Client, _, acquired uint64) error {
		v, flags, hit, gerr := c.GetFlags(key)
		if gerr != nil {
			return gerr
		}
		if hit && uint64(flags) < acquired {
			r.staleRejects.Add(1)
			_, _ = c.Delete(key) // best-effort purge; rejection alone is safe
			v, hit = nil, false
		}
		value, ok = v, hit
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return value, ok, nil
}

// Delete removes key from its owning shard.
func (r *Router) Delete(key string) (found bool, err error) {
	err = r.do(key, func(c *memcached.Client, _, _ uint64) error {
		f, derr := c.Delete(key)
		found = f
		return derr
	})
	return found, err
}

// Owner reports which shard currently owns key (-1 with every shard
// fenced) — a read-only routing probe for tests and the failover
// benchmark.
func (r *Router) Owner(key string) int {
	shard, _, _, _, ok := r.route(key)
	if !ok {
		return -1
	}
	return shard
}

// route resolves a key to its owning shard under the current ring: the
// pool to use, the segment's acquisition generation (Get's staleness
// floor) and the ring generation (Set's stamp).
func (r *Router) route(key string) (shard int, pool *connPool, acquired, gen uint64, ok bool) {
	h := keyHash(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, acq, ok := r.ring.lookup(h)
	if !ok {
		return -1, nil, 0, 0, false
	}
	return s, r.shards[s].pool, acq, r.ring.gen, true
}

// do runs one operation under the retry budget. Busy responses back off
// and retry (the connection stays framed); timeouts and transport errors
// poison the connection, nudge the shard's prober, and retry against
// whatever the ring then says the owner is — after a fence that is a
// survivor, so retries are how in-flight operations ride out a failover.
func (r *Router) do(key string, op func(c *memcached.Client, gen, acquired uint64) error) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			time.Sleep(r.cfg.Retry.Delay(attempt))
		}
		shard, pool, acquired, gen, ok := r.route(key)
		if !ok {
			lastErr = ErrNoShards
			continue // a probe may readmit a shard within the budget
		}
		if attempt > 0 {
			r.tracer.Record(obs.EvRouteRetry, shard, 0, 0, gen, int64(attempt))
		}
		c, err := pool.get()
		if err != nil {
			r.nudge(shard)
			lastErr = err
			continue
		}
		err = op(c, gen, acquired)
		switch {
		case err == nil:
			pool.put(c)
			r.routes.Add(1)
			return nil
		case errors.Is(err, memcached.ErrBusy):
			pool.put(c) // shed responses leave the stream framed
			lastErr = err
		default:
			pool.discard(c) // timeout or torn stream: redial next attempt
			r.nudge(shard)
			lastErr = err
		}
	}
	if errors.Is(lastErr, memcached.ErrBusy) {
		r.sheds.Add(1)
		r.tracer.Record(obs.EvRouteShed, 0, 0, 0, 0, int64(r.cfg.Retry.MaxAttempts))
	} else {
		r.routeErrors.Add(1)
	}
	return lastErr
}

// nudge schedules an immediate probe of shard (data-path failures speed
// detection up but never fence by themselves).
func (r *Router) nudge(shard int) {
	select {
	case r.shards[shard].kick <- struct{}{}:
	default:
	}
}

// prober is shard i's health loop.
func (r *Router) prober(i int) {
	defer r.wg.Done()
	st := r.shards[i]
	var conn *memcached.Client
	var connAddr string
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	timer := time.NewTimer(r.cfg.ProbeInterval)
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-timer.C:
		case <-st.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		r.probeOnce(i, &conn, &connAddr)
		timer.Reset(r.cfg.ProbeInterval)
	}
}

// probeOnce sends one health probe to shard i and applies the verdict:
// consecutive failures fence, success after a fresh incarnation readmits.
func (r *Router) probeOnce(i int, conn **memcached.Client, connAddr *string) {
	addr, epoch, running := r.dir.Addr(i)
	healthy := false
	r.probes.Add(1)
	if running {
		if *conn != nil && *connAddr != addr {
			(*conn).Close()
			*conn = nil
		}
		if *conn == nil {
			c, err := memcached.DialTimeout(addr, r.cfg.ProbeTimeout)
			if err == nil {
				c.SetTimeout(r.cfg.ProbeTimeout)
				*conn, *connAddr = c, addr
			}
		}
		if *conn != nil {
			if _, err := (*conn).Version(); err == nil {
				healthy = true
			} else {
				(*conn).Close()
				*conn = nil
			}
		}
	} else if *conn != nil {
		// The directory already declared this incarnation dead.
		(*conn).Close()
		*conn = nil
	}

	var onFence func(int, uint64)
	var fencedEpoch uint64
	st := r.shards[i]
	r.mu.Lock()
	if healthy {
		st.fails = 0
		if st.wasDown {
			st.wasDown = false
			r.tracer.Record(obs.EvProbeUp, i, 0, 0, epoch, 0)
		}
		switch {
		case st.fenced && epoch > st.fencedEpoch:
			// A fresh incarnation (cold store, new epoch) answered: readmit.
			st.fenced = false
			st.addr, st.epoch = addr, epoch
			old := st.pool
			st.pool = newConnPool(addr, r.cfg.PoolConns, r.cfg.OpTimeout)
			gen := r.ring.setUp(i, true)
			r.readmits.Add(1)
			r.tracer.Record(obs.EvReadmit, i, 0, 0, epoch, int64(gen))
			r.mu.Unlock()
			old.close()
			return
		case st.fenced:
			// The fenced incarnation woke up (a hang passing): its store
			// predates the fence, so it is never re-trusted — only a
			// respawn (epoch bump) readmits.
		case epoch != st.epoch:
			// Replaced under us without the fence ever tripping: adopt the
			// new incarnation's address; its store is cold, which costs
			// misses, never wrong answers.
			st.addr, st.epoch = addr, epoch
			old := st.pool
			st.pool = newConnPool(addr, r.cfg.PoolConns, r.cfg.OpTimeout)
			r.mu.Unlock()
			old.close()
			return
		}
		r.mu.Unlock()
		return
	}
	r.probeFailures.Add(1)
	st.fails++
	if st.fails == 1 {
		st.downSince = time.Now()
		if !st.wasDown {
			st.wasDown = true
			r.tracer.Record(obs.EvProbeDown, i, 0, 0, st.epoch, 0)
		}
	}
	if !st.fenced && st.fails >= r.cfg.ProbeFails {
		st.fenced = true
		st.fencedEpoch = st.epoch
		fencedEpoch = st.epoch
		gen := r.ring.setUp(i, false)
		r.failovers.Add(1)
		r.detectHist.Observe(time.Since(st.downSince).Microseconds())
		r.tracer.Record(obs.EvFailover, i, 0, 0, st.epoch, int64(gen))
		onFence = r.cfg.OnFence
	}
	r.mu.Unlock()
	if onFence != nil {
		onFence(i, fencedEpoch)
	}
}

// connPool is a bounded per-shard connection pool: sem tokens count every
// live connection (idle or in flight), idle holds the reusable subset.
type connPool struct {
	addr    string
	timeout time.Duration
	idle    chan *memcached.Client
	sem     chan struct{}
	mu      sync.Mutex
	closed  bool
}

func newConnPool(addr string, conns int, timeout time.Duration) *connPool {
	return &connPool{
		addr:    addr,
		timeout: timeout,
		idle:    make(chan *memcached.Client, conns),
		sem:     make(chan struct{}, conns),
	}
}

// get returns an idle connection or dials a new one within the bound.
// With the pool exhausted it waits for a peer to finish — every holder is
// under an operation deadline, so the wait is bounded too.
func (p *connPool) get() (*memcached.Client, error) {
	select {
	case c := <-p.idle:
		return c, nil
	default:
	}
	select {
	case c := <-p.idle:
		return c, nil
	case p.sem <- struct{}{}:
		c, err := memcached.DialTimeout(p.addr, p.timeout)
		if err != nil {
			<-p.sem
			return nil, err
		}
		return c, nil
	}
}

// put returns a healthy connection to the pool (or closes it if the pool
// is full or closed).
func (p *connPool) put(c *memcached.Client) {
	p.mu.Lock()
	if !p.closed {
		select {
		case p.idle <- c:
			p.mu.Unlock()
			return
		default:
		}
	}
	p.mu.Unlock()
	c.Close()
	<-p.sem
}

// discard drops a poisoned connection and frees its slot.
func (p *connPool) discard(c *memcached.Client) {
	c.Close()
	<-p.sem
}

// close marks the pool dead and reaps idle connections; in-flight ones
// are reaped by put/discard.
func (p *connPool) close() {
	p.mu.Lock()
	p.closed = true
	for {
		select {
		case c := <-p.idle:
			c.Close()
			<-p.sem
		default:
			p.mu.Unlock()
			return
		}
	}
}
