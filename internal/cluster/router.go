package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/memcached"
	"privagic/internal/obs"
	"privagic/internal/retry"
)

// Directory is the router's control plane: who the shards are, where the
// current incarnation of each one listens, and whether it is supposed to
// be alive. Cluster implements it in-process; the data plane stays real
// TCP. Addr must be safe for concurrent use.
type Directory interface {
	NumShards() int
	Addr(shard int) (addr string, epoch uint64, running bool)
}

// ErrNoShards is returned when every shard is fenced: the router degrades
// into fast explicit failure rather than stalling callers.
var ErrNoShards = errors.New("cluster: no shards available")

// ErrBreakerOpen is returned (after the retry budget) when the owning
// shard's circuit breaker is refusing requests: the data path has failed
// enough consecutive times that further attempts would only burn their
// full timeout against a known-bad wire. Explicit fast failure — the
// breaker half-opens after its cooldown and live traffic resumes once a
// trial succeeds.
var ErrBreakerOpen = errors.New("cluster: shard circuit breaker open")

// RouterConfig tunes the client router. Zero values take the documented
// defaults.
type RouterConfig struct {
	// Replicas is the virtual nodes per shard on the hash ring (default 32).
	Replicas int
	// PoolConns caps data connections per shard (default 4). Each open
	// connection pins one shard worker, so PoolConns plus the probe
	// connection must stay at or below Config.Workers.
	PoolConns int
	// OpTimeout bounds one attempt of one operation (default 50ms). A
	// fired deadline poisons the connection; the router redials.
	OpTimeout time.Duration
	// Retry is the per-operation retry budget with exponential backoff and
	// jitter (the shared internal/retry policy, also used by prt recovery).
	// A zero policy defaults to 4 attempts with the policy's standard
	// 100µs-doubling-to-2ms backoff; set MaxAttempts to 1 to disable
	// retries.
	Retry retry.Policy
	// ProbeInterval is the per-shard health-probe period (default 25ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default OpTimeout).
	ProbeTimeout time.Duration
	// ProbeFails is how many consecutive probe failures fence a shard
	// (default 3). Data-path errors never fence directly — they only
	// schedule an immediate probe — so op timeouts under load cannot
	// trigger spurious failovers.
	ProbeFails int
	// OnFence, when set, is called (outside router locks) after a shard is
	// fenced — the supervision hook: wire it to Cluster.RespawnAfter to
	// get automatic replacement shards.
	OnFence func(shard int, epoch uint64)
	// DisableProbes turns health probing off (unit tests that drive
	// fencing by hand).
	DisableProbes bool

	// Breaker tunes the per-shard circuit breaker over the data path.
	// Consecutive data-path failures (timeouts, transport errors,
	// protocol violations) trip it; busy responses count as successes —
	// a shedding shard is alive, so pure overload can never trip the
	// breaker. Defaults: 8 consecutive failures, cooldown 4×ProbeInterval,
	// one half-open trial.
	Breaker retry.BreakerConfig

	// SlowRTT and FastRTT are the latency-health thresholds over each
	// shard's EWMA of data-path RTT. A shard whose EWMA stays above
	// SlowRTT for DemoteStrikes consecutive probe rounds is demoted out
	// of the ring — even while its version probes answer, which is
	// exactly the slow-but-alive gray failure fencing cannot see. A
	// demoted shard whose EWMA falls back below FastRTT (hysteresis) for
	// PromoteStrikes rounds, with its breaker closed, is promoted back;
	// generation stamps make the round trip safe without invalidation.
	// Defaults: SlowRTT = OpTimeout/2, FastRTT = SlowRTT/4.
	SlowRTT time.Duration
	FastRTT time.Duration
	// DemoteStrikes / PromoteStrikes are the consecutive-evaluation
	// requirements (defaults 3 / 2): one scheduler hiccup never flips
	// membership.
	DemoteStrikes  int
	PromoteStrikes int

	// HedgeDelay controls hedged Gets: a Get whose primary attempt has
	// not answered after this long launches a second identical request
	// on a spare connection to the same shard, first answer wins, loser
	// canceled. 0 means adaptive — max(8× the shard's EWMA RTT,
	// OpTimeout/4), so hedges fire on genuine stalls, not on every
	// routine fluctuation. Negative disables hedging. Only Gets hedge:
	// they are idempotent, a duplicated Set or Delete is not harmless.
	// With Replication ≥ 2 the hedge targets the next replica instead
	// of duplicating against the primary (see hedge.go).
	HedgeDelay time.Duration

	// Replication is the replica-set size R per ring segment (DESIGN.md
	// §16): a primary plus R−1 successors. Writes go through to every
	// in-ring set member and acknowledge only when all stored; reads
	// fall back across the set. Default 2, clamped to the shard count
	// (and to 4, the fixed routing-array bound). 1 reproduces the
	// pre-replication fresh-or-miss behavior exactly.
	Replication int
	// HandoffLimit bounds each down shard's hinted-handoff queue
	// (default 1024 keys). Overflow is explicit backpressure: the
	// queue's hints are discarded (counted, never silent), the shard is
	// marked for a forced full sync at readmission, and writes keep
	// acknowledging off the live members — never a stall.
	HandoffLimit int
	// SyncHook, when set, is called after a shard's anti-entropy sync
	// completes but before it re-enters the ring — a test seam to hold
	// the readmission window open and observe pre-entry routing.
	SyncHook func(shard int)
}

// shardState is the router's view of one shard. Fields are guarded by
// Router.mu except kick and breaker (immutable pointers, internally
// synchronized) and rtt/dataDown (atomics sampled lock-free on the data
// path).
type shardState struct {
	addr        string
	epoch       uint64
	pool        *connPool
	fenced      bool
	fencedEpoch uint64
	fails       int       // consecutive probe failures
	downSince   time.Time // first failure of the current streak
	wasDown     bool      // a probe.down was recorded without a probe.up yet
	kick        chan struct{}

	// Gray-failure defenses (DESIGN.md §15). demoted is the
	// latency-health twin of fenced: the shard is out of the ring but
	// its incarnation is still trusted, so promotion back at the same
	// epoch is safe (generation stamps fence staleness). slowStrikes /
	// fastStrikes count consecutive over/under-threshold probe-round
	// evaluations; slowSince anchors the demote-detection histogram.
	breaker     *retry.Breaker
	demoted     bool
	slowStrikes int
	fastStrikes int
	slowSince   time.Time

	// syncPending arms the prober's anti-entropy flow: the shard is out
	// of the ring awaiting sync-then-enter (see antientropy.go). Why it
	// is pending (readmit / promote / adopt) picks the counter bumped at
	// entry.
	syncPending int

	// rtt is the EWMA of data-path RTT in µs (float bits; 0 = no samples
	// yet). Updated with a benign racy read-modify-write: losing a
	// concurrent sample shifts an estimate, never corrupts state.
	rtt atomic.Uint64
	// dataDown is the UnixNano of the first failure of the current
	// data-path failure streak (0 = healthy) — the detection-latency
	// anchor for breaker-driven demotions.
	dataDown atomic.Int64
}

// Router is the consistent-hashing client router: it owns the ring, a
// bounded connection pool per shard, and one prober goroutine per shard.
// Operations carry per-attempt deadlines and a bounded retry budget;
// failover is probe-driven (fence on ProbeFails consecutive failures) and
// readmission requires a fresh incarnation (directory epoch beyond the
// fenced one), so a hung shard that wakes up with stale state is never
// silently re-trusted. All methods are safe for concurrent use.
//
// Every Set stamps the value's flags word with the current ring
// generation; every Get rejects a hit whose stamp predates the owning
// segment's acquisition generation (see ring). One shared Router per
// generation space: clients that must agree on staleness must share the
// instance.
type Router struct {
	cfg RouterConfig
	dir Directory

	mu     sync.Mutex
	ring   *ring
	shards []*shardState

	stop   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	routes        atomic.Int64
	retries       atomic.Int64
	sheds         atomic.Int64
	routeErrors   atomic.Int64
	staleRejects  atomic.Int64
	failovers     atomic.Int64
	readmits      atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64

	demotions       atomic.Int64
	promotions      atomic.Int64
	breakerTrips    atomic.Int64
	breakerFastfail atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	corruptRejects  atomic.Int64

	// Replication counters (DESIGN.md §16).
	replicaWrites      atomic.Int64
	replicaWriteErrors atomic.Int64
	lwwRefused         atomic.Int64
	fallbackReads      atomic.Int64
	readRepairs        atomic.Int64
	repairConflicts    atomic.Int64
	tombstones         atomic.Int64
	hintsQueued        atomic.Int64
	hintOverflows      atomic.Int64
	hintsDrained       atomic.Int64
	hintsDiscarded     atomic.Int64
	syncs              atomic.Int64
	syncRetries        atomic.Int64
	syncSegments       atomic.Int64
	syncDivergent      atomic.Int64
	syncKeys           atomic.Int64
	fullSyncs          atomic.Int64
	stampClamps        atomic.Int64
	stampsPruned       atomic.Int64
	tombsPurged        atomic.Int64

	// stamps is the per-key write-stamp oracle: every Set/Delete is
	// stamped max(ring generation, last stamp for the key + 1), so the
	// stamps of one key's writes are strictly increasing and the
	// stores' last-write-wins register (setx) totally orders them — a
	// zombie write the network delivers late can never overwrite newer
	// forward progress, which retires PR-7's segment-aging write fence
	// along with its collateral misses. Guarded by mu.
	stamps map[string]uint32
	// writing counts in-flight write loops per key (guarded by mu).
	// Read-repair consults it to stand down while the key's writer is
	// still fanning out: a member that looks behind mid-fan-out is not
	// divergent, just not-yet-reached, and the ack-all contract means
	// the writer itself converges the set (or retries). Without this,
	// reads racing their own keys' writes register spurious repairs —
	// which the clean-control soak asserts never happen.
	writing map[string]int
	// hints is the bounded hinted-handoff ledger for down shards;
	// enqueues happen under mu, atomically with route resolution, so
	// ring entry can prove the queue is drained (see handoff.go).
	hints *handoff
	// gcGen is the ring generation the last generation-floor sweep ran
	// at (see maintain); guarded by mu. The sweep reclaims stamps-map
	// entries and shard tombstones that the current generation floor
	// has made redundant, so neither grows without bound.
	gcGen uint64

	counterList []obs.NamedCounter

	tracer     *obs.Tracer
	detectHist *obs.Histogram
	demoteHist *obs.Histogram
	rttHist    *obs.Histogram
	syncHist   *obs.Histogram
	drainHist  *obs.Histogram
}

// NewRouter builds a router over dir and starts its probers.
func NewRouter(dir Directory, cfg RouterConfig) (*Router, error) {
	n := dir.NumShards()
	if n <= 0 {
		return nil, fmt.Errorf("cluster: directory has no shards")
	}
	if cfg.PoolConns <= 0 {
		cfg.PoolConns = 4
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 50 * time.Millisecond
	}
	if !cfg.Retry.Enabled() {
		cfg.Retry.MaxAttempts = 4
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.OpTimeout
	}
	if cfg.ProbeFails <= 0 {
		cfg.ProbeFails = 3
	}
	if cfg.Breaker.Failures <= 0 {
		cfg.Breaker.Failures = 8
	}
	if cfg.Breaker.Cooldown <= 0 {
		cfg.Breaker.Cooldown = 4 * cfg.ProbeInterval
	}
	if cfg.SlowRTT <= 0 {
		cfg.SlowRTT = cfg.OpTimeout / 2
	}
	if cfg.FastRTT <= 0 {
		cfg.FastRTT = cfg.SlowRTT / 4
	}
	if cfg.DemoteStrikes <= 0 {
		cfg.DemoteStrikes = 3
	}
	if cfg.PromoteStrikes <= 0 {
		cfg.PromoteStrikes = 2
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > n {
		cfg.Replication = n
	}
	if cfg.Replication > maxReplication {
		cfg.Replication = maxReplication
	}
	if cfg.HandoffLimit <= 0 {
		cfg.HandoffLimit = 1024
	}
	r := &Router{
		cfg:     cfg,
		dir:     dir,
		ring:    newRing(n, cfg.Replicas, cfg.Replication),
		shards:  make([]*shardState, n),
		stamps:  map[string]uint32{},
		writing: map[string]int{},
		hints:   newHandoff(n, cfg.HandoffLimit),
		gcGen:   1, // the ring's starting generation: nothing to sweep yet
		stop:    make(chan struct{}),
	}
	r.counterList = r.namedCounters()
	r.ctx, r.cancel = context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		addr, epoch, running := dir.Addr(i)
		st := &shardState{addr: addr, epoch: epoch, kick: make(chan struct{}, 1)}
		st.breaker = retry.NewBreaker(cfg.Breaker)
		st.pool = newConnPool(addr, cfg.PoolConns, cfg.OpTimeout)
		if !running {
			st.fenced = true
			st.fencedEpoch = epoch
			r.ring.setUp(i, false)
		}
		r.shards[i] = st
	}
	if !cfg.DisableProbes {
		for i := 0; i < n; i++ {
			r.wg.Add(1)
			go r.prober(i)
		}
	}
	return r, nil
}

// Close stops the probers and closes pooled connections. Operations
// sleeping in a retry backoff wake immediately (context-aware Sleep).
func (r *Router) Close() {
	r.cancel()
	close(r.stop)
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.shards {
		st.pool.close()
	}
}

// Instrument registers the router's metrics on reg (the cluster.* block
// of the catalogue: gauges over the router's own atomics plus the
// failover-detection histogram) and arms trace events on tracer.
func (r *Router) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	r.tracer = tracer
	r.detectHist = reg.Histogram("cluster.failover_detect_us")
	r.demoteHist = reg.Histogram("cluster.demote_detect_us")
	r.rttHist = reg.Histogram("cluster.data_rtt_us")
	r.syncHist = reg.Histogram("repl.sync_us")
	r.drainHist = reg.Histogram("repl.handoff_drain_us")
	reg.Gauge("cluster.demotions", r.demotions.Load)
	reg.Gauge("cluster.promotions", r.promotions.Load)
	reg.Gauge("cluster.breaker_trips", r.breakerTrips.Load)
	reg.Gauge("cluster.breaker_fastfails", r.breakerFastfail.Load)
	reg.Gauge("cluster.hedges", r.hedges.Load)
	reg.Gauge("cluster.hedge_wins", r.hedgeWins.Load)
	reg.Gauge("cluster.corrupt_rejects", r.corruptRejects.Load)
	reg.Gauge("cluster.routes", r.routes.Load)
	reg.Gauge("cluster.retries", r.retries.Load)
	reg.Gauge("cluster.sheds", r.sheds.Load)
	reg.Gauge("cluster.route_errors", r.routeErrors.Load)
	reg.Gauge("cluster.stale_rejects", r.staleRejects.Load)
	reg.Gauge("cluster.failovers", r.failovers.Load)
	reg.Gauge("cluster.readmits", r.readmits.Load)
	reg.Gauge("cluster.probes", r.probes.Load)
	reg.Gauge("cluster.probe_failures", r.probeFailures.Load)
	reg.Gauge("repl.replica_writes", r.replicaWrites.Load)
	reg.Gauge("repl.replica_write_errors", r.replicaWriteErrors.Load)
	reg.Gauge("repl.lww_refused", r.lwwRefused.Load)
	reg.Gauge("repl.fallback_reads", r.fallbackReads.Load)
	reg.Gauge("repl.read_repairs", r.readRepairs.Load)
	reg.Gauge("repl.repair_conflicts", r.repairConflicts.Load)
	reg.Gauge("repl.tombstones", r.tombstones.Load)
	reg.Gauge("repl.hints_queued", r.hintsQueued.Load)
	reg.Gauge("repl.hint_overflows", r.hintOverflows.Load)
	reg.Gauge("repl.hints_drained", r.hintsDrained.Load)
	reg.Gauge("repl.hints_discarded", r.hintsDiscarded.Load)
	reg.Gauge("repl.syncs", r.syncs.Load)
	reg.Gauge("repl.sync_retries", r.syncRetries.Load)
	reg.Gauge("repl.sync_segments", r.syncSegments.Load)
	reg.Gauge("repl.sync_divergent", r.syncDivergent.Load)
	reg.Gauge("repl.sync_keys", r.syncKeys.Load)
	reg.Gauge("repl.full_syncs", r.fullSyncs.Load)
	reg.Gauge("repl.stamp_clamps", r.stampClamps.Load)
	reg.Gauge("repl.stamps_pruned", r.stampsPruned.Load)
	reg.Gauge("repl.tombs_purged", r.tombsPurged.Load)
	reg.Gauge("cluster.shards_up", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.ring.nUp)
	})
	reg.Gauge("cluster.ring_generation", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(r.ring.gen)
	})
}

// namedCounters is the single authoritative list behind Counters and
// Instrument; the repl.* entries keep their catalogue prefix, the rest
// are bare (Counters keys) and gain the cluster. prefix when
// registered.
func (r *Router) namedCounters() []obs.NamedCounter {
	return []obs.NamedCounter{
		{Name: "routes", Load: r.routes.Load},
		{Name: "retries", Load: r.retries.Load},
		{Name: "sheds", Load: r.sheds.Load},
		{Name: "route_errors", Load: r.routeErrors.Load},
		{Name: "stale_rejects", Load: r.staleRejects.Load},
		{Name: "failovers", Load: r.failovers.Load},
		{Name: "readmits", Load: r.readmits.Load},
		{Name: "probes", Load: r.probes.Load},
		{Name: "probe_failures", Load: r.probeFailures.Load},
		{Name: "demotions", Load: r.demotions.Load},
		{Name: "promotions", Load: r.promotions.Load},
		{Name: "breaker_trips", Load: r.breakerTrips.Load},
		{Name: "breaker_fastfails", Load: r.breakerFastfail.Load},
		{Name: "hedges", Load: r.hedges.Load},
		{Name: "hedge_wins", Load: r.hedgeWins.Load},
		{Name: "corrupt_rejects", Load: r.corruptRejects.Load},
		{Name: "repl.replica_writes", Load: r.replicaWrites.Load},
		{Name: "repl.replica_write_errors", Load: r.replicaWriteErrors.Load},
		{Name: "repl.lww_refused", Load: r.lwwRefused.Load},
		{Name: "repl.fallback_reads", Load: r.fallbackReads.Load},
		{Name: "repl.read_repairs", Load: r.readRepairs.Load},
		{Name: "repl.repair_conflicts", Load: r.repairConflicts.Load},
		{Name: "repl.tombstones", Load: r.tombstones.Load},
		{Name: "repl.hints_queued", Load: r.hintsQueued.Load},
		{Name: "repl.hint_overflows", Load: r.hintOverflows.Load},
		{Name: "repl.hints_drained", Load: r.hintsDrained.Load},
		{Name: "repl.hints_discarded", Load: r.hintsDiscarded.Load},
		{Name: "repl.syncs", Load: r.syncs.Load},
		{Name: "repl.sync_retries", Load: r.syncRetries.Load},
		{Name: "repl.sync_segments", Load: r.syncSegments.Load},
		{Name: "repl.sync_divergent", Load: r.syncDivergent.Load},
		{Name: "repl.sync_keys", Load: r.syncKeys.Load},
		{Name: "repl.full_syncs", Load: r.fullSyncs.Load},
		{Name: "repl.stamp_clamps", Load: r.stampClamps.Load},
		{Name: "repl.stamps_pruned", Load: r.stampsPruned.Load},
		{Name: "repl.tombs_purged", Load: r.tombsPurged.Load},
		{Name: "shards_up", Load: func() int64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return int64(r.ring.nUp)
		}},
		{Name: "ring_generation", Load: func() int64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return int64(r.ring.gen)
		}},
	}
}

// Counters exposes the router's tallies for tests and reports (one
// obs.SnapshotCounters over the same list Instrument registers).
func (r *Router) Counters() map[string]int64 {
	return obs.SnapshotCounters(r.counterList)
}

// Owner reports which shard currently owns key (-1 with every shard
// fenced) — a read-only routing probe for tests and the failover
// benchmark. With replication, "owns" means primary: the first member
// of the key's replica set.
func (r *Router) Owner(key string) int {
	h := keyHash(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _, ok := r.ring.lookup(h)
	if !ok {
		return -1
	}
	return s
}

// InRing reports whether shard is currently a routable ring member —
// false while it is fenced, demoted, or mid-anti-entropy. The chaos
// monkey's settle gate polls it so MaxDown accounting covers shards
// that respawned but have not finished readmission.
func (r *Router) InRing(shard int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.up[shard]
}

// routeSet resolves a key's full replica set (primary first) plus the
// member pools, snapshotted under one lock so the set and the pools
// belong to the same ring instant.
func (r *Router) routeSet(key string) (seg segment, pools [maxReplication]*connPool, ok bool) {
	h := keyHash(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	seg, ok = r.ring.lookupSet(h)
	if !ok {
		return segment{}, pools, false
	}
	for k := 0; k < seg.n; k++ {
		pools[k] = r.shards[seg.shard[k]].pool
	}
	return seg, pools, true
}

// finishAttempts applies the shared terminal accounting of a retry
// loop: an exhausted budget ending in busy is a shed, anything else a
// route error.
func (r *Router) finishAttempts(lastErr error) error {
	if errors.Is(lastErr, memcached.ErrBusy) {
		r.sheds.Add(1)
		r.tracer.Record(obs.EvRouteShed, 0, 0, 0, 0, int64(r.cfg.Retry.MaxAttempts))
	} else {
		r.routeErrors.Add(1)
	}
	return lastErr
}

// resetHealthLocked clears a shard's gray-failure state when its
// incarnation changes (readmit or adopt): the new process shares no
// history with the wire that earned the old one its demotion, strikes,
// latency estimate, or breaker debt. Caller holds r.mu.
func (r *Router) resetHealthLocked(st *shardState) {
	st.demoted = false
	st.slowStrikes, st.fastStrikes = 0, 0
	st.rtt.Store(0)
	st.dataDown.Store(0)
	st.breaker.Reset()
}

// maintain is the generation-floor garbage sweep (DESIGN.md §16). Both
// per-key state stores grow with key cardinality: the router's stamps
// map keeps one entry per key ever written, and every shard store keeps
// tombstones forever (evicting one via LRU would quietly re-open the
// key to zombie resurrection). A ring-generation advance makes both
// reclaimable below the new generation floor: a stamps entry below the
// floor is redundant (the next mint starts at the floor, which already
// exceeds it), and a tombstone below the floor can be purged once every
// store also refuses to re-insert absent keys below that floor — the
// stamp-floor rule that keeps an expired tombstone from being outrun by
// a zombie of the write it retired (memcached.Store.PurgeTombstones).
//
// The sweep runs only while the cluster is converged — every shard in
// the ring, no hints queued, no overflow flags — so every member holds
// (and then atomically drops + floors) the tombstones being retired; a
// member that is down keeps its tombstones and therefore its
// protection. Purges are best-effort per shard: a failed round trip
// leaves that shard's tombstones (still safe, just unreclaimed) until
// the next generation advance. Every prober calls maintain each round;
// the gcGen gate makes all but the first a mutex-bounce no-op.
func (r *Router) maintain() {
	r.mu.Lock()
	gen := r.ring.gen
	if gen <= r.gcGen || r.ring.nUp != len(r.shards) {
		r.mu.Unlock()
		return
	}
	for i := range r.shards {
		if r.hints.pending(i) > 0 || r.hints.needsFullSync(i) {
			r.mu.Unlock()
			return
		}
	}
	floor := genFloor(gen)
	pruned := 0
	for k, s := range r.stamps {
		if s < floor {
			delete(r.stamps, k)
			pruned++
		}
	}
	pools := make([]*connPool, len(r.shards))
	for i, st := range r.shards {
		pools[i] = st.pool
	}
	r.gcGen = gen
	r.mu.Unlock()
	if pruned > 0 {
		r.stampsPruned.Add(int64(pruned))
	}
	for i, pool := range pools {
		c, err := pool.get()
		if err != nil {
			continue
		}
		n, perr := c.PurgeTombstones(floor)
		switch {
		case perr == nil:
			pool.put(c)
			if n > 0 {
				r.tombsPurged.Add(int64(n))
				r.tracer.Record(obs.EvReplPurge, i, 0, 0, uint64(floor), int64(n))
			}
		case errors.Is(perr, memcached.ErrBusy):
			pool.put(c)
		default:
			pool.discard(c)
		}
	}
}

// nudge schedules an immediate probe of shard (data-path failures speed
// detection up but never fence by themselves).
func (r *Router) nudge(shard int) {
	select {
	case r.shards[shard].kick <- struct{}{}:
	default:
	}
}

// prober is shard i's health loop.
func (r *Router) prober(i int) {
	defer r.wg.Done()
	st := r.shards[i]
	var conn *memcached.Client
	var connAddr string
	// dconn is the canary's persistent data-path connection, distinct
	// from the version-probe conn: an asymmetric partition can leave one
	// path up and the other down, so each is measured on its own socket.
	var dconn *memcached.Client
	var dconnAddr string
	defer func() {
		if conn != nil {
			conn.Close()
		}
		if dconn != nil {
			dconn.Close()
		}
	}()
	timer := time.NewTimer(r.cfg.ProbeInterval)
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-timer.C:
		case <-st.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		r.probeOnce(i, &conn, &connAddr)
		r.canaryOnce(i, &dconn, &dconnAddr)
		r.mu.Lock()
		pending := st.syncPending != syncNone && !st.fenced
		r.mu.Unlock()
		if pending {
			r.antiEntropy(i)
		}
		r.maintain()
		timer.Reset(r.cfg.ProbeInterval)
	}
}

// probeOnce sends one health probe to shard i and applies the verdict:
// consecutive failures fence, success after a fresh incarnation readmits.
func (r *Router) probeOnce(i int, conn **memcached.Client, connAddr *string) {
	addr, epoch, running := r.dir.Addr(i)
	healthy := false
	r.probes.Add(1)
	if running {
		if *conn != nil && *connAddr != addr {
			(*conn).Close()
			*conn = nil
		}
		if *conn == nil {
			c, err := memcached.DialTimeout(addr, r.cfg.ProbeTimeout)
			if err == nil {
				c.SetTimeout(r.cfg.ProbeTimeout)
				*conn, *connAddr = c, addr
			}
		}
		if *conn != nil {
			if _, err := (*conn).Version(); err == nil {
				healthy = true
			} else {
				(*conn).Close()
				*conn = nil
			}
		}
	} else if *conn != nil {
		// The directory already declared this incarnation dead.
		(*conn).Close()
		*conn = nil
	}

	var onFence func(int, uint64)
	var fencedEpoch uint64
	st := r.shards[i]
	r.mu.Lock()
	if healthy {
		st.fails = 0
		if st.wasDown {
			st.wasDown = false
			r.tracer.Record(obs.EvProbeUp, i, 0, 0, epoch, 0)
		}
		switch {
		case st.fenced && epoch > st.fencedEpoch:
			// A fresh incarnation (cold store, new epoch) answered. With
			// replication the epoch fence is only the first gate: the cold
			// store must complete anti-entropy before re-entering the ring
			// (readmits ticks at entry, not here). R=1 has no live member
			// to sync from, so it re-enters directly as before.
			st.fenced = false
			st.addr, st.epoch = addr, epoch
			r.resetHealthLocked(st)
			old := st.pool
			st.pool = newConnPool(addr, r.cfg.PoolConns, r.cfg.OpTimeout)
			if r.cfg.Replication > 1 {
				st.syncPending = syncReadmit
			} else {
				gen := r.ring.setUp(i, true)
				r.readmits.Add(1)
				r.tracer.Record(obs.EvReadmit, i, 0, 0, epoch, int64(gen))
			}
			r.mu.Unlock()
			old.close()
			return
		case st.fenced:
			// The fenced incarnation woke up (a hang passing): its store
			// predates the fence, so it is never re-trusted — only a
			// respawn (epoch bump) readmits.
		case epoch != st.epoch:
			// Replaced under us without the fence ever tripping: adopt the
			// new incarnation's address. Its store is cold; under
			// replication it leaves the ring for a sync first (a cold
			// in-ring member would serve false authoritative misses), at
			// R=1 cold costs misses, never wrong answers.
			st.addr, st.epoch = addr, epoch
			if r.cfg.Replication > 1 {
				r.ring.setUp(i, false)
				st.syncPending = syncAdopt
			} else if st.demoted {
				r.ring.setUp(i, true)
			}
			r.resetHealthLocked(st)
			old := st.pool
			st.pool = newConnPool(addr, r.cfg.PoolConns, r.cfg.OpTimeout)
			r.mu.Unlock()
			old.close()
			return
		}
		r.mu.Unlock()
		return
	}
	r.probeFailures.Add(1)
	st.fails++
	if st.fails == 1 {
		st.downSince = time.Now()
		if !st.wasDown {
			st.wasDown = true
			r.tracer.Record(obs.EvProbeDown, i, 0, 0, st.epoch, 0)
		}
	}
	if !st.fenced && st.fails >= r.cfg.ProbeFails {
		st.fenced = true
		st.fencedEpoch = st.epoch
		st.syncPending = syncNone // a mid-sync death restarts from respawn
		fencedEpoch = st.epoch
		gen := r.ring.setUp(i, false)
		r.failovers.Add(1)
		r.detectHist.Observe(time.Since(st.downSince).Microseconds())
		r.tracer.Record(obs.EvFailover, i, 0, 0, st.epoch, int64(gen))
		onFence = r.cfg.OnFence
	}
	r.mu.Unlock()
	if onFence != nil {
		onFence(i, fencedEpoch)
	}
}

// connPool is a bounded per-shard connection pool: sem tokens count every
// live connection (idle or in flight), idle holds the reusable subset.
type connPool struct {
	addr    string
	timeout time.Duration
	idle    chan *memcached.Client
	sem     chan struct{}
	mu      sync.Mutex
	closed  bool
}

func newConnPool(addr string, conns int, timeout time.Duration) *connPool {
	return &connPool{
		addr:    addr,
		timeout: timeout,
		idle:    make(chan *memcached.Client, conns),
		sem:     make(chan struct{}, conns),
	}
}

// get returns an idle connection or dials a new one within the bound.
// With the pool exhausted it waits for a peer to finish — every holder is
// under an operation deadline, so the wait is bounded too.
func (p *connPool) get() (*memcached.Client, error) {
	select {
	case c := <-p.idle:
		return c, nil
	default:
	}
	select {
	case c := <-p.idle:
		return c, nil
	case p.sem <- struct{}{}:
		c, err := memcached.DialTimeout(p.addr, p.timeout)
		if err != nil {
			<-p.sem
			return nil, err
		}
		return c, nil
	}
}

// tryGet is get without the wait: an idle connection or an instant dial
// if a slot is free, else (nil, false). The hedge path uses it so a
// hedge can never block behind — or starve — primary traffic.
func (p *connPool) tryGet() (*memcached.Client, bool) {
	select {
	case c := <-p.idle:
		return c, true
	default:
	}
	select {
	case p.sem <- struct{}{}:
		c, err := memcached.DialTimeout(p.addr, p.timeout)
		if err != nil {
			<-p.sem
			return nil, false
		}
		return c, true
	default:
		return nil, false
	}
}

// put returns a healthy connection to the pool (or closes it if the pool
// is full or closed).
func (p *connPool) put(c *memcached.Client) {
	p.mu.Lock()
	if !p.closed {
		select {
		case p.idle <- c:
			p.mu.Unlock()
			return
		default:
		}
	}
	p.mu.Unlock()
	c.Close()
	<-p.sem
}

// discard drops a poisoned connection and frees its slot.
func (p *connPool) discard(c *memcached.Client) {
	c.Close()
	<-p.sem
}

// close marks the pool dead and reaps idle connections; in-flight ones
// are reaped by put/discard.
func (p *connPool) close() {
	p.mu.Lock()
	p.closed = true
	for {
		select {
		case c := <-p.idle:
			c.Close()
			<-p.sem
		default:
			p.mu.Unlock()
			return
		}
	}
}
