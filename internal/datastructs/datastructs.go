// Package datastructs implements the three classical data structures of
// the paper's §9.3 evaluation — a linked list, a red-black tree, and a
// separate-chaining hashmap — used as maps from 8-byte keys to 1024-byte
// values. Every node carries a synthetic address from a bump allocator and
// every traversal step reports its memory touches to a Tracer, which is how
// the cache simulator observes the access patterns that produce Figure 9's
// ordering (uniform tree walks miss the LLC, zipfian hash probes mostly
// hit, list scans amortize everything).
package datastructs

// Tracer observes simulated memory accesses. Nil tracers are allowed.
type Tracer func(addr uint64, size int64)

// Map is the common key-value interface of the three structures.
type Map interface {
	// Get returns the value stored under k.
	Get(k uint64) ([]byte, bool)
	// Put inserts or updates k.
	Put(k uint64, v []byte)
	// Delete removes k, reporting whether it was present.
	Delete(k uint64) bool
	// Len returns the number of entries.
	Len() int
	// Footprint returns the allocated bytes (the EPC pressure input).
	Footprint() int64
}

// allocator hands out synthetic addresses for the tracer.
type allocator struct {
	next  uint64
	total int64
}

func newAllocator() *allocator {
	return &allocator{next: 1 << 20} // leave page zero unmapped
}

func (a *allocator) alloc(size int64) uint64 {
	addr := (a.next + 63) &^ 63 // cache-line aligned nodes
	a.next = addr + uint64(size)
	a.total += size
	return addr
}

func (a *allocator) footprint() int64 { return a.total }

func traceNil(t Tracer, addr uint64, size int64) {
	if t != nil {
		t(addr, size)
	}
}
