package datastructs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// maps returns one fresh instance of each structure.
func maps(trace Tracer) map[string]Map {
	return map[string]Map{
		"list":    NewList(trace),
		"rbtree":  NewRBTree(trace),
		"hashmap": NewHashMap(1024, trace),
	}
}

func TestBasicPutGet(t *testing.T) {
	for name, m := range maps(nil) {
		t.Run(name, func(t *testing.T) {
			for i := uint64(0); i < 100; i++ {
				m.Put(i, []byte(fmt.Sprintf("v%d", i)))
			}
			if m.Len() != 100 {
				t.Fatalf("Len = %d, want 100", m.Len())
			}
			for i := uint64(0); i < 100; i++ {
				v, ok := m.Get(i)
				if !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%d) = (%q,%v)", i, v, ok)
				}
			}
			if _, ok := m.Get(1000); ok {
				t.Error("Get(1000) found a missing key")
			}
		})
	}
}

func TestUpdateInPlace(t *testing.T) {
	for name, m := range maps(nil) {
		t.Run(name, func(t *testing.T) {
			m.Put(7, []byte("a"))
			m.Put(7, []byte("b"))
			if m.Len() != 1 {
				t.Fatalf("Len = %d, want 1 after update", m.Len())
			}
			v, _ := m.Get(7)
			if string(v) != "b" {
				t.Fatalf("Get = %q, want b", v)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, m := range maps(nil) {
		t.Run(name, func(t *testing.T) {
			for i := uint64(0); i < 50; i++ {
				m.Put(i, []byte{byte(i)})
			}
			for i := uint64(0); i < 50; i += 2 {
				if !m.Delete(i) {
					t.Fatalf("Delete(%d) = false", i)
				}
			}
			if m.Delete(0) {
				t.Error("double delete succeeded")
			}
			if m.Len() != 25 {
				t.Fatalf("Len = %d, want 25", m.Len())
			}
			for i := uint64(0); i < 50; i++ {
				_, ok := m.Get(i)
				if want := i%2 == 1; ok != want {
					t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
				}
			}
		})
	}
}

// TestAgainstModel is a property test: each structure must behave exactly
// like Go's built-in map under a random operation sequence.
func TestAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint8
	}
	for name := range maps(nil) {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(ops []op) bool {
				m := maps(nil)[name]
				model := map[uint64][]byte{}
				for _, o := range ops {
					k := uint64(o.Key % 32)
					switch o.Kind % 3 {
					case 0:
						v := []byte{o.Val}
						m.Put(k, v)
						model[k] = v
					case 1:
						got, ok := m.Get(k)
						want, wok := model[k]
						if ok != wok {
							return false
						}
						if ok && string(got) != string(want) {
							return false
						}
					case 2:
						_, wok := model[k]
						if m.Delete(k) != wok {
							return false
						}
						delete(model, k)
					}
					if m.Len() != len(model) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRBTreeInvariants checks BST order and the no-red-red property under
// heavy random insertion, plus logarithmic depth.
func TestRBTreeInvariants(t *testing.T) {
	tr := NewRBTree(nil)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		tr.Put(uint64(rng.Int63()), []byte{1})
		if i%1000 == 0 {
			if err := tr.validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i, err)
			}
		}
	}
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
	// A red-black tree of n nodes has depth <= 2*log2(n+1): for 20000
	// nodes that bound is ~29.
	if d := tr.Depth(); d > 32 {
		t.Errorf("depth = %d for 20000 keys; tree unbalanced", d)
	}
}

// TestTraceObservesAccessPatterns checks the instrumentation produces the
// access-count ordering the paper's Figure 9 analysis rests on: list
// traversals touch far more nodes than tree descents, which touch more
// than hash probes.
func TestTraceObservesAccessPatterns(t *testing.T) {
	counts := map[string]int{}
	const n = 4096
	for name := range maps(nil) {
		var touches int
		m := maps(func(addr uint64, size int64) { touches++ })[name]
		for i := uint64(0); i < n; i++ {
			m.Put(i, make([]byte, 64))
		}
		touches = 0
		for i := uint64(0); i < 200; i++ {
			m.Get((i * 37) % n)
		}
		counts[name] = touches
	}
	if !(counts["list"] > counts["rbtree"] && counts["rbtree"] > counts["hashmap"]) {
		t.Errorf("touch ordering list(%d) > rbtree(%d) > hashmap(%d) violated",
			counts["list"], counts["rbtree"], counts["hashmap"])
	}
}

func TestFootprintGrows(t *testing.T) {
	for name, m := range maps(nil) {
		before := m.Footprint()
		m.Put(1, make([]byte, 1024))
		if m.Footprint() <= before {
			t.Errorf("%s: footprint did not grow", name)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	for name, m := range maps(nil) {
		for i := uint64(0); i < 100_000; i++ {
			m.Put(i, make([]byte, 8))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Get(uint64(i) % 100_000)
			}
		})
	}
}
