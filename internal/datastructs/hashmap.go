package datastructs

// HashMap is the separate-chaining hashmap of §9.3: "an array of linked
// lists, in which each linked list contains the keys that collide". Under
// YCSB's zipfian access pattern the hot buckets stay in the LLC, so the
// enclave-mode miss penalty barely shows and message costs dominate —
// Figure 9's middle case.
type HashMap struct {
	buckets []*listNode
	addrs   []uint64 // synthetic address of each bucket head slot
	size    int
	alloc   *allocator
	trace   Tracer
}

// NewHashMap creates a map with the given bucket count (rounded up to a
// power of two).
func NewHashMap(buckets int, trace Tracer) *HashMap {
	n := 1
	for n < buckets {
		n <<= 1
	}
	h := &HashMap{
		buckets: make([]*listNode, n),
		addrs:   make([]uint64, n),
		alloc:   newAllocator(),
		trace:   trace,
	}
	base := h.alloc.alloc(int64(n) * 8)
	for i := range h.addrs {
		h.addrs[i] = base + uint64(i)*8
	}
	return h
}

var _ Map = (*HashMap)(nil)

// hash is FNV-1a over the 8 key bytes, matching the hash64 builtin of the
// MiniC mini-libc so partitioned and native versions agree.
func hash(k uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (k >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

func (h *HashMap) bucket(k uint64) int {
	return int(hash(k) & uint64(len(h.buckets)-1))
}

// Get probes the bucket chain.
func (h *HashMap) Get(k uint64) ([]byte, bool) {
	b := h.bucket(k)
	traceNil(h.trace, h.addrs[b], 8)
	for n := h.buckets[b]; n != nil; n = n.next {
		traceNil(h.trace, n.addr, listNodeHeader)
		if n.key == k {
			traceNil(h.trace, n.addr+listNodeHeader, int64(len(n.value)))
			return n.value, true
		}
	}
	return nil, false
}

// Put inserts or updates within the bucket chain.
func (h *HashMap) Put(k uint64, v []byte) {
	b := h.bucket(k)
	traceNil(h.trace, h.addrs[b], 8)
	for n := h.buckets[b]; n != nil; n = n.next {
		traceNil(h.trace, n.addr, listNodeHeader)
		if n.key == k {
			n.value = v
			traceNil(h.trace, n.addr+listNodeHeader, int64(len(v)))
			return
		}
	}
	addr := h.alloc.alloc(listNodeHeader + int64(len(v)))
	h.buckets[b] = &listNode{key: k, value: v, next: h.buckets[b], addr: addr}
	h.size++
	traceNil(h.trace, addr, listNodeHeader+int64(len(v)))
}

// Delete unlinks k from its bucket.
func (h *HashMap) Delete(k uint64) bool {
	b := h.bucket(k)
	traceNil(h.trace, h.addrs[b], 8)
	for p := &h.buckets[b]; *p != nil; p = &(*p).next {
		n := *p
		traceNil(h.trace, n.addr, listNodeHeader)
		if n.key == k {
			*p = n.next
			h.size--
			return true
		}
	}
	return false
}

// Len returns the entry count.
func (h *HashMap) Len() int { return h.size }

// Footprint returns allocated bytes.
func (h *HashMap) Footprint() int64 { return h.alloc.footprint() }
