package datastructs

// List is the linked-list map of §9.3: retrieving a key visits on average
// half the (key, value) couples, which amortizes the enclave-crossing cost
// in Figure 9.
type List struct {
	head  *listNode
	size  int
	alloc *allocator
	trace Tracer
}

type listNode struct {
	key   uint64
	value []byte
	next  *listNode
	addr  uint64
}

// listNodeHeader is the traced header size of one node (key + value
// pointer + next pointer).
const listNodeHeader = 24

// NewList creates an empty list with an optional access tracer.
func NewList(trace Tracer) *List {
	return &List{alloc: newAllocator(), trace: trace}
}

var _ Map = (*List)(nil)

// Get walks the chain from the head.
func (l *List) Get(k uint64) ([]byte, bool) {
	for n := l.head; n != nil; n = n.next {
		traceNil(l.trace, n.addr, listNodeHeader)
		if n.key == k {
			traceNil(l.trace, n.addr+listNodeHeader, int64(len(n.value)))
			return n.value, true
		}
	}
	return nil, false
}

// Put updates in place or prepends a new node.
func (l *List) Put(k uint64, v []byte) {
	for n := l.head; n != nil; n = n.next {
		traceNil(l.trace, n.addr, listNodeHeader)
		if n.key == k {
			n.value = v
			traceNil(l.trace, n.addr+listNodeHeader, int64(len(v)))
			return
		}
	}
	addr := l.alloc.alloc(listNodeHeader + int64(len(v)))
	l.head = &listNode{key: k, value: v, next: l.head, addr: addr}
	l.size++
	traceNil(l.trace, addr, listNodeHeader+int64(len(v)))
}

// PushFront prepends without scanning for duplicates — the bulk-load path
// for benchmark preloading (callers guarantee distinct keys). A plain Put
// of n records costs O(n²) walks, which the paper's setup avoids by
// loading before timing.
func (l *List) PushFront(k uint64, v []byte) {
	addr := l.alloc.alloc(listNodeHeader + int64(len(v)))
	l.head = &listNode{key: k, value: v, next: l.head, addr: addr}
	l.size++
}

// Delete unlinks the first node holding k.
func (l *List) Delete(k uint64) bool {
	for p := &l.head; *p != nil; p = &(*p).next {
		n := *p
		traceNil(l.trace, n.addr, listNodeHeader)
		if n.key == k {
			*p = n.next
			l.size--
			return true
		}
	}
	return false
}

// Len returns the entry count.
func (l *List) Len() int { return l.size }

// Footprint returns allocated bytes.
func (l *List) Footprint() int64 { return l.alloc.footprint() }
