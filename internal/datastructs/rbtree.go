package datastructs

// RBTree is the balanced-tree map of §9.3 (the paper's "treemap"). Its
// uniform pointer-chasing access pattern produces the most LLC misses of
// the three structures, which is why Figure 9 shows the largest
// enclave-mode degradation for it.
type RBTree struct {
	root  *rbNode
	size  int
	alloc *allocator
	trace Tracer
}

type rbColor bool

const (
	rbRed   rbColor = false
	rbBlack rbColor = true
)

type rbNode struct {
	key                 uint64
	value               []byte
	left, right, parent *rbNode
	color               rbColor
	addr                uint64
}

// rbNodeHeader is the traced size of a node's control data.
const rbNodeHeader = 48

// NewRBTree creates an empty tree with an optional access tracer.
func NewRBTree(trace Tracer) *RBTree {
	return &RBTree{alloc: newAllocator(), trace: trace}
}

var _ Map = (*RBTree)(nil)

func (t *RBTree) touch(n *rbNode) {
	if n != nil {
		traceNil(t.trace, n.addr, rbNodeHeader)
	}
}

// Get descends the tree.
func (t *RBTree) Get(k uint64) ([]byte, bool) {
	n := t.root
	for n != nil {
		t.touch(n)
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			traceNil(t.trace, n.addr+rbNodeHeader, int64(len(n.value)))
			return n.value, true
		}
	}
	return nil, false
}

// Put inserts or updates, rebalancing per the classic red-black rules.
func (t *RBTree) Put(k uint64, v []byte) {
	var parent *rbNode
	link := &t.root
	for *link != nil {
		parent = *link
		t.touch(parent)
		switch {
		case k < parent.key:
			link = &parent.left
		case k > parent.key:
			link = &parent.right
		default:
			parent.value = v
			traceNil(t.trace, parent.addr+rbNodeHeader, int64(len(v)))
			return
		}
	}
	n := &rbNode{key: k, value: v, parent: parent, color: rbRed,
		addr: t.alloc.alloc(rbNodeHeader + int64(len(v)))}
	*link = n
	t.size++
	traceNil(t.trace, n.addr, rbNodeHeader+int64(len(v)))
	t.insertFixup(n)
}

func (t *RBTree) insertFixup(n *rbNode) {
	for n.parent != nil && n.parent.color == rbRed {
		g := n.parent.parent
		if g == nil {
			break
		}
		if n.parent == g.left {
			u := g.right
			if u != nil && u.color == rbRed {
				n.parent.color, u.color, g.color = rbBlack, rbBlack, rbRed
				n = g
				continue
			}
			if n == n.parent.right {
				n = n.parent
				t.rotateLeft(n)
			}
			n.parent.color, g.color = rbBlack, rbRed
			t.rotateRight(g)
		} else {
			u := g.left
			if u != nil && u.color == rbRed {
				n.parent.color, u.color, g.color = rbBlack, rbBlack, rbRed
				n = g
				continue
			}
			if n == n.parent.left {
				n = n.parent
				t.rotateRight(n)
			}
			n.parent.color, g.color = rbBlack, rbRed
			t.rotateLeft(g)
		}
	}
	t.root.color = rbBlack
}

func (t *RBTree) rotateLeft(x *rbNode) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	t.replaceChild(x, y)
	y.left = x
	x.parent = y
}

func (t *RBTree) rotateRight(x *rbNode) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	t.replaceChild(x, y)
	y.right = x
	x.parent = y
}

func (t *RBTree) replaceChild(x, y *rbNode) {
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
}

// Delete removes k using the standard BST delete followed by a
// simplified rebalance (recoloring walk). The tree stays a valid BST and
// stays approximately balanced under the YCSB mixes; exact black-height
// restoration is deliberately traded for clarity, as deletions are <5% of
// every workload the paper runs.
func (t *RBTree) Delete(k uint64) bool {
	n := t.root
	for n != nil && n.key != k {
		t.touch(n)
		if k < n.key {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return false
	}
	t.size--
	// Two children: swap with in-order successor.
	if n.left != nil && n.right != nil {
		s := n.right
		for s.left != nil {
			t.touch(s)
			s = s.left
		}
		n.key, n.value = s.key, s.value
		n = s
	}
	child := n.left
	if child == nil {
		child = n.right
	}
	if child != nil {
		child.parent = n.parent
		child.color = rbBlack
	}
	t.replaceChild(n, child)
	return true
}

// Len returns the entry count.
func (t *RBTree) Len() int { return t.size }

// Footprint returns allocated bytes.
func (t *RBTree) Footprint() int64 { return t.alloc.footprint() }

// Depth returns the maximum depth (test support).
func (t *RBTree) Depth() int {
	var rec func(n *rbNode) int
	rec = func(n *rbNode) int {
		if n == nil {
			return 0
		}
		l, r := rec(n.left), rec(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(t.root)
}

// validate checks BST order and red-red violations (test support).
func (t *RBTree) validate() error {
	return rbValidate(t.root, 0, ^uint64(0), true)
}

func rbValidate(n *rbNode, lo, hi uint64, loOpen bool) error {
	if n == nil {
		return nil
	}
	if !loOpen && n.key <= lo {
		return errOrder
	}
	if n.key > hi {
		return errOrder
	}
	if n.color == rbRed && n.parent != nil && n.parent.color == rbRed {
		return errRedRed
	}
	if err := rbValidate(n.left, lo, n.key-1, loOpen); err != nil {
		return err
	}
	return rbValidate(n.right, n.key, hi, false)
}

var (
	errOrder  = rbErr("rbtree: BST order violated")
	errRedRed = rbErr("rbtree: red node with red parent")
)

type rbErr string

func (e rbErr) Error() string { return string(e) }
