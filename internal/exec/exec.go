// Package exec is the execution contract shared by the two chunk
// execution tiers: the reference interpreter (internal/interp) and the
// closure compiler (internal/passes/compile).
//
// It owns the pieces both tiers must agree on bit-for-bit:
//
//   - Val, the machine value (an integer/encoded pointer or a float),
//     including its payload-integrity and mutation hooks for the prt
//     message layer;
//   - the arithmetic/comparison/cast semantics (BinOp, Cmp, Cast) — one
//     implementation, so a divergence between engines can never hide in
//     a re-implemented operator;
//   - RuntimeErr, the panic envelope every execution error travels in;
//   - Frame/Step/Run, the compiled tier's register machine; and
//   - Env, the seam interface through which compiled code reaches the
//     interpreter's memory system, boundary defense, effect
//     transactions, replay journal, and call dispatcher. The compiled
//     tier never re-implements a seam: it calls the same methods the
//     interpreter's own instruction loop uses, which is what keeps
//     recovery, Iago defense, and observability identical across tiers
//     (DESIGN.md §18).
package exec

import (
	"errors"
	"fmt"
	"math"

	"privagic/internal/ir"
	"privagic/internal/prt"
)

// Val is one machine value: an integer (or encoded pointer) in I, or a
// float in F when Fl is set. Both engines compute exclusively in Vals,
// so "the engines returned the same Val" is a meaningful bitwise check.
type Val struct {
	// I holds the integer or encoded-pointer payload.
	I int64
	// F holds the float payload when Fl is true.
	F float64
	// Fl marks the value as a float.
	Fl bool
}

// IV makes an integer value.
func IV(x int64) Val { return Val{I: x} }

// FV makes a float value.
func FV(x float64) Val { return Val{F: x, Fl: true} }

// ToF reads the value as a float (integers convert).
func ToF(v Val) float64 {
	if v.Fl {
		return v.F
	}
	return float64(v.I)
}

// PaySum contributes a machine value's exact bits to a message's payload
// integrity tag (prt.PayloadSummer).
func (v Val) PaySum() uint64 {
	if v.Fl {
		return math.Float64bits(v.F) ^ 0xf10a7
	}
	return uint64(v.I)
}

// MutatePayload returns a copy of the value with its bits xored — the
// mutator adversary's in-place payload corruption, shaped so the mutated
// message still type-checks everywhere a Val is expected.
func (v Val) MutatePayload(xor uint64) any {
	if v.Fl {
		return Val{F: math.Float64frombits(math.Float64bits(v.F) ^ xor), Fl: true}
	}
	return Val{I: v.I ^ int64(xor)}
}

// RuntimeErr carries an execution error through panics; both engines
// panic with it and the interpreter's chunk harness recovers it.
type RuntimeErr struct {
	// Err is the underlying error.
	Err error
}

// Errf panics with a formatted RuntimeErr.
func Errf(format string, args ...any) {
	panic(RuntimeErr{fmt.Errorf(format, args...)})
}

// Errs panics with a RuntimeErr wrapping a fixed message (used by
// compiled steps whose message was pre-rendered at compile time).
func Errs(msg string) {
	panic(RuntimeErr{errors.New(msg)})
}

// StepBudget bounds a single activation's block transfers, matching the
// interpreter's livelock guard.
const StepBudget = 100_000_000

// Frame is one compiled activation: a dense register file indexed by the
// compiler's slot assignment (parameters occupy the first slots).
type Frame struct {
	// Regs is the register file; slot indices are assigned at compile
	// time (compile.Fn.SlotOf).
	Regs []Val
	// Ret receives the activation's result when a return step runs.
	Ret Val
	// W is the prt worker the activation runs on; seams receive it so
	// mode checks, journaling, and metering attribute correctly.
	W *prt.Worker
	// Env is the seam interface the compiled steps call into.
	Env Env
	// Steps counts block transfers against StepBudget.
	Steps int
}

// Step is one fused instruction: it mutates the frame and returns the
// next program counter, or a negative value to finish the activation.
type Step func(fr *Frame) int

// Run drives a compiled activation to completion and returns its result.
// Execution errors surface as RuntimeErr panics, exactly like the
// interpreter's.
func Run(code []Step, fr *Frame) Val {
	for pc := 0; pc >= 0 && pc < len(code); {
		pc = code[pc](fr)
	}
	return fr.Ret
}

// Env is the seam interface compiled code executes against. The
// interpreter implements it with the very helpers its own instruction
// loop uses (sanitizer → snapshot → effect transaction → journal →
// observer, in that order), so a compiled chunk crosses every defense
// layer the interpreted chunk crosses. The differential oracle
// implements it a second time as a trace checker (internal/interp's
// shadow environment).
//
// GlobalAddr and FuncValue are resolved at compile time (a unit is
// compiled per interpreter instance, so global addresses and
// function-pointer indices bake into the closures as constants); the
// remaining methods run per instruction.
type Env interface {
	// GlobalAddr returns the encoded address of a global.
	GlobalAddr(g *ir.Global) Val
	// FuncValue returns the function-pointer value of a function.
	FuncValue(fn *ir.Function) Val
	// Alloca services a stack allocation.
	Alloca(w *prt.Worker, t *ir.Alloca) Val
	// Malloc services a heap allocation of count elements.
	Malloc(w *prt.Worker, t *ir.Malloc, count Val) Val
	// Load performs the mode-checked load of t's type at addr.
	Load(w *prt.Worker, t *ir.Load, addr uint64) Val
	// Store performs the mode-checked store of v at addr.
	Store(w *prt.Worker, t *ir.Store, addr uint64, v Val)
	// FieldAddr computes a field address, following the split-structure
	// indirection for colored fields.
	FieldAddr(w *prt.Worker, t *ir.FieldAddr, base Val) Val
	// ElemStride returns the in-memory stride of an element type
	// (split-structure layouts override the nominal size). Called at
	// compile time.
	ElemStride(elem ir.Type) int64
	// Call dispatches a call instruction with its evaluated callee value
	// (meaningful for indirect calls) and arguments: runtime intrinsics,
	// direct chunk calls, builtins, and indirect calls through interface
	// versions.
	Call(w *prt.Worker, t *ir.Call, callee Val, args []Val) Val
}

// SeamlessLoader is an optional Env extension used ONLY by the negative
// differential-oracle test: a load compiled with
// compile.Options.SkipLoadSeam calls it to read backing memory directly,
// bypassing the snapshot/transaction/journal seams, proving the oracle
// catches a compiled chunk that skips a seam. Production compiles never
// emit calls to it.
type SeamlessLoader interface {
	// SeamlessLoad reads t's type at addr straight from backing memory.
	SeamlessLoad(w *prt.Worker, t *ir.Load, addr uint64) Val
}

// BinOp applies a binary operator with the engines' shared semantics:
// float arithmetic when either side is a float, 64-bit integer
// arithmetic otherwise, shifts masked to 6 bits, and division/remainder
// by zero raising a RuntimeErr. The error strings keep the historical
// "interp:" prefix — the differential oracle compares them textually
// across engines.
func BinOp(op ir.BinOpKind, x, y Val) Val {
	if x.Fl || y.Fl {
		a, b := ToF(x), ToF(y)
		switch op {
		case ir.OpAdd:
			return FV(a + b)
		case ir.OpSub:
			return FV(a - b)
		case ir.OpMul:
			return FV(a * b)
		case ir.OpDiv:
			return FV(a / b)
		}
		Errf("interp: float %s unsupported", op)
	}
	a, b := x.I, y.I
	switch op {
	case ir.OpAdd:
		return IV(a + b)
	case ir.OpSub:
		return IV(a - b)
	case ir.OpMul:
		return IV(a * b)
	case ir.OpDiv:
		if b == 0 {
			Errf("interp: integer division by zero")
		}
		return IV(a / b)
	case ir.OpRem:
		if b == 0 {
			Errf("interp: integer remainder by zero")
		}
		return IV(a % b)
	case ir.OpAnd:
		return IV(a & b)
	case ir.OpOr:
		return IV(a | b)
	case ir.OpXor:
		return IV(a ^ b)
	case ir.OpShl:
		return IV(a << uint64(b&63))
	case ir.OpShr:
		return IV(a >> uint64(b&63))
	}
	Errf("interp: unknown binop %v", op)
	return Val{}
}

// Cmp applies a comparison with the engines' shared semantics, returning
// integer 1 or 0.
func Cmp(pred ir.CmpPred, x, y Val) Val {
	var r bool
	if x.Fl || y.Fl {
		a, b := ToF(x), ToF(y)
		switch pred {
		case ir.CmpEq:
			r = a == b
		case ir.CmpNe:
			r = a != b
		case ir.CmpLt:
			r = a < b
		case ir.CmpLe:
			r = a <= b
		case ir.CmpGt:
			r = a > b
		case ir.CmpGe:
			r = a >= b
		}
	} else {
		a, b := x.I, y.I
		switch pred {
		case ir.CmpEq:
			r = a == b
		case ir.CmpNe:
			r = a != b
		case ir.CmpLt:
			r = a < b
		case ir.CmpLe:
			r = a <= b
		case ir.CmpGt:
			r = a > b
		case ir.CmpGe:
			r = a >= b
		}
	}
	if r {
		return IV(1)
	}
	return IV(0)
}

// Cast converts a value to a target type with the engines' shared
// semantics: integer narrowing sign-extends back to 64 bits, float↔int
// converts, pointer and function casts preserve the word.
func Cast(v Val, to ir.Type) Val {
	switch tt := to.(type) {
	case ir.IntType:
		x := v.I
		if v.Fl {
			x = int64(v.F)
		}
		switch tt.Bits {
		case 1:
			return IV(x & 1)
		case 8:
			return IV(int64(int8(x)))
		case 32:
			return IV(int64(int32(x)))
		default:
			return IV(x)
		}
	case ir.FloatType:
		if v.Fl {
			return v
		}
		return FV(float64(v.I))
	default:
		// Pointer and function casts preserve the word.
		return IV(v.I)
	}
}
