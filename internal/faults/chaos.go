package faults

import (
	"math/rand"
	"sync"
	"time"

	"privagic/internal/obs"
)

// ShardCluster is the fault surface of a sharded deployment: what the
// chaos monkey needs to crash, wedge and resurrect whole shards mid-run.
// internal/cluster.Cluster implements it; declaring the interface here
// keeps the dependency arrow pointing the same way as the rest of the
// fault layer (faults knows shapes, never the cluster package).
type ShardCluster interface {
	NumShards() int
	Kill(shard int) error
	Hang(shard int, d time.Duration) error
	Respawn(shard int) error
	Running(shard int) bool
}

// ChaosConfig tunes the shard-level chaos monkey. The zero value injects
// one kill with the default timing.
type ChaosConfig struct {
	Seed int64

	// Actions is how many shard faults to inject (default 1).
	Actions int

	// MinDelay/MaxDelay bound the pause before each action (defaults
	// 1ms/5ms): faults land at seeded-random points of the run, not at
	// fixed phases.
	MinDelay, MaxDelay time.Duration

	// HangFraction is the probability an action wedges the shard instead
	// of killing it (default 0: kills only). Hangs exercise the
	// fenced-but-alive path — the shard recovers on its own but must stay
	// quarantined until a respawn.
	HangFraction float64
	// HangFor is how long a hung shard stalls (default 20ms). Must exceed
	// the router's probe budget or the hang is survivable noise.
	HangFor time.Duration

	// RespawnAfter is how long a disrupted shard stays down before the
	// monkey resurrects it with a cold store and a fresh epoch (default
	// 10ms). The respawn is the recovery half of the experiment: it must
	// trigger readmission, and its cold store must never surface stale
	// data.
	RespawnAfter time.Duration

	// MaxDown caps concurrently disrupted shards (default NumShards-1, so
	// at least one survivor always holds the keyspace).
	MaxDown int

	// SettleFunc, when set, gates the release of a victim's MaxDown
	// budget after its respawn: the monkey polls it until true before
	// counting the shard recovered. Replication soaks wire it to the
	// router's ring membership, so MaxDown bounds shards missing from
	// the ROUTER's view — a respawned shard still waiting on
	// anti-entropy readmission holds its budget, keeping the injected
	// faults inside the failure model the zero-loss oracle assumes
	// (R replicas tolerate R-1 concurrent losses).
	SettleFunc func(shard int) bool
}

// Chaos kills, hangs and respawns shards of a ShardCluster at seeded
// random times. Like the message-level Injector it reports what it did
// through Counters; unlike the Injector it operates on wall-clock time —
// shard failure detection is itself a timing phenomenon, so the soak
// asserts invariants that hold for every interleaving rather than
// replaying one.
type Chaos struct {
	cfg     ChaosConfig
	cluster ShardCluster
	rng     *rand.Rand

	mu        sync.Mutex
	disrupted map[int]bool
	kills     int64
	hangs     int64
	respawns  int64

	counterList []obs.NamedCounter

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
	wg       sync.WaitGroup
}

// NewChaos builds a chaos monkey over cluster. Call Start to unleash it.
func NewChaos(cluster ShardCluster, cfg ChaosConfig) *Chaos {
	if cfg.Actions <= 0 {
		cfg.Actions = 1
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = time.Millisecond
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = 5 * time.Millisecond
		if cfg.MaxDelay < cfg.MinDelay {
			cfg.MaxDelay = cfg.MinDelay
		}
	}
	if cfg.HangFor <= 0 {
		cfg.HangFor = 20 * time.Millisecond
	}
	if cfg.RespawnAfter <= 0 {
		cfg.RespawnAfter = 10 * time.Millisecond
	}
	if cfg.MaxDown <= 0 || cfg.MaxDown >= cluster.NumShards() {
		cfg.MaxDown = cluster.NumShards() - 1
		if cfg.MaxDown < 1 {
			cfg.MaxDown = 1
		}
	}
	c := &Chaos{
		cfg:       cfg,
		cluster:   cluster,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		disrupted: map[int]bool{},
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	c.counterList = []obs.NamedCounter{
		{Name: "kills", Load: c.locked(&c.kills)},
		{Name: "hangs", Load: c.locked(&c.hangs)},
		{Name: "respawns", Load: c.locked(&c.respawns)},
	}
	return c
}

// locked adapts a mutex-guarded tally to the NamedCounter Load shape.
func (c *Chaos) locked(v *int64) func() int64 {
	return func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return *v
	}
}

// Start launches the chaos loop.
func (c *Chaos) Start() {
	go c.run()
}

// Wait blocks until every configured action has been injected and every
// scheduled respawn has completed — the cluster is whole again.
func (c *Chaos) Wait() {
	<-c.doneCh
	c.wg.Wait()
}

// Stop aborts the remaining actions and waits for in-flight respawns, so
// teardown never races a resurrecting shard.
func (c *Chaos) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	<-c.doneCh
	c.wg.Wait()
}

func (c *Chaos) run() {
	defer close(c.doneCh)
	for n := 0; n < c.cfg.Actions; n++ {
		span := int64(c.cfg.MaxDelay-c.cfg.MinDelay) + 1
		delay := c.cfg.MinDelay + time.Duration(c.rng.Int63n(span))
		select {
		case <-c.stopCh:
			return
		case <-time.After(delay):
		}
		c.act()
	}
}

// act injects one fault against a random undisrupted shard, honoring the
// survivor floor, and schedules the victim's resurrection.
func (c *Chaos) act() {
	hang := c.rng.Float64() < c.cfg.HangFraction

	c.mu.Lock()
	if len(c.disrupted) >= c.cfg.MaxDown {
		c.mu.Unlock()
		return
	}
	var candidates []int
	for i := 0; i < c.cluster.NumShards(); i++ {
		if !c.disrupted[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		c.mu.Unlock()
		return
	}
	victim := candidates[c.rng.Intn(len(candidates))]
	c.disrupted[victim] = true
	c.mu.Unlock()

	var err error
	if hang {
		err = c.cluster.Hang(victim, c.cfg.HangFor)
	} else {
		err = c.cluster.Kill(victim)
	}
	if err != nil {
		c.mu.Lock()
		delete(c.disrupted, victim)
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	if hang {
		c.hangs++
	} else {
		c.kills++
	}
	c.mu.Unlock()

	// Resurrection restores capacity and — because Respawn always means a
	// cold store at a fresh epoch — is the only path back into the ring.
	c.wg.Add(1)
	time.AfterFunc(c.cfg.RespawnAfter, func() {
		defer c.wg.Done()
		if c.cluster.Respawn(victim) == nil {
			c.mu.Lock()
			c.respawns++
			c.mu.Unlock()
		}
		// A respawned shard is not recovered until it settles: with
		// replication the router readmits it only after anti-entropy
		// sync, and releasing the MaxDown budget before that would let
		// the monkey take down a second shard while this one is still
		// outside the ring — silently exceeding the failure model the
		// zero-loss oracle assumes.
		if c.cfg.SettleFunc != nil {
			for !c.cfg.SettleFunc(victim) {
				select {
				case <-c.stopCh:
					c.mu.Lock()
					delete(c.disrupted, victim)
					c.mu.Unlock()
					return
				case <-time.After(time.Millisecond):
				}
			}
		}
		c.mu.Lock()
		delete(c.disrupted, victim)
		c.mu.Unlock()
	})
}

// Counters reports the monkey's activity (CounterSource; snapshots show
// these under the chaos. prefix — obs.SnapshotCounters over the static
// list built in NewChaos).
func (c *Chaos) Counters() map[string]int64 {
	return obs.SnapshotCounters(c.counterList)
}

// RegisterMetrics folds the monkey's counters into reg under the chaos.
// prefix (the chaos.* block of the metric catalogue).
func (c *Chaos) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterSource("chaos", c)
}

var _ CounterSource = (*Chaos)(nil)
