package faults_test

import (
	"testing"
	"time"

	"privagic"
)

// TestFaultCountersUniform pins the uniform counter surface: both fault
// classes (message injector, memory mutator) export name -> count maps
// through faults.CounterSource, and the facade aggregates them with
// per-class prefixes that agree with the typed stats. The two adversaries
// are exercised on separate instances — each claims the runtime's
// message interceptor, so the last one enabled would own the queues.
func TestFaultCountersUniform(t *testing.T) {
	prog, err := privagic.Compile("figure6.c", figure6Src, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"main"},
	})
	if err != nil {
		t.Fatal(err)
	}

	inj := prog.Instantiate(nil)
	defer inj.Close()
	inj.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: 100 * time.Millisecond})
	inj.EnableFaultInjection(privagic.FaultOptions{Seed: 3, Duplicate: 0.2})
	inj.Call("main")
	got := inj.FaultCounters()
	for _, key := range []string{
		"inject.delivered", "inject.dropped", "inject.duplicated",
		"inject.reordered", "inject.forged", "inject.crashes",
	} {
		if _, ok := got[key]; !ok {
			t.Errorf("FaultCounters missing %q (got %v)", key, got)
		}
	}
	if fs := inj.FaultStats(); got["inject.duplicated"] != fs.Duplicated {
		t.Errorf("inject.duplicated = %d, want %d", got["inject.duplicated"], fs.Duplicated)
	}
	if got["inject.delivered"] == 0 {
		t.Error("injector saw no traffic; the run exercised nothing")
	}

	// The flip seam triggers on enclave reads of U memory, which figure6
	// never performs — the two-color hashmap's split-struct bodies give
	// the mutator real targets.
	hm := compileHashmap2(t)
	mut := hm.Instantiate(nil)
	defer mut.Close()
	mut.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: 100 * time.Millisecond})
	mut.EnableBoundaryDefense(privagic.FullBoundaryDefense())
	mut.EnableMutator(privagic.MutatorOptions{Seed: 3, FlipAfterRead: 0.5})
	mut.Call("run_ycsb")
	got = mut.FaultCounters()
	for _, key := range []string{
		"mutate.flips", "mutate.smashes", "mutate.payload_mutations", "mutate.restores",
	} {
		if _, ok := got[key]; !ok {
			t.Errorf("FaultCounters missing %q (got %v)", key, got)
		}
	}
	if ms := mut.MutatorStats(); got["mutate.flips"] != ms.Flips {
		t.Errorf("mutate.flips = %d, want %d", got["mutate.flips"], ms.Flips)
	}
	if got["mutate.flips"] == 0 {
		t.Error("mutator flipped nothing at probability 0.5; the run exercised nothing")
	}

	// An instance with no adversary enabled reports an empty map, not nil
	// panics or stale counters.
	plain := prog.Instantiate(nil)
	defer plain.Close()
	if n := len(plain.FaultCounters()); n != 0 {
		t.Errorf("undisturbed instance reports %d counters, want 0", n)
	}
}
