package faults_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"privagic"
	"privagic/internal/faults"
	"privagic/internal/sources"
)

// The differential soak is the acceptance test of the compiled execution
// tier: the same workloads and adversary schedules as the recovery and
// Iago soaks, but every instance runs under the differential oracle —
// the interpreter executes each chunk as the engine of record while the
// compiled shadow re-executes it against the recorded trace, and any
// disagreement (value, boundary crossing, message plan, error text) is a
// hard ErrDivergence. The sweep's contract: across hundreds of chaos and
// Iago schedules, zero divergences. Crashes must still fully recover and
// mutations must still end in the exact answer or a typed violation —
// the oracle may never weaken the guarantees it is auditing.

// diffWorkloads are the two soak programs compiled under the oracle: the
// walkthrough (multi-color spawns, conts, builtin output) and the
// two-color hashmap (split structs, vector crossings, enclave state).
type diffWorkload struct {
	prog  *privagic.Program
	entry string
	check func(ret int64, inst *privagic.Instance) string
}

// diffWorkloadsFor compiles both soak workloads with the differential
// engine and derives each one's expected answer from a clean oracle run
// (which itself must not diverge).
func diffWorkloadsFor(t *testing.T) []diffWorkload {
	t.Helper()
	fig, err := privagic.Compile("figure6.c", figure6Src, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"main"},
		Engine: privagic.EngineDifferential,
	})
	if err != nil {
		t.Fatal(err)
	}
	hm, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
		Engine: privagic.EngineDifferential,
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := hm.Instantiate(nil)
	want, err := clean.Call("run_ycsb")
	divs := clean.ExecStats().OracleDivergences
	clean.Close()
	if err != nil {
		t.Fatalf("clean differential run failed: %v", err)
	}
	if divs != 0 {
		t.Fatalf("clean differential run reported %d divergences", divs)
	}
	if want <= 0 {
		t.Fatalf("clean run returned %d hits; workload is degenerate", want)
	}
	return []diffWorkload{
		{fig, "main", func(ret int64, inst *privagic.Instance) string {
			if ret != 42 {
				return "ret != 42"
			}
			if c := strings.Count(inst.Output(), "Hello"); c != 1 {
				return fmt.Sprintf("g's output appeared %d times, want exactly once", c)
			}
			return ""
		}},
		{hm, "run_ycsb", func(ret int64, _ *privagic.Instance) string {
			if ret != want {
				return "hit count diverged from the clean run"
			}
			return ""
		}},
	}
}

// assertNoDivergence is the soak's core check, applied to every single
// schedule regardless of outcome: the error (if any) must not be — or
// wrap — a divergence, and the instance's divergence counter must be
// zero.
func assertNoDivergence(t *testing.T, seed int64, err error, inst *privagic.Instance) {
	t.Helper()
	if errors.Is(err, privagic.ErrDivergence) {
		t.Fatalf("seed %d: DIVERGENCE: %v", seed, err)
	}
	if n := inst.ExecStats().OracleDivergences; n != 0 {
		t.Fatalf("seed %d: OracleDivergences = %d (err: %v)", seed, n, err)
	}
}

// TestSoakDifferentialChaos sweeps both workloads through the recovery
// soak's crash schedules (entry crashes, mid-body crashes after buffered
// writes, mixes) with recovery enabled and the oracle armed. Every run
// must fully recover to the exact answer — replays re-enter the oracle —
// and no schedule may report a divergence.
func TestSoakDifferentialChaos(t *testing.T) {
	workloads := diffWorkloadsFor(t)
	n := soakCount(faults.Schedules().DiffChaos, testing.Short())
	var crashes, replays int64
	for seed := int64(1); seed <= int64(n); seed++ {
		wl := workloads[seed%int64(len(workloads))]
		inst := wl.prog.Instantiate(nil)
		inst.EnableSpawnValidation()
		inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: recoveryWaitTimeout})
		inst.EnableRecovery(privagic.RecoveryOptions{MaxAttempts: recoveryBudget})
		inst.EnableFaultInjection(recoveryFaultsFor(seed))

		type result struct {
			ret int64
			err error
		}
		done := make(chan result, 1)
		go func() {
			ret, err := inst.Call(wl.entry)
			done <- result{ret, err}
		}()
		var res result
		select {
		case res = <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: DEADLOCK: call did not complete in 10s (faults: %+v, recovery: %+v)",
				seed, inst.FaultStats(), inst.RecoveryStats())
		}
		assertNoDivergence(t, seed, res.err, inst)
		fs, rs := inst.FaultStats(), inst.RecoveryStats()
		if res.err != nil {
			t.Fatalf("seed %d: USER-VISIBLE ERROR despite recovery: %v (faults: %+v, recovery: %+v)",
				seed, res.err, fs, rs)
		}
		if msg := wl.check(res.ret, inst); msg != "" {
			t.Fatalf("seed %d: WRONG ANSWER under the oracle: %s (faults: %+v, recovery: %+v)",
				seed, msg, fs, rs)
		}
		crashes += fs.Crashes
		replays += rs.Replays
		inst.Close()
	}
	t.Logf("differential chaos soak over %d schedules: %d crashes injected, %d replays, zero divergences",
		n, crashes, replays)
	if crashes == 0 {
		t.Error("sweep injected no crashes; the soak proved nothing")
	}
}

// TestSoakDifferentialIago sweeps both workloads through the Iago soak's
// mutator classes (double-fetch flips, pointer smashes, payload
// mutation, the concurrent flipper) on hardened instances running under
// the oracle. Every run must end in the exact answer or a typed error —
// and never a divergence: the boundary seams are compiled-in calls on
// the same interfaces the interpreter uses, so the adversary corrupting
// U memory must present identically to both engines.
func TestSoakDifferentialIago(t *testing.T) {
	workloads := diffWorkloadsFor(t)
	n := soakCount(faults.Schedules().DiffIago, testing.Short())
	var out iagoOutcome
	for seed := int64(1); seed <= int64(n); seed++ {
		wl := workloads[seed%int64(len(workloads))]
		cl := iagoClassFor(seed)
		inst := wl.prog.Instantiate(nil)
		inst.EnableSpawnValidation()
		inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: soakWaitTimeout})
		inst.EnableBoundaryDefense(cl.def)
		inst.EnableMutator(cl.mut)

		type result struct {
			ret int64
			err error
		}
		done := make(chan result, 1)
		go func() {
			ret, err := inst.Call(wl.entry)
			done <- result{ret, err}
		}()
		var res result
		select {
		case res = <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: DEADLOCK: call did not complete in 10s (mutator: %+v, boundary: %+v)",
				seed, inst.MutatorStats(), inst.BoundaryStats())
		}
		assertNoDivergence(t, seed, res.err, inst)
		ms, bs := inst.MutatorStats(), inst.BoundaryStats()
		switch {
		case res.err == nil:
			if msg := wl.check(res.ret, inst); msg != "" {
				t.Fatalf("seed %d: SILENT WRONG ANSWER under the oracle: %s (mutator: %+v, boundary: %+v)",
					seed, msg, ms, bs)
			}
			out.correct++
		case errors.Is(res.err, privagic.ErrIagoViolation):
			out.violations++
		case errors.Is(res.err, privagic.ErrWaitTimeout):
			out.timeouts++
		case errors.Is(res.err, privagic.ErrEnclaveAbort):
			out.aborts++
		case errors.Is(res.err, privagic.ErrStopped):
			out.stopped++
		default:
			t.Fatalf("seed %d: untyped failure %v (mutator: %+v, boundary: %+v)", seed, res.err, ms, bs)
		}
		out.mutations += ms.Total()
		out.memDetections += bs.Violations
		out.payloadDetections += bs.PayloadTampered
		inst.Close()
	}
	t.Logf("differential iago soak over %d schedules: %d exact, %d violations, %d timeouts, %d aborts, %d stopped; %d mutations, %d pointer detections, %d payload rejections; zero divergences",
		n, out.correct, out.violations, out.timeouts, out.aborts, out.stopped, out.mutations, out.memDetections, out.payloadDetections)
	if out.mutations == 0 {
		t.Error("sweep injected no mutations; the soak proved nothing")
	}
	if out.correct == 0 {
		t.Error("no schedule reached the exact answer; even dormant-adversary seeds derailed")
	}
}
