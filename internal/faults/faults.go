// Package faults is the deterministic fault-injection layer of the
// reproduction: it plays the §4 attacker (and the unreliable world) against
// the runtime. Installed as the prt.Interceptor, it sits on every queue
// delivery and — under a seeded RNG — drops, duplicates, delays and
// reorders messages, forges hostile ones (unknown cont tags,
// non-whitelisted spawns, malformed payloads), and crashes chunks mid-run
// (the simulated AEX). The supervision layer in prt is what must survive
// all of it: every faulted execution has to end in either the correct
// result or a typed abort/timeout error — never a deadlock, never a silent
// wrong answer. The soak test drives exactly that envelope.
//
// Determinism: every decision is drawn from one seeded rand.Rand in
// delivery order, and delayed/reordered messages are released on hop
// counts (subsequent deliveries), not wall-clock time. A single-threaded
// protocol therefore replays identically under the same seed. A background
// flusher additionally releases held messages after a wall-clock bound so
// an idle protocol cannot strand them forever; it only affects timing,
// never the decision sequence.
//
// Both adversaries report what they did through the CounterSource
// interface; when the observability registry is armed their counters
// appear in snapshots under the inject. and mutate. prefixes (see
// OBSERVABILITY.md).
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/prt"
)

// Config sets the per-message fault probabilities (each in [0,1]) and the
// injector's timing knobs. The zero value injects nothing.
type Config struct {
	Seed int64

	Drop      float64 // message vanishes from the queue
	Duplicate float64 // message is delivered twice (replay)
	Delay     float64 // message is held for DelayHops deliveries
	Reorder   float64 // message is delivered after the next one
	Forge     float64 // a hostile message is injected alongside
	Crash     float64 // a spawned chunk panics at entry (AEX before any work)
	// CrashMid is the per-store probability that a spawned chunk panics
	// in the middle of its body — after some of its writes were issued.
	// It exercises the recovery layer's effect buffering: an entry crash
	// leaves trivially no trace, a mid-run crash only does if the
	// interpreter buffered the partial writes. Wire it with
	// Interp.SetCrashPoint(injector.CrashPoint).
	CrashMid float64
	// MaxCrashes caps the total number of injected crashes (entry and
	// mid-run combined; 0 = unlimited). A soak that wants every request
	// to recover sets it at or below the retry budget, making success
	// deterministic instead of probabilistic.
	MaxCrashes int

	// DelayHops is how many subsequent deliveries a delayed message is
	// held for (default 2).
	DelayHops int

	// Retransmit, when set, re-delivers dropped messages after
	// RetransmitAfter (default 2ms), charging CostModel.Retransmit per
	// redelivery — the supervision transport's answer to lossy queues.
	// Without it a drop is permanent and the receiver's deadline is the
	// only recovery.
	Retransmit      bool
	RetransmitAfter time.Duration

	// FlushAfter bounds how long a delayed/reordered message can be held
	// on wall-clock time when no further traffic advances the hop counter
	// (default 5ms).
	FlushAfter time.Duration

	// DisableFlusher turns the background flusher off; held messages are
	// then released only by hop counts or an explicit Flush call. Unit
	// tests use this for fully deterministic delivery orders.
	DisableFlusher bool
}

// Stats counts what the injector did.
type Stats struct {
	Delivered     int64 // messages passed through unharmed
	Dropped       int64
	Duplicated    int64
	Delayed       int64
	Reordered     int64
	Forged        int64
	Crashes       int64
	Retransmitted int64
}

// InjectedCrash is the panic value of a crash injection; prt's runSpawn
// recovery converts it into an *EnclaveAbort whose Cause unwraps to it.
// Store is the 1-based buffered-store number a mid-run crash fired at
// (0 for an entry crash).
type InjectedCrash struct {
	ChunkID int
	Store   int
}

func (e *InjectedCrash) Error() string {
	if e.Store > 0 {
		return fmt.Sprintf("faults: injected crash in chunk %d at store %d", e.ChunkID, e.Store)
	}
	return fmt.Sprintf("faults: injected crash in chunk %d", e.ChunkID)
}

// InjectedFault marks the panic value as a deliberate fault injection.
// Executors that normally absorb chunk panics into recorded program
// errors (the interpreter) match this structural interface and re-panic
// instead, so the crash reaches the runtime's recover and becomes an
// *EnclaveAbort the recovery layer can replay.
func (e *InjectedCrash) InjectedFault() {}

// heldMsg is a captured delivery awaiting release.
type heldMsg struct {
	to  *prt.Worker
	msg prt.Message
	// releaseAtHop releases on the hop counter (deterministic path);
	// deadline releases on wall-clock (progress guarantee / retransmit).
	releaseAtHop uint64
	deadline     time.Time
	retransmit   bool // charge the retransmit cost when released
}

// Injector implements prt.Interceptor. Create it with Attach.
type Injector struct {
	rt  *prt.Runtime
	cfg Config

	mu   sync.Mutex
	rng  *rand.Rand
	hop  uint64
	held []heldMsg

	stats struct {
		delivered, dropped, duplicated, delayed   atomic.Int64
		reordered, forged, crashes, retransmitted atomic.Int64
	}

	stop     chan struct{}
	stopOnce sync.Once
}

// Attach installs the injector on the runtime: it becomes the interceptor
// for every message delivery and (when cfg.Crash > 0) wraps rt.Exec so
// chunks can be crashed mid-run. Call it before the workload starts;
// wrapping Exec is not synchronized against running threads.
func Attach(rt *prt.Runtime, cfg Config) *Injector {
	if cfg.DelayHops <= 0 {
		cfg.DelayHops = 2
	}
	if cfg.RetransmitAfter <= 0 {
		cfg.RetransmitAfter = 2 * time.Millisecond
	}
	if cfg.FlushAfter <= 0 {
		cfg.FlushAfter = 5 * time.Millisecond
	}
	in := &Injector{
		rt:   rt,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
	}
	rt.SetInterceptor(in)
	if cfg.Crash > 0 {
		orig := rt.Exec
		rt.Exec = func(w *prt.Worker, chunkID int, args []any) any {
			if in.decide(cfg.Crash) && in.takeCrashBudget() {
				panic(&InjectedCrash{ChunkID: chunkID})
			}
			return orig(w, chunkID, args)
		}
	}
	if !cfg.DisableFlusher {
		go in.flusher()
	}
	return in
}

// decide draws one Bernoulli decision from the seeded stream.
func (in *Injector) decide(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64() < p
	in.mu.Unlock()
	return v
}

// takeCrashBudget consumes one injected crash if MaxCrashes permits,
// incrementing the crash counter on success.
func (in *Injector) takeCrashBudget() bool {
	for {
		n := in.stats.crashes.Load()
		if in.cfg.MaxCrashes > 0 && n >= int64(in.cfg.MaxCrashes) {
			return false
		}
		if in.stats.crashes.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// CrashPoint is the interpreter-facing mid-run crash hook (wire it with
// Interp.SetCrashPoint): it is consulted on every buffered store of a
// spawned chunk and returns the panic value of an injected mid-run crash,
// or nil. Decisions come from the shared seeded stream, so a
// single-threaded protocol replays identically under the same seed.
func (in *Injector) CrashPoint(workerIdx, chunkID, storeN int) any {
	if !in.decide(in.cfg.CrashMid) || !in.takeCrashBudget() {
		return nil
	}
	_ = workerIdx
	return &InjectedCrash{ChunkID: chunkID, Store: storeN}
}

// Deliver is the interceptor hook: it decides the fate of one message.
// Faults compose left to right and at most one queue-level fault fires per
// message (forgery is independent — it adds a message, it does not alter
// this one).
func (in *Injector) Deliver(to *prt.Worker, msg prt.Message) {
	in.mu.Lock()
	in.hop++
	r := in.rng.Float64()
	now := time.Now()
	switch {
	case r < in.cfg.Drop:
		in.stats.dropped.Add(1)
		if in.cfg.Retransmit {
			// The transport notices the loss and re-sends later.
			in.held = append(in.held, heldMsg{
				to: to, msg: msg,
				deadline:   now.Add(in.cfg.RetransmitAfter),
				retransmit: true,
			})
		}
	case r < in.cfg.Drop+in.cfg.Duplicate:
		in.stats.duplicated.Add(1)
		to.EnqueueRaw(msg)
		to.EnqueueRaw(msg)
	case r < in.cfg.Drop+in.cfg.Duplicate+in.cfg.Delay:
		in.stats.delayed.Add(1)
		in.held = append(in.held, heldMsg{
			to: to, msg: msg,
			releaseAtHop: in.hop + uint64(in.cfg.DelayHops),
			deadline:     now.Add(in.cfg.FlushAfter),
		})
	case r < in.cfg.Drop+in.cfg.Duplicate+in.cfg.Delay+in.cfg.Reorder:
		// Held for exactly one hop: the next delivery overtakes it.
		in.stats.reordered.Add(1)
		in.held = append(in.held, heldMsg{
			to: to, msg: msg,
			releaseAtHop: in.hop + 1,
			deadline:     now.Add(in.cfg.FlushAfter),
		})
	default:
		in.stats.delivered.Add(1)
		to.EnqueueRaw(msg)
	}
	// Release after the current message is placed: a message held for
	// reordering must come out behind the delivery that overtakes it.
	in.releaseDueLocked()
	forge := in.cfg.Forge > 0 && in.rng.Float64() < in.cfg.Forge
	var forged prt.Message
	if forge {
		forged = in.forgeLocked(msg)
	}
	in.mu.Unlock()
	if forge {
		in.stats.forged.Add(1)
		to.DeliverHostile(forged)
	}
}

// forgeLocked crafts a hostile message in the style of the §4 attacker.
// The auth stamp is stripped by DeliverHostile; the variants exercise the
// runtime's different rejection paths (and would each be dangerous if the
// admit gate let them through).
func (in *Injector) forgeLocked(seen prt.Message) prt.Message {
	switch in.rng.Intn(3) {
	case 0:
		// A cont with a tag the partitioner never allocated.
		return prt.Message{Kind: prt.MsgCont, Tag: 1 << 20, Payload: int64(in.rng.Int())}
	case 1:
		// A spawn of a chunk outside every whitelist.
		return prt.Message{Kind: prt.MsgSpawn, ChunkID: 1<<20 + in.rng.Intn(1024)}
	default:
		// A malformed completion mimicking the message just seen.
		return prt.Message{Kind: prt.MsgDone, From: seen.From, Payload: "\x00garbage"}
	}
}

// releaseDueLocked re-enqueues held messages whose hop count came up.
func (in *Injector) releaseDueLocked() {
	if len(in.held) == 0 {
		return
	}
	kept := in.held[:0]
	for _, h := range in.held {
		if h.releaseAtHop != 0 && h.releaseAtHop <= in.hop {
			in.releaseLocked(h)
			continue
		}
		kept = append(kept, h)
	}
	in.held = kept
}

func (in *Injector) releaseLocked(h heldMsg) {
	if h.retransmit {
		in.stats.retransmitted.Add(1)
		in.rt.Meter.ChargeRetransmit(&in.rt.Machine.Cost)
	}
	h.to.EnqueueRaw(h.msg)
}

// Flush releases every held message immediately (test hook: deterministic
// runs disable the background flusher and call this at barriers).
func (in *Injector) Flush() {
	in.mu.Lock()
	for _, h := range in.held {
		in.releaseLocked(h)
	}
	in.held = nil
	in.mu.Unlock()
}

// flusher guarantees progress when traffic stops: held messages are
// released once their wall-clock deadline passes even if no further hops
// advance the counter.
func (in *Injector) flusher() {
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-in.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		in.mu.Lock()
		kept := in.held[:0]
		for _, h := range in.held {
			if !h.deadline.IsZero() && now.After(h.deadline) {
				in.releaseLocked(h)
				continue
			}
			kept = append(kept, h)
		}
		in.held = kept
		in.mu.Unlock()
	}
}

// Stats snapshots the injector's counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Delivered:     in.stats.delivered.Load(),
		Dropped:       in.stats.dropped.Load(),
		Duplicated:    in.stats.duplicated.Load(),
		Delayed:       in.stats.delayed.Load(),
		Reordered:     in.stats.reordered.Load(),
		Forged:        in.stats.forged.Load(),
		Crashes:       in.stats.crashes.Load(),
		Retransmitted: in.stats.retransmitted.Load(),
	}
}

// Total faults injected (every category except clean deliveries).
func (s Stats) Total() int64 {
	return s.Dropped + s.Duplicated + s.Delayed + s.Reordered + s.Forged + s.Crashes
}

// Counters exposes the injector's counters in the uniform name -> count
// form shared by every fault class (the Mutator exports the same shape),
// so harnesses can aggregate and print fault activity without knowing
// which adversary produced it.
func (in *Injector) Counters() map[string]int64 {
	s := in.Stats()
	return map[string]int64{
		"delivered":     s.Delivered,
		"dropped":       s.Dropped,
		"duplicated":    s.Duplicated,
		"delayed":       s.Delayed,
		"reordered":     s.Reordered,
		"forged":        s.Forged,
		"crashes":       s.Crashes,
		"retransmitted": s.Retransmitted,
	}
}

// Close detaches the injector from the runtime, stops the flusher, and
// releases any still-held messages so no delivery is silently lost at
// teardown.
func (in *Injector) Close() {
	in.stopOnce.Do(func() {
		close(in.stop)
		in.rt.SetInterceptor(nil)
		in.Flush()
	})
}
