package faults

import (
	"math/rand"
	"sync"
	"time"

	"privagic/internal/netfaults"
	"privagic/internal/obs"
)

// GrayChaos is the network-level twin of the shard-level Chaos monkey:
// instead of killing processes it degrades wires. It arms seeded-random
// gray faults — latency spikes, bandwidth throttles, asymmetric
// partitions, mid-message resets, byte corruption — on the
// fault-injecting links in front of a cluster's shards, then heals them
// after a bounded dwell. Every shard stays alive the whole time; only
// the network lies. The gray soak runs the router's traffic through
// these links and asserts the same oracle as the crash soak: every read
// fresh-or-miss, every failure typed, never a wrong answer.
type GrayChaos struct {
	cfg   GrayChaosConfig
	links []*netfaults.Link
	rng   *rand.Rand

	mu               sync.Mutex
	degraded         map[int]bool
	latencySpikes    int64
	throttles        int64
	partitions       int64
	resetsArmed      int64
	corruptionsArmed int64
	heals            int64

	counterList []obs.NamedCounter

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
	wg       sync.WaitGroup
}

// GrayChaosConfig tunes the gray monkey. The zero value arms one fault
// with the default timing and magnitudes.
type GrayChaosConfig struct {
	Seed int64

	// Actions is how many gray faults to arm (default 1).
	Actions int

	// MinDelay/MaxDelay bound the pause before each action (defaults
	// 1ms/5ms), so faults land at seeded-random points of the run.
	MinDelay, MaxDelay time.Duration

	// HealAfter is how long an armed fault dwells before the link is
	// healed (default 15ms). Dwell must comfortably exceed the router's
	// probe interval or the degradation is survivable noise that never
	// exercises demotion.
	HealAfter time.Duration

	// MaxDegraded caps concurrently degraded links (default NumLinks-1,
	// so at least one clean path always exists).
	MaxDegraded int

	// Latency/Jitter are the magnitude of an armed latency spike
	// (defaults 10ms / Latency/2). Spikes are armed on the data class
	// only: the probe path answering while data crawls is the definition
	// of the gray failure under test.
	Latency time.Duration
	Jitter  time.Duration

	// BytesPerSec is the armed throttle rate (default 8 KiB/s — slow
	// enough that a multi-hundred-byte response visibly stretches).
	BytesPerSec int

	// ResetEvery / CorruptEvery are the per-chunk periods of armed
	// reset and corruption faults (defaults 3 / 3).
	ResetEvery   int
	CorruptEvery int

	// SettleFunc, when set, gates each action: the monkey polls it until
	// true before arming the next fault. Replication soaks wire it to
	// "every shard is back in the router's ring", so a second gray fault
	// never lands while a fenced-and-respawned shard is still syncing —
	// a link heal alone does not mean the system recovered, and without
	// the gate sequential faults can compound past the single-failure
	// budget the zero-loss oracle assumes.
	SettleFunc func() bool
}

// NewGrayChaos builds a gray monkey over links. Call Start to unleash it.
func NewGrayChaos(links []*netfaults.Link, cfg GrayChaosConfig) *GrayChaos {
	if cfg.Actions <= 0 {
		cfg.Actions = 1
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = time.Millisecond
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = 5 * time.Millisecond
		if cfg.MaxDelay < cfg.MinDelay {
			cfg.MaxDelay = cfg.MinDelay
		}
	}
	if cfg.HealAfter <= 0 {
		cfg.HealAfter = 15 * time.Millisecond
	}
	if cfg.MaxDegraded <= 0 || cfg.MaxDegraded >= len(links) {
		cfg.MaxDegraded = len(links) - 1
		if cfg.MaxDegraded < 1 {
			cfg.MaxDegraded = 1
		}
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 10 * time.Millisecond
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = cfg.Latency / 2
	}
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = 8 << 10
	}
	if cfg.ResetEvery <= 0 {
		cfg.ResetEvery = 3
	}
	if cfg.CorruptEvery <= 0 {
		cfg.CorruptEvery = 3
	}
	g := &GrayChaos{
		cfg:      cfg,
		links:    links,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		degraded: map[int]bool{},
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	g.counterList = []obs.NamedCounter{
		{Name: "latency_spikes", Load: g.locked(&g.latencySpikes)},
		{Name: "throttles", Load: g.locked(&g.throttles)},
		{Name: "partitions", Load: g.locked(&g.partitions)},
		{Name: "resets_armed", Load: g.locked(&g.resetsArmed)},
		{Name: "corruptions_armed", Load: g.locked(&g.corruptionsArmed)},
		{Name: "heals", Load: g.locked(&g.heals)},
	}
	return g
}

// locked adapts a mutex-guarded tally to the NamedCounter Load shape.
func (g *GrayChaos) locked(v *int64) func() int64 {
	return func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return *v
	}
}

// Start launches the gray loop.
func (g *GrayChaos) Start() {
	go g.run()
}

// Wait blocks until every configured fault has been armed and every
// scheduled heal has completed — the network is clean again.
func (g *GrayChaos) Wait() {
	<-g.doneCh
	g.wg.Wait()
}

// Stop aborts the remaining actions and waits for in-flight heals, so
// teardown never races a healing link.
func (g *GrayChaos) Stop() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	<-g.doneCh
	g.wg.Wait()
}

func (g *GrayChaos) run() {
	defer close(g.doneCh)
	for n := 0; n < g.cfg.Actions; n++ {
		span := int64(g.cfg.MaxDelay-g.cfg.MinDelay) + 1
		delay := g.cfg.MinDelay + time.Duration(g.rng.Int63n(span))
		select {
		case <-g.stopCh:
			return
		case <-time.After(delay):
		}
		if g.cfg.SettleFunc != nil {
			for !g.cfg.SettleFunc() {
				select {
				case <-g.stopCh:
					return
				case <-time.After(time.Millisecond):
				}
			}
		}
		g.act()
	}
}

// act arms one gray fault against a random clean link, honoring the
// clean-path floor, and schedules the link's heal.
func (g *GrayChaos) act() {
	g.mu.Lock()
	if len(g.degraded) >= g.cfg.MaxDegraded {
		g.mu.Unlock()
		return
	}
	var candidates []int
	for i := range g.links {
		if !g.degraded[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		g.mu.Unlock()
		return
	}
	victim := candidates[g.rng.Intn(len(candidates))]
	g.degraded[victim] = true
	kind := g.rng.Intn(5)
	g.mu.Unlock()

	link := g.links[victim]
	switch kind {
	case 0:
		// Latency spike on the data class only: probes answer instantly
		// while data crawls — the canonical gray failure.
		link.SetFaults(netfaults.Data, netfaults.Faults{
			Latency: g.cfg.Latency,
			Jitter:  g.cfg.Jitter,
		})
		g.count(&g.latencySpikes)
	case 1:
		link.SetFaults(netfaults.Data, netfaults.Faults{BytesPerSec: g.cfg.BytesPerSec})
		g.count(&g.throttles)
	case 2:
		// Asymmetric partition, three flavors: answers lost, requests
		// lost, or the probe path dead while data flows (the router must
		// not confuse any of them with overload or a crash).
		f := netfaults.Faults{DropS2C: true}
		class := netfaults.Data
		switch g.rng.Intn(3) {
		case 1:
			f = netfaults.Faults{DropC2S: true}
		case 2:
			class = netfaults.Probe
		}
		link.SetFaults(class, f)
		g.count(&g.partitions)
	case 3:
		link.SetFaults(netfaults.Data, netfaults.Faults{ResetEvery: g.cfg.ResetEvery})
		g.count(&g.resetsArmed)
	case 4:
		link.SetFaults(netfaults.Data, netfaults.Faults{CorruptEvery: g.cfg.CorruptEvery})
		g.count(&g.corruptionsArmed)
	}

	g.wg.Add(1)
	time.AfterFunc(g.cfg.HealAfter, func() {
		defer g.wg.Done()
		link.Heal()
		g.mu.Lock()
		g.heals++
		delete(g.degraded, victim)
		g.mu.Unlock()
	})
}

func (g *GrayChaos) count(c *int64) {
	g.mu.Lock()
	*c++
	g.mu.Unlock()
}

// Counters reports the monkey's activity (CounterSource; snapshots show
// these under the gray. prefix — obs.SnapshotCounters over the static
// list built in NewGrayChaos).
func (g *GrayChaos) Counters() map[string]int64 {
	return obs.SnapshotCounters(g.counterList)
}

// RegisterMetrics folds the monkey's counters into reg under the gray.
// prefix (the gray.* block of the metric catalogue).
func (g *GrayChaos) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterSource("gray", g)
}

var _ CounterSource = (*GrayChaos)(nil)
