package faults_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"privagic"
	"privagic/internal/faults"
	"privagic/internal/sources"
)

// The Iago soak is the acceptance test of the runtime boundary defense:
// seeded schedules of the U-memory mutator adversary (double-fetch flips,
// pointer smashes, in-place payload mutation) against hardened instances.
// The contract asserted on every single schedule: the run ends in the
// exact correct answer or a typed error (ErrIagoViolation, a supervision
// timeout from a rejected message, an abort, a shutdown) — never a silent
// wrong answer, never an untyped failure, never a host crash. The relaxed
// negative control at the bottom shows the same adversary corrupting an
// undefended instance without tripping a single detector.

// iagoClass is one seeded attack schedule: which defenses are armed and
// what the mutator does.
type iagoClass struct {
	def privagic.BoundaryDefenseOptions
	mut privagic.MutatorOptions
}

// iagoClassFor derives one of four attack classes plus jittered
// probabilities from the schedule seed:
//
//	seed%4 == 0: memory attacker — double-fetch flips + pointer smashes
//	             (full defense; snapshots defeat the flips, the sanitizer
//	             answers the smashes)
//	seed%4 == 1: queue attacker — in-place payload mutation plus light
//	             flips (full defense; payload tags reject at the gate)
//	seed%4 == 2: sanitizer in isolation — snapshots disarmed, smash-only
//	             (a flip would be silently re-read without the snapshot
//	             layer, so this class probes only the pointer defense)
//	seed%4 == 3: everything at once (full defense)
//
// Every eighth seed of the memory classes adds the concurrent flipper so
// corruption timing is not purely synchronous with the loads. About one
// seed in seven keeps the adversary dormant (all probabilities zero):
// those schedules pin the other half of the hardened contract — with
// nothing attacking, the defended instance must reach the exact answer.
func iagoClassFor(seed int64) iagoClass {
	r := rand.New(rand.NewSource(seed * 6151))
	c := iagoClass{def: privagic.FullBoundaryDefense()}
	c.mut.Seed = seed
	if seed%7 == 0 {
		return c
	}
	switch seed % 4 {
	case 0:
		c.mut.FlipAfterRead = 0.05 + 0.25*r.Float64()
		c.mut.SmashPointers = 0.02 + 0.10*r.Float64()
		c.mut.Concurrent = seed%8 == 0
	case 1:
		c.mut.MutatePayload = 0.02 + 0.10*r.Float64()
		c.mut.FlipAfterRead = 0.02 + 0.05*r.Float64()
	case 2:
		c.def = privagic.BoundaryDefenseOptions{SanitizePointers: true, PayloadTags: true}
		c.mut.SmashPointers = 0.05 + 0.20*r.Float64()
	default:
		c.mut.FlipAfterRead = 0.03 + 0.12*r.Float64()
		c.mut.SmashPointers = 0.01 + 0.06*r.Float64()
		c.mut.MutatePayload = 0.01 + 0.06*r.Float64()
		c.mut.Concurrent = seed%8 == 7
	}
	return c
}

// iagoOutcome tallies a hardened sweep.
type iagoOutcome struct {
	correct, violations, timeouts, aborts, stopped int
	mutations, memDetections, payloadDetections    int64
}

// runIagoSchedule executes one entry call on a hardened instance under one
// mutator schedule and classifies the outcome. check validates a
// successful ret — under the hardened contract, err == nil admits no slack
// at all.
func runIagoSchedule(t *testing.T, prog *privagic.Program, entry string, seed int64,
	check func(ret int64, inst *privagic.Instance) string, out *iagoOutcome) {
	t.Helper()
	cl := iagoClassFor(seed)
	inst := prog.Instantiate(nil)
	defer inst.Close()
	inst.EnableSpawnValidation()
	inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: soakWaitTimeout})
	inst.EnableBoundaryDefense(cl.def)
	inst.EnableMutator(cl.mut)

	type result struct {
		ret int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		ret, err := inst.Call(entry)
		done <- result{ret, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("seed %d: DEADLOCK: call did not complete in 10s (mutator: %+v, boundary: %+v)",
			seed, inst.MutatorStats(), inst.BoundaryStats())
	}
	ms, bs := inst.MutatorStats(), inst.BoundaryStats()
	switch {
	case res.err == nil:
		if msg := check(res.ret, inst); msg != "" {
			t.Fatalf("seed %d: SILENT WRONG ANSWER in hardened mode: %s (mutator: %+v, boundary: %+v)",
				seed, msg, ms, bs)
		}
		out.correct++
	case errors.Is(res.err, privagic.ErrIagoViolation):
		out.violations++
	case errors.Is(res.err, privagic.ErrWaitTimeout):
		out.timeouts++
	case errors.Is(res.err, privagic.ErrEnclaveAbort):
		out.aborts++
	case errors.Is(res.err, privagic.ErrStopped):
		out.stopped++
	default:
		t.Fatalf("seed %d: untyped failure %v (mutator: %+v, boundary: %+v)", seed, res.err, ms, bs)
	}
	out.mutations += ms.Total()
	out.memDetections += bs.Violations
	out.payloadDetections += bs.PayloadTampered
}

// TestSoakIagoFigure6 sweeps the walkthrough program. It has no enclave
// pointers resident in U (no split structs), so the adversary's leverage
// is flips and payload mutation — both fully covered — and the sweep
// should overwhelmingly reach the exact answer.
func TestSoakIagoFigure6(t *testing.T) {
	prog, err := privagic.Compile("figure6.c", figure6Src, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"main"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := soakCount(faults.Schedules().IagoFigure6, testing.Short())
	var out iagoOutcome
	for seed := int64(1); seed <= int64(n); seed++ {
		runIagoSchedule(t, prog, "main", seed, func(ret int64, inst *privagic.Instance) string {
			if ret != 42 {
				return "ret != 42"
			}
			if !strings.Contains(inst.Output(), "Hello") {
				return "completed without g's output"
			}
			return ""
		}, &out)
	}
	t.Logf("figure6 iago soak over %d schedules: %d exact, %d violations, %d timeouts, %d aborts, %d stopped; %d mutations injected, %d payload rejections",
		n, out.correct, out.violations, out.timeouts, out.aborts, out.stopped, out.mutations, out.payloadDetections)
	if out.mutations == 0 {
		t.Error("sweep injected no mutations; the soak proved nothing")
	}
	if out.correct < n/2 {
		t.Errorf("only %d/%d schedules reached the exact answer; the defense overhead should not drown the protocol", out.correct, n)
	}
}

// TestSoakIagoTwoColorHashmap sweeps the two-color hashmap — the workload
// whose U-resident split-struct slots give the pointer smasher real
// targets, and whose hit count a single silently corrupted word would
// flip.
func TestSoakIagoTwoColorHashmap(t *testing.T) {
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := prog.Instantiate(nil)
	want, err := clean.Call("run_ycsb")
	clean.Close()
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if want <= 0 {
		t.Fatalf("clean run returned %d hits; workload is degenerate", want)
	}
	n := soakCount(faults.Schedules().IagoTwoColor, testing.Short())
	var out iagoOutcome
	for seed := int64(1); seed <= int64(n); seed++ {
		runIagoSchedule(t, prog, "run_ycsb", seed, func(ret int64, _ *privagic.Instance) string {
			if ret != want {
				return "hit count diverged from the clean run"
			}
			return ""
		}, &out)
	}
	t.Logf("two-color iago soak over %d schedules (want %d hits): %d exact, %d violations, %d timeouts, %d aborts, %d stopped; %d mutations, %d pointer detections, %d payload rejections",
		n, want, out.correct, out.violations, out.timeouts, out.aborts, out.stopped, out.mutations, out.memDetections, out.payloadDetections)
	if out.mutations == 0 {
		t.Error("sweep injected no mutations; the soak proved nothing")
	}
	if out.memDetections == 0 {
		t.Error("no pointer smash was ever detected; the sanitizer classes exercised nothing")
	}
	if out.correct == 0 {
		t.Error("no schedule reached the exact answer; even light classes always derailed")
	}
}

// TestIagoRelaxedNegativeControl runs the same adversary classes against
// undefended instances: mutations land freely and not one detector trips.
// Wrong answers and garbled failures are expected here — they are the
// point: the attack is real, and only the defense layer stands between it
// and the hardened guarantee.
func TestIagoRelaxedNegativeControl(t *testing.T) {
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := prog.Instantiate(nil)
	want, err := clean.Call("run_ycsb")
	clean.Close()
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	const n = 16
	var mutations int64
	var wrong, errored, wedged int
	for seed := int64(1); seed <= n; seed++ {
		cl := iagoClassFor(seed)
		inst := prog.Instantiate(nil)
		inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: soakWaitTimeout})
		inst.EnableMutator(cl.mut) // no EnableBoundaryDefense: relaxed
		type result struct {
			ret int64
			err error
		}
		done := make(chan result, 1)
		go func() {
			ret, err := inst.Call("run_ycsb")
			done <- result{ret, err}
		}()
		select {
		case res := <-done:
			if errors.Is(res.err, privagic.ErrIagoViolation) {
				t.Fatalf("seed %d: undefended run surfaced ErrIagoViolation: %v", seed, res.err)
			}
			switch {
			case res.err != nil:
				errored++
			case res.ret != want:
				wrong++
			}
		case <-time.After(5 * time.Second):
			wedged++ // chasing corrupted memory wedged the run; fair game
		}
		bs := inst.BoundaryStats()
		if bs.Violations != 0 || bs.PayloadTampered != 0 {
			t.Fatalf("seed %d: undefended run detected something: %+v", seed, bs)
		}
		mutations += inst.MutatorStats().Total()
		inst.Close()
	}
	t.Logf("relaxed negative control over %d schedules: %d mutations injected, zero detected; %d silently wrong, %d errored, %d wedged",
		n, mutations, wrong, errored, wedged)
	if mutations == 0 {
		t.Fatal("control injected no mutations; it proved nothing")
	}
	if wrong+errored+wedged == 0 {
		t.Log("note: every undefended run still answered correctly; corruption landed outside the consumed data")
	}
}
