package faults_test

import (
	"errors"
	"testing"
	"time"

	"privagic"
	"privagic/internal/sources"
)

// compileHashmap2 compiles the two-color hashmap — the workload whose
// split-struct bodies park enclave pointers in U memory, which is exactly
// the surface a pointer-smashing Iago attacker aims at.
func compileHashmap2(t *testing.T) *privagic.Program {
	t.Helper()
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestIagoSmashDetected pins the sanitizer in isolation: with snapshots
// disarmed (so the smashed slot is actually re-read from backing memory)
// and the mutator smashing every eligible pointer slot, the run must end
// in a typed ErrIagoViolation — never garbage, never a host crash.
func TestIagoSmashDetected(t *testing.T) {
	prog := compileHashmap2(t)
	inst := prog.Instantiate(nil)
	defer inst.Close()
	inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: 100 * time.Millisecond})
	inst.EnableBoundaryDefense(privagic.BoundaryDefenseOptions{SanitizePointers: true})
	inst.EnableMutator(privagic.MutatorOptions{Seed: 1, SmashPointers: 1.0})

	type result struct {
		ret int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		ret, err := inst.Call("run_ycsb")
		done <- result{ret, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("deadlock under smashing mutator (mutator: %+v, boundary: %+v)",
			inst.MutatorStats(), inst.BoundaryStats())
	}
	ms, bs := inst.MutatorStats(), inst.BoundaryStats()
	if ms.Smashes == 0 {
		t.Fatal("mutator found no pointer slot to smash; the test exercised nothing")
	}
	if !errors.Is(res.err, privagic.ErrIagoViolation) {
		t.Fatalf("Call = %d, %v; want ErrIagoViolation (mutator: %+v, boundary: %+v)",
			res.ret, res.err, ms, bs)
	}
	if bs.Violations == 0 {
		t.Errorf("violation surfaced but Violations counter = 0 (boundary: %+v)", bs)
	}
}

// TestIagoSmashUndetectedWithoutDefense is the negative control: the same
// smashing adversary against a relaxed (undefended) instance corrupts
// freely and nothing is detected — no typed violation, zero detection
// counters. The host process itself must survive (the simulated machine
// zero-fills out-of-range loads instead of faulting the test binary).
func TestIagoSmashUndetectedWithoutDefense(t *testing.T) {
	prog := compileHashmap2(t)
	inst := prog.Instantiate(nil)
	defer inst.Close()
	inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: 100 * time.Millisecond})
	inst.EnableMutator(privagic.MutatorOptions{Seed: 1, SmashPointers: 1.0})

	type result struct {
		ret int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		ret, err := inst.Call("run_ycsb")
		done <- result{ret, err}
	}()
	returned := false
	var res result
	select {
	case res = <-done:
		returned = true
	case <-time.After(5 * time.Second):
		// A wedged undefended run is itself a fair outcome of chasing
		// smashed pointers; the assertions below only need the counters.
	}
	ms, bs := inst.MutatorStats(), inst.BoundaryStats()
	if ms.Smashes == 0 {
		t.Fatal("mutator found no pointer slot to smash; the control proved nothing")
	}
	if bs.Violations != 0 || bs.PayloadTampered != 0 {
		t.Fatalf("undefended run detected something: %+v", bs)
	}
	if returned && errors.Is(res.err, privagic.ErrIagoViolation) {
		t.Fatalf("undefended run surfaced ErrIagoViolation: %v", res.err)
	}
}
