package faults_test

import (
	"errors"
	"testing"
	"time"

	"privagic/internal/faults"
	"privagic/internal/prt"
	"privagic/internal/sgx"
)

// deliverTagged routes n tagged conts through an injector attached to a
// runtime with no enclave workers (so nothing consumes the queue), flushes,
// and returns the raw delivery order observed on the queue. With the
// background flusher disabled this is fully deterministic.
func deliverTagged(t *testing.T, cfg faults.Config, n int) ([]int, faults.Stats) {
	t.Helper()
	cfg.DisableFlusher = true
	rt := prt.New(sgx.MachineB(), nil, nil)
	th := rt.NewThread()
	u := th.Normal()
	inj := faults.Attach(rt, cfg)
	defer inj.Close()
	for i := 1; i <= n; i++ {
		u.SendCont(0, i, nil) // self-delivery: 0 is the app thread itself
	}
	inj.Flush()
	var order []int
	for {
		msg, ok := u.DequeueRaw()
		if !ok {
			break
		}
		if msg.Kind == prt.MsgCont {
			order = append(order, msg.Tag)
		}
	}
	return order, inj.Stats()
}

// TestSameSeedSameSchedule is the reproducibility contract: identical
// seeds produce identical fault decisions and identical delivery orders.
func TestSameSeedSameSchedule(t *testing.T) {
	cfg := faults.Config{
		Seed: 7, Drop: 0.1, Duplicate: 0.1, Delay: 0.15, Reorder: 0.15,
	}
	a, sa := deliverTagged(t, cfg, 300)
	b, sb := deliverTagged(t, cfg, 300)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Errorf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	if sa.Total() == 0 {
		t.Error("schedule injected no faults at these probabilities")
	}
	cfg.Seed = 8
	c, _ := deliverTagged(t, cfg, 300)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced the identical schedule")
	}
}

// TestDropIsOrderPreservingSubsequence: pure drops leave a strictly
// increasing subsequence of the sent tags — the Michael–Scott queue must
// not reorder what the injector merely thins out.
func TestDropIsOrderPreservingSubsequence(t *testing.T) {
	order, st := deliverTagged(t, faults.Config{Seed: 1, Drop: 0.3}, 500)
	if st.Dropped == 0 {
		t.Fatal("no drops at p=0.3")
	}
	if got, want := int64(len(order)), int64(500)-st.Dropped; got != want {
		t.Fatalf("delivered %d, want 500 - %d dropped = %d", got, st.Dropped, want)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("drop-only delivery reordered: %d after %d", order[i], order[i-1])
		}
	}
}

// TestDuplicateMultiset: duplication delivers every message at least once
// and the duplicated ones exactly twice, in FIFO order of first delivery.
func TestDuplicateMultiset(t *testing.T) {
	order, st := deliverTagged(t, faults.Config{Seed: 2, Duplicate: 0.3}, 500)
	if st.Duplicated == 0 {
		t.Fatal("no duplicates at p=0.3")
	}
	count := map[int]int{}
	for _, tag := range order {
		count[tag]++
	}
	var twice int64
	for tag := 1; tag <= 500; tag++ {
		switch count[tag] {
		case 1:
		case 2:
			twice++
		default:
			t.Fatalf("tag %d delivered %d times", tag, count[tag])
		}
	}
	if twice != st.Duplicated {
		t.Errorf("%d tags delivered twice, stats say %d duplicated", twice, st.Duplicated)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("duplicate-only delivery went backwards: %d after %d", order[i], order[i-1])
		}
	}
}

// TestReorderIsLosslessPermutation: reordering perturbs the order but loses
// and duplicates nothing.
func TestReorderIsLosslessPermutation(t *testing.T) {
	order, st := deliverTagged(t, faults.Config{Seed: 3, Reorder: 0.4}, 500)
	if st.Reordered == 0 {
		t.Fatal("no reorders at p=0.4")
	}
	if len(order) != 500 {
		t.Fatalf("reorder lost messages: delivered %d of 500", len(order))
	}
	seen := map[int]bool{}
	inversions := 0
	for i, tag := range order {
		if seen[tag] {
			t.Fatalf("tag %d delivered twice", tag)
		}
		seen[tag] = true
		if i > 0 && tag < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("reorder schedule produced no inversions")
	}
}

// TestDelayHoldsForHops: a delayed message is overtaken by roughly
// DelayHops later sends but still arrives.
func TestDelayHoldsForHops(t *testing.T) {
	order, st := deliverTagged(t, faults.Config{Seed: 4, Delay: 0.3, DelayHops: 3}, 500)
	if st.Delayed == 0 {
		t.Fatal("no delays at p=0.3")
	}
	if len(order) != 500 {
		t.Fatalf("delay lost messages: delivered %d of 500", len(order))
	}
	maxDisplacement := 0
	for i, tag := range order {
		if d := i + 1 - tag; d > maxDisplacement {
			maxDisplacement = d
		}
	}
	if maxDisplacement == 0 {
		t.Error("no message was displaced by the delay schedule")
	}
}

// echoRT builds a one-enclave runtime whose single chunk echoes its
// argument (the minimal spawn/join protocol for end-to-end fault tests).
func echoRT() *prt.Runtime {
	return prt.New(sgx.MachineB(), []string{"blue"},
		func(w *prt.Worker, chunkID int, args []any) any { return args[0] })
}

// TestCrashInjectionBecomesTypedAbort: an injected crash surfaces as an
// *EnclaveAbort whose cause is the *InjectedCrash, never a dead worker.
func TestCrashInjectionBecomesTypedAbort(t *testing.T) {
	rt := echoRT()
	inj := faults.Attach(rt, faults.Config{Seed: 5, Crash: 1.0})
	defer inj.Close()
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	u.Spawn(1, 1, []any{1}, true)
	_, err := u.JoinTimeout(1, 5*time.Second)
	if !errors.Is(err, prt.ErrEnclaveAbort) {
		t.Fatalf("Join under crash injection = %v, want EnclaveAbort", err)
	}
	var ic *faults.InjectedCrash
	if !errors.As(err, &ic) || ic.ChunkID != 1 {
		t.Fatalf("abort cause = %v, want InjectedCrash{ChunkID:1}", err)
	}
	if st := inj.Stats(); st.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", st.Crashes)
	}
}

// TestRetransmitRecoversFromTotalLoss: with every first transmission
// dropped, the retransmitting transport still completes the protocol, and
// the meter shows what that cost.
func TestRetransmitRecoversFromTotalLoss(t *testing.T) {
	rt := echoRT()
	rt.Supervise = prt.Supervision{WaitTimeout: 5 * time.Second}
	inj := faults.Attach(rt, faults.Config{
		Seed: 6, Drop: 1.0, Retransmit: true, RetransmitAfter: time.Millisecond,
	})
	defer inj.Close()
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	for i := 0; i < 10; i++ {
		u.Spawn(1, 1, []any{i}, true)
		got, err := u.Join(1)
		if err != nil || got != i {
			t.Fatalf("round %d under total first-loss: %v, %v", i, got, err)
		}
	}
	if n := rt.Meter.Retransmits(); n < 20 {
		t.Errorf("Retransmits = %d, want >= 20 (spawn+done per round)", n)
	}
	if st := inj.Stats(); st.Retransmitted != st.Dropped {
		t.Errorf("retransmitted %d of %d drops", st.Retransmitted, st.Dropped)
	}
}

// TestForgedMessagesAllRejected: under heavy forgery the protocol still
// answers correctly and every forged message is counted at the admit gate.
func TestForgedMessagesAllRejected(t *testing.T) {
	rt := echoRT()
	rt.Supervise = prt.Supervision{WaitTimeout: 5 * time.Second}
	rt.ValidateSpawn = func(workerIdx, chunkID int) bool { return chunkID == 1 }
	inj := faults.Attach(rt, faults.Config{Seed: 7, Forge: 0.9})
	defer inj.Close()
	th := rt.NewThread()
	defer th.Close()
	u := th.Normal()
	for i := 0; i < 50; i++ {
		u.Spawn(1, 1, []any{i}, true)
		got, err := u.Join(1)
		if err != nil || got != i {
			t.Fatalf("round %d under forgery: %v, %v", i, got, err)
		}
	}
	st := inj.Stats()
	if st.Forged == 0 {
		t.Fatal("no forgeries at p=0.9")
	}
	// Forgeries delivered alongside the final completions may not have
	// been dequeued yet: give the idle enclave worker a moment to reject
	// its in-flight ones, then drain the app thread's queue (its leftovers
	// can only be forged messages — every authentic one was consumed).
	time.Sleep(20 * time.Millisecond)
	var inFlight int64
	for {
		if _, ok := u.DequeueRaw(); !ok {
			break
		}
		inFlight++
	}
	sup := rt.SupervisionStats()
	if sup.HostileTotal()+inFlight != st.Forged {
		t.Errorf("forged %d, admit gate rejected %d (+%d still queued)",
			st.Forged, sup.HostileTotal(), inFlight)
	}
}
