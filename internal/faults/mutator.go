package faults

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"privagic/internal/prt"
	"privagic/internal/sgx"
)

// The mutator adversary: the §4 attacker who owns unsafe *memory*, not
// just the message protocol. Where the Injector drops, replays and forges
// whole messages, the Mutator corrupts contents in place — it flips U
// words between two reads of the same barrier interval (the double-fetch
// window), smashes U-resident pointer slots to point past their region's
// mapped extent (the Iago pointer attack on the §7.2 split-struct
// layout), and rewrites queued message payloads without touching the auth
// stamp or sequence number (the in-place mutation the plain stamp cannot
// see).
//
// It attaches on two seams at once: as the interp.BoundaryObserver it is
// invoked around every backing access to unsafe memory (GuardedLoad /
// GuardedStore, matched structurally — no interp import), and as the
// prt.Interceptor it sits on every queue delivery.
//
// Corruption discipline — the attacker is malicious, not magical: a word
// is corrupted only *after* it has been read at least once (TOCTOU means
// check-then-use, so the check must see the good value), and corruption
// is restored before any normal-mode read and before legitimate data is
// stored over it. Flips are additionally restored before a first enclave
// read of a new barrier interval: a flipped word is *plausible alternate
// data*, and U data legitimately changing between intervals would make
// the exact expected answer ill-defined — so flips are confined to the
// double-fetch window copy-in snapshots claim to close. Smashes persist
// across intervals: a pointer redirected past its region's extent is
// detectable garbage, never a plausible input, so hardened mode may
// answer it with a typed violation instead of the exact result — which
// is precisely the guarantee ("exact answer or typed violation") the
// soak asserts. With the full boundary defense armed, hardened-mode
// behavior under this adversary is thus deterministic by construction;
// with it disarmed (the relaxed negative control), the same schedule
// corrupts silently.
type Mutator struct {
	rt  *prt.Runtime
	cfg MutatorConfig
	u   *sgx.Region

	mu      sync.Mutex
	rng     *rand.Rand
	seen    []uint64 // U word offsets read at least once (flipper targets)
	seenSet map[uint64]struct{}
	held    map[uint64]heldCorruption // word offset -> pending corruption

	stats struct {
		flips, smashes, payloadMuts, restores atomic.Int64
	}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// heldCorruption is one outstanding in-memory corruption: the original
// bytes for restoration, and whether it is a pointer smash (which is
// allowed to persist across barrier intervals) or a data flip (which is
// confined to the double-fetch window).
type heldCorruption struct {
	orig  [8]byte
	smash bool
}

// MutatorConfig sets the corruption probabilities (each in [0,1]) of the
// mutator adversary. The zero value mutates nothing.
type MutatorConfig struct {
	Seed int64

	// FlipAfterRead is the per-word probability that an enclave-read U
	// word is bit-flipped right after the read (visible only to a re-read
	// of the same barrier interval).
	FlipAfterRead float64
	// SmashPointers is the per-word probability that an enclave-read U
	// word holding an enclave pointer (a §7.2 slot) is rewritten to point
	// past its region's mapped extent.
	SmashPointers float64
	// MutatePayload is the per-message probability that a queued
	// message's payload words are rewritten in place (auth stamp and
	// sequence number intact).
	MutatePayload float64

	// Concurrent additionally runs a background goroutine corrupting
	// already-read words asynchronously (real attacker timing; the
	// per-schedule decision sequence is then no longer deterministic, but
	// the hardened-mode guarantee does not depend on timing).
	Concurrent bool
	// MaxHeld caps outstanding in-memory corruptions (default 16).
	MaxHeld int
}

// NewMutator creates the adversary and installs it as the runtime's
// interceptor. Wire its memory half with Interp.SetBoundaryObserver.
// Call before the workload starts.
func NewMutator(rt *prt.Runtime, cfg MutatorConfig) *Mutator {
	if cfg.MaxHeld <= 0 {
		cfg.MaxHeld = 16
	}
	m := &Mutator{
		rt:      rt,
		cfg:     cfg,
		u:       rt.Space.Region(sgx.Unsafe),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		seenSet: map[uint64]struct{}{},
		held:    map[uint64]heldCorruption{},
		stop:    make(chan struct{}),
	}
	rt.SetInterceptor(m)
	if cfg.Concurrent {
		m.wg.Add(1)
		go m.flipper()
	}
	return m
}

// GuardedLoad implements the interp.BoundaryObserver read seam: restore
// pending corruption per the discipline above (everything before a
// normal-mode read, flips also before a first enclave read of an
// interval), perform the backing load, then — for enclave reads — maybe
// corrupt the word so a later read would see the change. All under one
// lock, atomic with the load.
func (m *Mutator) GuardedLoad(addr uint64, n int, enclave, fresh bool, load func()) {
	_, off := sgx.DecodePtr(addr)
	word := off &^ 7
	m.mu.Lock()
	defer m.mu.Unlock()
	if !enclave {
		m.restoreLocked(word)
	} else if fresh {
		if h, ok := m.held[word]; ok && !h.smash {
			m.restoreLocked(word)
		}
	}
	load()
	if _, ok := m.seenSet[word]; !ok {
		m.seenSet[word] = struct{}{}
		m.seen = append(m.seen, word)
	}
	if enclave {
		m.maybeCorruptLocked(word)
	}
	_ = n
}

// GuardedStore implements the write seam: legitimate data is about to
// land on these words, so pending corruptions overlapping the range are
// resolved first (a later restore would otherwise clobber the new data —
// an attack on *availability* of writes this adversary does not model).
func (m *Mutator) GuardedStore(addr uint64, n int, store func()) {
	_, off := sgx.DecodePtr(addr)
	if n < 1 {
		n = 1
	}
	last := (off + uint64(n) - 1) &^ 7
	m.mu.Lock()
	defer m.mu.Unlock()
	for w := off &^ 7; w <= last; w += 8 {
		m.restoreLocked(w)
	}
	store()
}

// Deliver implements prt.Interceptor: maybe rewrite the payload words of
// the message in place, then enqueue it raw — metadata (auth stamp,
// sequence, epoch, integrity tag) untouched, exactly what an attacker
// editing the U-memory queue node achieves.
func (m *Mutator) Deliver(to *prt.Worker, msg prt.Message) {
	if m.cfg.MutatePayload > 0 {
		m.mu.Lock()
		hit := m.rng.Float64() < m.cfg.MutatePayload
		var xor uint64
		if hit {
			xor = uint64(m.rng.Int63()) | 1
		}
		m.mu.Unlock()
		if hit {
			msg = mutateMessage(msg, xor)
			m.stats.payloadMuts.Add(1)
		}
	}
	to.EnqueueRaw(msg)
}

// mutateMessage rewrites one payload word of the message: a spawn
// argument when there are any, the cont/done payload otherwise. Payload
// types exposing MutatePayload (the interpreter's value type) are mutated
// bit-exactly; anything else is replaced with attacker garbage.
func mutateMessage(msg prt.Message, xor uint64) prt.Message {
	mutate := func(p any) any {
		if pm, ok := p.(interface{ MutatePayload(xor uint64) any }); ok {
			return pm.MutatePayload(xor)
		}
		switch x := p.(type) {
		case int64:
			return x ^ int64(xor)
		case string:
			return x + "\x00tampered"
		default:
			return int64(xor)
		}
	}
	if len(msg.Args) > 0 {
		// Copy the slice: the journal may hold the original for replay,
		// and the attacker edits the queue node, not the sender's state.
		args := append([]any(nil), msg.Args...)
		i := int(xor % uint64(len(args)))
		args[i] = mutate(args[i])
		msg.Args = args
		return msg
	}
	msg.Payload = mutate(msg.Payload)
	return msg
}

// maybeCorruptLocked draws one decision for a just-read word: smash it if
// it holds an enclave pointer, flip it otherwise, or leave it alone.
func (m *Mutator) maybeCorruptLocked(word uint64) {
	if _, already := m.held[word]; already || len(m.held) >= m.cfg.MaxHeld {
		return
	}
	r := m.rng.Float64()
	switch {
	case r < m.cfg.SmashPointers:
		m.smashLocked(word)
	case r < m.cfg.SmashPointers+m.cfg.FlipAfterRead:
		m.flipLocked(word)
	}
}

// flipLocked corrupts a word's bits. The top two bytes are forced to an
// unmapped-region marker so a flipped word misread as a pointer fails
// fast instead of forging an in-extent address (which could send the
// relaxed interpreter chasing accidental pointer cycles); the low bytes
// get a random xor, so a flipped scalar is simply hugely wrong.
func (m *Mutator) flipLocked(word uint64) {
	var orig [8]byte
	m.u.Load(word, orig[:])
	bad := orig
	bad[0] ^= byte(m.rng.Intn(255)) + 1
	bad[3] ^= byte(m.rng.Intn(256))
	bad[6], bad[7] = 0xff, 0x7f // region 0x7fff: never mapped
	m.held[word] = heldCorruption{orig: orig}
	m.u.Store(word, bad[:])
	m.stats.flips.Add(1)
}

// smashLocked rewrites a word holding an enclave pointer (a split-struct
// slot, by the §7.2 layout the only enclave pointers resident in U) to
// the same region at an offset past its mapped extent. Eligibility is a
// genuine *live* pointer — mapped enclave region, 8-aligned offset inside
// the extent — so a scalar whose bits happen to decode plausibly is left
// alone: smashing a hash or a count would be indistinguishable from
// legitimate alternate input and would break the soak's ground truth.
func (m *Mutator) smashLocked(word uint64) {
	var orig [8]byte
	m.u.Load(word, orig[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(orig[i])
	}
	rid, off := sgx.DecodePtr(v)
	if rid == sgx.Unsafe || off == 0 || off%8 != 0 {
		return
	}
	r := m.rt.Space.Region(rid)
	if r == nil || off >= r.Extent() {
		return
	}
	smashed := sgx.EncodePtr(rid, r.Extent()+4096)
	var bad [8]byte
	for i := 0; i < 8; i++ {
		bad[i] = byte(smashed >> (8 * i))
	}
	m.held[word] = heldCorruption{orig: orig, smash: true}
	m.u.Store(word, bad[:])
	m.stats.smashes.Add(1)
}

// restoreLocked undoes a pending corruption of the word, if any.
func (m *Mutator) restoreLocked(word uint64) {
	h, ok := m.held[word]
	if !ok {
		return
	}
	m.u.Store(word, h.orig[:])
	delete(m.held, word)
	m.stats.restores.Add(1)
}

// flipper is the concurrent half: it corrupts already-read words on its
// own schedule, under the same lock (so restores stay atomic with loads).
func (m *Mutator) flipper() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		m.mu.Lock()
		if len(m.seen) > 0 {
			m.maybeCorruptLocked(m.seen[m.rng.Intn(len(m.seen))])
		}
		m.mu.Unlock()
		time.Sleep(50 * time.Microsecond)
	}
}

// MutStats counts what the mutator did.
type MutStats struct {
	Flips            int64 // U words bit-flipped after an enclave read
	Smashes          int64 // pointer slots redirected past their extent
	PayloadMutations int64 // queued messages rewritten in place
	Restores         int64 // corruptions undone by the freshness contract
}

// Total mutations injected (restores are bookkeeping, not attacks).
func (s MutStats) Total() int64 { return s.Flips + s.Smashes + s.PayloadMutations }

// Stats snapshots the mutator's counters.
func (m *Mutator) Stats() MutStats {
	return MutStats{
		Flips:            m.stats.flips.Load(),
		Smashes:          m.stats.smashes.Load(),
		PayloadMutations: m.stats.payloadMuts.Load(),
		Restores:         m.stats.restores.Load(),
	}
}

// Counters exposes the mutator's counters in the uniform name -> count
// form shared by every fault class (see Injector.Counters).
func (m *Mutator) Counters() map[string]int64 {
	s := m.Stats()
	return map[string]int64{
		"flips":             s.Flips,
		"smashes":           s.Smashes,
		"payload_mutations": s.PayloadMutations,
		"restores":          s.Restores,
	}
}

// Close stops the concurrent flipper, detaches the interceptor, and
// restores every outstanding corruption so the address space is clean for
// inspection at teardown.
func (m *Mutator) Close() {
	m.stopOnce.Do(func() {
		close(m.stop)
		m.wg.Wait()
		m.rt.SetInterceptor(nil)
		m.mu.Lock()
		for w := range m.held {
			m.restoreLocked(w)
		}
		m.mu.Unlock()
	})
}
