package faults_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"privagic"
	"privagic/internal/faults"
)

// The observability soak proves the tracer tells the truth under fire: the
// figure-6 program swept through seeded fault schedules with the metrics
// registry and tracer both armed, reconciling the tracer's exact per-kind
// event totals against the registry's counters after every schedule, and
// parsing the Chrome export of the last schedule. An event kind whose
// total drifts from its counter means an instrumentation point fired
// without its counterpart — precisely the lie a trace viewer would then
// show a human debugging a production incident.
//
// Per-schedule reconciliation uses TraceCounts, not the exported events:
// the ring buffers bound the exportable bodies, but the per-shard totals
// are exact across wraparound (drop.stale has no single counter twin — the
// stale-epoch counter aggregates three drop sites, only one of which
// traces — so it is the one kind left out).

// reconcile asserts every (event kind, metric) pair that must agree.
// Call it only after inst.Close(): Close joins the worker goroutines, so
// a chunk still executing when the entry call timed out has closed its
// span and published its counters by the time Close returns. It returns
// whether the schedule recorded any spawn at all — a schedule whose very
// first spawn message was dropped legitimately records none.
func reconcile(t *testing.T, seed int64, inst *privagic.Instance) bool {
	t.Helper()
	counts := inst.TraceCounts()
	snap := inst.MetricsSnapshot()
	if counts["spawn"] != counts["spawn.end"] {
		t.Errorf("seed %d: %d spawn vs %d spawn.end events; a chunk span never closed",
			seed, counts["spawn"], counts["spawn.end"])
	}
	pairs := []struct {
		event  string
		metric string
	}{
		{"abort", "prt.aborts"},
		{"timeout", "prt.timeouts"},
		{"reject.payload", "prt.payload_tampered"},
		{"drop.duplicate", "prt.dropped_duplicates"},
		{"replay.spawn", "prt.journal.replays"},
		{"replay.giveup", "prt.journal.giveups"},
		{"restart", "prt.restarts"},
	}
	for _, p := range pairs {
		if counts[p.event] != snap[p.metric] {
			t.Errorf("seed %d: %d %s events vs %s = %d; tracer and registry disagree",
				seed, counts[p.event], p.event, p.metric, snap[p.metric])
		}
	}
	hostile := snap["prt.hostile_spawns"] + snap["prt.hostile_conts"] + snap["prt.hostile_other"]
	if counts["reject.forged"] != hostile {
		t.Errorf("seed %d: %d reject.forged events vs %d hostile-message rejections",
			seed, counts["reject.forged"], hostile)
	}
	if counts["send"] < counts["spawn"] {
		t.Errorf("seed %d: %d send events for %d spawns; every spawn is a send",
			seed, counts["send"], counts["spawn"])
	}
	return counts["spawn"] > 0
}

// TestSoakTraceReconcile is the nightly observability acceptance sweep.
func TestSoakTraceReconcile(t *testing.T) {
	prog, err := privagic.Compile("figure6.c", figure6Src, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"main"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := soakCount(faults.Schedules().Figure6, testing.Short())
	var out soakOutcome
	spawned := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		inst := prog.Instantiate(nil)
		inst.EnableSpawnValidation()
		inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: soakWaitTimeout})
		inst.EnableFaultInjection(faultClassFor(seed))
		// After the injector, so its counters land in snapshots too. The
		// rings stay at the cache-friendly default: reconciliation reads
		// exact totals, not the bounded event bodies.
		inst.EnableObservability(privagic.ObservabilityOptions{Metrics: true, Trace: true})

		type result struct {
			ret int64
			err error
		}
		done := make(chan result, 1)
		go func() {
			ret, err := inst.Call("main")
			done <- result{ret, err}
		}()
		var res result
		select {
		case res = <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: DEADLOCK: call did not complete in 10s (faults: %+v)",
				seed, inst.FaultStats())
		}
		switch {
		case res.err == nil:
			if res.ret != 42 {
				t.Fatalf("seed %d: SILENT WRONG ANSWER: ret %d != 42", seed, res.ret)
			}
			out.correct++
		case errors.Is(res.err, privagic.ErrWaitTimeout):
			out.timeouts++
		case errors.Is(res.err, privagic.ErrEnclaveAbort):
			out.aborts++
		case errors.Is(res.err, privagic.ErrStopped):
			out.stopped++
		default:
			t.Fatalf("seed %d: untyped failure %v", seed, res.err)
		}
		// Close first: it joins the worker goroutines, so in-flight chunk
		// executions (a timeout returns to the joiner while replays still
		// run) finish and the totals quiesce before we compare them.
		inst.Close()
		if reconcile(t, seed, inst) {
			spawned++
		}

		if seed == int64(n) {
			// The last schedule's trace must export as parseable Chrome
			// trace_event JSON (the Perfetto acceptance criterion).
			var buf bytes.Buffer
			if err := inst.WriteChromeTrace(&buf); err != nil {
				t.Fatalf("trace export: %v", err)
			}
			var doc struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("trace JSON does not parse: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("trace export is empty")
			}
		}
	}
	t.Logf("trace-reconcile soak over %d schedules: %d correct, %d timeouts, %d aborts, %d stopped; %d recorded spawns",
		n, out.correct, out.timeouts, out.aborts, out.stopped, spawned)
	if out.correct < n/2 {
		t.Errorf("only %d/%d schedules completed correctly; observability changed behavior", out.correct, n)
	}
	if spawned < n/2 {
		t.Errorf("only %d/%d schedules recorded any spawn; instrumentation is dark", spawned, n)
	}
}
