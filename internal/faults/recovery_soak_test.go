package faults_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"privagic"
	"privagic/internal/faults"
	"privagic/internal/sources"
)

// The recovery soak is the acceptance test of the recovery layer: the same
// two workloads as the supervision soak, but every schedule injects crashes
// (at chunk entry, mid-body after buffered writes, or both) capped at the
// replay budget — so every single run must recover to the exact correct
// answer with a nil error. On top of correctness, each run is audited for
// the exactly-once invariants: no spawn gives up, every journaled spawn
// commits exactly once, every injected crash is answered by exactly one
// replay, and no crashed attempt's buffered effects leak.

// recoveryBudget is both the per-spawn replay budget and the per-run crash
// cap. Cap <= budget is what makes recovery deterministic: even if every
// crash lands on the same spawn, its attempts never exhaust.
const recoveryBudget = 3

// recoveryWaitTimeout bounds runtime waits during the recovery soak.
// Crash-only schedules never lose a message, so unlike the supervision
// soak's tight budget (where a timeout is an *expected* outcome of a
// dropped cont) this timeout is purely a lost-wakeup guard: it must sit
// well above scheduler noise — delays past 100ms have been observed on
// loaded CI machines — or benign preemption reads as a recovery failure.
const recoveryWaitTimeout = 250 * time.Millisecond

// recoveryFaultsFor derives a crash-only schedule from the seed: entry
// crashes, mid-run crashes (the case that needs effect buffering), or a mix.
func recoveryFaultsFor(seed int64) privagic.FaultOptions {
	r := rand.New(rand.NewSource(seed * 104729))
	o := privagic.FaultOptions{Seed: seed, MaxCrashes: recoveryBudget}
	switch seed % 3 {
	case 0:
		o.Crash = 0.05 + 0.2*r.Float64()
	case 1:
		o.CrashMid = 0.02 + 0.08*r.Float64()
	default:
		o.Crash = 0.03 + 0.1*r.Float64()
		o.CrashMid = 0.01 + 0.04*r.Float64()
	}
	return o
}

// recoveryTotals aggregates the audit counters over a sweep.
type recoveryTotals struct {
	crashes, replays, discards int64
}

// runRecoverySchedule executes one entry call under one crash schedule with
// recovery enabled and asserts full recovery plus the journal invariants.
func runRecoverySchedule(t *testing.T, prog *privagic.Program, entry string, seed int64,
	check func(ret int64, inst *privagic.Instance) string, tot *recoveryTotals) {
	t.Helper()
	inst := prog.Instantiate(nil)
	defer inst.Close()
	inst.EnableSpawnValidation()
	inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: recoveryWaitTimeout})
	inst.EnableRecovery(privagic.RecoveryOptions{MaxAttempts: recoveryBudget})
	inst.EnableFaultInjection(recoveryFaultsFor(seed))

	type result struct {
		ret int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		ret, err := inst.Call(entry)
		done <- result{ret, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("seed %d: DEADLOCK: call did not complete in 10s (faults: %+v, recovery: %+v)",
			seed, inst.FaultStats(), inst.RecoveryStats())
	}
	fs, rs := inst.FaultStats(), inst.RecoveryStats()
	if res.err != nil {
		t.Fatalf("seed %d: USER-VISIBLE ERROR despite recovery: %v (faults: %+v, recovery: %+v)",
			seed, res.err, fs, rs)
	}
	if msg := check(res.ret, inst); msg != "" {
		t.Fatalf("seed %d: WRONG ANSWER after recovery: %s (faults: %+v, recovery: %+v)",
			seed, msg, fs, rs)
	}
	// Exactly-once audit. Every injected crash aborts one attempt and is
	// answered by exactly one replay; every journaled spawn commits exactly
	// once (a commit gap means a lost effect, an excess means double
	// application); nothing may run out of budget with the cap <= budget.
	if rs.Giveups != 0 {
		t.Fatalf("seed %d: %d spawns exhausted the replay budget (faults: %+v)", seed, rs.Giveups, fs)
	}
	if rs.Commits != rs.SpawnsJournaled {
		t.Fatalf("seed %d: %d journaled spawns but %d commits (faults: %+v, recovery: %+v)",
			seed, rs.SpawnsJournaled, rs.Commits, fs, rs)
	}
	if rs.Replays != fs.Crashes {
		t.Fatalf("seed %d: %d crashes injected but %d replays performed (recovery: %+v)",
			seed, fs.Crashes, rs.Replays, rs)
	}
	// Only mid-run crashes open (and then discard) an effect transaction.
	if rs.EffectDiscards > fs.Crashes {
		t.Fatalf("seed %d: %d effect discards for %d crashes", seed, rs.EffectDiscards, fs.Crashes)
	}
	tot.crashes += fs.Crashes
	tot.replays += rs.Replays
	tot.discards += rs.EffectDiscards
}

// TestSoakRecoveryFigure6 sweeps the walkthrough program through crash
// schedules with recovery on: ret must be 42 with g's output printed
// exactly once, every time.
func TestSoakRecoveryFigure6(t *testing.T) {
	prog, err := privagic.Compile("figure6.c", figure6Src, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"main"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := soakCount(faults.Schedules().RecoveryFigure6, testing.Short())
	var tot recoveryTotals
	for seed := int64(1); seed <= int64(n); seed++ {
		runRecoverySchedule(t, prog, "main", seed, func(ret int64, inst *privagic.Instance) string {
			if ret != 42 {
				return "ret != 42"
			}
			if c := strings.Count(inst.Output(), "Hello"); c != 1 {
				return fmt.Sprintf("g's output appeared %d times, want exactly once", c)
			}
			return ""
		}, &tot)
	}
	t.Logf("figure6 recovery soak over %d schedules: %d crashes injected, %d replays, %d effect discards — all recovered",
		n, tot.crashes, tot.replays, tot.discards)
	if tot.crashes == 0 {
		t.Error("sweep injected no crashes; the soak proved nothing")
	}
}

// TestSoakRecoveryTwoColorHashmap sweeps the two-color hashmap — the
// workload whose enclave state a double-applied or lost replay effect
// would silently corrupt — through crash schedules with recovery on.
func TestSoakRecoveryTwoColorHashmap(t *testing.T) {
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := prog.Instantiate(nil)
	want, err := clean.Call("run_ycsb")
	clean.Close()
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if want <= 0 {
		t.Fatalf("clean run returned %d hits; workload is degenerate", want)
	}
	n := soakCount(faults.Schedules().RecoveryTwoColor, testing.Short())
	var tot recoveryTotals
	for seed := int64(1); seed <= int64(n); seed++ {
		runRecoverySchedule(t, prog, "run_ycsb", seed, func(ret int64, _ *privagic.Instance) string {
			if ret != want {
				return "hit count diverged from the clean run"
			}
			return ""
		}, &tot)
	}
	t.Logf("two-color recovery soak over %d schedules (want %d hits): %d crashes, %d replays, %d effect discards — all recovered",
		n, want, tot.crashes, tot.replays, tot.discards)
	if tot.crashes == 0 {
		t.Error("sweep injected no crashes; the soak proved nothing")
	}
}
