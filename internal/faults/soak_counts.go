//go:build !race

package faults

// Soak schedule counts (see soak_test.go). The race-enabled build shrinks
// them so `go test -race` stays in CI budget while still exercising every
// fault class under the race detector.
const (
	SoakFigure6Schedules  = 700
	SoakTwoColorSchedules = 320

	// Recovery soak (recovery_soak_test.go): every schedule injects
	// crashes capped at the replay budget and must fully recover. The two
	// sweeps together clear the 1000-schedule acceptance floor.
	SoakRecoveryFigure6Schedules  = 700
	SoakRecoveryTwoColorSchedules = 320
)
