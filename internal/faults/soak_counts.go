//go:build !race

package faults

// Soak schedule counts (see soak_test.go). The race-enabled build shrinks
// them so `go test -race` stays in CI budget while still exercising every
// fault class under the race detector.
const (
	SoakFigure6Schedules  = 700
	SoakTwoColorSchedules = 320
)
