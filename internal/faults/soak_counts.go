package faults

// SoakBudget is the schedule count of each tier-3 soak sweep. The values
// live in one build-tagged variable (soak_counts_full.go /
// soak_counts_race.go): the race-enabled build shrinks every sweep so
// `go test -race` stays in CI budget while still exercising every fault
// class under the detector. Tests read the counts through Schedules() so
// the tag selection happens in exactly one place.
type SoakBudget struct {
	// Supervision soak (soak_test.go): message-level faults, every run
	// must end in the correct answer or a typed error.
	Figure6  int
	TwoColor int

	// Recovery soak (recovery_soak_test.go): injected crashes capped at
	// the replay budget, every run must fully recover.
	RecoveryFigure6  int
	RecoveryTwoColor int

	// Iago soak (iago_soak_test.go): the U-memory mutator adversary,
	// hardened mode must return the exact answer or a typed violation.
	IagoFigure6  int
	IagoTwoColor int

	// Cluster soak (internal/cluster/chaos_soak_test.go): shard-level
	// chaos (kill/hang/respawn mid-run) against the router, every Get
	// must be fresh-or-miss; the relaxed sweep runs overload without
	// faults and must see zero spurious failovers.
	ClusterChaos   int
	ClusterRelaxed int

	// Gray-failure soak (internal/cluster/grayfail_soak_test.go):
	// network-level degradation (latency spikes, asymmetric partitions,
	// resets, corruption) through fault-injecting proxies while every
	// shard stays alive; every Get fresh-or-miss, every failure typed.
	// The control sweep runs the same traffic through clean proxies and
	// must see zero breaker trips and zero demotions.
	GrayChaos   int
	GrayControl int

	// Differential soak (differential_soak_test.go): the compiled
	// execution tier under the interpreter oracle, swept through the
	// recovery soak's crash schedules and the Iago soak's mutator
	// classes. Every schedule must end in the exact answer or a typed
	// error with zero divergences.
	DiffChaos int
	DiffIago  int
}

// Schedules returns the build's soak schedule counts.
func Schedules() SoakBudget { return soakBudget }

// CounterSource is the uniform counter surface every fault class
// exports: adversary activity as name -> count, so harnesses can
// aggregate and print what an attack did without knowing which
// adversary produced it.
type CounterSource interface {
	Counters() map[string]int64
}

var (
	_ CounterSource = (*Injector)(nil)
	_ CounterSource = (*Mutator)(nil)
)
