//go:build !race

package faults

// Full soak sweeps (race-free build). Each pair of sweeps clears the
// 1000-schedule acceptance floor of its soak on its own: 700 + 320.
var soakBudget = SoakBudget{
	Figure6:  700,
	TwoColor: 320,

	RecoveryFigure6:  700,
	RecoveryTwoColor: 320,

	IagoFigure6:  700,
	IagoTwoColor: 320,

	ClusterChaos:   520,
	ClusterRelaxed: 130,

	GrayChaos:   520,
	GrayControl: 130,

	DiffChaos: 360,
	DiffIago:  200,
}
