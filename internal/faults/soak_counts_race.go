//go:build race

package faults

// Reduced soak schedule counts for `go test -race`: the detector slows
// every queue operation by an order of magnitude, so the full 1000+
// schedules would dominate CI. The reduced sweep still covers all four
// fault classes (retransmit, permanent loss, crash, clean-but-noisy).
const (
	SoakFigure6Schedules  = 80
	SoakTwoColorSchedules = 24

	SoakRecoveryFigure6Schedules  = 60
	SoakRecoveryTwoColorSchedules = 20
)
