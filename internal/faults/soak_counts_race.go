//go:build race

package faults

// Reduced sweeps for `go test -race`: the detector slows every queue
// operation by an order of magnitude, so the full 1000+ schedules per
// soak would dominate CI. Each reduced sweep still covers all of its
// fault classes under the detector.
var soakBudget = SoakBudget{
	Figure6:  80,
	TwoColor: 24,

	RecoveryFigure6:  60,
	RecoveryTwoColor: 20,

	IagoFigure6:  60,
	IagoTwoColor: 20,

	ClusterChaos:   32,
	ClusterRelaxed: 12,

	GrayChaos:   24,
	GrayControl: 10,

	DiffChaos: 40,
	DiffIago:  24,
}
