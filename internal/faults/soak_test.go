package faults_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"privagic"
	"privagic/internal/faults"
	"privagic/internal/sources"
)

// The soak is the acceptance test of the robustness work: the figure-6
// walkthrough and the two-color hashmap run under 1000+ seeded fault
// schedules (drops with and without retransmit, duplicates, delays,
// reorders, forgeries, injected crashes), and every single run must either
// produce the exact correct answer or return one of the typed supervision
// errors. A hang is a deadlock (caught by a per-run deadline); a wrong
// ret with a nil error is a silent corruption. Both fail the suite.

// figure6Src is the paper's Figure 6 example (examples/figure6 runs the
// annotated walkthrough of the same program).
const figure6Src = `
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

void g(int n) {
	blue = n;
	red = n;
	printf("Hello\n");
}
int f(int y) {
	g(21);
	return 42;
}
entry int main() {
	unsafe = 1;
	int x = f(blue);
	return x;
}
`

// soakWaitTimeout bounds every runtime wait during the soak. Held
// (delayed/reordered) messages are force-flushed on a ~5ms wall-clock
// bound, so a comfortably larger timeout keeps benign delays from reading
// as losses while a genuine loss still fails fast.
const soakWaitTimeout = 15 * time.Millisecond

// faultClassFor derives one of four fault classes plus jittered
// probabilities from the schedule seed:
//
//	seed%4 == 0: lossy transport with retransmission (must mostly succeed)
//	seed%4 == 1: permanent loss (timeouts are the expected failure)
//	seed%4 == 2: crashing enclaves (aborts are the expected failure)
//	seed%4 == 3: noisy but lossless (duplicates/delays/reorders/forgeries)
func faultClassFor(seed int64) privagic.FaultOptions {
	r := rand.New(rand.NewSource(seed * 7919))
	o := privagic.FaultOptions{
		Seed:      seed,
		Duplicate: 0.01 + 0.03*r.Float64(),
		Delay:     0.01 + 0.03*r.Float64(),
		Reorder:   0.01 + 0.03*r.Float64(),
		Forge:     0.01 + 0.02*r.Float64(),
	}
	switch seed % 4 {
	case 0:
		o.Drop = 0.005 + 0.015*r.Float64()
		o.Retransmit = true
		o.RetransmitAfter = time.Millisecond
	case 1:
		o.Drop = 0.002 + 0.006*r.Float64()
	case 2:
		o.Crash = 0.002 + 0.008*r.Float64()
	}
	return o
}

// soakOutcome tallies how a schedule sweep ended.
type soakOutcome struct {
	correct, timeouts, aborts, stopped int
}

// runSchedule executes one entry call on a fresh instance under one fault
// schedule and classifies the outcome. check validates a successful ret.
func runSchedule(t *testing.T, prog *privagic.Program, entry string, seed int64,
	check func(ret int64, inst *privagic.Instance) string, out *soakOutcome) {
	t.Helper()
	inst := prog.Instantiate(nil)
	defer inst.Close()
	inst.EnableSpawnValidation()
	inst.EnableSupervision(privagic.SupervisionOptions{WaitTimeout: soakWaitTimeout})
	inst.EnableFaultInjection(faultClassFor(seed))

	type result struct {
		ret int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		ret, err := inst.Call(entry)
		done <- result{ret, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("seed %d: DEADLOCK: call did not complete in 10s (faults: %+v)",
			seed, inst.FaultStats())
	}
	switch {
	case res.err == nil:
		if msg := check(res.ret, inst); msg != "" {
			t.Fatalf("seed %d: SILENT WRONG ANSWER: %s (faults: %+v, supervision: %+v)",
				seed, msg, inst.FaultStats(), inst.SupervisionStats())
		}
		out.correct++
	case errors.Is(res.err, privagic.ErrWaitTimeout):
		out.timeouts++
	case errors.Is(res.err, privagic.ErrEnclaveAbort):
		out.aborts++
	case errors.Is(res.err, privagic.ErrStopped):
		out.stopped++
	default:
		t.Fatalf("seed %d: untyped failure %v (faults: %+v)", seed, res.err, inst.FaultStats())
	}
}

func soakCount(n int, short bool) int {
	if short {
		n /= 10
		if n < 8 {
			n = 8
		}
	}
	return n
}

// TestSoakFigure6 sweeps the paper's walkthrough program through seeded
// fault schedules.
func TestSoakFigure6(t *testing.T) {
	prog, err := privagic.Compile("figure6.c", figure6Src, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"main"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := soakCount(faults.Schedules().Figure6, testing.Short())
	var out soakOutcome
	for seed := int64(1); seed <= int64(n); seed++ {
		runSchedule(t, prog, "main", seed, func(ret int64, inst *privagic.Instance) string {
			if ret != 42 {
				return "ret != 42"
			}
			if !strings.Contains(inst.Output(), "Hello") {
				return "completed without g's output"
			}
			return ""
		}, &out)
	}
	t.Logf("figure6 soak over %d schedules: %d correct, %d timeouts, %d aborts, %d stopped",
		n, out.correct, out.timeouts, out.aborts, out.stopped)
	if out.correct < n/2 {
		t.Errorf("only %d/%d schedules completed correctly; fault rates drown the protocol", out.correct, n)
	}
}

// TestSoakTwoColorHashmap sweeps the §9.3 two-color hashmap (red keys,
// blue values, declassified comparisons) — the workload where a silently
// corrupted message would flip the hit count.
func TestSoakTwoColorHashmap(t *testing.T) {
	prog, err := privagic.Compile("hashmap2.c", sources.HashmapColored2, privagic.Options{
		Mode: privagic.Relaxed, Entries: []string{"run_ycsb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The ground truth comes from one clean (fault-free) run.
	clean := prog.Instantiate(nil)
	want, err := clean.Call("run_ycsb")
	clean.Close()
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if want <= 0 {
		t.Fatalf("clean run returned %d hits; workload is degenerate", want)
	}
	n := soakCount(faults.Schedules().TwoColor, testing.Short())
	var out soakOutcome
	for seed := int64(1); seed <= int64(n); seed++ {
		runSchedule(t, prog, "run_ycsb", seed, func(ret int64, _ *privagic.Instance) string {
			if ret != want {
				return "hit count diverged from the clean run"
			}
			return ""
		}, &out)
	}
	t.Logf("two-color soak over %d schedules (want %d hits): %d correct, %d timeouts, %d aborts, %d stopped",
		n, want, out.correct, out.timeouts, out.aborts, out.stopped)
	// Classes 0 (lossy with retransmission) and 3 (noisy but lossless)
	// are half the seeds and should almost always recover to the exact
	// answer; a third of all schedules is a conservative floor for that.
	if out.correct < n/3 {
		t.Errorf("only %d/%d schedules completed correctly; recovery classes should dominate", out.correct, n)
	}
}
