package interp

import (
	"sync/atomic"

	"privagic/internal/prt"
	"privagic/internal/sgx"
)

// Runtime boundary defense (the hardened-mode Iago layer).
//
// The static checker guarantees no *instruction* crosses a color boundary
// illegally, but the §4 attacker owns unsafe memory at runtime: a U word
// can change between two reads of the same barrier interval (double
// fetch), a U-resident pointer slot can be smashed to point anywhere, and
// a queued message can be rewritten in place. The three defenses here
// close those windows:
//
//  1. Copy-in snapshots: the first time a colored chunk reads a U word in
//     a barrier interval, the word is copied into enclave-private memory
//     (the snapshot, parked in the worker's Snap slot); every later read
//     of that word in the interval is served from the copy. A mutation of
//     the backing word between the two reads is simply never observed —
//     TOCTOU is defeated by construction, not detected.
//  2. Pointer sanitization: before any dereference, the address is
//     validated against the simulated memory map (region mapped, offset
//     inside the region's allocation extent). A smashed pointer surfaces
//     as a typed *prt.IagoViolation instead of garbage or a crash.
//  3. Payload integrity tags live in internal/prt (Runtime.PayloadTags):
//     spawn arguments and cont payloads travel through messages, so their
//     copy-in is the message itself and their freshness is the tag.
//
// The snapshot map also does double duty as the freshness tracker for the
// mutator adversary (internal/faults): a BoundaryObserver sees every
// backing U load with its (enclave, fresh) classification and every
// backing U store, which is exactly the information a U-memory attacker
// simulation needs to corrupt precisely the windows the defense claims to
// close — and nothing else.

// BoundaryConfig selects which boundary defenses are armed.
type BoundaryConfig struct {
	// Snapshots serves repeated U reads of a barrier interval from an
	// enclave-private copy taken at first read.
	Snapshots bool
	// SanitizePointers validates every load/store address against the
	// memory map before dereference.
	SanitizePointers bool
	// PayloadTags arms the prt payload integrity tags (set through
	// EnableBoundaryDefense so one call configures the whole layer).
	PayloadTags bool
}

func (c BoundaryConfig) any() bool { return c.Snapshots || c.SanitizePointers || c.PayloadTags }

// FullBoundary is the hardened-mode default: everything armed.
func FullBoundary() BoundaryConfig {
	return BoundaryConfig{Snapshots: true, SanitizePointers: true, PayloadTags: true}
}

// EnableBoundaryDefense arms the runtime Iago defenses. Call before the
// first Call (the payload-tag half configures the runtime, and threads
// cache nothing, but arming mid-protocol would tag only some messages of
// a stream).
func (ip *Interp) EnableBoundaryDefense(cfg BoundaryConfig) {
	ip.boundary = cfg
	ip.RT.PayloadTags = cfg.PayloadTags
}

// BoundaryObserver sees every backing access to unsafe memory — the seam
// the mutator adversary attaches to. GuardedLoad wraps the actual backing
// read of one aligned 8-byte word: enclave says whether an enclave-mode
// chunk is reading, fresh whether this is the word's first read of the
// current barrier interval. GuardedStore wraps a backing write (direct
// stores and effect-transaction commits), so an attacker holding a
// pending corruption of those words can resolve it before legitimate data
// lands. Both run the access inside the callback so the observer can make
// its own writes atomic with it.
type BoundaryObserver interface {
	GuardedLoad(addr uint64, n int, enclave, fresh bool, load func())
	GuardedStore(addr uint64, n int, store func())
}

// SetBoundaryObserver installs (or removes, with nil) the U-memory access
// observer. Install before Call.
func (ip *Interp) SetBoundaryObserver(o BoundaryObserver) {
	ip.bobs = o
}

// boundaryCounters classifies boundary crossings (atomic: chunk bodies run
// on worker goroutines). Counted only while the defense is armed.
type boundaryCounters struct {
	snapCopyIns  atomic.Int64 // U words copied into a snapshot (first read)
	snapServed   atomic.Int64 // U word reads served from the snapshot
	trustedLoads atomic.Int64 // loads from enclave (S) memory
	unsafeLoads  atomic.Int64 // U loads not covered by a snapshot
	sanChecks    atomic.Int64 // addresses validated before dereference
	violations   atomic.Int64 // typed Iago violations raised
}

// BoundaryStats is a snapshot of the interpreter-side defense counters
// (payload-tag rejections are counted by the runtime: SupervisionStats).
type BoundaryStats struct {
	SnapshotCopyIns int64 // U words copied in at first read
	SnapshotServed  int64 // repeated reads served from the copy
	TrustedLoads    int64 // loads from enclave memory (no defense needed)
	UnsafeLoads     int64 // U loads outside snapshot coverage
	SanitizeChecks  int64 // pointer validations performed
	Violations      int64 // typed violations raised
}

// BoundaryStats snapshots the defense counters.
func (ip *Interp) BoundaryStats() BoundaryStats {
	return BoundaryStats{
		SnapshotCopyIns: ip.bStats.snapCopyIns.Load(),
		SnapshotServed:  ip.bStats.snapServed.Load(),
		TrustedLoads:    ip.bStats.trustedLoads.Load(),
		UnsafeLoads:     ip.bStats.unsafeLoads.Load(),
		SanitizeChecks:  ip.bStats.sanChecks.Load(),
		Violations:      ip.bStats.violations.Load(),
	}
}

// boundarySnap is the per-barrier-interval copy-in cache of one worker:
// whole aligned 8-byte U words, keyed by word offset. It models the
// enclave-private staging buffer a hardened compiler would emit copy-in
// code for. serve is false in tracking-only mode (snapshots disarmed but
// an observer needs the freshness classification): words are recorded but
// reads still hit backing memory.
type boundarySnap struct {
	words map[uint64][8]byte
	serve bool
}

// snapOf returns the worker's active snapshot, or nil.
func snapOf(w *prt.Worker) *boundarySnap {
	sn, _ := w.Snap.(*boundarySnap)
	return sn
}

// beginSnap opens a snapshot for a spawned chunk when snapshots are armed
// or an observer needs freshness tracking. Returns the previous Snap slot
// value so nested spawns on the same worker restore the outer chunk's
// snapshot.
func (ip *Interp) beginSnap(w *prt.Worker) (prev any) {
	prev = w.Snap
	if ip.boundary.Snapshots || ip.bobs != nil {
		w.Snap = &boundarySnap{
			words: make(map[uint64][8]byte, 16),
			serve: ip.boundary.Snapshots,
		}
	} else {
		w.Snap = nil
	}
	return prev
}

// snapBarrier starts a new barrier interval on the worker: the snapshot
// is dropped, so the next read of each U word re-copies it. Called after
// every successful wait/join — the values a peer produced behind the
// barrier must be observable, and the TOCTOU window the snapshot closes
// is *within* an interval, not across barriers.
func (ip *Interp) snapBarrier(w *prt.Worker) {
	if sn := snapOf(w); sn != nil {
		clear(sn.words)
	}
}

// snapLoad serves a load of unsafe memory through the snapshot/observer
// layer, one aligned 8-byte word at a time. Reports false when the layer
// is not engaged for this address (the caller then performs the plain
// mode-checked load). Enclave-region loads never come here: enclave
// memory is trusted by the SGX model itself.
func (ip *Interp) snapLoad(w *prt.Worker, addr uint64, buf []byte) bool {
	obs := ip.bobs
	if !ip.boundary.Snapshots && obs == nil {
		return false
	}
	rid, off := sgx.DecodePtr(addr)
	if rid != sgx.Unsafe {
		return false
	}
	r := ip.RT.Space.Region(sgx.Unsafe)
	sn := snapOf(w)
	enclave := w.Mode != sgx.Unsafe
	armed := ip.boundary.Snapshots
	for i := 0; i < len(buf); {
		wordOff := (off + uint64(i)) &^ 7
		var wb [8]byte
		cached := false
		if sn != nil {
			wb, cached = sn.words[wordOff]
		}
		if cached && sn.serve {
			ip.bStats.snapServed.Add(1)
		} else {
			if obs != nil {
				obs.GuardedLoad(sgx.EncodePtr(sgx.Unsafe, wordOff), 8, enclave, !cached, func() {
					r.Load(wordOff, wb[:])
				})
			} else {
				r.Load(wordOff, wb[:])
			}
			if sn != nil && !cached {
				sn.words[wordOff] = wb
				if armed {
					ip.bStats.snapCopyIns.Add(1)
				}
			}
		}
		for ; i < len(buf) && (off+uint64(i))&^7 == wordOff; i++ {
			buf[i] = wb[(off+uint64(i))&7]
		}
	}
	return true
}

// snapStoreSync keeps an active snapshot coherent with the chunk's own
// direct stores: a word the chunk already copied in is updated so later
// snapshot-served reads see the chunk's write (reads patch the effect
// overlay too, but direct stores bypass it when recovery is off).
func snapStoreSync(sn *boundarySnap, off uint64, data []byte) {
	if sn == nil || len(sn.words) == 0 {
		return
	}
	for i := 0; i < len(data); {
		wordOff := (off + uint64(i)) &^ 7
		wb, cached := sn.words[wordOff]
		for ; i < len(data) && (off+uint64(i))&^7 == wordOff; i++ {
			if cached {
				wb[(off+uint64(i))&7] = data[i]
			}
		}
		if cached {
			sn.words[wordOff] = wb
		}
	}
}

// guardedBackingStore routes a backing store to unsafe memory through the
// observer (when one is installed) so a pending corruption of those words
// is resolved before legitimate data lands.
func (ip *Interp) guardedBackingStore(addr uint64, n int, store func()) {
	if obs := ip.bobs; obs != nil {
		if rid, _ := sgx.DecodePtr(addr); rid == sgx.Unsafe {
			obs.GuardedStore(addr, n, store)
			return
		}
	}
	store()
}

// sanitize validates an address against the simulated memory map before a
// dereference: the region must be mapped and the offset inside its
// allocation extent (full range for stores; for loads only the start is
// checked, because trusted bulk readers — readString's chunked scan — may
// legitimately overshoot the final allocation and rely on the machine's
// zero fill). A failure is the typed Iago violation of the hardened mode.
func (ip *Interp) sanitize(w *prt.Worker, addr uint64, n int, store bool) {
	ip.bStats.sanChecks.Add(1)
	rid, off := sgx.DecodePtr(addr)
	r := ip.RT.Space.Region(rid)
	var extent uint64
	ok := r != nil
	if ok {
		extent = r.Extent()
		if store {
			ok = off < extent && off+uint64(n) <= extent
		} else {
			ok = off < extent
		}
	}
	if !ok {
		ip.bStats.violations.Add(1)
		panic(runtimeErr{Err: &prt.IagoViolation{
			Kind: "pointer", Worker: w.Index, Addr: addr,
			Region: int(rid), Extent: extent, Len: n,
		}})
	}
}

// The payload-integrity hooks (PaySum, MutatePayload) moved to exec.Val
// with the value representation itself, so messages carry identical
// integrity tags no matter which engine produced the payload.
