package interp

import (
	"fmt"
	"strconv"
	"strings"

	"privagic/internal/ir"
	"privagic/internal/obs"
	"privagic/internal/partition"
	"privagic/internal/prt"
)

// call evaluates a call instruction's arguments and dispatches it.
func (ip *Interp) call(w *prt.Worker, frame map[ir.Value]val, t *ir.Call) val {
	args := make([]val, len(t.Args))
	for i, a := range t.Args {
		args[i] = ip.eval(frame, a)
	}
	var callee val
	if _, direct := t.Callee.(*ir.Function); !direct {
		callee = ip.eval(frame, t.Callee)
	}
	return ip.dispatchCall(w, t, callee, args)
}

// dispatchCall dispatches a call instruction with its evaluated callee
// value and arguments: runtime intrinsics, direct chunk calls, builtins
// (the mini-libc of §6.3 plus host I/O), and indirect calls through the
// interface versions (§6.3). Both engines land here — it is the exec.Env
// call seam — and the differential recorder captures every operation with
// an effect or an environment-supplied result.
func (ip *Interp) dispatchCall(w *prt.Worker, t *ir.Call, callee val, args []val) val {
	fn, direct := t.Callee.(*ir.Function)
	if !direct {
		// Indirect call: resolve the function-pointer value to an
		// interface version, conservatively in the untrusted part.
		idx := callee.I
		if idx <= 0 || int(idx) > len(ip.ifaceTable) {
			errf("interp: indirect call through invalid function pointer %d", idx)
		}
		pf := ip.ifaceTable[idx-1]
		if rec := recOf(w); rec != nil {
			// The nested interface invocation manages its own spawns and
			// joins; record it as one opaque operation (recording
			// suspended inside) so the shadow replays its result.
			w.Diff = nil
			var v val
			func() {
				defer func() { w.Diff = rec }()
				v = ip.invokeInterface(w, pf, args)
			}()
			rec.add(diffOp{kind: opInvoke, a: idx, vec: args, v: v})
			return v
		}
		return ip.invokeInterface(w, pf, args)
	}
	switch fn.FName {
	case partition.IntrSpawn:
		chunkID := int(args[0].I)
		needReply := args[1].I != 0
		payload := make([]any, 0, 8)
		ch := ip.Prog.ChunkByID[chunkID]
		// Rebuild the callee's argument vector: Free args are carried
		// by the spawn message in parameter order (§7.3.2).
		fargs := args[2:]
		fi := 0
		for range ch.Fn.Params {
			if fi < len(fargs) {
				payload = append(payload, fargs[fi])
				fi++
			} else {
				payload = append(payload, val{})
			}
		}
		w.Spawn(ip.Prog.ColorIndex(ch.Color), chunkID, payload, needReply)
		if rec := recOf(w); rec != nil {
			nr := int64(0)
			if needReply {
				nr = 1
			}
			rec.add(diffOp{kind: opSpawn, a: int64(chunkID), b: nr, vec: valsOf(payload)})
		}
		return val{}
	case partition.IntrWait:
		p, err := w.Wait(int(args[0].I))
		if err != nil {
			// A lost cont (timeout), a crashed peer, or shutdown: abort
			// this chunk; execChunk/Call surface the typed error.
			panic(runtimeErr{Err: err})
		}
		// A satisfied wait ends the barrier interval: drop the copy-in
		// snapshot so the interval that starts now re-copies each U word
		// (a peer's writes behind the barrier must become observable).
		ip.snapBarrier(w)
		v, _ := p.(val)
		if rec := recOf(w); rec != nil {
			rec.add(diffOp{kind: opWait, a: args[0].I, v: v})
		}
		return v
	case partition.IntrJoin:
		p, err := w.Join(int(args[0].I))
		if err != nil {
			panic(runtimeErr{Err: err})
		}
		ip.snapBarrier(w)
		v, _ := p.(val)
		if rec := recOf(w); rec != nil {
			rec.add(diffOp{kind: opJoin, a: args[0].I, v: v})
		}
		return v
	case partition.IntrSend:
		w.SendCont(int(args[0].I), int(args[1].I), args[2])
		if rec := recOf(w); rec != nil {
			rec.add(diffOp{kind: opSend, a: args[0].I, b: args[1].I, v: args[2]})
		}
		return val{}
	case partition.IntrSendV:
		// Vectored cont (crossing optimizer): one message carries the
		// values of every coalesced transport.
		vec := make([]any, len(args)-2)
		for i, a := range args[2:] {
			vec[i] = a
		}
		tag := int(args[1].I)
		w.SendCont(int(args[0].I), tag, vec)
		ip.cross.vecSends.Add(1)
		ip.RT.Tracer.Record(obs.EvVecSend, w.Index, 0, tag, 0, int64(len(vec)))
		if rec := recOf(w); rec != nil {
			rec.add(diffOp{kind: opSendV, a: args[0].I, b: int64(tag), vec: valsOf(vec)})
		}
		return val{}
	case partition.IntrWaitV:
		tag := int(args[0].I)
		p, err := w.Wait(tag)
		if err != nil {
			panic(runtimeErr{Err: err})
		}
		ip.snapBarrier(w)
		vec, ok := p.([]any)
		if !ok {
			panic(runtimeErr{Err: fmt.Errorf("interp: waitv(%d) received a non-vector payload %T", tag, p)})
		}
		ip.vecMu.Lock()
		ip.vecStash[[2]int{w.Index, tag}] = vec
		ip.vecMu.Unlock()
		ip.cross.vecWaits.Add(1)
		ip.RT.Tracer.Record(obs.EvVecWait, w.Index, 0, tag, 0, int64(len(vec)))
		var v val
		if len(vec) > 0 {
			v, _ = vec[0].(val)
		}
		if rec := recOf(w); rec != nil {
			rec.add(diffOp{kind: opWaitV, b: int64(tag), vec: valsOf(vec), v: v})
		}
		return v
	case partition.IntrElem:
		tag, idx := int(args[0].I), int(args[1].I)
		ip.vecMu.Lock()
		vec := ip.vecStash[[2]int{w.Index, tag}]
		ip.vecMu.Unlock()
		if idx < 0 || idx >= len(vec) {
			panic(runtimeErr{Err: fmt.Errorf("interp: elem(%d, %d) outside the received vector (len %d)", tag, idx, len(vec))})
		}
		ip.cross.elemReads.Add(1)
		v, _ := vec[idx].(val)
		if rec := recOf(w); rec != nil {
			rec.add(diffOp{kind: opElem, a: int64(tag), b: int64(idx), v: v})
		}
		return v
	}
	if !fn.External {
		// Direct call to another chunk on the same worker: the normal
		// same-color case, or the crossing optimizer's fused form (a
		// message-free unsafe chunk inlined into its spawner's worker).
		if ch := ip.chunkOf[fn]; ch != nil && ip.Prog.ColorIndex(ch.Color) != w.Index {
			ip.cross.fusedCalls.Add(1)
			ip.RT.Tracer.Record(obs.EvFusedCall, w.Index, ch.ID, 0, 0, 0)
		}
		return ip.runOn(w, fn, args)
	}
	v := ip.builtin(w, fn, t, args)
	if rec := recOf(w); rec != nil {
		// Builtins read and write memory through the byte helpers below
		// the recording seam, so one opaque record carries the whole
		// operation: the shadow checks the arguments (the observable
		// outbound surface) and replays the result.
		rec.add(diffOp{kind: opCall, name: fn.FName, vec: args, v: v})
	}
	return v
}

// valsOf converts a payload vector to vals for the differential trace
// (non-val entries record as zero values).
func valsOf(vec []any) []val {
	out := make([]val, len(vec))
	for i, e := range vec {
		if v, ok := e.(val); ok {
			out[i] = v
		}
	}
	return out
}

// spawn payload note: the partitioner forwards F args in the order given by
// CallPlan.FArgIdx; since non-F parameters are never consumed by a spawned
// chunk, positional padding with zero values is sound. The FArgIdx order is
// ascending, matching the reconstruction above when all leading params are
// free; for mixed layouts the values land in the first slots, which is
// still correct because a spawned chunk's colored params are unused.

// builtin executes an external function natively.
func (ip *Interp) builtin(w *prt.Worker, fn *ir.Function, t *ir.Call, args []val) val {
	cost := &ip.RT.Machine.Cost
	switch fn.FName {
	case "printf":
		ip.RT.Meter.ChargeSyscall(cost, w.Mode)
		ip.printTx(w, ip.format(w, args))
		return iv(0)
	case "puts":
		ip.RT.Meter.ChargeSyscall(cost, w.Mode)
		ip.printTx(w, ip.readString(w, uint64(args[0].I))+"\n")
		return iv(0)
	case "exit":
		panic(runtimeErr{Err: fmt.Errorf("%w: code %d", ErrExit, args[0].I)})
	case "abort":
		panic(runtimeErr{Err: fmt.Errorf("program aborted")})
	case "reveal":
		// Scalar declassification (§6.4): the identity function,
		// annotated ignore by the program, whose call site moves the
		// value out of its enclave under developer responsibility.
		if len(args) > 0 {
			return args[0]
		}
		return val{}
	case "classify_key":
		// Scalar classification of an 8-byte key into the enclave.
		dst, src := uint64(args[0].I), uint64(args[1].I)
		var buf [8]byte
		ip.loadBytes(w, src, buf[:])
		ip.storeBytes(w, dst, buf[:])
		return val{}
	case "classify", "declassify":
		// The paper's §6.4 communication idiom: an ignore-annotated
		// copy across the enclave boundary (classify moves untrusted
		// bytes in, declassify moves sanctioned results out). The
		// worker executing it is inside the enclave, so both sides
		// are accessible; in a real deployment this is where
		// encryption/attestation would sit.
		fallthrough
	case "memcpy", "strncpy":
		dst, src, n := uint64(args[0].I), uint64(args[1].I), args[2].I
		buf := make([]byte, n)
		ip.loadBytes(w, src, buf)
		if fn.FName == "strncpy" {
			if i := indexByte(buf, 0); i >= 0 {
				for j := i; j < len(buf); j++ {
					buf[j] = 0
				}
			}
		}
		ip.storeBytes(w, dst, buf)
		if ip.OnAccess != nil {
			ip.OnAccess(src, n, false, w.Mode)
			ip.OnAccess(dst, n, true, w.Mode)
		}
		return args[0]
	case "memset":
		dst, c, n := uint64(args[0].I), byte(args[1].I), args[2].I
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = c
		}
		ip.storeBytes(w, dst, buf)
		return args[0]
	case "strlen":
		return iv(int64(len(ip.readString(w, uint64(args[0].I)))))
	case "strcmp", "strncmp":
		a := ip.readString(w, uint64(args[0].I))
		b := ip.readString(w, uint64(args[1].I))
		if fn.FName == "strncmp" {
			n := int(args[2].I)
			if len(a) > n {
				a = a[:n]
			}
			if len(b) > n {
				b = b[:n]
			}
		}
		return iv(int64(strings.Compare(a, b)))
	case "hash64":
		// FNV-1a, the classic in-enclave hash helper.
		p, n := uint64(args[0].I), args[1].I
		buf := make([]byte, n)
		ip.loadBytes(w, p, buf)
		var h uint64 = 14695981039346656037
		for _, b := range buf {
			h ^= uint64(b)
			h *= 1099511628211
		}
		return iv(int64(h))
	case "thread_create":
		idx := args[0].I
		if idx <= 0 || int(idx) > len(ip.ifaceTable) {
			errf("interp: thread_create with invalid function pointer %d", idx)
		}
		pf := ip.ifaceTable[idx-1]
		arg := args[1]
		th := ip.RT.NewThread()
		ip.threads.Add(1)
		go func() {
			defer ip.threads.Done()
			defer th.Close()
			defer func() {
				// A crashed thread must not kill the process;
				// the error surfaces as missing output.
				recover() //nolint:errcheck
			}()
			ip.invokeInterface(th.Normal(), pf, []val{arg})
		}()
		return iv(0)
	case "thread_join":
		ip.threads.Wait()
		return val{}
	}
	errf("interp: call to unimplemented external @%s", fn.FName)
	return val{}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// readString loads a NUL-terminated string (capped at 1 MiB).
func (ip *Interp) readString(w *prt.Worker, addr uint64) string {
	if addr == 0 {
		return ""
	}
	var out []byte
	buf := make([]byte, 64)
	for len(out) < 1<<20 {
		ip.loadBytes(w, addr, buf)
		if i := indexByte(buf, 0); i >= 0 {
			return string(append(out, buf[:i]...))
		}
		out = append(out, buf...)
		addr += uint64(len(buf))
	}
	return string(out)
}

// format implements the printf subset the examples use.
func (ip *Interp) format(w *prt.Worker, args []val) string {
	f := ip.readString(w, uint64(args[0].I))
	var b strings.Builder
	ai := 1
	next := func() val {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return val{}
	}
	for i := 0; i < len(f); i++ {
		c := f[i]
		if c != '%' || i+1 >= len(f) {
			b.WriteByte(c)
			continue
		}
		i++
		// Skip width/length modifiers.
		for i < len(f) && (f[i] == 'l' || f[i] == '0' || (f[i] >= '1' && f[i] <= '9') || f[i] == '.') {
			i++
		}
		if i >= len(f) {
			break
		}
		switch f[i] {
		case 'd', 'i', 'u':
			b.WriteString(strconv.FormatInt(next().I, 10))
		case 'x':
			b.WriteString(strconv.FormatInt(next().I, 16))
		case 'c':
			b.WriteByte(byte(next().I))
		case 's':
			b.WriteString(ip.readString(w, uint64(next().I)))
		case 'f', 'g', 'e':
			b.WriteString(strconv.FormatFloat(toF(next()), 'g', -1, 64))
		case 'p':
			fmt.Fprintf(&b, "%#x", uint64(next().I))
		case '%':
			b.WriteByte('%')
		default:
			b.WriteByte('%')
			b.WriteByte(f[i])
		}
	}
	return b.String()
}
