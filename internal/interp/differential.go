package interp

// The differential oracle (prt.EngineDifferential): every chunk
// activation runs twice. The live pass is the reference interpreter with
// a recorder installed — each operation with an effect or an
// environment-supplied result (loads, stores, allocations, spawns,
// waits, sends, builtins, indirect invocations) appends one diffOp to a
// trace. The shadow pass then re-executes the same activation on the
// compiled tier against diffEnv, a second exec.Env implementation that
// consumes the trace: outbound operands (store values, spawn payloads,
// builtin arguments) are checked against what the live pass computed,
// inbound results (loaded values, wait payloads, builtin returns) are
// replayed from the trace so the shadow stays lockstep with the live
// schedule instead of re-running effects. Any disagreement — a different
// operation kind, a different operand, a leftover or exhausted trace, a
// different result, or a different error — raises a DivergenceError.
//
// The comparison is per-activation and total over the recorded surface:
// if the compiled tier computes any address, operand, branch path
// (branches decide which ops run), or result differently from the
// interpreter, the trace cannot match. Builtin outputs are implied by
// builtin-argument equality (the builtin itself runs only once, in the
// live pass), which is the oracle's one documented abstraction.

import (
	"errors"
	"fmt"
	"math"

	"privagic/internal/exec"
	"privagic/internal/ir"
	"privagic/internal/obs"
	"privagic/internal/partition"
	"privagic/internal/passes/compile"
	"privagic/internal/prt"
)

// ErrDivergence is the sentinel wrapped by every DivergenceError: the
// two engines disagreed, which is always a compiler (or oracle) bug,
// never a program bug.
var ErrDivergence = errors.New("interp: differential engines diverged")

// DivergenceError reports a differential-oracle failure.
type DivergenceError struct {
	// Chunk names the chunk body whose engines disagreed.
	Chunk string
	// Detail describes the first point of disagreement.
	Detail string
}

// Error renders the divergence report.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("interp: differential divergence in chunk @%s: %s", e.Chunk, e.Detail)
}

// Unwrap ties every divergence to the ErrDivergence sentinel.
func (e *DivergenceError) Unwrap() error { return ErrDivergence }

// diffOpKind classifies one recorded operation.
type diffOpKind uint8

const (
	opLoad   diffOpKind = iota // a=addr, v=loaded value
	opStore                    // a=addr, v=stored value
	opAlloca                   // v=address
	opMalloc                   // a=count, v=address
	opCall                     // name=builtin, vec=args, v=result
	opInvoke                   // a=fnptr index, vec=args, v=result
	opSpawn                    // a=chunkID, b=needReply, vec=payload
	opWait                     // a=tag, v=payload
	opJoin                     // a=tag, v=payload
	opSend                     // a=colorIdx, b=tag, v=value
	opSendV                    // a=colorIdx, b=tag, vec=values
	opWaitV                    // b=tag, vec=values, v=first value
	opElem                     // a=tag, b=index, v=value
	opError                    // name=error text (always the final op)
)

var diffOpNames = [...]string{
	opLoad: "load", opStore: "store", opAlloca: "alloca", opMalloc: "malloc",
	opCall: "call", opInvoke: "invoke", opSpawn: "spawn", opWait: "wait",
	opJoin: "join", opSend: "send", opSendV: "sendv", opWaitV: "waitv",
	opElem: "elem", opError: "error",
}

func (k diffOpKind) String() string {
	if int(k) < len(diffOpNames) {
		return diffOpNames[k]
	}
	return fmt.Sprintf("diffOpKind(%d)", int(k))
}

// diffOp is one recorded operation of the live pass.
type diffOp struct {
	kind diffOpKind
	a, b int64
	v    val
	name string
	vec  []val
}

// diffRecorder accumulates the live pass's trace. It hangs off
// prt.Worker.Diff; the seam helpers (memLoad, memStore, doAlloca,
// doMalloc, dispatchCall) append to it when present.
type diffRecorder struct{ ops []diffOp }

func (r *diffRecorder) add(op diffOp) { r.ops = append(r.ops, op) }

// recOf returns the worker's active recorder, or nil.
func recOf(w *prt.Worker) *diffRecorder {
	rec, _ := w.Diff.(*diffRecorder)
	return rec
}

// valEq compares two machine values bitwise (floats by bit pattern, so
// NaN compares equal to itself and -0 differs from +0 — the engines must
// agree on bits, not on IEEE equality).
func valEq(a, b val) bool {
	return a.Fl == b.Fl && a.I == b.I && math.Float64bits(a.F) == math.Float64bits(b.F)
}

func vecEq(a, b []val) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// divergence is the shadow's internal "engines disagree" panic; runShadow
// recovers it into a verdict.
type divergence struct{ detail string }

// shadowStop is the shadow's internal "reached the live pass's error
// position" panic: the next trace op is opError, meaning the live pass
// aborted exactly here, so the shadow agrees by arriving at the same
// operation.
type shadowStop struct{}

// runDifferential runs one chunk activation under the oracle: live
// interpretation with recording, then the compiled shadow over the
// trace, then the verdict. The live pass's result (or error) is what the
// caller observes — unless the engines diverged, in which case a
// DivergenceError replaces it.
func (ip *Interp) runDifferential(w *prt.Worker, ch *partition.Chunk, args []val) val {
	cf := ip.compiledFn(ch.Fn)
	if cf == nil {
		// The compiler skipped this body (empty); nothing to compare.
		return ip.runFn(w, ch.Fn, args)
	}
	rec := &diffRecorder{}
	prev := w.Diff
	w.Diff = rec
	var liveRet val
	var liveErr error
	func() {
		defer func() {
			w.Diff = prev
			r := recover()
			if r == nil {
				return
			}
			if _, injected := r.(interface{ InjectedFault() }); injected {
				// An injected crash is schedule chaos, not program
				// semantics: the recovery layer replays the chunk (and the
				// replay runs under the oracle again), so skip the shadow.
				panic(r)
			}
			re, ok := r.(runtimeErr)
			if !ok {
				panic(r)
			}
			rec.add(diffOp{kind: opError, name: re.Err.Error()})
			liveErr = re.Err
		}()
		liveRet = ip.runFn(w, ch.Fn, args)
	}()
	env := &diffEnv{ip: ip, w: w, rec: rec}
	shadowRet, shadowErr, div, stopped := ip.runShadow(cf, w, args, env)
	detail := ""
	switch {
	case div != nil:
		detail = div.detail
	case stopped:
		// The shadow reached the operation where the live pass aborted:
		// agreement (the recorder guarantees opError is only appended on a
		// live error, so liveErr is set here).
	case shadowErr != nil:
		// The shadow raised its own pure runtime error (arithmetic,
		// nil deref, budget): the live pass must have recorded the same
		// error text at the same trace position.
		next := env.peek()
		switch {
		case liveErr == nil:
			detail = fmt.Sprintf("compiled engine raised %q but the interpreter completed", shadowErr)
		case next == nil || next.kind != opError:
			detail = fmt.Sprintf("compiled engine raised %q before consuming the interpreter's trace", shadowErr)
		case next.name != shadowErr.Error():
			detail = fmt.Sprintf("compiled engine raised %q where the interpreter raised %q", shadowErr, next.name)
		}
	default:
		switch {
		case liveErr != nil:
			detail = fmt.Sprintf("compiled engine completed but the interpreter raised %q", liveErr)
		case env.cursor != len(rec.ops):
			next := rec.ops[env.cursor]
			detail = fmt.Sprintf("compiled engine skipped %d interpreter operation(s), first unconsumed: %s", len(rec.ops)-env.cursor, next.kind)
		case !valEq(shadowRet, liveRet):
			detail = fmt.Sprintf("result mismatch: interpreter %v, compiled %v", liveRet, shadowRet)
		}
	}
	if detail != "" {
		ip.es.divergences.Add(1)
		ip.RT.Tracer.Record(obs.EvDivergence, w.Index, ch.ID, 0, 0, int64(env.cursor))
		panic(runtimeErr{Err: &DivergenceError{Chunk: ch.Fn.FName, Detail: detail}})
	}
	if liveErr != nil {
		panic(runtimeErr{Err: liveErr})
	}
	return liveRet
}

// runShadow executes the compiled shadow pass, classifying its outcome:
// a clean return, a divergence, a pure runtime error, or a stop at the
// live pass's recorded error position.
func (ip *Interp) runShadow(cf *compile.Fn, w *prt.Worker, args []val, env *diffEnv) (ret val, serr error, div *divergence, stopped bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch t := r.(type) {
		case shadowStop:
			stopped = true
		case divergence:
			div = &t
		case runtimeErr:
			serr = t.Err
		default:
			panic(r)
		}
	}()
	ret = ip.runCompiled(cf, w, args, env)
	return
}

// diffEnv is the trace-checking exec.Env the shadow pass runs against.
// Outbound operands are compared against the live trace; inbound results
// are replayed from it. It never touches the runtime's memory, queues,
// or journal — the live pass already performed every effect.
type diffEnv struct {
	ip     *Interp
	w      *prt.Worker
	rec    *diffRecorder
	cursor int
}

// peek returns the next unconsumed op, or nil.
func (e *diffEnv) peek() *diffOp {
	if e.cursor >= len(e.rec.ops) {
		return nil
	}
	return &e.rec.ops[e.cursor]
}

// pop consumes the next op, requiring its kind. Hitting opError means
// the shadow reached the live pass's abort position (shadowStop); any
// other kind mismatch, or an exhausted trace, is a divergence.
func (e *diffEnv) pop(kind diffOpKind) *diffOp {
	op := e.peek()
	if op == nil {
		e.diverge("compiled engine performed a %s past the end of the interpreter's trace", kind)
	}
	if op.kind == opError {
		panic(shadowStop{})
	}
	if op.kind != kind {
		e.diverge("compiled engine performed a %s where the interpreter recorded a %s", kind, op.kind)
	}
	e.cursor++
	return op
}

func (e *diffEnv) diverge(format string, args ...any) {
	panic(divergence{fmt.Sprintf(format, args...)})
}

// GlobalAddr mirrors the live resolution (compile-time only; the shadow
// runs a unit compiled against liveEnv, so this exists to satisfy
// exec.Env).
func (e *diffEnv) GlobalAddr(g *ir.Global) exec.Val { return (&liveEnv{e.ip}).GlobalAddr(g) }

// FuncValue mirrors the live resolution (compile-time only).
func (e *diffEnv) FuncValue(fn *ir.Function) exec.Val { return (&liveEnv{e.ip}).FuncValue(fn) }

// ElemStride mirrors the live stride (compile-time only).
func (e *diffEnv) ElemStride(elem ir.Type) int64 { return (&liveEnv{e.ip}).ElemStride(elem) }

// Alloca replays the live allocation's address.
func (e *diffEnv) Alloca(w *prt.Worker, t *ir.Alloca) exec.Val {
	return e.pop(opAlloca).v
}

// Malloc checks the element count and replays the live address.
func (e *diffEnv) Malloc(w *prt.Worker, t *ir.Malloc, count exec.Val) exec.Val {
	op := e.pop(opMalloc)
	if op.a != count.I {
		e.diverge("malloc count mismatch: interpreter %d, compiled %d", op.a, count.I)
	}
	return op.v
}

// Load checks the address and replays the loaded value (re-reading
// memory would race with effects the live pass already performed).
func (e *diffEnv) Load(w *prt.Worker, t *ir.Load, addr uint64) exec.Val {
	op := e.pop(opLoad)
	if op.a != int64(addr) {
		e.diverge("load address mismatch: interpreter %#x, compiled %#x", uint64(op.a), addr)
	}
	return op.v
}

// Store checks the address and the stored value.
func (e *diffEnv) Store(w *prt.Worker, t *ir.Store, addr uint64, v exec.Val) {
	op := e.pop(opStore)
	if op.a != int64(addr) {
		e.diverge("store address mismatch: interpreter %#x, compiled %#x", uint64(op.a), addr)
	}
	if !valEq(op.v, v) {
		e.diverge("store value mismatch at %#x: interpreter %v, compiled %v", addr, op.v, v)
	}
}

// FieldAddr mirrors fieldAddrAt: plain fields compute the offset; a
// colored field of a split structure consumes the slot load the live
// pass recorded and replays the out-of-line pointer.
func (e *diffEnv) FieldAddr(w *prt.Worker, t *ir.FieldAddr, base exec.Val) exec.Val {
	st := t.Struct()
	if ly := e.ip.layouts[st.Name]; ly != nil {
		off := ly.offsets[t.Index]
		if _, colored := ly.split.FieldColors[t.Index]; colored {
			if base.I == 0 {
				exec.Errf("interp: nil dereference: %q (split-field slot load)", t.String())
			}
			slotAddr := uint64(base.I) + uint64(off)
			op := e.pop(opLoad)
			if op.a != int64(slotAddr) {
				e.diverge("split-field slot address mismatch: interpreter %#x, compiled %#x", uint64(op.a), slotAddr)
			}
			return op.v
		}
		return iv(base.I + off)
	}
	return iv(base.I + int64(st.Fields[t.Index].Offset))
}

// Call mirrors dispatchCall against the trace: intrinsics check their
// outbound operands and replay inbound payloads; direct calls recurse
// into the callee's compiled body under the same trace (the live pass
// recorded the callee's operations inline); builtins and indirect
// invocations check arguments and replay the recorded result.
func (e *diffEnv) Call(w *prt.Worker, t *ir.Call, callee exec.Val, args []exec.Val) exec.Val {
	fn, direct := t.Callee.(*ir.Function)
	if !direct {
		idx := callee.I
		if idx <= 0 || int(idx) > len(e.ip.ifaceTable) {
			exec.Errf("interp: indirect call through invalid function pointer %d", idx)
		}
		op := e.pop(opInvoke)
		if op.a != idx {
			e.diverge("indirect callee mismatch: interpreter %d, compiled %d", op.a, idx)
		}
		if !vecEq(op.vec, args) {
			e.diverge("indirect call arguments mismatch for function pointer %d", idx)
		}
		return op.v
	}
	switch fn.FName {
	case partition.IntrSpawn:
		chunkID := int(args[0].I)
		needReply := args[1].I != 0
		ch := e.ip.Prog.ChunkByID[chunkID]
		payload := make([]val, 0, 8)
		fargs := args[2:]
		fi := 0
		for range ch.Fn.Params {
			if fi < len(fargs) {
				payload = append(payload, fargs[fi])
				fi++
			} else {
				payload = append(payload, val{})
			}
		}
		op := e.pop(opSpawn)
		nr := int64(0)
		if needReply {
			nr = 1
		}
		if op.a != int64(chunkID) || op.b != nr {
			e.diverge("spawn mismatch: interpreter chunk %d reply %d, compiled chunk %d reply %d", op.a, op.b, chunkID, nr)
		}
		if !vecEq(op.vec, payload) {
			e.diverge("spawn payload mismatch for chunk %d", chunkID)
		}
		return val{}
	case partition.IntrWait:
		op := e.pop(opWait)
		if op.a != args[0].I {
			e.diverge("wait tag mismatch: interpreter %d, compiled %d", op.a, args[0].I)
		}
		return op.v
	case partition.IntrJoin:
		op := e.pop(opJoin)
		if op.a != args[0].I {
			e.diverge("join tag mismatch: interpreter %d, compiled %d", op.a, args[0].I)
		}
		return op.v
	case partition.IntrSend:
		op := e.pop(opSend)
		if op.a != args[0].I || op.b != args[1].I {
			e.diverge("send target mismatch: interpreter (%d,%d), compiled (%d,%d)", op.a, op.b, args[0].I, args[1].I)
		}
		if !valEq(op.v, args[2]) {
			e.diverge("send value mismatch on tag %d: interpreter %v, compiled %v", op.b, op.v, args[2])
		}
		return val{}
	case partition.IntrSendV:
		op := e.pop(opSendV)
		if op.a != args[0].I || op.b != args[1].I {
			e.diverge("sendv target mismatch: interpreter (%d,%d), compiled (%d,%d)", op.a, op.b, args[0].I, args[1].I)
		}
		if !vecEq(op.vec, args[2:]) {
			e.diverge("sendv vector mismatch on tag %d", op.b)
		}
		return val{}
	case partition.IntrWaitV:
		op := e.pop(opWaitV)
		if op.b != args[0].I {
			e.diverge("waitv tag mismatch: interpreter %d, compiled %d", op.b, args[0].I)
		}
		return op.v
	case partition.IntrElem:
		op := e.pop(opElem)
		if op.a != args[0].I || op.b != args[1].I {
			e.diverge("elem mismatch: interpreter (%d,%d), compiled (%d,%d)", op.a, op.b, args[0].I, args[1].I)
		}
		return op.v
	}
	if !fn.External {
		// Direct call: the live pass interpreted the callee inline under
		// the same recorder, so the shadow recurses into the callee's
		// compiled body over the same trace.
		if cf := e.ip.compiledFn(fn); cf != nil {
			return e.ip.runCompiled(cf, w, args, e)
		}
		return val{}
	}
	op := e.pop(opCall)
	if op.name != fn.FName {
		e.diverge("builtin mismatch: interpreter @%s, compiled @%s", op.name, fn.FName)
	}
	if !vecEq(op.vec, args) {
		e.diverge("builtin @%s arguments mismatch", fn.FName)
	}
	return op.v
}

// SeamlessLoad reads backing memory directly WITHOUT consuming the
// live trace — it exists so a unit compiled with the test-only
// SkipLoadSeam option demonstrably diverges (the live pass recorded a
// load the shadow never consumes).
func (e *diffEnv) SeamlessLoad(w *prt.Worker, t *ir.Load, addr uint64) exec.Val {
	return e.ip.rawLoad(w, addr, t.Type())
}
