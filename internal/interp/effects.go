package interp

import (
	"sync/atomic"

	"privagic/internal/prt"
	"privagic/internal/sgx"
)

// The effect transaction makes chunk re-execution idempotent: while a
// spawned chunk runs under recovery, every visible effect — mode-checked
// stores and console output — is buffered here instead of being applied,
// and only the chunk's successful completion commits the buffer. A
// crashed attempt discards it, so the replay starts from exactly the
// state the original attempt saw: no double-applied writes, no repeated
// output. Loads read through the buffer (a chunk always sees its own
// writes), which together with the runtime's cont replay caches makes a
// chunk a deterministic function of its spawn arguments and barrier
// inputs — the §5 execution model, now stated operationally.
//
// The transaction lives in the worker's Tx slot and is touched only on
// the worker's own goroutine; commit applies the redo log in original
// store order, so overlapping writes resolve exactly as the chunk issued
// them.
type effectTx struct {
	chunkID int
	// overlay holds the buffered bytes word-granular (8-byte entries
	// keyed by addr>>3, with a per-byte valid mask), so a typical scalar
	// load or store costs one map access instead of one per byte; loads
	// patch it over the backing memory.
	overlay map[uint64]ovWord
	// redo is the ordered write log replayed into backing memory at
	// commit; arena backs the logged bytes so buffering a store does not
	// allocate.
	redo  []writeRec
	arena []byte
	// out buffers printf/puts text until commit.
	out []byte
	// stores counts buffered writes (the crash-point hook's cursor).
	stores int
}

// ovWord is one aligned 8-byte overlay entry; mask bit i marks bytes[i]
// as buffered.
type ovWord struct {
	bytes [8]byte
	mask  uint8
}

type writeRec struct {
	addr uint64
	off  int // into arena
	n    int
}

// txOf returns the worker's active effect transaction, or nil.
func txOf(w *prt.Worker) *effectTx {
	tx, _ := w.Tx.(*effectTx)
	return tx
}

// beginTx opens an effect transaction for a spawned chunk when recovery
// is enabled. Returns the previous Tx slot value so nested spawns on the
// same worker restore the outer chunk's transaction.
func (ip *Interp) beginTx(w *prt.Worker, chunkID int) (tx *effectTx, prev any) {
	prev = w.Tx
	if !ip.RT.Recovery.Enabled() {
		w.Tx = nil
		return nil, prev
	}
	tx = &effectTx{chunkID: chunkID}
	w.Tx = tx
	return tx, prev
}

// commitTx applies the buffered effects: redo log in store order, then
// the buffered output.
func (ip *Interp) commitTx(tx *effectTx) {
	if tx == nil {
		return
	}
	for _, rec := range tx.redo {
		rid, off := sgx.DecodePtr(rec.addr)
		if r := ip.RT.Space.Region(rid); r != nil {
			// Commits into unsafe memory go through the observer guard:
			// a mutator holding a pending corruption of these words must
			// resolve it before the committed bytes land, or a later
			// restore would clobber them.
			data := tx.arena[rec.off : rec.off+rec.n]
			if ip.bobs == nil {
				r.Store(off, data)
			} else {
				ip.guardedBackingStore(rec.addr, rec.n, func() { r.Store(off, data) })
			}
		}
	}
	if len(tx.out) > 0 {
		ip.print(string(tx.out))
	}
	ip.effCommits.Add(1)
}

// discardTx drops a crashed attempt's buffered effects (the replay must
// not see them).
func (ip *Interp) discardTx(tx *effectTx) {
	if tx == nil {
		return
	}
	ip.effDiscards.Add(1)
}

// EffectStats reports how many chunk effect transactions committed and
// how many were discarded by a crashed attempt.
func (ip *Interp) EffectStats() (commits, discards int64) {
	return ip.effCommits.Load(), ip.effDiscards.Load()
}

// SetCrashPoint installs the mid-chunk crash hook: it is consulted on
// every buffered store of a spawned chunk (workerIdx, chunk, 1-based
// store number) and a non-nil return value is panicked — the fault
// injector returns values marked with an InjectedFault method so the
// panic re-surfaces as an EnclaveAbort instead of being absorbed as a
// program error. Install before Call; nil removes the hook.
func (ip *Interp) SetCrashPoint(hook func(workerIdx, chunkID, storeN int) any) {
	ip.crashPoint = hook
}

// EnableRecovery turns on bounded restart/replay in the runtime and
// effect buffering in the interpreter (the two halves are only correct
// together: replay without buffering double-applies writes, buffering
// without replay just delays them). Call before the first Call.
func (ip *Interp) EnableRecovery(p prt.RecoveryPolicy) {
	ip.RT.Recovery = p
}

// loadBytes is the central mode-checked load every interpreter read goes
// through: sanitization first (when armed), then the snapshot/observer
// layer for unsafe memory or the plain checked load, then the active
// transaction's overlay patched over it so a chunk observes its own
// buffered writes.
func (ip *Interp) loadBytes(w *prt.Worker, addr uint64, buf []byte) {
	if ip.boundary.SanitizePointers {
		ip.sanitize(w, addr, len(buf), false)
	}
	if ip.boundary.any() {
		if rid, _ := sgx.DecodePtr(addr); rid != sgx.Unsafe {
			ip.bStats.trustedLoads.Add(1)
		} else if !ip.boundary.Snapshots || snapOf(w) == nil {
			ip.bStats.unsafeLoads.Add(1)
		}
	}
	if !ip.snapLoad(w, addr, buf) {
		if err := ip.RT.Space.CheckedLoad(w.Mode, addr, buf); err != nil {
			panic(runtimeErr{Err: err})
		}
	}
	if tx := txOf(w); tx != nil {
		if len(tx.overlay) > 0 {
			tx.patch(addr, buf)
		}
		// Journal the post-overlay bytes: a replayed chunk re-reads them
		// from the journal instead of live memory, which committed nested
		// effects may have moved past the crashed attempt's view.
		w.JournalLoad(buf)
	}
}

// patch applies the overlay's buffered bytes over a load's result, one
// map access per touched 8-byte word.
func (tx *effectTx) patch(addr uint64, buf []byte) {
	for i := 0; i < len(buf); {
		wk := (addr + uint64(i)) >> 3
		w, ok := tx.overlay[wk]
		for ; i < len(buf) && (addr+uint64(i))>>3 == wk; i++ {
			if ok {
				bi := (addr + uint64(i)) & 7
				if w.mask&(1<<bi) != 0 {
					buf[i] = w.bytes[bi]
				}
			}
		}
	}
}

// storeBytes is the central mode-checked store: applied directly with no
// transaction, buffered (after the same access check, so an illegal
// store still faults at the faulting instruction) when one is active.
func (ip *Interp) storeBytes(w *prt.Worker, addr uint64, data []byte) {
	if ip.boundary.SanitizePointers {
		ip.sanitize(w, addr, len(data), true)
	}
	tx := txOf(w)
	if tx == nil {
		if ip.bobs == nil {
			// Fast path: no observer installed, store directly (the
			// closure below would otherwise escape on every store).
			if err := ip.RT.Space.CheckedStore(w.Mode, addr, data); err != nil {
				panic(runtimeErr{Err: err})
			}
		} else {
			ip.guardedBackingStore(addr, len(data), func() {
				if err := ip.RT.Space.CheckedStore(w.Mode, addr, data); err != nil {
					panic(runtimeErr{Err: err})
				}
			})
		}
		// Keep the snapshot coherent: a copied-in word the chunk just
		// overwrote must serve the new bytes.
		if sn := snapOf(w); sn != nil {
			if rid, off := sgx.DecodePtr(addr); rid == sgx.Unsafe {
				snapStoreSync(sn, off, data)
			}
		}
		return
	}
	rid, _ := sgx.DecodePtr(addr)
	if !sgx.CanAccess(w.Mode, rid) {
		panic(runtimeErr{Err: &sgx.AccessError{Mode: w.Mode, Target: rid, Addr: addr}})
	}
	if ip.RT.Space.Region(rid) == nil {
		errf("interp: store to unmapped region %d", rid)
	}
	tx.stores++
	if hook := ip.crashPoint; hook != nil {
		if f := hook(w.Index, tx.chunkID, tx.stores); f != nil {
			panic(f)
		}
	}
	if tx.overlay == nil {
		tx.overlay = make(map[uint64]ovWord, 8)
	}
	off := len(tx.arena)
	tx.arena = append(tx.arena, data...)
	tx.redo = append(tx.redo, writeRec{addr: addr, off: off, n: len(data)})
	for i := 0; i < len(data); {
		wk := (addr + uint64(i)) >> 3
		w := tx.overlay[wk]
		for ; i < len(data) && (addr+uint64(i))>>3 == wk; i++ {
			bi := (addr + uint64(i)) & 7
			w.bytes[bi] = data[i]
			w.mask |= 1 << bi
		}
		tx.overlay[wk] = w
	}
}

// printTx routes program output through the active transaction.
func (ip *Interp) printTx(w *prt.Worker, s string) {
	if tx := txOf(w); tx != nil {
		tx.out = append(tx.out, s...)
		return
	}
	ip.print(s)
}

// effect counters (atomic: committed on worker goroutines).
type effCounters struct {
	effCommits  atomic.Int64
	effDiscards atomic.Int64
}
