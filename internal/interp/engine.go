package interp

// Engine selection and the live exec.Env implementation.
//
// The interpreter owns every execution seam (memory checks, boundary
// snapshots, effect transactions, the replay journal, call dispatch);
// the compiled tier reaches them through exec.Env. liveEnv is that
// adapter: each method delegates to the same helper the interpreter's
// own instruction loop uses, so a compiled chunk crosses exactly the
// defenses an interpreted chunk crosses — the seam-preservation claim of
// DESIGN.md §18 is this file being one-line delegations.

import (
	"fmt"
	"math"
	"time"

	"privagic/internal/exec"
	"privagic/internal/ir"
	"privagic/internal/passes/compile"
	"privagic/internal/prt"
)

// SetEngine selects the chunk execution tier. Call it before the first
// Call (workers copy the engine at creation). The compiled and
// differential tiers lower every chunk body through
// internal/passes/compile on first selection; the returned error reports
// a compile-time failure (which leaves the interpreter engine active).
func (ip *Interp) SetEngine(e prt.Engine) (err error) {
	if e != prt.EngineInterp && ip.unit == nil {
		defer func() {
			if r := recover(); r != nil {
				if re, ok := r.(runtimeErr); ok {
					err = fmt.Errorf("interp: compiling unit: %w", re.Err)
					return
				}
				panic(r)
			}
		}()
		start := time.Now()
		unit := compile.New(ip.Prog.CompileSet(), &liveEnv{ip}, compile.Options{})
		ip.es.compileUS.Store(time.Since(start).Microseconds())
		ip.unit = unit
	}
	ip.RT.Engine = e
	return nil
}

// Engine reports the runtime's selected execution tier.
func (ip *Interp) Engine() prt.Engine { return ip.RT.Engine }

// OverrideUnit replaces the compiled unit — a test lever (the negative
// differential-oracle test compiles a deliberately seam-skipping unit).
func (ip *Interp) OverrideUnit(opts compile.Options) {
	ip.unit = compile.New(ip.Prog.CompileSet(), &liveEnv{ip}, opts)
}

// ExecStats reports the engine-selection counters backing the exec.*
// metric gauges.
func (ip *Interp) ExecStats() ExecStats {
	return ExecStats{
		CompileTime:        time.Duration(ip.es.compileUS.Load()) * time.Microsecond,
		CompiledDispatches: ip.es.compiledRuns.Load(),
		OracleDivergences:  ip.es.divergences.Load(),
	}
}

// ExecStats is the engine-selection counter snapshot.
type ExecStats struct {
	// CompileTime is the wall time SetEngine spent lowering the unit.
	CompileTime time.Duration
	// CompiledDispatches counts chunk/helper bodies run on the compiled
	// tier.
	CompiledDispatches int64
	// OracleDivergences counts differential-oracle failures (zero on a
	// healthy build; any nonzero value is a compiler bug).
	OracleDivergences int64
}

// compiledFn resolves a function's compiled form (nil when the unit does
// not exist or skipped the body).
func (ip *Interp) compiledFn(fn *ir.Function) *compile.Fn {
	if ip.unit == nil {
		return nil
	}
	return ip.unit.Fn(fn)
}

// runCompiled executes a compiled body: a dense register frame replaces
// the interpreter's value map, and the step array drives itself to a
// return. Runtime errors surface as the same runtimeErr panics the
// interpreter raises.
func (ip *Interp) runCompiled(cf *compile.Fn, w *prt.Worker, args []val, env exec.Env) val {
	fr := &exec.Frame{Regs: make([]exec.Val, cf.NumSlots), W: w, Env: env}
	n := cf.NumParams
	if n > len(args) {
		n = len(args)
	}
	copy(fr.Regs[:n], args[:n])
	return exec.Run(cf.Code, fr)
}

// liveEnv adapts the interpreter's seams to exec.Env for the compiled
// tier. Every method is a delegation to the helper the interpreter's own
// loop uses.
type liveEnv struct{ ip *Interp }

// GlobalAddr resolves a global's encoded address (compile time).
func (e *liveEnv) GlobalAddr(g *ir.Global) exec.Val {
	addr, ok := e.ip.globals[g]
	if !ok {
		errf("interp: global %s not allocated", g.Name())
	}
	return iv(int64(addr))
}

// FuncValue resolves a function-pointer value (compile time).
func (e *liveEnv) FuncValue(fn *ir.Function) exec.Val {
	return iv(int64(e.ip.internFunc(fn.FName)))
}

// Alloca services a stack allocation.
func (e *liveEnv) Alloca(w *prt.Worker, t *ir.Alloca) exec.Val {
	return e.ip.doAlloca(w, t)
}

// Malloc services a heap allocation.
func (e *liveEnv) Malloc(w *prt.Worker, t *ir.Malloc, count exec.Val) exec.Val {
	return e.ip.doMalloc(w, t, count.I)
}

// Load performs the mode-checked load.
func (e *liveEnv) Load(w *prt.Worker, t *ir.Load, addr uint64) exec.Val {
	return e.ip.memLoad(w, addr, t.Type())
}

// Store performs the mode-checked store.
func (e *liveEnv) Store(w *prt.Worker, t *ir.Store, addr uint64, v exec.Val) {
	e.ip.memStore(w, addr, v, t.Val.Type())
}

// FieldAddr computes a field address with the split-structure
// indirection.
func (e *liveEnv) FieldAddr(w *prt.Worker, t *ir.FieldAddr, base exec.Val) exec.Val {
	return e.ip.fieldAddrAt(w, t, uint64(base.I))
}

// ElemStride reports an element type's in-memory stride (compile time).
func (e *liveEnv) ElemStride(elem ir.Type) int64 {
	size := elem.Size()
	if ly := e.ip.layoutOf(elem); ly != nil {
		size = ly.size
	}
	return size
}

// Call dispatches a call instruction.
func (e *liveEnv) Call(w *prt.Worker, t *ir.Call, callee exec.Val, args []exec.Val) exec.Val {
	return e.ip.dispatchCall(w, t, callee, args)
}

// SeamlessLoad reads backing memory with the mode check only, bypassing
// the snapshot/transaction/journal seams — reachable only from a unit
// compiled with the test-only SkipLoadSeam option.
func (e *liveEnv) SeamlessLoad(w *prt.Worker, t *ir.Load, addr uint64) exec.Val {
	return e.ip.rawLoad(w, addr, t.Type())
}

// rawLoad is the seamless backing read behind SeamlessLoad.
func (ip *Interp) rawLoad(w *prt.Worker, addr uint64, typ ir.Type) val {
	size := typ.Size()
	if size > 8 {
		errf("interp: aggregate load of %s", typ)
	}
	var buf [8]byte
	if err := ip.RT.Space.CheckedLoad(w.Mode, addr, buf[:size]); err != nil {
		panic(runtimeErr{Err: err})
	}
	if _, ok := typ.(ir.FloatType); ok {
		return fv(math.Float64frombits(uint64(getInt(buf[:8]))))
	}
	return iv(getInt(buf[:size]))
}
