package interp

import (
	"errors"
	"strings"
	"testing"

	"privagic/internal/passes/compile"
	"privagic/internal/prt"
	"privagic/internal/typing"
)

// enginePrograms are end-to-end programs every engine must agree on:
// multi-color spawns and conts, loops with φ-nodes, arrays, recursion
// through direct calls, and builtin output.
var enginePrograms = []struct {
	name    string
	mode    typing.Mode
	src     string
	entry   string
	want    int64
	wantOut string
}{
	{
		name: "figure6",
		mode: typing.Relaxed,
		src: `
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

void g(int n) {
	blue = n;
	red = n;
	printf("Hello\n");
}
int f(int y) {
	g(21);
	return 42;
}
entry int main() {
	unsafe = 1;
	int x = f(blue);
	return x;
}
`,
		entry:   "main",
		want:    42,
		wantOut: "Hello\n",
	},
	{
		name: "loops_and_arrays",
		mode: typing.Relaxed,
		src: `
long acc[16];
entry long main() {
	long s = 0;
	for (long i = 0; i < 16; i = i + 1) {
		acc[i] = i * i;
	}
	for (long i = 0; i < 16; i = i + 1) {
		s = s + acc[i];
	}
	return s % 1000 + (s << 1) - (s >> 2) + (s & 255) + (s | 3) + (s ^ 9);
}
`,
		entry: "main",
		want: func() int64 {
			var s int64
			for i := int64(0); i < 16; i++ {
				s += i * i
			}
			return s%1000 + (s << 1) - (s >> 2) + (s & 255) + (s | 3) + (s ^ 9)
		}(),
	},
	{
		name: "recursion",
		mode: typing.Relaxed,
		src: `
long fib(long n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
entry long main() {
	return fib(15);
}
`,
		entry: "main",
		want:  610,
	},
	{
		name: "colored_counter",
		mode: typing.Relaxed,
		src: `
long color(sec) counter = 0;
long bump(long d) {
	counter = counter + d;
	return counter;
}
entry long main() {
	long t = 0;
	for (long i = 1; i <= 10; i = i + 1) {
		t = bump(i);
	}
	return t;
}
`,
		entry: "main",
		want:  55,
	},
}

// TestEnginesAgree runs every engine program on the interpreter, the
// compiled tier, and the differential oracle, requiring identical
// results and output — and that the compiled tier actually dispatched.
func TestEnginesAgree(t *testing.T) {
	engines := []prt.Engine{prt.EngineInterp, prt.EngineCompiled, prt.EngineDifferential}
	for _, p := range enginePrograms {
		for _, eng := range engines {
			t.Run(p.name+"/"+eng.String(), func(t *testing.T) {
				ip := build(t, p.mode, p.src, p.entry)
				if err := ip.SetEngine(eng); err != nil {
					t.Fatalf("SetEngine(%v): %v", eng, err)
				}
				ret, err := ip.Call(p.entry)
				if err != nil {
					t.Fatalf("Call: %v", err)
				}
				if ret != p.want {
					t.Errorf("%s() = %d, want %d", p.entry, ret, p.want)
				}
				if got := ip.Output(); got != p.wantOut {
					t.Errorf("output = %q, want %q", got, p.wantOut)
				}
				st := ip.ExecStats()
				if eng == prt.EngineCompiled && st.CompiledDispatches == 0 {
					t.Errorf("compiled engine ran but CompiledDispatches = 0")
				}
				if st.OracleDivergences != 0 {
					t.Errorf("OracleDivergences = %d, want 0", st.OracleDivergences)
				}
			})
		}
	}
}

// TestEnginesAgreeOnErrors requires the engines to agree on typed
// runtime errors, text and all — the property the oracle's error
// comparison rests on.
func TestEnginesAgreeOnErrors(t *testing.T) {
	src := `
entry long main(long d) {
	return 10 / d;
}
`
	for _, eng := range []prt.Engine{prt.EngineInterp, prt.EngineCompiled, prt.EngineDifferential} {
		t.Run(eng.String(), func(t *testing.T) {
			ip := build(t, typing.Relaxed, src, "main")
			if err := ip.SetEngine(eng); err != nil {
				t.Fatalf("SetEngine: %v", err)
			}
			if ret, err := ip.Call("main", 5); err != nil || ret != 2 {
				t.Fatalf("main(5) = %d, %v; want 2, nil", ret, err)
			}
			_, err := ip.Call("main", 0)
			if err == nil || !strings.Contains(err.Error(), "integer division by zero") {
				t.Fatalf("main(0) error = %v, want division by zero", err)
			}
			if errors.Is(err, ErrDivergence) {
				t.Fatalf("division by zero misreported as a divergence: %v", err)
			}
		})
	}
}

// TestDifferentialCatchesSkippedSeam is the negative oracle test: a unit
// compiled with the test-only SkipLoadSeam option reads backing memory
// directly, bypassing the boundary-snapshot/transaction/journal seams.
// The live pass records the seam-crossing load; the shadow never
// consumes it; the oracle must report a divergence.
func TestDifferentialCatchesSkippedSeam(t *testing.T) {
	ip := build(t, typing.Relaxed, `
long stash = 7;
entry long main() {
	stash = stash + 35;
	return stash;
}
`, "main")
	if err := ip.SetEngine(prt.EngineDifferential); err != nil {
		t.Fatalf("SetEngine: %v", err)
	}
	ip.OverrideUnit(compile.Options{SkipLoadSeam: true})
	_, err := ip.Call("main")
	if err == nil {
		t.Fatal("Call succeeded; want a divergence from the skipped load seam")
	}
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("Call error = %v, want ErrDivergence", err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("Call error = %v, want a *DivergenceError", err)
	}
	if ip.ExecStats().OracleDivergences == 0 {
		t.Error("OracleDivergences = 0 after a reported divergence")
	}
}
