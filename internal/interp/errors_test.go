package interp

import (
	"errors"
	"testing"
	"time"

	"privagic/internal/prt"
	"privagic/internal/typing"
)

// dropAll is an interceptor that loses every message, stalling the
// protocol into a supervised timeout.
type dropAll struct{}

func (dropAll) Deliver(to *prt.Worker, msg prt.Message) {}

// TestCallJoinsRootCauseWithTimeoutDiagnostics pins the error-surfacing
// contract of Call: when a worker's recorded root cause (an enclave
// abort) starves the main goroutine into a wait timeout, the returned
// error must expose BOTH — the abort as the leading cause, and the
// timeout with its pending-tags/queue-depth diagnostics still reachable
// through errors.As. Replacing the timeout with the cause used to drop
// those diagnostics.
func TestCallJoinsRootCauseWithTimeoutDiagnostics(t *testing.T) {
	ip := build(t, typing.Relaxed, `
int color(blue) blue = 1;
int f(int y) { return y + blue; }
entry int main() { return f(2); }
`, "main")
	ip.RT.Supervise = prt.Supervision{WaitTimeout: 25 * time.Millisecond}
	cause := &prt.EnclaveAbort{Worker: 1, ChunkID: 3, Cause: errors.New("boom")}
	ip.recordErr(cause)
	ip.RT.SetInterceptor(dropAll{}) // every spawn is lost: main's join must time out
	_, err := ip.Call("main")
	if err == nil {
		t.Fatal("Call succeeded with all messages dropped")
	}
	if !errors.Is(err, prt.ErrEnclaveAbort) {
		t.Fatalf("err = %v, does not match ErrEnclaveAbort", err)
	}
	if !errors.Is(err, prt.ErrWaitTimeout) {
		t.Fatalf("err = %v, does not match ErrWaitTimeout", err)
	}
	var abort *prt.EnclaveAbort
	if !errors.As(err, &abort) || abort.ChunkID != 3 {
		t.Fatalf("err = %v, abort cause not reachable via errors.As", err)
	}
	var te *prt.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, timeout not reachable via errors.As", err)
	}
	if len(te.QueueDepths) == 0 {
		t.Fatal("joined timeout lost its queue-depth diagnostics")
	}
}

// TestCallSurfacesTimeoutAloneWithoutCause is the counterpart: with no
// recorded root cause, the timeout comes back unjoined and keeps its
// diagnostics.
func TestCallSurfacesTimeoutAloneWithoutCause(t *testing.T) {
	ip := build(t, typing.Relaxed, `
int color(blue) blue = 1;
int f(int y) { return y + blue; }
entry int main() { return f(2); }
`, "main")
	ip.RT.Supervise = prt.Supervision{WaitTimeout: 25 * time.Millisecond}
	ip.RT.SetInterceptor(dropAll{})
	_, err := ip.Call("main")
	if !errors.Is(err, prt.ErrWaitTimeout) {
		t.Fatalf("err = %v, want a wait timeout", err)
	}
	if errors.Is(err, prt.ErrEnclaveAbort) {
		t.Fatalf("err = %v, matches ErrEnclaveAbort with no abort recorded", err)
	}
}
