package interp

import (
	"fmt"
	"math"

	"privagic/internal/exec"

	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/prt"
	"privagic/internal/sgx"
)

// execChunk is the prt.ChunkExec callback: it runs a chunk body on the
// worker's goroutine, inside the worker's enclave. Runtime errors in a
// spawned chunk are recorded and surfaced by the next Call; the worker
// itself survives (a crashed enclave must not take the process down).
// Injected faults (values with an InjectedFault method) re-panic instead:
// they must reach the runtime's recover to become an EnclaveAbort the
// recovery layer can replay, not a recorded program error.
//
// Under recovery the chunk runs inside an effect transaction: stores and
// output buffer until the chunk completes, so a crashed attempt leaves no
// trace and its replay is idempotent.
func (ip *Interp) execChunk(w *prt.Worker, chunkID int, args []any) (result any) {
	tx, prevTx := ip.beginTx(w, chunkID)
	// The chunk's first barrier interval starts here: open the copy-in
	// snapshot (when the boundary defense or an observer is engaged).
	prevSnap := ip.beginSnap(w)
	defer func() {
		w.Tx = prevTx
		w.Snap = prevSnap
		r := recover()
		if r == nil {
			ip.commitTx(tx)
			return
		}
		if _, injected := r.(interface{ InjectedFault() }); injected {
			ip.discardTx(tx)
			panic(r)
		}
		re, ok := r.(runtimeErr)
		if !ok {
			re = runtimeErr{Err: fmt.Errorf("interp: chunk %d panicked: %v", chunkID, r)}
		}
		ip.recordErr(re.Err)
		// A recorded program error completes the chunk (recovery does not
		// replay program bugs), so its effects commit like any other
		// completion — matching the recovery-off behavior.
		ip.commitTx(tx)
		result = val{}
	}()
	ch := ip.Prog.ChunkByID[chunkID]
	vargs := make([]val, len(args))
	for i, a := range args {
		if v, ok := a.(val); ok {
			vargs[i] = v
		}
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(runtimeErr); ok {
				panic(runtimeErr{Err: fmt.Errorf("in chunk %s: %w", ch.Fn.FName, re.Err)})
			}
			panic(r)
		}
	}()
	return ip.runChunkBody(w, ch, vargs)
}

// runChunkBody runs a chunk body on the worker's selected engine: the
// interpreter (the reference), the compiled tier, or both under the
// differential oracle. Chunks the compiler skipped (empty bodies) fall
// back to the interpreter on every engine.
func (ip *Interp) runChunkBody(w *prt.Worker, ch *partition.Chunk, args []val) val {
	switch w.Engine {
	case prt.EngineCompiled:
		if cf := ip.compiledFn(ch.Fn); cf != nil {
			ip.es.compiledRuns.Add(1)
			return ip.runCompiled(cf, w, args, &liveEnv{ip})
		}
		return ip.runFn(w, ch.Fn, args)
	case prt.EngineDifferential:
		return ip.runDifferential(w, ch, args)
	default:
		return ip.runFn(w, ch.Fn, args)
	}
}

// runOn runs a directly-called function body on the worker's engine (the
// differential tier interprets here: its live pass is the interpreter,
// and the recorder captures the callee's operations inline).
func (ip *Interp) runOn(w *prt.Worker, fn *ir.Function, args []val) val {
	if w.Engine == prt.EngineCompiled {
		if cf := ip.compiledFn(fn); cf != nil {
			ip.es.compiledRuns.Add(1)
			return ip.runCompiled(cf, w, args, &liveEnv{ip})
		}
	}
	return ip.runFn(w, fn, args)
}

// runFn interprets one function (a chunk or a helper) with the worker's
// mode governing every memory access.
func (ip *Interp) runFn(w *prt.Worker, fn *ir.Function, args []val) val {
	frame := make(map[ir.Value]val, 16)
	for i, p := range fn.Params {
		if i < len(args) {
			frame[p] = args[i]
		}
	}
	if len(fn.Blocks) == 0 {
		return val{}
	}
	blk := fn.Blocks[0]
	var prev *ir.Block
	steps := 0
	for {
		steps++
		if steps > 100_000_000 {
			errf("interp: instruction budget exceeded in @%s (livelock?)", fn.FName)
		}
		// Phase 1: φ-nodes read their inputs simultaneously.
		var phiVals []val
		var phis []*ir.Phi
		for _, in := range blk.Instrs {
			phi, ok := in.(*ir.Phi)
			if !ok {
				break
			}
			phis = append(phis, phi)
			got := false
			for _, e := range phi.Edges {
				if e.Pred == prev {
					phiVals = append(phiVals, ip.eval(frame, e.Val))
					got = true
					break
				}
			}
			if !got {
				phiVals = append(phiVals, val{})
			}
		}
		for i, phi := range phis {
			frame[phi] = phiVals[i]
		}
		// Phase 2: straight-line execution.
		for _, in := range blk.Instrs[len(phis):] {
			switch t := in.(type) {
			case *ir.Ret:
				if t.Val == nil {
					return val{}
				}
				return ip.eval(frame, t.Val)
			case *ir.Br:
				prev, blk = blk, t.Target
			case *ir.CondBr:
				c := ip.eval(frame, t.Cond)
				prev = blk
				if c.I != 0 {
					blk = t.Then
				} else {
					blk = t.Else
				}
			default:
				ip.step(w, fn, frame, in)
			}
		}
		if term := blk.Terminator(); term == nil {
			errf("interp: block %%%s of @%s falls through", blk.BName, fn.FName)
		}
	}
}

// eval resolves an operand to a value.
func (ip *Interp) eval(frame map[ir.Value]val, v ir.Value) val {
	switch t := v.(type) {
	case *ir.ConstInt:
		return iv(t.V)
	case *ir.ConstFloat:
		return fv(t.V)
	case *ir.Null:
		return iv(0)
	case *ir.Global:
		addr, ok := ip.globals[t]
		if !ok {
			errf("interp: global %s not allocated", t.Name())
		}
		return iv(int64(addr))
	case *ir.Function:
		return iv(int64(ip.internFunc(t.FName)))
	}
	if x, ok := frame[v]; ok {
		return x
	}
	return val{}
}

// step executes one non-terminator instruction.
func (ip *Interp) step(w *prt.Worker, fn *ir.Function, frame map[ir.Value]val, in ir.Instr) {
	switch t := in.(type) {
	case *ir.Alloca:
		frame[t] = ip.doAlloca(w, t)

	case *ir.Malloc:
		count := int64(1)
		if t.Count != nil {
			count = ip.eval(frame, t.Count).I
		}
		frame[t] = ip.doMalloc(w, t, count)

	case *ir.Free:
		// The bump allocator does not reclaim; free is a no-op.

	case *ir.Load:
		addr := uint64(ip.eval(frame, t.Ptr).I)
		if addr == 0 {
			errf("interp: nil dereference: %q in @%s", t.String(), fn.FName)
		}
		frame[t] = ip.memLoad(w, addr, t.Type())

	case *ir.Store:
		addr := uint64(ip.eval(frame, t.Ptr).I)
		if addr == 0 {
			errf("interp: nil dereference: %q in @%s", t.String(), fn.FName)
		}
		ip.memStore(w, addr, ip.eval(frame, t.Val), t.Val.Type())

	case *ir.BinOp:
		frame[t] = ip.binop(t, ip.eval(frame, t.X), ip.eval(frame, t.Y))

	case *ir.Cmp:
		frame[t] = ip.cmp(t, ip.eval(frame, t.X), ip.eval(frame, t.Y))

	case *ir.Cast:
		frame[t] = castVal(ip.eval(frame, t.Val), t.Type())

	case *ir.FieldAddr:
		frame[t] = ip.fieldAddrAt(w, t, uint64(ip.eval(frame, t.X).I))

	case *ir.IndexAddr:
		base := ip.eval(frame, t.X).I
		idx := ip.eval(frame, t.Index).I
		elem := t.Type().(ir.PointerType).Elem
		size := elem.Size()
		if ly := ip.layoutOf(elem); ly != nil {
			size = ly.size
		}
		frame[t] = iv(base + idx*size)

	case *ir.Phi:
		// Handled at block entry; reaching one here means a malformed
		// block.
		errf("interp: φ in straight-line position in @%s", fn.FName)

	case *ir.Call:
		frame[t] = ip.call(w, frame, t)

	default:
		errf("interp: unknown instruction %T", in)
	}
}

// resolveAllocColor maps an allocation annotation to the region color.
func resolveAllocColor(c ir.Color) ir.Color {
	if c.IsEnclave() {
		return c
	}
	return ir.U
}

// doAlloca services a stack allocation in the worker's region, recording
// the resulting address when the differential oracle is live.
func (ip *Interp) doAlloca(w *prt.Worker, t *ir.Alloca) val {
	region := ip.regionOfColor(resolveAllocColor(t.Color))
	size := t.Elem.Size()
	if ly := ip.layoutOf(t.Elem); ly != nil {
		size = ly.size
	}
	off := ip.RT.Space.Region(region).Alloc(size)
	v := iv(int64(sgx.EncodePtr(region, off)))
	if rec := recOf(w); rec != nil {
		rec.add(diffOp{kind: opAlloca, v: v})
	}
	return v
}

// doMalloc allocates heap memory (count elements). Multi-color structures
// get the §7.2 treatment: the body goes to unsafe memory and every colored
// field is allocated out-of-line in its enclave, with the pointer written
// into the body's slot. Each out-of-line allocation is a runtime service
// call into the enclave (one message each way).
func (ip *Interp) doMalloc(w *prt.Worker, t *ir.Malloc, count int64) val {
	if count < 1 {
		count = 1
	}
	v := ip.mallocRaw(w, t, count)
	if rec := recOf(w); rec != nil {
		rec.add(diffOp{kind: opMalloc, a: count, v: v})
	}
	return v
}

func (ip *Interp) mallocRaw(w *prt.Worker, t *ir.Malloc, count int64) val {
	// The whole allocation runs as one journaled service call: the bump
	// allocator is runtime state outside the effect transaction, so a
	// replayed chunk must reuse the crashed attempt's addresses (peers may
	// already hold committed writes behind them) instead of allocating
	// fresh, orphaned memory.
	if ly := ip.layoutOf(t.Elem); ly != nil {
		return iv(int64(w.JournalAlloc(func() uint64 {
			region := ip.regionOfColor(resolveAllocColor(t.Color))
			r := ip.RT.Space.Region(region)
			base := r.Alloc(ly.size * count)
			for n := int64(0); n < count; n++ {
				for i, fc := range sortedFieldColors(ly.split) {
					_ = i
					fieldIdx, color := fc.idx, fc.color
					fr := ip.RT.Space.Region(ip.regionOfColor(color))
					fldOff := fr.Alloc(ly.split.Struct.Fields[fieldIdx].Type.Size())
					ptr := sgx.EncodePtr(ip.regionOfColor(color), fldOff)
					var buf [8]byte
					putInt(buf[:], int64(ptr))
					r.Store(base+uint64(n*ly.size+ly.offsets[fieldIdx]), buf[:])
					// Allocation request + reply to the field's enclave.
					ip.RT.Meter.ChargeMessage(&ip.RT.Machine.Cost)
					ip.RT.Meter.ChargeMessage(&ip.RT.Machine.Cost)
				}
			}
			return sgx.EncodePtr(region, base)
		})))
	}
	return iv(int64(w.JournalAlloc(func() uint64 {
		region := ip.regionOfColor(resolveAllocColor(t.Color))
		size := t.Elem.Size() * count
		off := ip.RT.Space.Region(region).Alloc(size)
		return sgx.EncodePtr(region, off)
	})))
}

type fieldColor struct {
	idx   int
	color ir.Color
}

func sortedFieldColors(sp *partition.SplitStruct) []fieldColor {
	out := make([]fieldColor, 0, len(sp.FieldColors))
	for i := range sp.Struct.Fields {
		if c, ok := sp.FieldColors[i]; ok {
			out = append(out, fieldColor{i, c})
		}
	}
	return out
}

// fieldAddrAt computes a field address, following the §7.2 indirection
// for colored fields of split structures (s->f becomes *(s->ind) style).
// Both engines call it with the evaluated base pointer.
func (ip *Interp) fieldAddrAt(w *prt.Worker, t *ir.FieldAddr, base uint64) val {
	st := t.Struct()
	if ly := ip.layouts[st.Name]; ly != nil {
		off := ly.offsets[t.Index]
		if _, colored := ly.split.FieldColors[t.Index]; colored {
			if base == 0 {
				errf("interp: nil dereference: %q (split-field slot load)", t.String())
			}
			// Load the out-of-line pointer from the slot.
			slot := ip.memLoad(w, base+uint64(off), ir.PtrTo(ir.I8))
			return slot
		}
		return iv(int64(base + uint64(off)))
	}
	return iv(int64(base + uint64(st.Fields[t.Index].Offset)))
}

// memLoad performs a mode-checked load.
func (ip *Interp) memLoad(w *prt.Worker, addr uint64, typ ir.Type) val {
	size := typ.Size()
	if size > 8 {
		errf("interp: aggregate load of %s", typ)
	}
	if addr == 0 {
		errf("interp: nil dereference (load)")
	}
	var buf [8]byte
	ip.loadBytes(w, addr, buf[:size])
	if ip.OnAccess != nil {
		ip.OnAccess(addr, size, false, w.Mode)
	}
	var v val
	if _, ok := typ.(ir.FloatType); ok {
		v = fv(math.Float64frombits(uint64(getInt(buf[:8]))))
	} else {
		v = iv(getInt(buf[:size]))
	}
	if rec := recOf(w); rec != nil {
		rec.add(diffOp{kind: opLoad, a: int64(addr), v: v})
	}
	return v
}

// memStore performs a mode-checked store.
func (ip *Interp) memStore(w *prt.Worker, addr uint64, v val, typ ir.Type) {
	size := typ.Size()
	if size > 8 {
		errf("interp: aggregate store of %s", typ)
	}
	if addr == 0 {
		errf("interp: nil dereference (store)")
	}
	var buf [8]byte
	if _, ok := typ.(ir.FloatType); ok {
		putInt(buf[:8], int64(math.Float64bits(v.F)))
		size = 8
	} else {
		putInt(buf[:size], v.I)
	}
	ip.storeBytes(w, addr, buf[:size])
	if ip.OnAccess != nil {
		ip.OnAccess(addr, size, true, w.Mode)
	}
	if rec := recOf(w); rec != nil {
		rec.add(diffOp{kind: opStore, a: int64(addr), v: v})
	}
}

// binop, cmp, and castVal delegate to the shared exec semantics — one
// implementation serves both engines, so an operator bug cannot hide as
// a cross-engine divergence.
func (ip *Interp) binop(t *ir.BinOp, x, y val) val { return exec.BinOp(t.Op, x, y) }

func (ip *Interp) cmp(t *ir.Cmp, x, y val) val { return exec.Cmp(t.Pred, x, y) }

func toF(v val) float64 { return exec.ToF(v) }

// castVal converts a value to a target type.
func castVal(v val, to ir.Type) val { return exec.Cast(v, to) }
