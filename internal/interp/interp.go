// Package interp executes partitioned Privagic programs on the simulated
// SGX machine: chunk bodies run on the prt workers of their enclave, every
// memory access is checked against the SGX mode rules (§2.1), multi-color
// structures use the §7.2 indirection layout, and the partitioner's
// runtime intrinsics map onto spawn/cont/wait over the lock-free queues.
//
// The interpreter is the correctness substrate of the reproduction: it is
// where "the generated code really cannot touch foreign enclave memory"
// becomes an executable property rather than a compiler promise.
package interp

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"privagic/internal/exec"
	"privagic/internal/ir"
	"privagic/internal/partition"
	"privagic/internal/passes/compile"
	"privagic/internal/prt"
	"privagic/internal/sgx"
)

// val is one machine value — the exec.Val shared with the compiled
// tier, so payloads, metrics, and the differential oracle see the same
// representation regardless of which engine produced a value.
type val = exec.Val

func iv(x int64) val   { return val{I: x} }
func fv(x float64) val { return val{F: x, Fl: true} }

// splitLayout is the rewritten memory layout of a multi-color structure
// (§7.2): colored fields become 8-byte slots holding pointers to
// out-of-line allocations in their enclaves.
type splitLayout struct {
	split   *partition.SplitStruct
	offsets []int64
	size    int64
}

// Interp executes a partitioned program.
type Interp struct {
	Prog *partition.Program
	RT   *prt.Runtime

	globals map[*ir.Global]uint64
	layouts map[string]*splitLayout
	// ifaceTable gives function-pointer values to address-taken
	// functions; an indirect call invokes the interface version (§6.3).
	ifaceTable []*partition.PartFunc
	ifaceIndex map[string]int

	// Output collects printf/puts text (the simulated console).
	mu       sync.Mutex
	output   []byte
	asyncErr error

	mainOnce sync.Once
	main     *prt.Thread
	threads  sync.WaitGroup
	// spawned background application threads (thread_create builtin).
	bgMu sync.Mutex
	bg   []*prt.Thread

	// OnAccess, when set, observes every checked memory access (the
	// cache simulator attaches here).
	OnAccess func(addr uint64, size int64, write bool, mode sgx.Mode)

	// crashPoint is the mid-chunk fault-injection hook (SetCrashPoint);
	// effCounters tracks effect-transaction commits/discards.
	crashPoint func(workerIdx, chunkID, storeN int) any
	effCounters

	// boundary configures the runtime Iago defense (boundary.go); bobs is
	// the U-memory access observer the mutator adversary installs; bStats
	// classifies boundary crossings while the defense is armed.
	boundary BoundaryConfig
	bobs     BoundaryObserver
	bStats   boundaryCounters

	// chunkOf resolves a chunk body back to its chunk, so a direct call
	// into a differently-colored body (the crossing optimizer's fused
	// form) can be counted and traced.
	chunkOf map[*ir.Function]*partition.Chunk
	// cross counts the crossing optimizer's runtime effects (cross.*
	// metrics); vecMu/vecStash hold the last vector received per
	// (worker, tag) for the __pv_elem intrinsic.
	cross    crossCounters
	vecMu    sync.Mutex
	vecStash map[[2]int][]any

	// unit is the closure-compiled form of the program's chunk bodies,
	// built by SetEngine for the compiled and differential tiers (nil
	// while the engine is interp); es backs the exec.* metric gauges.
	unit *compile.Unit
	es   execCounters
}

// execCounters back the exec.* metric gauges (engine selection).
type execCounters struct {
	compileUS    atomic.Int64
	compiledRuns atomic.Int64
	divergences  atomic.Int64
}

// crossCounters back the cross.* metric gauges.
type crossCounters struct {
	vecSends   atomic.Int64
	vecWaits   atomic.Int64
	elemReads  atomic.Int64
	fusedCalls atomic.Int64
}

// runtimeErr carries an execution error through panics; it is the
// exec.RuntimeErr both engines panic with.
type runtimeErr = exec.RuntimeErr

// New prepares an interpreter for the program on the given machine.
func New(prog *partition.Program, machine *sgx.Machine) *Interp {
	colors := make([]string, len(prog.Colors))
	for i, c := range prog.Colors {
		colors[i] = c.String()
	}
	ip := &Interp{
		Prog:       prog,
		globals:    map[*ir.Global]uint64{},
		layouts:    map[string]*splitLayout{},
		ifaceIndex: map[string]int{},
		chunkOf:    map[*ir.Function]*partition.Chunk{},
		vecStash:   map[[2]int][]any{},
	}
	for _, ch := range prog.ChunkByID {
		ip.chunkOf[ch.Fn] = ch
	}
	ip.RT = prt.New(machine, colors, ip.execChunk)
	ip.computeLayouts()
	ip.allocGlobals()
	for name := range prog.Entries {
		ip.internFunc(name)
	}
	return ip
}

// EnableSpawnValidation installs the §8 spawn whitelist: enclave workers
// refuse to run chunks the partitioner never scheduled for them.
func (ip *Interp) EnableSpawnValidation() {
	wl := ip.Prog.SpawnWhitelist()
	allowed := make(map[int]map[int]bool, len(wl))
	for colorIdx, ids := range wl {
		m := make(map[int]bool, len(ids))
		for _, id := range ids {
			m[id] = true
		}
		allowed[colorIdx] = m
	}
	ip.RT.ValidateSpawn = func(workerIdx, chunkID int) bool {
		return allowed[workerIdx][chunkID]
	}
}

// EnableContValidation installs the cont-tag whitelist: tags outside the
// partitioner's allocation range are rejected at the admit gate instead of
// parking forever in a pending buffer (defense-in-depth beside the
// authentication stamp).
func (ip *Interp) EnableContValidation() {
	maxTag := ip.Prog.MaxTag()
	ip.RT.ValidateCont = func(tag int) bool { return tag > 0 && tag <= maxTag }
}

// EnableSupervision turns on the runtime's fault-tolerance layer: every
// wait/join is bounded by the timeout (a lost message degrades into a
// typed error instead of a hang) and, when watchdog is set, a supervisor
// goroutine reports which tag/join a stuck worker is blocked on. Call it
// before the first Call.
func (ip *Interp) EnableSupervision(s prt.Supervision) {
	ip.RT.Supervise = s
}

// Close stops all worker threads and the runtime's supervisor.
func (ip *Interp) Close() {
	ip.threads.Wait()
	if ip.main != nil {
		ip.main.Close()
	}
	ip.bgMu.Lock()
	for _, t := range ip.bg {
		t.Close()
	}
	ip.bg = nil
	ip.bgMu.Unlock()
	ip.RT.Shutdown()
}

// Output returns everything the program printed.
func (ip *Interp) Output() string {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return string(ip.output)
}

// recordErr stashes the first error raised on a worker goroutine.
func (ip *Interp) recordErr(err error) {
	ip.mu.Lock()
	if ip.asyncErr == nil {
		ip.asyncErr = err
	}
	ip.mu.Unlock()
}

// takeErr returns and clears the stashed worker error.
func (ip *Interp) takeErr() error {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	err := ip.asyncErr
	ip.asyncErr = nil
	return err
}

func (ip *Interp) print(s string) {
	ip.mu.Lock()
	ip.output = append(ip.output, s...)
	ip.mu.Unlock()
}

// computeLayouts builds the split layouts of multi-color structs.
func (ip *Interp) computeLayouts() {
	for name, sp := range ip.Prog.Splits {
		st := sp.Struct
		l := &splitLayout{split: sp, offsets: make([]int64, len(st.Fields))}
		var off int64
		for i, f := range st.Fields {
			size, align := f.Type.Size(), f.Type.Align()
			if _, colored := sp.FieldColors[i]; colored {
				size, align = 8, 8 // pointer slot
			}
			off = (off + align - 1) / align * align
			l.offsets[i] = off
			off += size
		}
		l.size = (off + 7) / 8 * 8
		if l.size == 0 {
			l.size = 8
		}
		ip.layouts[name] = l
	}
}

// regionOfColor maps a color to its region ID (U and S to unsafe memory).
func (ip *Interp) regionOfColor(c ir.Color) sgx.RegionID {
	if !c.IsEnclave() {
		return sgx.Unsafe
	}
	return sgx.RegionID(ip.Prog.ColorIndex(c))
}

// allocGlobals places every global in its region (§7.1: colored globals in
// their enclave, the rest gathered in the shared unsafe block) and writes
// the initializers.
func (ip *Interp) allocGlobals() {
	place := func(g *ir.Global, region sgx.RegionID) {
		r := ip.RT.Space.Region(region)
		size := g.Elem.Size()
		if ly := ip.layoutOf(g.Elem); ly != nil {
			size = ly.size
		}
		off := r.Alloc(size)
		addr := sgx.EncodePtr(region, off)
		ip.globals[g] = addr
		switch {
		case g.InitBytes != nil:
			r.Store(off, g.InitBytes)
		case g.InitInt != 0:
			var buf [8]byte
			putInt(buf[:g.Elem.Size()], g.InitInt)
			r.Store(off, buf[:g.Elem.Size()])
		case g.InitFloat != 0:
			var buf [8]byte
			putInt(buf[:], int64(floatBits(g.InitFloat)))
			r.Store(off, buf[:])
		}
	}
	for _, g := range ip.Prog.SharedGlobals {
		place(g, sgx.Unsafe)
	}
	for c, gs := range ip.Prog.EnclaveGlobals {
		for _, g := range gs {
			place(g, ip.regionOfColor(c))
		}
	}
}

// layoutOf returns the split layout of a struct type, or nil.
func (ip *Interp) layoutOf(t ir.Type) *splitLayout {
	st, ok := t.(*ir.StructType)
	if !ok {
		return nil
	}
	return ip.layouts[st.Name]
}

// internFunc assigns a function-pointer value to a named entry.
func (ip *Interp) internFunc(name string) int {
	if idx, ok := ip.ifaceIndex[name]; ok {
		return idx
	}
	pf := ip.Prog.Entries[name]
	if pf == nil {
		return 0
	}
	ip.ifaceTable = append(ip.ifaceTable, pf)
	idx := len(ip.ifaceTable) // 1-based so 0 stays the nil function
	ip.ifaceIndex[name] = idx
	return idx
}

// mainThread lazily creates the main application thread.
func (ip *Interp) mainThread() *prt.Thread {
	ip.mainOnce.Do(func() { ip.main = ip.RT.NewThread() })
	return ip.main
}

// Call invokes an entry point by name with integer arguments and returns
// its integer result. It runs the interface version (§7.3.4): spawn the
// enclave chunks, run the U chunk in normal mode, join, pick the result.
func (ip *Interp) Call(entry string, args ...int64) (ret int64, err error) {
	pf := ip.Prog.Entries[entry]
	if pf == nil {
		return 0, fmt.Errorf("interp: no entry point %q", entry)
	}
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(runtimeErr); ok {
				err = re.Err
				// A worker-recorded error is the root cause of whatever
				// the main goroutine then tripped over (a chunk that
				// aborts mid-protocol starves the join into a timeout):
				// lead with the cause, but keep the symptom joined in —
				// a *TimeoutError carries the pending tags and queue
				// depths of the stuck protocol state, which the caller
				// loses if the cause simply replaces it. errors.Is/As see
				// through the join to both. Taking the stash also keeps
				// it from leaking into a later Call.
				if aerr := ip.takeErr(); aerr != nil {
					err = errors.Join(aerr, re.Err)
				}
				return
			}
			panic(r)
		}
	}()
	vargs := make([]val, len(args))
	for i, a := range args {
		vargs[i] = iv(a)
	}
	// Each top-level invocation is a new epoch: stragglers of a previous
	// (possibly timed-out or crashed) call are fenced off instead of being
	// matched against this call's waits.
	main := ip.mainThread()
	main.AdvanceEpoch()
	v := ip.invokeInterface(main.Normal(), pf, vargs)
	if aerr := ip.takeErr(); aerr != nil {
		return v.I, aerr
	}
	return v.I, nil
}

// invokeInterface runs the interface version of a partitioned function from
// normal mode (or from whatever worker w is bound to, for indirect calls).
func (ip *Interp) invokeInterface(w *prt.Worker, pf *partition.PartFunc, args []val) val {
	anyArgs := make([]any, len(args))
	for i, a := range args {
		anyArgs[i] = a
	}
	var spawned []int
	if pf.Interface != nil {
		for _, c := range pf.Interface.Spawns {
			ch := pf.Chunks[c]
			if ch == nil {
				continue
			}
			w.Spawn(ip.Prog.ColorIndex(c), ch.ID, anyArgs, true)
			spawned = append(spawned, ip.Prog.ColorIndex(c))
		}
	}
	var result val
	haveResult := false
	// The U chunk's return value is trustworthy only when U is part of
	// the function's color set: an interface-only skeleton chunk never
	// receives the call results its return may depend on.
	uInSet := len(pf.ColorSet) == 0 // colorless programs run entirely in U
	for _, c := range pf.ColorSet {
		if c.IsUntrusted() {
			uInSet = true
		}
	}
	if uChunk := pf.Chunks[ir.U]; uChunk != nil && len(uChunk.Fn.Blocks) > 0 {
		r := ip.runChunkBody(w, uChunk, args)
		if uInSet {
			result = r
			haveResult = true
		}
	}
	// Collect completions; a completion from the chunk whose color is
	// the return color wins.
	retColor := pf.Spec.RetColor
	for range spawned {
		msg, err := w.JoinOne()
		if err != nil {
			// Shutdown or a timed-out completion: further completions
			// of this invocation will not arrive either; bail out.
			panic(runtimeErr{Err: err})
		}
		if msg.Err != nil {
			// Poisoned completion: the spawned chunk aborted. Record it
			// and keep joining so the remaining spawns complete.
			ip.recordErr(msg.Err)
			continue
		}
		from := ip.Prog.ColorAt(msg.From)
		if v, ok := msg.Payload.(val); ok {
			if from == retColor || !haveResult {
				result = v
				haveResult = true
			}
		}
	}
	return result
}

// --- byte helpers ---

func putInt(buf []byte, v int64) {
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
}

func getInt(buf []byte) int64 {
	var v uint64
	for i := range buf {
		v |= uint64(buf[i]) << (8 * i)
	}
	// Sign-extend.
	bits := uint(len(buf) * 8)
	if bits < 64 {
		shift := 64 - bits
		return int64(v<<shift) >> shift
	}
	return int64(v)
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// errf panics with a runtime error (recovered in Call).
func errf(format string, args ...any) {
	panic(runtimeErr{Err: fmt.Errorf(format, args...)})
}

// ErrExit is returned when the program calls exit(n).
var ErrExit = errors.New("program called exit")
