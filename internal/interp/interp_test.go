package interp

import (
	"strings"
	"testing"

	"privagic/internal/minic"
	"privagic/internal/partition"
	"privagic/internal/passes"
	"privagic/internal/sgx"
	"privagic/internal/typing"
)

// build compiles, analyzes, partitions and loads a program.
func build(t *testing.T, mode typing.Mode, src string, entries ...string) *Interp {
	t.Helper()
	mod, err := minic.Compile("test.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	passes.RunAll(mod)
	an := typing.Analyze(mod, typing.Options{Mode: mode, Entries: entries})
	if err := an.Err(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	prog, err := partition.Partition(an)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	ip := New(prog, sgx.MachineB())
	t.Cleanup(ip.Close)
	return ip
}

// TestRunFigure6 executes the complete example of Figures 6 and 7 end to
// end: main must return 42 (via f's Free result shipped to main.U with a
// cont message) and printf must run exactly once in normal mode.
func TestRunFigure6(t *testing.T) {
	ip := build(t, typing.Relaxed, `
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

void g(int n) {
	blue = n;
	red = n;
	printf("Hello\n");
}
int f(int y) {
	g(21);
	return 42;
}
entry int main() {
	unsafe = 1;
	int x = f(blue);
	return x;
}
`, "main")
	ret, err := ip.Call("main")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if ret != 42 {
		t.Errorf("main() = %d, want 42", ret)
	}
	if got := ip.Output(); got != "Hello\n" {
		t.Errorf("output = %q, want %q", got, "Hello\n")
	}
	// The blue and red globals must hold 21 in their own enclaves.
	checkGlobal(t, ip, "blue", 21)
	checkGlobal(t, ip, "red", 21)
	checkGlobal(t, ip, "unsafe", 1)
	// Messages flowed over the queues (spawns s1-s3, conts).
	_, messages, _, _ := ip.RT.Meter.Counts()
	if messages < 4 {
		t.Errorf("only %d queue messages; Figure 7 needs spawns and conts", messages)
	}
}

func checkGlobal(t *testing.T, ip *Interp, name string, want int64) {
	t.Helper()
	g := ip.Prog.Mod.Global(name)
	if g == nil {
		t.Fatalf("no global %s", name)
	}
	addr := ip.globals[g]
	rid, off := sgx.DecodePtr(addr)
	var buf [8]byte
	ip.RT.Space.Region(rid).Load(off, buf[:g.Elem.Size()])
	if got := getInt(buf[:g.Elem.Size()]); got != want {
		t.Errorf("global %s = %d, want %d", name, got, want)
	}
}

// TestGlobalsLandInTheirRegions checks the §7.1 placement: colored globals
// live in enclave regions, unsafe globals in region 0.
func TestGlobalsLandInTheirRegions(t *testing.T) {
	ip := build(t, typing.Relaxed, `
int color(blue) secret = 7;
int open = 3;
entry int main() { return secret; }
`, "main")
	g := ip.Prog.Mod.Global("secret")
	rid, _ := sgx.DecodePtr(ip.globals[g])
	if rid == sgx.Unsafe {
		t.Error("blue global placed in unsafe memory")
	}
	g2 := ip.Prog.Mod.Global("open")
	rid2, _ := sgx.DecodePtr(ip.globals[g2])
	if rid2 != sgx.Unsafe {
		t.Error("uncolored global not in unsafe memory")
	}
}

// TestSingleColorCounter runs a single-enclave program with control flow,
// a loop, and repeated entry calls.
func TestSingleColorCounter(t *testing.T) {
	ip := build(t, typing.Relaxed, `
long color(blue) total = 0;
entry void add(long n) {
	for (long i = 0; i < n; i++)
		total = total + 1;
}
entry long get() {
	return total;
}
`, "add", "get")
	for i := 0; i < 5; i++ {
		if _, err := ip.Call("add", 10); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	// get returns a blue value; as a raw entry result it is the chunk's
	// return, which the harness may read (a real deployment would
	// declassify first).
	got, err := ip.Call("get")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got != 50 {
		t.Errorf("get() = %d, want 50", got)
	}
}

// TestFigure1Account runs the Figure 1 bank-account example with a
// two-color split structure: the name bytes must physically live in the
// blue region and the balance in the red region (§7.2).
func TestFigure1Account(t *testing.T) {
	ip := build(t, typing.Relaxed, `
struct account {
	char color(blue) name[16];
	double color(red) balance;
};
struct account* acc;

entry void create(char* name) {
	struct account* res = malloc(sizeof(struct account));
	strncpy(res->name, name, 16);
	res->balance = 0.0;
	acc = res;
}
entry void deposit(double v) {
	acc->balance = acc->balance + v;
}
entry double balance() {
	return acc->balance;
}
entry long name_len() {
	return strlen(acc->name);
}
`, "create", "deposit", "balance", "name_len")

	// Write the name into unsafe memory so create can read it.
	nameOff := ip.RT.Space.Region(sgx.Unsafe).Alloc(16)
	ip.RT.Space.Region(sgx.Unsafe).Store(nameOff, []byte("alice\x00"))
	if _, err := ip.Call("create", int64(sgx.EncodePtr(sgx.Unsafe, nameOff))); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := ip.Call("deposit"); err == nil {
		// deposit takes a double; passing no args gives v=0, fine.
		_ = err
	}
	if n, err := ip.Call("name_len"); err != nil || n != 5 {
		t.Errorf("name_len = (%d, %v), want (5, nil)", n, err)
	}
	// The struct body is in unsafe memory; its name field slot holds a
	// pointer into the blue region, balance slot into red.
	g := ip.Prog.Mod.Global("acc")
	rid, off := sgx.DecodePtr(ip.globals[g])
	var buf [8]byte
	ip.RT.Space.Region(rid).Load(off, buf[:])
	structAddr := uint64(getInt(buf[:]))
	srid, soff := sgx.DecodePtr(structAddr)
	if srid != sgx.Unsafe {
		t.Fatalf("split struct body in region %d, want unsafe", srid)
	}
	ip.RT.Space.Region(sgx.Unsafe).Load(soff, buf[:])
	nameRid, _ := sgx.DecodePtr(uint64(getInt(buf[:])))
	ip.RT.Space.Region(sgx.Unsafe).Load(soff+8, buf[:])
	balRid, _ := sgx.DecodePtr(uint64(getInt(buf[:])))
	if nameRid == sgx.Unsafe || balRid == sgx.Unsafe || nameRid == balRid {
		t.Errorf("field regions: name=%d balance=%d; want two distinct enclaves", nameRid, balRid)
	}
}

// TestIsolationEnforcedAtRuntime checks the defense-in-depth property: the
// simulated SGX refuses cross-enclave access even if (hypothetically)
// generated code tried it. We reach into the machine directly.
func TestIsolationEnforcedAtRuntime(t *testing.T) {
	ip := build(t, typing.Relaxed, `
int color(blue) secret = 99;
entry int main() { return 0; }
`, "main")
	g := ip.Prog.Mod.Global("secret")
	addr := ip.globals[g]
	var buf [8]byte
	// Normal mode reading blue memory must fault.
	err := ip.RT.Space.CheckedLoad(sgx.Unsafe, addr, buf[:])
	if err == nil {
		t.Fatal("normal mode read enclave memory")
	}
	var ae *sgx.AccessError
	if !asAccessError(err, &ae) {
		t.Fatalf("error %v is not an AccessError", err)
	}
	// Another enclave must fault too.
	rid, _ := sgx.DecodePtr(addr)
	other := rid + 1
	if int(other) >= len(ip.RT.Space.Regions()) {
		other = rid - 1
	}
	if other > 0 {
		if err := ip.RT.Space.CheckedLoad(other, addr, buf[:]); err == nil {
			t.Fatal("enclave read another enclave's memory")
		}
	}
	// The owner enclave may read it.
	if err := ip.RT.Space.CheckedLoad(rid, addr, buf[:]); err != nil {
		t.Fatalf("owner enclave denied: %v", err)
	}
	if getInt(buf[:]) != 99 {
		t.Errorf("secret = %d, want 99", getInt(buf[:]))
	}
}

func asAccessError(err error, target **sgx.AccessError) bool {
	for err != nil {
		if ae, ok := err.(*sgx.AccessError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestMultiThreadedProgram runs the paper's headline scenario: multiple
// application threads hammering one colored data structure concurrently.
func TestMultiThreadedProgram(t *testing.T) {
	ip := build(t, typing.Relaxed, `
long color(blue) counter = 0;
long done = 0;

void worker(long n) {
	for (long i = 0; i < n; i++)
		counter = counter + 1;
	done = done + 1;
}
entry void spawn_workers() {
	thread_create(worker, 1000);
	worker(1000);
	thread_join();
}
entry long get() { return counter; }
`, "spawn_workers", "get")
	if _, err := ip.Call("spawn_workers"); err != nil {
		t.Fatalf("spawn_workers: %v", err)
	}
	got, err := ip.Call("get")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	// Increments race (no lock in the program), but both threads ran:
	// the counter must be at least 1000 and at most 2000.
	if got < 1000 || got > 2000 {
		t.Errorf("counter = %d, want within [1000, 2000]", got)
	}
}

// TestRecursion checks deep recursive execution through a colored function.
func TestRecursion(t *testing.T) {
	ip := build(t, typing.Relaxed, `
entry long fib(long n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
`, "fib")
	got, err := ip.Call("fib", 15)
	if err != nil {
		t.Fatalf("fib: %v", err)
	}
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

// TestStringsAndPrintf exercises the mini-libc and formatting.
func TestStringsAndPrintf(t *testing.T) {
	ip := build(t, typing.Relaxed, `
char msg[32] = "hi";
entry int main() {
	printf("s=%s n=%d x=%x c=%c f=%f\n", msg, 42, 255, 'A', 1.5);
	return strlen(msg);
}
`, "main")
	ret, err := ip.Call("main")
	if err != nil {
		t.Fatalf("main: %v", err)
	}
	if ret != 2 {
		t.Errorf("strlen = %d, want 2", ret)
	}
	want := "s=hi n=42 x=ff c=A f=1.5\n"
	if got := ip.Output(); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

// TestExit checks that exit() surfaces as an error.
func TestExit(t *testing.T) {
	ip := build(t, typing.Relaxed, `
entry int main() {
	exit(3);
	return 0;
}
`, "main")
	_, err := ip.Call("main")
	if err == nil || !strings.Contains(err.Error(), "exit") {
		t.Errorf("err = %v, want exit error", err)
	}
}
