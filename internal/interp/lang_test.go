package interp

import (
	"testing"

	"privagic/internal/typing"
)

// runMain compiles a colorless program and runs main, expecting a value.
func runMain(t *testing.T, src string, want int64) {
	t.Helper()
	ip := build(t, typing.Relaxed, src, "main")
	got, err := ip.Call("main")
	if err != nil {
		t.Fatalf("main: %v", err)
	}
	if got != want {
		t.Errorf("main() = %d, want %d", got, want)
	}
}

// TestLanguageSemantics pins down MiniC semantics end to end through the
// whole pipeline (frontend, SSA, typing, partitioning, execution).
func TestLanguageSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"arith", `entry long main() { return (7 + 3) * 2 - 6 / 2; }`, 17},
		{"precedence", `entry long main() { return 2 + 3 * 4; }`, 14},
		{"rem", `entry long main() { return 17 % 5; }`, 2},
		{"neg", `entry long main() { return -5 + 3; }`, -2},
		{"bitops", `entry long main() { return (12 & 10) | (1 << 4) ^ 3; }`, 27},
		{"shift", `entry long main() { return 1 << 10 >> 2; }`, 256},
		{"bitnot", `entry long main() { return ~0 + 2; }`, 1},
		{"cmpchain", `entry long main() { return (3 < 5) + (5 <= 5) + (7 > 9) + (2 != 2); }`, 2},
		{"logand", `entry long main() { long a = 0; return (a && (1/a)) + 5; }`, 5}, // short circuit avoids div by 0
		{"logor", `entry long main() { long a = 1; return (a || (1/0*0)) + 5; }`, 6},
		{"not", `entry long main() { return !0 + !7; }`, 1},
		{"ternaryless", `entry long main() { long r; if (3 > 2) r = 10; else r = 20; return r; }`, 10},
		{"whileloop", `entry long main() { long s = 0; long i = 0; while (i < 10) { s += i; i++; } return s; }`, 45},
		{"forbreak", `entry long main() { long s = 0; for (long i = 0; i < 100; i++) { if (i == 5) break; s += i; } return s; }`, 10},
		{"forcontinue", `entry long main() { long s = 0; for (long i = 0; i < 6; i++) { if (i % 2) continue; s += i; } return s; }`, 6},
		{"nestedloop", `entry long main() { long s = 0; for (long i = 0; i < 3; i++) for (long j = 0; j < 3; j++) s += i * j; return s; }`, 9},
		{"incdec", `entry long main() { long x = 5; long a = x++; long b = ++x; long c = x--; return a * 100 + b * 10 + c - x; }`, 571},
		{"compound", `entry long main() { long x = 10; x += 5; x -= 3; return x; }`, 12},
		{"charmath", `entry long main() { char c = 'A'; return c + 2; }`, 67},
		{"sizeofint", `entry long main() { return sizeof(long) + sizeof(char); }`, 9},
		{"sizeofptr", `entry long main() { return sizeof(long*); }`, 8},
		{"cast", `entry long main() { double d = 3.9; return (long)d; }`, 3},
		{"floatarith", `entry long main() { double d = 1.5; d = d * 4.0; return (long)d; }`, 6},
		{"ptrarith", `
long arr[8];
entry long main() {
	long* p = arr;
	for (long i = 0; i < 8; i++) arr[i] = i * i;
	p = p + 3;
	return *p + p[1];
}`, 25},
		{"addrderef", `
entry long main() {
	long x = 41;
	long* p = &x;
	*p = *p + 1;
	return x;
}`, 42},
		{"globals", `
long g1 = 100;
long g2 = -40;
entry long main() { return g1 + g2; }`, 60},
		{"recursion", `
long gcd(long a, long b) { if (b == 0) return a; return gcd(b, a % b); }
entry long main() { return gcd(48, 36); }`, 12},
		{"mutualrec", `
long is_odd(long n);
long is_even(long n) { if (n == 0) return 1; return is_odd(n - 1); }
long is_odd(long n) { if (n == 0) return 0; return is_even(n - 1); }
entry long main() { return is_even(10) * 10 + is_odd(7); }`, 11},
		{"structs", `
struct point { long x; long y; };
entry long main() {
	struct point* p = malloc(sizeof(struct point));
	p->x = 3;
	p->y = 4;
	return p->x * p->x + p->y * p->y;
}`, 25},
		{"structarray", `
struct pair { long a; long b; };
struct pair table[4];
entry long main() {
	for (long i = 0; i < 4; i++) { table[i].a = i; table[i].b = i * 10; }
	return table[2].a + table[3].b;
}`, 32},
		{"linkedheap", `
struct node { long v; struct node* next; };
entry long main() {
	struct node* head = 0;
	for (long i = 1; i <= 4; i++) {
		struct node* n = malloc(sizeof(struct node));
		n->v = i;
		n->next = head;
		head = n;
	}
	long s = 0;
	while (head != 0) { s = s * 10 + head->v; head = head->next; }
	return s;
}`, 4321},
		{"strings", `
entry long main() {
	char buf[16];
	strncpy(buf, "hola", 16);
	return strlen(buf) + (strcmp(buf, "hola") == 0) * 10;
}`, 14},
		{"memset", `
entry long main() {
	char buf[8];
	memset(buf, 7, 8);
	long s = 0;
	for (long i = 0; i < 8; i++) s += buf[i];
	return s;
}`, 56},
		{"hash", `
entry long main() {
	char a[4]; char b[4];
	memset(a, 3, 4); memset(b, 3, 4);
	return hash64(a, 4) == hash64(b, 4);
}`, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { runMain(t, c.src, c.want) })
	}
}

// TestDivisionByZeroSurfaces checks runtime errors surface as errors.
func TestDivisionByZeroSurfaces(t *testing.T) {
	ip := build(t, typing.Relaxed, `entry long main() { long z = 0; return 5 / z; }`, "main")
	if _, err := ip.Call("main"); err == nil {
		t.Error("division by zero did not error")
	}
}

// TestNilDerefSurfaces checks nil dereferences surface as errors.
func TestNilDerefSurfaces(t *testing.T) {
	ip := build(t, typing.Relaxed, `
struct node { long v; struct node* next; };
entry long main() { struct node* n = 0; return n->v; }`, "main")
	if _, err := ip.Call("main"); err == nil {
		t.Error("nil dereference did not error")
	}
}
