package interp

import "privagic/internal/obs"

// EnableObservability arms the runtime tracer and publishes the
// interpreter's counters into reg (see OBSERVABILITY.md). Either argument
// may be nil: a nil tracer leaves structured tracing off, a nil registry
// skips metric registration. Like the other Enable* knobs, call it before
// the first Call; the metrics are gauge closures over counters the
// interpreter and runtime maintain anyway, so nothing new runs per access.
func (ip *Interp) EnableObservability(reg *obs.Registry, tr *obs.Tracer) {
	if tr != nil {
		ip.RT.Tracer = tr
	}
	if reg == nil {
		return
	}
	ip.RT.RegisterMetrics(reg)
	reg.Gauge("interp.effect_commits", ip.effCommits.Load)
	reg.Gauge("interp.effect_discards", ip.effDiscards.Load)
	reg.Gauge("interp.boundary.snapshot_copyins", ip.bStats.snapCopyIns.Load)
	reg.Gauge("interp.boundary.snapshot_served", ip.bStats.snapServed.Load)
	reg.Gauge("interp.boundary.trusted_loads", ip.bStats.trustedLoads.Load)
	reg.Gauge("interp.boundary.unsafe_loads", ip.bStats.unsafeLoads.Load)
	reg.Gauge("interp.boundary.sanitize_checks", ip.bStats.sanChecks.Load)
	reg.Gauge("interp.boundary.violations", ip.bStats.violations.Load)
	reg.Gauge("cross.vector_sends", ip.cross.vecSends.Load)
	reg.Gauge("cross.vector_waits", ip.cross.vecWaits.Load)
	reg.Gauge("cross.elem_reads", ip.cross.elemReads.Load)
	reg.Gauge("cross.fused_calls", ip.cross.fusedCalls.Load)
	reg.Gauge("exec.compile_us", ip.es.compileUS.Load)
	reg.Gauge("exec.compiled_dispatches", ip.es.compiledRuns.Load)
	reg.Gauge("exec.oracle_divergences", ip.es.divergences.Load)
}
