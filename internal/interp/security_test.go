package interp

import (
	"testing"

	"privagic/internal/ir"
	"privagic/internal/typing"
)

// TestSpawnValidationRejectsInjection exercises the §8 attack surface: an
// attacker with access to the unsafe-memory queues injects a spawn message
// for a chunk the compiler never scheduled on that enclave. With the
// whitelist enabled the worker refuses it; legitimate traffic still flows.
func TestSpawnValidationRejectsInjection(t *testing.T) {
	ip := build(t, typing.Relaxed, `
long color(blue) secret = 7;
long color(blue) stolen = 0;
entry void steal() {
	stolen = secret;
}
entry long get_secret() {
	return secret;
}
`, "steal", "get_secret")
	ip.EnableSpawnValidation()

	// Legitimate calls work.
	if _, err := ip.Call("steal"); err != nil {
		t.Fatalf("legitimate call rejected: %v", err)
	}

	// Find a chunk that does NOT belong to the blue worker's whitelist
	// by fabricating an impossible id, and also inject a *wrong-worker*
	// spawn: the U chunk of an entry sent to the blue enclave.
	var uChunkID = -1
	for _, pf := range ip.Prog.Funcs {
		for c, ch := range pf.Chunks {
			if c == ir.U {
				uChunkID = ch.ID
			}
		}
	}
	if uChunkID < 0 {
		t.Fatal("no U chunk found")
	}
	th := ip.mainThread()
	blueWorker := th.Worker(1)
	before := ip.RT.RejectedSpawns()
	// Inject: normal-mode attacker enqueues a spawn for the U chunk on
	// the blue worker (never legitimate: U chunks run in normal mode).
	th.Normal().Spawn(1, uChunkID, nil, true)
	th.Normal().JoinOne() // the rejection still completes the join
	if got := ip.RT.RejectedSpawns(); got != before+1 {
		t.Errorf("RejectedSpawns = %d, want %d", got, before+1)
	}
	_ = blueWorker

	// The system still serves legitimate requests afterwards.
	v, err := ip.Call("get_secret")
	if err != nil {
		t.Fatalf("post-injection call failed: %v", err)
	}
	if v != 7 {
		t.Errorf("get_secret = %d, want 7", v)
	}
}

// TestSpawnValidationOffByDefault documents the paper's current state
// (§8: validation is future work): without opting in, the injected spawn
// executes.
func TestSpawnValidationOffByDefault(t *testing.T) {
	ip := build(t, typing.Relaxed, `
long color(blue) counter = 0;
entry void bump() { counter = counter + 1; }
entry long read_counter() { return counter; }
`, "bump", "read_counter")

	// Locate bump's blue chunk and inject it directly, bypassing the
	// interface: without validation the worker happily runs it.
	var bumpBlue int = -1
	for _, pf := range ip.Prog.Funcs {
		if pf.Spec.Orig.FName == "bump" {
			for c, ch := range pf.Chunks {
				if c == ir.Named("blue") {
					bumpBlue = ch.ID
				}
			}
		}
	}
	if bumpBlue < 0 {
		t.Fatal("bump.blue not found")
	}
	th := ip.mainThread()
	th.Normal().Spawn(1, bumpBlue, []any{}, true)
	th.Normal().JoinOne()
	v, err := ip.Call("read_counter")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("counter = %d; the injected spawn should have run (validation off)", v)
	}
	if ip.RT.RejectedSpawns() != 0 {
		t.Error("spawns rejected without validation enabled")
	}
}
