package ir

import "fmt"

// Builder emits instructions at the end of a current block. It is the
// construction API used by the MiniC lowering and by tests.
type Builder struct {
	Func *Function
	Cur  *Block
	pos  Pos
}

// NewBuilder returns a builder positioned at a fresh entry block of f.
func NewBuilder(f *Function) *Builder {
	b := &Builder{Func: f}
	b.Cur = f.NewBlock("entry")
	return b
}

// At moves the builder to the end of block blk.
func (b *Builder) At(blk *Block) *Builder {
	b.Cur = blk
	return b
}

// SetPos sets the source position attached to subsequently built
// instructions.
func (b *Builder) SetPos(p Pos) { b.pos = p }

// Pos returns the current source position.
func (b *Builder) Pos() Pos { return b.pos }

func (b *Builder) emit(in Instr) {
	if b.Cur.Terminator() != nil {
		panic(fmt.Sprintf("ir: emitting %s after terminator in block %s", in, b.Cur.BName))
	}
	b.Cur.Append(in)
}

// Alloca emits a stack allocation of elem with an optional color.
func (b *Builder) Alloca(elem Type, color Color) *Alloca {
	in := &Alloca{Elem: elem, Color: color}
	in.name, in.typ, in.pos = b.Func.regName(), PtrToColored(elem, color), b.pos
	b.emit(in)
	return in
}

// Malloc emits a heap allocation. count may be nil for one element.
func (b *Builder) Malloc(elem Type, color Color, count Value) *Malloc {
	in := &Malloc{Elem: elem, Color: color, Count: count}
	in.name, in.typ, in.pos = b.Func.regName(), PtrToColored(elem, color), b.pos
	b.emit(in)
	return in
}

// Free emits a heap release.
func (b *Builder) Free(ptr Value) *Free {
	in := &Free{Ptr: ptr}
	in.pos = b.pos
	b.emit(in)
	return in
}

// Load emits a read through ptr.
func (b *Builder) Load(ptr Value) *Load {
	pt, ok := ptr.Type().(PointerType)
	if !ok {
		panic(fmt.Sprintf("ir: load of non-pointer %s: %s", ptr.Name(), ptr.Type()))
	}
	in := &Load{Ptr: ptr}
	in.name, in.typ, in.pos = b.Func.regName(), pt.Elem, b.pos
	b.emit(in)
	return in
}

// Store emits a write of val through ptr.
func (b *Builder) Store(val, ptr Value) *Store {
	if _, ok := ptr.Type().(PointerType); !ok {
		panic(fmt.Sprintf("ir: store to non-pointer %s: %s", ptr.Name(), ptr.Type()))
	}
	in := &Store{Val: val, Ptr: ptr}
	in.pos = b.pos
	b.emit(in)
	return in
}

// BinOp emits x op y.
func (b *Builder) BinOp(op BinOpKind, x, y Value) *BinOp {
	in := &BinOp{Op: op, X: x, Y: y}
	in.name, in.typ, in.pos = b.Func.regName(), x.Type(), b.pos
	b.emit(in)
	return in
}

// Cmp emits a comparison producing an i1.
func (b *Builder) Cmp(pred CmpPred, x, y Value) *Cmp {
	in := &Cmp{Pred: pred, X: x, Y: y}
	in.name, in.typ, in.pos = b.Func.regName(), I1, b.pos
	b.emit(in)
	return in
}

// Cast emits a conversion of val to the given type.
func (b *Builder) Cast(val Value, to Type) *Cast {
	in := &Cast{Val: val}
	in.name, in.typ, in.pos = b.Func.regName(), to, b.pos
	b.emit(in)
	return in
}

// FieldAddr emits the address of struct field index through base x.
// The result's pointee color is the field's annotation when present,
// otherwise the color of the enclosing object.
func (b *Builder) FieldAddr(x Value, index int) *FieldAddr {
	pt, ok := x.Type().(PointerType)
	if !ok {
		panic(fmt.Sprintf("ir: fieldaddr of non-pointer %s", x.Type()))
	}
	st, ok := pt.Elem.(*StructType)
	if !ok {
		panic(fmt.Sprintf("ir: fieldaddr of non-struct %s", pt.Elem))
	}
	if index < 0 || index >= len(st.Fields) {
		panic(fmt.Sprintf("ir: fieldaddr index %d out of range for %s", index, st.Name))
	}
	fld := st.Fields[index]
	color := fld.Color
	if color.IsNone() {
		color = pt.Color
	}
	in := &FieldAddr{X: x, Index: index}
	in.name, in.typ, in.pos = b.Func.regName(), PtrToColored(fld.Type, color), b.pos
	b.emit(in)
	return in
}

// IndexAddr emits the address of element idx of the buffer at x. The base
// may be a pointer to an array (yielding an element pointer) or a raw
// element pointer (pointer arithmetic).
func (b *Builder) IndexAddr(x Value, idx Value) *IndexAddr {
	pt, ok := x.Type().(PointerType)
	if !ok {
		panic(fmt.Sprintf("ir: indexaddr of non-pointer %s", x.Type()))
	}
	elem := pt.Elem
	if arr, ok := elem.(ArrayType); ok {
		elem = arr.Elem
	}
	in := &IndexAddr{X: x, Index: idx}
	in.name, in.typ, in.pos = b.Func.regName(), PtrToColored(elem, pt.Color), b.pos
	b.emit(in)
	return in
}

// Call emits a direct or indirect call.
func (b *Builder) Call(callee Value, args ...Value) *Call {
	var sig FuncType
	switch c := callee.(type) {
	case *Function:
		sig = c.Signature()
	default:
		ft, ok := callee.Type().(FuncType)
		if !ok {
			pt, okp := callee.Type().(PointerType)
			if okp {
				ft, ok = pt.Elem.(FuncType)
			}
			if !ok {
				panic(fmt.Sprintf("ir: call of non-function %s", callee.Type()))
			}
		}
		sig = ft
	}
	in := &Call{Callee: callee, Args: args}
	in.typ, in.pos = sig.Ret, b.pos
	if _, isVoid := sig.Ret.(VoidType); !isVoid {
		in.name = b.Func.regName()
	} else {
		in.name = "void" + b.Func.regName()
	}
	b.emit(in)
	return in
}

// Ret emits a return (val may be nil).
func (b *Builder) Ret(val Value) *Ret {
	in := &Ret{Val: val}
	in.pos = b.pos
	b.emit(in)
	return in
}

// Br emits an unconditional jump.
func (b *Builder) Br(target *Block) *Br {
	in := &Br{Target: target}
	in.pos = b.pos
	b.emit(in)
	return in
}

// CondBr emits a conditional jump.
func (b *Builder) CondBr(cond Value, then, els *Block) *CondBr {
	in := &CondBr{Cond: cond, Then: then, Else: els}
	in.pos = b.pos
	b.emit(in)
	return in
}

// NewPhi creates a detached φ-node of the given type with a fresh register
// name; passes install it with Block.PrependPhis.
func NewPhi(f *Function, typ Type) *Phi {
	p := &Phi{}
	p.name, p.typ = f.regName(), typ
	return p
}

// PrependPhis installs φ-nodes at the head of the block.
func (b *Block) PrependPhis(phis []*Phi) {
	pre := make([]Instr, 0, len(phis)+len(b.Instrs))
	for _, p := range phis {
		p.setParent(b)
		pre = append(pre, p)
	}
	b.Instrs = append(pre, b.Instrs...)
}

// Phi emits an empty φ-node of the given type at the start of the current
// block; callers fill Edges afterwards.
func (b *Builder) Phi(typ Type) *Phi {
	in := &Phi{}
	in.name, in.typ, in.pos = b.Func.regName(), typ, b.pos
	in.setParent(b.Cur)
	b.Cur.Instrs = append([]Instr{in}, b.Cur.Instrs...)
	return in
}
