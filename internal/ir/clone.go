package ir

import "fmt"

// CloneFunction deep-copies f under a new name, returning the copy and the
// value mapping from original to clone. The clone shares struct types and
// references to globals and other functions (which are module-level values)
// but owns fresh params, blocks and instructions. It is the basis of the
// per-call-site function specialization of paper §6.2 and of chunk
// generation in the partitioner (§7.3.1).
func CloneFunction(f *Function, newName string) (*Function, map[Value]Value) {
	nf := &Function{
		FName:    newName,
		RetTyp:   f.RetTyp,
		Module:   f.Module,
		Pos:      f.Pos,
		External: f.External,
		Within:   f.Within,
		Ignore:   f.Ignore,
		Entry:    f.Entry,
		Static:   f.Static,
		RetColor: f.RetColor,
		Variadic: f.Variadic,
		nextReg:  f.nextReg,
	}
	vmap := make(map[Value]Value)
	for _, p := range f.Params {
		np := &Param{PName: p.PName, Typ: p.Typ, Color: p.Color, Index: p.Index, Pos: p.Pos}
		nf.Params = append(nf.Params, np)
		vmap[p] = np
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{BName: b.BName, Func: nf}
		nf.Blocks = append(nf.Blocks, nb)
		bmap[b] = nb
	}
	// First pass: clone instructions so result registers exist in vmap.
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := cloneInstr(in)
			nb.Append(ni)
			if v, ok := in.(Value); ok {
				vmap[v] = ni.(Value)
			}
		}
	}
	// Second pass: rewrite operands and block references.
	for _, nb := range nf.Blocks {
		for _, in := range nb.Instrs {
			for _, op := range in.Ops() {
				if nv, ok := vmap[*op]; ok {
					*op = nv
				}
			}
			switch t := in.(type) {
			case *Br:
				t.Target = bmap[t.Target]
			case *CondBr:
				t.Then = bmap[t.Then]
				t.Else = bmap[t.Else]
			case *Phi:
				for i := range t.Edges {
					t.Edges[i].Pred = bmap[t.Edges[i].Pred]
				}
			}
		}
	}
	nf.ComputeCFG()
	return nf, vmap
}

// cloneInstr shallow-copies a single instruction (operands still point at
// the original values; CloneFunction's second pass rewrites them).
func cloneInstr(in Instr) Instr {
	switch t := in.(type) {
	case *Alloca:
		c := *t
		return &c
	case *Malloc:
		c := *t
		return &c
	case *Free:
		c := *t
		return &c
	case *Load:
		c := *t
		return &c
	case *Store:
		c := *t
		return &c
	case *BinOp:
		c := *t
		return &c
	case *Cmp:
		c := *t
		return &c
	case *Cast:
		c := *t
		return &c
	case *FieldAddr:
		c := *t
		return &c
	case *IndexAddr:
		c := *t
		return &c
	case *Call:
		c := *t
		c.Args = append([]Value(nil), t.Args...)
		return &c
	case *Ret:
		c := *t
		return &c
	case *Br:
		c := *t
		return &c
	case *CondBr:
		c := *t
		return &c
	case *Phi:
		c := *t
		c.Edges = append([]PhiEdge(nil), t.Edges...)
		return &c
	}
	panic(fmt.Sprintf("ir: cloneInstr: unknown instruction %T", in))
}
