// Package ir defines the SSA intermediate representation that Privagic
// analyzes and partitions.
//
// The IR is modeled on the subset of LLVM IR that the paper manipulates: an
// abstract machine with memory and an infinite number of typed virtual
// registers in single-static-assignment form. Instructions consume registers
// and produce at most one new register, so "an instruction and its output
// register are equivalent" (paper §2.2). Memory is reached only through
// load and store; locals are created with alloca, heap objects with malloc,
// and globals with module-level definitions.
//
// The one extension over plain LLVM IR is the secure-typing metadata: every
// memory location (global, alloca, malloc site, struct field) and every
// function parameter may carry a Color, the enclave identifier introduced in
// paper §1.
package ir

// ColorKind discriminates the four classes of colors in the secure type
// system (paper Table 2).
type ColorKind int

// Color kinds. Free is given to uncolored registers and instructions and is
// compatible with everything; Untrusted and Shared are the two colors of
// unsafe memory (hardened and relaxed mode respectively); Named colors are
// developer-chosen enclave identifiers such as "blue".
const (
	KindFree ColorKind = iota + 1
	KindUntrusted
	KindShared
	KindNamed
)

// Color identifies the enclave a value or memory location belongs to.
// The zero value is "no color annotation", which the analysis resolves to an
// initial color according to Table 2 of the paper.
type Color struct {
	Kind ColorKind
	Name string // set only for KindNamed
}

// Predefined colors.
var (
	// None is the absence of an annotation; the analysis assigns an
	// initial color per Table 2.
	None = Color{}
	// F (free) is the color of uncolored registers and instructions; it
	// is compatible with any other color and is resolved by inference.
	F = Color{Kind: KindFree}
	// U (untrusted) is the color of unsafe memory in hardened mode.
	U = Color{Kind: KindUntrusted}
	// S (shared) is the color of unsafe memory in relaxed mode. Loading
	// from S produces an F register.
	S = Color{Kind: KindShared}
)

// Named returns the developer-visible enclave color with the given
// identifier, e.g. Named("blue").
func Named(name string) Color { return Color{Kind: KindNamed, Name: name} }

// IsNone reports whether the color is the absence of an annotation.
func (c Color) IsNone() bool { return c.Kind == 0 }

// IsFree reports whether the color is F.
func (c Color) IsFree() bool { return c.Kind == KindFree }

// IsEnclave reports whether the color names a real enclave (a named color).
// U and S denote unsafe memory and F denotes "not yet bound".
func (c Color) IsEnclave() bool { return c.Kind == KindNamed }

// IsUntrusted reports whether the color is U, the hardened-mode color of
// unsafe memory.
func (c Color) IsUntrusted() bool { return c.Kind == KindUntrusted }

// IsShared reports whether the color is S, the relaxed-mode color of
// unsafe memory.
func (c Color) IsShared() bool { return c.Kind == KindShared }

// String returns the display form of the color.
func (c Color) String() string {
	switch c.Kind {
	case 0:
		return "<none>"
	case KindFree:
		return "F"
	case KindUntrusted:
		return "U"
	case KindShared:
		return "S"
	default:
		return c.Name
	}
}

// Compatible reports whether two colors are compatible per paper §6.1:
// colors are compatible when they are equal or when either is F.
// (S's special load behaviour is handled by the typing rules, not here.)
func Compatible(a, b Color) bool {
	return a == b || a.IsFree() || b.IsFree()
}
