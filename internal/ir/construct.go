package ir

import "fmt"

// This file provides detached-instruction constructors and block splicing
// used by the partitioner, which rewrites cloned bodies rather than
// emitting fresh code through a Builder.

// NewCallInstr builds a call instruction owned by fn (for register
// numbering) without inserting it anywhere.
func NewCallInstr(fn *Function, callee Value, args ...Value) *Call {
	var sig FuncType
	switch c := callee.(type) {
	case *Function:
		sig = c.Signature()
	default:
		ft, ok := callee.Type().(FuncType)
		if !ok {
			panic(fmt.Sprintf("ir: NewCallInstr on non-function %s", callee.Type()))
		}
		sig = ft
	}
	in := &Call{Callee: callee, Args: args}
	in.typ = sig.Ret
	in.name = fn.regName()
	return in
}

// NewCastInstr builds a detached cast.
func NewCastInstr(fn *Function, v Value, to Type) *Cast {
	in := &Cast{Val: v}
	in.name, in.typ = fn.regName(), to
	return in
}

// IndexOf returns the position of in within the block, or -1.
func (b *Block) IndexOf(in Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// Splice replaces the instruction at index i with the given sequence
// (which may be empty, deleting it).
func (b *Block) Splice(i int, news ...Instr) {
	for _, n := range news {
		n.setParent(b)
	}
	out := make([]Instr, 0, len(b.Instrs)+len(news)-1)
	out = append(out, b.Instrs[:i]...)
	out = append(out, news...)
	out = append(out, b.Instrs[i+1:]...)
	b.Instrs = out
}

// ReplaceUses rewrites every operand equal to old into new, across the
// whole function.
func (f *Function) ReplaceUses(old, new Value) {
	f.Instrs(func(_ *Block, in Instr) {
		for _, op := range in.Ops() {
			if *op == old {
				*op = new
			}
		}
	})
}

// NormalizePhis drops φ edges whose predecessor is no longer an actual
// predecessor of the φ's block (after CFG rewriting) and recomputes the
// CFG. φ-nodes left with a single edge are replaced by their operand.
func (f *Function) NormalizePhis() {
	f.ComputeCFG()
	for _, b := range f.Blocks {
		isPred := map[*Block]bool{}
		for _, p := range b.preds {
			isPred[p] = true
		}
		var kept []Instr
		for _, in := range b.Instrs {
			phi, ok := in.(*Phi)
			if !ok {
				kept = append(kept, in)
				continue
			}
			var edges []PhiEdge
			for _, e := range phi.Edges {
				if isPred[e.Pred] {
					edges = append(edges, e)
				}
			}
			phi.Edges = edges
			if len(edges) == 1 {
				f.ReplaceUses(phi, edges[0].Val)
				continue // drop the φ
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}
