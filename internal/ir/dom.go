package ir

// DomTree holds the result of a dominance computation over a function's
// CFG. It serves two masters: mem2reg needs dominance frontiers for φ
// placement, and the secure type system needs immediate post-dominators to
// bound the region colored by a conditional jump (paper Rule 4: the blocks
// of the "if" and "then" branches are colored, the joining point is not).
type DomTree struct {
	blocks []*Block
	index  map[*Block]int
	idom   []int // immediate dominator by index; -1 for root/unreachable
	// children of each node in the dominator tree.
	children [][]int
	frontier [][]int
	post     bool
}

// Dominators computes the dominator tree of f (entry-rooted).
// f.ComputeCFG must have been called.
func Dominators(f *Function) *DomTree {
	return computeDom(f, false)
}

// PostDominators computes the post-dominator tree of f over the reverse
// CFG, using a virtual exit node that all Ret blocks lead to.
func PostDominators(f *Function) *DomTree {
	return computeDom(f, true)
}

// computeDom implements the Cooper–Harvey–Kennedy iterative algorithm on a
// reverse-postorder numbering.
func computeDom(f *Function, post bool) *DomTree {
	t := &DomTree{post: post, index: make(map[*Block]int, len(f.Blocks))}

	// Roots: entry block forward; all exit blocks backward (we add a
	// virtual root at index 0 handling multiple exits).
	preds := func(b *Block) []*Block { return b.preds }
	succs := func(b *Block) []*Block { return b.succs }
	if post {
		preds, succs = succs, preds
	}

	var roots []*Block
	if post {
		for _, b := range f.Blocks {
			if len(b.succs) == 0 {
				roots = append(roots, b)
			}
		}
	} else if len(f.Blocks) > 0 {
		roots = []*Block{f.Blocks[0]}
	}

	// Reverse postorder from the roots over the (possibly reversed) CFG.
	visited := map[*Block]bool{}
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if visited[b] {
			return
		}
		visited[b] = true
		for _, s := range succs(b) {
			dfs(s)
		}
		order = append(order, b)
	}
	for _, r := range roots {
		dfs(r)
	}
	// order is postorder; reverse it. Index 0 is the virtual root.
	t.blocks = make([]*Block, 1, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		t.blocks = append(t.blocks, order[i])
	}
	for i, b := range t.blocks {
		if i == 0 {
			continue
		}
		t.index[b] = i
	}

	n := len(t.blocks)
	t.idom = make([]int, n)
	for i := range t.idom {
		t.idom[i] = -1
	}
	t.idom[0] = 0
	rootSet := map[*Block]bool{}
	for _, r := range roots {
		rootSet[r] = true
		t.idom[t.index[r]] = 0
	}

	intersect := func(a, b int) int {
		for a != b {
			for a > b {
				a = t.idom[a]
			}
			for b > a {
				b = t.idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			b := t.blocks[i]
			if rootSet[b] {
				continue
			}
			newIdom := -1
			for _, p := range preds(b) {
				pi, ok := t.index[p]
				if !ok || t.idom[pi] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = pi
				} else {
					newIdom = intersect(newIdom, pi)
				}
			}
			if newIdom != -1 && t.idom[i] != newIdom {
				t.idom[i] = newIdom
				changed = true
			}
		}
	}

	t.children = make([][]int, n)
	for i := 1; i < n; i++ {
		if t.idom[i] >= 0 && t.idom[i] != i {
			t.children[t.idom[i]] = append(t.children[t.idom[i]], i)
		}
	}
	return t
}

// Children returns the blocks immediately dominated by b in the tree.
func (t *DomTree) Children(b *Block) []*Block {
	i, ok := t.index[b]
	if !ok {
		return nil
	}
	out := make([]*Block, 0, len(t.children[i]))
	for _, ci := range t.children[i] {
		out = append(out, t.blocks[ci])
	}
	return out
}

// Roots returns the tree roots (the entry block for dominators; the exit
// blocks for post-dominators).
func (t *DomTree) Roots() []*Block {
	var out []*Block
	for _, ci := range t.children[0] {
		out = append(out, t.blocks[ci])
	}
	return out
}

// Idom returns the immediate (post-)dominator of b, or nil when b is a root
// of the tree (dominated only by the virtual root) or unreachable.
func (t *DomTree) Idom(b *Block) *Block {
	i, ok := t.index[b]
	if !ok {
		return nil
	}
	d := t.idom[i]
	if d <= 0 {
		return nil
	}
	return t.blocks[d]
}

// Dominates reports whether a (post-)dominates b (reflexive).
func (t *DomTree) Dominates(a, b *Block) bool {
	ai, aok := t.index[a]
	bi, bok := t.index[b]
	if !aok || !bok {
		return false
	}
	for bi > ai {
		nb := t.idom[bi]
		if nb == bi {
			return false
		}
		bi = nb
	}
	return bi == ai
}

// Frontier returns the dominance frontier of b (computed lazily for the
// whole tree on first call).
func (t *DomTree) Frontier(b *Block) []*Block {
	if t.frontier == nil {
		t.computeFrontiers()
	}
	i, ok := t.index[b]
	if !ok {
		return nil
	}
	out := make([]*Block, 0, len(t.frontier[i]))
	for _, fi := range t.frontier[i] {
		out = append(out, t.blocks[fi])
	}
	return out
}

// computeFrontiers uses the Cooper–Harvey–Kennedy frontier algorithm.
func (t *DomTree) computeFrontiers() {
	n := len(t.blocks)
	t.frontier = make([][]int, n)
	for i := 1; i < n; i++ {
		b := t.blocks[i]
		preds := b.preds
		if t.post {
			preds = b.succs
		}
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			runner, ok := t.index[p]
			if !ok {
				continue
			}
			for runner != t.idom[i] && runner != 0 {
				if !containsInt(t.frontier[runner], i) {
					t.frontier[runner] = append(t.frontier[runner], i)
				}
				next := t.idom[runner]
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
