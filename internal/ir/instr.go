package ir

import (
	"fmt"
	"strings"
)

// Instr is the interface implemented by all IR instructions. Instructions
// that produce a result also implement Value.
type Instr interface {
	// Ops returns pointers to the operand slots so passes can rewrite
	// uses in place (the go/ssa idiom).
	Ops() []*Value
	// Parent returns the containing basic block.
	Parent() *Block
	// setParent is used by Block when appending.
	setParent(*Block)
	// InstrPos returns the source position for diagnostics.
	InstrPos() Pos
	// String returns the printed form.
	String() string
}

// register is the common embedded state of value-producing instructions.
type register struct {
	name   string
	typ    Type
	pos    Pos
	parent *Block
}

// Name returns "%name".
func (r *register) Name() string { return "%" + r.name }

// Type returns the result type.
func (r *register) Type() Type { return r.typ }

// Parent returns the containing block.
func (r *register) Parent() *Block { return r.parent }

func (r *register) setParent(b *Block) { r.parent = b }

// InstrPos returns the source position.
func (r *register) InstrPos() Pos { return r.pos }

// SetName renames the result register (used when cloning).
func (r *register) SetName(n string) { r.name = n }

// noResult is the common embedded state of instructions without a result.
type noResult struct {
	pos    Pos
	parent *Block
}

// Parent returns the containing block.
func (n *noResult) Parent() *Block { return n.parent }

func (n *noResult) setParent(b *Block) { n.parent = b }

// InstrPos returns the source position.
func (n *noResult) InstrPos() Pos { return n.pos }

// BinOpKind enumerates the arithmetic and bitwise operations.
type BinOpKind int

// Binary operation kinds.
const (
	OpAdd BinOpKind = iota + 1
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
)

var binOpNames = map[BinOpKind]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
}

// String returns the mnemonic.
func (k BinOpKind) String() string { return binOpNames[k] }

// CmpPred enumerates comparison predicates (signed semantics).
type CmpPred int

// Comparison predicates.
const (
	CmpEq CmpPred = iota + 1
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = map[CmpPred]string{
	CmpEq: "eq", CmpNe: "ne", CmpLt: "lt", CmpLe: "le", CmpGt: "gt", CmpGe: "ge",
}

// String returns the mnemonic.
func (p CmpPred) String() string { return cmpNames[p] }

// Alloca allocates a local variable on the (simulated) stack and yields its
// address. Color is the explicit annotation; uncolored allocas whose address
// is never taken are promoted to registers by mem2reg and then inferred.
type Alloca struct {
	register
	Elem  Type
	Color Color
}

// Ops returns no operands.
func (a *Alloca) Ops() []*Value { return nil }

// String prints the instruction.
func (a *Alloca) String() string {
	c := ""
	if !a.Color.IsNone() {
		c = fmt.Sprintf(" color(%s)", a.Color)
	}
	return fmt.Sprintf("%s = alloca %s%s", a.Name(), a.Elem, c)
}

// Malloc allocates heap memory for Count elements of Elem (Count may be nil
// for a single element) and yields the address. The partitioner retargets
// allocation sites of multi-color structs (paper §7.2).
type Malloc struct {
	register
	Elem  Type
	Color Color
	Count Value // may be nil
}

// Ops returns the optional count operand.
func (m *Malloc) Ops() []*Value {
	if m.Count == nil {
		return nil
	}
	return []*Value{&m.Count}
}

// String prints the instruction.
func (m *Malloc) String() string {
	c := ""
	if !m.Color.IsNone() {
		c = fmt.Sprintf(" color(%s)", m.Color)
	}
	n := ""
	if m.Count != nil {
		n = ", " + m.Count.Name()
	}
	return fmt.Sprintf("%s = malloc %s%s%s", m.Name(), m.Elem, c, n)
}

// Free releases heap memory.
type Free struct {
	noResult
	Ptr Value
}

// Ops returns the pointer operand.
func (f *Free) Ops() []*Value { return []*Value{&f.Ptr} }

// String prints the instruction.
func (f *Free) String() string { return fmt.Sprintf("free %s", f.Ptr.Name()) }

// Load reads the value at Ptr.
type Load struct {
	register
	Ptr Value
}

// Ops returns the pointer operand.
func (l *Load) Ops() []*Value { return []*Value{&l.Ptr} }

// String prints the instruction.
func (l *Load) String() string {
	return fmt.Sprintf("%s = load %s, %s", l.Name(), l.typ, l.Ptr.Name())
}

// Store writes Val to the location Ptr.
type Store struct {
	noResult
	Val Value
	Ptr Value
}

// Ops returns the value and pointer operands.
func (s *Store) Ops() []*Value { return []*Value{&s.Val, &s.Ptr} }

// String prints the instruction.
func (s *Store) String() string {
	return fmt.Sprintf("store %s, %s", s.Val.Name(), s.Ptr.Name())
}

// BinOp computes X op Y.
type BinOp struct {
	register
	Op BinOpKind
	X  Value
	Y  Value
}

// Ops returns both operands.
func (b *BinOp) Ops() []*Value { return []*Value{&b.X, &b.Y} }

// String prints the instruction.
func (b *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s, %s", b.Name(), b.Op, b.X.Name(), b.Y.Name())
}

// Cmp compares X and Y, producing an i1.
type Cmp struct {
	register
	Pred CmpPred
	X    Value
	Y    Value
}

// Ops returns both operands.
func (c *Cmp) Ops() []*Value { return []*Value{&c.X, &c.Y} }

// String prints the instruction.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s = cmp %s %s, %s", c.Name(), c.Pred, c.X.Name(), c.Y.Name())
}

// Cast converts Val to the result type (int width changes, int<->float,
// pointer casts). The typing rules guarantee casts cannot change a color
// (paper §4, fourth rule).
type Cast struct {
	register
	Val Value
}

// Ops returns the operand.
func (c *Cast) Ops() []*Value { return []*Value{&c.Val} }

// String prints the instruction.
func (c *Cast) String() string {
	return fmt.Sprintf("%s = cast %s to %s", c.Name(), c.Val.Name(), c.typ)
}

// FieldAddr computes the address of field Index of the struct pointed to by
// X (a struct-typed GEP). Its result type carries the field's color.
type FieldAddr struct {
	register
	X     Value
	Index int
}

// Ops returns the base pointer operand.
func (f *FieldAddr) Ops() []*Value { return []*Value{&f.X} }

// Struct returns the struct type being addressed.
func (f *FieldAddr) Struct() *StructType {
	pt := f.X.Type().(PointerType)
	return pt.Elem.(*StructType)
}

// String prints the instruction.
func (f *FieldAddr) String() string {
	return fmt.Sprintf("%s = fieldaddr %s, %d (%s)", f.Name(), f.X.Name(), f.Index, f.Struct().Fields[f.Index].Name)
}

// IndexAddr computes the address of element Index of the array (or the
// pointed-to buffer) at X.
type IndexAddr struct {
	register
	X     Value
	Index Value
}

// Ops returns the base pointer and index operands.
func (i *IndexAddr) Ops() []*Value { return []*Value{&i.X, &i.Index} }

// String prints the instruction.
func (i *IndexAddr) String() string {
	return fmt.Sprintf("%s = indexaddr %s, %s", i.Name(), i.X.Name(), i.Index.Name())
}

// Call invokes Callee (a *Function for direct calls, any pointer-typed
// register for indirect calls) with Args.
type Call struct {
	register
	Callee Value
	Args   []Value
}

// Ops returns the callee followed by the arguments.
func (c *Call) Ops() []*Value {
	out := make([]*Value, 0, len(c.Args)+1)
	out = append(out, &c.Callee)
	for i := range c.Args {
		out = append(out, &c.Args[i])
	}
	return out
}

// IsIndirect reports whether the callee is not a direct function reference.
func (c *Call) IsIndirect() bool {
	_, ok := c.Callee.(*Function)
	return !ok
}

// String prints the instruction.
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Name()
	}
	lhs := ""
	if _, isVoid := c.typ.(VoidType); !isVoid {
		lhs = c.Name() + " = "
	}
	return fmt.Sprintf("%scall %s(%s)", lhs, c.Callee.Name(), strings.Join(args, ", "))
}

// Ret returns from the function with an optional value.
type Ret struct {
	noResult
	Val Value // nil for void returns
}

// Ops returns the optional result operand.
func (r *Ret) Ops() []*Value {
	if r.Val == nil {
		return nil
	}
	return []*Value{&r.Val}
}

// String prints the instruction.
func (r *Ret) String() string {
	if r.Val == nil {
		return "ret void"
	}
	return fmt.Sprintf("ret %s", r.Val.Name())
}

// Br jumps unconditionally to Target.
type Br struct {
	noResult
	Target *Block
}

// Ops returns no value operands.
func (b *Br) Ops() []*Value { return nil }

// String prints the instruction.
func (b *Br) String() string { return fmt.Sprintf("br %%%s", b.Target.BName) }

// CondBr jumps to Then when Cond is non-zero, otherwise to Else. A CondBr
// on a colored register colors the dominated region (paper Rule 4).
type CondBr struct {
	noResult
	Cond Value
	Then *Block
	Else *Block
}

// Ops returns the condition operand.
func (b *CondBr) Ops() []*Value { return []*Value{&b.Cond} }

// String prints the instruction.
func (b *CondBr) String() string {
	return fmt.Sprintf("condbr %s, %%%s, %%%s", b.Cond.Name(), b.Then.BName, b.Else.BName)
}

// PhiEdge is one incoming (predecessor, value) pair of a Phi.
type PhiEdge struct {
	Pred *Block
	Val  Value
}

// Phi merges values flowing in from predecessor blocks (SSA φ-node;
// introduced by mem2reg).
type Phi struct {
	register
	Edges []PhiEdge
}

// Ops returns the incoming value slots.
func (p *Phi) Ops() []*Value {
	out := make([]*Value, len(p.Edges))
	for i := range p.Edges {
		out[i] = &p.Edges[i].Val
	}
	return out
}

// String prints the instruction.
func (p *Phi) String() string {
	parts := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		parts[i] = fmt.Sprintf("[%s, %%%s]", e.Val.Name(), e.Pred.BName)
	}
	return fmt.Sprintf("%s = phi %s", p.Name(), strings.Join(parts, ", "))
}

// IsTerminator reports whether the instruction ends a basic block.
func IsTerminator(in Instr) bool {
	switch in.(type) {
	case *Ret, *Br, *CondBr:
		return true
	}
	return false
}
