package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStructLayout(t *testing.T) {
	st := NewStruct("account", []Field{
		{Name: "name", Type: ArrayType{Elem: I8, Len: 256}, Color: Named("blue")},
		{Name: "balance", Type: F64, Color: Named("red")},
	})
	if st.Fields[0].Offset != 0 {
		t.Errorf("name offset = %d", st.Fields[0].Offset)
	}
	if st.Fields[1].Offset != 256 {
		t.Errorf("balance offset = %d, want 256 (aligned)", st.Fields[1].Offset)
	}
	if st.Size() != 264 {
		t.Errorf("size = %d, want 264", st.Size())
	}
	if got := st.Colors(); len(got) != 2 {
		t.Errorf("Colors() = %v", got)
	}
}

func TestStructPadding(t *testing.T) {
	st := NewStruct("padded", []Field{
		{Name: "c", Type: I8},
		{Name: "x", Type: I64},
		{Name: "c2", Type: I8},
	})
	if st.Fields[1].Offset != 8 {
		t.Errorf("x offset = %d, want 8", st.Fields[1].Offset)
	}
	if st.Size() != 24 {
		t.Errorf("size = %d, want 24 (tail padding)", st.Size())
	}
}

func TestTypesEqual(t *testing.T) {
	cases := []struct {
		a, b Type
		want bool
	}{
		{I64, I64, true},
		{I64, I32, false},
		{PtrTo(I8), PtrTo(I8), true},
		{PtrToColored(I8, Named("blue")), PtrTo(I8), false},
		{PtrToColored(I8, Named("blue")), PtrToColored(I8, Named("blue")), true},
		{ArrayType{Elem: I8, Len: 4}, ArrayType{Elem: I8, Len: 4}, true},
		{ArrayType{Elem: I8, Len: 4}, ArrayType{Elem: I8, Len: 5}, false},
		{FuncType{Ret: Void}, FuncType{Ret: Void}, true},
		{FuncType{Ret: Void, Variadic: true}, FuncType{Ret: Void}, false},
	}
	for _, c := range cases {
		if got := TypesEqual(c.a, c.b); got != c.want {
			t.Errorf("TypesEqual(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestColorCompatibility(t *testing.T) {
	blue, red := Named("blue"), Named("red")
	cases := []struct {
		a, b Color
		want bool
	}{
		{F, blue, true},
		{blue, F, true},
		{blue, blue, true},
		{blue, red, false},
		{U, blue, false},
		{S, U, false},
		{F, F, true},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// buildDiamond creates entry -> (then|else) -> join, ret.
func buildDiamond() (*Function, *Block, *Block, *Block, *Block) {
	f := NewFunction("d", I64, []*Param{{PName: "a", Typ: I64}})
	b := NewBuilder(f)
	entry := b.Cur
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	cond := b.Cmp(CmpGt, f.Params[0], I64Const(0))
	b.CondBr(cond, then, els)
	b.At(then)
	b.Br(join)
	b.At(els)
	b.Br(join)
	b.At(join)
	b.Ret(I64Const(0))
	f.ComputeCFG()
	return f, entry, then, els, join
}

func TestDominators(t *testing.T) {
	f, entry, then, els, join := buildDiamond()
	dom := Dominators(f)
	if dom.Idom(then) != entry || dom.Idom(els) != entry {
		t.Error("branches not dominated by entry")
	}
	if dom.Idom(join) != entry {
		t.Errorf("join idom = %v, want entry", dom.Idom(join))
	}
	if !dom.Dominates(entry, join) || dom.Dominates(then, join) {
		t.Error("dominance relation wrong")
	}
	// Dominance frontier of then/else is join.
	fr := dom.Frontier(then)
	if len(fr) != 1 || fr[0] != join {
		t.Errorf("frontier(then) = %v, want [join]", fr)
	}
}

func TestPostDominators(t *testing.T) {
	f, entry, then, els, join := buildDiamond()
	pdom := PostDominators(f)
	// The joining point of the branch is the immediate post-dominator of
	// the entry — the Rule 4 region boundary.
	if pdom.Idom(entry) != join {
		t.Errorf("ipdom(entry) = %v, want join", pdom.Idom(entry))
	}
	if pdom.Idom(then) != join || pdom.Idom(els) != join {
		t.Error("branch blocks not post-dominated by join")
	}
}

func TestCloneFunction(t *testing.T) {
	f, _, _, _, _ := buildDiamond()
	clone, vmap := CloneFunction(f, "d2")
	if clone.FName != "d2" || len(clone.Blocks) != len(f.Blocks) {
		t.Fatal("clone shape wrong")
	}
	// Mutating the clone must not touch the original.
	clone.Blocks[0].Instrs = clone.Blocks[0].Instrs[:0]
	if len(f.Blocks[0].Instrs) == 0 {
		t.Error("clone shares instruction slices with the original")
	}
	if vmap[f.Params[0]] == nil {
		t.Error("params not mapped")
	}
	if err := VerifyFunc(f); err != nil {
		t.Errorf("original damaged: %v", err)
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	f := NewFunction("bad", Void, nil)
	b := NewBuilder(f)
	blk := b.Cur
	_ = blk
	// Block without terminator.
	b.BinOp(OpAdd, I64Const(1), I64Const(2))
	if err := VerifyFunc(f); err == nil {
		t.Error("unterminated block accepted")
	}
	b.Ret(nil)
	if err := VerifyFunc(f); err != nil {
		t.Errorf("now valid, got %v", err)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := NewFunction("u", Void, nil)
	b := NewBuilder(f)
	b.Ret(nil)
	dead := f.NewBlock("dead")
	b.At(dead)
	b.Ret(nil)
	if n := f.RemoveUnreachable(); n != 1 {
		t.Errorf("removed %d blocks, want 1", n)
	}
}

func TestPrinterRoundTrip(t *testing.T) {
	f, _, _, _, _ := buildDiamond()
	m := NewModule("m")
	m.AddFunc(f)
	m.AddGlobal(&Global{GName: "g", Elem: I64, Color: Named("blue")})
	out := m.String()
	for _, frag := range []string{"@d", "condbr", "color(blue)", "@g"} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed module missing %q:\n%s", frag, out)
		}
	}
}

func TestInternString(t *testing.T) {
	m := NewModule("m")
	a := m.InternString("hello")
	b := m.InternString("hello")
	c := m.InternString("world")
	if a != b {
		t.Error("same literal interned twice")
	}
	if a == c {
		t.Error("different literals shared")
	}
}

// TestPtrEncodeQuick is a property test: struct layout respects alignment
// invariants for arbitrary field mixes.
func TestLayoutInvariantsQuick(t *testing.T) {
	f := func(kinds []uint8) bool {
		var fields []Field
		for i, k := range kinds {
			var ft Type
			switch k % 4 {
			case 0:
				ft = I8
			case 1:
				ft = I32
			case 2:
				ft = I64
			case 3:
				ft = F64
			}
			fields = append(fields, Field{Name: string(rune('a' + i%26)), Type: ft})
		}
		st := NewStruct("q", fields)
		var prevEnd int64
		for _, fl := range st.Fields {
			if fl.Offset%fl.Type.Align() != 0 {
				return false // misaligned
			}
			if fl.Offset < prevEnd {
				return false // overlapping
			}
			prevEnd = fl.Offset + fl.Type.Size()
		}
		return st.Size() >= prevEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
