package ir

import (
	"fmt"
	"sort"
)

// Module is a whole-program unit: the analogue of the single LLVM bitcode
// file Privagic consumes (paper §5, Figure 5).
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Function
	Structs []*StructType

	nextGlobalID int
}

// NewModule creates an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.FName == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.GName == name {
			return g
		}
	}
	return nil
}

// Struct returns the named struct type, or nil.
func (m *Module) Struct(name string) *StructType {
	for _, s := range m.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddGlobal registers a global variable definition.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	return g
}

// AddStruct registers a named struct type.
func (m *Module) AddStruct(s *StructType) *StructType {
	m.Structs = append(m.Structs, s)
	return s
}

// AddFunc registers a function.
func (m *Module) AddFunc(f *Function) *Function {
	f.Module = m
	m.Funcs = append(m.Funcs, f)
	return f
}

// InternString interns a string literal as a byte-array global in unsafe
// memory and returns the global.
func (m *Module) InternString(s string) *Global {
	for _, g := range m.Globals {
		if g.InitBytes != nil && string(g.InitBytes) == s+"\x00" {
			return g
		}
	}
	m.nextGlobalID++
	g := &Global{
		GName:     fmt.Sprintf(".str%d", m.nextGlobalID),
		Elem:      ArrayType{Elem: I8, Len: int64(len(s) + 1)},
		InitBytes: append([]byte(s), 0),
	}
	return m.AddGlobal(g)
}

// EntryPoints returns the functions that may be called from outside the
// analyzed program (paper §6.2): functions explicitly marked Entry, or, if
// none is marked, every defined non-static function.
func (m *Module) EntryPoints() []*Function {
	var marked, all []*Function
	for _, f := range m.Funcs {
		if f.External || f.Static {
			continue
		}
		all = append(all, f)
		if f.Entry {
			marked = append(marked, f)
		}
	}
	if len(marked) > 0 {
		return marked
	}
	return all
}

// SortedFuncs returns the functions ordered by name, for deterministic
// iteration in analyses and printing.
func (m *Module) SortedFuncs() []*Function {
	out := make([]*Function, len(m.Funcs))
	copy(out, m.Funcs)
	sort.Slice(out, func(i, j int) bool { return out[i].FName < out[j].FName })
	return out
}

// Function is a definition (with Blocks) or an external declaration
// (External == true, no Blocks).
type Function struct {
	FName  string
	Params []*Param
	RetTyp Type
	Blocks []*Block
	Module *Module
	Pos    Pos

	// External marks a declaration whose body is not in the module; the
	// analysis treats calls to it as calls into the untrusted part
	// (paper §6.3) unless Within or Ignore is set.
	External bool
	// Within marks an external function also available inside enclaves
	// (the mini-libc of the Intel SDK, paper §6.3).
	Within bool
	// Ignore marks a communication function whose incompatible arguments
	// are deliberately ignored, enabling classify/declassify (paper §6.4).
	Ignore bool
	// Entry marks an explicit entry point (paper §6.2).
	Entry bool
	// Static excludes the function from the default entry-point set (a
	// C static function is not callable from another project).
	Static bool
	// RetColor is an optional annotation on the return value's color.
	RetColor Color
	// Variadic marks printf-style declarations.
	Variadic bool

	nextReg   int
	nextBlock int
}

// NewFunction creates a function definition or declaration.
func NewFunction(name string, ret Type, params []*Param) *Function {
	for i, p := range params {
		p.Index = i
	}
	return &Function{FName: name, Params: params, RetTyp: ret}
}

// Name returns "@name"; a Function is a Value usable as a call target or a
// function pointer.
func (f *Function) Name() string { return "@" + f.FName }

// Type returns the function's type.
func (f *Function) Type() Type { return f.Signature() }

// Signature returns the FuncType of the function.
func (f *Function) Signature() FuncType {
	ps := make([]Type, len(f.Params))
	for i, p := range f.Params {
		ps[i] = p.Typ
	}
	return FuncType{Params: ps, Ret: f.RetTyp, Variadic: f.Variadic}
}

// NewBlock appends a new basic block with a unique name derived from hint.
func (f *Function) NewBlock(hint string) *Block {
	f.nextBlock++
	b := &Block{BName: fmt.Sprintf("%s%d", hint, f.nextBlock), Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block (the first block), or nil for declarations.
func (f *Function) EntryBlock() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// regName allocates a fresh register name.
func (f *Function) regName() string {
	f.nextReg++
	return fmt.Sprintf("t%d", f.nextReg)
}

// Instrs calls fn for every instruction in the function in block order.
func (f *Function) Instrs(fn func(*Block, Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(b, in)
		}
	}
}

// Block is a basic block: a straight-line instruction sequence ended by a
// terminator (paper footnote 4).
type Block struct {
	BName  string
	Func   *Function
	Instrs []Instr

	// preds/succs are computed by ComputeCFG.
	preds []*Block
	succs []*Block
}

// Append adds an instruction at the end of the block.
func (b *Block) Append(in Instr) {
	in.setParent(b)
	b.Instrs = append(b.Instrs, in)
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if IsTerminator(last) {
		return last
	}
	return nil
}

// Preds returns the predecessor blocks (valid after ComputeCFG).
func (b *Block) Preds() []*Block { return b.preds }

// Succs returns the successor blocks (valid after ComputeCFG).
func (b *Block) Succs() []*Block { return b.succs }

// ComputeCFG (re)computes predecessor/successor edges for every block.
func (f *Function) ComputeCFG() {
	for _, b := range f.Blocks {
		b.preds = b.preds[:0]
		b.succs = b.succs[:0]
	}
	for _, b := range f.Blocks {
		switch t := b.Terminator().(type) {
		case *Br:
			b.succs = append(b.succs, t.Target)
			t.Target.preds = append(t.Target.preds, b)
		case *CondBr:
			b.succs = append(b.succs, t.Then, t.Else)
			t.Then.preds = append(t.Then.preds, b)
			if t.Else != t.Then {
				t.Else.preds = append(t.Else.preds, b)
			}
		}
	}
}

// RemoveUnreachable drops blocks not reachable from the entry and fixes up
// phi edges referring to removed predecessors. It returns the number of
// blocks removed.
func (f *Function) RemoveUnreachable() int {
	if len(f.Blocks) == 0 {
		return 0
	}
	f.ComputeCFG()
	live := map[*Block]bool{}
	stack := []*Block{f.Blocks[0]}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live[b] {
			continue
		}
		live[b] = true
		stack = append(stack, b.succs...)
	}
	var kept []*Block
	removed := 0
	for _, b := range f.Blocks {
		if live[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	f.Blocks = kept
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			phi, ok := in.(*Phi)
			if !ok {
				continue
			}
			var edges []PhiEdge
			for _, e := range phi.Edges {
				if live[e.Pred] {
					edges = append(edges, e)
				}
			}
			phi.Edges = edges
		}
	}
	f.ComputeCFG()
	return removed
}
