package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule reads the textual IR form produced by Module.String — the
// reproduction's analogue of the LLVM bitcode file the Privagic compiler
// consumes (paper Figure 5). Print and parse round-trip, so modules can be
// stored, inspected and hand-written at the IR level, bypassing MiniC.
func ParseModule(name, src string) (*Module, error) {
	p := &irParser{mod: NewModule(name)}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
		case strings.HasPrefix(line, "%"): // struct type
			if err := p.parseStruct(line, i+1); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "@"): // global
			if err := p.parseGlobal(line, i+1); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "declare "):
			if err := p.parseDeclare(line, i+1); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "define "):
			end, err := p.parseDefine(lines, i)
			if err != nil {
				return nil, err
			}
			i = end
		default:
			return nil, fmt.Errorf("ir: line %d: unexpected %q", i+1, line)
		}
	}
	if err := Verify(p.mod); err != nil {
		return nil, fmt.Errorf("ir: parsed module invalid: %w", err)
	}
	return p.mod, nil
}

type irParser struct {
	mod *Module
	// phiTypes carries φ result types between parsing attempts of one
	// function body; phiTypesGrew signals an attempt refined one.
	phiTypes     map[string]Type
	phiTypesGrew bool
}

func (p *irParser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseType parses a type spelling: void, iN, fN, [N x T], %struct, T*,
// T color(c)*, and ret(params) function types.
func (p *irParser) parseType(s string, line int) (Type, error) {
	s = strings.TrimSpace(s)
	// Pointer suffixes bind last.
	if strings.HasSuffix(s, "*") {
		body := strings.TrimSuffix(s, "*")
		color := None
		if idx := strings.LastIndex(body, " color("); idx >= 0 && strings.HasSuffix(body, ")") {
			color = parseColorName(body[idx+7 : len(body)-1])
			body = body[:idx]
		}
		elem, err := p.parseType(body, line)
		if err != nil {
			return nil, err
		}
		return PtrToColored(elem, color), nil
	}
	switch {
	case s == "void":
		return Void, nil
	case strings.HasPrefix(s, "["):
		// [N x T]
		inner := strings.TrimSuffix(strings.TrimPrefix(s, "["), "]")
		parts := strings.SplitN(inner, " x ", 2)
		if len(parts) != 2 {
			return nil, p.errf(line, "bad array type %q", s)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, p.errf(line, "bad array length in %q", s)
		}
		elem, err := p.parseType(parts[1], line)
		if err != nil {
			return nil, err
		}
		return ArrayType{Elem: elem, Len: n}, nil
	case strings.HasPrefix(s, "%"):
		st := p.mod.Struct(s[1:])
		if st == nil {
			// Forward reference: create a shell.
			st = &StructType{Name: s[1:]}
			p.mod.AddStruct(st)
		}
		return st, nil
	case strings.HasPrefix(s, "i"):
		bits, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, p.errf(line, "bad int type %q", s)
		}
		return IntType{Bits: bits}, nil
	case strings.HasPrefix(s, "f"):
		bits, err := strconv.Atoi(s[1:])
		if err != nil {
			return nil, p.errf(line, "bad float type %q", s)
		}
		return FloatType{Bits: bits}, nil
	case strings.Contains(s, "("):
		// Function type ret(params).
		open := strings.Index(s, "(")
		ret, err := p.parseType(s[:open], line)
		if err != nil {
			return nil, err
		}
		ft := FuncType{Ret: ret}
		inner := strings.TrimSuffix(s[open+1:], ")")
		for _, part := range splitTop(inner) {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if part == "..." {
				ft.Variadic = true
				continue
			}
			pt, err := p.parseType(part, line)
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, pt)
		}
		return ft, nil
	}
	return nil, p.errf(line, "unknown type %q", s)
}

func parseColorName(name string) Color {
	switch name {
	case "U":
		return U
	case "S":
		return S
	case "F":
		return F
	default:
		return Named(name)
	}
}

// splitTop splits on commas not nested in brackets or parentheses.
func splitTop(s string) []string {
	var out []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[last:i])
				last = i + 1
			}
		}
	}
	out = append(out, s[last:])
	return out
}

// parseStruct parses "%name = { color(c) T f, ... }".
func (p *irParser) parseStruct(line string, ln int) error {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return p.errf(ln, "bad struct line %q", line)
	}
	name := strings.TrimSpace(line[1:eq])
	body := strings.TrimSpace(line[eq+1:])
	body = strings.TrimSuffix(strings.TrimPrefix(body, "{"), "}")
	st := p.mod.Struct(name)
	if st == nil {
		st = &StructType{Name: name}
		p.mod.AddStruct(st)
	}
	var fields []Field
	for _, part := range splitTop(body) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		color := None
		if strings.HasPrefix(part, "color(") {
			end := strings.Index(part, ")")
			color = parseColorName(part[6:end])
			part = strings.TrimSpace(part[end+1:])
		}
		sp := strings.LastIndex(part, " ")
		if sp < 0 {
			return p.errf(ln, "bad field %q", part)
		}
		ft, err := p.parseType(part[:sp], ln)
		if err != nil {
			return err
		}
		fields = append(fields, Field{Name: part[sp+1:], Type: ft, Color: color})
	}
	st.SetFields(fields)
	return nil
}

// parseGlobal parses `@g = global T [color(c)] ["bytes"]`.
func (p *irParser) parseGlobal(line string, ln int) error {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return p.errf(ln, "bad global %q", line)
	}
	name := strings.TrimSpace(line[1:eq])
	rest := strings.TrimSpace(line[eq+1:])
	if !strings.HasPrefix(rest, "global ") {
		return p.errf(ln, "bad global %q", line)
	}
	rest = strings.TrimPrefix(rest, "global ")
	g := &Global{GName: name}
	if q := strings.Index(rest, " \""); q >= 0 {
		lit, err := strconv.Unquote(strings.TrimSpace(rest[q+1:]))
		if err != nil {
			return p.errf(ln, "bad string initializer: %v", err)
		}
		g.InitBytes = []byte(lit)
		rest = rest[:q]
	}
	rest = strings.TrimSpace(rest)
	if idx := strings.LastIndex(rest, " color("); idx >= 0 && strings.HasSuffix(rest, ")") {
		g.Color = parseColorName(rest[idx+7 : len(rest)-1])
		rest = rest[:idx]
	}
	t, err := p.parseType(rest, ln)
	if err != nil {
		return err
	}
	g.Elem = t
	p.mod.AddGlobal(g)
	return nil
}

// parseHeader parses "RET @name(params) attrs" shared by declare/define.
func (p *irParser) parseHeader(s string, ln int) (*Function, error) {
	at := strings.Index(s, "@")
	open := strings.Index(s, "(")
	closeIdx := strings.LastIndex(s, ")")
	if at < 0 || open < at || closeIdx < open {
		return nil, p.errf(ln, "bad function header %q", s)
	}
	ret, err := p.parseType(s[:at], ln)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSpace(s[at+1 : open])
	var params []*Param
	for _, part := range splitTop(s[open+1 : closeIdx]) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pct := strings.LastIndex(part, "%")
		if pct < 0 {
			return nil, p.errf(ln, "bad parameter %q", part)
		}
		typeAndColor := strings.TrimSpace(part[:pct])
		color := None
		if idx := strings.LastIndex(typeAndColor, " color("); idx >= 0 && strings.HasSuffix(typeAndColor, ")") {
			color = parseColorName(typeAndColor[idx+7 : len(typeAndColor)-1])
			typeAndColor = typeAndColor[:idx]
		}
		pt, err := p.parseType(typeAndColor, ln)
		if err != nil {
			return nil, err
		}
		params = append(params, &Param{PName: part[pct+1:], Typ: pt, Color: color})
	}
	fn := NewFunction(name, ret, params)
	attrs := strings.Fields(s[closeIdx+1:])
	for _, a := range attrs {
		switch a {
		case "within":
			fn.Within = true
		case "ignore":
			fn.Ignore = true
			fn.Within = true
		case "entry":
			fn.Entry = true
		case "variadic":
			fn.Variadic = true
		case "{":
		default:
			return nil, p.errf(ln, "unknown attribute %q", a)
		}
	}
	return fn, nil
}

func (p *irParser) parseDeclare(line string, ln int) error {
	fn, err := p.parseHeader(strings.TrimPrefix(line, "declare "), ln)
	if err != nil {
		return err
	}
	fn.External = true
	p.mod.AddFunc(fn)
	return nil
}
