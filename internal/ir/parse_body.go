package ir

import (
	"strconv"
	"strings"
)

// parseDefine parses a function definition starting at lines[start];
// returns the index of the closing "}" line. Because a φ's type is only
// known once its edges resolve, the body is parsed up to three times,
// carrying resolved φ types between attempts (loop-carried pointers whose
// first edge is null need the extra round).
func (p *irParser) parseDefine(lines []string, start int) (int, error) {
	end := start + 1
	for ; end < len(lines); end++ {
		if strings.TrimSpace(lines[end]) == "}" {
			break
		}
	}
	p.phiTypes = map[string]Type{}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		fn, changed, err := p.parseDefineOnce(lines, start)
		if err != nil {
			lastErr = err
			if attempt == 2 || !p.phiTypesGrew {
				return 0, err
			}
			continue
		}
		if !changed {
			p.mod.AddFunc(fn)
			return end, nil
		}
		lastErr = nil
		if attempt == 2 {
			p.mod.AddFunc(fn)
			return end, nil
		}
	}
	return 0, lastErr
}

// parseDefineOnce runs one parsing attempt; changed reports whether φ
// types were refined (warranting a re-parse).
func (p *irParser) parseDefineOnce(lines []string, start int) (*Function, bool, error) {
	p.phiTypesGrew = false
	header := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(lines[start]), "define "))
	fn, err := p.parseHeader(header, start+1)
	if err != nil {
		return nil, false, err
	}

	env := map[string]Value{}
	for _, pr := range fn.Params {
		env[pr.PName] = pr
	}
	blocks := map[string]*Block{}
	getBlock := func(name string) *Block {
		if b := blocks[name]; b != nil {
			return b
		}
		b := &Block{BName: name, Func: fn}
		blocks[name] = b
		return b
	}
	type phiFix struct {
		phi   *Phi
		edges []struct{ val, pred string }
		line  int
	}
	var fixups []phiFix
	var cur *Block

	i := start + 1
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "}" {
			break
		}
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasSuffix(line, ":") {
			cur = getBlock(strings.TrimSuffix(line, ":"))
			fn.Blocks = append(fn.Blocks, cur)
			continue
		}
		if cur == nil {
			return nil, false, p.errf(i+1, "instruction before first block label")
		}
		in, fix, err := p.parseInstr(fn, env, getBlock, line, i+1)
		if err != nil {
			return nil, false, err
		}
		if fix != nil {
			fixups = append(fixups, phiFix{phi: in.(*Phi), edges: fix, line: i + 1})
		}
		cur.Append(in)
		if v, ok := in.(Value); ok {
			name := strings.TrimPrefix(v.Name(), "%")
			env[name] = v
		}
	}
	// Resolve phi edges now that every register exists.
	changed := false
	for _, f := range fixups {
		for _, e := range f.edges {
			val, err := p.resolveValue(env, e.val, f.line, f.phi.typ)
			if err != nil {
				return nil, false, err
			}
			f.phi.Edges = append(f.phi.Edges, PhiEdge{Val: val, Pred: getBlock(e.pred)})
		}
		// The definitive φ type is the type of a register edge.
		name := strings.TrimPrefix(f.phi.Name(), "%")
		for _, e := range f.phi.Edges {
			switch e.Val.(type) {
			case *ConstInt, *ConstFloat, *Null:
				continue
			}
			if !TypesEqual(f.phi.typ, e.Val.Type()) {
				f.phi.typ = e.Val.Type()
			}
			if prev, ok := p.phiTypes[name]; !ok || !TypesEqual(prev, f.phi.typ) {
				p.phiTypes[name] = f.phi.typ
				changed = true
				p.phiTypesGrew = true
			}
			break
		}
	}
	fn.ComputeCFG()
	return fn, changed, nil
}

// resolveValue parses an operand: %reg, @global/@function, integer, float,
// or null. want provides the type context for literals (may be nil).
func (p *irParser) resolveValue(env map[string]Value, s string, ln int, want Type) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "null":
		pt, ok := want.(PointerType)
		if !ok {
			pt = PtrTo(I8)
		}
		return &Null{Typ: pt}, nil
	case strings.HasPrefix(s, "%"):
		v, ok := env[s[1:]]
		if !ok {
			return nil, p.errf(ln, "undefined register %s", s)
		}
		return v, nil
	case strings.HasPrefix(s, "@"):
		if g := p.mod.Global(s[1:]); g != nil {
			return g, nil
		}
		if f := p.mod.Func(s[1:]); f != nil {
			return f, nil
		}
		return nil, p.errf(ln, "undefined global %s", s)
	case strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x"):
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, p.errf(ln, "bad literal %q", s)
		}
		ft, ok := want.(FloatType)
		if !ok {
			ft = F64
		}
		return &ConstFloat{Typ: ft, V: f}, nil
	default:
		n, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(s, 64)
			if ferr == nil {
				ft, ok := want.(FloatType)
				if !ok {
					ft = F64
				}
				return &ConstFloat{Typ: ft, V: f}, nil
			}
			return nil, p.errf(ln, "bad literal %q", s)
		}
		it, ok := want.(IntType)
		if !ok {
			if ft, isF := want.(FloatType); isF {
				return &ConstFloat{Typ: ft, V: float64(n)}, nil
			}
			it = I64
		}
		return &ConstInt{Typ: it, V: n}, nil
	}
}

// parseInstr parses one instruction line. For φ-nodes it returns the edge
// strings for later fixup (their operands may not be defined yet).
func (p *irParser) parseInstr(fn *Function, env map[string]Value, getBlock func(string) *Block, line string, ln int) (Instr, []struct{ val, pred string }, error) {
	resultName := ""
	body := line
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, " = ")
		if eq < 0 {
			return nil, nil, p.errf(ln, "bad instruction %q", line)
		}
		resultName = line[1:eq]
		body = line[eq+3:]
	}
	op, rest, _ := strings.Cut(body, " ")
	setReg := func(r *register, typ Type) {
		r.name = resultName
		r.typ = typ
	}

	switch op {
	case "ret":
		if strings.TrimSpace(rest) == "void" {
			return &Ret{}, nil, nil
		}
		v, err := p.resolveValue(env, rest, ln, fn.RetTyp)
		if err != nil {
			return nil, nil, err
		}
		return &Ret{Val: v}, nil, nil

	case "br":
		return &Br{Target: getBlock(strings.TrimPrefix(strings.TrimSpace(rest), "%"))}, nil, nil

	case "condbr":
		parts := splitTop(rest)
		if len(parts) != 3 {
			return nil, nil, p.errf(ln, "bad condbr %q", line)
		}
		cond, err := p.resolveValue(env, parts[0], ln, I1)
		if err != nil {
			return nil, nil, err
		}
		return &CondBr{
			Cond: cond,
			Then: getBlock(strings.TrimPrefix(strings.TrimSpace(parts[1]), "%")),
			Else: getBlock(strings.TrimPrefix(strings.TrimSpace(parts[2]), "%")),
		}, nil, nil

	case "free":
		v, err := p.resolveValue(env, rest, ln, nil)
		if err != nil {
			return nil, nil, err
		}
		return &Free{Ptr: v}, nil, nil

	case "store":
		parts := splitTop(rest)
		if len(parts) != 2 {
			return nil, nil, p.errf(ln, "bad store %q", line)
		}
		ptr, err := p.resolveValue(env, parts[1], ln, nil)
		if err != nil {
			return nil, nil, err
		}
		var want Type
		if pt, ok := ptr.Type().(PointerType); ok {
			want = pt.Elem
		}
		v, err := p.resolveValue(env, parts[0], ln, want)
		if err != nil {
			return nil, nil, err
		}
		return &Store{Val: v, Ptr: ptr}, nil, nil

	case "load":
		// load TYPE, PTR
		parts := splitTop(rest)
		if len(parts) != 2 {
			return nil, nil, p.errf(ln, "bad load %q", line)
		}
		typ, err := p.parseType(parts[0], ln)
		if err != nil {
			return nil, nil, err
		}
		ptr, err := p.resolveValue(env, parts[1], ln, nil)
		if err != nil {
			return nil, nil, err
		}
		in := &Load{Ptr: ptr}
		setReg(&in.register, typ)
		return in, nil, nil

	case "alloca", "malloc":
		// alloca TYPE [color(c)] | malloc TYPE [color(c)][, count]
		parts := splitTop(rest)
		spec := strings.TrimSpace(parts[0])
		color := None
		if idx := strings.LastIndex(spec, " color("); idx >= 0 && strings.HasSuffix(spec, ")") {
			color = parseColorName(spec[idx+7 : len(spec)-1])
			spec = spec[:idx]
		}
		typ, err := p.parseType(spec, ln)
		if err != nil {
			return nil, nil, err
		}
		if op == "alloca" {
			in := &Alloca{Elem: typ, Color: color}
			setReg(&in.register, PtrToColored(typ, color))
			return in, nil, nil
		}
		in := &Malloc{Elem: typ, Color: color}
		if len(parts) == 2 {
			cnt, err := p.resolveValue(env, parts[1], ln, I64)
			if err != nil {
				return nil, nil, err
			}
			in.Count = cnt
		}
		setReg(&in.register, PtrToColored(typ, color))
		return in, nil, nil

	case "cast":
		// cast VAL to TYPE
		val, toStr, ok := strings.Cut(rest, " to ")
		if !ok {
			return nil, nil, p.errf(ln, "bad cast %q", line)
		}
		typ, err := p.parseType(toStr, ln)
		if err != nil {
			return nil, nil, err
		}
		v, err := p.resolveValue(env, val, ln, nil)
		if err != nil {
			return nil, nil, err
		}
		in := &Cast{Val: v}
		setReg(&in.register, typ)
		return in, nil, nil

	case "cmp":
		// cmp PRED X, Y
		predStr, operands, _ := strings.Cut(rest, " ")
		var pred CmpPred
		for k, v := range cmpNames {
			if v == predStr {
				pred = k
			}
		}
		if pred == 0 {
			return nil, nil, p.errf(ln, "bad predicate %q", predStr)
		}
		parts := splitTop(operands)
		x, err := p.resolveValue(env, parts[0], ln, nil)
		if err != nil {
			return nil, nil, err
		}
		y, err := p.resolveValue(env, parts[1], ln, x.Type())
		if err != nil {
			return nil, nil, err
		}
		in := &Cmp{Pred: pred, X: x, Y: y}
		setReg(&in.register, I1)
		return in, nil, nil

	case "fieldaddr":
		// fieldaddr BASE, IDX (name)
		if par := strings.Index(rest, "("); par >= 0 {
			rest = strings.TrimSpace(rest[:par])
		}
		parts := splitTop(rest)
		base, err := p.resolveValue(env, parts[0], ln, nil)
		if err != nil {
			return nil, nil, err
		}
		idx, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, nil, p.errf(ln, "bad field index %q", parts[1])
		}
		pt, ok := base.Type().(PointerType)
		if !ok {
			return nil, nil, p.errf(ln, "fieldaddr of non-pointer")
		}
		st, ok := pt.Elem.(*StructType)
		if !ok || idx >= len(st.Fields) {
			return nil, nil, p.errf(ln, "bad fieldaddr target")
		}
		color := st.Fields[idx].Color
		if color.IsNone() {
			color = pt.Color
		}
		in := &FieldAddr{X: base, Index: idx}
		setReg(&in.register, PtrToColored(st.Fields[idx].Type, color))
		return in, nil, nil

	case "indexaddr":
		parts := splitTop(rest)
		base, err := p.resolveValue(env, parts[0], ln, nil)
		if err != nil {
			return nil, nil, err
		}
		idx, err := p.resolveValue(env, parts[1], ln, I64)
		if err != nil {
			return nil, nil, err
		}
		pt, ok := base.Type().(PointerType)
		if !ok {
			return nil, nil, p.errf(ln, "indexaddr of non-pointer")
		}
		elem := pt.Elem
		if arr, isArr := elem.(ArrayType); isArr {
			elem = arr.Elem
		}
		in := &IndexAddr{X: base, Index: idx}
		setReg(&in.register, PtrToColored(elem, pt.Color))
		return in, nil, nil

	case "call":
		open := strings.Index(rest, "(")
		closeIdx := strings.LastIndex(rest, ")")
		if open < 0 || closeIdx < open {
			return nil, nil, p.errf(ln, "bad call %q", line)
		}
		callee, err := p.resolveValue(env, rest[:open], ln, nil)
		if err != nil {
			return nil, nil, err
		}
		var sig FuncType
		switch c := callee.(type) {
		case *Function:
			sig = c.Signature()
		default:
			ft, ok := callee.Type().(FuncType)
			if !ok {
				return nil, nil, p.errf(ln, "call of non-function")
			}
			sig = ft
		}
		var args []Value
		for ai, part := range splitTop(rest[open+1 : closeIdx]) {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			var want Type
			if ai < len(sig.Params) {
				want = sig.Params[ai]
			}
			a, err := p.resolveValue(env, part, ln, want)
			if err != nil {
				return nil, nil, err
			}
			args = append(args, a)
		}
		in := &Call{Callee: callee, Args: args}
		name := resultName
		if name == "" {
			name = fn.regName()
		}
		in.register.name = name
		in.register.typ = sig.Ret
		return in, nil, nil

	case "phi":
		var edges []struct{ val, pred string }
		for _, part := range splitTop(rest) {
			part = strings.TrimSpace(part)
			part = strings.TrimSuffix(strings.TrimPrefix(part, "["), "]")
			val, pred, ok := strings.Cut(part, ",")
			if !ok {
				return nil, nil, p.errf(ln, "bad phi edge %q", part)
			}
			edges = append(edges, struct{ val, pred string }{
				strings.TrimSpace(val),
				strings.TrimPrefix(strings.TrimSpace(pred), "%"),
			})
		}
		in := &Phi{}
		setReg(&in.register, I64)
		// The φ's type comes from its edges. Prefer the type learned on
		// a previous parsing attempt; otherwise any register edge that
		// is textually earlier resolves it now (back-edges are fixed up
		// after the body).
		if t, ok := p.phiTypes[resultName]; ok {
			in.register.typ = t
		} else {
			for _, e := range edges {
				v, err := p.resolveValue(env, e.val, ln, nil)
				if err != nil {
					continue
				}
				switch v.(type) {
				case *ConstInt, *ConstFloat, *Null:
					continue
				}
				in.register.typ = v.Type()
				break
			}
		}
		return in, edges, nil
	}

	// Binary operations.
	for k, name := range binOpNames {
		if name == op {
			parts := splitTop(rest)
			if len(parts) != 2 {
				return nil, nil, p.errf(ln, "bad %s %q", op, line)
			}
			x, err := p.resolveValue(env, parts[0], ln, nil)
			if err != nil {
				return nil, nil, err
			}
			y, err := p.resolveValue(env, parts[1], ln, x.Type())
			if err != nil {
				return nil, nil, err
			}
			// Literal-literal: give x the type of y if y is a register.
			if _, xc := x.(*ConstInt); xc {
				if yt, ok := y.Type().(IntType); ok {
					x = &ConstInt{Typ: yt, V: x.(*ConstInt).V}
				}
			}
			in := &BinOp{Op: k, X: x, Y: y}
			setReg(&in.register, x.Type())
			return in, nil, nil
		}
	}
	return nil, nil, p.errf(ln, "unknown instruction %q", line)
}
