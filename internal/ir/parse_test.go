package ir

import (
	"strings"
	"testing"
)

const sampleIR = `
; module sample
%node = { color(blue) i64 key, color(blue) [64 x i8] value, color(blue) %node color(blue)* next }
@head = global %node color(blue)* color(blue)
@counter = global i64
@.str1 = global [6 x i8] "hello\x00"
declare i64 @printf(i8* %a0) within variadic
define i64 @sum(i64 %n) entry {
entry1:
  br %head2
head2:
  %acc = phi [0, %entry1], [%acc2, %body3]
  %i = phi [0, %entry1], [%i2, %body3]
  %c = cmp lt %i, %n
  condbr %c, %body3, %exit4
body3:
  %acc2 = add %acc, %i
  %i2 = add %i, 1
  br %head2
exit4:
  ret %acc
}
`

func TestParseModule(t *testing.T) {
	mod, err := ParseModule("sample", sampleIR)
	if err != nil {
		t.Fatal(err)
	}
	st := mod.Struct("node")
	if st == nil || len(st.Fields) != 3 {
		t.Fatal("struct node not parsed")
	}
	if st.Fields[0].Color != Named("blue") {
		t.Errorf("key color = %v", st.Fields[0].Color)
	}
	// Self-referential pointer field.
	pt, ok := st.Fields[2].Type.(PointerType)
	if !ok || pt.Elem != Type(st) || pt.Color != Named("blue") {
		t.Errorf("next field type = %v", st.Fields[2].Type)
	}
	g := mod.Global("head")
	if g == nil || g.Color != Named("blue") {
		t.Fatalf("head global wrong: %+v", g)
	}
	if s := mod.Global(".str1"); s == nil || string(s.InitBytes) != "hello\x00" {
		t.Errorf("string global wrong")
	}
	pf := mod.Func("printf")
	if pf == nil || !pf.External || !pf.Within || !pf.Variadic {
		t.Errorf("printf attrs wrong: %+v", pf)
	}
	fn := mod.Func("sum")
	if fn == nil || !fn.Entry || len(fn.Blocks) != 4 {
		t.Fatalf("sum wrong")
	}
	if err := VerifyFunc(fn); err != nil {
		t.Fatal(err)
	}
}

// TestParsePrintRoundTrip checks print -> parse -> print is a fixpoint.
func TestParsePrintRoundTrip(t *testing.T) {
	mod, err := ParseModule("sample", sampleIR)
	if err != nil {
		t.Fatal(err)
	}
	printed := mod.String()
	mod2, err := ParseModule("sample", printed)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n--- printed ---\n%s", err, printed)
	}
	printed2 := mod2.String()
	if printed != printed2 {
		t.Errorf("round trip not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"badtype", "@g = global wible\n", "unknown type"},
		{"badinstr", "define void @f() {\nentry:\n  frobnicate %x\n}\n", "unknown instruction"},
		{"undefreg", "define void @f() {\nentry:\n  store %nope, @g\n}\n", "undefined"},
		{"nolabel", "define void @f() {\n  ret void\n}\n", "before first block"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseModule("e", c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q missing %q", err, c.frag)
			}
		})
	}
}
