package ir

import (
	"fmt"
	"strings"
)

// String prints the whole module in a readable LLVM-like syntax.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; module %s\n", m.Name)
	for _, s := range m.Structs {
		b.WriteString(s.Describe())
		b.WriteString("\n")
	}
	for _, g := range m.Globals {
		c := ""
		if !g.Color.IsNone() {
			c = fmt.Sprintf(" color(%s)", g.Color)
		}
		if g.InitBytes != nil {
			fmt.Fprintf(&b, "%s = global %s%s %q\n", g.Name(), g.Elem, c, string(g.InitBytes))
		} else {
			fmt.Fprintf(&b, "%s = global %s%s\n", g.Name(), g.Elem, c)
		}
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String2())
	}
	return b.String()
}

// String2 prints a function definition or declaration. (The name String is
// taken by the Value interface, which prints "@name".)
func (f *Function) String2() string {
	var b strings.Builder
	attrs := ""
	if f.Within {
		attrs += " within"
	}
	if f.Ignore {
		attrs += " ignore"
	}
	if f.Entry {
		attrs += " entry"
	}
	if f.Variadic {
		attrs += " variadic"
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		c := ""
		if !p.Color.IsNone() {
			c = fmt.Sprintf(" color(%s)", p.Color)
		}
		params[i] = fmt.Sprintf("%s%s %s", p.Typ, c, p.Name())
	}
	if f.External {
		fmt.Fprintf(&b, "declare %s @%s(%s)%s\n", f.RetTyp, f.FName, strings.Join(params, ", "), attrs)
		return b.String()
	}
	fmt.Fprintf(&b, "define %s @%s(%s)%s {\n", f.RetTyp, f.FName, strings.Join(params, ", "), attrs)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.BName)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
