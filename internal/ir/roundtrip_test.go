package ir_test

import (
	"testing"

	"privagic/internal/ir"
	"privagic/internal/minic"
	"privagic/internal/passes"
	"privagic/internal/sources"
	"privagic/internal/typing"
)

// TestCorpusRoundTrip compiles every MiniC corpus program, prints its IR,
// re-parses it, and checks the secure type system reaches the same verdict
// and enclave colors on the re-parsed module — the print/parse path is a
// faithful serialization of everything the analysis consumes.
func TestCorpusRoundTrip(t *testing.T) {
	programs := map[string]string{
		"list-plain":       sources.ListPlain,
		"list-colored":     sources.ListColored,
		"treemap-colored":  sources.TreemapColored,
		"hashmap-colored1": sources.HashmapColored1,
		"hashmap-colored2": sources.HashmapColored2,
		"memcached":        sources.MemcachedCoreColored,
	}
	for name, src := range programs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			mod, err := minic.Compile(name+".c", src)
			if err != nil {
				t.Fatal(err)
			}
			passes.RunAll(mod)
			printed := mod.String()
			mod2, err := ir.ParseModule(name, printed)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			mode := typing.Hardened
			if name == "hashmap-colored2" {
				mode = typing.Relaxed
			}
			a1 := typing.Analyze(mod, typing.Options{Mode: mode, Entries: []string{"run_ycsb"}})
			a2 := typing.Analyze(mod2, typing.Options{Mode: mode, Entries: []string{"run_ycsb"}})
			if (a1.Err() == nil) != (a2.Err() == nil) {
				t.Fatalf("verdicts differ: original %v, reparsed %v", a1.Err(), a2.Err())
			}
			if len(a1.Colors) != len(a2.Colors) {
				t.Fatalf("colors differ: %v vs %v", a1.Colors, a2.Colors)
			}
			for i := range a1.Colors {
				if a1.Colors[i] != a2.Colors[i] {
					t.Errorf("color %d differs: %v vs %v", i, a1.Colors[i], a2.Colors[i])
				}
			}
			// Same specialization structure.
			if len(a1.Specs) != len(a2.Specs) {
				t.Errorf("spec counts differ: %d vs %d", len(a1.Specs), len(a2.Specs))
			}
			for k, s1 := range a1.Specs {
				s2 := a2.Specs[k]
				if s2 == nil {
					t.Errorf("spec %s missing after round trip", k)
					continue
				}
				c1, c2 := s1.ColorSet(), s2.ColorSet()
				if len(c1) != len(c2) {
					t.Errorf("%s color sets differ: %v vs %v", k, c1, c2)
				}
			}
		})
	}
}
