package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all IR types. Types are structural
// except for named struct types, which compare by name.
type Type interface {
	// String returns the IR syntax of the type.
	String() string
	// Size returns the size in bytes of a value of this type in the
	// simulated memory.
	Size() int64
	// Align returns the alignment in bytes.
	Align() int64
}

// VoidType is the type of functions that return nothing.
type VoidType struct{}

// IntType is a fixed-width two's-complement integer type (i8 … i64).
type IntType struct {
	Bits int
}

// FloatType is an IEEE-754 floating point type (f32 or f64).
type FloatType struct {
	Bits int
}

// PointerType is a pointer to an element type. Color is the color of the
// pointed-to memory location: a pointer to a blue int ("int color(blue)*"
// in MiniC) has Elem I32 and Color blue. The paper's fourth confidentiality
// rule — a pointer to a C location is itself C — is checked against this
// declared pointee color.
type PointerType struct {
	Elem  Type
	Color Color
}

// ArrayType is a fixed-length inline array.
type ArrayType struct {
	Elem Type
	Len  int64
}

// Field is a struct member. Its Color is the explicit secure-type
// annotation from the source program (paper Figure 1): fields with
// different colors make the struct a multi-color structure (paper §7.2).
type Field struct {
	Name   string
	Type   Type
	Color  Color
	Offset int64 // byte offset, computed by NewStruct
}

// StructType is a nominal aggregate type.
type StructType struct {
	Name   string
	Fields []Field

	size  int64
	align int64
}

// FuncType is the type of functions and function pointers.
type FuncType struct {
	Params   []Type
	Ret      Type // VoidType for no result
	Variadic bool // extra arguments allowed after Params (printf-style)
}

// Common pre-built types.
var (
	Void = VoidType{}
	I1   = IntType{Bits: 1}
	I8   = IntType{Bits: 8}
	I32  = IntType{Bits: 32}
	I64  = IntType{Bits: 64}
	F64  = FloatType{Bits: 64}
)

// PtrTo returns a pointer type to an uncolored elem.
func PtrTo(elem Type) PointerType { return PointerType{Elem: elem} }

// PtrToColored returns a pointer type to elem values living in enclave c.
func PtrToColored(elem Type, c Color) PointerType {
	return PointerType{Elem: elem, Color: c}
}

// String returns "void".
func (VoidType) String() string { return "void" }

// Size returns 0: void values do not exist in memory.
func (VoidType) Size() int64 { return 0 }

// Align returns 1.
func (VoidType) Align() int64 { return 1 }

// String returns the LLVM-style spelling, e.g. "i64".
func (t IntType) String() string { return fmt.Sprintf("i%d", t.Bits) }

// Size returns the byte size (i1 occupies one byte).
func (t IntType) Size() int64 {
	if t.Bits <= 8 {
		return 1
	}
	return int64(t.Bits) / 8
}

// Align returns the natural alignment.
func (t IntType) Align() int64 { return t.Size() }

// String returns "f32" or "f64".
func (t FloatType) String() string { return fmt.Sprintf("f%d", t.Bits) }

// Size returns the byte size.
func (t FloatType) Size() int64 { return int64(t.Bits) / 8 }

// Align returns the natural alignment.
func (t FloatType) Align() int64 { return t.Size() }

// String returns "elem*" or "elem color(c)*".
func (t PointerType) String() string {
	if t.Color.IsNone() {
		return t.Elem.String() + "*"
	}
	return t.Elem.String() + " color(" + t.Color.String() + ")*"
}

// Size returns 8: the simulated machine is 64-bit.
func (t PointerType) Size() int64 { return 8 }

// Align returns 8.
func (t PointerType) Align() int64 { return 8 }

// String returns "[n x elem]".
func (t ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.Len, t.Elem.String())
}

// Size returns Len * sizeof(Elem).
func (t ArrayType) Size() int64 { return t.Len * t.Elem.Size() }

// Align returns the element alignment.
func (t ArrayType) Align() int64 { return t.Elem.Align() }

// NewStruct builds a named struct type, computing field offsets with
// natural alignment (fields aligned to their own alignment, struct size
// rounded up to the max field alignment), like a C compiler would.
func NewStruct(name string, fields []Field) *StructType {
	s := &StructType{Name: name}
	s.SetFields(fields)
	return s
}

// SetFields installs the field list and computes the layout. It exists
// separately from NewStruct so the frontend can create a shell type first
// and fill it in later, which is what makes self-referential structs
// (struct node { struct node* next; }) resolvable.
func (s *StructType) SetFields(fields []Field) {
	s.Fields = fields
	s.align = 1
	var off int64
	for i := range s.Fields {
		f := &s.Fields[i]
		a := f.Type.Align()
		if a > s.align {
			s.align = a
		}
		off = alignUp(off, a)
		f.Offset = off
		off += f.Type.Size()
	}
	s.size = alignUp(off, s.align)
	if s.size == 0 {
		s.size = 1
	}
}

func alignUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// String returns "%name" for named structs.
func (t *StructType) String() string { return "%" + t.Name }

// Describe returns the full field list, for diagnostics.
func (t *StructType) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%%%s = { ", t.Name)
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		if !f.Color.IsNone() {
			fmt.Fprintf(&b, "color(%s) ", f.Color)
		}
		fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
	}
	b.WriteString(" }")
	return b.String()
}

// Size returns the padded struct size.
func (t *StructType) Size() int64 { return t.size }

// Align returns the struct alignment.
func (t *StructType) Align() int64 { return t.align }

// FieldIndex returns the index of the named field, or -1.
func (t *StructType) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Colors returns the set of distinct non-None field colors, used to decide
// whether the struct is multi-color (paper §7.2).
func (t *StructType) Colors() []Color {
	var out []Color
	for _, f := range t.Fields {
		if f.Color.IsNone() {
			continue
		}
		dup := false
		for _, c := range out {
			if c == f.Color {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f.Color)
		}
	}
	return out
}

// String returns "ret(params)".
func (t FuncType) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.String()
	}
	if t.Variadic {
		parts = append(parts, "...")
	}
	return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(parts, ", "))
}

// Size returns 8 (function pointers).
func (t FuncType) Size() int64 { return 8 }

// Align returns 8.
func (t FuncType) Align() int64 { return 8 }

// TypesEqual reports structural type equality (named structs by name).
func TypesEqual(a, b Type) bool {
	switch x := a.(type) {
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	case IntType:
		y, ok := b.(IntType)
		return ok && x.Bits == y.Bits
	case FloatType:
		y, ok := b.(FloatType)
		return ok && x.Bits == y.Bits
	case PointerType:
		y, ok := b.(PointerType)
		return ok && x.Color == y.Color && TypesEqual(x.Elem, y.Elem)
	case ArrayType:
		y, ok := b.(ArrayType)
		return ok && x.Len == y.Len && TypesEqual(x.Elem, y.Elem)
	case *StructType:
		y, ok := b.(*StructType)
		return ok && x.Name == y.Name
	case FuncType:
		y, ok := b.(FuncType)
		if !ok || len(x.Params) != len(y.Params) || x.Variadic != y.Variadic || !TypesEqual(x.Ret, y.Ret) {
			return false
		}
		for i := range x.Params {
			if !TypesEqual(x.Params[i], y.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// IsPointer reports whether t is a pointer type and returns its element.
func IsPointer(t Type) (PointerType, bool) {
	p, ok := t.(PointerType)
	return p, ok
}
