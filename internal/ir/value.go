package ir

import (
	"fmt"
	"strconv"
)

// Pos is a source position threaded from the MiniC frontend through the IR
// so that typing errors point at the developer's code.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries real source information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String formats the position as file:line:col.
func (p Pos) String() string {
	if !p.IsValid() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Value is anything an instruction can consume: constants, globals,
// parameters, functions, and the registers produced by instructions.
type Value interface {
	// Name returns the SSA name used in the printed form ("%t3", "@g",
	// or a literal for constants).
	Name() string
	// Type returns the static type of the value.
	Type() Type
}

// ConstInt is an integer literal.
type ConstInt struct {
	Typ IntType
	V   int64
}

// NewConstInt builds an integer constant of the given width.
func NewConstInt(t IntType, v int64) *ConstInt { return &ConstInt{Typ: t, V: v} }

// I64Const builds an i64 constant.
func I64Const(v int64) *ConstInt { return &ConstInt{Typ: I64, V: v} }

// Name returns the literal text.
func (c *ConstInt) Name() string { return strconv.FormatInt(c.V, 10) }

// Type returns the integer type.
func (c *ConstInt) Type() Type { return c.Typ }

// ConstFloat is a floating-point literal.
type ConstFloat struct {
	Typ FloatType
	V   float64
}

// Name returns the literal text.
func (c *ConstFloat) Name() string { return strconv.FormatFloat(c.V, 'g', -1, 64) }

// Type returns the float type.
func (c *ConstFloat) Type() Type { return c.Typ }

// Null is the null pointer constant of a given pointer type.
type Null struct {
	Typ PointerType
}

// Name returns "null".
func (c *Null) Name() string { return "null" }

// Type returns the pointer type.
func (c *Null) Type() Type { return c.Typ }

// Global is a module-level variable definition. Its value is the address
// of the variable, so its Type is a pointer to Elem with the declared color
// (paper Figure 6: "int color(blue) blue = 10;").
type Global struct {
	GName string
	Elem  Type
	Color Color
	// Init is the optional initial contents: an int64/float64 constant
	// or, for string literals, the raw bytes.
	InitInt   int64
	InitFloat float64
	InitBytes []byte
	Pos       Pos
}

// Name returns "@name".
func (g *Global) Name() string { return "@" + g.GName }

// Type returns a pointer to the element type carrying the global's color.
func (g *Global) Type() Type { return PtrToColored(g.Elem, g.Color) }

// Param is a function parameter. Color is the annotation from the source;
// specialization (paper §6.2) may assign the actual color per call site.
type Param struct {
	PName string
	Typ   Type
	Color Color
	Index int
	Pos   Pos
}

// Name returns "%name".
func (p *Param) Name() string { return "%" + p.PName }

// Type returns the parameter's static type.
func (p *Param) Type() Type { return p.Typ }
