package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of the module: every block ends
// in exactly one terminator, operands are defined, φ-nodes match their
// predecessors, and unions of colors inside a single memory word do not
// exist (the paper's fundamental property: a memory location has at most
// one color, §4).
func Verify(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		if err := VerifyFunc(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// VerifyFunc checks one function definition.
func VerifyFunc(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function @%s has no blocks", f.FName)
	}
	f.ComputeCFG()
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if v, ok := in.(Value); ok {
				defined[v] = true
			}
		}
	}
	var errs []error
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			errs = append(errs, fmt.Errorf("ir: @%s: empty block %%%s", f.FName, b.BName))
			continue
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if IsTerminator(in) != isLast {
				errs = append(errs, fmt.Errorf("ir: @%s: block %%%s: misplaced terminator or non-terminated block at %q", f.FName, b.BName, in.String()))
			}
			for _, op := range in.Ops() {
				v := *op
				if v == nil {
					errs = append(errs, fmt.Errorf("ir: @%s: nil operand in %q", f.FName, in.String()))
					continue
				}
				switch v.(type) {
				case *ConstInt, *ConstFloat, *Null, *Global, *Function:
					continue
				}
				if !defined[v] {
					errs = append(errs, fmt.Errorf("ir: @%s: use of undefined value %s in %q", f.FName, v.Name(), in.String()))
				}
			}
			if phi, ok := in.(*Phi); ok {
				if len(phi.Edges) != len(b.preds) {
					errs = append(errs, fmt.Errorf("ir: @%s: φ %s has %d edges, block %%%s has %d preds",
						f.FName, phi.Name(), len(phi.Edges), b.BName, len(b.preds)))
				}
			}
		}
	}
	return errors.Join(errs...)
}
