package lint

// docmetric is the third analyzer: it proves OBSERVABILITY.md and the
// code agree on every metric and trace-event name. The source of truth on
// the code side is the obs.Catalog literal (parsed with go/ast, never
// executed) plus the obs kindNames literal; on the doc side it is the
// backticked first cell of each table row under the "## Metric catalogue"
// and "## Trace events" headings. The analyzer also walks every
// registration call site (.Counter/.Gauge/.Histogram/.RegisterSource with
// a literal name) so a metric cannot be exported without a catalogue
// entry, nor a catalogue entry go stale once its registration is deleted.
//
// Unlike colorcmp and rawsend, docmetric is a whole-repo check: state
// accumulates across files during Run's walk and the verdicts land in a
// finalize step that reads OBSERVABILITY.md.

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// docmetricState accumulates the code-side facts during the walk.
type docmetricState struct {
	catalog    map[string]token.Position // obs.Catalog Name: entries
	kinds      map[string]token.Position // obs kindNames entries
	registered map[string]token.Position // literal names at Counter/Gauge/Histogram sites
	prefixes   map[string]token.Position // literal prefixes at RegisterSource sites
}

func newDocmetric() *docmetricState {
	return &docmetricState{
		catalog:    map[string]token.Position{},
		kinds:      map[string]token.Position{},
		registered: map[string]token.Position{},
		prefixes:   map[string]token.Position{},
	}
}

// collect gathers one file's contribution.
func (s *docmetricState) collect(fset *token.FileSet, rel string, file *ast.File) {
	dir := filepath.ToSlash(filepath.Dir(rel))
	if strings.HasSuffix(dir, "internal/obs") {
		s.collectLiterals(fset, file)
	}
	s.collectRegistrations(fset, file)
}

// collectLiterals pulls the Name fields out of the Catalog literal and the
// string values out of the kindNames literal.
func (s *docmetricState) collectLiterals(fset *token.FileSet, file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
				continue
			}
			lit, ok := vs.Values[0].(*ast.CompositeLit)
			if !ok {
				continue
			}
			switch vs.Names[0].Name {
			case "Catalog":
				for _, el := range lit.Elts {
					entry, ok := el.(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, f := range entry.Elts {
						kv, ok := f.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Name" {
							if name, ok := stringLit(kv.Value); ok {
								s.catalog[name] = fset.Position(kv.Pos())
							}
						}
					}
				}
			case "kindNames":
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if name, ok := stringLit(kv.Value); ok && name != "" {
						s.kinds[name] = fset.Position(kv.Pos())
					}
				}
			}
		}
	}
}

// collectRegistrations records every metric name and source prefix passed
// as a string literal to a registry method, anywhere in the repo.
func (s *docmetricState) collectRegistrations(fset *token.FileSet, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, isLit := stringLit(call.Args[0])
		if !isLit {
			return true
		}
		switch sel.Sel.Name {
		case "Counter", "Gauge", "Histogram":
			s.registered[name] = fset.Position(call.Args[0].Pos())
		case "RegisterSource":
			s.prefixes[name] = fset.Position(call.Args[0].Pos())
		}
		return true
	})
}

// finalize reads OBSERVABILITY.md at root and emits the verdicts. With no
// Catalog literal in the tree (a partial tree under test), the check is
// inert.
func (s *docmetricState) finalize(root string) []Issue {
	if len(s.catalog) == 0 {
		return nil
	}
	docPath := filepath.Join(root, "OBSERVABILITY.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		return []Issue{{
			Pos:      token.Position{Filename: docPath},
			Analyzer: "docmetric",
			Msg:      "obs.Catalog exists but OBSERVABILITY.md is missing; every exported metric must be documented",
		}}
	}
	docMetrics, docEvents := parseObservabilityDoc(string(data))
	docPos := func(line int) token.Position {
		return token.Position{Filename: "OBSERVABILITY.md", Line: line}
	}
	var issues []Issue
	add := func(pos token.Position, msg string) {
		issues = append(issues, Issue{Pos: pos, Analyzer: "docmetric", Msg: msg})
	}

	// A: catalogue <-> doc metric table, both directions.
	for _, name := range sortedKeys(s.catalog) {
		if _, ok := docMetrics[name]; !ok {
			add(s.catalog[name], "metric "+name+" is in obs.Catalog but has no row in OBSERVABILITY.md's metric catalogue")
		}
	}
	for _, name := range sortedKeys(docMetrics) {
		if _, ok := s.catalog[name]; !ok {
			add(docPos(docMetrics[name]), "metric "+name+" is documented but missing from obs.Catalog")
		}
	}

	// B: every registration call site names a catalogued metric; every
	// source prefix covers at least one catalogued entry.
	for _, name := range sortedKeys(s.registered) {
		if _, ok := s.catalog[name]; !ok {
			add(s.registered[name], "metric "+name+" is registered but missing from obs.Catalog (add it there and to OBSERVABILITY.md)")
		}
	}
	for _, prefix := range sortedKeys(s.prefixes) {
		covered := false
		for name := range s.catalog {
			if strings.HasPrefix(name, prefix+".") {
				covered = true
				break
			}
		}
		if !covered {
			add(s.prefixes[prefix], "source prefix "+prefix+" has no "+prefix+".* entries in obs.Catalog")
		}
	}

	// C: every catalogued metric is actually exported — registered by
	// name, derived from a registered histogram, or fed by a source
	// prefix.
	for _, name := range sortedKeys(s.catalog) {
		if _, ok := s.registered[name]; ok {
			continue
		}
		covered := false
		for prefix := range s.prefixes {
			if strings.HasPrefix(name, prefix+".") {
				covered = true
				break
			}
		}
		if !covered {
			add(s.catalog[name], "metric "+name+" is catalogued but never registered (stale entry, or a registration using a non-literal name)")
		}
	}

	// D: trace-event vocabulary <-> doc event table, both directions.
	for _, name := range sortedKeys(s.kinds) {
		if _, ok := docEvents[name]; !ok {
			add(s.kinds[name], "trace event "+name+" is in obs kindNames but has no row in OBSERVABILITY.md's trace-event table")
		}
	}
	for _, name := range sortedKeys(docEvents) {
		if _, ok := s.kinds[name]; !ok {
			add(docPos(docEvents[name]), "trace event "+name+" is documented but missing from obs kindNames")
		}
	}
	return issues
}

// parseObservabilityDoc extracts the backticked first table cell of each
// row under the metric-catalogue and trace-events headings, mapped to its
// 1-based line number.
func parseObservabilityDoc(doc string) (metrics, events map[string]int) {
	metrics = map[string]int{}
	events = map[string]int{}
	var current map[string]int
	for i, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			heading := strings.ToLower(strings.TrimLeft(trimmed, "# "))
			switch {
			case strings.HasPrefix(heading, "metric catalogue"):
				current = metrics
			case strings.HasPrefix(heading, "trace events"):
				current = events
			default:
				current = nil
			}
			continue
		}
		if current == nil || !strings.HasPrefix(trimmed, "|") {
			continue
		}
		cell := strings.TrimSpace(strings.SplitN(strings.TrimPrefix(trimmed, "|"), "|", 2)[0])
		if len(cell) < 3 || cell[0] != '`' || cell[len(cell)-1] != '`' {
			continue // header or separator row
		}
		current[cell[1:len(cell)-1]] = i + 1
	}
	return metrics, events
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
