package lint

import (
	"strings"
	"testing"
)

// obsFixture is a minimal internal/obs with a two-entry Catalog, one event
// kind, and registrations for one catalogued metric plus a source prefix.
const obsFixture = `package obs
type MetricDef struct {
	Name, Type, Unit, Subsystem, Help string
}
var Catalog = []MetricDef{
	{Name: "prt.aborts", Type: "gauge", Unit: "1", Subsystem: "prt", Help: "aborts"},
	{Name: "inject.dropped", Type: "counter", Unit: "1", Subsystem: "faults", Help: "drops"},
}
var kindNames = [1]string{0: "spawn"}
`

const regFixture = `package prt
func arm(reg *Registry) {
	reg.Gauge("prt.aborts", func() int64 { return 0 })
	reg.RegisterSource("inject", nil)
}
`

const goodDoc = `# Observability

## Metric catalogue

| Name | Type |
| --- | --- |
| ` + "`prt.aborts`" + ` | gauge |
| ` + "`inject.dropped`" + ` | counter |

## Trace events

| Event | Meaning |
| --- | --- |
| ` + "`spawn`" + ` | chunk admitted |
`

func docmetricIssues(t *testing.T, files map[string]string) []string {
	t.Helper()
	issues, err := Run(writeTree(t, files))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, i := range issues {
		if i.Analyzer != "docmetric" {
			t.Errorf("unexpected analyzer: %v", i)
		}
		got = append(got, i.Msg)
	}
	return got
}

func TestDocmetricAgreementPasses(t *testing.T) {
	got := docmetricIssues(t, map[string]string{
		"internal/obs/catalog.go": obsFixture,
		"internal/prt/obs.go":     regFixture,
		"OBSERVABILITY.md":        goodDoc,
	})
	if len(got) != 0 {
		t.Fatalf("agreeing tree flagged: %v", got)
	}
}

func TestDocmetricInertWithoutCatalog(t *testing.T) {
	// Trees with no obs.Catalog (like the other analyzers' fixtures) must
	// not demand an OBSERVABILITY.md.
	got := docmetricIssues(t, map[string]string{
		"internal/prt/obs.go": regFixture,
	})
	if len(got) != 0 {
		t.Fatalf("catalog-free tree flagged: %v", got)
	}
}

func TestDocmetricFindsEveryDrift(t *testing.T) {
	// Doc drops one metric row and the event row; code registers an
	// uncatalogued metric; catalogue gains a never-registered entry.
	staleDoc := `# Observability

## Metric catalogue

| Name | Type |
| --- | --- |
| ` + "`prt.aborts`" + ` | gauge |
| ` + "`inject.dropped`" + ` | counter |
| ` + "`prt.ghost`" + ` | gauge |

## Trace events

| Event | Meaning |
| --- | --- |
`
	badReg := regFixture + `
func armMore(reg *Registry) {
	reg.Counter("prt.undocumented")
}
`
	got := docmetricIssues(t, map[string]string{
		"internal/obs/catalog.go": obsFixture,
		"internal/prt/obs.go":     badReg,
		"OBSERVABILITY.md":        staleDoc,
	})
	wantSubstrings := []string{
		"prt.ghost is documented but missing from obs.Catalog",
		"prt.undocumented is registered but missing from obs.Catalog",
		"spawn is in obs kindNames but has no row",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no issue containing %q in %v", want, got)
		}
	}
}

func TestDocmetricMissingDocFile(t *testing.T) {
	got := docmetricIssues(t, map[string]string{
		"internal/obs/catalog.go": obsFixture,
		"internal/prt/obs.go":     regFixture,
	})
	if len(got) != 1 || !strings.Contains(got[0], "OBSERVABILITY.md is missing") {
		t.Fatalf("issues = %v, want the missing-doc finding", got)
	}
}

func TestDocmetricUnregisteredCatalogEntry(t *testing.T) {
	// Drop the RegisterSource call: inject.dropped is catalogued and
	// documented but nothing exports it.
	got := docmetricIssues(t, map[string]string{
		"internal/obs/catalog.go": obsFixture,
		"internal/prt/obs.go": `package prt
func arm(reg *Registry) { reg.Gauge("prt.aborts", func() int64 { return 0 }) }
`,
		"OBSERVABILITY.md": goodDoc,
	})
	if len(got) != 1 || !strings.Contains(got[0], "inject.dropped is catalogued but never registered") {
		t.Fatalf("issues = %v, want the stale-catalogue finding", got)
	}
}
