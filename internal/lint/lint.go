// Package lint implements the project's vet-style static checks with the
// standard library's go/ast only (the container has no x/tools). Two
// analyzers guard the invariants the type system and the runtime depend
// on but the Go compiler cannot see:
//
//   - colorcmp: code outside internal/ir and internal/typing must not
//     compare ir.Color values against ir.U / ir.S (or their Kind against
//     ir.KindUntrusted / ir.KindShared) directly. Those comparisons
//     bypass the typing helpers (IsUntrusted, IsShared) that centralize
//     the unsafe-location semantics of Table 2/3; a direct comparison
//     silently misclassifies a soft-U or None color and has caused real
//     partitioner bugs.
//
//   - rawsend: inside internal/prt, every queue Enqueue of a Message
//     literal must carry the auth: payload-integrity stamp — an
//     unstamped message is indistinguishable from attacker injection and
//     is dropped by the supervised receive path. EnqueueRaw is the
//     deliberate injection seam for the fault harness and is exempt.
//
//   - rawsleep: inside internal/cluster, internal/prt and
//     internal/retry, non-test code must not call bare time.Sleep; a
//     raw sleep serves out its full duration during shutdown and stalls
//     Close. The context-aware retry.Policy.Sleep is the sanctioned
//     primitive (its own nil-ctx fallback is the one exempt site).
//
//   - docmetric: the obs.Catalog literal, the registration call sites,
//     and the tables in OBSERVABILITY.md must agree on every metric and
//     trace-event name, in both directions (see docmetric.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Issue is one finding.
type Issue struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s: [%s] %s", i.Pos, i.Analyzer, i.Msg)
}

// Run lints every non-test Go file under root and returns the findings,
// sorted by position.
func Run(root string) ([]Issue, error) {
	var issues []Issue
	fset := token.NewFileSet()
	dm := newDocmetric()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, "tmp_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		file, perr := parser.ParseFile(fset, rel, src, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		issues = append(issues, lintFile(fset, rel, file)...)
		dm.collect(fset, rel, file)
		return nil
	})
	if err != nil {
		return nil, err
	}
	issues = append(issues, dm.finalize(root)...)
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].Pos.Filename != issues[j].Pos.Filename {
			return issues[i].Pos.Filename < issues[j].Pos.Filename
		}
		return issues[i].Pos.Offset < issues[j].Pos.Offset
	})
	return issues, nil
}

func lintFile(fset *token.FileSet, rel string, file *ast.File) []Issue {
	var issues []Issue
	dir := filepath.ToSlash(filepath.Dir(rel))
	if !strings.HasSuffix(dir, "internal/ir") && !strings.HasSuffix(dir, "internal/typing") {
		issues = append(issues, colorcmp(fset, file)...)
	}
	if strings.HasSuffix(dir, "internal/prt") {
		issues = append(issues, rawsend(fset, file)...)
	}
	for _, d := range []string{"internal/cluster", "internal/prt", "internal/retry"} {
		if strings.HasSuffix(dir, d) {
			issues = append(issues, rawsleep(fset, file)...)
			break
		}
	}
	return issues
}

// rawsleep flags bare time.Sleep calls in the runtime packages whose
// goroutines must stay cancelable: a raw sleep serves out its full
// duration even when the owner is shutting down, stalling Close. The
// context-aware retry.Policy.Sleep is the sanctioned primitive; its own
// nil-context fallback (the method named Sleep) is the one exempt site,
// mirroring rawsend's EnqueueRaw seam.
func rawsleep(fset *token.FileSet, file *ast.File) []Issue {
	timePkg := ""
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != "time" {
			continue
		}
		timePkg = "time"
		if imp.Name != nil {
			timePkg = imp.Name.Name
		}
	}
	if timePkg == "" || timePkg == "_" {
		return nil
	}
	var issues []Issue
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Name.Name == "Sleep" {
			// The context-aware wrapper itself: its nil-ctx branch is
			// the one place a bare sleep is the documented semantics.
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == timePkg {
				issues = append(issues, Issue{
					Pos:      fset.Position(call.Pos()),
					Analyzer: "rawsleep",
					Msg:      "bare time.Sleep in a cancelable runtime package; use retry.Policy.Sleep(ctx, n) so shutdown never stalls on a sleeping goroutine",
				})
			}
			return true
		})
	}
	return issues
}

// irImportName returns the local name the file uses for the ir package,
// or "" when the file does not import it.
func irImportName(file *ast.File) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != "privagic/internal/ir" {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "ir"
	}
	return ""
}

// colorcmp flags == / != comparisons against ir.U, ir.S, ir.KindUntrusted
// and ir.KindShared.
func colorcmp(fset *token.FileSet, file *ast.File) []Issue {
	pkg := irImportName(file)
	if pkg == "" {
		return nil
	}
	bad := map[string]string{
		"U":             "use Color.IsUntrusted() instead of comparing against ir.U",
		"S":             "use Color.IsShared() instead of comparing against ir.S",
		"KindUntrusted": "use Color.IsUntrusted() instead of comparing Kind against ir.KindUntrusted",
		"KindShared":    "use Color.IsShared() instead of comparing Kind against ir.KindShared",
	}
	var issues []Issue
	ast.Inspect(file, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			sel, ok := side.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != pkg {
				continue
			}
			if msg, hit := bad[sel.Sel.Name]; hit {
				issues = append(issues, Issue{
					Pos:      fset.Position(be.Pos()),
					Analyzer: "colorcmp",
					Msg:      msg,
				})
			}
		}
		return true
	})
	return issues
}

// rawsend flags Enqueue calls whose Message literal lacks the auth:
// payload-integrity stamp.
func rawsend(fset *token.FileSet, file *ast.File) []Issue {
	var issues []Issue
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enqueue" {
			// EnqueueRaw is the fault-injection seam: exempt by name.
			return true
		}
		for _, arg := range call.Args {
			lit := messageLit(arg)
			if lit == nil {
				continue
			}
			if !hasField(lit, "auth") {
				issues = append(issues, Issue{
					Pos:      fset.Position(arg.Pos()),
					Analyzer: "rawsend",
					Msg:      "Message enqueued without the auth: payload-integrity stamp; the supervised receive path will drop it (use authStamp, or EnqueueRaw for deliberate injection)",
				})
			}
		}
		return true
	})
	return issues
}

// messageLit unwraps arg to a Message composite literal, or nil.
func messageLit(arg ast.Expr) *ast.CompositeLit {
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = u.X
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	switch t := lit.Type.(type) {
	case *ast.Ident:
		if t.Name == "Message" {
			return lit
		}
	case *ast.SelectorExpr:
		if t.Sel.Name == "Message" {
			return lit
		}
	}
	return nil
}

func hasField(lit *ast.CompositeLit, name string) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}
