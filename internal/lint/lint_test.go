package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestColorcmp(t *testing.T) {
	root := writeTree(t, map[string]string{
		// Outside the exempt packages: every comparison flavor flagged.
		"internal/partition/x.go": `package partition
import "privagic/internal/ir"
func bad(c ir.Color) bool {
	if c == ir.U { return true }
	if c != ir.S { return true }
	return c.Kind == ir.KindUntrusted || ir.KindShared == c.Kind
}
func good(c ir.Color) bool { return c.IsUntrusted() || c.IsShared() }
`,
		// Aliased import resolved.
		"internal/interp/y.go": `package interp
import pir "privagic/internal/ir"
func bad(c pir.Color) bool { return c == pir.U }
`,
		// The type-system core is exempt: it defines the semantics.
		"internal/typing/z.go": `package typing
import "privagic/internal/ir"
func ok(c ir.Color) bool { return c == ir.U }
`,
		"internal/ir/w.go": `package ir
func ok(c Color) bool { return c == U }
`,
		// Test files are not linted.
		"internal/partition/x_test.go": `package partition
import "privagic/internal/ir"
func tbad(c ir.Color) bool { return c == ir.U }
`,
	})
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, i := range issues {
		if i.Analyzer != "colorcmp" {
			t.Errorf("unexpected analyzer: %v", i)
		}
		got = append(got, filepath.ToSlash(i.Pos.Filename))
	}
	want := []string{
		"internal/interp/y.go",
		"internal/partition/x.go",
		"internal/partition/x.go",
		"internal/partition/x.go",
		"internal/partition/x.go",
	}
	if len(got) != len(want) {
		t.Fatalf("issues = %v, want files %v", issues, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("issue %d in %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRawsend(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/prt/q.go": `package prt
func f(q *queue) {
	q.Enqueue(Message{Kind: 1})                  // flagged: no stamp
	q.Enqueue(Message{Kind: 1, auth: authStamp}) // ok
	q.Enqueue(&Message{Kind: 2})                 // flagged: no stamp
	w.EnqueueRaw(Message{Kind: 3})               // exempt injection seam
	var m Message
	q.Enqueue(m) // non-literal: the send path stamps it
}
`,		// Outside internal/prt the Message type is someone else's.
		"internal/other/q.go": `package other
func f(q *queue) { q.Enqueue(Message{Kind: 1}) }
`,
	})
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 2 {
		t.Fatalf("issues = %v, want 2 rawsend findings", issues)
	}
	for _, i := range issues {
		if i.Analyzer != "rawsend" || filepath.ToSlash(i.Pos.Filename) != "internal/prt/q.go" {
			t.Errorf("unexpected issue: %v", i)
		}
	}
}

func TestRawsleep(t *testing.T) {
	root := writeTree(t, map[string]string{
		// Flagged: bare sleeps in each guarded package, aliased import too.
		"internal/cluster/c.go": `package cluster
import "time"
func probe() { time.Sleep(time.Second) }
`,
		"internal/prt/w.go": `package prt
import t "time"
func spin() { t.Sleep(t.Millisecond) }
`,
		// Exempt: the context-aware wrapper's own fallback lives in a
		// function named Sleep.
		"internal/retry/r.go": `package retry
import "time"
func (p Policy) Sleep(d int) { time.Sleep(time.Duration(d)) }
`,
		// Test files and packages outside the guarded set are not linted.
		"internal/cluster/c_test.go": `package cluster
import "time"
func wait() { time.Sleep(time.Second) }
`,
		"internal/bench/b.go": `package bench
import "time"
func pause() { time.Sleep(time.Second) }
`,
	})
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, i := range issues {
		if i.Analyzer != "rawsleep" {
			t.Errorf("unexpected analyzer: %v", i)
			continue
		}
		got = append(got, filepath.ToSlash(i.Pos.Filename))
	}
	want := []string{"internal/cluster/c.go", "internal/prt/w.go"}
	if len(got) != len(want) {
		t.Fatalf("rawsleep issues in %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("issue %d in %s, want %s", i, got[i], want[i])
		}
	}
}
