package memcached

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Admission control must shed with an explicit SERVER_ERROR busy — never
// by silently dropping a command or desyncing the stream — and must stop
// shedding the moment the pressure clears.

func TestAdmissionSaturatedProbe(t *testing.T) {
	srv := newTestServer(t)
	var saturated atomic.Bool
	srv.SetAdmission(Admission{Saturated: saturated.Load})
	c := dialRaw(t, srv.Addr())

	if got := c.send(t, "set k 0 0 3\r\nabc\r\n"); got != "STORED" {
		t.Fatalf("unsaturated set -> %q, want STORED", got)
	}
	saturated.Store(true)
	if got := c.send(t, "get k\r\n"); got != "SERVER_ERROR busy" {
		t.Errorf("saturated get -> %q, want SERVER_ERROR busy", got)
	}
	// A shed set must still swallow its body so the connection stays
	// framed: the next command must parse as a command, not as body junk.
	if got := c.send(t, "set k2 0 0 3\r\nxyz\r\n"); got != "SERVER_ERROR busy" {
		t.Errorf("saturated set -> %q, want SERVER_ERROR busy", got)
	}
	if got := c.send(t, "delete k\r\n"); got != "SERVER_ERROR busy" {
		t.Errorf("saturated delete -> %q, want SERVER_ERROR busy", got)
	}
	saturated.Store(false)
	// Nothing was stored while shedding, the stream is intact, and
	// service resumes.
	if got := c.send(t, "get k2\r\n"); got != "END" {
		t.Errorf("get of shed key -> %q, want END", got)
	}
	if got := c.send(t, "get k\r\n"); got != "VALUE k 0 3" {
		t.Errorf("recovered get -> %q, want VALUE k 0 3", got)
	}
	for i := 0; i < 2; i++ { // drain the value body and END
		if _, err := c.r.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
	if n := srv.ShedOps(); n != 3 {
		t.Errorf("ShedOps = %d, want 3", n)
	}
	// The counter is exported through the stats command too.
	if got := c.send(t, "stats\r\n"); !strings.HasPrefix(got, "STAT get_hits") {
		t.Errorf("stats -> %q", got)
	}
	sawShed := false
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if strings.HasPrefix(line, "STAT shed_ops ") {
			sawShed = line == "STAT shed_ops 3"
		}
		if line == "END" {
			break
		}
	}
	if !sawShed {
		t.Error("stats did not report STAT shed_ops 3")
	}
}

func TestAdmissionMaxInflight(t *testing.T) {
	srv := newTestServer(t) // 2 pool workers
	srv.SetAdmission(Admission{MaxInflight: 1})

	// Occupy one worker: promise a set body and stall inside it, so the
	// worker blocks in readFull with the command admitted (inflight = 1).
	slow, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fmt.Fprint(slow, "set k 0 0 10\r\nab")
	deadline := time.Now().Add(2 * time.Second)
	for srv.inflight.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled set never became inflight")
		}
		time.Sleep(time.Millisecond)
	}

	// The second worker must shed: the cap is 1 and it is taken.
	c := dialRaw(t, srv.Addr())
	if got := c.send(t, "get k\r\n"); got != "SERVER_ERROR busy" {
		t.Errorf("get over the inflight cap -> %q, want SERVER_ERROR busy", got)
	}

	// Release the stalled worker; service resumes on the same connection.
	fmt.Fprint(slow, "cdefghij\r\n")
	for srv.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled set never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.send(t, "get k\r\n"); got != "VALUE k 0 10" {
		t.Errorf("get after drain -> %q, want VALUE k 0 10", got)
	}
}

func TestAdmissionClear(t *testing.T) {
	srv := newTestServer(t)
	srv.SetAdmission(Admission{Saturated: func() bool { return true }})
	c := dialRaw(t, srv.Addr())
	if got := c.send(t, "get k\r\n"); got != "SERVER_ERROR busy" {
		t.Fatalf("saturated get -> %q", got)
	}
	srv.SetAdmission(Admission{}) // zero policy removes admission control
	if got := c.send(t, "get k\r\n"); got != "END" {
		t.Errorf("get after clearing admission -> %q, want END", got)
	}
}
