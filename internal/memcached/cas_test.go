package memcached

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestStoreCas exercises the token lifecycle: a fresh token swaps, a
// stale token answers EXISTS, a deleted key answers NOT_FOUND.
func TestStoreCas(t *testing.T) {
	s := NewStore(16, 0)
	s.Set("k", []byte("v1"), 1)
	_, _, tok, ok := s.Gets("k")
	if !ok {
		t.Fatal("Gets missed a present key")
	}
	if res := s.Cas("k", []byte("v2"), 2, tok); res != CasStored {
		t.Fatalf("Cas with fresh token = %v, want CasStored", res)
	}
	if v, flags, _ := s.Get("k"); string(v) != "v2" || flags != 2 {
		t.Fatalf("after Cas: (%q, %d)", v, flags)
	}
	// The same token again must conflict: the swap minted a new one.
	if res := s.Cas("k", []byte("v3"), 3, tok); res != CasExists {
		t.Fatalf("Cas with stale token = %v, want CasExists", res)
	}
	if v, _, _ := s.Get("k"); string(v) != "v2" {
		t.Fatalf("conflicting Cas mutated the value to %q", v)
	}
	s.Delete("k")
	if res := s.Cas("k", []byte("v4"), 4, tok); res != CasNotFound {
		t.Fatalf("Cas on deleted key = %v, want CasNotFound", res)
	}
}

// TestStoreCasTokenAdvancesOnSet: a plain Set invalidates outstanding
// tokens, so a repairer holding a pre-Set snapshot cannot clobber it.
func TestStoreCasTokenAdvancesOnSet(t *testing.T) {
	s := NewStore(16, 0)
	s.Set("k", []byte("old"), 0)
	_, _, tok, _ := s.Gets("k")
	s.Set("k", []byte("new"), 0)
	if res := s.Cas("k", []byte("stomp"), 0, tok); res != CasExists {
		t.Fatalf("Cas after intervening Set = %v, want CasExists", res)
	}
	if v, _, _ := s.Get("k"); string(v) != "new" {
		t.Fatalf("intervening write lost: %q", v)
	}
}

// TestStoreAdd: add wins only on absence.
func TestStoreAdd(t *testing.T) {
	s := NewStore(16, 0)
	if !s.Add("k", []byte("v1"), 0) {
		t.Fatal("Add to empty store refused")
	}
	if s.Add("k", []byte("v2"), 0) {
		t.Fatal("Add over a present key succeeded")
	}
	if v, _, _ := s.Get("k"); string(v) != "v1" {
		t.Fatalf("losing Add mutated the value to %q", v)
	}
	s.Delete("k")
	if !s.Add("k", []byte("v3"), 0) {
		t.Fatal("Add after delete refused")
	}
}

// newCasPair spins up a server and a connected client for wire tests.
func newCasPair(t *testing.T) (*Store, *Client) {
	t.Helper()
	store := NewStore(64, 0)
	srv, err := NewServer("127.0.0.1:0", store, 2)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(srv.Close)
	cl, err := DialTimeout(srv.Addr(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(cl.Close)
	return store, cl
}

// TestClientGetsCas covers the wire round trip of the token: gets
// returns it, cas with it stores, cas with a stale one is the typed
// ErrCasConflict, cas on a missing key is the typed ErrNotFound. cas
// bodies must be sealed: the verb exists for the cluster's read-repair
// write-back, and the server verifies the integrity tag before storing.
func TestClientGetsCas(t *testing.T) {
	_, cl := newCasPair(t)
	if err := cl.Set("k", []byte("v1"), 9); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, flags, tok, ok, err := cl.Gets("k")
	if err != nil || !ok || string(v) != "v1" || flags != 9 {
		t.Fatalf("Gets = (%q, %d, %d, %v, %v)", v, flags, tok, ok, err)
	}
	if err := cl.Cas("k", SealValue("k", 10, []byte("v2")), 10, tok); err != nil {
		t.Fatalf("Cas with fresh token: %v", err)
	}
	if err := cl.Cas("k", SealValue("k", 11, []byte("v3")), 11, tok); !errors.Is(err, ErrCasConflict) {
		t.Fatalf("Cas with stale token = %v, want ErrCasConflict", err)
	}
	raw, _, ok, _ := cl.GetFlags("k")
	if v, okSeal := OpenValue("k", 10, raw); !ok || !okSeal || string(v) != "v2" {
		t.Fatalf("conflicting Cas visible: %q (seal ok=%v)", raw, okSeal)
	}
	if err := cl.Cas("absent", SealValue("absent", 0, []byte("v")), 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cas on absent key = %v, want ErrNotFound", err)
	}
	if _, _, _, ok, err := cl.Gets("absent"); ok || err != nil {
		t.Fatalf("Gets on absent key: ok=%v err=%v", ok, err)
	}
}

// TestClientAdd covers the wire add: wins on absence, loses on presence.
// Like cas, add is a read-repair verb, so bodies carry the seal.
func TestClientAdd(t *testing.T) {
	_, cl := newCasPair(t)
	if ok, err := cl.Add("k", SealValue("k", 0, []byte("first")), 0); err != nil || !ok {
		t.Fatalf("Add to empty: ok=%v err=%v", ok, err)
	}
	if ok, err := cl.Add("k", SealValue("k", 0, []byte("second")), 0); err != nil || ok {
		t.Fatalf("Add over present: ok=%v err=%v", ok, err)
	}
	raw, ok, _ := cl.Get("k")
	if v, okSeal := OpenValue("k", 0, raw); !ok || !okSeal || string(v) != "first" {
		t.Fatalf("losing Add visible: %q (seal ok=%v)", raw, okSeal)
	}
}

// TestClientCasAddBadSeal: a cas or add body that fails seal
// verification is refused with a typed protocol error and never stored.
func TestClientCasAddBadSeal(t *testing.T) {
	store, cl := newCasPair(t)
	if err := cl.Set("k", []byte("v1"), 9); err != nil {
		t.Fatalf("Set: %v", err)
	}
	_, _, tok, _, err := cl.Gets("k")
	if err != nil {
		t.Fatalf("Gets: %v", err)
	}
	bad := SealValue("k", 10, []byte("v2"))
	bad[len(bad)-1] ^= 0x01 // flip one payload bit: tag no longer matches
	if err := cl.Cas("k", bad, 10, tok); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Cas with corrupt seal = %v, want ErrProtocol", err)
	}
	if v, _, _ := store.Get("k"); string(v) != "v1" {
		t.Fatalf("corrupt cas body stored: %q", v)
	}
	if err := cl.Cas("k", SealValue("other", 10, []byte("v2")), 10, tok); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Cas sealed for the wrong key = %v, want ErrProtocol", err)
	}
	if _, err := cl.Add("fresh", []byte("unsealed"), 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Add with unsealed body = %v, want ErrProtocol", err)
	}
	if _, _, ok := store.Get("fresh"); ok {
		t.Fatal("unsealed add body stored")
	}
}

// TestClientDigestAndKeys round-trips the anti-entropy commands over
// the wire and checks they agree with the store's own fold.
func TestClientDigestAndKeys(t *testing.T) {
	store, cl := newCasPair(t)
	for i := 0; i < 50; i++ {
		if err := cl.Set(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)), uint32(i)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	const lo, hi = uint64(1) << 62, uint64(3) << 62
	wantD, wantN := store.RangeDigest(lo, hi)
	d, n, err := cl.Digest(lo, hi)
	if err != nil || d != wantD || n != wantN {
		t.Fatalf("Digest = (%d, %d, %v), want (%d, %d)", d, n, err, wantD, wantN)
	}
	keys, err := cl.RangeKeys(lo, hi)
	if err != nil {
		t.Fatalf("RangeKeys: %v", err)
	}
	if len(keys) != wantN {
		t.Fatalf("RangeKeys returned %d keys, digest counted %d", len(keys), wantN)
	}
	for _, ki := range keys {
		if h := KeyHash(ki.Key); h < lo || h > hi {
			t.Fatalf("key %q hashes to %d, outside [%d, %d]", ki.Key, h, lo, hi)
		}
	}
}
