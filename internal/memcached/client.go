package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// ErrBusy is returned when the server sheds an operation with
// SERVER_ERROR busy (admission control under overload). It is transient
// by contract: the connection stays framed and usable, and the caller may
// retry after backoff — the cluster router does exactly that.
var ErrBusy = errors.New("memcached: server busy")

// IsTimeout reports whether err is an I/O deadline expiry (the client's
// per-operation timeout firing). After a timeout the connection is
// poisoned — the late response, if it ever arrives, would desynchronize
// the stream — so callers must Close and redial; ErrBusy, by contrast,
// leaves the connection usable.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Client is a minimal text-protocol client, enough for the YCSB load
// injector of §9.2 (6 clients × 6 threads over loopback) and for the
// cluster router's per-shard connections.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// DialTimeout is Dial with a bound on connection establishment plus a
// per-operation deadline (see SetTimeout) applied to the new client.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("memcached: dial: %w", err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	c.SetTimeout(d)
	return c, nil
}

// SetTimeout bounds every subsequent operation (request write + response
// read) to d. Zero removes the bound. A fired deadline surfaces as an
// error satisfying IsTimeout; the connection must then be closed.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// arm applies the per-operation deadline, or clears it when unset.
func (c *Client) arm() {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
}

// Close quits and closes the connection.
func (c *Client) Close() {
	fmt.Fprint(c.w, "quit\r\n")
	_ = c.w.Flush()
	_ = c.conn.Close()
}

// busyLine matches the server's admission-control refusal.
func busyLine(line string) bool {
	return strings.HasPrefix(line, "SERVER_ERROR busy")
}

// Set stores a value.
func (c *Client) Set(key string, value []byte, flags uint32) error {
	c.arm()
	fmt.Fprintf(c.w, "set %s %d 0 %d\r\n", key, flags, len(value))
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if busyLine(line) {
		return fmt.Errorf("memcached: set %s: %w", key, ErrBusy)
	}
	if !strings.HasPrefix(line, "STORED") {
		return fmt.Errorf("memcached: set: %s", strings.TrimSpace(line))
	}
	return nil
}

// Get fetches a value; ok is false on miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	value, _, ok, err = c.GetFlags(key)
	return value, ok, err
}

// GetFlags is Get exposing the stored flags word (the cluster router
// stamps ownership generations into it).
func (c *Client) GetFlags(key string) (value []byte, flags uint32, ok bool, err error) {
	c.arm()
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return nil, 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, false, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "END" {
		return nil, 0, false, nil
	}
	if busyLine(line) {
		return nil, 0, false, fmt.Errorf("memcached: get %s: %w", key, ErrBusy)
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "VALUE" {
		return nil, 0, false, fmt.Errorf("memcached: get: unexpected %q", line)
	}
	fl, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return nil, 0, false, err
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, 0, false, err
	}
	buf := make([]byte, n+2)
	if _, err := readFull(c.r, buf); err != nil {
		return nil, 0, false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, false, err
	}
	if !strings.HasPrefix(end, "END") {
		return nil, 0, false, fmt.Errorf("memcached: get: missing END, got %q", end)
	}
	return buf[:n], uint32(fl), true, nil
}

// Delete removes a key.
func (c *Client) Delete(key string) (bool, error) {
	c.arm()
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	if busyLine(line) {
		return false, fmt.Errorf("memcached: delete %s: %w", key, ErrBusy)
	}
	return strings.HasPrefix(line, "DELETED"), nil
}

// Version fetches the server's version banner — the health-probe
// operation: it is answered outside admission control, so it reports
// liveness even while the data plane sheds.
func (c *Client) Version() (string, error) {
	c.arm()
	fmt.Fprint(c.w, "version\r\n")
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, "VERSION ") {
		return "", fmt.Errorf("memcached: version: unexpected %q", line)
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (map[string]int64, error) {
	c.arm()
	fmt.Fprint(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "STAT" {
			v, _ := strconv.ParseInt(fields[2], 10, 64)
			out[fields[1]] = v
		}
	}
}
