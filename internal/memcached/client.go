package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// ErrBusy is returned when the server sheds an operation with
// SERVER_ERROR busy (admission control under overload). It is transient
// by contract: the connection stays framed and usable, and the caller may
// retry after backoff — the cluster router does exactly that.
var ErrBusy = errors.New("memcached: server busy")

// ErrProtocol marks a response the client could not parse as the text
// protocol it expects: a garbled status line, a VALUE header echoing the
// wrong key, unparsable length/flags digits, a missing END terminator.
// It is how wire corruption (bit flips, truncation, stream desync after
// a partial read) surfaces as a *typed* failure instead of a wrong
// answer or an anonymous string error — the gray-failure soak counts
// any non-typed failure as a bug. A protocol error poisons the
// connection exactly like a timeout does: the stream framing can no
// longer be trusted, so callers must Close and redial.
var ErrProtocol = errors.New("memcached: protocol violation")

// IsTimeout reports whether err is an I/O deadline expiry (the client's
// per-operation timeout firing). After a timeout the connection is
// poisoned — the late response, if it ever arrives, would desynchronize
// the stream — so callers must Close and redial; ErrBusy, by contrast,
// leaves the connection usable.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Client is a minimal text-protocol client, enough for the YCSB load
// injector of §9.2 (6 clients × 6 threads over loopback) and for the
// cluster router's per-shard connections.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// DialTimeout is Dial with a bound on connection establishment plus a
// per-operation deadline (see SetTimeout) applied to the new client.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("memcached: dial: %w", err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	c.SetTimeout(d)
	return c, nil
}

// SetTimeout bounds every subsequent operation (request write + response
// read) to d. Zero removes the bound. A fired deadline surfaces as an
// error satisfying IsTimeout; the connection must then be closed.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// arm applies the per-operation deadline, or clears it when unset.
func (c *Client) arm() {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
}

// Close quits and closes the connection.
func (c *Client) Close() {
	fmt.Fprint(c.w, "quit\r\n")
	_ = c.w.Flush()
	_ = c.conn.Close()
}

// Abort severs the transport immediately, without the quit handshake and
// without touching the client's buffers — unlike Close it is safe to
// call from another goroutine while an operation is in flight, which is
// how the cluster router cancels the loser of a hedged read: the blocked
// read fails at once with a connection error. The client is poisoned
// afterwards; its owner must still discard it.
func (c *Client) Abort() { _ = c.conn.Close() }

// busyLine matches the server's admission-control refusal.
func busyLine(line string) bool {
	return strings.HasPrefix(line, "SERVER_ERROR busy")
}

// Set stores a value.
func (c *Client) Set(key string, value []byte, flags uint32) error {
	c.arm()
	fmt.Fprintf(c.w, "set %s %d 0 %d\r\n", key, flags, len(value))
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if busyLine(line) {
		return fmt.Errorf("memcached: set %s: %w", key, ErrBusy)
	}
	if !strings.HasPrefix(line, "STORED") {
		return fmt.Errorf("memcached: set: %s: %w", strings.TrimSpace(line), ErrProtocol)
	}
	return nil
}

// Get fetches a value; ok is false on miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	value, _, ok, err = c.GetFlags(key)
	return value, ok, err
}

// GetFlags is Get exposing the stored flags word (the cluster router
// stamps ownership generations into it).
func (c *Client) GetFlags(key string) (value []byte, flags uint32, ok bool, err error) {
	c.arm()
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return nil, 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, false, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "END" {
		return nil, 0, false, nil
	}
	if busyLine(line) {
		return nil, 0, false, fmt.Errorf("memcached: get %s: %w", key, ErrBusy)
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "VALUE" {
		return nil, 0, false, fmt.Errorf("memcached: get: unexpected %q: %w", line, ErrProtocol)
	}
	// Key echo check: a VALUE header naming any key but the one asked
	// for means the stream is answering someone else's request (desync)
	// or the key bytes were corrupted in flight — either way the value
	// below it must not be attributed to this key.
	if fields[1] != key {
		return nil, 0, false, fmt.Errorf("memcached: get %s: VALUE echoes key %q: %w", key, fields[1], ErrProtocol)
	}
	fl, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return nil, 0, false, fmt.Errorf("memcached: get: bad flags %q: %w", fields[2], ErrProtocol)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return nil, 0, false, fmt.Errorf("memcached: get: bad length %q: %w", fields[3], ErrProtocol)
	}
	buf := make([]byte, n+2)
	if _, err := readFull(c.r, buf); err != nil {
		return nil, 0, false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, false, err
	}
	if !strings.HasPrefix(end, "END") {
		return nil, 0, false, fmt.Errorf("memcached: get: missing END, got %q: %w", end, ErrProtocol)
	}
	return buf[:n], uint32(fl), true, nil
}

// Delete removes a key.
func (c *Client) Delete(key string) (bool, error) {
	c.arm()
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	if busyLine(line) {
		return false, fmt.Errorf("memcached: delete %s: %w", key, ErrBusy)
	}
	switch {
	case strings.HasPrefix(line, "DELETED"):
		return true, nil
	case strings.HasPrefix(line, "NOT_FOUND"):
		return false, nil
	}
	// Anything else (ERROR from a corrupted command line, a desynced
	// response) is a protocol violation, not a quiet no-op.
	return false, fmt.Errorf("memcached: delete %s: unexpected %q: %w", key, strings.TrimSpace(line), ErrProtocol)
}

// Version fetches the server's version banner — the health-probe
// operation: it is answered outside admission control, so it reports
// liveness even while the data plane sheds.
func (c *Client) Version() (string, error) {
	c.arm()
	fmt.Fprint(c.w, "version\r\n")
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, "VERSION ") {
		return "", fmt.Errorf("memcached: version: unexpected %q: %w", line, ErrProtocol)
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (map[string]int64, error) {
	c.arm()
	fmt.Fprint(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "STAT" {
			v, _ := strconv.ParseInt(fields[2], 10, 64)
			out[fields[1]] = v
		}
	}
}
