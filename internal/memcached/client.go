package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// ErrBusy is returned when the server sheds an operation with
// SERVER_ERROR busy (admission control under overload). It is transient
// by contract: the connection stays framed and usable, and the caller may
// retry after backoff — the cluster router does exactly that.
var ErrBusy = errors.New("memcached: server busy")

// ErrProtocol marks a response the client could not parse as the text
// protocol it expects: a garbled status line, a VALUE header echoing the
// wrong key, unparsable length/flags digits, a missing END terminator.
// It is how wire corruption (bit flips, truncation, stream desync after
// a partial read) surfaces as a *typed* failure instead of a wrong
// answer or an anonymous string error — the gray-failure soak counts
// any non-typed failure as a bug. A protocol error poisons the
// connection exactly like a timeout does: the stream framing can no
// longer be trusted, so callers must Close and redial.
var ErrProtocol = errors.New("memcached: protocol violation")

// ErrCasConflict is returned by Cas when the item changed since its CAS
// token was read (the server answered EXISTS). The caller must re-Gets
// and decide whether its update still applies — read-repair treats it
// as "a newer write won; stand down".
var ErrCasConflict = errors.New("memcached: cas conflict")

// ErrNotFound is returned by Cas when the key is absent (the server
// answered NOT_FOUND): the token refers to an item that has since been
// deleted or evicted.
var ErrNotFound = errors.New("memcached: not found")

// IsTimeout reports whether err is an I/O deadline expiry (the client's
// per-operation timeout firing). After a timeout the connection is
// poisoned — the late response, if it ever arrives, would desynchronize
// the stream — so callers must Close and redial; ErrBusy, by contrast,
// leaves the connection usable.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Client is a minimal text-protocol client, enough for the YCSB load
// injector of §9.2 (6 clients × 6 threads over loopback) and for the
// cluster router's per-shard connections.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// DialTimeout is Dial with a bound on connection establishment plus a
// per-operation deadline (see SetTimeout) applied to the new client.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("memcached: dial: %w", err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	c.SetTimeout(d)
	return c, nil
}

// SetTimeout bounds every subsequent operation (request write + response
// read) to d. Zero removes the bound. A fired deadline surfaces as an
// error satisfying IsTimeout; the connection must then be closed.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// arm applies the per-operation deadline, or clears it when unset.
func (c *Client) arm() {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
}

// Close quits and closes the connection.
func (c *Client) Close() {
	fmt.Fprint(c.w, "quit\r\n")
	_ = c.w.Flush()
	_ = c.conn.Close()
}

// Abort severs the transport immediately, without the quit handshake and
// without touching the client's buffers — unlike Close it is safe to
// call from another goroutine while an operation is in flight, which is
// how the cluster router cancels the loser of a hedged read: the blocked
// read fails at once with a connection error. The client is poisoned
// afterwards; its owner must still discard it.
func (c *Client) Abort() { _ = c.conn.Close() }

// busyLine matches the server's admission-control refusal.
func busyLine(line string) bool {
	return strings.HasPrefix(line, "SERVER_ERROR busy")
}

// Set stores a value.
func (c *Client) Set(key string, value []byte, flags uint32) error {
	c.arm()
	fmt.Fprintf(c.w, "set %s %d 0 %d\r\n", key, flags, len(value))
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if busyLine(line) {
		return fmt.Errorf("memcached: set %s: %w", key, ErrBusy)
	}
	if !strings.HasPrefix(line, "STORED") {
		return fmt.Errorf("memcached: set: %s: %w", strings.TrimSpace(line), ErrProtocol)
	}
	return nil
}

// Get fetches a value; ok is false on miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	value, _, ok, err = c.GetFlags(key)
	return value, ok, err
}

// GetFlags is Get exposing the stored flags word (the cluster router
// stamps ownership generations into it).
func (c *Client) GetFlags(key string) (value []byte, flags uint32, ok bool, err error) {
	c.arm()
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return nil, 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, false, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "END" {
		return nil, 0, false, nil
	}
	if busyLine(line) {
		return nil, 0, false, fmt.Errorf("memcached: get %s: %w", key, ErrBusy)
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "VALUE" {
		return nil, 0, false, fmt.Errorf("memcached: get: unexpected %q: %w", line, ErrProtocol)
	}
	// Key echo check: a VALUE header naming any key but the one asked
	// for means the stream is answering someone else's request (desync)
	// or the key bytes were corrupted in flight — either way the value
	// below it must not be attributed to this key.
	if fields[1] != key {
		return nil, 0, false, fmt.Errorf("memcached: get %s: VALUE echoes key %q: %w", key, fields[1], ErrProtocol)
	}
	fl, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return nil, 0, false, fmt.Errorf("memcached: get: bad flags %q: %w", fields[2], ErrProtocol)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return nil, 0, false, fmt.Errorf("memcached: get: bad length %q: %w", fields[3], ErrProtocol)
	}
	buf := make([]byte, n+2)
	if _, err := readFull(c.r, buf); err != nil {
		return nil, 0, false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, false, err
	}
	if !strings.HasPrefix(end, "END") {
		return nil, 0, false, fmt.Errorf("memcached: get: missing END, got %q: %w", end, ErrProtocol)
	}
	return buf[:n], uint32(fl), true, nil
}

// Gets is GetFlags plus the item's CAS token for a later Cas call.
func (c *Client) Gets(key string) (value []byte, flags uint32, casid uint64, ok bool, err error) {
	c.arm()
	fmt.Fprintf(c.w, "gets %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return nil, 0, 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, 0, false, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "END" {
		return nil, 0, 0, false, nil
	}
	if busyLine(line) {
		return nil, 0, 0, false, fmt.Errorf("memcached: gets %s: %w", key, ErrBusy)
	}
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[0] != "VALUE" {
		return nil, 0, 0, false, fmt.Errorf("memcached: gets: unexpected %q: %w", line, ErrProtocol)
	}
	if fields[1] != key {
		return nil, 0, 0, false, fmt.Errorf("memcached: gets %s: VALUE echoes key %q: %w", key, fields[1], ErrProtocol)
	}
	fl, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("memcached: gets: bad flags %q: %w", fields[2], ErrProtocol)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return nil, 0, 0, false, fmt.Errorf("memcached: gets: bad length %q: %w", fields[3], ErrProtocol)
	}
	cas, err := strconv.ParseUint(fields[4], 10, 64)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("memcached: gets: bad cas %q: %w", fields[4], ErrProtocol)
	}
	buf := make([]byte, n+2)
	if _, err := readFull(c.r, buf); err != nil {
		return nil, 0, 0, false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, 0, false, err
	}
	if !strings.HasPrefix(end, "END") {
		return nil, 0, 0, false, fmt.Errorf("memcached: gets: missing END, got %q: %w", end, ErrProtocol)
	}
	return buf[:n], uint32(fl), cas, true, nil
}

// Cas stores value only if the item's CAS token still equals casid.
// EXISTS surfaces as ErrCasConflict and NOT_FOUND as ErrNotFound, both
// typed so callers can distinguish "a newer write won" from transport
// failure.
func (c *Client) Cas(key string, value []byte, flags uint32, casid uint64) error {
	c.arm()
	fmt.Fprintf(c.w, "cas %s %d 0 %d %d\r\n", key, flags, len(value), casid)
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	switch {
	case strings.HasPrefix(line, "STORED"):
		return nil
	case strings.HasPrefix(line, "EXISTS"):
		return fmt.Errorf("memcached: cas %s: %w", key, ErrCasConflict)
	case strings.HasPrefix(line, "NOT_FOUND"):
		return fmt.Errorf("memcached: cas %s: %w", key, ErrNotFound)
	case busyLine(line):
		return fmt.Errorf("memcached: cas %s: %w", key, ErrBusy)
	}
	return fmt.Errorf("memcached: cas %s: unexpected %q: %w", key, strings.TrimSpace(line), ErrProtocol)
}

// SetX is the last-writer-wins set ("setx"): the server stores only
// when the stamp carried in flags is not older than what it holds.
// stored=false is the LWW refusal — the replica already has a newer
// value, which the replicated write path counts as success (the newer
// write subsumes this one).
//
// The server's response echoes the FNV-64 hash of the key and the
// flags word it stored against, and SetX verifies both before counting
// the ack. Without the echo, a bit flip in the request's key field can
// produce a well-formed command the server stores under a different
// key and honestly answers STORED — a fabricated durability ack for
// this key. The echo makes the ack self-certifying: any mismatch
// (request corrupted, echo corrupted, stream desynced) is a typed
// protocol error, and the caller retries instead of trusting a write
// that never landed.
func (c *Client) SetX(key string, value []byte, flags uint32) (stored bool, err error) {
	if err := c.SetXSend(key, value, flags); err != nil {
		return false, err
	}
	return c.SetXRecv(key, flags)
}

// SetXForce is SetX with the server's tombstone stamp floor bypassed.
// Only the anti-entropy pull path uses it: a pulled value is proven to
// exist on a live replica, so its stamp may legitimately predate the
// destination's last tombstone purge.
func (c *Client) SetXForce(key string, value []byte, flags uint32) (stored bool, err error) {
	c.arm()
	fmt.Fprintf(c.w, "setx %s %d 0 %d force\r\n", key, flags, len(value))
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	return c.SetXRecv(key, flags)
}

// SetXSend writes a setx request and flushes it without waiting for the
// reply. Pair with SetXRecv. Splitting the round trip lets a replicated
// write pipeline its fan-out from one goroutine: send to every member,
// then collect every ack — both wires carry requests concurrently with
// no per-write goroutine. Between Send and Recv the connection must not
// be used for anything else.
func (c *Client) SetXSend(key string, value []byte, flags uint32) error {
	c.arm()
	fmt.Fprintf(c.w, "setx %s %d 0 %d\r\n", key, flags, len(value))
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	return c.w.Flush()
}

// SetXRecv reads and verifies the reply to a prior SetXSend, including
// the self-certifying key-hash/flags echo.
func (c *Client) SetXRecv(key string, flags uint32) (stored bool, err error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	line = strings.TrimRight(line, "\r\n")
	if busyLine(line) {
		return false, fmt.Errorf("memcached: setx %s: %w", key, ErrBusy)
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || (fields[0] != "STORED" && fields[0] != "NOT_STORED") {
		return false, fmt.Errorf("memcached: setx %s: unexpected %q: %w", key, line, ErrProtocol)
	}
	h, err1 := strconv.ParseUint(fields[1], 10, 64)
	fl, err2 := strconv.ParseUint(fields[2], 10, 32)
	if err1 != nil || err2 != nil {
		return false, fmt.Errorf("memcached: setx %s: bad echo %q: %w", key, line, ErrProtocol)
	}
	if h != KeyHash(key) || uint32(fl) != flags {
		return false, fmt.Errorf("memcached: setx %s: echo names hash %d flags %d, want %d %d: %w",
			key, h, fl, KeyHash(key), flags, ErrProtocol)
	}
	return fields[0] == "STORED", nil
}

// Add stores value only if the key is absent; ok reports whether it won.
func (c *Client) Add(key string, value []byte, flags uint32) (ok bool, err error) {
	c.arm()
	fmt.Fprintf(c.w, "add %s %d 0 %d\r\n", key, flags, len(value))
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	switch {
	case strings.HasPrefix(line, "STORED"):
		return true, nil
	case strings.HasPrefix(line, "NOT_STORED"):
		return false, nil
	case busyLine(line):
		return false, fmt.Errorf("memcached: add %s: %w", key, ErrBusy)
	}
	return false, fmt.Errorf("memcached: add %s: unexpected %q: %w", key, strings.TrimSpace(line), ErrProtocol)
}

// Digest asks the server for its order-independent fold over the keys
// hashing into [lo, hi] (wrap-aware) plus the item count.
func (c *Client) Digest(lo, hi uint64) (digest uint64, n int, err error) {
	c.arm()
	fmt.Fprintf(c.w, "digest %d %d\r\n", lo, hi)
	if err := c.w.Flush(); err != nil {
		return 0, 0, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, 0, err
	}
	line = strings.TrimRight(line, "\r\n")
	if busyLine(line) {
		return 0, 0, fmt.Errorf("memcached: digest: %w", ErrBusy)
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "DIGEST" {
		return 0, 0, fmt.Errorf("memcached: digest: unexpected %q: %w", line, ErrProtocol)
	}
	d, err1 := strconv.ParseUint(fields[1], 10, 64)
	cnt, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || cnt < 0 {
		return 0, 0, fmt.Errorf("memcached: digest: bad fields %q: %w", line, ErrProtocol)
	}
	return d, cnt, nil
}

// PurgeTombstones asks the server to drop every tombstone stamped below
// floor and to refuse future below-floor inserts of absent keys (the
// zombie-write guard). Returns the number of tombstones removed.
func (c *Client) PurgeTombstones(floor uint32) (purged int, err error) {
	c.arm()
	fmt.Fprintf(c.w, "purgetomb %d\r\n", floor)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, err
	}
	line = strings.TrimRight(line, "\r\n")
	if busyLine(line) {
		return 0, fmt.Errorf("memcached: purgetomb: %w", ErrBusy)
	}
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != "PURGED" {
		return 0, fmt.Errorf("memcached: purgetomb: unexpected %q: %w", line, ErrProtocol)
	}
	n, perr := strconv.Atoi(fields[1])
	if perr != nil || n < 0 {
		return 0, fmt.Errorf("memcached: purgetomb: bad count %q: %w", line, ErrProtocol)
	}
	return n, nil
}

// KeyInfo is one entry of a RangeKeys listing: a key plus its stored
// flags word (which carries the cluster's generation stamp).
type KeyInfo struct {
	Key   string
	Flags uint32
}

// RangeKeys lists the keys (with flags) hashing into [lo, hi].
func (c *Client) RangeKeys(lo, hi uint64) ([]KeyInfo, error) {
	c.arm()
	fmt.Fprintf(c.w, "keys %d %d\r\n", lo, hi)
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var out []KeyInfo
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		if busyLine(line) {
			return nil, fmt.Errorf("memcached: keys: %w", ErrBusy)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "KEY" {
			return nil, fmt.Errorf("memcached: keys: unexpected %q: %w", line, ErrProtocol)
		}
		fl, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("memcached: keys: bad flags %q: %w", fields[2], ErrProtocol)
		}
		out = append(out, KeyInfo{Key: fields[1], Flags: uint32(fl)})
	}
}

// Delete removes a key.
func (c *Client) Delete(key string) (bool, error) {
	c.arm()
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	if busyLine(line) {
		return false, fmt.Errorf("memcached: delete %s: %w", key, ErrBusy)
	}
	switch {
	case strings.HasPrefix(line, "DELETED"):
		return true, nil
	case strings.HasPrefix(line, "NOT_FOUND"):
		return false, nil
	}
	// Anything else (ERROR from a corrupted command line, a desynced
	// response) is a protocol violation, not a quiet no-op.
	return false, fmt.Errorf("memcached: delete %s: unexpected %q: %w", key, strings.TrimSpace(line), ErrProtocol)
}

// Version fetches the server's version banner — the health-probe
// operation: it is answered outside admission control, so it reports
// liveness even while the data plane sheds.
func (c *Client) Version() (string, error) {
	c.arm()
	fmt.Fprint(c.w, "version\r\n")
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, "VERSION ") {
		return "", fmt.Errorf("memcached: version: unexpected %q: %w", line, ErrProtocol)
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (map[string]int64, error) {
	c.arm()
	fmt.Fprint(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "STAT" {
			v, _ := strconv.ParseInt(fields[2], 10, 64)
			out[fields[1]] = v
		}
	}
}
