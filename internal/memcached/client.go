package memcached

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// Client is a minimal text-protocol client, enough for the YCSB load
// injector of §9.2 (6 clients × 6 threads over loopback).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close quits and closes the connection.
func (c *Client) Close() {
	fmt.Fprint(c.w, "quit\r\n")
	_ = c.w.Flush()
	_ = c.conn.Close()
}

// Set stores a value.
func (c *Client) Set(key string, value []byte, flags uint32) error {
	fmt.Fprintf(c.w, "set %s %d 0 %d\r\n", key, flags, len(value))
	_, _ = c.w.Write(value)
	fmt.Fprint(c.w, "\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.HasPrefix(line, "STORED") {
		return fmt.Errorf("memcached: set: %s", strings.TrimSpace(line))
	}
	return nil
}

// Get fetches a value; ok is false on miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return nil, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, false, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "END" {
		return nil, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "VALUE" {
		return nil, false, fmt.Errorf("memcached: get: unexpected %q", line)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, false, err
	}
	buf := make([]byte, n+2)
	if _, err := readFull(c.r, buf); err != nil {
		return nil, false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return nil, false, err
	}
	if !strings.HasPrefix(end, "END") {
		return nil, false, fmt.Errorf("memcached: get: missing END, got %q", end)
	}
	return buf[:n], true, nil
}

// Delete removes a key.
func (c *Client) Delete(key string) (bool, error) {
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	return strings.HasPrefix(line, "DELETED"), nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (map[string]int64, error) {
	fmt.Fprint(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "STAT" {
			v, _ := strconv.ParseInt(fields[2], 10, 64)
			out[fields[1]] = v
		}
	}
}
