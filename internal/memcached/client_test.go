package memcached

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"
)

// Direct coverage of the client's failure paths: the per-operation
// timeout and the SERVER_ERROR busy classification. Before the cluster
// router these were exercised only indirectly by the soaks; the router
// leans on both (IsTimeout decides redial-and-retry, ErrBusy decides
// backoff-without-redial), so each contract gets a test of its own.

// saturatedServer returns a server whose admission control sheds every
// data operation.
func saturatedServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", NewStore(64, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.SetAdmission(Admission{Saturated: func() bool { return true }})
	return srv
}

// TestClientBusySet: a shed set surfaces errors.Is(err, ErrBusy), the
// connection stays framed, and nothing was stored.
func TestClientBusySet(t *testing.T) {
	srv := saturatedServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated set: err = %v, want ErrBusy", err)
	}
	// The connection must still be usable: lift the saturation and the
	// same client round-trips a set+get.
	srv.SetAdmission(Admission{})
	if err := c.Set("k", []byte("v"), 7); err != nil {
		t.Fatalf("set after busy: %v", err)
	}
	v, flags, ok, err := c.GetFlags("k")
	if err != nil || !ok || string(v) != "v" || flags != 7 {
		t.Fatalf("get after busy = %q flags=%d ok=%v err=%v", v, flags, ok, err)
	}
	if srv.ShedOps() == 0 {
		t.Error("server recorded no shed ops")
	}
}

// TestClientBusyGetDelete: get and delete shed with the same typed error.
func TestClientBusyGetDelete(t *testing.T) {
	srv := saturatedServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get("k"); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated get: err = %v, want ErrBusy", err)
	}
	if _, err := c.Delete("k"); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated delete: err = %v, want ErrBusy", err)
	}
}

// TestClientBusyIsNotTimeout keeps the two transient classes separate:
// the router backs off on busy but redials on timeout.
func TestClientBusyIsNotTimeout(t *testing.T) {
	srv := saturatedServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Get("k")
	if !errors.Is(err, ErrBusy) || IsTimeout(err) {
		t.Fatalf("busy classified wrong: ErrBusy=%v IsTimeout=%v (%v)", errors.Is(err, ErrBusy), IsTimeout(err), err)
	}
}

// blackholeServer accepts connections and reads forever without ever
// answering — the shape of a hung shard.
func blackholeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				buf := make([]byte, 256)
				for {
					if _, err := r.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestClientTimeout: an armed deadline converts a hung server into a
// prompt typed timeout on every operation shape.
func TestClientTimeout(t *testing.T) {
	addr := blackholeServer(t)
	c, err := DialTimeout(addr, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, _, err := c.Get("k"); !IsTimeout(err) {
		t.Fatalf("hung get: err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v, deadline did not bound the wait", elapsed)
	}
	// The deadline must re-arm per operation, not decay.
	c2, err := DialTimeout(addr, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Set("k", []byte("v"), 0); !IsTimeout(err) {
		t.Fatalf("hung set: err = %v, want timeout", err)
	}
}

// TestClientTimeoutAgainstPausedServer drives the real server's Pause
// gate: in-flight operations stall past the client deadline, and after
// Resume a fresh client is served normally.
func TestClientTimeoutAgainstPausedServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewStore(64, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	srv.Pause(200 * time.Millisecond)
	c.SetTimeout(25 * time.Millisecond)
	if _, _, err := c.Get("k"); !IsTimeout(err) {
		t.Fatalf("paused get: err = %v, want timeout", err)
	}
	srv.Pause(0)
	c3, err := DialTimeout(srv.Addr(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if v, _, err := c3.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("get after resume = %q, %v", v, err)
	}
}

// TestClientVersionProbe: the probe operation answers even while the
// data plane sheds — liveness and overload must stay distinguishable.
func TestClientVersionProbe(t *testing.T) {
	srv := saturatedServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err := c.Version()
	if err != nil || v == "" {
		t.Fatalf("version under saturation = %q, %v", v, err)
	}
}

// TestServerKillSeversConnections: Kill mid-conversation surfaces a
// transport error to the client, not a hang.
func TestServerKillSeversConnections(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewStore(64, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTimeout(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	srv.Kill()
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("get against killed server succeeded")
	}
	// New connections must fail fast, too (listener closed).
	if _, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond); err == nil {
		t.Error("dial to killed server succeeded")
	}
}
