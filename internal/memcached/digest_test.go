package memcached

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRangeDigestOrderIndependent is the property anti-entropy depends
// on: two stores holding the same (key, flags, value) set must digest
// identically no matter the insertion order, bucket layout, or
// intervening churn.
func TestRangeDigestOrderIndependent(t *testing.T) {
	type kv struct {
		key   string
		value string
		flags uint32
	}
	var items []kv
	for i := 0; i < 200; i++ {
		items = append(items, kv{fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i), uint32(i * 3)})
	}
	// a: forward insertion into many buckets. b: shuffled insertion into
	// few buckets (different chain layout) with churn — extra keys
	// written then deleted, and each real key overwritten twice.
	a := NewStore(1024, 0)
	for _, it := range items {
		a.Set(it.key, []byte(it.value), it.flags)
	}
	b := NewStore(4, 0)
	rng := rand.New(rand.NewSource(42))
	for _, i := range rng.Perm(len(items)) {
		it := items[i]
		b.Set(it.key, []byte("garbage"), 999)
		b.Set("ephemeral"+it.key, []byte("x"), 0)
		b.Set(it.key, []byte(it.value), it.flags)
	}
	for _, it := range items {
		b.Delete("ephemeral" + it.key)
	}
	da, na := a.RangeDigest(0, ^uint64(0))
	db, nb := b.RangeDigest(0, ^uint64(0))
	if na != len(items) || nb != len(items) {
		t.Fatalf("counts = %d, %d, want %d", na, nb, len(items))
	}
	if da != db {
		t.Fatalf("equal contents digest differently: %d vs %d", da, db)
	}
}

// TestRangeDigestDetectsDivergence: any single-key difference in
// presence, value, or flags must flip the digest.
func TestRangeDigestDetectsDivergence(t *testing.T) {
	build := func() *Store {
		s := NewStore(64, 0)
		for i := 0; i < 50; i++ {
			s.Set(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)), uint32(i))
		}
		return s
	}
	base, _ := build().RangeDigest(0, ^uint64(0))

	missing := build()
	missing.Delete("key7")
	if d, _ := missing.RangeDigest(0, ^uint64(0)); d == base {
		t.Fatal("missing key not reflected in digest")
	}
	mutated := build()
	mutated.Set("key7", []byte("other"), 7)
	if d, _ := mutated.RangeDigest(0, ^uint64(0)); d == base {
		t.Fatal("changed value not reflected in digest")
	}
	restamped := build()
	restamped.Set("key7", []byte("val7"), 99)
	if d, _ := restamped.RangeDigest(0, ^uint64(0)); d == base {
		t.Fatal("changed flags (generation stamp) not reflected in digest")
	}
}

// TestRangeDigestWrapAround: a lo > hi range wraps the top of the hash
// space, and the wrapped range plus its complement partition the keys.
func TestRangeDigestWrapAround(t *testing.T) {
	s := NewStore(64, 0)
	for i := 0; i < 300; i++ {
		s.Set(fmt.Sprintf("key%d", i), []byte("v"), 0)
	}
	const cut1, cut2 = uint64(1) << 61, uint64(1) << 63
	_, inside := s.RangeDigest(cut1, cut2)
	_, wrapped := s.RangeDigest(cut2+1, cut1-1)
	if inside+wrapped != s.Len() {
		t.Fatalf("range %d + complement %d != total %d", inside, wrapped, s.Len())
	}
	if wrapped == 0 {
		t.Fatal("wrapped range matched nothing; test is vacuous")
	}
	dAll, nAll := s.RangeDigest(0, ^uint64(0))
	if nAll != s.Len() {
		t.Fatalf("full range counted %d of %d", nAll, s.Len())
	}
	dIn, _ := s.RangeDigest(cut1, cut2)
	dWrap, _ := s.RangeDigest(cut2+1, cut1-1)
	if dIn^dWrap != dAll {
		t.Fatal("XOR fold of a partition does not recompose the full digest")
	}
}

// TestKeyHashMatchesStoreBuckets: the exported KeyHash is the store's
// own bucket hash, so external range arithmetic (ring segments) aligns
// with RangeDigest/RangeKeys.
func TestKeyHashMatchesStoreBuckets(t *testing.T) {
	for _, k := range []string{"", "a", "user1234", "key\x00with\xffbytes"} {
		if KeyHash(k) != hashKey(k) {
			t.Fatalf("KeyHash(%q) diverges from hashKey", k)
		}
	}
}
