package memcached

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// The protocol-fuzz suite feeds the server the traffic a broken or
// hostile client produces — truncated bodies, impossible lengths,
// binary junk, stalls — and asserts two properties: the server never
// serves garbage (malformed commands get CLIENT_ERROR or a disconnect,
// never STORED), and it keeps answering well-formed clients afterwards.

// assertAlive proves the server still serves a fresh connection.
func assertAlive(t *testing.T, srv *Server) {
	t.Helper()
	c := dialRaw(t, srv.Addr())
	if got := c.send(t, "version\r\n"); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("server no longer serving: version -> %q", got)
	}
}

func TestFuzzTruncatedSetBody(t *testing.T) {
	srv := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Promise 10 bytes, deliver 3, hang up mid-body.
	fmt.Fprint(conn, "set k 0 0 10\r\nabc")
	_ = conn.Close()
	assertAlive(t, srv)
}

func TestFuzzOversizedLengthClosesConnection(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	if got := c.send(t, "set k 0 0 999999999\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("oversized length -> %q, want CLIENT_ERROR", got)
	}
	// The stream is unframeable, so the server must hang up.
	_ = c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Error("connection stayed open after an unframeable set")
	}
	assertAlive(t, srv)
}

func TestFuzzUnparseableLength(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	if got := c.send(t, "set k 0 0 banana\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("unparseable length -> %q, want CLIENT_ERROR", got)
	}
	// No body was promised credibly, so the connection stays usable.
	if got := c.send(t, "version\r\n"); !strings.HasPrefix(got, "VERSION") {
		t.Errorf("version after bad length -> %q", got)
	}
	assertAlive(t, srv)
}

func TestFuzzBadFlagsKeepsFraming(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	// Bad flags, but a credible length: the body is swallowed, the
	// command rejected, and the connection stays usable.
	if got := c.send(t, "set k nope 0 3\r\nabc\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("bad flags -> %q, want CLIENT_ERROR", got)
	}
	if got := c.send(t, "set k 7 0 3\r\nxyz\r\n"); got != "STORED" {
		t.Errorf("set after bad flags -> %q, want STORED", got)
	}
	if got := c.send(t, "get k\r\n"); got != "VALUE k 7 3" {
		t.Errorf("get -> %q, want VALUE k 7 3", got)
	}
}

func TestFuzzMissingBodyTerminator(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	// Exactly n+2 bytes, but the terminator slot holds junk. The value
	// must not be stored, and the next command must parse cleanly.
	if got := c.send(t, "set k 0 0 3\r\nabcXY"); !strings.HasPrefix(got, "CLIENT_ERROR bad data chunk") {
		t.Errorf("missing terminator -> %q, want CLIENT_ERROR bad data chunk", got)
	}
	if got := c.send(t, "get k\r\n"); got != "END" {
		t.Errorf("get after rejected set -> %q, want END (nothing stored)", got)
	}
}

func TestFuzzGarbageLines(t *testing.T) {
	srv := newTestServer(t)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		c := dialRaw(t, srv.Addr())
		junk := make([]byte, 1+rng.Intn(64))
		for j := range junk {
			junk[j] = byte(rng.Intn(256))
			if junk[j] == '\n' {
				junk[j] = ' '
			}
		}
		// A junk line answers ERROR or CLIENT_ERROR (a junk token
		// starting with "set" can reach the set parser), never STORED.
		got := c.send(t, string(junk)+"\r\n")
		if got == "STORED" {
			t.Fatalf("garbage line %q was STORED", junk)
		}
		_ = c.conn.Close()
	}
	assertAlive(t, srv)
}

func TestFuzzSlowClientDisconnected(t *testing.T) {
	srv := newTestServer(t)
	srv.SetDeadlines(50*time.Millisecond, 50*time.Millisecond)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The read deadline must free the pool worker and
	// close the connection rather than pinning it forever.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Error("silent connection was not closed by the read deadline")
	}
	srv.SetDeadlines(0, 0)
	assertAlive(t, srv)
}

func TestFuzzSlowBodyDisconnected(t *testing.T) {
	srv := newTestServer(t)
	srv.SetDeadlines(50*time.Millisecond, 50*time.Millisecond)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send the command line, then stall inside the body.
	fmt.Fprint(conn, "set k 0 0 10\r\nab")
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Error("stalled body was not cut off by the read deadline")
	}
	srv.SetDeadlines(0, 0)
	assertAlive(t, srv)
}

// fuzzSrv is the shared server of the native fuzz target: one per
// process, so each execution only pays for a connection.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

func fuzzServer() *Server {
	fuzzSrvOnce.Do(func() {
		srv, err := NewServer("127.0.0.1:0", NewStore(256, 0), 2)
		if err != nil {
			panic(err)
		}
		srv.SetDeadlines(100*time.Millisecond, 100*time.Millisecond)
		fuzzSrv = srv
	})
	return fuzzSrv
}

// FuzzProtocol throws arbitrary client bytes at a live server and checks
// the two invariants the deterministic fuzz suite asserts piecewise: the
// process never panics, and a fresh well-formed connection is still
// served afterwards. Run with: go test -fuzz FuzzProtocol ./internal/memcached
func FuzzProtocol(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"set k 0 0 3\r\nabc\r\n",
		"set k 0 0 10\r\nab",
		"set k 0 0 -1\r\n",
		"set k 0 0 999999999\r\n",
		"set k nope 0 3\r\nabc\r\n",
		"delete k\r\nstats\r\nversion\r\n",
		"gets a b c\r\nquit\r\n",
		"\x00\x01\x02garbage\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		srv := fuzzServer()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Skip("dial failed (fd pressure)")
		}
		_ = conn.SetDeadline(time.Now().Add(time.Second))
		_, _ = conn.Write(data)
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite() // EOF the server promptly
		}
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		_ = conn.Close()

		// The server must still answer a fresh client.
		probe, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("server unreachable after input %q: %v", data, err)
		}
		defer probe.Close()
		_ = probe.SetDeadline(time.Now().Add(2 * time.Second))
		fmt.Fprint(probe, "version\r\n")
		line, err := bufio.NewReader(probe).ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "VERSION") {
			t.Fatalf("server no longer serving after input %q: %q, %v", data, line, err)
		}
	})
}

func TestFuzzRandomSessions(t *testing.T) {
	srv := newTestServer(t)
	rng := rand.New(rand.NewSource(7))
	cmds := []string{
		"get k%d\r\n",
		"set k%d 0 0 3\r\nabc\r\n",
		"set k%d 0 0 -1\r\n",
		"delete k%d\r\n",
		"stats extra junk\r\n",
		"\r\n",
		"set\r\n",
		"set k 1 2\r\n",
		"gets\r\n",
	}
	for i := 0; i < 30; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			fmt.Fprintf(conn, cmds[rng.Intn(len(cmds))], rng.Intn(4))
		}
		_ = conn.Close()
	}
	assertAlive(t, srv)
}
