package memcached

import (
	"testing"
)

// TestStorePurgeTombstones: the generation-floor sweep removes only
// tombstones stamped below the floor, raises the floor atomically so
// absent-key inserts beneath it are refused (the zombie guard), and
// leaves live values, above-floor tombstones, and present-key LWW
// updates untouched.
func TestStorePurgeTombstones(t *testing.T) {
	s := NewStore(16, 0)
	s.SetLWW("live", []byte("v"), 5)
	s.SetLWW("oldtomb", nil, lwwTombBit|3)
	s.SetLWW("newtomb", nil, lwwTombBit|20)

	if n := s.PurgeTombstones(10); n != 1 {
		t.Fatalf("PurgeTombstones(10) removed %d, want 1", n)
	}
	if _, _, ok := s.Get("oldtomb"); ok {
		t.Fatal("below-floor tombstone survived the purge")
	}
	if _, flags, ok := s.Get("newtomb"); !ok || flags != lwwTombBit|20 {
		t.Fatalf("above-floor tombstone lost or mutated: ok=%v flags=%d", ok, flags)
	}
	if v, _, ok := s.Get("live"); !ok || string(v) != "v" {
		t.Fatal("live value lost to the purge (its stamp is below the floor but it is not a tombstone)")
	}

	// The floor refuses a zombie: an absent-key insert stamped below 10.
	if s.SetLWW("oldtomb", []byte("zombie"), 3) {
		t.Fatal("below-floor insert of an absent key accepted")
	}
	if _, _, ok := s.Get("oldtomb"); ok {
		t.Fatal("zombie visible after refused insert")
	}
	// ... but force bypasses it: an anti-entropy pull of a legitimately
	// old value must land.
	if !s.SetLWWForce("pulled", []byte("old"), 2) {
		t.Fatal("forced below-floor insert refused")
	}
	// Present keys are governed by the LWW comparison, not the floor: a
	// below-floor update of a below-floor value still applies.
	if !s.SetLWW("live", []byte("v2"), 6) {
		t.Fatal("below-floor update of a present key refused")
	}
	// An at-or-above-floor insert of an absent key is not a zombie.
	if !s.SetLWW("fresh", []byte("v"), 10) {
		t.Fatal("at-floor insert of an absent key refused")
	}

	// The floor only ratchets upward: a purge with a lower floor still
	// sweeps with the floor already recorded.
	if !s.SetLWWForce("tomb7", nil, lwwTombBit|7) {
		t.Fatal("forced tombstone insert refused")
	}
	if n := s.PurgeTombstones(4); n != 1 {
		t.Fatalf("PurgeTombstones(4) under a ratcheted floor of 10 removed %d, want 1", n)
	}
	if _, _, ok := s.Get("tomb7"); ok {
		t.Fatal("tombstone below the ratcheted floor survived a lower purge")
	}
}

// TestClientPurgeTombWire round-trips "purgetomb" and the setx "force"
// token over the wire.
func TestClientPurgeTombWire(t *testing.T) {
	store, cl := newCasPair(t)
	sealTomb := func(key string, stamp uint32) []byte {
		return SealValue(key, lwwTombBit|stamp, nil)
	}
	if ok, err := cl.SetX("t1", sealTomb("t1", 3), lwwTombBit|3); err != nil || !ok {
		t.Fatalf("SetX tombstone: ok=%v err=%v", ok, err)
	}
	if ok, err := cl.SetX("t2", sealTomb("t2", 20), lwwTombBit|20); err != nil || !ok {
		t.Fatalf("SetX tombstone: ok=%v err=%v", ok, err)
	}
	n, err := cl.PurgeTombstones(10)
	if err != nil || n != 1 {
		t.Fatalf("PurgeTombstones = (%d, %v), want (1, nil)", n, err)
	}
	if _, _, ok := store.Get("t1"); ok {
		t.Fatal("below-floor tombstone survived wire purge")
	}
	// A plain setx below the floor is the zombie: refused as NOT_STORED.
	if ok, err := cl.SetX("z", SealValue("z", 3, []byte("v")), 3); err != nil || ok {
		t.Fatalf("below-floor SetX = (%v, %v), want refused", ok, err)
	}
	// The force variant is the anti-entropy pull: it lands.
	if ok, err := cl.SetXForce("z", SealValue("z", 3, []byte("v")), 3); err != nil || !ok {
		t.Fatalf("below-floor SetXForce = (%v, %v), want stored", ok, err)
	}
	if v, _, ok := store.Get("z"); !ok || string(v) != string(SealValue("z", 3, []byte("v"))) {
		t.Fatal("forced pull not visible")
	}
}
