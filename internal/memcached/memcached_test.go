package memcached

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreBasic(t *testing.T) {
	s := NewStore(1024, 0)
	s.Set("k", []byte("v"), 7)
	v, flags, ok := s.Get("k")
	if !ok || string(v) != "v" || flags != 7 {
		t.Fatalf("Get = (%q,%d,%v)", v, flags, ok)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Error("missing key found")
	}
	if !s.Delete("k") || s.Delete("k") {
		t.Error("delete semantics wrong")
	}
}

func TestStoreReplace(t *testing.T) {
	s := NewStore(16, 0)
	s.Set("k", []byte("aaaa"), 0)
	s.Set("k", []byte("bb"), 0)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Bytes() != int64(len("k")+len("bb")) {
		t.Errorf("Bytes = %d", s.Bytes())
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity for ~3 items of 10 bytes (key 2 + value 8).
	s := NewStore(16, 30)
	for i := 0; i < 5; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte("12345678"), 0)
	}
	if s.Bytes() > 30 {
		t.Errorf("Bytes = %d exceeds capacity", s.Bytes())
	}
	// The oldest keys must be gone, the newest present.
	if _, _, ok := s.Get("k0"); ok {
		t.Error("k0 survived eviction")
	}
	if _, _, ok := s.Get("k4"); !ok {
		t.Error("k4 evicted despite being newest")
	}
	_, _, ev := s.Stats()
	if ev == 0 {
		t.Error("no evictions counted")
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	s := NewStore(16, 30)
	s.Set("a1", []byte("12345678"), 0)
	s.Set("b1", []byte("12345678"), 0)
	s.Set("c1", []byte("12345678"), 0)
	s.Get("a1") // refresh a1
	s.Set("d1", []byte("12345678"), 0)
	if _, _, ok := s.Get("a1"); !ok {
		t.Error("recently used a1 evicted")
	}
	if _, _, ok := s.Get("b1"); ok {
		t.Error("LRU b1 not evicted")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(4096, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("k%d", i%100)
				s.Set(key, []byte{byte(w)}, 0)
				s.Get(key)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
}

func TestServerProtocol(t *testing.T) {
	store := NewStore(1024, 0)
	srv, err := NewServer("127.0.0.1:0", store, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set("user:1", []byte("alice"), 42); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, ok, err := c.Get("user:1")
	if err != nil || !ok || string(v) != "alice" {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := c.Get("nope"); ok {
		t.Error("missing key returned a value")
	}
	del, err := c.Delete("user:1")
	if err != nil || !del {
		t.Fatalf("Delete = (%v,%v)", del, err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["get_hits"] != 1 || stats["get_misses"] != 1 {
		t.Errorf("stats = %v", stats)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	store := NewStore(4096, 0)
	srv, err := NewServer("127.0.0.1:0", store, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, opsEach = 6, 200
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("c%d-k%d", cid, i)
				if err := c.Set(key, []byte("payload"), 0); err != nil {
					errs <- err
					return
				}
				if v, ok, err := c.Get(key); err != nil || !ok || string(v) != "payload" {
					errs <- fmt.Errorf("get %s = (%q,%v,%v)", key, v, ok, err)
					return
				}
			}
		}(cid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if store.Len() != clients*opsEach {
		t.Errorf("Len = %d, want %d", store.Len(), clients*opsEach)
	}
}

func TestBinarySafeValues(t *testing.T) {
	store := NewStore(64, 0)
	srv, err := NewServer("127.0.0.1:0", store, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := []byte("line1\r\nline2\x00\xffend")
	if err := c.Set("bin", data, 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("bin")
	if err != nil || !ok || string(v) != string(data) {
		t.Fatalf("binary roundtrip failed: %q vs %q", v, data)
	}
}
