package memcached

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"privagic/internal/obs"
)

// RegisterMetrics publishes the server's counters into reg (catalogued in
// OBSERVABILITY.md). All gauges read counters the server and store
// maintain anyway; serving traffic pays nothing new.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.Gauge("memcached.shed_ops", s.shedOps.Load)
	reg.Gauge("memcached.inflight", func() int64 { return int64(s.inflight.Load()) })
	reg.Gauge("memcached.get_hits", func() int64 { h, _, _ := s.store.Stats(); return int64(h) })
	reg.Gauge("memcached.get_misses", func() int64 { _, m, _ := s.store.Stats(); return int64(m) })
	reg.Gauge("memcached.evictions", func() int64 { _, _, e := s.store.Stats(); return int64(e) })
	reg.Gauge("memcached.curr_items", func() int64 { return int64(s.store.Len()) })
}

// DebugServer is the opt-in diagnostics HTTP endpoint: expvar at
// /debug/vars, pprof under /debug/pprof/, and the registry snapshot as
// sorted text at /debug/metrics. It is deliberately a separate listener
// from the memcached port — diagnostics must stay reachable when the data
// plane sheds load, and must be bindable to loopback only.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once
}

// StartDebug serves the diagnostics endpoint on addr ("127.0.0.1:0" picks
// a free port). reg may be nil (the /debug/metrics route then reports an
// empty snapshot). Close the returned server when done.
func StartDebug(addr string, reg *obs.Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obs.Render(reg.Snapshot()))
	})
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the endpoint's listening address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the endpoint. Idempotent.
func (d *DebugServer) Close() {
	d.once.Do(func() { _ = d.srv.Close() })
}
