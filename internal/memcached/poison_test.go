package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// lateServer answers the first get only after delay — past the client's
// deadline — and then serves every subsequent request promptly. It is
// the trap a timed-out-but-reused connection walks into: the late
// response is still queued in the stream when the next request's reply
// is read.
func lateServer(t *testing.T, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				first := true
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					fields := strings.Fields(line)
					if len(fields) < 2 || fields[0] != "get" {
						return
					}
					if first {
						time.Sleep(delay)
						first = false
					}
					fmt.Fprintf(conn, "VALUE %s 0 5\r\nhello\r\nEND\r\n", fields[1])
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestTimeoutPoisonsConnection is the poisoning contract made concrete:
// after an operation times out, the connection MUST be closed, because
// the late response is still in flight. A caller that reuses it anyway
// reads that stale response as the answer to its next request — and the
// client's key-echo check must surface the desync as ErrProtocol, never
// as a wrong answer attributed to the new key.
func TestTimeoutPoisonsConnection(t *testing.T) {
	addr := lateServer(t, 80*time.Millisecond)
	c, err := DialTimeout(addr, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Get("k1"); !IsTimeout(err) {
		t.Fatalf("first get: err = %v, want timeout", err)
	}

	// Contract violation on purpose: reuse without Close. The late k1
	// response arrives and is read as k2's answer.
	time.Sleep(100 * time.Millisecond) // let the stale response land
	c.SetTimeout(200 * time.Millisecond)
	v, _, ok, err := c.GetFlags("k2")
	if err == nil && ok {
		t.Fatalf("poisoned reuse returned a value (%q) — desync served a wrong answer", v)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("poisoned reuse: err = %v, want ErrProtocol (typed desync)", err)
	}
}

// TestAbortUnblocksInflightOperation: Abort from another goroutine makes
// a blocked operation fail promptly with a transport error — the hedge
// loser's cancellation path.
func TestAbortUnblocksInflightOperation(t *testing.T) {
	addr := blackholeServer(t)
	c, err := DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get("k")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the get block in its read
	c.Abort()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted get returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not unblock the in-flight get")
	}
}
