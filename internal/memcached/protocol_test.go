package memcached

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
)

// rawClient sends raw protocol lines for robustness testing.
type rawClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &rawClient{conn: conn, r: bufio.NewReader(conn)}
}

func (c *rawClient) send(t *testing.T, s string) string {
	t.Helper()
	if _, err := c.conn.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", NewStore(256, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestProtocolUnknownCommand(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	if got := c.send(t, "frobnicate\r\n"); got != "ERROR" {
		t.Errorf("unknown command -> %q, want ERROR", got)
	}
	// The connection survives.
	if got := c.send(t, "version\r\n"); !strings.HasPrefix(got, "VERSION") {
		t.Errorf("version after error -> %q", got)
	}
}

func TestProtocolMalformedSet(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	if got := c.send(t, "set onlykey\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("short set -> %q", got)
	}
	if got := c.send(t, "set k 0 0 notanumber\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("bad byte count -> %q", got)
	}
	if got := c.send(t, "set k 0 0 -5\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("negative byte count -> %q", got)
	}
	// Oversized values are rejected before reading the body.
	if got := c.send(t, fmt.Sprintf("set k 0 0 %d\r\n", 1<<30)); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("giant value -> %q", got)
	}
}

func TestProtocolMultiGet(t *testing.T) {
	srv := newTestServer(t)
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if err := cl.Set(fmt.Sprintf("k%d", i), []byte{byte('a' + i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	c := dialRaw(t, srv.Addr())
	if _, err := c.conn.Write([]byte("get k0 k1 missing k2\r\n")); err != nil {
		t.Fatal(err)
	}
	var values int
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			break
		}
		if strings.HasPrefix(line, "VALUE ") {
			values++
			// Consume the data block.
			if _, err := c.r.ReadString('\n'); err != nil {
				t.Fatal(err)
			}
		}
	}
	if values != 3 {
		t.Errorf("multi-get returned %d values, want 3", values)
	}
}

func TestProtocolEmptyAndWhitespaceLines(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	// Empty lines are ignored; the next real command answers.
	if got := c.send(t, "\r\n\r\nversion\r\n"); !strings.HasPrefix(got, "VERSION") {
		t.Errorf("after empty lines -> %q", got)
	}
}

func TestProtocolQuitClosesCleanly(t *testing.T) {
	srv := newTestServer(t)
	c := dialRaw(t, srv.Addr())
	if _, err := c.conn.Write([]byte("quit\r\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Error("connection still open after quit")
	}
}
