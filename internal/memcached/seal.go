package memcached

import (
	"encoding/binary"
	"hash/fnv"
)

// Value sealing — the end-to-end integrity tag shared by the cluster
// router (which seals on write and verifies on read, DESIGN.md §15) and
// the server's replicated-write verb (which verifies at the store
// boundary, §16). The text protocol frames messages but does not
// checksum them, so a bit flip on the wire that survives parsing would
// otherwise come back as a plausible wrong answer — or, on the write
// path, land as a corrupt copy the server honestly acknowledges. Every
// crossing between trust domains re-verifies the same tag: client to
// primary, primary to replica, replica back to client.

// TagLen is the size of the integrity tag prefixed to sealed values.
const TagLen = 8

// ValueTag computes the FNV-1a-64 tag over (key, NUL, flags
// little-endian, payload). Including the key catches cross-key serving
// that defeats the header echo check (a corrupted key that happens to
// name another live key); including flags catches a generation stamp
// damaged in flight, which would otherwise let a stale value masquerade
// as fresh.
func ValueTag(key string, flags uint32, payload []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0, byte(flags), byte(flags >> 8), byte(flags >> 16), byte(flags >> 24)})
	_, _ = h.Write(payload)
	return h.Sum64()
}

// SealValue prefixes payload with its integrity tag for storage.
func SealValue(key string, flags uint32, payload []byte) []byte {
	out := make([]byte, TagLen+len(payload))
	binary.BigEndian.PutUint64(out, ValueTag(key, flags, payload))
	copy(out[TagLen:], payload)
	return out
}

// OpenValue verifies and strips the tag from a sealed value. ok is
// false when the value is too short to carry a tag or the tag does not
// match — both mean the bytes cannot be trusted as an answer for key.
func OpenValue(key string, flags uint32, sealed []byte) (payload []byte, ok bool) {
	if len(sealed) < TagLen {
		return nil, false
	}
	tag := binary.BigEndian.Uint64(sealed)
	payload = sealed[TagLen:]
	if tag != ValueTag(key, flags, payload) {
		return nil, false
	}
	return payload, true
}
