package memcached

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server speaks the memcached text protocol over TCP. Connections are
// dispatched to a fixed pool of worker goroutines, mirroring the paper's
// configuration ("a worker thread, a network listener thread, and some
// miscellaneous background threads", §9.2).
type Server struct {
	store    *Store
	listener net.Listener
	workers  int

	conns chan net.Conn
	wg    sync.WaitGroup

	// Per-operation I/O deadlines in nanoseconds (0 = none): a slow or
	// stalled client cannot pin a pool worker forever.
	readTimeout  atomic.Int64
	writeTimeout atomic.Int64

	// Admission control (SetAdmission): commands beyond the inflight cap,
	// or arriving while the backend reports saturation, are shed with
	// SERVER_ERROR busy instead of queuing without bound.
	admission atomic.Pointer[Admission]
	inflight  atomic.Int32
	shedOps   atomic.Int64

	// pausedUntil (UnixNano) stalls every response while set — the
	// chaos harness's "hung shard": connections stay open, commands are
	// read, nothing is answered until the deadline passes. 0 = running.
	pausedUntil atomic.Int64

	// done tears down the accept loop without racing the conns channel
	// close; active tracks live connections so Kill can sever them.
	done chan struct{}

	mu       sync.Mutex
	closed   bool
	killed   bool
	active   map[net.Conn]struct{}
	acceptWG sync.WaitGroup
}

// Admission is the server's overload policy. Shedding answers fast and
// keeps the connection framed (a shed set still swallows its body), so a
// loaded server degrades into explicit SERVER_ERROR busy responses rather
// than into unbounded queueing and timeouts — the shed-vs-queue half of
// the runtime's end-to-end backpressure story.
type Admission struct {
	// MaxInflight caps commands being processed concurrently (0 = no
	// cap). With one command per pool worker this is effectively "how
	// many workers may be busy before new commands are shed".
	MaxInflight int32
	// Saturated, when set, is probed per command; true sheds it. Wire it
	// to prt.Runtime.Saturated so a full worker queue in the partitioned
	// backend pushes back to the network edge.
	Saturated func() bool
}

// SetAdmission installs (or, with a zero Admission, removes) the overload
// policy. Safe to call while serving.
func (s *Server) SetAdmission(a Admission) {
	if a.MaxInflight <= 0 && a.Saturated == nil {
		s.admission.Store(nil)
		return
	}
	s.admission.Store(&a)
}

// ShedOps reports how many commands admission control refused.
func (s *Server) ShedOps() int64 { return s.shedOps.Load() }

// admit decides whether the next command may start.
func (s *Server) admit() bool {
	a := s.admission.Load()
	if a == nil {
		return true
	}
	if a.MaxInflight > 0 && s.inflight.Load() >= a.MaxInflight {
		return false
	}
	if a.Saturated != nil && a.Saturated() {
		return false
	}
	return true
}

// SetDeadlines bounds how long one read (a command line or a set body)
// and one write flush may take per connection. Zero disables a bound.
// Safe to call while the server is running; new operations pick it up.
func (s *Server) SetDeadlines(read, write time.Duration) {
	s.readTimeout.Store(int64(read))
	s.writeTimeout.Store(int64(write))
}

// armRead applies the read deadline before a blocking read.
func (s *Server) armRead(conn net.Conn) {
	if d := s.readTimeout.Load(); d > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(time.Duration(d)))
	}
}

// armWrite applies the write deadline before a flush.
func (s *Server) armWrite(conn net.Conn) {
	if d := s.writeTimeout.Load(); d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(time.Duration(d)))
	}
}

// NewServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewServer(addr string, store *Store, workers int) (*Server, error) {
	if workers < 1 {
		workers = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: listen: %w", err)
	}
	s := &Server{store: store, listener: ln, workers: workers,
		conns: make(chan net.Conn), done: make(chan struct{}), active: map[net.Conn]struct{}{}}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and waits for workers to drain. In-flight
// connections are served to completion (their clients quit or EOF).
func (s *Server) Close() {
	s.shutdown(false)
}

// Kill is the chaos-mode crash: it severs every live connection
// mid-operation, stops the listener, and tears the worker pool down
// without the graceful drain. Clients see reset/EOF errors, exactly the
// failure surface a died shard presents to the cluster router.
func (s *Server) Kill() {
	s.shutdown(true)
}

func (s *Server) shutdown(kill bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.killed = kill
	var victims []net.Conn
	if kill {
		for c := range s.active {
			victims = append(victims, c)
		}
	}
	s.mu.Unlock()
	close(s.done)
	_ = s.listener.Close()
	for _, c := range victims {
		_ = c.Close()
	}
	// The accept loop can no longer be mid-send on conns (done is
	// closed and it exits before sending), so closing the channel is
	// race-free; workers drain any handed-but-unserved connections.
	s.acceptWG.Wait()
	close(s.conns)
	s.wg.Wait()
}

// Pause stalls every response for d — the simulated hung shard: commands
// are still read, connections stay open, nothing is answered until the
// deadline passes. A second call extends or shortens the stall; Pause(0)
// resumes immediately.
func (s *Server) Pause(d time.Duration) {
	if d <= 0 {
		s.pausedUntil.Store(0)
		return
	}
	s.pausedUntil.Store(time.Now().Add(d).UnixNano())
}

// gate blocks while the server is paused, waking periodically so a
// concurrent Kill still tears the worker down promptly.
func (s *Server) gate() {
	for {
		until := s.pausedUntil.Load()
		if until == 0 {
			return
		}
		now := time.Now().UnixNano()
		if until <= now {
			return
		}
		d := time.Duration(until - now)
		if d > 2*time.Millisecond {
			d = 2 * time.Millisecond
		}
		time.Sleep(d)
	}
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		select {
		case s.conns <- conn:
		case <-s.done:
			_ = conn.Close()
			return
		}
	}
}

func (s *Server) workerLoop() {
	defer s.wg.Done()
	for conn := range s.conns {
		s.serve(conn)
	}
}

// maxLineLen bounds one command line: a client streaming an endless line
// is unframeable and gets disconnected instead of growing the buffer.
const maxLineLen = 8 << 10

// serve handles one connection until quit, EOF, or a deadline expiry.
func (s *Server) serve(conn net.Conn) {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.active[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.active, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		s.armRead(conn)
		line, err := r.ReadString('\n')
		if err != nil || len(line) > maxLineLen {
			return
		}
		s.gate()
		line = strings.TrimRight(line, "\r\n")
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "get", "gets":
			if !s.admit() {
				s.shedOps.Add(1)
				fmt.Fprint(w, "SERVER_ERROR busy\r\n")
				break
			}
			s.inflight.Add(1)
			s.handleGet(w, fields[1:], fields[0] == "gets")
			s.inflight.Add(-1)
		case "set", "cas", "add", "setx":
			if !s.admit() {
				s.shedOps.Add(1)
				if !s.shedSet(conn, r, w, fields[1:]) {
					_ = w.Flush()
					return
				}
				break
			}
			s.inflight.Add(1)
			ok := s.handleStore(conn, r, w, fields[0], fields[1:])
			s.inflight.Add(-1)
			if !ok {
				_ = w.Flush()
				return
			}
		case "delete":
			if !s.admit() {
				s.shedOps.Add(1)
				fmt.Fprint(w, "SERVER_ERROR busy\r\n")
				break
			}
			s.inflight.Add(1)
			if len(fields) >= 2 && s.store.Delete(fields[1]) {
				fmt.Fprint(w, "DELETED\r\n")
			} else {
				fmt.Fprint(w, "NOT_FOUND\r\n")
			}
			s.inflight.Add(-1)
		case "digest":
			if !s.admit() {
				s.shedOps.Add(1)
				fmt.Fprint(w, "SERVER_ERROR busy\r\n")
				break
			}
			s.inflight.Add(1)
			s.handleDigest(w, fields[1:])
			s.inflight.Add(-1)
		case "keys":
			if !s.admit() {
				s.shedOps.Add(1)
				fmt.Fprint(w, "SERVER_ERROR busy\r\n")
				break
			}
			s.inflight.Add(1)
			s.handleKeys(w, fields[1:])
			s.inflight.Add(-1)
		case "purgetomb":
			if !s.admit() {
				s.shedOps.Add(1)
				fmt.Fprint(w, "SERVER_ERROR busy\r\n")
				break
			}
			s.inflight.Add(1)
			s.handlePurgeTomb(w, fields[1:])
			s.inflight.Add(-1)
		case "stats":
			hits, misses, evictions := s.store.Stats()
			fmt.Fprintf(w, "STAT get_hits %d\r\nSTAT get_misses %d\r\nSTAT evictions %d\r\nSTAT curr_items %d\r\nSTAT shed_ops %d\r\nEND\r\n",
				hits, misses, evictions, s.store.Len(), s.shedOps.Load())
		case "version":
			fmt.Fprint(w, "VERSION privagic-mini-1.6.12\r\n")
		case "quit":
			_ = w.Flush()
			return
		default:
			fmt.Fprint(w, "ERROR\r\n")
		}
		s.armWrite(conn)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handleGet(w *bufio.Writer, keys []string, withCas bool) {
	for _, key := range keys {
		if withCas {
			if v, flags, casid, ok := s.store.Gets(key); ok {
				fmt.Fprintf(w, "VALUE %s %d %d %d\r\n", key, flags, len(v), casid)
				_, _ = w.Write(v)
				fmt.Fprint(w, "\r\n")
			}
			continue
		}
		if v, flags, ok := s.store.Get(key); ok {
			fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(v))
			_, _ = w.Write(v)
			fmt.Fprint(w, "\r\n")
		}
	}
	fmt.Fprint(w, "END\r\n")
}

// handlePurgeTomb answers "purgetomb <floor>" with "PURGED <n>": it
// removes every tombstone whose stamp is below the floor and raises the
// store's tombstone floor so zombie writes below it cannot re-insert
// (see Store.PurgeTombstones). Sent only by the router's generation-floor
// sweep when the whole replica set is converged.
func (s *Server) handlePurgeTomb(w *bufio.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	floor, err := strconv.ParseUint(args[0], 10, 32)
	if err != nil {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	fmt.Fprintf(w, "PURGED %d\r\n", s.store.PurgeTombstones(uint32(floor)))
}

// handleDigest answers "digest <lo> <hi>" with "DIGEST <fold> <count>" —
// the order-independent segment digest anti-entropy compares.
func (s *Server) handleDigest(w *bufio.Writer, args []string) {
	if len(args) != 2 {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	lo, err1 := strconv.ParseUint(args[0], 10, 64)
	hi, err2 := strconv.ParseUint(args[1], 10, 64)
	if err1 != nil || err2 != nil {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	d, n := s.store.RangeDigest(lo, hi)
	fmt.Fprintf(w, "DIGEST %d %d\r\n", d, n)
}

// handleKeys answers "keys <lo> <hi>" with one "KEY <key> <flags>" line
// per item in the hash range, terminated by END.
func (s *Server) handleKeys(w *bufio.Writer, args []string) {
	if len(args) != 2 {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	lo, err1 := strconv.ParseUint(args[0], 10, 64)
	hi, err2 := strconv.ParseUint(args[1], 10, 64)
	if err1 != nil || err2 != nil {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return
	}
	for _, it := range s.store.RangeKeys(lo, hi) {
		fmt.Fprintf(w, "KEY %s %d\r\n", it.Key, it.Flags)
	}
	fmt.Fprint(w, "END\r\n")
}

// maxItemSize caps a set body (the classic 8 MiB item limit).
const maxItemSize = 8 << 20

// handleStore parses "set|add <key> <flags> <exptime> <bytes>" or
// "cas <key> <flags> <exptime> <bytes> <casid>" plus the data block;
// returns false on a connection-fatal error. Malformed commands answer
// CLIENT_ERROR; the connection only closes when the stream can no
// longer be framed (unparseable or oversized length, truncated body) —
// anything else would let this worker serve garbage forever.
func (s *Server) handleStore(conn net.Conn, r *bufio.Reader, w *bufio.Writer, verb string, args []string) bool {
	if len(args) < 4 || (verb == "cas" && len(args) < 5) {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return true
	}
	n, err := strconv.Atoi(args[3])
	if err != nil || n < 0 {
		// No credible length: treat the stream as line-framed and keep
		// the connection — body lines, if any, will read as unknown
		// commands and answer ERROR, never get stored.
		fmt.Fprint(w, "CLIENT_ERROR bad data chunk\r\n")
		return true
	}
	if n > maxItemSize {
		// A real body of this size would have to be swallowed to stay
		// framed; hang up instead of buffering an attacker's gigabyte.
		fmt.Fprint(w, "CLIENT_ERROR bad data chunk\r\n")
		return false
	}
	flags, flagsErr := strconv.ParseUint(args[1], 10, 32)
	_, expErr := strconv.Atoi(args[2])
	var casid uint64
	var casErr error
	if verb == "cas" {
		casid, casErr = strconv.ParseUint(args[4], 10, 64)
	}
	data := make([]byte, n+2)
	s.armRead(conn)
	if _, err := readFull(r, data); err != nil {
		return false
	}
	switch {
	case data[n] != '\r' || data[n+1] != '\n':
		// The framed bytes exist but the terminator is wrong; the
		// stream stays aligned, so keep the connection.
		fmt.Fprint(w, "CLIENT_ERROR bad data chunk\r\n")
	case flagsErr != nil || expErr != nil || casErr != nil:
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
	case verb == "cas":
		// cas carries sealed cluster-path bodies only (read-repair's CAS
		// write-back): verify the integrity tag at the store boundary
		// exactly as setx does. Without this, a repair payload corrupted
		// in transit is acknowledged and stored, caught only at the next
		// read — which triggers another repair of the same key, and the
		// corrupt copy can ping-pong. Every trust-domain crossing
		// re-verifies.
		if _, okSeal := OpenValue(args[0], uint32(flags), data[:n]); !okSeal {
			fmt.Fprint(w, "CLIENT_ERROR bad seal\r\n")
			break
		}
		switch s.store.Cas(args[0], data[:n], uint32(flags), casid) {
		case CasStored:
			fmt.Fprint(w, "STORED\r\n")
		case CasExists:
			fmt.Fprint(w, "EXISTS\r\n")
		default:
			fmt.Fprint(w, "NOT_FOUND\r\n")
		}
	case verb == "add":
		// Same contract as cas: add is the other read-repair store verb
		// (refilling a member that lost its copy), so its body is sealed
		// and must verify before it is acknowledged.
		if _, okSeal := OpenValue(args[0], uint32(flags), data[:n]); !okSeal {
			fmt.Fprint(w, "CLIENT_ERROR bad seal\r\n")
			break
		}
		if s.store.Add(args[0], data[:n], uint32(flags)) {
			fmt.Fprint(w, "STORED\r\n")
		} else {
			fmt.Fprint(w, "NOT_STORED\r\n")
		}
	case verb == "setx":
		// Last-writer-wins set: stores only when the stamp in flags is
		// not older than what is held (see Store.SetLWW). NOT_STORED is
		// the LWW refusal, not an error — the replica already holds a
		// newer value.
		//
		// The response echoes the FNV-64 hash of the key and the flags
		// word as stored. A bit flip in the request's key or flags field
		// can still yield a well-formed command — the server then stores
		// under the wrong key (or the wrong stamp) and, without the echo,
		// answers a bare STORED that the client must take as a durable
		// ack for a write that never landed where it believes. The echo
		// lets the client verify what was actually stored; a mismatch
		// (or a corrupted echo) surfaces as a typed protocol error and
		// the write is retried, never falsely acked.
		//
		// The body is verified against its integrity seal before it is
		// stored: a payload flipped in transit (key and flags line
		// intact, so the echo alone would pass) must be refused, not
		// acknowledged — an acked-but-corrupt copy is a latent loss that
		// surfaces when the good replica dies and anti-entropy clones
		// the bad one. Refusal keeps the stream framed; the client sees
		// a typed error and retries with a fresh stamp.
		if _, okSeal := OpenValue(args[0], uint32(flags), data[:n]); !okSeal {
			fmt.Fprint(w, "CLIENT_ERROR bad seal\r\n")
			break
		}
		//
		// The optional trailing "force" token bypasses the tombstone
		// stamp floor (see Store.SetLWWForce): it is sent only by the
		// anti-entropy pull path, which copies values proven to exist on
		// a live replica and may legitimately carry stamps from before
		// the last tombstone purge.
		var stored bool
		if len(args) >= 5 && args[4] == "force" {
			stored = s.store.SetLWWForce(args[0], data[:n], uint32(flags))
		} else {
			stored = s.store.SetLWW(args[0], data[:n], uint32(flags))
		}
		if stored {
			fmt.Fprintf(w, "STORED %d %d\r\n", KeyHash(args[0]), uint32(flags))
		} else {
			fmt.Fprintf(w, "NOT_STORED %d %d\r\n", KeyHash(args[0]), uint32(flags))
		}
	default:
		s.store.Set(args[0], data[:n], uint32(flags))
		fmt.Fprint(w, "STORED\r\n")
	}
	return true
}

// shedSet refuses a set under overload while preserving the stream
// framing: a credible body is swallowed exactly like handleSet would,
// then the client gets SERVER_ERROR busy. Framing-fatal inputs follow
// handleSet's rules (false = hang up). Nothing is ever stored.
func (s *Server) shedSet(conn net.Conn, r *bufio.Reader, w *bufio.Writer, args []string) bool {
	if len(args) < 4 {
		fmt.Fprint(w, "SERVER_ERROR busy\r\n")
		return true
	}
	n, err := strconv.Atoi(args[3])
	if err != nil || n < 0 {
		fmt.Fprint(w, "SERVER_ERROR busy\r\n")
		return true
	}
	if n > maxItemSize {
		fmt.Fprint(w, "SERVER_ERROR busy\r\n")
		return false
	}
	data := make([]byte, n+2)
	s.armRead(conn)
	if _, err := readFull(r, data); err != nil {
		return false
	}
	fmt.Fprint(w, "SERVER_ERROR busy\r\n")
	return true
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
