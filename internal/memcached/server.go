package memcached

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Server speaks the memcached text protocol over TCP. Connections are
// dispatched to a fixed pool of worker goroutines, mirroring the paper's
// configuration ("a worker thread, a network listener thread, and some
// miscellaneous background threads", §9.2).
type Server struct {
	store    *Store
	listener net.Listener
	workers  int

	conns chan net.Conn
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewServer(addr string, store *Store, workers int) (*Server, error) {
	if workers < 1 {
		workers = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: listen: %w", err)
	}
	s := &Server{store: store, listener: ln, workers: workers, conns: make(chan net.Conn)}
	s.wg.Add(1)
	go s.acceptLoop()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and waits for workers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.listener.Close()
	close(s.conns)
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			_ = conn.Close()
			return
		}
		s.conns <- conn
	}
}

func (s *Server) workerLoop() {
	defer s.wg.Done()
	for conn := range s.conns {
		s.serve(conn)
	}
}

// serve handles one connection until quit or EOF.
func (s *Server) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "get", "gets":
			s.handleGet(w, fields[1:])
		case "set":
			if !s.handleSet(r, w, fields[1:]) {
				return
			}
		case "delete":
			if len(fields) >= 2 && s.store.Delete(fields[1]) {
				fmt.Fprint(w, "DELETED\r\n")
			} else {
				fmt.Fprint(w, "NOT_FOUND\r\n")
			}
		case "stats":
			hits, misses, evictions := s.store.Stats()
			fmt.Fprintf(w, "STAT get_hits %d\r\nSTAT get_misses %d\r\nSTAT evictions %d\r\nSTAT curr_items %d\r\nEND\r\n",
				hits, misses, evictions, s.store.Len())
		case "version":
			fmt.Fprint(w, "VERSION privagic-mini-1.6.12\r\n")
		case "quit":
			_ = w.Flush()
			return
		default:
			fmt.Fprint(w, "ERROR\r\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handleGet(w *bufio.Writer, keys []string) {
	for _, key := range keys {
		if v, flags, ok := s.store.Get(key); ok {
			fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(v))
			_, _ = w.Write(v)
			fmt.Fprint(w, "\r\n")
		}
	}
	fmt.Fprint(w, "END\r\n")
}

// handleSet parses "set <key> <flags> <exptime> <bytes>" plus the data
// block; returns false on a connection-fatal error.
func (s *Server) handleSet(r *bufio.Reader, w *bufio.Writer, args []string) bool {
	if len(args) < 4 {
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return true
	}
	flags, _ := strconv.ParseUint(args[1], 10, 32)
	n, err := strconv.Atoi(args[3])
	if err != nil || n < 0 || n > 8<<20 {
		fmt.Fprint(w, "CLIENT_ERROR bad data chunk\r\n")
		return true
	}
	data := make([]byte, n+2)
	if _, err := readFull(r, data); err != nil {
		return false
	}
	s.store.Set(args[0], data[:n], uint32(flags))
	fmt.Fprint(w, "STORED\r\n")
	return true
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
