// Package memcached is a miniature memcached (§9.2's macro-application):
// an in-memory key-value cache with the text protocol over TCP, multiple
// worker threads, a central chained hash table, and LRU eviction. It is
// the workload substrate of the Figure 8 experiment and of the
// memcachedkv example; the cost models of internal/bench replay its
// access patterns on the simulated SGX machine.
//
// RegisterMetrics publishes the server's counters as memcached.* gauges
// and StartDebug serves expvar, pprof and the metric snapshot over a
// separate diagnostics listener (see OBSERVABILITY.md) — separate so
// diagnostics stay reachable while the data plane sheds load.
package memcached

import (
	"sync"
)

// Item is one cache entry.
type Item struct {
	Key   string
	Value []byte
	Flags uint32

	casid      uint64 // unique per mutation; the compare-and-swap token
	next       *Item  // hash chain
	lruPrev    *Item
	lruNext    *Item
	bucketHint uint64
}

// CAS outcomes for Store.Cas (mirroring the text protocol's replies).
type CasResult int

const (
	CasStored   CasResult = iota // token matched; the value was replaced
	CasExists                    // the item changed since the token was read
	CasNotFound                  // the key is absent
)

// Store is the central map of memcached: a chained hash table guarded by a
// lock, plus an LRU list bounded by a byte capacity — the data structure
// Privagic colors in the paper ("coloring the central map of memcached",
// §9.2).
type Store struct {
	mu       sync.Mutex
	buckets  []*Item
	mask     uint64
	size     int
	bytes    int64
	capacity int64
	lruHead  *Item // most recently used
	lruTail  *Item // least recently used
	casSeq   uint64

	hits, misses, evictions uint64
	// tombFloor is the stamp floor left behind by PurgeTombstones: every
	// tombstone below it has been reclaimed, so SetLWW refuses to insert
	// an *absent* key below it — a zombie of a write those tombstones
	// retired must keep losing even after its tombstone is gone.
	tombFloor uint32
	// OnAccess observes the simulated memory footprint of each
	// operation (fed to the cache model by the benchmarks); may be nil.
	OnAccess func(chainLen int, valueBytes int)
}

// NewStore creates a store with the given bucket count (power of two) and
// byte capacity (0 = unbounded).
func NewStore(buckets int, capacity int64) *Store {
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &Store{buckets: make([]*Item, n), mask: uint64(n - 1), capacity: capacity}
}

func hashKey(k string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// KeyHash exposes the store's key hash (FNV-1a, 64-bit). The cluster
// router hashes keys onto its ring with the same function, so ring
// segment boundaries translate directly into Store hash ranges — which
// is what lets anti-entropy digest exactly one segment at a time.
func KeyHash(k string) uint64 { return hashKey(k) }

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			s.hits++
			s.lruTouch(it)
			if s.OnAccess != nil {
				s.OnAccess(chain, len(it.Value))
			}
			out := make([]byte, len(it.Value))
			copy(out, it.Value)
			return out, it.Flags, true
		}
	}
	s.misses++
	if s.OnAccess != nil {
		s.OnAccess(chain, 0)
	}
	return nil, 0, false
}

// Set inserts or replaces key.
func (s *Store) Set(key string, value []byte, flags uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			s.bytes += int64(len(value)) - int64(len(it.Value))
			it.Value = value
			it.Flags = flags
			s.casSeq++
			it.casid = s.casSeq
			s.lruTouch(it)
			s.evictIfNeeded()
			if s.OnAccess != nil {
				s.OnAccess(chain, len(value))
			}
			return
		}
	}
	s.insertLocked(key, value, flags, b, chain)
}

// insertLocked appends a fresh item; the caller holds s.mu and has
// verified the key is absent from bucket b (chain items scanned).
func (s *Store) insertLocked(key string, value []byte, flags uint32, b uint64, chain int) {
	s.casSeq++
	it := &Item{Key: key, Value: value, Flags: flags, casid: s.casSeq, bucketHint: b}
	it.next = s.buckets[b]
	s.buckets[b] = it
	s.size++
	s.bytes += int64(len(key) + len(value))
	s.lruPush(it)
	s.evictIfNeeded()
	if s.OnAccess != nil {
		s.OnAccess(chain+1, len(value))
	}
}

// Gets is Get plus the item's CAS token, for later Cas.
func (s *Store) Gets(key string) (value []byte, flags uint32, casid uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			s.hits++
			s.lruTouch(it)
			if s.OnAccess != nil {
				s.OnAccess(chain, len(it.Value))
			}
			out := make([]byte, len(it.Value))
			copy(out, it.Value)
			return out, it.Flags, it.casid, true
		}
	}
	s.misses++
	if s.OnAccess != nil {
		s.OnAccess(chain, 0)
	}
	return nil, 0, 0, false
}

// Cas replaces key only if its CAS token still equals casid — the
// compare-and-swap that read-repair leans on so a concurrent newer
// write is never clobbered by a repairer holding an old snapshot.
func (s *Store) Cas(key string, value []byte, flags uint32, casid uint64) CasResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			if it.casid != casid {
				return CasExists
			}
			s.bytes += int64(len(value)) - int64(len(it.Value))
			it.Value = value
			it.Flags = flags
			s.casSeq++
			it.casid = s.casSeq
			s.lruTouch(it)
			s.evictIfNeeded()
			if s.OnAccess != nil {
				s.OnAccess(chain, len(value))
			}
			return CasStored
		}
	}
	return CasNotFound
}

// Add inserts key only if it is absent, reporting whether it stored.
func (s *Store) Add(key string, value []byte, flags uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			return false
		}
	}
	s.insertLocked(key, value, flags, b, chain)
	return true
}

// lwwStampMask selects the generation-stamp bits of the flags word for
// SetLWW's comparison. Bit 31 (lwwTombBit) is the cluster's tombstone
// marker: a delete and the write it supersedes carry the same stamp,
// and the tombstone must win, so the marker is excluded from the
// ordering.
const (
	lwwTombBit   = uint32(1) << 31
	lwwStampMask = lwwTombBit - 1
)

// SetLWW inserts or replaces key only when the incoming stamp (the
// flags word, tombstone bit masked) is at least the stored one — the
// last-writer-wins register behind the replicated write path ("setx" on
// the wire). A late duplicate of an already-superseded write is refused
// instead of clobbering newer progress, which is what makes zombie
// writes (timed-out attempts the network delivers anyway) harmless.
// An *absent* key is inserted only at or above the tombstone floor
// (see PurgeTombstones): below it, the value may be a zombie of a
// write whose reclaimed tombstone would have beaten it. Reports
// whether the value was stored.
func (s *Store) SetLWW(key string, value []byte, flags uint32) bool {
	return s.setLWW(key, value, flags, false)
}

// SetLWWForce is SetLWW without the tombstone-floor insert check — the
// anti-entropy pull path uses it to copy a value that provably exists
// on a live replica (an old stamp there is a legitimate never-rewritten
// value, not a zombie). The LWW comparison against a present item still
// applies; force never overwrites newer progress.
func (s *Store) SetLWWForce(key string, value []byte, flags uint32) bool {
	return s.setLWW(key, value, flags, true)
}

func (s *Store) setLWW(key string, value []byte, flags uint32, force bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			if flags&lwwStampMask < it.Flags&lwwStampMask {
				return false
			}
			s.bytes += int64(len(value)) - int64(len(it.Value))
			it.Value = value
			it.Flags = flags
			s.casSeq++
			it.casid = s.casSeq
			s.lruTouch(it)
			s.evictIfNeeded()
			if s.OnAccess != nil {
				s.OnAccess(chain, len(value))
			}
			return true
		}
	}
	if !force && flags&lwwStampMask < s.tombFloor {
		return false
	}
	s.insertLocked(key, value, flags, b, chain)
	return true
}

// PurgeTombstones reclaims every tombstone (lwwTombBit set) whose stamp
// is below floor and records floor so SetLWW refuses future inserts
// beneath it. The removal and the floor are one atomic step per store:
// at no point is a key unprotected — either its tombstone is still
// present and wins the LWW comparison, or the floor refuses the
// zombie's insert outright. Returns the number of tombstones removed.
// The floor only ratchets upward; a purge below the current floor
// removes nothing it hasn't already covered.
func (s *Store) PurgeTombstones(floor uint32) (purged int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if floor > s.tombFloor {
		s.tombFloor = floor
	}
	for b := range s.buckets {
		for p := &s.buckets[b]; *p != nil; {
			it := *p
			if it.Flags&lwwTombBit != 0 && it.Flags&lwwStampMask < s.tombFloor {
				*p = it.next
				s.size--
				s.bytes -= int64(len(it.Key) + len(it.Value))
				s.lruRemove(it)
				purged++
				continue
			}
			p = &it.next
		}
	}
	return purged
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	for p := &s.buckets[b]; *p != nil; p = &(*p).next {
		if (*p).Key == key {
			it := *p
			*p = it.next
			s.size--
			s.bytes -= int64(len(it.Key) + len(it.Value))
			s.lruRemove(it)
			return true
		}
	}
	return false
}

// Len returns the item count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Bytes returns the stored payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns hit/miss/eviction counters.
func (s *Store) Stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}

// inRange reports whether hash h falls in [lo, hi]; lo > hi denotes a
// range that wraps around the top of the hash space, matching ring
// segments that straddle zero.
func inRange(h, lo, hi uint64) bool {
	if lo <= hi {
		return h >= lo && h <= hi
	}
	return h >= lo || h <= hi
}

// itemDigest folds one item into a single word: FNV-1a over
// key ‖ NUL ‖ flags(LE) ‖ value. The flags carry the cluster's
// generation stamp and the value carries its integrity tag, so two
// stores agree on a digest exactly when they agree on (generation, tag,
// payload) for every key.
func itemDigest(it *Item) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(it.Key); i++ {
		mix(it.Key[i])
	}
	mix(0)
	f := it.Flags
	mix(byte(f))
	mix(byte(f >> 8))
	mix(byte(f >> 16))
	mix(byte(f >> 24))
	for i := 0; i < len(it.Value); i++ {
		mix(it.Value[i])
	}
	return h
}

// RangeDigest folds every item whose key hash lands in [lo, hi]
// (wrap-aware) into an order-independent digest: per-item FNV words
// combined by XOR, so insertion order and hash-chain layout cannot
// perturb the result. Returns the digest and the item count — two
// replicas hold identical segment contents iff both match.
func (s *Store) RangeDigest(lo, hi uint64) (digest uint64, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, head := range s.buckets {
		for it := head; it != nil; it = it.next {
			if inRange(hashKey(it.Key), lo, hi) {
				digest ^= itemDigest(it)
				n++
			}
		}
	}
	return digest, n
}

// RangeKeys lists the keys (with their flags, i.e. generation stamps)
// whose hash lands in [lo, hi], wrap-aware. Anti-entropy uses it to
// enumerate a divergent segment; values are fetched per key afterwards.
func (s *Store) RangeKeys(lo, hi uint64) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Item
	for _, head := range s.buckets {
		for it := head; it != nil; it = it.next {
			if inRange(hashKey(it.Key), lo, hi) {
				out = append(out, Item{Key: it.Key, Flags: it.Flags})
			}
		}
	}
	return out
}

// lruPush inserts at the head (most recent).
func (s *Store) lruPush(it *Item) {
	it.lruPrev = nil
	it.lruNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lruPrev = it
	}
	s.lruHead = it
	if s.lruTail == nil {
		s.lruTail = it
	}
}

func (s *Store) lruRemove(it *Item) {
	if it.lruPrev != nil {
		it.lruPrev.lruNext = it.lruNext
	} else {
		s.lruHead = it.lruNext
	}
	if it.lruNext != nil {
		it.lruNext.lruPrev = it.lruPrev
	} else {
		s.lruTail = it.lruPrev
	}
	it.lruPrev, it.lruNext = nil, nil
}

func (s *Store) lruTouch(it *Item) {
	if s.lruHead == it {
		return
	}
	s.lruRemove(it)
	s.lruPush(it)
}

// evictIfNeeded drops least-recently-used items until under capacity (the
// background LRU maintenance of memcached's threads, folded in-line).
func (s *Store) evictIfNeeded() {
	if s.capacity <= 0 {
		return
	}
	for s.bytes > s.capacity && s.lruTail != nil {
		victim := s.lruTail
		s.evictions++
		b := victim.bucketHint
		for p := &s.buckets[b]; *p != nil; p = &(*p).next {
			if *p == victim {
				*p = victim.next
				break
			}
		}
		s.size--
		s.bytes -= int64(len(victim.Key) + len(victim.Value))
		s.lruRemove(victim)
	}
}
