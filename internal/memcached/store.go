// Package memcached is a miniature memcached (§9.2's macro-application):
// an in-memory key-value cache with the text protocol over TCP, multiple
// worker threads, a central chained hash table, and LRU eviction. It is
// the workload substrate of the Figure 8 experiment and of the
// memcachedkv example; the cost models of internal/bench replay its
// access patterns on the simulated SGX machine.
//
// RegisterMetrics publishes the server's counters as memcached.* gauges
// and StartDebug serves expvar, pprof and the metric snapshot over a
// separate diagnostics listener (see OBSERVABILITY.md) — separate so
// diagnostics stay reachable while the data plane sheds load.
package memcached

import (
	"sync"
)

// Item is one cache entry.
type Item struct {
	Key   string
	Value []byte
	Flags uint32

	next       *Item // hash chain
	lruPrev    *Item
	lruNext    *Item
	bucketHint uint64
}

// Store is the central map of memcached: a chained hash table guarded by a
// lock, plus an LRU list bounded by a byte capacity — the data structure
// Privagic colors in the paper ("coloring the central map of memcached",
// §9.2).
type Store struct {
	mu       sync.Mutex
	buckets  []*Item
	mask     uint64
	size     int
	bytes    int64
	capacity int64
	lruHead  *Item // most recently used
	lruTail  *Item // least recently used

	hits, misses, evictions uint64
	// OnAccess observes the simulated memory footprint of each
	// operation (fed to the cache model by the benchmarks); may be nil.
	OnAccess func(chainLen int, valueBytes int)
}

// NewStore creates a store with the given bucket count (power of two) and
// byte capacity (0 = unbounded).
func NewStore(buckets int, capacity int64) *Store {
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &Store{buckets: make([]*Item, n), mask: uint64(n - 1), capacity: capacity}
}

func hashKey(k string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			s.hits++
			s.lruTouch(it)
			if s.OnAccess != nil {
				s.OnAccess(chain, len(it.Value))
			}
			out := make([]byte, len(it.Value))
			copy(out, it.Value)
			return out, it.Flags, true
		}
	}
	s.misses++
	if s.OnAccess != nil {
		s.OnAccess(chain, 0)
	}
	return nil, 0, false
}

// Set inserts or replaces key.
func (s *Store) Set(key string, value []byte, flags uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	chain := 0
	for it := s.buckets[b]; it != nil; it = it.next {
		chain++
		if it.Key == key {
			s.bytes += int64(len(value)) - int64(len(it.Value))
			it.Value = value
			it.Flags = flags
			s.lruTouch(it)
			s.evictIfNeeded()
			if s.OnAccess != nil {
				s.OnAccess(chain, len(value))
			}
			return
		}
	}
	it := &Item{Key: key, Value: value, Flags: flags, bucketHint: b}
	it.next = s.buckets[b]
	s.buckets[b] = it
	s.size++
	s.bytes += int64(len(key) + len(value))
	s.lruPush(it)
	s.evictIfNeeded()
	if s.OnAccess != nil {
		s.OnAccess(chain+1, len(value))
	}
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := hashKey(key) & s.mask
	for p := &s.buckets[b]; *p != nil; p = &(*p).next {
		if (*p).Key == key {
			it := *p
			*p = it.next
			s.size--
			s.bytes -= int64(len(it.Key) + len(it.Value))
			s.lruRemove(it)
			return true
		}
	}
	return false
}

// Len returns the item count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Bytes returns the stored payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns hit/miss/eviction counters.
func (s *Store) Stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}

// lruPush inserts at the head (most recent).
func (s *Store) lruPush(it *Item) {
	it.lruPrev = nil
	it.lruNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lruPrev = it
	}
	s.lruHead = it
	if s.lruTail == nil {
		s.lruTail = it
	}
}

func (s *Store) lruRemove(it *Item) {
	if it.lruPrev != nil {
		it.lruPrev.lruNext = it.lruNext
	} else {
		s.lruHead = it.lruNext
	}
	if it.lruNext != nil {
		it.lruNext.lruPrev = it.lruPrev
	} else {
		s.lruTail = it.lruPrev
	}
	it.lruPrev, it.lruNext = nil, nil
}

func (s *Store) lruTouch(it *Item) {
	if s.lruHead == it {
		return
	}
	s.lruRemove(it)
	s.lruPush(it)
}

// evictIfNeeded drops least-recently-used items until under capacity (the
// background LRU maintenance of memcached's threads, folded in-line).
func (s *Store) evictIfNeeded() {
	if s.capacity <= 0 {
		return
	}
	for s.bytes > s.capacity && s.lruTail != nil {
		victim := s.lruTail
		s.evictions++
		b := victim.bucketHint
		for p := &s.buckets[b]; *p != nil; p = &(*p).next {
			if *p == victim {
				*p = victim.next
				break
			}
		}
		s.size--
		s.bytes -= int64(len(victim.Key) + len(victim.Value))
		s.lruRemove(victim)
	}
}
