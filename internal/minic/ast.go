package minic

import "privagic/internal/ir"

// Node is the base of all AST nodes.
type Node interface {
	NodePos() Pos
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// NodePos returns p itself so embedding Pos satisfies Node.
func (p Pos) NodePos() Pos { return p }

// IR converts the position to an IR position.
func (p Pos) IR() ir.Pos { return ir.Pos{File: p.File, Line: p.Line, Col: p.Col} }

// BaseKind enumerates primitive base types.
type BaseKind int

// Base type kinds.
const (
	BaseInt BaseKind = iota + 1 // 64-bit int
	BaseLong
	BaseChar
	BaseDouble
	BaseVoid
	BaseStruct
)

// TypeExpr is a syntactic type.
type TypeExpr interface{ Node }

// BaseType is a primitive or struct type, optionally colored: the paper's
// "char color(blue)" in Figure 1.
type BaseType struct {
	Pos
	Kind       BaseKind
	StructName string
	Color      ir.Color
}

// PtrType is a pointer declarator; Color is a qualifier placed after the
// '*', coloring the pointer variable's own memory location.
type PtrType struct {
	Pos
	Elem  TypeExpr
	Color ir.Color
}

// ArrType is an array declarator.
type ArrType struct {
	Pos
	Elem TypeExpr
	Len  int64
}

// FuncPtrType is a function-pointer declarator "ret (*name)(params)".
type FuncPtrType struct {
	Pos
	Ret    TypeExpr
	Params []TypeExpr
}

// Decl is a top-level declaration.
type Decl interface{ Node }

// StructDecl declares a named struct with (possibly colored) fields.
type StructDecl struct {
	Pos
	Name   string
	Fields []*VarDecl
}

// VarDecl declares a variable (global, local, field, or parameter).
type VarDecl struct {
	Pos
	Name string
	Type TypeExpr
	Init Expr // optional initializer
}

// FuncAttr carries the paper's function annotations.
type FuncAttr struct {
	Entry  bool // explicit entry point (§6.2)
	Within bool // callable inside enclaves, mini-libc style (§6.3)
	Ignore bool // communication function for classify/declassify (§6.4)
	Extern bool // declaration only
	Static bool // not an entry point candidate
}

// FuncDecl declares or defines a function.
type FuncDecl struct {
	Pos
	Attr     FuncAttr
	Ret      TypeExpr
	Name     string
	Params   []*VarDecl
	Variadic bool
	Body     *BlockStmt // nil for declarations
}

// Stmt is a statement.
type Stmt interface{ Node }

// BlockStmt is "{ ... }".
type BlockStmt struct {
	Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	Pos
	Decl *VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos
	Cond Expr
	Then Stmt
	Else Stmt // optional
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos
	Cond Expr
	Body Stmt
}

// ForStmt is a C for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos
	Val Expr // optional
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos }

// Expr is an expression.
type Expr interface{ Node }

// Ident names a variable or function.
type Ident struct {
	Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos
	V int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	Pos
	V float64
}

// StrLit is a string literal.
type StrLit struct {
	Pos
	V string
}

// NullLit is the NULL constant.
type NullLit struct{ Pos }

// UnaryOp enumerates prefix operators.
type UnaryOp int

// Unary operators.
const (
	UnNeg    UnaryOp = iota + 1 // -x
	UnNot                       // !x
	UnBitNot                    // ~x
	UnDeref                     // *x
	UnAddr                      // &x
)

// Unary is a prefix operation.
type Unary struct {
	Pos
	Op UnaryOp
	X  Expr
}

// BinOp enumerates infix operators.
type BinOp int

// Binary operators.
const (
	BinAdd BinOp = iota + 1
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinLAnd
	BinLOr
)

// Binary is an infix operation.
type Binary struct {
	Pos
	Op   BinOp
	X, Y Expr
}

// Assign is "lhs = rhs" (Op 0) or a compound assignment (Op BinAdd/BinSub).
type Assign struct {
	Pos
	Op  BinOp // 0 for plain '='
	LHS Expr
	RHS Expr
}

// IncDec is ++x, --x, x++, or x--.
type IncDec struct {
	Pos
	X    Expr
	Dec  bool
	Post bool
}

// CallExpr invokes a function or function pointer.
type CallExpr struct {
	Pos
	Fun  Expr
	Args []Expr
}

// IndexExpr is "x[i]".
type IndexExpr struct {
	Pos
	X Expr
	I Expr
}

// FieldExpr is "x.f" or "x->f".
type FieldExpr struct {
	Pos
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is "(type)x".
type CastExpr struct {
	Pos
	Type TypeExpr
	X    Expr
}

// SizeofExpr is "sizeof(type)".
type SizeofExpr struct {
	Pos
	Type TypeExpr
}

// File is a parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
}
