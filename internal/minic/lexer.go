package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer turns source text into tokens.
type Lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer for the given file name and source.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

func (l *Lexer) errf(line, col int, format string, args ...any) error {
	return &Error{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	tok := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return tok(TokEOF, ""), nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && (isIdentStart(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if k, ok := keywords[text]; ok {
			return tok(k, text), nil
		}
		return tok(TokIdent, text), nil

	case isDigit(c):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '.' || l.peek() == 'x' ||
			(l.peek() >= 'a' && l.peek() <= 'f') || (l.peek() >= 'A' && l.peek() <= 'F')) {
			if l.peek() == '.' {
				isFloat = true
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		if isFloat {
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, l.errf(line, col, "bad float literal %q", text)
			}
			t := tok(TokFloat, text)
			t.Flt = v
			return t, nil
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			uv, uerr := strconv.ParseUint(text, 0, 64)
			if uerr != nil {
				return Token{}, l.errf(line, col, "bad integer literal %q", text)
			}
			v = int64(uv)
		}
		t := tok(TokInt, text)
		t.Int = v
		return t, nil

	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf(line, col, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				e, err := l.escape(line, col)
				if err != nil {
					return Token{}, err
				}
				b.WriteByte(e)
				continue
			}
			b.WriteByte(ch)
		}
		return tok(TokString, b.String()), nil

	case c == '\'':
		l.advance()
		if l.pos >= len(l.src) {
			return Token{}, l.errf(line, col, "unterminated char literal")
		}
		var v byte
		ch := l.advance()
		if ch == '\\' {
			e, err := l.escape(line, col)
			if err != nil {
				return Token{}, err
			}
			v = e
		} else {
			v = ch
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return Token{}, l.errf(line, col, "unterminated char literal")
		}
		t := tok(TokChar, string(v))
		t.Int = int64(v)
		return t, nil
	}

	two := func(k TokKind) (Token, error) {
		s := string(l.advance()) + string(l.advance())
		return tok(k, s), nil
	}
	one := func(k TokKind) (Token, error) {
		return tok(k, string(l.advance())), nil
	}

	d := l.peek2()
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '.':
		if d == '.' && l.pos+2 < len(l.src) && l.src[l.pos+2] == '.' {
			l.advance()
			l.advance()
			l.advance()
			return tok(TokEllipsis, "..."), nil
		}
		return one(TokDot)
	case '~':
		return one(TokTilde)
	case '^':
		return one(TokCaret)
	case '%':
		return one(TokPercent)
	case '/':
		return one(TokSlash)
	case '*':
		return one(TokStar)
	case '+':
		if d == '+' {
			return two(TokPlusPlus)
		}
		if d == '=' {
			return two(TokPlusAssign)
		}
		return one(TokPlus)
	case '-':
		if d == '>' {
			return two(TokArrow)
		}
		if d == '-' {
			return two(TokMinusMinus)
		}
		if d == '=' {
			return two(TokMinusAssign)
		}
		return one(TokMinus)
	case '=':
		if d == '=' {
			return two(TokEqEq)
		}
		return one(TokAssign)
	case '!':
		if d == '=' {
			return two(TokNe)
		}
		return one(TokBang)
	case '<':
		if d == '=' {
			return two(TokLe)
		}
		if d == '<' {
			return two(TokShl)
		}
		return one(TokLt)
	case '>':
		if d == '=' {
			return two(TokGe)
		}
		if d == '>' {
			return two(TokShr)
		}
		return one(TokGt)
	case '&':
		if d == '&' {
			return two(TokAndAnd)
		}
		return one(TokAmp)
	case '|':
		if d == '|' {
			return two(TokOrOr)
		}
		return one(TokPipe)
	}
	return Token{}, l.errf(line, col, "unexpected character %q", string(c))
}

func (l *Lexer) escape(line, col int) (byte, error) {
	if l.pos >= len(l.src) {
		return 0, l.errf(line, col, "unterminated escape")
	}
	switch e := l.advance(); e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, l.errf(line, col, "unknown escape \\%c", e)
	}
}

// LexAll tokenizes the whole input (used by tests and the parser).
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
