package minic

import (
	"errors"
	"fmt"

	"privagic/internal/ir"
)

// Compile parses and lowers MiniC source text to an IR module, the
// front-half of the paper's toolchain (Figure 5: clang emitting LLVM
// bitcode with color annotations).
func Compile(filename, src string) (*ir.Module, error) {
	f, err := Parse(filename, src)
	if err != nil {
		return nil, err
	}
	return Lower(f)
}

// Lower converts a parsed file to an IR module.
func Lower(f *File) (*ir.Module, error) {
	c := &compiler{
		mod:     ir.NewModule(f.Name),
		structs: map[string]*ir.StructType{},
		funcs:   map[string]*ir.Function{},
		globals: map[string]*ir.Global{},
	}
	c.declareBuiltins()
	// Pass 1: struct shells.
	for _, d := range f.Decls {
		if sd, ok := d.(*StructDecl); ok {
			if c.structs[sd.Name] != nil {
				c.errf(sd.Pos, "struct %s redeclared", sd.Name)
				continue
			}
			sh := &ir.StructType{Name: sd.Name}
			c.structs[sd.Name] = sh
			c.mod.AddStruct(sh)
		}
	}
	// Pass 2: struct bodies, globals, function signatures.
	for _, d := range f.Decls {
		switch dd := d.(type) {
		case *StructDecl:
			c.lowerStructBody(dd)
		case *VarDecl:
			c.lowerGlobal(dd)
		case *FuncDecl:
			c.declareFunc(dd)
		}
	}
	// Pass 3: function bodies.
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
			c.lowerFuncBody(fd)
		}
	}
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	if err := ir.Verify(c.mod); err != nil {
		return nil, fmt.Errorf("minic: internal error: generated invalid IR: %w", err)
	}
	return c.mod, nil
}

type compiler struct {
	mod     *ir.Module
	structs map[string]*ir.StructType
	funcs   map[string]*ir.Function
	globals map[string]*ir.Global
	errs    []error
}

func (c *compiler) errf(p Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{File: p.File, Line: p.Line, Col: p.Col, Msg: fmt.Sprintf(format, args...)})
}

// declareBuiltins registers the functions every MiniC program may call
// without declaring: the mini-libc that the Privagic runtime embeds in each
// enclave (paper §6.3) plus the host-only I/O functions.
func (c *compiler) declareBuiltins() {
	decl := func(name string, ret ir.Type, variadic, within bool, params ...ir.Type) {
		ps := make([]*ir.Param, len(params))
		for i, t := range params {
			ps[i] = &ir.Param{PName: fmt.Sprintf("a%d", i), Typ: t}
		}
		fn := ir.NewFunction(name, ret, ps)
		fn.External = true
		fn.Variadic = variadic
		fn.Within = within
		c.funcs[name] = fn
		c.mod.AddFunc(fn)
	}
	i8p := ir.PtrTo(ir.I8)
	decl("printf", ir.I64, true, false, i8p)
	decl("puts", ir.I64, false, false, i8p)
	decl("exit", ir.Void, false, false, ir.I64)
	decl("thread_create", ir.I64, false, false, ir.FuncType{Params: []ir.Type{ir.I64}, Ret: ir.Void}, ir.I64)
	decl("thread_join", ir.Void, false, false)
	// mini-libc: available within enclaves.
	decl("memcpy", i8p, false, true, i8p, i8p, ir.I64)
	decl("memset", i8p, false, true, i8p, ir.I64, ir.I64)
	decl("strncpy", i8p, false, true, i8p, i8p, ir.I64)
	decl("strlen", ir.I64, false, true, i8p)
	decl("strcmp", ir.I64, false, true, i8p, i8p)
	decl("strncmp", ir.I64, false, true, i8p, i8p, ir.I64)
	decl("hash64", ir.I64, false, true, i8p, ir.I64)
	decl("abort", ir.Void, false, true)
}

// resolveType converts a syntactic type to an IR type plus the color of a
// memory location declared with it ("int color(blue) a" puts a in blue).
func (c *compiler) resolveType(te TypeExpr) (ir.Type, ir.Color) {
	switch t := te.(type) {
	case *BaseType:
		switch t.Kind {
		case BaseInt, BaseLong:
			return ir.I64, t.Color
		case BaseChar:
			return ir.I8, t.Color
		case BaseDouble:
			return ir.F64, t.Color
		case BaseVoid:
			return ir.Void, t.Color
		case BaseStruct:
			st := c.structs[t.StructName]
			if st == nil {
				c.errf(t.Pos, "unknown struct %s", t.StructName)
				return ir.I64, t.Color
			}
			return st, t.Color
		}
	case *PtrType:
		elem, elemColor := c.resolveType(t.Elem)
		if _, isVoid := elem.(ir.VoidType); isVoid {
			elem = ir.I8 // void* is byte pointer
		}
		return ir.PtrToColored(elem, elemColor), t.Color
	case *ArrType:
		elem, elemColor := c.resolveType(t.Elem)
		return ir.ArrayType{Elem: elem, Len: t.Len}, elemColor
	case *FuncPtrType:
		ret, _ := c.resolveType(t.Ret)
		ps := make([]ir.Type, len(t.Params))
		for i, pt := range t.Params {
			ps[i], _ = c.resolveType(pt)
		}
		return ir.FuncType{Params: ps, Ret: ret}, ir.None
	}
	c.errf(te.NodePos(), "unsupported type")
	return ir.I64, ir.None
}

// lowerStructBody fills a struct shell with its fields.
func (c *compiler) lowerStructBody(sd *StructDecl) {
	st := c.structs[sd.Name]
	fields := make([]ir.Field, 0, len(sd.Fields))
	for _, fd := range sd.Fields {
		ft, color := c.resolveType(fd.Type)
		fields = append(fields, ir.Field{Name: fd.Name, Type: ft, Color: color})
	}
	st.SetFields(fields)
}

// lowerGlobal lowers a global variable definition.
func (c *compiler) lowerGlobal(vd *VarDecl) {
	typ, color := c.resolveType(vd.Type)
	g := &ir.Global{GName: vd.Name, Elem: typ, Color: color, Pos: vd.Pos.IR()}
	switch init := vd.Init.(type) {
	case nil:
	case *IntLit:
		g.InitInt = init.V
	case *FloatLit:
		g.InitFloat = init.V
	case *Unary:
		if lit, ok := init.X.(*IntLit); ok && init.Op == UnNeg {
			g.InitInt = -lit.V
		} else {
			c.errf(vd.Pos, "global initializer must be a constant")
		}
	case *StrLit:
		if at, ok := typ.(ir.ArrayType); ok && ir.TypesEqual(at.Elem, ir.I8) {
			b := append([]byte(init.V), 0)
			for int64(len(b)) < at.Len {
				b = append(b, 0)
			}
			g.InitBytes = b
		} else {
			c.errf(vd.Pos, "string initializer requires a char array")
		}
	default:
		c.errf(vd.Pos, "global initializer must be a constant")
	}
	if c.globals[vd.Name] != nil {
		c.errf(vd.Pos, "global %s redeclared", vd.Name)
		return
	}
	c.globals[vd.Name] = g
	c.mod.AddGlobal(g)
}

// declareFunc registers a function signature (definition or declaration).
func (c *compiler) declareFunc(fd *FuncDecl) {
	params := make([]*ir.Param, len(fd.Params))
	for i, pd := range fd.Params {
		pt, color := c.resolveType(pd.Type)
		if at, ok := pt.(ir.ArrayType); ok {
			// Arrays decay to pointers in parameters.
			pt = ir.PtrToColored(at.Elem, color)
			color = ir.None
		}
		params[i] = &ir.Param{PName: pd.Name, Typ: pt, Color: color, Pos: pd.Pos.IR()}
	}
	ret, retColor := c.resolveType(fd.Ret)
	if prev := c.funcs[fd.Name]; prev != nil {
		if prev.External && fd.Body != nil {
			// A builtin or earlier declaration being defined now.
			prev.External = false
			prev.Params = params
			prev.RetTyp = ret
			prev.RetColor = retColor
			prev.Entry = prev.Entry || fd.Attr.Entry
			prev.Within = prev.Within || fd.Attr.Within
			prev.Ignore = prev.Ignore || fd.Attr.Ignore
			return
		}
		if fd.Body != nil {
			c.errf(fd.Pos, "function %s redefined", fd.Name)
		}
		return
	}
	fn := ir.NewFunction(fd.Name, ret, params)
	fn.Pos = fd.Pos.IR()
	fn.RetColor = retColor
	fn.External = fd.Body == nil
	fn.Within = fd.Attr.Within
	fn.Ignore = fd.Attr.Ignore
	fn.Entry = fd.Attr.Entry
	fn.Static = fd.Attr.Static
	fn.Variadic = fd.Variadic
	if fn.Ignore {
		fn.Within = true
	}
	c.funcs[fd.Name] = fn
	c.mod.AddFunc(fn)
}

// local is a stack slot for a named variable.
type local struct {
	addr ir.Value // pointer to the slot
}

type loopCtx struct {
	brk  *ir.Block
	cont *ir.Block
}

// funcLower lowers one function body.
type funcLower struct {
	c      *compiler
	fn     *ir.Function
	b      *ir.Builder
	scopes []map[string]*local
	loops  []loopCtx
}

func (c *compiler) lowerFuncBody(fd *FuncDecl) {
	fn := c.funcs[fd.Name]
	fl := &funcLower{c: c, fn: fn, b: ir.NewBuilder(fn)}
	fl.pushScope()
	defer fl.popScope()
	// Spill parameters to stack slots so address-of works; mem2reg
	// removes the slots whose address is never taken.
	for _, p := range fn.Params {
		fl.b.SetPos(p.Pos)
		slot := fl.b.Alloca(p.Typ, p.Color)
		fl.b.Store(p, slot)
		fl.define(p.PName, &local{addr: slot})
	}
	fl.stmt(fd.Body)
	// Implicit return.
	if fl.b.Cur.Terminator() == nil {
		fl.b.SetPos(fd.Pos.IR())
		switch rt := fn.RetTyp.(type) {
		case ir.VoidType:
			fl.b.Ret(nil)
		case ir.FloatType:
			fl.b.Ret(&ir.ConstFloat{Typ: rt, V: 0})
		case ir.PointerType:
			fl.b.Ret(&ir.Null{Typ: rt})
		case ir.IntType:
			fl.b.Ret(ir.NewConstInt(rt, 0))
		default:
			fl.b.Ret(ir.I64Const(0))
		}
	}
	fn.RemoveUnreachable()
}

func (fl *funcLower) pushScope() { fl.scopes = append(fl.scopes, map[string]*local{}) }
func (fl *funcLower) popScope()  { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *funcLower) define(name string, l *local) {
	fl.scopes[len(fl.scopes)-1][name] = l
}

func (fl *funcLower) lookup(name string) *local {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if l, ok := fl.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

// ensureBlock guarantees the builder is positioned at an unterminated
// block; statements after return/break land in an unreachable block that
// RemoveUnreachable deletes.
func (fl *funcLower) ensureBlock() {
	if fl.b.Cur.Terminator() != nil {
		fl.b.At(fl.fn.NewBlock("dead"))
	}
}

func (fl *funcLower) stmt(s Stmt) {
	if s == nil {
		return
	}
	fl.ensureBlock()
	fl.b.SetPos(s.NodePos().IR())
	switch st := s.(type) {
	case *BlockStmt:
		fl.pushScope()
		for _, sub := range st.Stmts {
			fl.stmt(sub)
		}
		fl.popScope()
	case *DeclStmt:
		fl.declStmt(st.Decl)
	case *ExprStmt:
		fl.expr(st.X)
	case *IfStmt:
		fl.ifStmt(st)
	case *WhileStmt:
		fl.whileStmt(st)
	case *ForStmt:
		fl.forStmt(st)
	case *ReturnStmt:
		fl.returnStmt(st)
	case *BreakStmt:
		if len(fl.loops) == 0 {
			fl.c.errf(st.Pos, "break outside loop")
			return
		}
		fl.b.Br(fl.loops[len(fl.loops)-1].brk)
	case *ContinueStmt:
		if len(fl.loops) == 0 {
			fl.c.errf(st.Pos, "continue outside loop")
			return
		}
		fl.b.Br(fl.loops[len(fl.loops)-1].cont)
	default:
		fl.c.errf(s.NodePos(), "unsupported statement")
	}
}

func (fl *funcLower) declStmt(vd *VarDecl) {
	typ, color := fl.c.resolveType(vd.Type)
	fl.b.SetPos(vd.Pos.IR())
	slot := fl.b.Alloca(typ, color)
	fl.define(vd.Name, &local{addr: slot})
	if vd.Init != nil {
		v := fl.exprConv(vd.Init, typ)
		if v != nil {
			fl.b.Store(v, slot)
		}
	}
}

func (fl *funcLower) ifStmt(st *IfStmt) {
	cond := fl.truthy(fl.expr(st.Cond))
	if cond == nil {
		return
	}
	then := fl.fn.NewBlock("then")
	join := fl.fn.NewBlock("join")
	els := join
	if st.Else != nil {
		els = fl.fn.NewBlock("else")
	}
	fl.b.CondBr(cond, then, els)
	fl.b.At(then)
	fl.stmt(st.Then)
	if fl.b.Cur.Terminator() == nil {
		fl.b.Br(join)
	}
	if st.Else != nil {
		fl.b.At(els)
		fl.stmt(st.Else)
		if fl.b.Cur.Terminator() == nil {
			fl.b.Br(join)
		}
	}
	fl.b.At(join)
}

func (fl *funcLower) whileStmt(st *WhileStmt) {
	head := fl.fn.NewBlock("while.head")
	body := fl.fn.NewBlock("while.body")
	exit := fl.fn.NewBlock("while.exit")
	fl.b.Br(head)
	fl.b.At(head)
	cond := fl.truthy(fl.expr(st.Cond))
	if cond == nil {
		return
	}
	fl.b.CondBr(cond, body, exit)
	fl.b.At(body)
	fl.loops = append(fl.loops, loopCtx{brk: exit, cont: head})
	fl.stmt(st.Body)
	fl.loops = fl.loops[:len(fl.loops)-1]
	if fl.b.Cur.Terminator() == nil {
		fl.b.Br(head)
	}
	fl.b.At(exit)
}

func (fl *funcLower) forStmt(st *ForStmt) {
	fl.pushScope()
	defer fl.popScope()
	if st.Init != nil {
		fl.stmt(st.Init)
	}
	head := fl.fn.NewBlock("for.head")
	body := fl.fn.NewBlock("for.body")
	post := fl.fn.NewBlock("for.post")
	exit := fl.fn.NewBlock("for.exit")
	fl.b.Br(head)
	fl.b.At(head)
	if st.Cond != nil {
		cond := fl.truthy(fl.expr(st.Cond))
		if cond == nil {
			return
		}
		fl.b.CondBr(cond, body, exit)
	} else {
		fl.b.Br(body)
	}
	fl.b.At(body)
	fl.loops = append(fl.loops, loopCtx{brk: exit, cont: post})
	fl.stmt(st.Body)
	fl.loops = fl.loops[:len(fl.loops)-1]
	if fl.b.Cur.Terminator() == nil {
		fl.b.Br(post)
	}
	fl.b.At(post)
	if st.Post != nil {
		fl.expr(st.Post)
	}
	fl.b.Br(head)
	fl.b.At(exit)
}

func (fl *funcLower) returnStmt(st *ReturnStmt) {
	if st.Val == nil {
		fl.b.Ret(nil)
		return
	}
	v := fl.exprConv(st.Val, fl.fn.RetTyp)
	if v == nil {
		return
	}
	fl.b.Ret(v)
}
