package minic

import (
	"privagic/internal/ir"
)

// call lowers a function call, handling the malloc/free allocation builtins
// specially: malloc(sizeof(T)) and malloc(n * sizeof(T)) become typed
// Malloc instructions so the partitioner can associate each allocation site
// with its data structure (paper §7.2). The want type colors the site when
// the destination is a pointer to colored memory.
func (fl *funcLower) call(ex *CallExpr, want ir.Type) ir.Value {
	if id, ok := ex.Fun.(*Ident); ok {
		switch id.Name {
		case "malloc":
			return fl.mallocCall(ex, want)
		case "free":
			if len(ex.Args) != 1 {
				fl.c.errf(ex.Pos, "free takes one argument")
				return nil
			}
			p := fl.expr(ex.Args[0])
			if p == nil {
				return nil
			}
			fl.b.Free(p)
			return ir.I64Const(0)
		}
		// Direct call to a known function, unless shadowed by a local
		// function-pointer variable.
		if fl.lookup(id.Name) == nil && fl.c.globals[id.Name] == nil {
			if fn := fl.c.funcs[id.Name]; fn != nil {
				return fl.directCall(ex, fn)
			}
			fl.c.errf(ex.Pos, "call to undeclared function %s", id.Name)
			return nil
		}
	}
	// Indirect call through a function-pointer value.
	callee := fl.expr(ex.Fun)
	if callee == nil {
		return nil
	}
	ft, ok := callee.Type().(ir.FuncType)
	if !ok {
		fl.c.errf(ex.Pos, "call of non-function value of type %s", callee.Type())
		return nil
	}
	if len(ex.Args) != len(ft.Params) {
		fl.c.errf(ex.Pos, "indirect call has %d arguments, want %d", len(ex.Args), len(ft.Params))
		return nil
	}
	args := make([]ir.Value, 0, len(ex.Args))
	for i, a := range ex.Args {
		v := fl.exprConv(a, ft.Params[i])
		if v == nil {
			return nil
		}
		args = append(args, v)
	}
	return fl.b.Call(callee, args...)
}

func (fl *funcLower) directCall(ex *CallExpr, fn *ir.Function) ir.Value {
	min := len(fn.Params)
	if len(ex.Args) < min || (len(ex.Args) > min && !fn.Variadic) {
		fl.c.errf(ex.Pos, "call to %s has %d arguments, want %d", fn.FName, len(ex.Args), min)
		return nil
	}
	args := make([]ir.Value, 0, len(ex.Args))
	for i, a := range ex.Args {
		var v ir.Value
		if i < min {
			v = fl.argConv(a, fn.Params[i].Typ, fn.Ignore)
		} else {
			v = fl.expr(a) // variadic tail: pass as-is
			if v != nil {
				if it, isInt := v.Type().(ir.IntType); isInt && it.Bits < 64 {
					v = fl.convert(v, ir.I64, a.NodePos())
				}
			}
		}
		if v == nil {
			return nil
		}
		args = append(args, v)
	}
	return fl.b.Call(fn, args...)
}

// argConv converts a call argument to a parameter type. For ignore
// functions (paper §6.4) pointer arguments keep their own pointee color:
// conversion only reconciles the value shape, since the whole point of
// ignore is passing pointers of mismatched colors (classify/declassify).
func (fl *funcLower) argConv(a Expr, pt ir.Type, ignore bool) ir.Value {
	v := fl.exprWant(a, pt)
	if v == nil {
		return nil
	}
	vt := v.Type()
	if ir.TypesEqual(vt, pt) {
		return v
	}
	vp, vIsPtr := vt.(ir.PointerType)
	pp, pIsPtr := pt.(ir.PointerType)
	if vIsPtr && pIsPtr {
		// Keep the argument's color: a blue char* passed to a char*
		// parameter stays a blue pointer; the secure type system
		// decides whether that is legal at the call site.
		if ir.TypesEqual(vp.Elem, pp.Elem) || ignore {
			return v
		}
		// Shape cast (e.g. struct* to char*): preserve the color.
		return fl.b.Cast(v, ir.PtrToColored(pp.Elem, vp.Color))
	}
	return fl.convert(v, pt, a.NodePos())
}

// mallocCall recognizes the C allocation idioms.
func (fl *funcLower) mallocCall(ex *CallExpr, want ir.Type) ir.Value {
	if len(ex.Args) != 1 {
		fl.c.errf(ex.Pos, "malloc takes one argument")
		return nil
	}
	var elem ir.Type
	var count ir.Value
	color := ir.None
	if pw, ok := want.(ir.PointerType); ok {
		color = pw.Color
	}
	switch arg := ex.Args[0].(type) {
	case *SizeofExpr:
		elem, _ = fl.c.resolveType(arg.Type)
	case *Binary:
		if arg.Op == BinMul {
			if sz, ok := arg.X.(*SizeofExpr); ok {
				elem, _ = fl.c.resolveType(sz.Type)
				count = fl.exprConv(arg.Y, ir.I64)
			} else if sz, ok := arg.Y.(*SizeofExpr); ok {
				elem, _ = fl.c.resolveType(sz.Type)
				count = fl.exprConv(arg.X, ir.I64)
			}
		}
	}
	if elem == nil {
		// Raw byte allocation: malloc(n).
		elem = ir.I8
		count = fl.exprConv(ex.Args[0], ir.I64)
	}
	if count == nil && elem == ir.Type(ir.I8) {
		return nil
	}
	// The destination type may refine both the element type and color
	// ("struct node color(blue)* n = malloc(sizeof(struct node))").
	if pw, ok := want.(ir.PointerType); ok && ir.TypesEqual(pw.Elem, elem) {
		color = pw.Color
	}
	return fl.b.Malloc(elem, color, count)
}
